// google-benchmark microbenchmarks of the partitioner kernels: IPM
// matching, contraction, FM refinement, greedy growing, model build, and
// the end-to-end partitioners.
//
// --json=FILE switches to structured perf-smoke mode instead of running
// google-benchmark: a fixed set of end-to-end trials (serial partition,
// repartition, parallel partition) whose timings, quality metrics, and
// comm telemetry are written as one hgr-bench-v1 document. CI runs this on
// two datasets and tools/bench_report.py aggregates the results into
// BENCH_partition.json. Other flags in that mode: --dataset= --scale=
// --k= --alpha= --trials= --seed= --ranks=.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "bench_json.hpp"
#include "common/timer.hpp"
#include "core/repartition_model.hpp"
#include "core/repartitioner.hpp"
#include "graphpart/gcoarsen.hpp"
#include "graphpart/gpartitioner.hpp"
#include "hypergraph/convert.hpp"
#include "metrics/cut.hpp"
#include "obs/critical_path.hpp"
#include "obs/trace.hpp"
#include "parallel/par_partitioner.hpp"
#include "partition/contract.hpp"
#include "partition/initial.hpp"
#include "partition/matching_ipm.hpp"
#include "partition/partitioner.hpp"
#include "partition/refine_fm.hpp"
#include "workload/datasets.hpp"

namespace {

using namespace hgr;

const Graph& bench_graph() {
  static const Graph g = make_dataset("auto-like", 0.08, 3);
  return g;
}

const Hypergraph& bench_hypergraph() {
  static const Hypergraph h = graph_to_hypergraph(bench_graph());
  return h;
}

void BM_IpmMatching(benchmark::State& state) {
  const Hypergraph& h = bench_hypergraph();
  PartitionConfig cfg;
  for (auto _ : state) {
    Rng rng(42);
    benchmark::DoNotOptimize(ipm_matching(h, cfg, 0, rng));
  }
  state.SetItemsProcessed(state.iterations() * h.num_vertices());
}
BENCHMARK(BM_IpmMatching);

void BM_Contract(benchmark::State& state) {
  const Hypergraph& h = bench_hypergraph();
  PartitionConfig cfg;
  Rng rng(42);
  const auto match = ipm_matching(h, cfg, 0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(contract(h, match));
  }
  state.SetItemsProcessed(state.iterations() * h.num_pins());
}
BENCHMARK(BM_Contract);

void BM_GreedyGrowingBisection(benchmark::State& state) {
  const Hypergraph& h = bench_hypergraph();
  BisectionTargets t;
  t.target0 = h.total_vertex_weight() / 2;
  t.target1 = h.total_vertex_weight() - t.target0;
  t.epsilon = 0.05;
  for (auto _ : state) {
    Rng rng(7);
    benchmark::DoNotOptimize(greedy_growing_bisection(h, t, rng));
  }
}
BENCHMARK(BM_GreedyGrowingBisection);

void BM_FmRefineBisection(benchmark::State& state) {
  const Hypergraph& h = bench_hypergraph();
  BisectionTargets t;
  t.target0 = h.total_vertex_weight() / 2;
  t.target1 = h.total_vertex_weight() - t.target0;
  t.epsilon = 0.05;
  PartitionConfig cfg;
  IdVector<VertexId, PartId> start(h.num_vertices());
  Rng init(9);
  for (auto& s : start) s = PartId{static_cast<Index>(init.below(2))};
  for (auto _ : state) {
    IdVector<VertexId, PartId> side = start;
    Rng rng(11);
    benchmark::DoNotOptimize(fm_refine_bisection(h, side, t, cfg, rng));
  }
}
BENCHMARK(BM_FmRefineBisection);

void BM_BuildRepartitionModel(benchmark::State& state) {
  const Hypergraph& h = bench_hypergraph();
  PartitionConfig cfg;
  cfg.num_parts = 16;
  const Partition old_p = partition_hypergraph(h, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_repartition_model(h, old_p, 100));
  }
}
BENCHMARK(BM_BuildRepartitionModel);

void BM_PartitionHypergraphK(benchmark::State& state) {
  const Hypergraph& h = bench_hypergraph();
  PartitionConfig cfg;
  cfg.num_parts = static_cast<Index>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition_hypergraph(h, cfg));
  }
}
BENCHMARK(BM_PartitionHypergraphK)->Arg(2)->Arg(8)->Arg(32);

void BM_PartitionGraphK(benchmark::State& state) {
  const Graph& g = bench_graph();
  PartitionConfig cfg;
  cfg.num_parts = static_cast<Index>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition_graph(g, cfg));
  }
}
BENCHMARK(BM_PartitionGraphK)->Arg(2)->Arg(8)->Arg(32);

void BM_HeavyEdgeMatching(benchmark::State& state) {
  const Graph& g = bench_graph();
  for (auto _ : state) {
    Rng rng(5);
    benchmark::DoNotOptimize(heavy_edge_matching(g, 0, rng));
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_HeavyEdgeMatching);

void BM_ConnectivityCut(benchmark::State& state) {
  const Hypergraph& h = bench_hypergraph();
  PartitionConfig cfg;
  cfg.num_parts = 16;
  const Partition p = partition_hypergraph(h, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(connectivity_cut(h, p));
  }
  state.SetItemsProcessed(state.iterations() * h.num_pins());
}
BENCHMARK(BM_ConnectivityCut);

// The hot-path counter comparison behind obs::CachedCounter (see
// docs/OBSERVABILITY.md): counter() takes the registry mutex per bump,
// the cached handle is two relaxed loads + a relaxed fetch_add.
void BM_CounterBump(benchmark::State& state) {
  for (auto _ : state) {
    obs::counter("bench.counter_bump") += 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterBump);

void BM_CachedCounterBump(benchmark::State& state) {
  static obs::CachedCounter counter("bench.cached_counter_bump");
  for (auto _ : state) {
    counter += 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CachedCounterBump);

// Same comparison for the histogram hot path: record() through the registry
// lookup vs. the cached handle's lock-free bucket increment.
void BM_HistogramRecord(benchmark::State& state) {
  for (auto _ : state) {
    obs::histogram("bench.histogram_record").record(7);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_CachedHistogramRecord(benchmark::State& state) {
  static obs::CachedHistogram hist("bench.cached_histogram_record");
  std::int64_t v = 0;
  for (auto _ : state) {
    hist.record(v++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CachedHistogramRecord);

// --- structured perf-smoke mode (--json=FILE) ---

struct MicroOptions {
  std::string json_path;
  std::string dataset = "auto-like";
  double scale = 0.08;
  Index k = 16;
  Weight alpha = 100;
  Index trials = 3;
  std::uint64_t seed = 42;
  int ranks = 2;
};

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// ns per bump of `fn` over `iters` iterations.
template <typename Fn>
double time_bumps_ns(Fn&& fn, int iters) {
  WallTimer timer;
  for (int i = 0; i < iters; ++i) fn();
  return timer.seconds() * 1e9 / iters;
}

int run_structured(const MicroOptions& opt) {
  // Mix dataset/k/alpha into the seed chain (not just the trial index) so
  // sweeps over configurations use distinct RNG streams.
  std::uint64_t base_seed = derive_seed(opt.seed, fnv1a(opt.dataset));
  base_seed = derive_seed(base_seed, static_cast<std::uint64_t>(opt.k));
  base_seed = derive_seed(base_seed, static_cast<std::uint64_t>(opt.alpha));

  std::vector<double> partition_seconds, partition_cut;
  std::vector<double> repartition_seconds, repartition_cost;
  std::vector<double> parallel_seconds;

  for (Index trial = 0; trial < opt.trials; ++trial) {
    const std::uint64_t trial_seed =
        derive_seed(base_seed, static_cast<std::uint64_t>(trial));
    const Graph g =
        make_dataset(opt.dataset, opt.scale, derive_seed(trial_seed, 1));
    const Hypergraph h = graph_to_hypergraph(g);

    PartitionConfig pcfg;
    pcfg.num_parts = opt.k;
    pcfg.seed = derive_seed(trial_seed, 2);

    WallTimer timer;
    const Partition p = partition_hypergraph(h, pcfg);
    partition_seconds.push_back(timer.seconds());
    partition_cut.push_back(static_cast<double>(connectivity_cut(h, p)));

    // Repartition from an assignment produced by a different seed: a
    // worst-case-ish migration instance, deterministic per trial.
    PartitionConfig old_cfg = pcfg;
    old_cfg.seed = derive_seed(trial_seed, 3);
    const Partition old_p = partition_hypergraph(h, old_cfg);
    RepartitionerConfig rcfg;
    rcfg.partition = pcfg;
    rcfg.alpha = opt.alpha;
    const RepartitionResult r = hypergraph_repartition(h, old_p, rcfg);
    repartition_seconds.push_back(r.seconds);
    repartition_cost.push_back(r.cost.normalized_total());

    if (opt.ranks > 1) {
      ParallelPartitionConfig par_cfg;
      par_cfg.base = pcfg;
      par_cfg.base.seed = derive_seed(trial_seed, 4);
      par_cfg.num_ranks = opt.ranks;
      const ParallelPartitionResult pr =
          parallel_partition_hypergraph(h, par_cfg);
      parallel_seconds.push_back(pr.seconds);
    }
  }

  const double counter_ns =
      time_bumps_ns([] { obs::counter("bench.micro.counter") += 1; },
                    200000);
  static obs::CachedCounter cached("bench.micro.cached_counter");
  const double cached_ns = time_bumps_ns([] { cached += 1; }, 200000);

  // Observability overhead (acceptance: <1% on this bench): every
  // histogram record the instrumented trials performed, costed at the rate
  // of the path that produced it — fm.move_gain uses the batched local
  // accumulator (HistogramSnapshot::record + one merge per pass), all
  // other seams the cached atomic record — as a fraction of trial time.
  const auto hists = obs::global_registry().histograms();
  std::uint64_t histogram_records = 0;
  for (const auto& [name, snap] : hists) histogram_records += snap.count;
  const auto fm_it = hists.find("fm.move_gain");
  const std::uint64_t batched_records =
      fm_it != hists.end() ? fm_it->second.count : 0;
  const std::uint64_t direct_records = histogram_records - batched_records;
  static obs::CachedHistogram bench_hist("bench.micro.histogram");
  const double histogram_record_ns =
      time_bumps_ns([] { bench_hist.record(42); }, 200000);
  obs::HistogramSnapshot batch;
  std::int64_t batch_value = 0;
  const double batch_record_ns =
      time_bumps_ns([&] { batch.record(batch_value++); }, 200000);
  if (batch.count != 200000)
    std::fprintf(stderr, "warn: histogram batch timing miscount\n");
  double trial_seconds = 0.0;
  for (const double s : partition_seconds) trial_seconds += s;
  for (const double s : repartition_seconds) trial_seconds += s;
  for (const double s : parallel_seconds) trial_seconds += s;
  const double obs_ns =
      static_cast<double>(batched_records) * batch_record_ns +
      static_cast<double>(direct_records) * histogram_record_ns;
  const double obs_overhead_pct =
      trial_seconds > 0.0 ? obs_ns / (trial_seconds * 1e9) * 100.0 : 0.0;
  // Comm-latency tail (worst p99 across collective kinds) and
  // critical-path wait of the parallel trials (zero with --ranks=1).
  double comm_latency_p99_ns = 0.0;
  for (const auto& [name, snap] : hists) {
    if (name.rfind("comm.", 0) == 0 &&
        name.size() > 8 && name.compare(name.size() - 8, 8, ".call_ns") == 0)
      comm_latency_p99_ns = std::max(comm_latency_p99_ns,
                                     static_cast<double>(snap.p99()));
  }
  const obs::CriticalPathSummary cp = obs::latest_critical_path();
  const double epoch_wait_frac = cp.valid ? cp.wait_frac : 0.0;

  bench::BenchJson doc("micro_partition");
  doc.add_string("dataset", opt.dataset);
  char config[192];
  std::snprintf(config, sizeof(config),
                "{\"scale\":%.9g,\"k\":%lld,\"alpha\":%lld,\"trials\":%lld,"
                "\"seed\":%llu,\"ranks\":%d}",
                opt.scale, static_cast<long long>(opt.k),
                static_cast<long long>(opt.alpha),
                static_cast<long long>(opt.trials),
                static_cast<unsigned long long>(opt.seed), opt.ranks);
  doc.add_raw("config", config);
  std::string metrics = "{";
  metrics += "\"partition_seconds\":" +
             bench::TrialStats::of(partition_seconds).to_json();
  metrics +=
      ",\"partition_cut\":" + bench::TrialStats::of(partition_cut).to_json();
  metrics += ",\"repartition_seconds\":" +
             bench::TrialStats::of(repartition_seconds).to_json();
  metrics += ",\"repartition_normalized_cost\":" +
             bench::TrialStats::of(repartition_cost).to_json();
  metrics += ",\"parallel_partition_seconds\":" +
             bench::TrialStats::of(parallel_seconds).to_json();
  char counters[320];
  std::snprintf(counters, sizeof(counters),
                ",\"counter_bump_ns\":%.4g,\"cached_counter_bump_ns\":%.4g,"
                "\"histogram_record_ns\":%.4g,"
                "\"histogram_batch_record_ns\":%.4g,"
                "\"obs_overhead_pct\":%.4g,"
                "\"comm_latency_p99_ns\":%.6g,\"epoch_wait_frac\":%.6g}",
                counter_ns, cached_ns, histogram_record_ns, batch_record_ns,
                obs_overhead_pct, comm_latency_p99_ns, epoch_wait_frac);
  metrics += counters;
  doc.add_raw("metrics", metrics);
  if (!doc.write(opt.json_path)) {
    std::fprintf(stderr, "error: could not write %s\n",
                 opt.json_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote bench json to %s\n", opt.json_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  MicroOptions opt;
  bool structured = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--json") {
      opt.json_path = value;
      structured = true;
    } else if (key == "--dataset") {
      opt.dataset = value;
    } else if (key == "--scale") {
      opt.scale = std::stod(value);
    } else if (key == "--k") {
      opt.k = static_cast<Index>(std::stol(value));
    } else if (key == "--alpha") {
      opt.alpha = static_cast<Weight>(std::stoll(value));
    } else if (key == "--trials") {
      opt.trials = static_cast<Index>(std::stol(value));
    } else if (key == "--seed") {
      opt.seed = std::stoull(value);
    } else if (key == "--ranks") {
      opt.ranks = static_cast<int>(std::stol(value));
    }
    // Unrecognized flags fall through to google-benchmark below.
  }
  if (structured) return run_structured(opt);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
