// google-benchmark microbenchmarks of the partitioner kernels: IPM
// matching, contraction, FM refinement, greedy growing, model build, and
// the end-to-end partitioners.
#include <benchmark/benchmark.h>

#include "core/repartition_model.hpp"
#include "graphpart/gcoarsen.hpp"
#include "graphpart/gpartitioner.hpp"
#include "hypergraph/convert.hpp"
#include "metrics/cut.hpp"
#include "partition/contract.hpp"
#include "partition/initial.hpp"
#include "partition/matching_ipm.hpp"
#include "partition/partitioner.hpp"
#include "partition/refine_fm.hpp"
#include "workload/datasets.hpp"

namespace {

using namespace hgr;

const Graph& bench_graph() {
  static const Graph g = make_dataset("auto-like", 0.08, 3);
  return g;
}

const Hypergraph& bench_hypergraph() {
  static const Hypergraph h = graph_to_hypergraph(bench_graph());
  return h;
}

void BM_IpmMatching(benchmark::State& state) {
  const Hypergraph& h = bench_hypergraph();
  PartitionConfig cfg;
  for (auto _ : state) {
    Rng rng(42);
    benchmark::DoNotOptimize(ipm_matching(h, cfg, 0, rng));
  }
  state.SetItemsProcessed(state.iterations() * h.num_vertices());
}
BENCHMARK(BM_IpmMatching);

void BM_Contract(benchmark::State& state) {
  const Hypergraph& h = bench_hypergraph();
  PartitionConfig cfg;
  Rng rng(42);
  const auto match = ipm_matching(h, cfg, 0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(contract(h, match));
  }
  state.SetItemsProcessed(state.iterations() * h.num_pins());
}
BENCHMARK(BM_Contract);

void BM_GreedyGrowingBisection(benchmark::State& state) {
  const Hypergraph& h = bench_hypergraph();
  BisectionTargets t;
  t.target0 = h.total_vertex_weight() / 2;
  t.target1 = h.total_vertex_weight() - t.target0;
  t.epsilon = 0.05;
  for (auto _ : state) {
    Rng rng(7);
    benchmark::DoNotOptimize(greedy_growing_bisection(h, t, rng));
  }
}
BENCHMARK(BM_GreedyGrowingBisection);

void BM_FmRefineBisection(benchmark::State& state) {
  const Hypergraph& h = bench_hypergraph();
  BisectionTargets t;
  t.target0 = h.total_vertex_weight() / 2;
  t.target1 = h.total_vertex_weight() - t.target0;
  t.epsilon = 0.05;
  PartitionConfig cfg;
  std::vector<PartId> start(static_cast<std::size_t>(h.num_vertices()));
  Rng init(9);
  for (auto& s : start) s = static_cast<PartId>(init.below(2));
  for (auto _ : state) {
    std::vector<PartId> side = start;
    Rng rng(11);
    benchmark::DoNotOptimize(fm_refine_bisection(h, side, t, cfg, rng));
  }
}
BENCHMARK(BM_FmRefineBisection);

void BM_BuildRepartitionModel(benchmark::State& state) {
  const Hypergraph& h = bench_hypergraph();
  PartitionConfig cfg;
  cfg.num_parts = 16;
  const Partition old_p = partition_hypergraph(h, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_repartition_model(h, old_p, 100));
  }
}
BENCHMARK(BM_BuildRepartitionModel);

void BM_PartitionHypergraphK(benchmark::State& state) {
  const Hypergraph& h = bench_hypergraph();
  PartitionConfig cfg;
  cfg.num_parts = static_cast<PartId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition_hypergraph(h, cfg));
  }
}
BENCHMARK(BM_PartitionHypergraphK)->Arg(2)->Arg(8)->Arg(32);

void BM_PartitionGraphK(benchmark::State& state) {
  const Graph& g = bench_graph();
  PartitionConfig cfg;
  cfg.num_parts = static_cast<PartId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition_graph(g, cfg));
  }
}
BENCHMARK(BM_PartitionGraphK)->Arg(2)->Arg(8)->Arg(32);

void BM_HeavyEdgeMatching(benchmark::State& state) {
  const Graph& g = bench_graph();
  for (auto _ : state) {
    Rng rng(5);
    benchmark::DoNotOptimize(heavy_edge_matching(g, 0, rng));
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_HeavyEdgeMatching);

void BM_ConnectivityCut(benchmark::State& state) {
  const Hypergraph& h = bench_hypergraph();
  PartitionConfig cfg;
  cfg.num_parts = 16;
  const Partition p = partition_hypergraph(h, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(connectivity_cut(h, p));
  }
  state.SetItemsProcessed(state.iterations() * h.num_pins());
}
BENCHMARK(BM_ConnectivityCut);

}  // namespace
