// Microbenchmark of the in-process comm runtime's collectives.
//
// Measures ns/call of alltoallv, allgather, and allreduce at p in {2,4,8}
// with small (64 B per destination slice) and large (64 KiB per slice)
// payloads. This is the latency tax every IPM coarsening round and
// refinement pass-pair pays (paper Section 4); the flat-buffer comm core
// exists to shrink it, and this binary is the proof.
//
// --json=FILE emits one hgr-bench-v1 document whose metrics are flat
// "<collective>_<size>_p<ranks>_ns_per_call" numbers so
// tools/bench_report.py tracks them in BENCH_partition.json alongside the
// end-to-end partition timings. Other flags: --iters-small= --iters-large=
// --seed= (payload fill only; timings do not depend on it).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/timer.hpp"
#include "parallel/comm.hpp"

namespace {

using namespace hgr;

struct CommBenchOptions {
  std::string json_path;
  int iters_small = 3000;
  int iters_large = 300;
  int warmup = 50;
};

constexpr std::size_t kSmallWords = 8;     // 64 B of int64 per slice
constexpr std::size_t kLargeWords = 8192;  // 64 KiB of int64 per slice

/// Run `op(ctx)` iters times on every rank of a p-rank communicator and
/// return the wall nanoseconds per call measured by rank 0 between two
/// barriers (all ranks execute the same loop, so the measurement is the
/// per-call latency of the congruent collective).
template <typename Op>
double time_collective(int ranks, int warmup, int iters, Op&& op) {
  Comm comm(ranks);
  double seconds = 0.0;
  comm.run([&](RankContext& ctx) {
    for (int i = 0; i < warmup; ++i) op(ctx);
    ctx.barrier();
    WallTimer timer;
    for (int i = 0; i < iters; ++i) op(ctx);
    ctx.barrier();
    if (ctx.rank() == 0) seconds = timer.seconds();
  });
  return seconds * 1e9 / iters;
}

/// Primary metric: the flat count/commit/fill API every migrated caller
/// uses (FlatBuffer built from the rank's pool each call, so steady-state
/// pool recycling is part of what is measured).
double bench_alltoallv(int ranks, std::size_t words, int warmup, int iters) {
  return time_collective(ranks, warmup, iters, [words](RankContext& ctx) {
    FlatBuffer<std::int64_t> outgoing = ctx.make_buffer<std::int64_t>();
    for (int d = 0; d < ctx.size(); ++d) outgoing.count(d) = words;
    outgoing.commit_counts();
    for (int d = 0; d < ctx.size(); ++d) {
      const std::int64_t value = static_cast<std::int64_t>(ctx.rank()) * 100 + d;
      for (std::int64_t& out : outgoing.push_n(d, words)) out = value;
    }
    const FlatBuffer<std::int64_t> incoming = ctx.alltoallv(outgoing);
    if (incoming.total() != words * static_cast<std::size_t>(ctx.size()))
      throw std::runtime_error("alltoallv shape mismatch");
  });
}

/// Reference metric: the vector<vector> compatibility shim (per-call ragged
/// allocation plus the extra copy pair it implies).
double bench_alltoallv_ragged(int ranks, std::size_t words, int warmup,
                              int iters) {
  return time_collective(ranks, warmup, iters, [words](RankContext& ctx) {
    // hgr-lint: ragged-ok (measures the ragged compatibility shim)
    std::vector<std::vector<std::int64_t>> outgoing(
        static_cast<std::size_t>(ctx.size()));
    for (int d = 0; d < ctx.size(); ++d)
      outgoing[static_cast<std::size_t>(d)]
          .assign(words, static_cast<std::int64_t>(ctx.rank() * 100 + d));
    const auto incoming = ctx.alltoallv(outgoing);
    if (incoming.size() != static_cast<std::size_t>(ctx.size()))
      throw std::runtime_error("alltoallv shape mismatch");
  });
}

double bench_allgather(int ranks, std::size_t words, int warmup, int iters) {
  return time_collective(ranks, warmup, iters, [words](RankContext& ctx) {
    const std::vector<std::int64_t> mine(
        words, static_cast<std::int64_t>(ctx.rank()));
    const FlatBuffer<std::int64_t> all =
        ctx.allgatherv<std::int64_t>({mine.data(), mine.size()});
    if (all.slots() != ctx.size())
      throw std::runtime_error("allgather shape mismatch");
  });
}

double bench_allreduce(int ranks, int warmup, int iters) {
  return time_collective(ranks, warmup, iters, [](RankContext& ctx) {
    const std::int64_t sum =
        ctx.allreduce_sum<std::int64_t>(ctx.rank() + 1);
    const std::int64_t expect =
        static_cast<std::int64_t>(ctx.size()) * (ctx.size() + 1) / 2;
    if (sum != expect) throw std::runtime_error("allreduce value mismatch");
  });
}

int run(const CommBenchOptions& opt) {
  std::string metrics = "{";
  bool first = true;
  const auto add = [&metrics, &first](const std::string& name, double ns) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%.6g", first ? "" : ",",
                  name.c_str(), ns);
    metrics += buf;
    first = false;
    std::fprintf(stderr, "  %-32s %12.1f ns/call\n", name.c_str(), ns);
  };

  for (const int p : {2, 4, 8}) {
    const std::string suffix = "_p" + std::to_string(p) + "_ns_per_call";
    add("alltoallv_small" + suffix,
        bench_alltoallv(p, kSmallWords, opt.warmup, opt.iters_small));
    add("alltoallv_large" + suffix,
        bench_alltoallv(p, kLargeWords, opt.warmup, opt.iters_large));
    add("alltoallv_ragged_small" + suffix,
        bench_alltoallv_ragged(p, kSmallWords, opt.warmup, opt.iters_small));
    add("allgather_small" + suffix,
        bench_allgather(p, kSmallWords, opt.warmup, opt.iters_small));
    add("allgather_large" + suffix,
        bench_allgather(p, kLargeWords, opt.warmup, opt.iters_large));
    add("allreduce" + suffix, bench_allreduce(p, opt.warmup, opt.iters_small));
  }
  metrics += "}";

  if (opt.json_path.empty()) return 0;
  bench::BenchJson doc("micro_comm");
  doc.add_string("dataset", "collectives");
  char config[160];
  std::snprintf(config, sizeof(config),
                "{\"iters_small\":%d,\"iters_large\":%d,\"warmup\":%d,"
                "\"small_words\":%zu,\"large_words\":%zu}",
                opt.iters_small, opt.iters_large, opt.warmup, kSmallWords,
                kLargeWords);
  doc.add_raw("config", config);
  doc.add_raw("metrics", metrics);
  if (!doc.write(opt.json_path)) {
    std::fprintf(stderr, "error: could not write %s\n", opt.json_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote bench json to %s\n", opt.json_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CommBenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--json") {
      opt.json_path = value;
    } else if (key == "--iters-small") {
      opt.iters_small = std::stoi(value);
    } else if (key == "--iters-large") {
      opt.iters_large = std::stoi(value);
    } else if (key == "--warmup") {
      opt.warmup = std::stoi(value);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  return run(opt);
}
