// Shared driver for the figure-reproduction benches (Figures 2-8).
//
// Each binary runs one dataset through both perturbation modes (cost
// figures) or one/two datasets through the structural mode (run-time
// figures), matching the layout of the paper's figures. Defaults are sized
// for a single-core container; flags (--scale, --k, --alpha, --epochs,
// --trials, --seed) unlock the full sweep.
#pragma once

#include <iostream>
#include <string>

#include "obs/trace.hpp"
#include "workload/experiment.hpp"

namespace hgr::bench {

/// Dump the accumulated trace (phase tree + counters) if the user passed
/// --trace-json=FILE; the schema is shared with hgr_cli (see
/// docs/OBSERVABILITY.md), so BENCH_*.json tooling can consume either.
inline void maybe_dump_trace(const ExperimentConfig& cfg) {
  if (cfg.trace_json.empty()) return;
  if (obs::write_trace_json(cfg.trace_json))
    std::cerr << "wrote trace to " << cfg.trace_json << "\n";
  else
    std::cerr << "error: could not write trace to " << cfg.trace_json << "\n";
}

inline ExperimentConfig default_config(const std::string& dataset,
                                       int argc, char** argv) {
  ExperimentConfig cfg;
  cfg.dataset = dataset;
  cfg.scale = 1.0;           // full analog scale (see datasets.hpp table)
  cfg.k_values = {16, 64};   // paper: 16..64 processors
  cfg.alphas = {1, 10, 100, 1000};
  cfg.num_epochs = 4;        // 1 static bootstrap + 3 repartitions
  cfg.num_trials = 1;        // paper used 20; raise with --trials=
  cfg.apply_cli(argc, argv);
  return cfg;
}

/// Cost figure (like Figures 2-6): (a) perturbed structure, (b) perturbed
/// weights.
inline int run_cost_figure(const std::string& figure,
                           const std::string& dataset, int argc,
                           char** argv) {
  ExperimentConfig cfg = default_config(dataset, argc, argv);
  for (const PerturbKind kind :
       {PerturbKind::kStructure, PerturbKind::kWeights}) {
    cfg.perturb = kind;
    std::cerr << "[" << figure << "] running " << cfg.dataset << " "
              << to_string(kind) << " (scale=" << cfg.scale << ")\n";
    const auto cells = run_experiment(cfg, &std::cerr);
    print_cost_figure(figure, cfg, cells, std::cout);
  }
  maybe_dump_trace(cfg);
  return 0;
}

/// Run-time figure (like Figures 7-8): perturbed structure only, reporting
/// repartitioning wall time.
inline int run_runtime_figure(const std::string& figure,
                              const std::string& dataset, int argc,
                              char** argv) {
  ExperimentConfig cfg = default_config(dataset, argc, argv);
  cfg.perturb = PerturbKind::kStructure;
  std::cerr << "[" << figure << "] running " << cfg.dataset
            << " (scale=" << cfg.scale << ")\n";
  const auto cells = run_experiment(cfg, &std::cerr);
  print_runtime_figure(figure, cfg, cells, std::cout);
  maybe_dump_trace(cfg);
  return 0;
}

}  // namespace hgr::bench
