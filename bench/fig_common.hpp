// Shared driver for the figure-reproduction benches (Figures 2-8).
//
// Each binary runs one dataset through both perturbation modes (cost
// figures) or one/two datasets through the structural mode (run-time
// figures), matching the layout of the paper's figures. Defaults are sized
// for a single-core container; flags (--scale, --k, --alpha, --epochs,
// --trials, --seed) unlock the full sweep.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "obs/trace.hpp"
#include "workload/experiment.hpp"

namespace hgr::bench {

/// Dump the accumulated trace (phase tree + counters) if the user passed
/// --trace-json=FILE; the schema is shared with hgr_cli (see
/// docs/OBSERVABILITY.md), so BENCH_*.json tooling can consume either.
inline void maybe_dump_trace(const ExperimentConfig& cfg) {
  if (cfg.trace_json.empty()) return;
  if (obs::write_trace_json(cfg.trace_json))
    std::cerr << "wrote trace to " << cfg.trace_json << "\n";
  else
    std::cerr << "error: could not write trace to " << cfg.trace_json << "\n";
}

inline ExperimentConfig default_config(const std::string& dataset,
                                       int argc, char** argv) {
  ExperimentConfig cfg;
  cfg.dataset = dataset;
  cfg.scale = 1.0;           // full analog scale (see datasets.hpp table)
  cfg.k_values = {16, 64};   // paper: 16..64 processors
  cfg.alphas = {1, 10, 100, 1000};
  cfg.num_epochs = 4;        // 1 static bootstrap + 3 repartitions
  cfg.num_trials = 1;        // paper used 20; raise with --trials=
  cfg.apply_cli(argc, argv);
  // The timeline must be recording before any work runs.
  if (!cfg.chrome_trace.empty()) obs::set_events_enabled(true);
  return cfg;
}

/// One figure cell tagged with its perturbation mode (CellResult itself is
/// perturbation-agnostic).
using TaggedCell = std::pair<std::string, CellResult>;

/// "cells" array of the hgr-bench-v1 document.
inline std::string cells_to_json(const std::vector<TaggedCell>& cells) {
  std::string out = "[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i].second;
    if (i != 0) out += ',';
    out += "{\"perturb\":\"";
    obs::json_escape(out, cells[i].first);
    out += "\",\"algorithm\":\"";
    obs::json_escape(out, to_string(c.algorithm));
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "\",\"k\":%lld,\"alpha\":%lld,\"comm_volume\":%.9g,"
                  "\"migration_volume\":%.9g,\"normalized_total\":%.9g,"
                  "\"repart_seconds\":%.9g}",
                  static_cast<long long>(c.k),
                  static_cast<long long>(c.alpha), c.comm_volume,
                  c.migration_volume, c.normalized_total, c.repart_seconds);
    out += buf;
  }
  out += ']';
  return out;
}

/// Write every artifact the flags asked for: --trace-json, --epoch-csv,
/// --chrome-trace, --json (hgr-bench-v1 with the figure cells).
inline void dump_artifacts(const ExperimentConfig& cfg,
                           const std::string& bench_name,
                           const std::vector<TaggedCell>& cells,
                           const EpochSeries& series) {
  maybe_dump_trace(cfg);
  if (!cfg.epoch_csv.empty()) {
    if (series.write_csv(cfg.epoch_csv))
      std::cerr << "wrote epoch csv to " << cfg.epoch_csv << "\n";
    else
      std::cerr << "error: could not write " << cfg.epoch_csv << "\n";
  }
  if (!cfg.chrome_trace.empty()) {
    if (obs::write_chrome_trace(cfg.chrome_trace))
      std::cerr << "wrote chrome trace to " << cfg.chrome_trace << "\n";
    else
      std::cerr << "error: could not write " << cfg.chrome_trace << "\n";
  }
  if (!cfg.bench_json.empty()) {
    BenchJson doc(bench_name);
    doc.add_string("dataset", cfg.dataset);
    char config[160];
    std::snprintf(config, sizeof(config),
                  "{\"scale\":%.9g,\"epochs\":%lld,\"trials\":%lld,"
                  "\"seed\":%llu,\"epsilon\":%.9g}",
                  cfg.scale, static_cast<long long>(cfg.num_epochs),
                  static_cast<long long>(cfg.num_trials),
                  static_cast<unsigned long long>(cfg.seed), cfg.epsilon);
    doc.add_raw("config", config);
    doc.add_raw("cells", cells_to_json(cells));
    if (doc.write(cfg.bench_json))
      std::cerr << "wrote bench json to " << cfg.bench_json << "\n";
    else
      std::cerr << "error: could not write " << cfg.bench_json << "\n";
  }
}

/// Cost figure (like Figures 2-6): (a) perturbed structure, (b) perturbed
/// weights.
inline int run_cost_figure(const std::string& figure,
                           const std::string& dataset, int argc,
                           char** argv) {
  ExperimentConfig cfg = default_config(dataset, argc, argv);
  std::vector<TaggedCell> all_cells;
  EpochSeries series;
  for (const PerturbKind kind :
       {PerturbKind::kStructure, PerturbKind::kWeights}) {
    cfg.perturb = kind;
    std::cerr << "[" << figure << "] running " << cfg.dataset << " "
              << to_string(kind) << " (scale=" << cfg.scale << ")\n";
    const auto cells = run_experiment(cfg, &std::cerr, &series);
    print_cost_figure(figure, cfg, cells, std::cout);
    for (const CellResult& c : cells)
      all_cells.emplace_back(to_string(kind), c);
  }
  dump_artifacts(cfg, figure, all_cells, series);
  return 0;
}

/// Run-time figure (like Figures 7-8): perturbed structure only, reporting
/// repartitioning wall time.
inline int run_runtime_figure(const std::string& figure,
                              const std::string& dataset, int argc,
                              char** argv) {
  ExperimentConfig cfg = default_config(dataset, argc, argv);
  cfg.perturb = PerturbKind::kStructure;
  std::cerr << "[" << figure << "] running " << cfg.dataset
            << " (scale=" << cfg.scale << ")\n";
  EpochSeries series;
  const auto cells = run_experiment(cfg, &std::cerr, &series);
  print_runtime_figure(figure, cfg, cells, std::cout);
  std::vector<TaggedCell> tagged;
  for (const CellResult& c : cells)
    tagged.emplace_back(to_string(cfg.perturb), c);
  dump_artifacts(cfg, figure, tagged, series);
  return 0;
}

}  // namespace hgr::bench
