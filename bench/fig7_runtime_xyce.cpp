// Figure 7: repartitioning run time, xyce680s, perturbed data structure.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  return hgr::bench::run_runtime_figure("Figure 7", "xyce680s-like", argc,
                                        argv);
}
