// Figure 2: normalized total cost for xyce680s, (a) perturbed structure
// and (b) perturbed weights, over k in {16,64} and alpha in {1..1000}.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  return hgr::bench::run_cost_figure("Figure 2", "xyce680s-like", argc, argv);
}
