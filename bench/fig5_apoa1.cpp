// Figure 5: normalized total cost for apoa1-10 (molecular dynamics analog).
#include "fig_common.hpp"

int main(int argc, char** argv) {
  return hgr::bench::run_cost_figure("Figure 5", "apoa1-like", argc, argv);
}
