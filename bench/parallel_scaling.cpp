// Parallel partitioner scaling study — the paper's closing claim is "The
// experiments showed that our implementation is scalable." Wall-clock
// scalability is not observable on a single-core container (DESIGN.md §2),
// so this bench reports what *is* machine-independent: solution quality
// (connectivity-1 cut, imbalance) and the communication traffic of the
// runtime (bytes, messages, collectives) as the rank count grows, for both
// static partitioning and repartitioning via the augmented model.
#include <cstdio>
#include <cstring>
#include <string>

#include "hypergraph/convert.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "metrics/migration.hpp"
#include "parallel/par_partitioner.hpp"
#include "partition/partitioner.hpp"
#include "workload/datasets.hpp"

int main(int argc, char** argv) {
  using namespace hgr;
  double scale = 0.3;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0)
      scale = std::stod(argv[i] + 8);
  }
  const Graph g = make_dataset("auto-like", scale, 5);
  const Hypergraph h = graph_to_hypergraph(g);
  std::printf("=== Parallel partitioner scaling (auto-like, %s, k=16) ===\n",
              h.summary().c_str());

  PartitionConfig base;
  base.num_parts = 16;
  base.epsilon = 0.05;
  base.seed = 7;

  // Serial reference.
  const Partition serial = partition_hypergraph(h, base);
  std::printf("%-8s cut=%-8lld imb=%.3f  (serial reference)\n", "p=1*",
              static_cast<long long>(connectivity_cut(h, serial)),
              imbalance(h.vertex_weights(), serial));

  std::printf("\n%-6s %10s %8s %14s %12s %12s\n", "ranks", "cut", "imb",
              "bytes", "messages", "collectives");
  for (const int ranks : {1, 2, 4, 8}) {
    ParallelPartitionConfig cfg;
    cfg.num_ranks = ranks;
    cfg.base = base;
    const ParallelPartitionResult r = parallel_partition_hypergraph(h, cfg);
    std::printf("%-6d %10lld %8.3f %14llu %12llu %12llu\n", ranks,
                static_cast<long long>(connectivity_cut(h, r.partition)),
                imbalance(h.vertex_weights(), r.partition),
                static_cast<unsigned long long>(r.traffic.bytes_sent),
                static_cast<unsigned long long>(r.traffic.messages_sent),
                static_cast<unsigned long long>(r.traffic.collectives));
  }

  // The paper's future-work proposal: local IPM instead of global IPM
  // ("We plan to improve this performance by using local heuristics ...
  // to reduce global communication"). Traffic drops sharply; quality
  // gives back a little.
  std::printf("\nglobal vs local IPM (the paper's Section 6 proposal):\n");
  for (const int ranks : {2, 4, 8}) {
    for (const bool local : {false, true}) {
      ParallelPartitionConfig cfg;
      cfg.num_ranks = ranks;
      cfg.base = base;
      cfg.local_matching = local;
      const ParallelPartitionResult r = parallel_partition_hypergraph(h, cfg);
      std::printf("ranks=%d matching=%-6s cut=%-8lld bytes=%llu\n", ranks,
                  local ? "local" : "global",
                  static_cast<long long>(connectivity_cut(h, r.partition)),
                  static_cast<unsigned long long>(r.traffic.bytes_sent));
    }
  }

  // Repartitioning through the augmented model, in parallel.
  std::printf("\nparallel repartition (alpha=100) vs old partition:\n");
  for (const int ranks : {2, 4}) {
    ParallelPartitionConfig cfg;
    cfg.num_ranks = ranks;
    cfg.base = base;
    const ParallelPartitionResult r =
        parallel_hypergraph_repartition(h, serial, 100, cfg);
    std::printf(
        "ranks=%d cut=%lld migration=%lld bytes=%llu\n", ranks,
        static_cast<long long>(connectivity_cut(h, r.partition)),
        static_cast<long long>(
            migration_volume(h.vertex_sizes(), serial, r.partition)),
        static_cast<unsigned long long>(r.traffic.bytes_sent));
  }
  return 0;
}
