// Parallel scaling study, in two layers matching the runtime's two layers.
//
// Thread scaling (the shared-memory execution layer, docs/PARALLELISM.md):
// wall-clock of the three thread-parallel kernels — IPM matching,
// contraction, k-way refinement — on cage14-like at full scale (~30k
// vertices) for 1/2/4/8 threads, plus the determinism cross-check that
// every thread count reproduced the single-thread result bit for bit.
// --json=FILE emits hgr-bench-v1 with per-kernel per-thread-count
// TrialStats and parallel_speedup_t4 (best kernel speedup at 4 threads);
// tools/bench_report.py tracks both. On a single-core container the
// speedup hovers near (or below) 1 — the metric is meaningful on the
// multi-core perf-smoke runner.
//
// Rank scaling (the message-passing skeleton): wall-clock scalability is
// not observable on one core (DESIGN.md §2), so the rank study reports
// what *is* machine-independent — solution quality and communication
// traffic as the rank count grows — and the paper's Section 6 local-IPM
// trade.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "common/workspace.hpp"
#include "hypergraph/convert.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "parallel/par_partitioner.hpp"
#include "partition/contract.hpp"
#include "partition/kway_refine.hpp"
#include "partition/matching_ipm.hpp"
#include "partition/partitioner.hpp"
#include "workload/datasets.hpp"

namespace {

using namespace hgr;

constexpr int kThreadCounts[] = {1, 2, 4, 8};

struct Options {
  std::string json_path;
  double scale = 1.0;  // cage14-like at 1.0 is the issue's ~30k vertices
  Index trials = 3;
  std::uint64_t seed = 7;
};

/// Per-kernel timing series: seconds[thread count] over the trials.
struct KernelSeries {
  const char* name;
  std::vector<double> seconds[std::size(kThreadCounts)] = {};

  double mean(std::size_t ti) const {
    return bench::TrialStats::of(seconds[ti]).mean;
  }
  /// t1.mean / t4.mean (0 when either series is missing).
  double speedup_t4() const {
    const double t1 = mean(0);
    const double t4 = mean(2);
    return t1 > 0.0 && t4 > 0.0 ? t1 / t4 : 0.0;
  }
  std::string to_json() const {
    std::string out = "{";
    for (std::size_t ti = 0; ti < std::size(kThreadCounts); ++ti) {
      if (ti > 0) out += ',';
      out += "\"t" + std::to_string(kThreadCounts[ti]) +
             "\":" + bench::TrialStats::of(seconds[ti]).to_json();
    }
    out += '}';
    return out;
  }
};

/// Runs the three kernels at every thread count, checking that each
/// thread count reproduces the single-thread result exactly.
struct ThreadStudy {
  KernelSeries matching{"matching"};
  KernelSeries contract_k{"contract"};
  KernelSeries kway{"kway_refine"};

  double best_speedup_t4() const {
    double best = 0.0;
    for (const KernelSeries* s : {&matching, &contract_k, &kway})
      best = std::max(best, s->speedup_t4());
    return best;
  }
};

ThreadStudy run_thread_study(const Hypergraph& h, const Options& opt) {
  ThreadStudy study;

  PartitionConfig cfg;
  cfg.num_parts = 8;
  cfg.epsilon = 0.1;

  // Fixed inputs shared by every thread count and trial: the matching that
  // contraction consumes and the starting partition refinement improves.
  Rng match_rng(derive_seed(opt.seed, 1));
  const IdVector<VertexId, VertexId> fixed_match =
      ipm_matching(h, cfg, 0, match_rng);
  Partition start(cfg.num_parts, h.num_vertices());
  Rng part_rng(derive_seed(opt.seed, 2));
  for (const VertexId v : start.vertices())
    start[v] = PartId{static_cast<Index>(
        part_rng.below(static_cast<std::uint64_t>(cfg.num_parts)))};

  IdVector<VertexId, VertexId> match_t1;
  IdVector<VertexId, VertexId> coarse_map_t1;
  Partition refined_t1(cfg.num_parts, h.num_vertices());

  for (std::size_t ti = 0; ti < std::size(kThreadCounts); ++ti) {
    const int threads = kThreadCounts[ti];
    ThreadPool pool(threads);
    Workspace ws;
    ws.set_pool(&pool);
    for (Index trial = 0; trial < opt.trials; ++trial) {
      // Matching.
      Rng rng(derive_seed(opt.seed, 10));
      WallTimer timer;
      const IdVector<VertexId, VertexId> match =
          ipm_matching(h, cfg, 0, rng, &ws);
      study.matching.seconds[ti].push_back(timer.seconds());

      // Contraction (of the shared fixed matching).
      timer.reset();
      CoarseLevel level = contract(h, fixed_match, &ws);
      study.contract_k.seconds[ti].push_back(timer.seconds());

      // K-way refinement (of the shared starting partition).
      Partition p = start;
      Rng refine_rng(derive_seed(opt.seed, 11));
      timer.reset();
      kway_refine(h, p, cfg, refine_rng, 4, &ws);
      study.kway.seconds[ti].push_back(timer.seconds());

      if (ti == 0 && trial == 0) {
        match_t1 = match;
        coarse_map_t1 = level.fine_to_coarse;
        refined_t1 = p;
      } else if (match != match_t1 ||
                 level.fine_to_coarse != coarse_map_t1 ||
                 p.assignment != refined_t1.assignment) {
        std::fprintf(stderr,
                     "FATAL: kernel result differs at %d threads — the "
                     "determinism contract is broken\n",
                     threads);
        std::exit(1);
      }
    }
  }
  return study;
}

void print_thread_study(const ThreadStudy& study) {
  std::printf("\n=== Thread scaling (per-kernel seconds, mean of trials) "
              "===\n");
  std::printf("%-14s", "kernel");
  for (const int t : kThreadCounts) std::printf("  t=%-8d", t);
  std::printf("  speedup(t4)\n");
  for (const KernelSeries* s :
       {&study.matching, &study.contract_k, &study.kway}) {
    std::printf("%-14s", s->name);
    for (std::size_t ti = 0; ti < std::size(kThreadCounts); ++ti)
      std::printf("  %-10.4f", s->mean(ti));
    std::printf("  %.2fx\n", s->speedup_t4());
  }
  std::printf("best speedup at 4 threads: %.2fx  (all thread counts "
              "bit-identical)\n",
              study.best_speedup_t4());
}

int run_json(const Hypergraph& h, const Options& opt) {
  const ThreadStudy study = run_thread_study(h, opt);
  print_thread_study(study);

  bench::BenchJson doc("parallel_scaling");
  doc.add_string("dataset", "cage14-like");
  char config[160];
  std::snprintf(config, sizeof(config),
                "{\"scale\":%.9g,\"trials\":%lld,\"seed\":%llu,"
                "\"vertices\":%lld}",
                opt.scale, static_cast<long long>(opt.trials),
                static_cast<unsigned long long>(opt.seed),
                static_cast<long long>(h.num_vertices()));
  doc.add_raw("config", config);
  std::string metrics = "{";
  metrics += "\"matching_seconds\":" + study.matching.to_json();
  metrics += ",\"contract_seconds\":" + study.contract_k.to_json();
  metrics += ",\"kway_seconds\":" + study.kway.to_json();
  char speedup[64];
  std::snprintf(speedup, sizeof(speedup), ",\"parallel_speedup_t4\":%.4g}",
                study.best_speedup_t4());
  metrics += speedup;
  doc.add_raw("metrics", metrics);
  if (!doc.write(opt.json_path)) {
    std::fprintf(stderr, "error: could not write %s\n",
                 opt.json_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote bench json to %s\n", opt.json_path.c_str());
  return 0;
}

void run_rank_study(const Hypergraph& h) {
  PartitionConfig base;
  base.num_parts = 16;
  base.epsilon = 0.05;
  base.seed = 7;

  const Partition serial = partition_hypergraph(h, base);
  std::printf("%-8s cut=%-8lld imb=%.3f  (serial reference)\n", "p=1*",
              static_cast<long long>(connectivity_cut(h, serial)),
              imbalance(h.vertex_weights(), serial));

  std::printf("\n%-6s %10s %8s %14s %12s %12s\n", "ranks", "cut", "imb",
              "bytes", "messages", "collectives");
  for (const int ranks : {1, 2, 4, 8}) {
    ParallelPartitionConfig cfg;
    cfg.num_ranks = ranks;
    cfg.base = base;
    const ParallelPartitionResult r = parallel_partition_hypergraph(h, cfg);
    std::printf("%-6d %10lld %8.3f %14llu %12llu %12llu\n", ranks,
                static_cast<long long>(connectivity_cut(h, r.partition)),
                imbalance(h.vertex_weights(), r.partition),
                static_cast<unsigned long long>(r.traffic.bytes_sent),
                static_cast<unsigned long long>(r.traffic.messages_sent),
                static_cast<unsigned long long>(r.traffic.collectives));
  }

  // The paper's future-work proposal: local IPM instead of global IPM
  // ("We plan to improve this performance by using local heuristics ...
  // to reduce global communication"). Traffic drops sharply; quality
  // gives back a little.
  std::printf("\nglobal vs local IPM (the paper's Section 6 proposal):\n");
  for (const int ranks : {2, 8}) {
    for (const bool local : {false, true}) {
      ParallelPartitionConfig cfg;
      cfg.num_ranks = ranks;
      cfg.base = base;
      cfg.local_matching = local;
      const ParallelPartitionResult r = parallel_partition_hypergraph(h, cfg);
      std::printf("ranks=%d matching=%-6s cut=%-8lld bytes=%llu\n", ranks,
                  local ? "local" : "global",
                  static_cast<long long>(connectivity_cut(h, r.partition)),
                  static_cast<unsigned long long>(r.traffic.bytes_sent));
    }
  }

  // Ranks x threads: threading each rank's kernels must not perturb the
  // rank-level algorithm — same cut, same traffic.
  std::printf("\nranks x threads compose (2 ranks):\n");
  for (const Index threads : {1, 4}) {
    ParallelPartitionConfig cfg;
    cfg.num_ranks = 2;
    cfg.base = base;
    cfg.base.num_threads = threads;
    const ParallelPartitionResult r = parallel_partition_hypergraph(h, cfg);
    std::printf("ranks=2 threads=%lld cut=%lld bytes=%llu\n",
                static_cast<long long>(threads),
                static_cast<long long>(connectivity_cut(h, r.partition)),
                static_cast<unsigned long long>(r.traffic.bytes_sent));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bool json_mode = false;
  double rank_scale = 0.3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--json") {
      opt.json_path = value;
      json_mode = true;
    } else if (key == "--scale") {
      opt.scale = std::stod(value);
      rank_scale = opt.scale;
    } else if (key == "--trials") {
      opt.trials = static_cast<Index>(std::stol(value));
    } else if (key == "--seed") {
      opt.seed = std::stoull(value);
    }
  }

  if (json_mode) {
    const Graph g = make_dataset("cage14-like", opt.scale, opt.seed);
    const Hypergraph h = graph_to_hypergraph(g);
    std::printf("=== Thread scaling (cage14-like, %s) ===\n",
                h.summary().c_str());
    return run_json(h, opt);
  }

  // Human-readable mode: the thread study on the full-scale instance plus
  // the classic rank study on a smaller one (it runs 1..8 emulated ranks).
  {
    const Graph g = make_dataset("cage14-like", opt.scale, opt.seed);
    const Hypergraph h = graph_to_hypergraph(g);
    std::printf("=== Thread scaling (cage14-like, %s) ===\n",
                h.summary().c_str());
    print_thread_study(run_thread_study(h, opt));
  }
  const Graph g = make_dataset("auto-like", rank_scale, 5);
  const Hypergraph h = graph_to_hypergraph(g);
  std::printf("\n=== Rank scaling (auto-like, %s, k=16) ===\n",
              h.summary().c_str());
  run_rank_study(h);
  return 0;
}
