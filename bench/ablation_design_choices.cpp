// Ablations of the design choices DESIGN.md calls out:
//   1. gain queue backend: heap vs classic FM buckets;
//   2. k-way method: recursive bisection (Zoltan's path) vs direct k-way;
//   3. V-cycles and the k-way post-pass;
//   4. coarse-partitioning restarts (1 vs 8 trials);
//   5. matching constraint: fixed-aware IPM vs matching disabled
//      (coarsening depth impact).
// Reports connectivity-1 cut and wall time on a mid-size instance.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/timer.hpp"
#include "hypergraph/convert.hpp"
#include "metrics/balance.hpp"
#include "metrics/migration.hpp"
#include "metrics/remap_optimal.hpp"
#include "metrics/cut.hpp"
#include "partition/partitioner.hpp"
#include "workload/datasets.hpp"

namespace {

using namespace hgr;

void report(const char* label, const Hypergraph& h,
            const PartitionConfig& cfg) {
  WallTimer timer;
  const Partition p = partition_hypergraph(h, cfg);
  const double seconds = timer.seconds();
  std::printf("%-34s cut=%-10lld imb=%.3f time=%s\n", label,
              static_cast<long long>(connectivity_cut(h, p)),
              imbalance(h.vertex_weights(), p),
              format_seconds(seconds).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.15;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0)
      scale = std::stod(argv[i] + 8);
  }
  const Graph g = make_dataset("auto-like", scale, 7);
  const Hypergraph h = graph_to_hypergraph(g);
  std::printf("=== Ablation: design choices (auto-like, %s, k=16) ===\n",
              h.summary().c_str());

  PartitionConfig base;
  base.num_parts = 16;
  base.epsilon = 0.05;
  base.seed = 11;

  report("baseline (RB + heap queue)", h, base);

  PartitionConfig bucket = base;
  bucket.gain_queue = GainQueueKind::kBucket;
  report("gain queue: FM buckets", h, bucket);

  PartitionConfig kway = base;
  kway.kway_method = KwayMethod::kDirectKway;
  report("method: direct k-way", h, kway);

  PartitionConfig post = base;
  post.kway_postpass = true;
  report("RB + k-way post-pass", h, post);

  PartitionConfig vcycle = base;
  vcycle.num_vcycles = 2;
  report("RB + 2 V-cycles", h, vcycle);

  PartitionConfig one_trial = base;
  one_trial.num_initial_trials = 1;
  report("coarse restarts: 1 trial", h, one_trial);

  PartitionConfig many_trials = base;
  many_trials.num_initial_trials = 16;
  report("coarse restarts: 16 trials", h, many_trials);

  PartitionConfig few_passes = base;
  few_passes.max_refine_passes = 1;
  report("FM passes: 1", h, few_passes);

  PartitionConfig many_passes = base;
  many_passes.max_refine_passes = 8;
  report("FM passes: 8", h, many_passes);

  // Scratch-remap heuristic vs the optimal (Hungarian) relabeling: how
  // much migration does the paper's greedy maximal matching leave on the
  // table?
  std::printf("\nremap heuristic vs optimal (scratch repartition):\n");
  const Partition old_p = partition_hypergraph(h, base);
  PartitionConfig fresh = base;
  fresh.seed = 12345;
  const Partition raw = partition_hypergraph(h, fresh);
  const Partition greedy =
      remap_parts_for_migration(h.vertex_sizes(), old_p, raw);
  const Partition optimal = remap_parts_optimal(h.vertex_sizes(), old_p, raw);
  std::printf("  %-20s migration=%lld\n", "no remap",
              static_cast<long long>(
                  migration_volume(h.vertex_sizes(), old_p, raw)));
  std::printf("  %-20s migration=%lld\n", "greedy matching",
              static_cast<long long>(
                  migration_volume(h.vertex_sizes(), old_p, greedy)));
  std::printf("  %-20s migration=%lld\n", "optimal (Hungarian)",
              static_cast<long long>(
                  migration_volume(h.vertex_sizes(), old_p, optimal)));
  return 0;
}
