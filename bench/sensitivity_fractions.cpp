// Perturbation-parameter sensitivity — the paper's robustness paragraph:
// "We tested several other configurations by varying the fraction of
// vertices lost or gained and the factor that scales the size and weight
// of vertices. The results we obtained in these experiments were similar
// to the ones presented in this section."
//
// This bench sweeps those knobs and reports, per configuration, whether
// the headline ordering (repart beats scratch on total cost at alpha=1)
// still holds.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/epoch_driver.hpp"
#include "workload/datasets.hpp"
#include "workload/perturb.hpp"

namespace {

using namespace hgr;

struct Totals {
  double repart = 0;
  double scratch = 0;
};

Totals run_config(const Graph& base, std::unique_ptr<EpochScenario> (*make)(
                                         const Graph&, double, double),
                  double knob1, double knob2) {
  Totals totals;
  for (const RepartAlgorithm alg : {RepartAlgorithm::kHypergraphRepart,
                                    RepartAlgorithm::kHypergraphScratch}) {
    auto scenario = make(base, knob1, knob2);
    RepartitionerConfig cfg;
    cfg.alpha = 1;
    cfg.partition.num_parts = 16;
    cfg.partition.epsilon = 0.05;
    cfg.partition.seed = 13;
    const EpochRunSummary s = run_epochs(*scenario, alg, cfg, 3);
    const double total = s.mean_normalized_total_cost();
    if (alg == RepartAlgorithm::kHypergraphRepart) {
      totals.repart = total;
    } else {
      totals.scratch = total;
    }
  }
  return totals;
}

std::unique_ptr<EpochScenario> make_structural(const Graph& base,
                                               double vertex_fraction,
                                               double parts_fraction) {
  StructuralPerturbOptions opt;
  opt.vertex_fraction = vertex_fraction;
  opt.parts_fraction = parts_fraction;
  return std::make_unique<StructuralPerturbScenario>(base, opt, 31);
}

std::unique_ptr<EpochScenario> make_weights(const Graph& base,
                                            double min_factor,
                                            double max_factor) {
  WeightPerturbOptions opt;
  opt.min_factor = min_factor;
  opt.max_factor = max_factor;
  return std::make_unique<WeightPerturbScenario>(base, opt, 31);
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.5;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0)
      scale = std::stod(argv[i] + 8);
  }
  const Graph base = make_dataset("auto-like", scale, 9);
  std::printf("=== Perturbation-parameter sensitivity (auto-like, %s, "
              "k=16, alpha=1) ===\n",
              base.summary().c_str());

  std::printf("\nstructural: fraction of |V| deleted per epoch\n");
  std::printf("%-22s %14s %14s %10s\n", "config", "repart total",
              "scratch total", "winner");
  for (const double frac : {0.10, 0.25, 0.40}) {
    const Totals t = run_config(base, make_structural, frac, 0.5);
    std::printf("vertex_fraction=%.2f   %14.1f %14.1f %10s\n", frac,
                t.repart, t.scratch,
                t.repart < t.scratch ? "repart" : "scratch");
  }
  for (const double pf : {0.25, 0.75}) {
    const Totals t = run_config(base, make_structural, 0.25, pf);
    std::printf("parts_fraction=%.2f    %14.1f %14.1f %10s\n", pf, t.repart,
                t.scratch, t.repart < t.scratch ? "repart" : "scratch");
  }

  std::printf("\nAMR: weight/size scaling factor range\n");
  std::printf("%-22s %14s %14s %10s\n", "config", "repart total",
              "scratch total", "winner");
  const double ranges[][2] = {{1.5, 3.0}, {1.5, 7.5}, {3.0, 10.0}};
  for (const auto& range : ranges) {
    const Totals t = run_config(base, make_weights, range[0], range[1]);
    std::printf("factor=[%.1f, %.1f]     %14.1f %14.1f %10s\n", range[0],
                range[1], t.repart, t.scratch,
                t.repart < t.scratch ? "repart" : "scratch");
  }
  return 0;
}
