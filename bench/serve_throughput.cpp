// Closed-loop benchmark of the hgr_serve core (docs/SERVING.md): request
// throughput under a coalescing DELTA burst, reply-latency tail, and the
// value of keeping the machinery warm across requests.
//
// Three measurements on a synthetic instance:
//
//   burst       N single-vertex DELTA requests submitted back-to-back
//               against one warm server; the worker coalesces runs of them
//               into few dispatches. serve_requests_per_s is N over the
//               submit->drained wall time, serve_p99_latency_ns the 99th
//               percentile of per-request submit->reply latency.
//   cold        per trial: a fresh Server (cold Workspace arenas, no gain
//               cache), LOAD, then ONE timed DELTA epoch.
//   warm        one server, LOAD plus a warmup epoch, then the same DELTA
//               epoch timed repeatedly — the steady daemon state.
//
// warm_speedup = cold/warm must exceed 1: the resident daemon amortizes
// what a partition-per-exec tool pays on every request. --json=FILE emits
// hgr-bench-v1 for tools/bench_report.py (perf-smoke). Flags: --n= --nets=
// --k= --requests= --trials= --seed=.
#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "hypergraph/builder.hpp"
#include "hypergraph/io.hpp"
#include "serve/server.hpp"

namespace {

using namespace hgr;

struct Options {
  std::string json_path;
  Index n = 20000;
  Index nets = 40000;
  Index k = 8;
  int requests = 200;  // burst size
  int trials = 3;      // cold/warm epoch repetitions
  std::uint64_t seed = 1;
};

/// Random nets (2..6 pins, cost 1..3), unit-ish weights — same instance
/// family as micro_incremental so the numbers are comparable.
std::string write_instance(const Options& opt) {
  Rng rng(opt.seed);
  HypergraphBuilder b(opt.n);
  for (Index i = 0; i < opt.nets; ++i) {
    const Index pins = static_cast<Index>(2 + rng.below(5));
    std::vector<Index> net;
    for (Index j = 0; j < pins; ++j)
      net.push_back(
          static_cast<Index>(rng.below(static_cast<std::uint64_t>(opt.n))));
    b.add_net(net, 1 + static_cast<Weight>(rng.below(3)));
  }
  for (Index v = 0; v < opt.n; ++v)
    b.set_vertex_weight(v, 1 + static_cast<Weight>(rng.below(4)));
  const std::string path = "serve_throughput_input.hgr";
  write_hmetis_file(b.finalize(), path);
  return path;
}

serve::ServeConfig server_cfg(const Options& opt) {
  serve::ServeConfig cfg;
  cfg.default_k = opt.k;
  cfg.default_alpha = 100;
  cfg.default_epsilon = 0.10;
  cfg.seed = opt.seed;
  cfg.queue_capacity = static_cast<std::size_t>(opt.requests) + 8;
  cfg.incremental = IncrementalMode::kAuto;
  return cfg;
}

/// The per-epoch perturbation both the cold and warm paths replay: bump
/// 0.5% of the vertices, deterministic in `round`.
std::string delta_line(const Options& opt, int round) {
  Rng rng(opt.seed * 131 + static_cast<std::uint64_t>(round));
  std::string line = "DELTA g";
  const Index changed = std::max<Index>(1, opt.n / 200);
  for (Index i = 0; i < changed; ++i) {
    const auto v =
        static_cast<Index>(rng.below(static_cast<std::uint64_t>(opt.n)));
    line += ' ' + std::to_string(v) + ':' +
            std::to_string(1 + rng.below(8));
  }
  return line;
}

/// Submit one line and block until its reply: one closed-loop epoch.
double timed_epoch(serve::Server& server, const std::string& line) {
  WallTimer timer;
  server.submit(line);
  server.drain();
  return timer.seconds();
}

int run(const Options& opt) {
  const std::string instance = write_instance(opt);
  const std::string load = "LOAD g " + instance;

  // --- burst: throughput + latency tail on a warm server -----------------
  std::mutex lat_mutex;
  std::map<std::uint64_t, WallTimer> inflight;
  std::vector<double> latency_ns;
  serve::Server burst_server(
      server_cfg(opt), [&](const std::string& reply) {
        const std::uint64_t id =
            std::strtoull(reply.c_str() + reply.find(' ') + 1, nullptr, 10);
        const std::lock_guard<std::mutex> lock(lat_mutex);
        const auto it = inflight.find(id);
        if (it != inflight.end()) {
          latency_ns.push_back(it->second.seconds() * 1e9);
          inflight.erase(it);
        }
      });
  burst_server.submit(load);
  burst_server.drain();
  Rng burst_rng(opt.seed * 977 + 5);
  WallTimer burst_timer;
  std::uint64_t next_id = 1;  // the LOAD took id 1; this submitter is the
                              // only client, so ids advance by one
  for (int i = 0; i < opt.requests; ++i) {
    const auto v = static_cast<Index>(
        burst_rng.below(static_cast<std::uint64_t>(opt.n)));
    const std::string line = "DELTA g " + std::to_string(v) + ":" +
                             std::to_string(1 + burst_rng.below(8));
    {
      // Stamp before submit: the worker's reply may beat the return of
      // submit(), so the id must already be in the map when it lands.
      const std::lock_guard<std::mutex> lock(lat_mutex);
      inflight.emplace(++next_id, WallTimer{});
    }
    const std::uint64_t id = burst_server.submit(line);
    if (id != next_id) {
      std::fprintf(stderr, "error: id drift (%llu != %llu)\n",
                   static_cast<unsigned long long>(id),
                   static_cast<unsigned long long>(next_id));
      return 1;
    }
  }
  burst_server.drain();
  const double burst_seconds = burst_timer.seconds();
  burst_server.shutdown();
  const double requests_per_s =
      static_cast<double>(opt.requests) / std::max(1e-9, burst_seconds);
  std::sort(latency_ns.begin(), latency_ns.end());
  const double p99_ns =
      latency_ns.empty()
          ? 0.0
          : latency_ns[static_cast<std::size_t>(
                static_cast<double>(latency_ns.size() - 1) * 0.99)];
  std::fprintf(stderr,
               "burst: %d requests in %.3fs -> %.0f req/s, p99=%.0fns "
               "(%zu latencies)\n",
               opt.requests, burst_seconds, requests_per_s, p99_ns,
               latency_ns.size());

  // --- cold: fresh server per epoch --------------------------------------
  std::vector<double> cold_s;
  for (int trial = 0; trial < opt.trials; ++trial) {
    serve::Server server(server_cfg(opt), [](const std::string&) {});
    server.submit(load);
    server.drain();
    cold_s.push_back(timed_epoch(server, delta_line(opt, trial)));
    server.shutdown();
  }

  // --- warm: one resident server, steady state ----------------------------
  std::vector<double> warm_s;
  {
    serve::Server server(server_cfg(opt), [](const std::string&) {});
    server.submit(load);
    server.drain();
    timed_epoch(server, delta_line(opt, 100));  // warmup: build the caches
    for (int trial = 0; trial < opt.trials; ++trial)
      warm_s.push_back(timed_epoch(server, delta_line(opt, trial)));
    server.shutdown();
  }

  const bench::TrialStats cold_stats = bench::TrialStats::of(cold_s);
  const bench::TrialStats warm_stats = bench::TrialStats::of(warm_s);
  const double speedup = cold_stats.mean / std::max(1e-9, warm_stats.mean);
  std::fprintf(stderr, "cold=%.4fs warm=%.4fs warm_speedup=%.2fx\n",
               cold_stats.mean, warm_stats.mean, speedup);

  if (!opt.json_path.empty()) {
    bench::BenchJson doc("serve_throughput");
    doc.add_string("dataset", "random-serve-burst");
    char config[200];
    std::snprintf(config, sizeof(config),
                  "{\"n\":%lld,\"nets\":%lld,\"k\":%d,\"requests\":%d,"
                  "\"trials\":%d,\"seed\":%llu}",
                  static_cast<long long>(opt.n),
                  static_cast<long long>(opt.nets), opt.k, opt.requests,
                  opt.trials, static_cast<unsigned long long>(opt.seed));
    doc.add_raw("config", config);
    std::string metrics = "{";
    char head[128];
    std::snprintf(head, sizeof(head),
                  "\"serve_requests_per_s\":%.1f,"
                  "\"serve_p99_latency_ns\":%.0f",
                  requests_per_s, p99_ns);
    metrics += head;
    metrics += ",\"cold_epoch_seconds\":" + cold_stats.to_json();
    metrics += ",\"warm_epoch_seconds\":" + warm_stats.to_json();
    char tail[64];
    std::snprintf(tail, sizeof(tail), ",\"warm_speedup\":%.3f", speedup);
    metrics += tail;
    metrics += "}";
    doc.add_raw("metrics", metrics);
    if (!doc.write(opt.json_path)) {
      std::fprintf(stderr, "error: could not write %s\n",
                   opt.json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote bench json to %s\n", opt.json_path.c_str());
  }
  // Warm-beats-cold is the resident daemon's reason to exist; fail loudly
  // when it stops being true.
  return speedup > 1.0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--json") {
      opt.json_path = value;
    } else if (key == "--n") {
      opt.n = std::stoi(value);
    } else if (key == "--nets") {
      opt.nets = std::stoi(value);
    } else if (key == "--k") {
      opt.k = std::stoi(value);
    } else if (key == "--requests") {
      opt.requests = std::stoi(value);
    } else if (key == "--trials") {
      opt.trials = std::stoi(value);
    } else if (key == "--seed") {
      opt.seed = std::stoull(value);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  return run(opt);
}
