// Microbenchmark of the O(delta) incremental epoch fast path against the
// full repartitioning V-cycle it bypasses (docs/INCREMENTAL.md).
//
// Setup per trial: partition a synthetic hypergraph, perturb the weights
// of a small fraction of its vertices (default 1%), then answer the
// resulting epoch twice — once through hypergraph_repartition (the full
// tier) and once through IncrementalRepartitioner::try_epoch seeded with
// the exact changed-vertex delta. Both answers are produced under the
// same balance bound; the incremental run must be accepted (no drift or
// imbalance escalation) for its timing to count, and the
// incremental_accepted metric records how often that held.
//
// --json=FILE emits hgr-bench-v1 with metrics full_seconds /
// incremental_seconds / incremental_speedup (TrialStats), which
// tools/bench_report.py tracks in the perf-smoke pipeline. Other flags:
// --n= --nets= --trials= --delta-frac= --k= --seed=.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/incremental_repart.hpp"
#include "core/repartitioner.hpp"
#include "hypergraph/builder.hpp"
#include "metrics/cut.hpp"
#include "partition/partitioner.hpp"

namespace {

using namespace hgr;

struct Options {
  std::string json_path;
  Index n = 30000;
  Index nets = 60000;
  int trials = 3;
  double delta_frac = 0.01;
  Index k = 8;
  std::uint64_t seed = 1;
};

/// Random nets (2..6 pins, cost 1..3) over n vertices with the given
/// weights: the structure every trial's "before" and "after" epochs share.
Hypergraph build_instance(const Options& opt,
                          const std::vector<Weight>& weights,
                          std::uint64_t seed) {
  Rng rng(seed);
  HypergraphBuilder b(opt.n);
  for (Index i = 0; i < opt.nets; ++i) {
    const Index pins = static_cast<Index>(2 + rng.below(5));
    std::vector<Index> net;
    for (Index j = 0; j < pins; ++j)
      net.push_back(static_cast<Index>(
          rng.below(static_cast<std::uint64_t>(opt.n))));
    b.add_net(net, 1 + static_cast<Weight>(rng.below(3)));
  }
  for (Index v = 0; v < opt.n; ++v)
    b.set_vertex_weight(v, weights[static_cast<std::size_t>(v)]);
  return b.finalize();
}

int run(const Options& opt) {
  std::vector<double> full_s, inc_s, speedup, moves;
  int accepted = 0;

  for (int trial = 0; trial < opt.trials; ++trial) {
    const std::uint64_t seed = opt.seed + static_cast<std::uint64_t>(trial);
    Rng rng(seed * 7919 + 13);

    std::vector<Weight> weights(static_cast<std::size_t>(opt.n));
    for (Weight& w : weights) w = 1 + static_cast<Weight>(rng.below(4));
    const Hypergraph before = build_instance(opt, weights, seed);

    RepartitionerConfig cfg;
    cfg.partition.num_parts = opt.k;
    cfg.partition.epsilon = 0.10;
    cfg.partition.seed = seed;
    cfg.partition.incremental = IncrementalMode::kAuto;
    cfg.alpha = 100;
    const Partition old_p = partition_hypergraph(before, cfg.partition);

    // The epoch's perturbation: delta_frac of the vertices change weight.
    EpochDelta delta;
    delta.known = true;
    delta.prev_vertices = opt.n;
    const auto changed =
        static_cast<Index>(static_cast<double>(opt.n) * opt.delta_frac);
    for (Index i = 0; i < changed; ++i) {
      const auto v = static_cast<Index>(
          rng.below(static_cast<std::uint64_t>(opt.n)));
      weights[static_cast<std::size_t>(v)] =
          1 + static_cast<Weight>(rng.below(8));
      delta.changed.push_back(VertexId{v});
    }
    const Hypergraph after = build_instance(opt, weights, seed);

    IncrementalRepartitioner inc;
    inc.note_full(connectivity_cut(before, old_p));

    WallTimer inc_timer;
    const IncrementalOutcome fast = inc.try_epoch(after, old_p, delta, cfg);
    const double inc_seconds = inc_timer.seconds();

    WallTimer full_timer;
    const RepartitionResult full = hypergraph_repartition(after, old_p, cfg);
    const double full_seconds = full_timer.seconds();

    full_s.push_back(full_seconds);
    inc_s.push_back(inc_seconds);
    speedup.push_back(full_seconds / std::max(1e-9, inc_seconds));
    moves.push_back(static_cast<double>(fast.moves));
    if (fast.accepted) ++accepted;
    std::fprintf(stderr,
                 "trial %d: full=%.3fs incremental=%.4fs (%.1fx) moves=%lld "
                 "accepted=%d reason=%s full_cut=%lld inc_cut=%lld\n",
                 trial, full_seconds, inc_seconds,
                 full_seconds / std::max(1e-9, inc_seconds),
                 static_cast<long long>(fast.moves), fast.accepted ? 1 : 0,
                 fast.reason.empty() ? "-" : fast.reason.c_str(),
                 static_cast<long long>(full.cost.comm_volume),
                 static_cast<long long>(fast.cut));
  }

  const bench::TrialStats full_stats = bench::TrialStats::of(full_s);
  const bench::TrialStats inc_stats = bench::TrialStats::of(inc_s);
  const bench::TrialStats speed_stats = bench::TrialStats::of(speedup);
  const bench::TrialStats moves_stats = bench::TrialStats::of(moves);
  std::fprintf(stderr,
               "mean: full=%.3fs incremental=%.4fs speedup=%.1fx "
               "accepted=%d/%d\n",
               full_stats.mean, inc_stats.mean, speed_stats.mean, accepted,
               opt.trials);

  if (opt.json_path.empty()) return 0;
  bench::BenchJson doc("micro_incremental");
  doc.add_string("dataset", "random-1pct-delta");
  char config[200];
  std::snprintf(config, sizeof(config),
                "{\"n\":%lld,\"nets\":%lld,\"k\":%d,\"trials\":%d,"
                "\"delta_frac\":%.4f,\"seed\":%llu}",
                static_cast<long long>(opt.n),
                static_cast<long long>(opt.nets), opt.k, opt.trials,
                opt.delta_frac,
                static_cast<unsigned long long>(opt.seed));
  doc.add_raw("config", config);
  std::string metrics = "{";
  metrics += "\"full_seconds\":" + full_stats.to_json();
  metrics += ",\"incremental_seconds\":" + inc_stats.to_json();
  metrics += ",\"incremental_speedup\":" + speed_stats.to_json();
  metrics += ",\"incremental_moves\":" + moves_stats.to_json();
  char tail[64];
  std::snprintf(tail, sizeof(tail), ",\"incremental_accepted\":%d", accepted);
  metrics += tail;
  metrics += "}";
  doc.add_raw("metrics", metrics);
  if (!doc.write(opt.json_path)) {
    std::fprintf(stderr, "error: could not write %s\n", opt.json_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote bench json to %s\n", opt.json_path.c_str());
  return accepted == opt.trials ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--json") {
      opt.json_path = value;
    } else if (key == "--n") {
      opt.n = std::stoi(value);
    } else if (key == "--nets") {
      opt.nets = std::stoi(value);
    } else if (key == "--trials") {
      opt.trials = std::stoi(value);
    } else if (key == "--delta-frac") {
      opt.delta_frac = std::stod(value);
    } else if (key == "--k") {
      opt.k = std::stoi(value);
    } else if (key == "--seed") {
      opt.seed = std::stoull(value);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  return run(opt);
}
