// Table 1: properties of the test datasets — printed for the synthetic
// analogs next to the paper's published numbers, so the reader can check
// that the density/regularity shape is preserved at the reduced scale.
#include <cstdio>
#include <cstring>
#include <string>

#include "hypergraph/stats.hpp"
#include "workload/datasets.hpp"

namespace {

struct PaperRow {
  const char* name;
  long long v, e;
  int dmin, dmax;
  double davg;
};

constexpr PaperRow kPaperRows[] = {
    {"xyce680s", 682712, 823232, 1, 209, 2.4},
    {"2DLipid", 4368, 2793988, 396, 1984, 1279.3},
    {"auto", 448695, 3314611, 4, 37, 14.8},
    {"apoa1-10", 92224, 17100850, 54, 503, 370.9},
    {"cage14", 1505785, 13565176, 3, 41, 18.0},
};

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.25;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0)
      scale = std::stod(argv[i] + 8);
  }
  std::printf("=== Table 1: properties of the test datasets ===\n");
  std::printf("paper values vs synthetic analogs at scale=%.2f\n\n", scale);
  std::printf("%-14s %10s %11s %7s %7s %9s\n", "dataset", "|V|", "|E|",
              "min", "max", "avg deg");
  const auto catalog = hgr::dataset_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const PaperRow& paper = kPaperRows[i];
    std::printf("%-14s %10lld %11lld %7d %7d %9.1f  (paper: %s)\n",
                paper.name, paper.v, paper.e, paper.dmin, paper.dmax,
                paper.davg, catalog[i].application_area.c_str());
    const hgr::Graph g = hgr::make_dataset(catalog[i].name, scale, 1);
    const hgr::DegreeStats s = hgr::graph_degree_stats(g);
    std::printf("%-14s %10d %11d %7d %7d %9.1f  (this repo)\n\n",
                catalog[i].name.c_str(), g.num_vertices(), g.num_edges(),
                s.min, s.max, s.avg);
  }
  std::printf("csv,name,vertices,edges,min_deg,max_deg,avg_deg\n");
  for (const auto& info : catalog) {
    const hgr::Graph g = hgr::make_dataset(info.name, scale, 1);
    const hgr::DegreeStats s = hgr::graph_degree_stats(g);
    std::printf("csv,%s,%d,%d,%d,%d,%.1f\n", info.name.c_str(),
                g.num_vertices(), g.num_edges(), s.min, s.max, s.avg);
  }
  return 0;
}
