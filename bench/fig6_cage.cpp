// Figure 6: normalized total cost for cage14 (DNA electrophoresis analog).
#include "fig_common.hpp"

int main(int argc, char** argv) {
  return hgr::bench::run_cost_figure("Figure 6", "cage14-like", argc, argv);
}
