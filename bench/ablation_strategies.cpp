// Strategy ablation: the paper's four algorithms plus the diffusive
// baseline family it cites as related work, on one epoch transition of
// each perturbation mode. Shows the communication-vs-migration trade-off
// space that motivates the unified hypergraph model.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/epoch_driver.hpp"
#include "graphpart/diffusion.hpp"
#include "hypergraph/convert.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "metrics/migration.hpp"
#include "partition/partitioner.hpp"
#include "workload/datasets.hpp"
#include "workload/perturb.hpp"

namespace {

using namespace hgr;

void run_mode(const Graph& base, bool weights_mode, Weight alpha) {
  std::unique_ptr<EpochScenario> scenario;
  if (weights_mode) {
    scenario = std::make_unique<WeightPerturbScenario>(
        base, WeightPerturbOptions{}, 11);
  } else {
    scenario = std::make_unique<StructuralPerturbScenario>(
        base, StructuralPerturbOptions{}, 11);
  }
  std::printf("\n--- %s, alpha=%lld ---\n",
              weights_mode ? "perturbed weights" : "perturbed structure",
              static_cast<long long>(alpha));
  std::printf("%-16s %10s %10s %12s %8s\n", "strategy", "comm", "migration",
              "total(norm)", "imb");

  // Epoch 1 (static) + epoch 2 (the strategy under test) for each strategy
  // on identical scenario seeds.
  for (int strat = 0; strat < 5; ++strat) {
    std::unique_ptr<EpochScenario> sc;
    if (weights_mode) {
      sc = std::make_unique<WeightPerturbScenario>(base,
                                                   WeightPerturbOptions{}, 11);
    } else {
      sc = std::make_unique<StructuralPerturbScenario>(
          base, StructuralPerturbOptions{}, 11);
    }
    EpochProblem e1 = sc->next_epoch();
    PartitionConfig pcfg;
    pcfg.num_parts = 16;
    pcfg.epsilon = 0.05;
    pcfg.seed = 21;
    const Hypergraph h1 = graph_to_hypergraph(e1.graph);
    Partition p = partition_hypergraph(h1, pcfg);
    sc->record_partition(p);
    EpochProblem e2 = sc->next_epoch();
    const Hypergraph h2 = graph_to_hypergraph(e2.graph);

    RepartitionerConfig rcfg;
    rcfg.partition = pcfg;
    rcfg.partition.seed = 22;
    rcfg.alpha = alpha;

    Partition next;
    std::string name;
    switch (strat) {
      case 0:
        name = "hg-repart";
        next = hypergraph_repartition(h2, e2.old_partition, rcfg).partition;
        break;
      case 1:
        name = "graph-repart";
        next = graph_repartition(e2.graph, e2.old_partition, rcfg).partition;
        break;
      case 2:
        name = "hg-scratch";
        next = hypergraph_scratch(h2, e2.old_partition, rcfg).partition;
        break;
      case 3:
        name = "graph-scratch";
        next = graph_scratch(e2.graph, e2.old_partition, rcfg).partition;
        break;
      case 4: {
        name = "diffusion";
        DiffusionConfig dcfg;
        dcfg.epsilon = pcfg.epsilon;
        dcfg.seed = 23;
        next = diffusive_repartition(e2.graph, e2.old_partition, dcfg);
        break;
      }
    }
    const Weight comm = connectivity_cut(h2, next);
    const Weight mig =
        migration_volume(h2.vertex_sizes(), e2.old_partition, next);
    std::printf("%-16s %10lld %10lld %12.1f %8.3f\n", name.c_str(),
                static_cast<long long>(comm), static_cast<long long>(mig),
                static_cast<double>(comm) +
                    static_cast<double>(mig) / static_cast<double>(alpha),
                imbalance(h2.vertex_weights(), next));
  }
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.5;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0)
      scale = std::stod(argv[i] + 8);
  }
  const Graph base = make_dataset("auto-like", scale, 7);
  std::printf("=== Strategy ablation (auto-like, %s, k=16) ===\n",
              base.summary().c_str());
  for (const Weight alpha : {Weight{1}, Weight{100}}) {
    run_mode(base, false, alpha);
    run_mode(base, true, alpha);
  }
  return 0;
}
