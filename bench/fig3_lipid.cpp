// Figure 3: normalized total cost for 2DLipid (dense polymer-DFT analog).
#include "fig_common.hpp"

int main(int argc, char** argv) {
  return hgr::bench::run_cost_figure("Figure 3", "2DLipid-like", argc, argv);
}
