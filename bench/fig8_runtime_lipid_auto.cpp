// Figure 8: repartitioning run time with perturbed data structure for
// (a) 2DLipid and (b) auto.
#include "fig_common.hpp"

int main(int argc, char** argv) {
  const int rc1 = hgr::bench::run_runtime_figure("Figure 8a", "2DLipid-like",
                                                 argc, argv);
  const int rc2 =
      hgr::bench::run_runtime_figure("Figure 8b", "auto-like", argc, argv);
  return rc1 != 0 ? rc1 : rc2;
}
