// Figure 4: normalized total cost for auto (3D FEM mesh analog).
#include "fig_common.hpp"

int main(int argc, char** argv) {
  return hgr::bench::run_cost_figure("Figure 4", "auto-like", argc, argv);
}
