// hgr-bench-v1: the machine-readable bench output schema.
//
// Every bench binary that takes --json=FILE emits one JSON document:
//   {"schema":"hgr-bench-v1","bench":"<binary>","dataset":...,
//    "config":{...},            // the sweep/trial configuration
//    "cells":[...]  or  "metrics":{...},   // figure cells / micro metrics
//    "trace":{...}}             // the full hgr-trace-v2 export, including
//                               // the "comm" telemetry section (per-rank
//                               // send/recv bytes, wait fractions)
// tools/bench_report.py aggregates these into BENCH_partition.json at the
// repo root and diffs runs. Field reference: docs/OBSERVABILITY.md.
#pragma once

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace hgr::bench {

/// Count/mean/min/max over trial repetitions.
struct TrialStats {
  int n = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;

  static TrialStats of(const std::vector<double>& values) {
    TrialStats s;
    s.n = static_cast<int>(values.size());
    if (values.empty()) return s;
    s.min = s.max = values.front();
    double sum = 0.0;
    for (const double v : values) {
      sum += v;
      s.min = std::min(s.min, v);
      s.max = std::max(s.max, v);
    }
    s.mean = sum / static_cast<double>(s.n);
    return s;
  }

  std::string to_json() const {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "{\"n\":%d,\"mean\":%.9g,\"min\":%.9g,\"max\":%.9g}", n,
                  mean, min, max);
    return buf;
  }
};

/// Incremental hgr-bench-v1 document builder. Keys are appended in call
/// order; finish() attaches the accumulated obs trace (phases, counters,
/// comm telemetry) and seals the document.
class BenchJson {
 public:
  explicit BenchJson(const std::string& bench_name) {
    out_ = "{\"schema\":\"hgr-bench-v1\",\"bench\":\"";
    obs::json_escape(out_, bench_name);
    out_ += '"';
  }

  void add_string(const std::string& key, const std::string& value) {
    key_(key);
    out_ += '"';
    obs::json_escape(out_, value);
    out_ += '"';
  }

  void add_number(const std::string& key, double value) {
    key_(key);
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    out_ += buf;
  }

  /// `json` must be a valid JSON value (object, array, number, ...).
  void add_raw(const std::string& key, const std::string& json) {
    key_(key);
    out_ += json;
  }

  std::string finish() {
    add_raw("trace", obs::trace_to_json());
    out_ += '}';
    return out_;
  }

  bool write(const std::string& path) {
    std::ofstream f(path);
    if (!f) return false;
    f << finish() << '\n';
    return static_cast<bool>(f);
  }

 private:
  void key_(const std::string& key) {
    out_ += ",\"";
    obs::json_escape(out_, key);
    out_ += "\":";
  }

  std::string out_;
};

}  // namespace hgr::bench
