// Dynamic sparse matrix-vector multiplication (SpMV) — the classic
// hypergraph-partitioning application (Catalyurek & Aykanat, TPDS 1999,
// the paper's reference [5]).
//
// A sparse matrix is distributed row-wise; the column-net hypergraph model
// makes the connectivity-1 cut equal the SpMV communication volume. The
// sparsity pattern drifts over time (fill-in appears and disappears), and
// the paper's repartitioner keeps the distribution good without reshuffling
// the matrix wholesale. This example also demonstrates running the
// *parallel* partitioner over the in-process message-passing runtime.
#include <cstdio>

#include "core/repartitioner.hpp"
#include "hypergraph/builder.hpp"
#include "hypergraph/convert.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "parallel/par_partitioner.hpp"
#include "partition/partitioner.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace hgr;
  // A structurally symmetric sparse matrix as a graph; its column-net
  // hypergraph has one net per row.
  Graph pattern = make_regular_random(2000, 12, 17);
  Hypergraph spmv = graph_to_column_net_hypergraph(pattern);

  PartitionConfig pcfg;
  pcfg.num_parts = 8;
  pcfg.epsilon = 0.05;
  pcfg.seed = 21;
  Partition dist = partition_hypergraph(spmv, pcfg);
  std::printf("initial row distribution: comm volume per SpMV = %lld\n",
              static_cast<long long>(connectivity_cut(spmv, dist)));

  Rng rng(99);
  for (int step = 1; step <= 4; ++step) {
    // Pattern drift: rewire ~2% of the entries.
    GraphBuilder b(pattern.num_vertices());
    for (Index v = 0; v < pattern.num_vertices(); ++v) {
      const auto nbrs = pattern.neighbors(v);
      const auto ws = pattern.edge_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (nbrs[i] > v && !rng.chance(0.02)) b.add_edge(v, nbrs[i], ws[i]);
      }
    }
    for (int e = 0; e < pattern.num_edges() / 50; ++e) {
      const auto u = static_cast<Index>(
          rng.below(static_cast<std::uint64_t>(pattern.num_vertices())));
      const auto w = static_cast<Index>(
          rng.below(static_cast<std::uint64_t>(pattern.num_vertices())));
      if (u != w) b.add_edge(u, w, 1);
    }
    pattern = b.finalize();
    spmv = graph_to_column_net_hypergraph(pattern);

    RepartitionerConfig rcfg;
    rcfg.partition = pcfg;
    rcfg.partition.seed = static_cast<std::uint64_t>(1000 + step);
    rcfg.alpha = 200;  // many SpMVs (solver iterations) per repartition
    const RepartitionResult r = hypergraph_repartition(spmv, dist, rcfg);
    std::printf("step %d: comm=%lld mig=%lld rows moved=%zu imb=%.3f\n",
                step, static_cast<long long>(r.cost.comm_volume),
                static_cast<long long>(r.cost.migration_volume),
                r.plan.moves.size(),
                imbalance(spmv.vertex_weights(), r.partition));
    dist = r.partition;
  }

  // The same repartitioning step, but solved by the parallel partitioner
  // over the message-passing runtime (4 ranks).
  ParallelPartitionConfig par;
  par.num_ranks = 4;
  par.base = pcfg;
  const ParallelPartitionResult pr =
      parallel_hypergraph_repartition(spmv, dist, /*alpha=*/200, par);
  std::printf("parallel (4 ranks): comm volume of result = %lld, "
              "runtime traffic = %llu bytes in %llu messages\n",
              static_cast<long long>(connectivity_cut(spmv, pr.partition)),
              static_cast<unsigned long long>(pr.traffic.bytes_sent),
              static_cast<unsigned long long>(pr.traffic.messages_sent));
  return 0;
}
