// Adaptive-mesh-refinement style simulation loop — the paper's motivating
// scenario (Section 1: "A classic example is simulation based on adaptive
// mesh refinement, in which the computational mesh changes between time
// steps").
//
// A 3D mesh runs for several epochs. Each epoch a moving "shock front"
// region is refined (its cells' weights and sizes grow) while the rest
// coarsens back, and the load balancer repartitions before the next epoch.
// The example contrasts the paper's hypergraph repartitioning against
// repartitioning from scratch, epoch by epoch.
#include <cmath>
#include <cstdio>

#include "core/repartitioner.hpp"
#include "hypergraph/convert.hpp"
#include "metrics/balance.hpp"
#include "partition/partitioner.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace hgr;
  const Index side = 12;
  Graph mesh = make_grid3d(side, side, side, false);
  const Index n = mesh.num_vertices();

  const Index k = 8;
  const Weight alpha = 20;

  PartitionConfig pcfg;
  pcfg.num_parts = k;
  pcfg.epsilon = 0.05;
  pcfg.seed = 3;

  Hypergraph h = graph_to_hypergraph(mesh);
  Partition repart_p = partition_hypergraph(h, pcfg);
  Partition scratch_p = repart_p;

  std::printf("%-6s %-12s %10s %10s %12s %10s\n", "epoch", "method", "comm",
              "migration", "total(norm)", "imbalance");

  for (int epoch = 1; epoch <= 6; ++epoch) {
    // The shock front: a plane sweeping through the mesh; cells within
    // distance 1.5 of it are refined 6x.
    const double front = (epoch * side) / 6.0;
    for (Index v = 0; v < n; ++v) {
      const Index z = v / (side * side);
      const bool refined = std::abs(z - front) < 1.5;
      mesh.set_vertex_weight(v, refined ? 6 : 1);
      mesh.set_vertex_size(v, refined ? 6 : 1);
    }
    h = graph_to_hypergraph(mesh);

    RepartitionerConfig rcfg;
    rcfg.partition = pcfg;
    rcfg.partition.seed = static_cast<std::uint64_t>(100 + epoch);
    rcfg.alpha = alpha;

    const RepartitionResult a = hypergraph_repartition(h, repart_p, rcfg);
    const RepartitionResult b = hypergraph_scratch(h, scratch_p, rcfg);
    std::printf("%-6d %-12s %10lld %10lld %12.1f %10.3f\n", epoch,
                "hg-repart", static_cast<long long>(a.cost.comm_volume),
                static_cast<long long>(a.cost.migration_volume),
                a.cost.normalized_total(),
                imbalance(h.vertex_weights(), a.partition));
    std::printf("%-6d %-12s %10lld %10lld %12.1f %10.3f\n", epoch,
                "hg-scratch", static_cast<long long>(b.cost.comm_volume),
                static_cast<long long>(b.cost.migration_volume),
                b.cost.normalized_total(),
                imbalance(h.vertex_weights(), b.partition));
    repart_p = a.partition;
    scratch_p = b.partition;
  }
  std::printf("\nhg-repart keeps migration small by paying a little "
              "communication; scratch repays the full data layout every "
              "epoch.\n");
  return 0;
}
