// Quickstart: the library in ~60 lines.
//
// 1. Build a hypergraph.
// 2. Statically partition it with the fixed-vertex multilevel partitioner.
// 3. Perturb the weights (the computation "adapted").
// 4. Repartition with the paper's augmented-hypergraph model and inspect
//    the cost split and the migration plan.
#include <cstdio>

#include "core/repartitioner.hpp"
#include "hypergraph/builder.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "partition/partitioner.hpp"

int main() {
  using namespace hgr;

  // A small 2D 8x8 grid as a hypergraph: one 2-pin net per mesh edge.
  const Index side = 8;
  HypergraphBuilder builder(side * side);
  const auto id = [side](Index x, Index y) { return y * side + x; };
  for (Index y = 0; y < side; ++y) {
    for (Index x = 0; x < side; ++x) {
      if (x + 1 < side) builder.add_net({id(x, y), id(x + 1, y)});
      if (y + 1 < side) builder.add_net({id(x, y), id(x, y + 1)});
    }
  }
  Hypergraph mesh = builder.finalize();

  // Static 4-way partition.
  PartitionConfig pcfg;
  pcfg.num_parts = 4;
  pcfg.epsilon = 0.05;
  pcfg.seed = 1;
  const Partition initial = partition_hypergraph(mesh, pcfg);
  std::printf("static partition : cut=%lld imbalance=%.3f\n",
              static_cast<long long>(connectivity_cut(mesh, initial)),
              imbalance(mesh.vertex_weights(), initial));

  // The simulation refines the lower-left quadrant: weights x5 there.
  for (Index y = 0; y < side / 2; ++y)
    for (Index x = 0; x < side / 2; ++x)
      mesh.set_vertex_weight(VertexId{id(x, y)}, 5);
  std::printf("after refinement : imbalance=%.3f (needs rebalancing)\n",
              imbalance(mesh.vertex_weights(), initial));

  // Repartition, trading communication volume against migration volume.
  RepartitionerConfig rcfg;
  rcfg.partition = pcfg;
  rcfg.alpha = 50;  // the epoch will run ~50 iterations
  const RepartitionResult result =
      hypergraph_repartition(mesh, initial, rcfg);
  std::printf("repartitioned    : comm=%lld mig=%lld total=%lld "
              "imbalance=%.3f\n",
              static_cast<long long>(result.cost.comm_volume),
              static_cast<long long>(result.cost.migration_volume),
              static_cast<long long>(result.cost.total()),
              imbalance(mesh.vertex_weights(), result.partition));
  std::printf("migration plan   : %s\n", result.plan.summary().c_str());
  return 0;
}
