// Zoltan-style integration: the application keeps its own data structures
// and only registers query callbacks; the library pulls what it needs.
//
// The "application" here is a toy unstructured 2D triangle-strip mesh that
// refines one region between rebalances.
#include <cstdio>
#include <vector>

#include "core/callback_api.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"

namespace {

// The application's native mesh representation: elements with weights and
// element-to-element adjacency — deliberately *not* an hgr type.
struct AppMesh {
  struct Element {
    double work = 1.0;                 // estimated compute cost
    double data_kb = 1.0;              // migratable state
    std::vector<int> face_neighbors;   // shared-face adjacency
  };
  std::vector<Element> elements;
};

AppMesh make_strip_mesh(int n) {
  AppMesh mesh;
  mesh.elements.resize(static_cast<std::size_t>(n));
  for (int e = 0; e < n; ++e) {
    // Triangle strip: element e touches e-1, e+1, and e+2 or e-2.
    auto& el = mesh.elements[static_cast<std::size_t>(e)];
    if (e > 0) el.face_neighbors.push_back(e - 1);
    if (e + 1 < n) el.face_neighbors.push_back(e + 1);
    if (e % 2 == 0 && e + 2 < n) el.face_neighbors.push_back(e + 2);
    if (e % 2 == 1 && e - 2 >= 0) el.face_neighbors.push_back(e - 2);
  }
  return mesh;
}

}  // namespace

int main() {
  using namespace hgr;
  AppMesh mesh = make_strip_mesh(400);

  // The queries close over the application's own data.
  ObjectQueries q;
  q.num_objects = [&] {
    return static_cast<Index>(mesh.elements.size());
  };
  q.num_hyperedges = q.num_objects;  // one net per element: it + neighbors
  q.hyperedge_objects = [&](Index e) {
    std::vector<Index> pins{e};
    for (const int nb : mesh.elements[static_cast<std::size_t>(e)]
                            .face_neighbors)
      pins.push_back(nb);
    return pins;
  };
  q.object_weight = [&](Index v) {
    return static_cast<Weight>(
        mesh.elements[static_cast<std::size_t>(v)].work + 0.5);
  };
  q.object_size = [&](Index v) {
    return static_cast<Weight>(
        mesh.elements[static_cast<std::size_t>(v)].data_kb + 0.5);
  };

  PartitionConfig pcfg;
  pcfg.num_parts = 8;
  pcfg.epsilon = 0.05;
  Partition parts = partition_objects(q, pcfg);
  {
    const Hypergraph h = build_from_queries(q);
    std::printf("initial: cut=%lld imbalance=%.3f\n",
                static_cast<long long>(connectivity_cut(h, parts)),
                imbalance(h.vertex_weights(), parts));
  }

  // The solver refines elements 100..200: 6x the work, 6x the state.
  for (int e = 100; e < 200; ++e) {
    mesh.elements[static_cast<std::size_t>(e)].work = 6.0;
    mesh.elements[static_cast<std::size_t>(e)].data_kb = 6.0;
  }

  RepartitionerConfig rcfg;
  rcfg.partition = pcfg;
  rcfg.alpha = 50;
  const RepartitionResult r = repartition_objects(
      q, [&](Index v) { return parts[VertexId{v}]; }, rcfg);
  std::printf("after refinement + repartition: comm=%lld migration=%lld "
              "moved=%zu imbalance=%.3f\n",
              static_cast<long long>(r.cost.comm_volume),
              static_cast<long long>(r.cost.migration_volume),
              r.plan.moves.size(),
              [&] {
                const Hypergraph h = build_from_queries(q);
                return imbalance(h.vertex_weights(), r.partition);
              }());
  return 0;
}
