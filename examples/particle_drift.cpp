// Particle-drift load balancing — a molecular-dynamics-flavored scenario
// (the paper's apoa1 dataset is an MD neighbor list).
//
// Particles live in a 2D box and interact within a cutoff radius. Each
// epoch the particles drift, the neighbor-list graph is rebuilt, and the
// load balancer must track the moving density while keeping migration
// small. Compares all four of the paper's algorithms on total cost.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/repartitioner.hpp"
#include "hypergraph/builder.hpp"
#include "hypergraph/convert.hpp"
#include "partition/partitioner.hpp"

int main() {
  using namespace hgr;
  const Index n = 1500;
  const Index k = 8;
  Rng rng(5);

  std::vector<double> x(n), y(n), vx(n), vy(n);
  for (Index i = 0; i < n; ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
    vx[i] = (rng.uniform() - 0.5) * 0.08;
    vy[i] = (rng.uniform() - 0.5) * 0.08;
  }

  const auto neighbor_graph = [&]() {
    GraphBuilder b(n);
    const double cutoff2 = 0.03 * 0.03 * 4;
    for (Index i = 0; i < n; ++i) {
      for (Index j = i + 1; j < n; ++j) {
        const double dx = x[i] - x[j];
        const double dy = y[i] - y[j];
        if (dx * dx + dy * dy < cutoff2) b.add_edge(i, j);
      }
    }
    return b.finalize();
  };

  Graph g = neighbor_graph();
  Hypergraph h = graph_to_hypergraph(g);
  PartitionConfig pcfg;
  pcfg.num_parts = k;
  pcfg.epsilon = 0.1;
  pcfg.seed = 31;

  // Each algorithm tracks its own partition trajectory.
  const RepartAlgorithm algs[] = {
      RepartAlgorithm::kHypergraphRepart, RepartAlgorithm::kGraphRepart,
      RepartAlgorithm::kHypergraphScratch, RepartAlgorithm::kGraphScratch};
  Partition trajectory[4];
  for (auto& t : trajectory) t = partition_hypergraph(h, pcfg);

  std::printf("%-6s %-14s %8s %10s %12s\n", "epoch", "algorithm", "comm",
              "migration", "total(norm)");
  for (int epoch = 1; epoch <= 4; ++epoch) {
    // Drift with reflective walls.
    for (Index i = 0; i < n; ++i) {
      x[i] += vx[i];
      y[i] += vy[i];
      if (x[i] < 0 || x[i] > 1) vx[i] = -vx[i];
      if (y[i] < 0 || y[i] > 1) vy[i] = -vy[i];
      x[i] = std::fmin(1.0, std::fmax(0.0, x[i]));
      y[i] = std::fmin(1.0, std::fmax(0.0, y[i]));
    }
    g = neighbor_graph();
    h = graph_to_hypergraph(g);

    RepartitionerConfig rcfg;
    rcfg.partition = pcfg;
    rcfg.partition.seed = static_cast<std::uint64_t>(400 + epoch);
    rcfg.alpha = 10;
    for (int a = 0; a < 4; ++a) {
      const RepartitionResult r = run_repartition_algorithm(
          algs[a], h, g, trajectory[a], rcfg);
      std::printf("%-6d %-14s %8lld %10lld %12.1f\n", epoch,
                  to_string(algs[a]).c_str(),
                  static_cast<long long>(r.cost.comm_volume),
                  static_cast<long long>(r.cost.migration_volume),
                  r.cost.normalized_total());
      trajectory[a] = r.partition;
    }
  }
  return 0;
}
