// Protocol parsing (src/serve/request.hpp): every verb's happy path, the
// optional LOAD parameters, and — because parse_request guards the daemon
// against arbitrary client input — a battery of malformed lines that must
// come back kInvalid with a diagnostic instead of throwing.
#include "serve/request.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hgr::serve {
namespace {

TEST(ServeRequest, LoadMinimal) {
  const Request r = parse_request("LOAD mesh /tmp/mesh.hgr");
  ASSERT_EQ(r.kind, RequestKind::kLoad) << r.error;
  EXPECT_EQ(r.graph, "mesh");
  EXPECT_EQ(r.path, "/tmp/mesh.hgr");
  EXPECT_EQ(r.k, 0);           // 0 = take the server default
  EXPECT_EQ(r.alpha, -1);      // -1 = take the server default
  EXPECT_EQ(r.epsilon, -1.0);  // -1 = take the server default
}

TEST(ServeRequest, LoadWithOverrides) {
  const Request r =
      parse_request("LOAD mesh data/m.hgr k=8 alpha=50 eps=0.03");
  ASSERT_EQ(r.kind, RequestKind::kLoad) << r.error;
  EXPECT_EQ(r.k, 8);
  EXPECT_EQ(r.alpha, 50);
  EXPECT_DOUBLE_EQ(r.epsilon, 0.03);
}

TEST(ServeRequest, DeltaParsesUpdatePairs) {
  const Request r = parse_request("DELTA mesh 0:5 17:3 2:0");
  ASSERT_EQ(r.kind, RequestKind::kDelta) << r.error;
  EXPECT_EQ(r.graph, "mesh");
  ASSERT_EQ(r.updates.size(), 3u);
  EXPECT_EQ(r.updates[0].v, VertexId{0});
  EXPECT_EQ(r.updates[0].w, 5);
  EXPECT_EQ(r.updates[1].v, VertexId{17});
  EXPECT_EQ(r.updates[1].w, 3);
  EXPECT_EQ(r.updates[2].v, VertexId{2});
  EXPECT_EQ(r.updates[2].w, 0);
}

TEST(ServeRequest, AddParsesWeights) {
  const Request r = parse_request("ADD mesh 3 1 7");
  ASSERT_EQ(r.kind, RequestKind::kAdd) << r.error;
  ASSERT_EQ(r.add_weights.size(), 3u);
  EXPECT_EQ(r.add_weights[0], 3);
  EXPECT_EQ(r.add_weights[2], 7);
}

TEST(ServeRequest, RemoveParsesVertexIds) {
  const Request r = parse_request("REMOVE mesh 4 9");
  ASSERT_EQ(r.kind, RequestKind::kRemove) << r.error;
  ASSERT_EQ(r.remove.size(), 2u);
  EXPECT_EQ(r.remove[0], VertexId{4});
  EXPECT_EQ(r.remove[1], VertexId{9});
}

TEST(ServeRequest, SwapAndRepart) {
  const Request s = parse_request("SWAP mesh /tmp/next.hgr");
  ASSERT_EQ(s.kind, RequestKind::kSwap) << s.error;
  EXPECT_EQ(s.path, "/tmp/next.hgr");
  const Request f = parse_request("REPART mesh");
  ASSERT_EQ(f.kind, RequestKind::kRepart) << f.error;
  EXPECT_EQ(f.graph, "mesh");
}

TEST(ServeRequest, BlankAndCommentLinesAreSilentlyInvalid) {
  for (const char* line : {"", "   ", "# a comment", "  # indented"}) {
    const Request r = parse_request(line);
    EXPECT_EQ(r.kind, RequestKind::kInvalid) << line;
    EXPECT_TRUE(r.error.empty()) << line << " -> " << r.error;
  }
}

TEST(ServeRequest, MalformedLinesReportErrorsWithoutThrowing) {
  const char* bad[] = {
      "FROB mesh",              // unknown verb
      "LOAD",                   // missing graph + path
      "LOAD mesh",              // missing path
      "LOAD mesh a.hgr k=1",    // k < 2
      "LOAD mesh a.hgr k=abc",  // non-numeric k
      "LOAD mesh a.hgr eps=0",  // eps must be > 0
      "LOAD mesh a.hgr bogus=1",
      "DELTA mesh",             // no updates
      "DELTA mesh 5",           // missing :w
      "DELTA mesh a:b",         // non-numeric pair
      "DELTA mesh -1:4",        // negative vertex
      "DELTA mesh 1:-4",        // negative weight
      "ADD mesh",               // no weights
      "ADD mesh -2",            // negative weight
      "REMOVE mesh",            // no vertices
      "REMOVE mesh -3",         // negative vertex
      "SWAP mesh",              // missing path
      "REPART",                 // missing graph
  };
  for (const char* line : bad) {
    const Request r = parse_request(line);
    EXPECT_EQ(r.kind, RequestKind::kInvalid) << line;
    EXPECT_FALSE(r.error.empty()) << line;
  }
}

TEST(ServeRequest, KindToString) {
  EXPECT_STREQ(to_string(RequestKind::kLoad), "LOAD");
  EXPECT_STREQ(to_string(RequestKind::kDelta), "DELTA");
  EXPECT_STREQ(to_string(RequestKind::kAdd), "ADD");
  EXPECT_STREQ(to_string(RequestKind::kRemove), "REMOVE");
  EXPECT_STREQ(to_string(RequestKind::kSwap), "SWAP");
  EXPECT_STREQ(to_string(RequestKind::kRepart), "REPART");
  EXPECT_STREQ(to_string(RequestKind::kInvalid), "INVALID");
}

}  // namespace
}  // namespace hgr::serve
