// In-process Server tests (src/serve/server.hpp): request lifecycle and
// replies, DELTA coalescing into one epoch dispatch, bounded-queue
// backpressure, shutdown shedding, structural updates (ADD / REMOVE /
// SWAP), and the idle-loop stats-dump flush.
//
// Determinism device: a `delay@serve` fault rule parks the worker inside
// its first batch, giving the test a window to stack requests behind it
// before the worker sees them — that is what makes coalescing and
// backpressure observable without sleeping and hoping.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>  // hgr-lint: thread-ok (polling sleeps in tests)
#include <vector>

#include "hypergraph/convert.hpp"
#include "hypergraph/io.hpp"
#include "obs/stats_stream.hpp"
#include "obs/trace.hpp"
#include "workload/generators.hpp"

namespace hgr::serve {
namespace {

/// Thread-safe reply sink: completions arrive from the worker thread,
/// parse errors and sheds from the submitting thread.
class ReplyLog {
 public:
  void operator()(const std::string& line) {
    const std::lock_guard<std::mutex> lock(mutex_);
    lines_.push_back(line);
  }
  std::vector<std::string> snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
  }
  std::size_t count_containing(const std::string& needle) const {
    std::size_t n = 0;
    for (const std::string& line : snapshot())
      if (line.find(needle) != std::string::npos) ++n;
    return n;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

ReplyFn log_into(ReplyLog& log) {
  return [&log](const std::string& line) { log(line); };
}

/// A small hMETIS file the daemon can LOAD: the 4x4x4 grid (64 vertices).
std::string grid_hgr_path(const std::string& stem) {
  const std::string path = ::testing::TempDir() + "/" + stem + ".hgr";
  write_hmetis_file(graph_to_hypergraph(make_grid3d(4, 4, 4, false)), path);
  return path;
}

ServeConfig serial_cfg() {
  ServeConfig cfg;
  cfg.default_k = 4;
  cfg.default_alpha = 10;
  cfg.default_epsilon = 0.1;
  cfg.seed = 7;
  return cfg;
}

/// Spin until the worker has dequeued everything submitted so far (the
/// queue is empty; a batch may still be in flight).
void wait_until_dequeued(const Server& server) {
  while (server.queue_depth() != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

TEST(ServeServer, LoadThenRepartReplies) {
  ReplyLog log;
  Server server(serial_cfg(), log_into(log));
  const std::string path = grid_hgr_path("serve_load");
  const std::uint64_t load_id = server.submit("LOAD g " + path + " k=4");
  EXPECT_GT(load_id, 0u);
  server.submit("REPART g");
  server.drain();
  const std::vector<std::string> replies = log.snapshot();
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_NE(replies[0].find("OK 1"), std::string::npos) << replies[0];
  EXPECT_NE(replies[0].find("graph=g"), std::string::npos);
  EXPECT_NE(replies[0].find("n=64"), std::string::npos);
  EXPECT_NE(replies[0].find("k=4"), std::string::npos);
  EXPECT_NE(replies[0].find("tier=static"), std::string::npos);
  EXPECT_NE(replies[1].find("OK 2"), std::string::npos) << replies[1];
  EXPECT_NE(replies[1].find("tier=full"), std::string::npos);
  EXPECT_EQ(server.replied(), 2u);
  server.shutdown();
}

TEST(ServeServer, ParseErrorAndUnknownGraphGetErrReplies) {
  ReplyLog log;
  Server server(serial_cfg(), log_into(log));
  // Malformed input is answered synchronously, before any queueing.
  const std::uint64_t bad_id = server.submit("FROB g");
  EXPECT_EQ(log.count_containing("ERR " + std::to_string(bad_id)), 1u);
  // A well-formed request against a graph nobody loaded fails in dispatch.
  server.submit("DELTA nope 0:5");
  server.drain();
  EXPECT_EQ(log.count_containing("unknown graph 'nope'"), 1u);
  // Blank lines and comments are not requests: no id, no reply.
  EXPECT_EQ(server.submit(""), 0u);
  EXPECT_EQ(server.submit("   "), 0u);
  EXPECT_EQ(server.submit("# comment"), 0u);
  server.drain();
  EXPECT_EQ(server.replied(), 2u);
  server.shutdown();
}

TEST(ServeServer, ConsecutiveDeltasCoalesceIntoOneDispatch) {
  obs::Registry reg;
  obs::ScopedRegistry scope(reg);
  ReplyLog log;
  ServeConfig cfg = serial_cfg();
  // Park the worker inside the LOAD batch long enough to stack deltas
  // behind it. The delay waits on the server's stop token, so even a
  // pathological scheduler cannot wedge shutdown.
  cfg.fault_plan = std::make_shared<const fault::FaultPlan>(
      fault::FaultPlan::parse("delay@serve:ms=300"));
  Server server(cfg, log_into(log));
  server.submit("LOAD g " + grid_hgr_path("serve_coalesce") + " k=4");
  wait_until_dequeued(server);  // LOAD is in flight, delayed
  server.submit("DELTA g 0:9");
  server.submit("DELTA g 1:9 2:9");
  server.submit("DELTA g 3:9");
  server.submit("DELTA g 0:2");  // same vertex again: last write wins
  server.drain();
  // One LOAD reply + four DELTA replies, all four from ONE dispatch.
  EXPECT_EQ(server.replied(), 5u);
  EXPECT_EQ(log.count_containing("coalesced=3"), 4u);
  EXPECT_EQ(reg.counter_value("serve.coalesced"), 3u);
  EXPECT_EQ(reg.counter_value("serve.batches"), 2u);  // LOAD + delta batch
  EXPECT_EQ(reg.counter_value("serve.requests"), 5u);
  EXPECT_EQ(reg.counter_value("serve.shed"), 0u);
  server.shutdown();
}

TEST(ServeServer, FullQueueShedsWithBusyReply) {
  obs::Registry reg;
  obs::ScopedRegistry scope(reg);
  ReplyLog log;
  ServeConfig cfg = serial_cfg();
  cfg.queue_capacity = 2;
  cfg.fault_plan = std::make_shared<const fault::FaultPlan>(
      fault::FaultPlan::parse("delay@serve:ms=300"));
  Server server(cfg, log_into(log));
  server.submit("LOAD g " + grid_hgr_path("serve_busy") + " k=4");
  wait_until_dequeued(server);  // worker busy; queue is empty again
  server.submit("DELTA g 0:1");
  server.submit("DELTA g 1:1");
  EXPECT_EQ(server.queue_depth(), 2u);
  const std::uint64_t shed_id = server.submit("DELTA g 2:1");
  // Backpressure is synchronous: the reply arrives before submit returns.
  EXPECT_EQ(log.count_containing("BUSY " + std::to_string(shed_id) +
                                 " queue full"),
            1u);
  EXPECT_EQ(reg.counter_value("serve.shed"), 1u);
  server.drain();
  EXPECT_EQ(server.replied(), 4u);  // LOAD + 2 deltas + 1 shed
  server.shutdown();
}

TEST(ServeServer, StopShedsQueuedRequestsWithOneReplyEach) {
  ReplyLog log;
  ServeConfig cfg = serial_cfg();
  cfg.fault_plan = std::make_shared<const fault::FaultPlan>(
      fault::FaultPlan::parse("delay@serve:ms=10000"));
  Server server(cfg, log_into(log));
  server.submit("LOAD g " + grid_hgr_path("serve_stop") + " k=4");
  wait_until_dequeued(server);  // LOAD parked in its 10s delay
  server.submit("DELTA g 0:1");
  server.submit("DELTA g 1:1");
  server.submit("REPART g");
  server.stop();  // interrupts the delay, sheds everything still queued
  EXPECT_EQ(log.count_containing("server stopping"), 3u);
  EXPECT_EQ(server.replied(), 4u);
  // Post-stop submissions are shed immediately, still with a reply.
  const std::uint64_t late = server.submit("DELTA g 2:1");
  EXPECT_EQ(log.count_containing("BUSY " + std::to_string(late) +
                                 " server stopping"),
            1u);
}

TEST(ServeServer, AddRemoveSwapAdjustTheVertexSpace) {
  ReplyLog log;
  Server server(serial_cfg(), log_into(log));
  server.submit("LOAD g " + grid_hgr_path("serve_struct") + " k=4");
  server.submit("ADD g 3 4");     // 64 -> 66 vertices
  server.submit("REMOVE g 0 1");  // 66 -> 64
  server.drain();
  const std::vector<std::string> replies = log.snapshot();
  ASSERT_EQ(replies.size(), 3u);
  for (const std::string& r : replies)
    EXPECT_EQ(r.rfind("OK ", 0), 0u) << r;
  // SWAP to a structurally different hypergraph repartitions statically.
  const std::string bigger = ::testing::TempDir() + "/serve_struct_big.hgr";
  write_hmetis_file(graph_to_hypergraph(make_grid3d(5, 5, 5, false)), bigger);
  server.submit("SWAP g " + bigger);
  // SWAP to a same-size structure keeps the assignment, full epoch decides.
  server.submit("SWAP g " + bigger);
  server.drain();
  const std::vector<std::string> all = log.snapshot();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_NE(all[3].find("n=125"), std::string::npos) << all[3];
  EXPECT_NE(all[3].find("tier=static"), std::string::npos) << all[3];
  EXPECT_NE(all[4].find("tier=full"), std::string::npos) << all[4];
  server.shutdown();
}

TEST(ServeServer, IdleWorkerFlushesPendingStatsDump) {
  // The satellite-3 end-to-end check: SIGUSR1's request_stats_dump() used
  // to sit pending until the next phase close — which an idle daemon never
  // reaches. The serve worker's idle loop now services it.
  obs::set_stats_stream_enabled(false);
  obs::set_stats_stream_path("");
  obs::reset_stats_stream();
  const std::string dump = ::testing::TempDir() + "/serve_idle_dump.jsonl";
  std::remove(dump.c_str());
  obs::set_stats_stream_enabled(true);
  obs::set_stats_stream_path(dump);
  ReplyLog log;
  Server server(serial_cfg(), log_into(log));
  // The LOAD's partition phases push samples into the ring.
  server.submit("LOAD g " + grid_hgr_path("serve_dump") + " k=4");
  server.drain();
  obs::request_stats_dump();  // what the SIGUSR1 handler does
  // No further requests arrive: only the idle loop can flush this.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool flushed = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (!obs::stats_dump_pending() && std::ifstream(dump).good()) {
      flushed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.shutdown();
  obs::set_stats_stream_enabled(false);
  obs::set_stats_stream_path("");
  obs::reset_stats_stream();
  ASSERT_TRUE(flushed) << "idle worker never flushed the requested dump";
  std::ifstream in(dump);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("hgr-stats-v1"), std::string::npos);
}

}  // namespace
}  // namespace hgr::serve
