// ServeChaos: the daemon under injected faults and concurrent clients
// (docs/SERVING.md, docs/ROBUSTNESS.md). Runs under TSan in CI — the
// concurrent-submitter test is as much a data-race probe as a protocol
// check. The invariant every test leans on: every admitted request gets
// exactly one reply, no matter what the fault plan does to the worker.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>  // hgr-lint: thread-ok (concurrent submitter clients)
#include <vector>

#include "common/timer.hpp"
#include "fault/fault_plan.hpp"
#include "hypergraph/convert.hpp"
#include "hypergraph/io.hpp"
#include "serve/server.hpp"
#include "workload/generators.hpp"

namespace hgr::serve {
namespace {

class ReplyLog {
 public:
  void operator()(const std::string& line) {
    const std::lock_guard<std::mutex> lock(mutex_);
    lines_.push_back(line);
  }
  std::vector<std::string> snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

std::string grid_hgr_path(const std::string& stem) {
  const std::string path = ::testing::TempDir() + "/" + stem + ".hgr";
  write_hmetis_file(graph_to_hypergraph(make_grid3d(4, 4, 4, false)), path);
  return path;
}

/// "OK 17 ..." / "ERR 17 ..." / "BUSY 17 ..." -> 17.
std::uint64_t reply_id(const std::string& line) {
  const std::size_t sp = line.find(' ');
  if (sp == std::string::npos) return 0;
  return std::strtoull(line.c_str() + sp + 1, nullptr, 10);
}

TEST(ServeChaos, ConcurrentClientsEachRequestRepliedExactlyOnce) {
  ReplyLog log;
  ServeConfig cfg;
  cfg.default_k = 4;
  cfg.default_alpha = 10;
  cfg.default_epsilon = 0.1;
  cfg.seed = 7;
  cfg.queue_capacity = 256;  // large enough that nothing sheds: every id
                             // must then be answered by the worker itself
  // A little of everything at the request boundary: scattered delays plus
  // a burst of three outright failures mid-run.
  cfg.fault_plan = std::make_shared<const fault::FaultPlan>(
      fault::FaultPlan::parse(
          "seed=5;delay@serve:ms=2,count=0,prob=0.3;"
          "throw@serve:after=4,count=3"));
  Server server(cfg, [&log](const std::string& line) { log(line); });
  std::mutex ids_mutex;
  std::set<std::uint64_t> ids;
  ids.insert(server.submit("LOAD g " + grid_hgr_path("serve_chaos") + " k=4"));
  server.drain();  // the clients race against a loaded graph

  constexpr int kClients = 3;
  constexpr int kPerClient = 20;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    // hgr-lint: thread-ok (each client is an independent submitter)
    clients.emplace_back([&server, &ids_mutex, &ids, c] {
      for (int i = 0; i < kPerClient; ++i) {
        std::string line;
        switch (i % 4) {
          case 0:
            line = "DELTA g " + std::to_string((c * 7 + i) % 64) + ":" +
                   std::to_string(1 + i);
            break;
          case 1:
            line = "REPART g";
            break;
          case 2:
            line = "DELTA g " + std::to_string((c + i) % 64) + ":2 " +
                   std::to_string((c + i + 1) % 64) + ":3";
            break;
          default:
            line = "DELTA g bogus";  // parse error: replied synchronously
            break;
        }
        const std::uint64_t id = server.submit(line);
        ASSERT_GT(id, 0u);
        const std::lock_guard<std::mutex> lock(ids_mutex);
        ids.insert(id);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.shutdown();

  ASSERT_EQ(ids.size(),
            static_cast<std::size_t>(kClients * kPerClient) + 1u);
  std::set<std::uint64_t> replied_ids;
  for (const std::string& line : log.snapshot()) {
    const std::uint64_t id = reply_id(line);
    EXPECT_GT(id, 0u) << line;
    EXPECT_TRUE(replied_ids.insert(id).second)
        << "duplicate reply for id " << id << ": " << line;
  }
  EXPECT_EQ(replied_ids, ids);  // exactly one reply per admitted request
}

TEST(ServeChaos, ShutdownInterruptsRetryBackoffMidEpoch) {
  // The acceptance scenario: an in-flight epoch whose attempts keep
  // failing is parked in a long exponential backoff when stop() arrives.
  // The StopToken threaded into the degradation policy cuts the wait, the
  // epoch degrades to keep-old, and the daemon is down in milliseconds —
  // not after the 30-second backoff schedule.
  ReplyLog log;
  ServeConfig cfg;
  cfg.default_k = 4;
  cfg.default_alpha = 10;
  cfg.default_epsilon = 0.1;
  cfg.seed = 7;
  cfg.num_ranks = 2;  // parallel dispatch: allreduce faults reach it
  cfg.max_retries = 5;
  cfg.retry_backoff_seconds = 30.0;
  cfg.deadlock_timeout = 5.0;
  cfg.fault_plan = std::make_shared<const fault::FaultPlan>(
      fault::FaultPlan::parse("throw@allreduce:count=0"));
  Server server(cfg, [&log](const std::string& line) { log(line); });
  server.submit("LOAD g " + grid_hgr_path("serve_backoff") + " k=4");
  server.drain();  // static partition does not touch the comm runtime
  server.submit("REPART g");  // full tier -> every attempt throws
  while (server.queue_depth() != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // Give the first attempt time to fail and the backoff wait to start.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  WallTimer timer;
  server.stop();
  EXPECT_LT(timer.seconds(), 10.0);  // far below one 30s backoff step
  bool saw_degraded = false;
  for (const std::string& line : log.snapshot())
    if (line.find("degraded=1") != std::string::npos) saw_degraded = true;
  EXPECT_TRUE(saw_degraded) << "in-flight epoch did not degrade to keep-old";
  EXPECT_EQ(server.replied(), 2u);
}

TEST(ServeChaos, StalledBackendFailsBatchAfterDeadlockTimeout) {
  // A wedged backend (stall@serve) must not wedge the daemon: the stall
  // parks on the stop token for deadlock_timeout, then the batch fails
  // with an ERR naming the injected stall.
  ReplyLog log;
  ServeConfig cfg;
  cfg.default_k = 4;
  cfg.deadlock_timeout = 0.1;
  cfg.fault_plan = std::make_shared<const fault::FaultPlan>(
      fault::FaultPlan::parse("stall@serve:after=2"));
  Server server(cfg, [&log](const std::string& line) { log(line); });
  server.submit("LOAD g " + grid_hgr_path("serve_stall") + " k=4");
  server.drain();
  server.submit("REPART g");  // second batch: the stall rule fires
  server.drain();
  bool saw_stall_err = false;
  for (const std::string& line : log.snapshot())
    if (line.rfind("ERR ", 0) == 0 &&
        line.find("stall@serve") != std::string::npos)
      saw_stall_err = true;
  EXPECT_TRUE(saw_stall_err) << "stalled batch was not failed";
  server.shutdown();
}

}  // namespace
}  // namespace hgr::serve
