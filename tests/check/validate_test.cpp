#include "check/validate.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "metrics/cut.hpp"
#include "metrics/migration.hpp"
#include "partition/contract.hpp"
#include "partition/partitioner.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using check::CheckLevel;
using check::PartitionExpectations;

std::string failure_message(const std::function<void()>& f) {
  ScopedAssertHandler guard;
  try {
    f();
  } catch (const AssertionError& e) {
    return e.what();
  }
  return "";
}

TEST(ValidateHypergraph, WellFormedPassesParanoid) {
  ScopedAssertHandler guard;
  const Hypergraph h = testing::random_hypergraph(60, 90, 6, 4, 7);
  check::validate_hypergraph(h, CheckLevel::kParanoid, 4);
  check::validate_hypergraph(h, CheckLevel::kCheap);
}

TEST(ValidateHypergraph, OffLevelNeverFires) {
  // Even with a malformed fixed array the off level must not look at it.
  Hypergraph h = testing::make_hypergraph(3, {{0, 1}, {1, 2}});
  h.set_fixed_parts({PartId{5}, kNoPart, kNoPart});
  check::validate_hypergraph(h, CheckLevel::kOff, 2);
}

TEST(ValidateHypergraph, CatchesFixedLabelOutOfRange) {
  Hypergraph h = testing::make_hypergraph(3, {{0, 1}, {1, 2}});
  h.set_fixed_parts({PartId{5}, kNoPart, kNoPart});
  const std::string what = failure_message(
      [&] { check::validate_hypergraph(h, CheckLevel::kCheap, 2); });
  EXPECT_NE(what.find("fixed to part 5"), std::string::npos) << what;
}

TEST(ValidatePartition, CheapCatchesFixedVertexViolation) {
  Hypergraph h = testing::make_hypergraph(4, {{0, 1, 2}, {2, 3}});
  h.set_fixed_parts({PartId{1}, kNoPart, kNoPart, kNoPart});
  Partition p(2, 4, PartId{0});  // vertex 0 belongs on part 1 but sits on 0
  PartitionExpectations expect;
  expect.context = "test";
  const std::string what = failure_message(
      [&] { check::validate_partition(h, p, CheckLevel::kCheap, expect); });
  EXPECT_NE(what.find("fixed to part 1"), std::string::npos) << what;
  EXPECT_NE(what.find("[test]"), std::string::npos) << what;
}

TEST(ValidatePartition, CheapCatchesBalanceViolation) {
  // Four unit vertices, k=2, eps=0: the bound is 2, but everything is
  // crammed onto part 0.
  const Hypergraph h = testing::make_hypergraph(4, {{0, 1}, {2, 3}});
  Partition p(2, 4, PartId{0});
  PartitionExpectations expect;
  expect.epsilon = 0.0;
  const std::string what = failure_message(
      [&] { check::validate_partition(h, p, CheckLevel::kCheap, expect); });
  EXPECT_NE(what.find("balance bound"), std::string::npos) << what;
}

TEST(ValidatePartition, BalancedPartitionPasses) {
  ScopedAssertHandler guard;
  const Hypergraph h = testing::make_hypergraph(4, {{0, 1}, {2, 3}});
  Partition p(2, 4, PartId{0});
  p[VertexId{2}] = p[VertexId{3}] = PartId{1};
  PartitionExpectations expect;
  expect.epsilon = 0.0;
  check::validate_partition(h, p, CheckLevel::kParanoid, expect);
}

TEST(ValidatePartition, UnattainableBalanceIsExempt) {
  // One vertex of weight 100 among unit vertices: no assignment can meet
  // eps=0, so the bound must not be enforced (best-effort territory).
  ScopedAssertHandler guard;
  HypergraphBuilder b(4);
  b.add_net({0, 1}, 1);
  b.add_net({2, 3}, 1);
  b.set_vertex_weight(0, 100);
  const Hypergraph h = b.finalize();
  Partition p(2, 4, PartId{0});
  p[VertexId{2}] = p[VertexId{3}] = PartId{1};
  PartitionExpectations expect;
  expect.epsilon = 0.0;
  check::validate_partition(h, p, CheckLevel::kCheap, expect);
}

TEST(ValidatePartition, CheapCatchesOutOfRangePart) {
  const Hypergraph h = testing::make_hypergraph(3, {{0, 1, 2}});
  Partition p(2, 3, PartId{0});
  p[VertexId{1}] = PartId{7};
  const std::string what = failure_message(
      [&] { check::validate_partition(h, p, CheckLevel::kCheap); });
  EXPECT_NE(what.find("part 7"), std::string::npos) << what;
}

TEST(ValidatePartition, ParanoidCatchesWrongReportedCut) {
  const Hypergraph h = testing::random_hypergraph(40, 60, 5, 3, 11);
  const Partition p = testing::random_partition(40, 4, 13);
  PartitionExpectations expect;
  expect.reported_cut = connectivity_cut(h, p) + 1;  // off by one
  const std::string what = failure_message(
      [&] { check::validate_partition(h, p, CheckLevel::kParanoid, expect); });
  EXPECT_NE(what.find("reported cut"), std::string::npos) << what;
}

TEST(ValidatePartition, ParanoidCatchesWrongReportedMigration) {
  const Hypergraph h = testing::random_hypergraph(40, 60, 5, 3, 17);
  const Partition old_p = testing::random_partition(40, 4, 19);
  const Partition new_p = testing::random_partition(40, 4, 23);
  PartitionExpectations expect;
  expect.old_partition = &old_p;
  expect.reported_migration =
      migration_volume(h.vertex_sizes(), old_p, new_p) + 5;
  const std::string what = failure_message([&] {
    check::validate_partition(h, new_p, CheckLevel::kParanoid, expect);
  });
  EXPECT_NE(what.find("reported migration"), std::string::npos) << what;
}

TEST(ValidatePartition, ConsistentExpectationsPassParanoid) {
  ScopedAssertHandler guard;
  const Hypergraph h = testing::random_hypergraph(40, 60, 5, 3, 29);
  const Partition old_p = testing::random_partition(40, 4, 31);
  const Partition new_p = testing::random_partition(40, 4, 37);
  PartitionExpectations expect;
  expect.reported_cut = connectivity_cut(h, new_p);
  expect.old_partition = &old_p;
  expect.reported_migration = migration_volume(h.vertex_sizes(), old_p, new_p);
  check::validate_partition(h, new_p, CheckLevel::kParanoid, expect);
}

/// Matching that pairs (0,1), (2,3), ... and self-matches a trailing odd
/// vertex — the simplest valid input for contract().
IdVector<VertexId, VertexId> pairing_match(Index n) {
  IdVector<VertexId, VertexId> match(n);
  for (Index v = 0; v + 1 < n; v += 2) {
    match[VertexId{v}] = VertexId{v + 1};
    match[VertexId{v + 1}] = VertexId{v};
  }
  if (n % 2 == 1) match[VertexId{n - 1}] = VertexId{n - 1};
  return match;
}

TEST(ValidateCoarsening, HonestContractionPasses) {
  ScopedAssertHandler guard;
  const Hypergraph h = testing::random_hypergraph(30, 50, 5, 3, 41);
  const CoarseLevel lvl = contract(h, pairing_match(30));
  check::validate_coarsening(h, lvl, CheckLevel::kCheap);

  const Partition cp =
      testing::random_partition(lvl.coarse.num_vertices(), 3, 43);
  check::validate_coarsening(h, lvl, CheckLevel::kParanoid, &cp);
}

TEST(ValidateCoarsening, CatchesBrokenSurjectivity) {
  const Hypergraph h = testing::make_hypergraph(4, {{0, 1}, {2, 3}});
  CoarseLevel lvl = contract(h, pairing_match(4));
  ASSERT_EQ(lvl.coarse.num_vertices(), 2);
  // Redirect every fine vertex onto coarse vertex 0: coarse vertex 1 loses
  // its preimage.
  lvl.fine_to_coarse.assign(4, VertexId{0});
  const std::string what = failure_message(
      [&] { check::validate_coarsening(h, lvl, CheckLevel::kCheap); });
  EXPECT_NE(what.find("no fine preimage"), std::string::npos) << what;
}

TEST(ValidateCoarsening, CatchesWeightLoss) {
  // Contract against a fine hypergraph whose weights were inflated after
  // the fact: conservation must fail.
  const Hypergraph h = testing::make_hypergraph(4, {{0, 1}, {2, 3}});
  const CoarseLevel lvl = contract(h, pairing_match(4));
  HypergraphBuilder b(4);
  b.add_net({0, 1}, 1);
  b.add_net({2, 3}, 1);
  b.set_vertex_weight(0, 50);
  const Hypergraph heavier = b.finalize();
  const std::string what = failure_message(
      [&] { check::validate_coarsening(heavier, lvl, CheckLevel::kCheap); });
  EXPECT_NE(what.find("total vertex weight"), std::string::npos) << what;
}

TEST(ValidateCoarsening, CatchesFixedLabelLoss) {
  Hypergraph h = testing::make_hypergraph(4, {{0, 1}, {2, 3}});
  h.set_fixed_parts({PartId{2}, kNoPart, kNoPart, kNoPart});
  CoarseLevel lvl = contract(h, pairing_match(4));
  // Erase the coarse fixed labels wholesale: fine vertex 0's label now has
  // no coarse image.
  lvl.coarse.set_fixed_parts({});
  const std::string what = failure_message(
      [&] { check::validate_coarsening(h, lvl, CheckLevel::kCheap); });
  EXPECT_NE(what.find("fixed"), std::string::npos) << what;
}

TEST(ValidateCoarsening, ParanoidCatchesProjectionCutMismatch) {
  // A corrupted fine_to_coarse map that stays in range and surjective but
  // scrambles which side vertices land on: the projected cut diverges.
  const Hypergraph h =
      testing::make_hypergraph(6, {{0, 1}, {2, 3}, {4, 5}, {1, 2}, {3, 4}});
  CoarseLevel lvl = contract(h, pairing_match(6));
  ASSERT_EQ(lvl.coarse.num_vertices(), 3);
  Partition cp(2, 3, PartId{0});
  cp[VertexId{2}] = PartId{1};
  // Swap vertex 0 and vertex 5's images: still surjective, cut now wrong.
  std::swap(lvl.fine_to_coarse[VertexId{0}], lvl.fine_to_coarse[VertexId{5}]);
  const std::string what = failure_message([&] {
    check::validate_coarsening(h, lvl, CheckLevel::kParanoid, &cp);
  });
  EXPECT_NE(what.find("projected fine cut"), std::string::npos) << what;
}

TEST(ValidatePipeline, FullPartitionerRunsCleanAtParanoid) {
  // End-to-end: the real multilevel partitioner with validators armed at
  // every coarsening level, projection, and the final partition. A false
  // positive anywhere in the threading shows up here.
  ScopedAssertHandler guard;
  const Hypergraph h = testing::random_hypergraph(200, 320, 6, 4, 53);
  PartitionConfig cfg;
  cfg.num_parts = 4;
  cfg.check_level = CheckLevel::kParanoid;
  const Partition p = partition_hypergraph(h, cfg);
  EXPECT_EQ(p.num_vertices(), 200);
}

TEST(ValidatePipeline, FixedVerticesRunCleanAtParanoid) {
  ScopedAssertHandler guard;
  Hypergraph h = testing::random_hypergraph(120, 180, 5, 3, 59);
  std::vector<PartId> fixed(120, kNoPart);
  for (Index v = 0; v < 120; v += 10)
    fixed[static_cast<std::size_t>(v)] = PartId{(v / 10) % 3};
  h.set_fixed_parts(std::move(fixed));
  PartitionConfig cfg;
  cfg.num_parts = 3;
  cfg.check_level = CheckLevel::kParanoid;
  const Partition p = partition_hypergraph(h, cfg);
  for (Index v = 0; v < 120; v += 10)
    EXPECT_EQ(p[VertexId{v}], PartId{(v / 10) % 3});
}

}  // namespace
}  // namespace hgr
