// Regression tests for the comm deadlock watchdog: runs that would hang
// forever must instead fail fast with a per-rank diagnosis.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "parallel/comm.hpp"

namespace hgr {
namespace {

TEST(Watchdog, RecvNobodySendsIsDiagnosed) {
  Comm comm(3);
  comm.set_deadlock_timeout(0.2);
  try {
    comm.run([](RankContext& ctx) {
      if (ctx.rank() == 0) {
        // Rank 0 waits for a message rank 1 never sends; 1 and 2 wait at a
        // barrier rank 0 can never reach. Without the watchdog this hangs.
        (void)ctx.recv<std::uint8_t>(1, 7);
      } else {
        ctx.barrier();
      }
    });
    FAIL() << "deadlocked run returned";
  } catch (const CommDeadlock& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0: recv(src=1, tag=7)"), std::string::npos)
        << what;
    EXPECT_NE(what.find("rank 1: barrier"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 2: barrier"), std::string::npos) << what;
  }
}

TEST(Watchdog, MismatchedTagIsDiagnosed) {
  Comm comm(2);
  comm.set_deadlock_timeout(0.2);
  try {
    comm.run([](RankContext& ctx) {
      if (ctx.rank() == 0) {
        const std::vector<std::uint8_t> payload = {1, 2, 3};
        ctx.send<std::uint8_t>(1, 5, payload);
        (void)ctx.recv<std::uint8_t>(1, 5);
      } else {
        // Waits on tag 6 while rank 0 sent tag 5: classic tag mix-up.
        (void)ctx.recv<std::uint8_t>(0, 6);
      }
    });
    FAIL() << "deadlocked run returned";
  } catch (const CommDeadlock& e) {
    EXPECT_NE(std::string(e.what()).find("rank 1: recv(src=0, tag=6)"),
              std::string::npos)
        << e.what();
  }
}

TEST(Watchdog, HealthyTrafficDoesNotTrip) {
  // Several barrier+message rounds under a timeout shorter than the total
  // runtime of the loop: progress between blocking points must keep the
  // watchdog quiet.
  Comm comm(4);
  comm.set_deadlock_timeout(0.3);
  std::vector<int> sums(4, 0);
  comm.run([&](RankContext& ctx) {
    for (int round = 0; round < 20; ++round) {
      const int peer = (ctx.rank() + 1) % ctx.size();
      const std::vector<int> payload = {round + ctx.rank()};
      ctx.send<int>(peer, 1, payload);
      const std::vector<int> got =
          ctx.recv<int>((ctx.rank() + ctx.size() - 1) % ctx.size(), 1);
      sums[static_cast<std::size_t>(ctx.rank())] += got[0];
      ctx.barrier();
    }
  });
  for (int r = 0; r < 4; ++r) EXPECT_GT(sums[static_cast<std::size_t>(r)], 0);
}

TEST(Watchdog, RealExceptionOutranksDeadlockReport) {
  // A rank that throws while the others block must surface the original
  // exception, not a deadlock diagnosis.
  Comm comm(2);
  comm.set_deadlock_timeout(0.2);
  EXPECT_THROW(comm.run([](RankContext& ctx) {
                 if (ctx.rank() == 0) throw std::logic_error("boom");
                 (void)ctx.recv<std::uint8_t>(0, 3);
               }),
               std::logic_error);
}

TEST(Watchdog, DisabledTimeoutMeansNoWatchdog) {
  Comm comm(2);
  comm.set_deadlock_timeout(0.0);
  int total = 0;
  comm.run([&](RankContext& ctx) {
    const int x = ctx.allreduce<int>(ctx.rank(), [](int a, int b) {
      return a + b;
    });
    if (ctx.rank() == 0) total = x;
  });
  EXPECT_EQ(total, 1);
}

TEST(Watchdog, TimeoutUpdateMidRunIsHonored) {
  // set_deadlock_timeout is atomic and re-read every watchdog poll, so
  // shortening a live run's generous timeout takes effect immediately
  // (regression: the old plain-double member was both a data race and a
  // stale snapshot — a mid-run update was ignored until the next run).
  Comm comm(2);
  comm.set_deadlock_timeout(300.0);
  WallTimer timer;
  EXPECT_THROW(comm.run([&](RankContext& ctx) {
                 if (ctx.rank() == 0) comm.set_deadlock_timeout(0.2);
                 ctx.barrier();
                 // Mutual recv: a textbook deadlock under the new 0.2s
                 // timeout; under the stale 300s one this test times out.
                 (void)ctx.recv<std::uint8_t>(1 - ctx.rank(), 4);
               }),
               CommDeadlock);
  EXPECT_LT(timer.seconds(), 30.0);
}

TEST(Watchdog, CommStaysReusableAfterDeadlock) {
  Comm comm(2);
  comm.set_deadlock_timeout(0.2);
  EXPECT_THROW(comm.run([](RankContext& ctx) {
                 if (ctx.rank() == 0) (void)ctx.recv<std::uint8_t>(1, 9);
                 else (void)ctx.recv<std::uint8_t>(0, 9);
               }),
               CommDeadlock);
  // The same communicator must complete a healthy run afterwards.
  int total = 0;
  comm.run([&](RankContext& ctx) {
    const int x = ctx.allreduce<int>(1, [](int a, int b) { return a + b; });
    if (ctx.rank() == 0) total = x;
  });
  EXPECT_EQ(total, 2);
}

}  // namespace
}  // namespace hgr
