#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

namespace hgr {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser, enough to round-trip the hgr-trace-v1 schema. A
// parse failure fails the test, so trace_to_json output is validated as
// real JSON, not just by substring.
// ---------------------------------------------------------------------------

struct JsonValue;
using JsonObject = std::map<std::string, std::shared_ptr<JsonValue>>;
using JsonArray = std::vector<std::shared_ptr<JsonValue>>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  std::shared_ptr<JsonValue> parse() {
    auto value = parse_value();
    skip_ws();
    EXPECT_EQ(pos_, s_.size()) << "trailing garbage after JSON document";
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  char peek() {
    EXPECT_LT(pos_, s_.size()) << "unexpected end of JSON";
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  void expect(char c) {
    EXPECT_EQ(peek(), c) << "at offset " << pos_;
    ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        EXPECT_LT(pos_, s_.size());
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'u':
            pos_ += 4;  // tests only use ASCII names; skip the code point
            out += '?';
            break;
          default:
            out += esc;
        }
      } else {
        out += c;
      }
    }
    expect('"');
    return out;
  }

  std::shared_ptr<JsonValue> parse_value() {
    skip_ws();
    auto value = std::make_shared<JsonValue>();
    const char c = peek();
    if (c == '{') {
      ++pos_;
      JsonObject obj;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
      } else {
        while (true) {
          skip_ws();
          std::string key = parse_string();
          skip_ws();
          expect(':');
          obj[key] = parse_value();
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          break;
        }
      }
      value->v = std::move(obj);
    } else if (c == '[') {
      ++pos_;
      JsonArray arr;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
      } else {
        while (true) {
          arr.push_back(parse_value());
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          break;
        }
      }
      value->v = std::move(arr);
    } else if (c == '"') {
      value->v = parse_string();
    } else {
      std::size_t end = pos_;
      while (end < s_.size() &&
             (std::isdigit(static_cast<unsigned char>(s_[end])) ||
              s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
              s_[end] == 'e' || s_[end] == 'E'))
        ++end;
      EXPECT_GT(end, pos_) << "expected a number at offset " << pos_;
      value->v = std::stod(s_.substr(pos_, end - pos_));
      pos_ = end;
    }
    return value;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

const JsonObject& as_object(const JsonValue& v) {
  return std::get<JsonObject>(v.v);
}
const JsonArray& as_array(const JsonValue& v) {
  return std::get<JsonArray>(v.v);
}
double as_number(const JsonValue& v) { return std::get<double>(v.v); }
const std::string& as_string(const JsonValue& v) {
  return std::get<std::string>(v.v);
}

const JsonValue* find_child_phase(const JsonValue& phase,
                                  const std::string& name) {
  const JsonObject& obj = as_object(phase);
  const auto it = obj.find("children");
  if (it == obj.end()) return nullptr;
  for (const auto& child : as_array(*it->second))
    if (as_string(*as_object(*child).at("name")) == name) return child.get();
  return nullptr;
}

// ---------------------------------------------------------------------------
// Counter basics
// ---------------------------------------------------------------------------

TEST(ObsCounters, CreateAndAccumulate) {
  obs::Registry reg;
  EXPECT_EQ(reg.counter_value("a.b"), 0u);
  reg.counter("a.b") += 3;
  reg.counter("a.b") += 4;
  EXPECT_EQ(reg.counter_value("a.b"), 7u);
  const auto all = reg.counters();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all.at("a.b"), 7u);
}

TEST(ObsCounters, GlobalInjection) {
  obs::Registry reg;
  {
    obs::ScopedRegistry scope(reg);
    obs::counter("injected") += 5;
  }
  EXPECT_EQ(reg.counter_value("injected"), 5u);
  // After the scope exits, the same counter name routes elsewhere.
  obs::counter("injected") += 1;
  EXPECT_EQ(reg.counter_value("injected"), 5u);
}

TEST(ObsCounters, ThreadSafeIncrements) {
  obs::Registry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&reg] {
      for (int i = 0; i < 1000; ++i) reg.counter("contended") += 1;
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter_value("contended"), 4000u);
}

// ---------------------------------------------------------------------------
// Phase tree
// ---------------------------------------------------------------------------

TEST(ObsTrace, ScopesNestAndMerge) {
  obs::Registry reg;
  {
    obs::TraceScope outer("outer", &reg);
    {
      obs::TraceScope inner("inner", &reg);
    }
    {
      obs::TraceScope inner("inner", &reg);  // merges with the first
    }
    {
      obs::TraceScope other("other", &reg);
    }
  }
  {
    obs::TraceScope outer("outer", &reg);  // second call of the root phase
  }
  const obs::PhaseSnapshot tree = reg.phase_tree();
  ASSERT_EQ(tree.children.size(), 1u);
  const obs::PhaseSnapshot& outer = tree.children[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.calls, 2u);
  ASSERT_EQ(outer.children.size(), 2u);

  const obs::PhaseSnapshot* inner = obs::find_phase(tree, {"outer", "inner"});
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->calls, 2u);
  EXPECT_GE(inner->seconds, 0.0);
  const obs::PhaseSnapshot* other = obs::find_phase(tree, {"outer", "other"});
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->calls, 1u);
  EXPECT_EQ(obs::find_phase(tree, {"outer", "missing"}), nullptr);
  // Parent time includes child time.
  EXPECT_GE(outer.seconds, inner->seconds + other->seconds - 1e-9);
}

TEST(ObsTrace, PerThreadStacksMergeByName) {
  obs::Registry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t)
    threads.emplace_back([&reg] {
      obs::TraceScope scope("worker", &reg);
      obs::TraceScope inner("step", &reg);
    });
  for (auto& t : threads) t.join();
  const obs::PhaseSnapshot tree = reg.phase_tree();
  const obs::PhaseSnapshot* worker = obs::find_phase(tree, {"worker"});
  ASSERT_NE(worker, nullptr);
  EXPECT_EQ(worker->calls, 3u);
  const obs::PhaseSnapshot* step = obs::find_phase(tree, {"worker", "step"});
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->calls, 3u);
}

TEST(ObsTrace, ResetClearsEverything) {
  obs::Registry reg;
  reg.counter("x") += 1;
  {
    obs::TraceScope scope("p", &reg);
  }
  reg.reset();
  EXPECT_EQ(reg.counter_value("x"), 0u);
  EXPECT_TRUE(reg.phase_tree().children.empty());
}

// ---------------------------------------------------------------------------
// JSON round-trip
// ---------------------------------------------------------------------------

TEST(ObsTrace, JsonRoundTrip) {
  obs::Registry reg;
  {
    obs::TraceScope partition("partition", &reg);
    {
      obs::TraceScope coarsen("coarsen", &reg);
    }
    {
      obs::TraceScope refine("refine", &reg);
    }
  }
  reg.counter("refine.moves") += 42;
  reg.counter("comm.allgather.bytes") += 1024;

  const std::string json = obs::trace_to_json(reg);
  JsonParser parser(json);
  const auto doc = parser.parse();
  const JsonObject& root = as_object(*doc);

  EXPECT_EQ(as_string(*root.at("schema")), "hgr-trace-v1");

  const JsonArray& phases = as_array(*root.at("phases"));
  ASSERT_EQ(phases.size(), 1u);
  const JsonValue& partition = *phases[0];
  EXPECT_EQ(as_string(*as_object(partition).at("name")), "partition");
  EXPECT_EQ(as_number(*as_object(partition).at("calls")), 1.0);
  EXPECT_GE(as_number(*as_object(partition).at("seconds")), 0.0);
  EXPECT_NE(find_child_phase(partition, "coarsen"), nullptr);
  EXPECT_NE(find_child_phase(partition, "refine"), nullptr);
  EXPECT_EQ(find_child_phase(partition, "initial"), nullptr);

  const JsonObject& counters = as_object(*root.at("counters"));
  EXPECT_EQ(as_number(*counters.at("refine.moves")), 42.0);
  EXPECT_EQ(as_number(*counters.at("comm.allgather.bytes")), 1024.0);
}

TEST(ObsTrace, JsonEscapesSpecialCharacters) {
  obs::Registry reg;
  reg.counter("weird\"name\\with\nstuff") += 1;
  const std::string json = obs::trace_to_json(reg);
  JsonParser parser(json);
  const auto doc = parser.parse();
  const JsonObject& counters = as_object(*as_object(*doc).at("counters"));
  EXPECT_EQ(as_number(*counters.at("weird\"name\\with\nstuff")), 1.0);
}

TEST(ObsTrace, EmptyRegistrySerializes) {
  obs::Registry reg;
  const std::string json = obs::trace_to_json(reg);
  JsonParser parser(json);
  const auto doc = parser.parse();
  EXPECT_TRUE(as_array(*as_object(*doc).at("phases")).empty());
  EXPECT_TRUE(as_object(*as_object(*doc).at("counters")).empty());
}

TEST(ObsTrace, WriteTraceJsonFile) {
  obs::Registry reg;
  reg.counter("k") += 9;
  const std::string path = ::testing::TempDir() + "/trace_test_out.json";
  ASSERT_TRUE(obs::write_trace_json(path, reg));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  JsonParser parser(content);
  const auto doc = parser.parse();
  EXPECT_EQ(
      as_number(*as_object(*as_object(*doc).at("counters")).at("k")), 9.0);
  EXPECT_FALSE(obs::write_trace_json("/nonexistent-dir/x/y.json", reg));
}

}  // namespace
}  // namespace hgr
