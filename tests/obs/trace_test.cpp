#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "mini_json.hpp"

namespace hgr {
namespace {

using testjson::JsonArray;
using testjson::JsonObject;
using testjson::JsonParser;
using testjson::JsonValue;
using testjson::as_array;
using testjson::as_number;
using testjson::as_object;
using testjson::as_string;

const JsonValue* find_child_phase(const JsonValue& phase,
                                  const std::string& name) {
  const JsonObject& obj = as_object(phase);
  const auto it = obj.find("children");
  if (it == obj.end()) return nullptr;
  for (const auto& child : as_array(*it->second))
    if (as_string(*as_object(*child).at("name")) == name) return child.get();
  return nullptr;
}

// ---------------------------------------------------------------------------
// Counter basics
// ---------------------------------------------------------------------------

TEST(ObsCounters, CreateAndAccumulate) {
  obs::Registry reg;
  EXPECT_EQ(reg.counter_value("a.b"), 0u);
  reg.counter("a.b") += 3;
  reg.counter("a.b") += 4;
  EXPECT_EQ(reg.counter_value("a.b"), 7u);
  const auto all = reg.counters();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all.at("a.b"), 7u);
}

TEST(ObsCounters, GlobalInjection) {
  obs::Registry reg;
  {
    obs::ScopedRegistry scope(reg);
    obs::counter("injected") += 5;
  }
  EXPECT_EQ(reg.counter_value("injected"), 5u);
  // After the scope exits, the same counter name routes elsewhere.
  obs::counter("injected") += 1;
  EXPECT_EQ(reg.counter_value("injected"), 5u);
}

TEST(ObsCounters, ThreadSafeIncrements) {
  obs::Registry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&reg] {
      for (int i = 0; i < 1000; ++i) reg.counter("contended") += 1;
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter_value("contended"), 4000u);
}

// ---------------------------------------------------------------------------
// Phase tree
// ---------------------------------------------------------------------------

TEST(ObsTrace, ScopesNestAndMerge) {
  obs::Registry reg;
  {
    obs::TraceScope outer("outer", &reg);
    {
      obs::TraceScope inner("inner", &reg);
    }
    {
      obs::TraceScope inner("inner", &reg);  // merges with the first
    }
    {
      obs::TraceScope other("other", &reg);
    }
  }
  {
    obs::TraceScope outer("outer", &reg);  // second call of the root phase
  }
  const obs::PhaseSnapshot tree = reg.phase_tree();
  ASSERT_EQ(tree.children.size(), 1u);
  const obs::PhaseSnapshot& outer = tree.children[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.calls, 2u);
  ASSERT_EQ(outer.children.size(), 2u);

  const obs::PhaseSnapshot* inner = obs::find_phase(tree, {"outer", "inner"});
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->calls, 2u);
  EXPECT_GE(inner->seconds, 0.0);
  const obs::PhaseSnapshot* other = obs::find_phase(tree, {"outer", "other"});
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->calls, 1u);
  EXPECT_EQ(obs::find_phase(tree, {"outer", "missing"}), nullptr);
  // Parent time includes child time.
  EXPECT_GE(outer.seconds, inner->seconds + other->seconds - 1e-9);
}

TEST(ObsTrace, PerThreadStacksMergeByName) {
  obs::Registry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t)
    threads.emplace_back([&reg] {
      obs::TraceScope scope("worker", &reg);
      obs::TraceScope inner("step", &reg);
    });
  for (auto& t : threads) t.join();
  const obs::PhaseSnapshot tree = reg.phase_tree();
  const obs::PhaseSnapshot* worker = obs::find_phase(tree, {"worker"});
  ASSERT_NE(worker, nullptr);
  EXPECT_EQ(worker->calls, 3u);
  const obs::PhaseSnapshot* step = obs::find_phase(tree, {"worker", "step"});
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->calls, 3u);
}

TEST(ObsTrace, ResetClearsEverything) {
  obs::Registry reg;
  reg.counter("x") += 1;
  {
    obs::TraceScope scope("p", &reg);
  }
  reg.reset();
  EXPECT_EQ(reg.counter_value("x"), 0u);
  EXPECT_TRUE(reg.phase_tree().children.empty());
}

// ---------------------------------------------------------------------------
// JSON round-trip
// ---------------------------------------------------------------------------

TEST(ObsTrace, JsonRoundTrip) {
  obs::Registry reg;
  {
    obs::TraceScope partition("partition", &reg);
    {
      obs::TraceScope coarsen("coarsen", &reg);
    }
    {
      obs::TraceScope refine("refine", &reg);
    }
  }
  reg.counter("refine.moves") += 42;
  reg.counter("comm.allgather.bytes") += 1024;
  reg.histogram("fm.move_gain").record(-3);
  reg.histogram("fm.move_gain").record(5);
  reg.gauge("epoch.current").set(7);

  const std::string json = obs::trace_to_json(reg);
  JsonParser parser(json);
  const auto doc = parser.parse();
  const JsonObject& root = as_object(*doc);

  EXPECT_EQ(as_string(*root.at("schema")), "hgr-trace-v2");

  const JsonArray& phases = as_array(*root.at("phases"));
  ASSERT_EQ(phases.size(), 1u);
  const JsonValue& partition = *phases[0];
  EXPECT_EQ(as_string(*as_object(partition).at("name")), "partition");
  EXPECT_EQ(as_number(*as_object(partition).at("calls")), 1.0);
  EXPECT_GE(as_number(*as_object(partition).at("seconds")), 0.0);
  EXPECT_NE(find_child_phase(partition, "coarsen"), nullptr);
  EXPECT_NE(find_child_phase(partition, "refine"), nullptr);
  EXPECT_EQ(find_child_phase(partition, "initial"), nullptr);

  const JsonObject& counters = as_object(*root.at("counters"));
  EXPECT_EQ(as_number(*counters.at("refine.moves")), 42.0);
  EXPECT_EQ(as_number(*counters.at("comm.allgather.bytes")), 1024.0);

  const JsonObject& hists = as_object(*root.at("histograms"));
  const JsonObject& gain = as_object(*hists.at("fm.move_gain"));
  EXPECT_EQ(as_number(*gain.at("count")), 2.0);
  EXPECT_EQ(as_number(*gain.at("sum")), 2.0);
  EXPECT_EQ(as_number(*gain.at("min")), -3.0);
  EXPECT_EQ(as_number(*gain.at("max")), 5.0);
  EXPECT_GE(as_number(*gain.at("p99")), as_number(*gain.at("p50")));

  const JsonObject& gauges = as_object(*root.at("gauges"));
  EXPECT_EQ(as_number(*gauges.at("epoch.current")), 7.0);
}

TEST(ObsTrace, JsonEscapesSpecialCharacters) {
  obs::Registry reg;
  reg.counter("weird\"name\\with\nstuff") += 1;
  const std::string json = obs::trace_to_json(reg);
  JsonParser parser(json);
  const auto doc = parser.parse();
  const JsonObject& counters = as_object(*as_object(*doc).at("counters"));
  EXPECT_EQ(as_number(*counters.at("weird\"name\\with\nstuff")), 1.0);
}

TEST(ObsTrace, EmptyRegistrySerializes) {
  obs::Registry reg;
  const std::string json = obs::trace_to_json(reg);
  JsonParser parser(json);
  const auto doc = parser.parse();
  EXPECT_TRUE(as_array(*as_object(*doc).at("phases")).empty());
  EXPECT_TRUE(as_object(*as_object(*doc).at("counters")).empty());
}

TEST(ObsTrace, WriteTraceJsonFile) {
  obs::Registry reg;
  reg.counter("k") += 9;
  const std::string path = ::testing::TempDir() + "/trace_test_out.json";
  ASSERT_TRUE(obs::write_trace_json(path, reg));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  JsonParser parser(content);
  const auto doc = parser.parse();
  EXPECT_EQ(
      as_number(*as_object(*as_object(*doc).at("counters")).at("k")), 9.0);
  EXPECT_FALSE(obs::write_trace_json("/nonexistent-dir/x/y.json", reg));
}

// ---------------------------------------------------------------------------
// Per-call max/min seconds
// ---------------------------------------------------------------------------

TEST(ObsTrace, MaxMinSecondsPerMergedScope) {
  obs::Registry reg;
  {
    obs::TraceScope scope("work", &reg);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  {
    obs::TraceScope scope("work", &reg);  // much shorter second call
  }
  const obs::PhaseSnapshot* work = obs::find_phase(reg.phase_tree(), {"work"});
  ASSERT_NE(work, nullptr);
  EXPECT_EQ(work->calls, 2u);
  EXPECT_GE(work->max_seconds, 0.015);
  EXPECT_LT(work->min_seconds, work->max_seconds);
  EXPECT_GE(work->min_seconds, 0.0);
  // seconds is the sum of both calls, so it brackets max alone.
  EXPECT_GE(work->seconds, work->max_seconds);
  EXPECT_LE(work->max_seconds + work->min_seconds, work->seconds + 1e-9);
}

TEST(ObsTrace, JsonCarriesMaxMinSeconds) {
  obs::Registry reg;
  {
    obs::TraceScope scope("p", &reg);
  }
  const std::string json = obs::trace_to_json(reg);
  JsonParser parser(json);
  const auto doc = parser.parse();
  const JsonObject& phase =
      as_object(*as_array(*as_object(*doc).at("phases"))[0]);
  ASSERT_TRUE(phase.count("max_seconds"));
  ASSERT_TRUE(phase.count("min_seconds"));
  // One call: max == min == seconds.
  EXPECT_DOUBLE_EQ(as_number(*phase.at("max_seconds")),
                   as_number(*phase.at("min_seconds")));
}

// ---------------------------------------------------------------------------
// CachedCounter
// ---------------------------------------------------------------------------

TEST(ObsCachedCounter, BumpsResolveToCurrentRegistry) {
  obs::Registry reg;
  obs::ScopedRegistry scope(reg);
  obs::CachedCounter c("cached.basic");
  c += 3;
  c += 4;
  EXPECT_EQ(reg.counter_value("cached.basic"), 7u);
}

TEST(ObsCachedCounter, SurvivesRegistrySwap) {
  obs::CachedCounter c("cached.swap");
  obs::Registry first;
  {
    obs::ScopedRegistry scope(first);
    c += 2;
  }
  obs::Registry second;
  {
    obs::ScopedRegistry scope(second);
    // The handle cached `first`'s cell; the id mismatch must re-resolve.
    c += 5;
  }
  EXPECT_EQ(first.counter_value("cached.swap"), 2u);
  EXPECT_EQ(second.counter_value("cached.swap"), 5u);
  {
    // Swapping back to an earlier registry re-resolves again.
    obs::ScopedRegistry scope(first);
    c += 1;
  }
  EXPECT_EQ(first.counter_value("cached.swap"), 3u);
  EXPECT_EQ(second.counter_value("cached.swap"), 5u);
}

TEST(ObsCachedCounter, ConcurrentBumpsLandExactly) {
  obs::Registry reg;
  obs::ScopedRegistry scope(reg);
  obs::CachedCounter c("cached.contended");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < 1000; ++i) c += 1;
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter_value("cached.contended"), 4000u);
}

// ---------------------------------------------------------------------------
// Attached sections
// ---------------------------------------------------------------------------

TEST(ObsTrace, SectionsAppearAsTopLevelKeys) {
  obs::Registry reg;
  reg.set_section("comm", "{\"num_ranks\":3}");
  reg.set_section("comm", "{\"num_ranks\":4}");  // overwrite wins
  reg.set_section("extra", "[1,2]");
  const std::string json = obs::trace_to_json(reg);
  JsonParser parser(json);
  const auto doc = parser.parse();
  const JsonObject& root = as_object(*doc);
  ASSERT_TRUE(root.count("comm"));
  EXPECT_EQ(as_number(*as_object(*root.at("comm")).at("num_ranks")), 4.0);
  ASSERT_TRUE(root.count("extra"));
  EXPECT_EQ(as_array(*root.at("extra")).size(), 2u);
  reg.reset();
  EXPECT_TRUE(reg.sections().empty());
}

}  // namespace
}  // namespace hgr
