// Critical-path attribution tests: span lifecycle, per-rank derivation
// (critical rank / phase / wait fraction), the trace-v2 "critical_path"
// section, and resilience against stale span ids.
#include "obs/critical_path.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "mini_json.hpp"
#include "obs/trace.hpp"

namespace hgr::obs {
namespace {

using testjson::as_array;
using testjson::as_number;
using testjson::as_object;
using testjson::as_string;
using testjson::JsonArray;
using testjson::JsonObject;
using testjson::JsonParser;

// The span store is process-global; every test starts from an empty store
// with no epoch tag.
class CriticalPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_critical_path();
    set_current_epoch(-1);
  }
  void TearDown() override { SetUp(); }
};

TEST_F(CriticalPathTest, NoSpanMeansInvalidSummary) {
  const CriticalPathSummary cp = latest_critical_path();
  EXPECT_FALSE(cp.valid);
  EXPECT_EQ(cp.critical_rank, -1);
}

TEST_F(CriticalPathTest, DerivesCriticalRankPhaseAndWaitFraction) {
  set_current_epoch(7);
  const std::uint64_t span = begin_epoch_span();
  // Rank 0: 1.1s total. Rank 1: 2.5s total, 1.0s of it blocked, with
  // refine as its largest phase — rank 1 bounds the epoch.
  record_rank_phase(span, 0, "coarsen", 0.6, 0.0);
  record_rank_phase(span, 0, "refine", 0.5, 0.1);
  record_rank_phase(span, 1, "coarsen", 0.5, 0.2);
  record_rank_phase(span, 1, "refine", 2.0, 0.8);
  end_epoch_span(span);
  const CriticalPathSummary cp = latest_critical_path();
  ASSERT_TRUE(cp.valid);
  EXPECT_EQ(cp.span_id, span);
  EXPECT_EQ(cp.epoch, 7);
  EXPECT_EQ(cp.critical_rank, 1);
  EXPECT_EQ(cp.critical_phase, "refine");
  EXPECT_DOUBLE_EQ(cp.critical_seconds, 2.5);
  EXPECT_DOUBLE_EQ(cp.wait_frac, 1.0 / 2.5);
}

TEST_F(CriticalPathTest, SpanWithNoSamplesEndsInvalid) {
  const std::uint64_t span = begin_epoch_span();
  end_epoch_span(span);
  // The span ended but carries no attribution; the summary must not claim
  // a critical rank it cannot know.
  const CriticalPathSummary cp = latest_critical_path();
  EXPECT_FALSE(cp.valid);
  EXPECT_EQ(cp.span_id, span);
}

TEST_F(CriticalPathTest, UnknownSpanIdsAreIgnored) {
  const std::uint64_t span = begin_epoch_span();
  record_rank_phase(span, 0, "coarsen", 1.0, 0.0);
  end_epoch_span(span);
  const CriticalPathSummary before = latest_critical_path();
  record_rank_phase(span + 999, 2, "refine", 9.0, 9.0);
  end_epoch_span(span + 999);
  const CriticalPathSummary after = latest_critical_path();
  EXPECT_EQ(after.span_id, before.span_id);
  EXPECT_EQ(after.critical_rank, before.critical_rank);
}

TEST_F(CriticalPathTest, NegativeWaitIsClampedToZero) {
  // Wait deltas come from subtracting comm-stat snapshots; clock noise must
  // never produce a negative blocked fraction.
  const std::uint64_t span = begin_epoch_span();
  record_rank_phase(span, 0, "refine", 1.0, -0.5);
  end_epoch_span(span);
  const CriticalPathSummary cp = latest_critical_path();
  ASSERT_TRUE(cp.valid);
  EXPECT_DOUBLE_EQ(cp.wait_frac, 0.0);
}

TEST_F(CriticalPathTest, JsonSectionListsEndedSpansOnly) {
  set_current_epoch(3);
  const std::uint64_t done = begin_epoch_span();
  record_rank_phase(done, 0, "coarsen", 0.25, 0.05);
  record_rank_phase(done, 1, "coarsen", 0.75, 0.25);
  end_epoch_span(done);
  const std::uint64_t open = begin_epoch_span();
  record_rank_phase(open, 0, "refine", 9.0, 0.0);  // never ended

  const std::string json = critical_path_to_json();
  JsonParser parser(json);
  const auto doc = parser.parse();
  const JsonObject& root = as_object(*doc);
  const JsonArray& spans = as_array(*root.at("spans"));
  ASSERT_EQ(spans.size(), 1u);
  const JsonObject& span = as_object(*spans[0]);
  EXPECT_EQ(as_number(*span.at("epoch")), 3.0);
  EXPECT_EQ(as_number(*span.at("critical_rank")), 1.0);
  EXPECT_EQ(as_string(*span.at("critical_phase")), "coarsen");
  EXPECT_NEAR(as_number(*span.at("wait_frac")), 0.25 / 0.75, 1e-5);
  const JsonArray& ranks = as_array(*span.at("ranks"));
  ASSERT_EQ(ranks.size(), 2u);
  const JsonObject& rank0 = as_object(*ranks[0]);
  EXPECT_EQ(as_number(*rank0.at("rank")), 0.0);
  const JsonArray& phases = as_array(*rank0.at("phases"));
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(as_string(*as_object(*phases[0]).at("name")), "coarsen");
  EXPECT_DOUBLE_EQ(as_number(*as_object(*phases[0]).at("seconds")), 0.25);
}

TEST_F(CriticalPathTest, EndedSpanPublishesRegistrySection) {
  Registry reg;
  ScopedRegistry scope(reg);
  set_current_epoch(11);
  const std::uint64_t span = begin_epoch_span();
  record_rank_phase(span, 2, "initial", 0.5, 0.1);
  end_epoch_span(span);
  const std::string trace = trace_to_json(reg);
  EXPECT_NE(trace.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(trace.find("\"critical_rank\":2"), std::string::npos);
  EXPECT_NE(trace.find("\"epoch\":11"), std::string::npos);
}

TEST_F(CriticalPathTest, CurrentEpochTagsSpansAtBeginTime) {
  set_current_epoch(5);
  const std::uint64_t span = begin_epoch_span();
  set_current_epoch(6);  // later changes must not retag the open span
  record_rank_phase(span, 0, "refine", 1.0, 0.0);
  end_epoch_span(span);
  EXPECT_EQ(latest_critical_path().epoch, 5);
  EXPECT_EQ(current_epoch(), 6);
}

TEST_F(CriticalPathTest, ResetDropsSpans) {
  const std::uint64_t span = begin_epoch_span();
  record_rank_phase(span, 0, "refine", 1.0, 0.0);
  end_epoch_span(span);
  ASSERT_TRUE(latest_critical_path().valid);
  reset_critical_path();
  EXPECT_FALSE(latest_critical_path().valid);
  EXPECT_NE(critical_path_to_json().find("\"spans\":[]"), std::string::npos);
}

}  // namespace
}  // namespace hgr::obs
