// Minimal JSON parser shared by the observability tests, enough to
// round-trip the hgr-trace-v2 / hgr-bench-v1 / Chrome trace schemas. A
// parse failure fails the test (via EXPECT_*), so JSON emitters are
// validated as producing real JSON, not just by substring.
#pragma once

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace hgr::testjson {

struct JsonValue;
using JsonObject = std::map<std::string, std::shared_ptr<JsonValue>>;
using JsonArray = std::vector<std::shared_ptr<JsonValue>>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  std::shared_ptr<JsonValue> parse() {
    auto value = parse_value();
    skip_ws();
    EXPECT_EQ(pos_, s_.size()) << "trailing garbage after JSON document";
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  char peek() {
    EXPECT_LT(pos_, s_.size()) << "unexpected end of JSON";
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  void expect(char c) {
    EXPECT_EQ(peek(), c) << "at offset " << pos_;
    ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        EXPECT_LT(pos_, s_.size());
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'u':
            pos_ += 4;  // tests only use ASCII names; skip the code point
            out += '?';
            break;
          default:
            out += esc;
        }
      } else {
        out += c;
      }
    }
    expect('"');
    return out;
  }

  std::shared_ptr<JsonValue> parse_value() {
    skip_ws();
    auto value = std::make_shared<JsonValue>();
    const char c = peek();
    if (c == '{') {
      ++pos_;
      JsonObject obj;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
      } else {
        while (true) {
          skip_ws();
          std::string key = parse_string();
          skip_ws();
          expect(':');
          obj[key] = parse_value();
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          break;
        }
      }
      value->v = std::move(obj);
    } else if (c == '[') {
      ++pos_;
      JsonArray arr;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
      } else {
        while (true) {
          arr.push_back(parse_value());
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          break;
        }
      }
      value->v = std::move(arr);
    } else if (c == '"') {
      value->v = parse_string();
    } else if (c == 't' || c == 'f') {
      const bool is_true = c == 't';
      pos_ += is_true ? 4 : 5;
      EXPECT_LE(pos_, s_.size());
      value->v = is_true;
    } else if (c == 'n') {
      pos_ += 4;
      EXPECT_LE(pos_, s_.size());
      value->v = nullptr;
    } else {
      std::size_t end = pos_;
      while (end < s_.size() &&
             (std::isdigit(static_cast<unsigned char>(s_[end])) ||
              s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
              s_[end] == 'e' || s_[end] == 'E'))
        ++end;
      EXPECT_GT(end, pos_) << "expected a number at offset " << pos_;
      value->v = std::stod(s_.substr(pos_, end - pos_));
      pos_ = end;
    }
    return value;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline const JsonObject& as_object(const JsonValue& v) {
  return std::get<JsonObject>(v.v);
}
inline const JsonArray& as_array(const JsonValue& v) {
  return std::get<JsonArray>(v.v);
}
inline double as_number(const JsonValue& v) { return std::get<double>(v.v); }
inline const std::string& as_string(const JsonValue& v) {
  return std::get<std::string>(v.v);
}

}  // namespace hgr::testjson
