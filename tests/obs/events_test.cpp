#include "obs/events.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "mini_json.hpp"
#include "obs/trace.hpp"

namespace hgr {
namespace {

using testjson::JsonArray;
using testjson::JsonObject;
using testjson::JsonParser;
using testjson::as_array;
using testjson::as_number;
using testjson::as_object;
using testjson::as_string;

// Every test owns the global capture state: events are process-global (by
// design — rank threads emit into them), so serialize via a fixture that
// resets before and after.
class EventsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_events_enabled(false);
    obs::reset_events();
    obs::set_event_ring_capacity(4096);
  }
  void TearDown() override {
    obs::set_events_enabled(false);
    obs::reset_events();
    obs::set_event_ring_capacity(4096);
    obs::set_thread_rank(-1);
  }
};

TEST_F(EventsTest, DisabledEmitIsDropped) {
  obs::emit_instant("ghost");
  const obs::EventsSnapshot snap = obs::snapshot_events();
  EXPECT_TRUE(snap.events.empty());
  EXPECT_EQ(snap.dropped, 0u);
}

TEST_F(EventsTest, EmitAndSnapshotRoundTrip) {
  obs::set_events_enabled(true);
  obs::set_thread_rank(2);
  obs::emit_begin("phase-a");
  obs::emit_instant("tick", "comm", 128);
  obs::emit_end("phase-a");
  const obs::EventsSnapshot snap = obs::snapshot_events();
  ASSERT_EQ(snap.events.size(), 3u);
  EXPECT_EQ(snap.dropped, 0u);
  EXPECT_STREQ(snap.events[0].name, "phase-a");
  EXPECT_EQ(snap.events[0].type, obs::EventType::kBegin);
  EXPECT_EQ(snap.events[1].type, obs::EventType::kInstant);
  EXPECT_STREQ(snap.events[1].category, "comm");
  EXPECT_EQ(snap.events[1].arg, 128u);
  EXPECT_EQ(snap.events[2].type, obs::EventType::kEnd);
  for (const obs::Event& e : snap.events) EXPECT_EQ(e.rank, 2);
  // Timestamps are monotone within one thread's buffer.
  EXPECT_LE(snap.events[0].ts_ns, snap.events[1].ts_ns);
  EXPECT_LE(snap.events[1].ts_ns, snap.events[2].ts_ns);
}

TEST_F(EventsTest, RingWraparoundKeepsNewestAndCountsDropped) {
  obs::reset_events();
  obs::set_event_ring_capacity(8);
  obs::set_events_enabled(true);
  const char* name = obs::intern_event_name("wrap");
  for (std::uint64_t i = 0; i < 20; ++i)
    obs::emit_event(name, "phase", obs::EventType::kInstant, i);
  const obs::EventsSnapshot snap = obs::snapshot_events();
  ASSERT_EQ(snap.events.size(), 8u);
  EXPECT_EQ(snap.dropped, 12u);
  // The survivors are the 8 newest, in emission order.
  for (std::uint64_t i = 0; i < 8; ++i)
    EXPECT_EQ(snap.events[i].arg, 12 + i);
}

TEST_F(EventsTest, ConcurrentEmittersAllLand) {
  obs::set_events_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t] {
      obs::set_thread_rank(t);
      const char* name = obs::intern_event_name("concurrent");
      for (int i = 0; i < kPerThread; ++i)
        obs::emit_event(name, "phase", obs::EventType::kInstant,
                        static_cast<std::uint64_t>(i));
    });
  for (auto& t : threads) t.join();
  const obs::EventsSnapshot snap = obs::snapshot_events();
  EXPECT_EQ(snap.dropped, 0u);
  // Count per rank: every emit must have landed on its own thread's ring.
  std::vector<int> per_rank(kThreads, 0);
  for (const obs::Event& e : snap.events) {
    if (e.rank >= 0 && e.rank < kThreads) ++per_rank[e.rank];
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(per_rank[t], kPerThread);
}

TEST_F(EventsTest, SnapshotWhileEmitting) {
  // Exercise the reader/writer race the stamp protocol guards: a writer
  // wrapping a tiny ring while the main thread snapshots. TSan runs of
  // obs_test cover the memory-order claims.
  obs::reset_events();
  obs::set_event_ring_capacity(8);
  obs::set_events_enabled(true);
  const char* name = obs::intern_event_name("race");
  std::thread writer([name] {
    for (int i = 0; i < 20000; ++i)
      obs::emit_event(name, "phase", obs::EventType::kInstant,
                      static_cast<std::uint64_t>(i));
  });
  for (int i = 0; i < 50; ++i) {
    const obs::EventsSnapshot snap = obs::snapshot_events();
    // Whatever survived must be well-formed: interned name, sane arg.
    for (const obs::Event& e : snap.events) {
      EXPECT_EQ(e.name, name);  // pointer identity: interned once
      EXPECT_LT(e.arg, 20000u);
    }
  }
  writer.join();
}

TEST_F(EventsTest, ChromeTraceJsonParsesBack) {
  obs::set_events_enabled(true);
  obs::set_thread_rank(0);
  obs::emit_begin("partition");
  obs::emit_instant("send", "comm", 512);
  obs::emit_end("partition");
  const std::string json = obs::chrome_trace_json();
  JsonParser parser(json);
  const auto doc = parser.parse();
  const JsonObject& root = as_object(*doc);
  const JsonArray& events = as_array(*root.at("traceEvents"));

  std::size_t begins = 0, ends = 0, instants = 0, metadata = 0;
  bool saw_rank_track_name = false;
  double send_bytes = -1.0;
  for (const auto& ev : events) {
    const JsonObject& e = as_object(*ev);
    const std::string& ph = as_string(*e.at("ph"));
    if (ph == "B") ++begins;
    if (ph == "E") ++ends;
    if (ph == "i") ++instants;
    if (ph == "M") {
      ++metadata;
      if (as_string(*e.at("name")) == "thread_name") {
        const JsonObject& args = as_object(*e.at("args"));
        if (as_string(*args.at("name")) == "rank 0")
          saw_rank_track_name = true;
      }
    }
    if (ph == "i" && as_string(*e.at("name")) == "send") {
      send_bytes = as_number(*as_object(*e.at("args")).at("bytes"));
      EXPECT_EQ(as_string(*e.at("cat")), "comm");
    }
  }
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(ends, 1u);
  EXPECT_EQ(instants, 1u);
  EXPECT_GE(metadata, 2u);  // thread_name + thread_sort_index per track
  EXPECT_TRUE(saw_rank_track_name);
  EXPECT_EQ(send_bytes, 512.0);
}

TEST_F(EventsTest, WriteChromeTraceFile) {
  obs::set_events_enabled(true);
  obs::emit_instant("tick");
  const std::string path = ::testing::TempDir() + "/events_test_chrome.json";
  ASSERT_TRUE(obs::write_chrome_trace(path));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  JsonParser parser(content);
  const auto doc = parser.parse();
  EXPECT_FALSE(as_array(*as_object(*doc).at("traceEvents")).empty());
  EXPECT_FALSE(obs::write_chrome_trace("/nonexistent-dir/x/y.json"));
}

TEST_F(EventsTest, TraceScopeEmitsSpanWhenEnabled) {
  obs::set_events_enabled(true);
  obs::Registry reg;
  {
    obs::TraceScope scope("scoped-phase", &reg);
  }
  const obs::EventsSnapshot snap = obs::snapshot_events();
  std::size_t begins = 0, ends = 0;
  for (const obs::Event& e : snap.events) {
    if (std::string_view(e.name) == "scoped-phase") {
      if (e.type == obs::EventType::kBegin) ++begins;
      if (e.type == obs::EventType::kEnd) ++ends;
    }
  }
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(ends, 1u);
}

}  // namespace
}  // namespace hgr
