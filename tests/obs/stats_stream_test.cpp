// Live stats stream tests: sampling at top-level phase boundaries, ring
// bounding, hgr-stats-v1 line format, and the async dump trigger.
#include "obs/stats_stream.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mini_json.hpp"
#include "obs/trace.hpp"

namespace hgr::obs {
namespace {

using testjson::as_number;
using testjson::as_object;
using testjson::as_string;
using testjson::JsonObject;
using testjson::JsonParser;

// The stream is process-global state; every test starts from a clean,
// disabled stream and leaves it that way.
class StatsStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_stats_stream_enabled(false);
    set_stats_stream_path("");
    set_stats_ring_capacity(256);
    reset_stats_stream();
  }
  void TearDown() override { SetUp(); }
};

TEST_F(StatsStreamTest, SamplesOnlyTopLevelPhaseCloses) {
  Registry reg;
  ScopedRegistry scope(reg);
  set_stats_stream_enabled(true);
  {
    TraceScope outer("repartition");
    reg.counter("refine.moves") += 11;
    reg.gauge("epoch.current").set(4);
    TraceScope inner("refine");  // nested close must NOT sample
  }
  const std::vector<StatsSnapshot> samples = stats_stream_snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].phase, "repartition");
  EXPECT_GT(samples[0].seconds, 0.0);
  ASSERT_EQ(samples[0].counters.count("refine.moves"), 1u);
  EXPECT_EQ(samples[0].counters.at("refine.moves"), 11u);
  ASSERT_EQ(samples[0].gauges.count("epoch.current"), 1u);
  EXPECT_EQ(samples[0].gauges.at("epoch.current"), 4);
}

TEST_F(StatsStreamTest, DisabledStreamNeverSamples) {
  Registry reg;
  ScopedRegistry scope(reg);
  { TraceScope outer("partition"); }
  EXPECT_TRUE(stats_stream_snapshot().empty());
}

TEST_F(StatsStreamTest, SequenceNumbersAndClockAreMonotone) {
  Registry reg;
  ScopedRegistry scope(reg);
  set_stats_stream_enabled(true);
  for (int i = 0; i < 3; ++i) TraceScope phase("epoch");
  const std::vector<StatsSnapshot> samples = stats_stream_snapshot();
  ASSERT_EQ(samples.size(), 3u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].seq, samples[i - 1].seq + 1);
    EXPECT_GE(samples[i].ts_ns, samples[i - 1].ts_ns);
  }
}

TEST_F(StatsStreamTest, RingDropsOldestBeyondCapacity) {
  Registry reg;
  ScopedRegistry scope(reg);
  set_stats_ring_capacity(2);
  set_stats_stream_enabled(true);
  { TraceScope phase("first"); }
  { TraceScope phase("second"); }
  { TraceScope phase("third"); }
  const std::vector<StatsSnapshot> samples = stats_stream_snapshot();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].phase, "second");
  EXPECT_EQ(samples[1].phase, "third");
  EXPECT_EQ(stats_stream_dropped(), 1u);
}

TEST_F(StatsStreamTest, SnapshotJsonLineParsesWithSchema) {
  Registry reg;
  ScopedRegistry scope(reg);
  set_stats_stream_enabled(true);
  {
    TraceScope outer("partition");
    reg.counter("coarsen.levels") += 3;
    reg.gauge("epoch.current").set(-2);  // gauges are signed
  }
  const std::vector<StatsSnapshot> samples = stats_stream_snapshot();
  ASSERT_EQ(samples.size(), 1u);
  const std::string line = samples[0].to_json();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  JsonParser parser(line);
  const auto doc = parser.parse();
  const JsonObject& o = as_object(*doc);
  EXPECT_EQ(as_string(*o.at("schema")), "hgr-stats-v1");
  EXPECT_EQ(as_string(*o.at("phase")), "partition");
  EXPECT_GE(as_number(*o.at("seq")), 0.0);
  EXPECT_GE(as_number(*o.at("ts_ns")), 0.0);
  EXPECT_GT(as_number(*o.at("seconds")), 0.0);
  const JsonObject& counters = as_object(*o.at("counters"));
  EXPECT_EQ(as_number(*counters.at("coarsen.levels")), 3.0);
  const JsonObject& gauges = as_object(*o.at("gauges"));
  EXPECT_EQ(as_number(*gauges.at("epoch.current")), -2.0);
}

TEST_F(StatsStreamTest, WriteStreamEmitsOneLinePerSample) {
  Registry reg;
  ScopedRegistry scope(reg);
  set_stats_stream_enabled(true);
  { TraceScope phase("alpha"); }
  { TraceScope phase("beta"); }
  const std::string path = ::testing::TempDir() + "/stats_stream_test.jsonl";
  ASSERT_TRUE(write_stats_stream(path));
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"phase\":\"alpha\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"phase\":\"beta\""), std::string::npos);
  EXPECT_FALSE(write_stats_stream("/nonexistent-dir/x/stats.jsonl"));
}

TEST_F(StatsStreamTest, RequestedDumpFlushesAtNextPhaseClose) {
  Registry reg;
  ScopedRegistry scope(reg);
  const std::string path = ::testing::TempDir() + "/stats_dump_test.jsonl";
  std::remove(path.c_str());
  set_stats_stream_enabled(true);
  set_stats_stream_path(path);
  { TraceScope phase("warmup"); }
  EXPECT_FALSE(stats_dump_pending());
  request_stats_dump();  // what the SIGUSR1 handler does: one atomic store
  EXPECT_TRUE(stats_dump_pending());
  { TraceScope phase("work"); }
  EXPECT_FALSE(stats_dump_pending());
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "dump was not flushed to " << path;
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("hgr-stats-v1"), std::string::npos);
  EXPECT_NE(content.str().find("\"phase\":\"work\""), std::string::npos);
}

TEST_F(StatsStreamTest, IdleDumpServicedByExplicitFlush) {
  // The daemon bug this PR fixes: a dump requested while no phase is
  // running (idle hgr_serve) used to sit pending until the next phase
  // close — which might never come. flush_pending_stats_dump() services
  // it on the spot; hgr_serve calls it from the worker idle loop.
  Registry reg;
  ScopedRegistry scope(reg);
  const std::string path = ::testing::TempDir() + "/stats_idle_flush.jsonl";
  std::remove(path.c_str());
  set_stats_stream_enabled(true);
  set_stats_stream_path(path);
  { TraceScope phase("work"); }          // one sample in the ring
  EXPECT_FALSE(flush_pending_stats_dump());  // nothing pending: no-op
  request_stats_dump();
  ASSERT_TRUE(stats_dump_pending());
  EXPECT_TRUE(flush_pending_stats_dump());  // no phase close needed
  EXPECT_FALSE(stats_dump_pending());
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "idle dump was not flushed to " << path;
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("hgr-stats-v1"), std::string::npos);
  EXPECT_NE(content.str().find("\"phase\":\"work\""), std::string::npos);
  // Serviced means serviced: a second flush writes nothing.
  std::remove(path.c_str());
  EXPECT_FALSE(flush_pending_stats_dump());
  EXPECT_FALSE(std::ifstream(path).good());
}

TEST_F(StatsStreamTest, FlushWithoutDumpPathLeavesRequestPending) {
  set_stats_stream_enabled(true);  // no dump path configured
  request_stats_dump();
  EXPECT_FALSE(flush_pending_stats_dump());
  // The request survives so a later set_stats_stream_path + flush lands.
  EXPECT_TRUE(stats_dump_pending());
}

TEST_F(StatsStreamTest, DisablingStreamFlushesPendingDump) {
  // The exit path: a dump requested just before shutdown must not be
  // dropped — set_stats_stream_enabled(false) flushes it on the way out.
  Registry reg;
  ScopedRegistry scope(reg);
  const std::string path = ::testing::TempDir() + "/stats_close_flush.jsonl";
  std::remove(path.c_str());
  set_stats_stream_enabled(true);
  set_stats_stream_path(path);
  { TraceScope phase("final"); }
  request_stats_dump();
  set_stats_stream_enabled(false);
  EXPECT_FALSE(stats_dump_pending());
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "close-time dump was not flushed to " << path;
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"phase\":\"final\""), std::string::npos);
}

TEST_F(StatsStreamTest, ResetDropsSamplesButKeepsConfiguration) {
  Registry reg;
  ScopedRegistry scope(reg);
  set_stats_stream_enabled(true);
  { TraceScope phase("one"); }
  ASSERT_EQ(stats_stream_snapshot().size(), 1u);
  reset_stats_stream();
  EXPECT_TRUE(stats_stream_snapshot().empty());
  EXPECT_EQ(stats_stream_dropped(), 0u);
  EXPECT_TRUE(stats_stream_enabled());
  { TraceScope phase("two"); }
  EXPECT_EQ(stats_stream_snapshot().size(), 1u);
}

}  // namespace
}  // namespace hgr::obs
