// Histogram / Gauge metric tests: bucket-layout edge cases over the full
// signed 64-bit range, quantile and merge semantics, JSON shape, and a
// concurrent record/merge/snapshot property test against a serial
// reference (run under TSan in CI — the suite name must keep matching the
// thread-sanitize regex).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <random>
#include <thread>
#include <vector>

#include "mini_json.hpp"
#include "obs/trace.hpp"

namespace hgr::obs {
namespace {

using testjson::as_number;
using testjson::as_object;
using testjson::JsonObject;
using testjson::JsonParser;

constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

TEST(Histogram, BucketMathCoversSignedEdges) {
  EXPECT_EQ(histogram_bucket(0), 64);
  EXPECT_EQ(histogram_bucket(1), 65);
  EXPECT_EQ(histogram_bucket(2), 66);
  EXPECT_EQ(histogram_bucket(3), 66);
  EXPECT_EQ(histogram_bucket(4), 67);
  EXPECT_EQ(histogram_bucket(-1), 63);
  EXPECT_EQ(histogram_bucket(-2), 62);
  EXPECT_EQ(histogram_bucket(-3), 62);
  EXPECT_EQ(histogram_bucket(kMax), 127);
  EXPECT_EQ(histogram_bucket(kMin), 0);
  EXPECT_EQ(histogram_bucket(kMin + 1), 1);
  // Every probe value lies inside its own bucket's [low, high] range.
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1}, std::int64_t{17},
        std::int64_t{-17}, std::int64_t{1} << 40, -(std::int64_t{1} << 40),
        kMax, kMax - 1, kMin, kMin + 1, kMin / 2}) {
    const int b = histogram_bucket(v);
    ASSERT_GE(b, 0) << v;
    ASSERT_LT(b, kHistogramBuckets) << v;
    EXPECT_LE(histogram_bucket_low(b), v) << "bucket " << b;
    EXPECT_GE(histogram_bucket_high(b), v) << "bucket " << b;
  }
}

TEST(Histogram, BucketRangesPartitionTheInt64Line) {
  EXPECT_EQ(histogram_bucket_low(0), kMin);
  EXPECT_EQ(histogram_bucket_high(kHistogramBuckets - 1), kMax);
  for (int b = 0; b < kHistogramBuckets; ++b) {
    EXPECT_LE(histogram_bucket_low(b), histogram_bucket_high(b)) << b;
    if (b + 1 < kHistogramBuckets) {
      EXPECT_EQ(histogram_bucket_high(b) + 1, histogram_bucket_low(b + 1))
          << b;
    }
  }
}

TEST(Histogram, RecordTracksCountSumAndExtremes) {
  Histogram h;
  for (const std::int64_t v : {std::int64_t{5}, std::int64_t{-3},
                               std::int64_t{100}, std::int64_t{0}})
    h.record(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 102);
  EXPECT_EQ(s.min, -3);
  EXPECT_EQ(s.max, 100);
  EXPECT_DOUBLE_EQ(s.mean(), 102.0 / 4.0);
}

TEST(Histogram, EmptySnapshotIsAllZeros) {
  Histogram h;
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 0);
  EXPECT_EQ(s.quantile(0.5), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, QuantilesAreMonotoneAndClampedToObservedRange) {
  Histogram h;
  for (std::int64_t v = 1; v <= 1000; ++v) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  const std::int64_t p50 = s.p50();
  const std::int64_t p95 = s.p95();
  const std::int64_t p99 = s.p99();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, s.min);
  EXPECT_LE(p99, s.max);
  // The log-2 layout guarantees at most one power-of-two of estimate error:
  // the true median 500 lives in bucket [512,1023], so the clamped midpoint
  // must land within that factor-of-two band.
  EXPECT_GE(p50, 256);
  EXPECT_LE(p50, 1000);
}

TEST(Histogram, QuantileOfConstantSeriesIsExact) {
  Histogram h;
  for (int i = 0; i < 5; ++i) h.record(7);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.p50(), 7);
  EXPECT_EQ(s.p95(), 7);
  EXPECT_EQ(s.p99(), 7);
}

TEST(Histogram, PathologicalExtremesSurviveRecordAndQuantile) {
  Histogram h;
  h.record(kMin);
  h.record(kMax);
  h.record(0);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.min, kMin);
  EXPECT_EQ(s.max, kMax);
  EXPECT_EQ(s.quantile(0.0), kMin);  // rank 1 lands in the kMin bucket
  // The top value's estimate is the top bucket's midpoint, clamped into
  // the observed range.
  EXPECT_GE(s.quantile(1.0), histogram_bucket_low(kHistogramBuckets - 1));
  EXPECT_LE(s.quantile(1.0), kMax);
}

TEST(Histogram, MergeMatchesRecordingIntoOne) {
  Histogram a, b, combined;
  std::mt19937_64 rng(42);
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v =
        static_cast<std::int64_t>(rng()) >> (i % 32);  // mixed magnitudes
    (i % 2 == 0 ? a : b).record(v);
    combined.record(v);
  }
  HistogramSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  const HistogramSnapshot ref = combined.snapshot();
  EXPECT_EQ(merged.count, ref.count);
  EXPECT_EQ(merged.sum, ref.sum);
  EXPECT_EQ(merged.min, ref.min);
  EXPECT_EQ(merged.max, ref.max);
  EXPECT_EQ(merged.buckets, ref.buckets);
  EXPECT_EQ(merged.p99(), ref.p99());
}

TEST(Histogram, MergeWithEmptyKeepsExtremes) {
  Histogram a;
  a.record(-5);
  a.record(9);
  HistogramSnapshot s = a.snapshot();
  s.merge(HistogramSnapshot{});
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.min, -5);
  EXPECT_EQ(s.max, 9);
  HistogramSnapshot empty;
  empty.merge(a.snapshot());
  EXPECT_EQ(empty.min, -5);
  EXPECT_EQ(empty.max, 9);
}

TEST(Histogram, SnapshotJsonIsParseableWithAllKeys) {
  Histogram h;
  h.record(10);
  h.record(-2);
  const std::string json = h.snapshot().to_json();
  JsonParser parser(json);
  const auto doc = parser.parse();
  const JsonObject& o = as_object(*doc);
  EXPECT_EQ(as_number(*o.at("count")), 2.0);
  EXPECT_EQ(as_number(*o.at("sum")), 8.0);
  EXPECT_EQ(as_number(*o.at("min")), -2.0);
  EXPECT_EQ(as_number(*o.at("max")), 10.0);
  EXPECT_DOUBLE_EQ(as_number(*o.at("mean")), 4.0);
  EXPECT_TRUE(o.count("p50") && o.count("p95") && o.count("p99"));
}

TEST(Histogram, ConcurrentRecordMergeSnapshotMatchesSerialReference) {
  // Property test for the lock-free path: several writer threads hammer one
  // shared histogram (and mirror every value into a private one) while a
  // reader thread concurrently snapshots and merges. After the join, the
  // shared histogram, the merge of the private ones, and a serial replay
  // must agree field for field.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  Histogram shared;
  std::vector<Histogram> privates(kThreads);
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      std::mt19937_64 rng(1000 + static_cast<unsigned>(t));
      for (int i = 0; i < kPerThread; ++i) {
        // Signed values across many buckets, including both tails.
        const std::int64_t v = static_cast<std::int64_t>(rng());
        shared.record(v);
        privates[static_cast<std::size_t>(t)].record(v);
      }
    });
  }
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const HistogramSnapshot s = shared.snapshot();
      // Raced snapshots make no cross-field promise, but can never exceed
      // the total work and quantiles must stay in the bucket range.
      EXPECT_LE(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
      (void)s.p99();
    }
  });
  for (std::thread& w : writers) w.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();

  Histogram serial;
  for (int t = 0; t < kThreads; ++t) {
    std::mt19937_64 rng(1000 + static_cast<unsigned>(t));
    for (int i = 0; i < kPerThread; ++i)
      serial.record(static_cast<std::int64_t>(rng()));
  }
  const HistogramSnapshot ref = serial.snapshot();
  const HistogramSnapshot got = shared.snapshot();
  EXPECT_EQ(got.count, ref.count);
  EXPECT_EQ(got.sum, ref.sum);
  EXPECT_EQ(got.min, ref.min);
  EXPECT_EQ(got.max, ref.max);
  EXPECT_EQ(got.buckets, ref.buckets);
  HistogramSnapshot merged;
  for (const Histogram& p : privates) merged.merge(p.snapshot());
  EXPECT_EQ(merged.count, ref.count);
  EXPECT_EQ(merged.sum, ref.sum);
  EXPECT_EQ(merged.buckets, ref.buckets);
}

TEST(Histogram, LocalBatchRecordThenMergeMatchesDirectRecording) {
  // The hot-seam batching pattern (FM move gains): plain records into a
  // local HistogramSnapshot, one Histogram::merge per pass. The result
  // must be indistinguishable from recording every value directly.
  Histogram direct, batched;
  HistogramSnapshot batch;
  for (std::int64_t v = -50; v <= 50; ++v) {
    direct.record(v * v * (v % 2 == 0 ? 1 : -1));
    batch.record(v * v * (v % 2 == 0 ? 1 : -1));
  }
  batched.merge(batch);
  batched.merge(HistogramSnapshot{});  // empty batch is a no-op
  const HistogramSnapshot a = direct.snapshot();
  const HistogramSnapshot b = batched.snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.buckets, b.buckets);
}

TEST(Histogram, RegistryLookupIsStableAndResetClears) {
  Registry reg;
  Histogram& h = reg.histogram("comm.allgather.call_ns");
  EXPECT_EQ(&h, &reg.histogram("comm.allgather.call_ns"));
  h.record(3);
  ASSERT_EQ(reg.histograms().count("comm.allgather.call_ns"), 1u);
  EXPECT_EQ(reg.histograms().at("comm.allgather.call_ns").count, 1u);
  reg.reset();
  EXPECT_TRUE(reg.histograms().empty());
}

TEST(Gauge, SetAddAndValue) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.add(-50);
  EXPECT_EQ(g.value(), -8);
  g.set(7);  // last-value-wins overwrites
  EXPECT_EQ(g.value(), 7);
}

TEST(Gauge, RegistrySnapshotSeesLatestValues) {
  Registry reg;
  reg.gauge("epoch.current").set(3);
  reg.gauge("epoch.current").set(5);
  reg.gauge("queue.depth").add(2);
  const auto gauges = reg.gauges();
  ASSERT_EQ(gauges.size(), 2u);
  EXPECT_EQ(gauges.at("epoch.current"), 5);
  EXPECT_EQ(gauges.at("queue.depth"), 2);
}

TEST(CachedHistogramSwap, HandleFollowsScopedRegistry) {
  // Same registry-swap discipline as CachedCounter: the cached entry must
  // re-resolve when a ScopedRegistry injects a different registry, and must
  // never write into the departed registry's storage.
  CachedHistogram cached("fm.move_gain");
  Registry outer;
  ScopedRegistry outer_scope(outer);
  cached.record(1);
  {
    Registry inner;
    ScopedRegistry inner_scope(inner);
    cached.record(2);
    cached.record(3);
    EXPECT_EQ(inner.histograms().at("fm.move_gain").count, 2u);
  }
  cached.record(4);
  const HistogramSnapshot s = outer.histograms().at("fm.move_gain");
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 4);
}

}  // namespace
}  // namespace hgr::obs
