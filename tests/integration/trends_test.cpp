// Trend assertions: the qualitative observations of the paper's Section 5
// must hold on the synthetic analogs. These are statistical, so they run a
// few trials and assert on means.
#include <gtest/gtest.h>

#include <memory>

#include "core/epoch_driver.hpp"
#include "workload/datasets.hpp"
#include "workload/perturb.hpp"

namespace hgr {
namespace {

struct MeanCosts {
  double comm = 0.0;
  double mig = 0.0;
  double total(double alpha) const { return comm + mig / alpha; }
};

MeanCosts mean_costs(RepartAlgorithm alg, Weight alpha, Index k,
                     int trials, bool weight_perturb = false) {
  MeanCosts m;
  for (int t = 0; t < trials; ++t) {
    // Scale must be large enough that |V| dwarfs the cut, as in the paper's
    // meshes — that regime is where migration dominates scratch methods.
    const Graph base =
        make_dataset("auto-like", 0.15, 100 + static_cast<std::uint64_t>(t));
    std::unique_ptr<EpochScenario> scenario;
    if (weight_perturb) {
      scenario = std::make_unique<WeightPerturbScenario>(
          base, WeightPerturbOptions{},
          200 + static_cast<std::uint64_t>(t));
    } else {
      scenario = std::make_unique<StructuralPerturbScenario>(
          base, StructuralPerturbOptions{},
          200 + static_cast<std::uint64_t>(t));
    }
    RepartitionerConfig cfg;
    cfg.alpha = alpha;
    cfg.partition.num_parts = k;
    cfg.partition.epsilon = 0.1;
    cfg.partition.seed = 300 + static_cast<std::uint64_t>(t);
    const EpochRunSummary s = run_epochs(*scenario, alg, cfg, 3);
    m.comm += s.mean_comm_volume() / trials;
    m.mig += s.mean_migration_volume() / trials;
  }
  return m;
}

// Paper: "The total cost using Zoltan-scratch and ParMETIS-scratch is
// comparable to Zoltan-repart only when alpha is greater than 100" — at
// alpha=1 the repartitioners win decisively.
TEST(Trends, RepartBeatsScratchAtAlphaOne) {
  const MeanCosts repart =
      mean_costs(RepartAlgorithm::kHypergraphRepart, 1, 4, 2);
  const MeanCosts scratch =
      mean_costs(RepartAlgorithm::kHypergraphScratch, 1, 4, 2);
  EXPECT_LT(repart.total(1.0), scratch.total(1.0));
}

// For the graph pair, the robust small-scale separation is migration
// volume on the AMR (weight) workload: adaptive repartitioning migrates
// only to rebalance, scratch re-lays-out everything. (The paper's
// *total*-cost dominance additionally needs its 450k-vertex regime, where
// |V| dwarfs the cut — the figure benches at larger scales show it.)
TEST(Trends, GraphRepartMigratesLessThanGraphScratchOnAmr) {
  const MeanCosts repart = mean_costs(RepartAlgorithm::kGraphRepart, 1, 4, 2,
                                      /*weight_perturb=*/true);
  const MeanCosts scratch = mean_costs(RepartAlgorithm::kGraphScratch, 1, 4,
                                       2, /*weight_perturb=*/true);
  EXPECT_LT(repart.mig, scratch.mig);
}

// Paper: "As alpha grows, migration cost decreases relative to
// communication cost... the partitioners find smaller communication cost
// with increasing alpha."
TEST(Trends, LargerAlphaShiftsRepartTowardComm) {
  const MeanCosts a1 = mean_costs(RepartAlgorithm::kHypergraphRepart, 1, 4, 2);
  const MeanCosts a1000 =
      mean_costs(RepartAlgorithm::kHypergraphRepart, 1000, 4, 2);
  // At alpha=1000 the chosen partitions communicate no more (usually less)
  // than the migration-dominated alpha=1 ones, and migrate more.
  EXPECT_LE(a1000.comm, a1.comm * 1.15 + 5.0);
  EXPECT_GE(a1000.mig, a1.mig);
}

// Scratch methods' migration dwarfs repart's at small alpha (the stacked
// dark bars of Figures 2-6).
TEST(Trends, ScratchMigrationDominatesRepartMigration) {
  const MeanCosts repart =
      mean_costs(RepartAlgorithm::kHypergraphRepart, 1, 4, 2);
  const MeanCosts scratch =
      mean_costs(RepartAlgorithm::kGraphScratch, 1, 4, 2);
  // The structural workload forces some migration on everyone (deleted
  // parts must be rebalanced); scratch still migrates well beyond that.
  EXPECT_GT(scratch.mig, 1.25 * repart.mig);
}

}  // namespace
}  // namespace hgr
