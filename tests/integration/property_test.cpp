// Property-based sweeps over randomized instances: invariants that must
// hold for every (seed, k, alpha) combination.
#include <gtest/gtest.h>

#include "core/repartition_model.hpp"
#include "core/repartitioner.hpp"
#include "hypergraph/convert.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "metrics/migration.hpp"
#include "partition/partitioner.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::random_hypergraph;
using testing::random_partition;

class ModelIdentitySweep
    : public ::testing::TestWithParam<std::tuple<Index, Weight, std::uint64_t>> {
};

// For every instance: solving the augmented model yields a partition whose
// measured alpha*comm+mig equals the augmented cut, is never worse than
// staying put, and respects the fixed partition vertices.
TEST_P(ModelIdentitySweep, SolvedModelBeatsOrMatchesStayingPut) {
  const auto [k, alpha, seed] = GetParam();
  const Hypergraph h = random_hypergraph(90, 180, 5, 3, seed);
  const Partition old_p = random_partition(90, k, seed + 1000);

  RepartitionerConfig cfg;
  cfg.alpha = alpha;
  cfg.partition.num_parts = k;
  cfg.partition.epsilon = 0.25;  // random old partitions can be imbalanced
  cfg.partition.seed = seed;
  const RepartitionResult r = hypergraph_repartition(h, old_p, cfg);

  // The partitioner start includes "stay put" as a feasible candidate only
  // implicitly; allow a little slack for balance repair of the random old
  // partition, which can force migrations.
  const Weight stay_cost = alpha * connectivity_cut(h, old_p);
  EXPECT_LE(r.cost.total(), stay_cost + static_cast<Weight>(
                                             h.total_vertex_weight()));
  // Identity: plan volume == measured migration volume.
  EXPECT_EQ(r.plan.total_volume, r.cost.migration_volume);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelIdentitySweep,
    ::testing::Combine(::testing::Values<Index>(2, 4, 8),
                       ::testing::Values<Weight>(1, 100),
                       ::testing::Values<std::uint64_t>(1, 2)));

// Migration volume of any algorithm is bounded by the total data size, and
// comm volume by the total net cost mass.
TEST(Properties, CostBoundsHold) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Hypergraph h = random_hypergraph(70, 140, 5, 4, seed);
    const Partition old_p = random_partition(70, 4, seed + 5);
    RepartitionerConfig cfg;
    cfg.alpha = 10;
    cfg.partition.num_parts = 4;
    cfg.partition.epsilon = 0.3;
    const RepartitionResult r = hypergraph_repartition(h, old_p, cfg);
    Weight total_size = 0;
    for (const VertexId v : vertex_range(70)) total_size += h.vertex_size(v);
    EXPECT_LE(r.cost.migration_volume, total_size);
    Weight cost_mass = 0;
    for (const NetId n : h.nets())
      cost_mass += h.net_cost(n) * (h.net_size(n) - 1);
    EXPECT_LE(r.cost.comm_volume, cost_mass);
  }
}

// alpha monotonicity: raising alpha never raises the chosen communication
// volume by much (it optimizes comm harder). Statistical: averaged over
// seeds with slack.
TEST(Properties, AlphaPushesCommDown) {
  double comm_low = 0, comm_high = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Hypergraph h = random_hypergraph(80, 160, 4, 3, seed + 40);
    const Partition old_p = random_partition(80, 4, seed + 50);
    RepartitionerConfig cfg;
    cfg.partition.num_parts = 4;
    cfg.partition.epsilon = 0.25;
    cfg.partition.seed = seed;
    cfg.alpha = 1;
    comm_low += static_cast<double>(
        hypergraph_repartition(h, old_p, cfg).cost.comm_volume);
    cfg.alpha = 1000;
    comm_high += static_cast<double>(
        hypergraph_repartition(h, old_p, cfg).cost.comm_volume);
  }
  EXPECT_LE(comm_high, comm_low * 1.1 + 10.0);
}

// Decode/plan round trip: applying the plan to the old partition yields the
// new partition.
TEST(Properties, PlanAppliesToOldGivesNew) {
  const Hypergraph h = random_hypergraph(60, 120, 4, 2, 9);
  const Partition old_p = random_partition(60, 4, 10);
  RepartitionerConfig cfg;
  cfg.alpha = 5;
  cfg.partition.num_parts = 4;
  cfg.partition.epsilon = 0.3;
  const RepartitionResult r = hypergraph_repartition(h, old_p, cfg);
  Partition applied = old_p;
  for (const MigrationPlan::Move& m : r.plan.moves) {
    EXPECT_EQ(applied[m.vertex], m.from);
    applied[m.vertex] = m.to;
  }
  EXPECT_EQ(applied.assignment, r.partition.assignment);
}

// Scratch + remap preserves the scratch partition's cut exactly (labels
// are permuted, never reassigned).
TEST(Properties, RemapOnlyPermutes) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Hypergraph h = random_hypergraph(60, 120, 4, 2, seed + 70);
    const Partition old_p = random_partition(60, 3, seed + 80);
    RepartitionerConfig cfg;
    cfg.alpha = 1;
    cfg.partition.num_parts = 3;
    cfg.partition.seed = seed;
    const RepartitionResult r = hypergraph_scratch(h, old_p, cfg);
    const Partition fresh = partition_hypergraph(h, cfg.partition);
    EXPECT_EQ(connectivity_cut(h, fresh),
              connectivity_cut(h, r.partition));
  }
}

}  // namespace
}  // namespace hgr
