// Optimality-gap checks on exhaustively solvable instances: the heuristics
// must land near the true optimum where we can afford to compute it.
#include <gtest/gtest.h>

#include <limits>

#include "core/repartition_model.hpp"
#include "core/repartitioner.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "metrics/migration.hpp"
#include "partition/partitioner.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::random_hypergraph;

/// Exhaustive best balanced bisection by 2^n enumeration (n <= ~16).
Weight optimal_bisection_cut(const Hypergraph& h, double eps) {
  const Index n = h.num_vertices();
  const Weight total = h.total_vertex_weight();
  const auto max_w =
      static_cast<Weight>(static_cast<double>(total) / 2.0 * (1.0 + eps));
  Weight best = std::numeric_limits<Weight>::max();
  Partition p(2, n);
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    Weight w0 = 0;
    for (Index v = 0; v < n; ++v) {
      p[VertexId{v}] = PartId{static_cast<Index>((mask >> v) & 1u)};
      if (p[VertexId{v}] == PartId{0}) w0 += h.vertex_weight(VertexId{v});
    }
    if (w0 > max_w || total - w0 > max_w) continue;
    best = std::min(best, connectivity_cut(h, p));
  }
  return best;
}

TEST(Optimality, BisectionNearOptimalOnTinyInstances) {
  // Deterministic seeds: verified once, stable forever.
  for (const std::uint64_t seed : {1, 2, 3, 4, 5}) {
    Hypergraph h = random_hypergraph(12, 24, 4, 3, seed);
    // Unit weights keep the enumeration's balance envelope simple.
    for (Index v = 0; v < 12; ++v) h.set_vertex_weight(VertexId{v}, 1);
    const Weight optimal = optimal_bisection_cut(h, 0.2);
    PartitionConfig cfg;
    cfg.num_parts = 2;
    cfg.epsilon = 0.2;
    cfg.seed = seed;
    const Partition p = partition_hypergraph(h, cfg);
    ASSERT_TRUE(is_balanced(h.vertex_weights(), p, 0.2));
    const Weight got = connectivity_cut(h, p);
    EXPECT_LE(got, optimal * 2 + 2) << "seed " << seed;
    EXPECT_GE(got, optimal) << "enumeration bug?";
  }
}

TEST(Optimality, RepartitionModelOptimumNeverBelowDirectTradeoff) {
  // For a tiny instance, enumerate all assignments of the augmented
  // hypergraph (partition vertices fixed) and confirm the best equals the
  // best alpha*comm+mig over all real assignments: the model loses
  // nothing.
  Hypergraph h = random_hypergraph(8, 14, 3, 2, 7);
  for (Index v = 0; v < 8; ++v) h.set_vertex_weight(VertexId{v}, 1);
  const Partition old_p = testing::random_partition(8, 2, 9);
  const Weight alpha = 3;
  const RepartitionModel model = build_repartition_model(h, old_p, alpha);

  Weight best_direct = std::numeric_limits<Weight>::max();
  Weight best_model = std::numeric_limits<Weight>::max();
  Partition real(2, 8);
  Partition aug(2, model.augmented.num_vertices());
  for (const PartId i : part_range(2)) aug[model.partition_vertex(i)] = i;
  for (std::uint32_t mask = 0; mask < (1u << 8); ++mask) {
    for (Index v = 0; v < 8; ++v) {
      real[VertexId{v}] = PartId{static_cast<Index>((mask >> v) & 1u)};
      aug[VertexId{v}] = real[VertexId{v}];
    }
    const Weight direct =
        alpha * connectivity_cut(h, real) +
        migration_volume(h.vertex_sizes(), old_p, real);
    const Weight via_model = connectivity_cut(model.augmented, aug);
    EXPECT_EQ(direct, via_model);  // identity holds pointwise
    best_direct = std::min(best_direct, direct);
    best_model = std::min(best_model, via_model);
  }
  EXPECT_EQ(best_direct, best_model);
}

TEST(Optimality, HugeSizesFreezeTheDistribution) {
  // When every vertex's data is enormous and alpha=1, the optimal move is
  // no move; the solver must find (essentially) that.
  Hypergraph h = random_hypergraph(60, 120, 4, 2, 11);
  for (Index v = 0; v < 60; ++v) h.set_vertex_size(VertexId{v}, 100000);
  PartitionConfig scfg;
  scfg.num_parts = 4;
  scfg.epsilon = 0.2;
  const Partition old_p = partition_hypergraph(h, scfg);
  RepartitionerConfig rcfg;
  rcfg.partition = scfg;
  rcfg.partition.seed = 999;
  rcfg.alpha = 1;
  const RepartitionResult r = hypergraph_repartition(h, old_p, rcfg);
  EXPECT_EQ(r.cost.migration_volume, 0);
  EXPECT_EQ(r.partition.assignment, old_p.assignment);
}

}  // namespace
}  // namespace hgr
