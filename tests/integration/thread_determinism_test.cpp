// Whole-pipeline thread-count determinism: the shared-memory execution
// layer must be invisible in results. partition_hypergraph with
// num_threads = 1, 2, 4 — across datasets, seeds, both k-way methods, the
// post-pass, and the repartitioning model — returns bit-identical
// partitions, and ranks x threads composes in the parallel partitioner
// without changing its answer (docs/PARALLELISM.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/repartition_model.hpp"
#include "hypergraph/convert.hpp"
#include "metrics/cut.hpp"
#include "parallel/par_partitioner.hpp"
#include "partition/partitioner.hpp"
#include "workload/datasets.hpp"

namespace hgr {
namespace {

Partition partition_with_threads(const Hypergraph& h, PartitionConfig cfg,
                                 Index threads) {
  cfg.num_threads = threads;
  return partition_hypergraph(h, cfg);
}

TEST(ThreadDeterminism, PartitionIdenticalAcrossThreadCounts) {
  for (const char* name : {"auto-like", "xyce680s-like"}) {
    const Hypergraph h = graph_to_hypergraph(make_dataset(name, 0.02, 5));
    for (const std::uint64_t seed : {1u, 17u}) {
      PartitionConfig cfg;
      cfg.num_parts = 4;
      cfg.epsilon = 0.05;
      cfg.seed = seed;
      const Partition t1 = partition_with_threads(h, cfg, 1);
      const Partition t2 = partition_with_threads(h, cfg, 2);
      const Partition t4 = partition_with_threads(h, cfg, 4);
      EXPECT_EQ(t1.assignment, t2.assignment) << name << " seed " << seed;
      EXPECT_EQ(t1.assignment, t4.assignment) << name << " seed " << seed;
    }
  }
}

TEST(ThreadDeterminism, DirectKwayAndPostpassAreThreadCountInvariant) {
  const Hypergraph h = graph_to_hypergraph(make_dataset("auto-like", 0.02, 9));

  PartitionConfig direct;
  direct.num_parts = 4;
  direct.kway_method = KwayMethod::kDirectKway;
  direct.seed = 3;
  EXPECT_EQ(partition_with_threads(h, direct, 1).assignment,
            partition_with_threads(h, direct, 4).assignment);

  PartitionConfig postpass;
  postpass.num_parts = 4;
  postpass.kway_postpass = true;
  postpass.num_vcycles = 1;
  postpass.seed = 3;
  EXPECT_EQ(partition_with_threads(h, postpass, 1).assignment,
            partition_with_threads(h, postpass, 4).assignment);
}

TEST(ThreadDeterminism, RepartitionModelIsThreadCountInvariant) {
  // The augmented hypergraph carries fixed partition vertices and hub nets
  // — the shapes that stress the degree cutoffs of the parallel matching.
  const Hypergraph h = graph_to_hypergraph(make_dataset("auto-like", 0.02, 7));
  PartitionConfig cfg;
  cfg.num_parts = 4;
  cfg.seed = 11;
  const Partition old_p = partition_hypergraph(h, cfg);
  const RepartitionModel model = build_repartition_model(h, old_p, 10);

  cfg.seed = 13;
  const Partition a = decode_augmented_partition(
      model, partition_with_threads(model.augmented, cfg, 1));
  const Partition b = decode_augmented_partition(
      model, partition_with_threads(model.augmented, cfg, 4));
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(connectivity_cut(h, a), connectivity_cut(h, b));
}

TEST(ThreadDeterminism, RanksAndThreadsCompose) {
  // 2 ranks x 2 threads must agree with 2 ranks x 1 thread: the rank-level
  // algorithm is unchanged, the thread pool only accelerates each rank's
  // local kernels.
  const Hypergraph h = graph_to_hypergraph(make_dataset("auto-like", 0.02, 3));
  ParallelPartitionConfig cfg;
  cfg.num_ranks = 2;
  cfg.base.num_parts = 4;
  cfg.base.seed = 21;

  cfg.base.num_threads = 1;
  const ParallelPartitionResult serial = parallel_partition_hypergraph(h, cfg);
  cfg.base.num_threads = 2;
  const ParallelPartitionResult threaded =
      parallel_partition_hypergraph(h, cfg);
  EXPECT_EQ(serial.partition.assignment, threaded.partition.assignment);
}

}  // namespace
}  // namespace hgr
