// End-to-end pipelines: dataset -> epochs -> all four algorithms, on both
// perturbation modes, checking the structural invariants the paper's
// experiments rely on.
#include <gtest/gtest.h>

#include "core/epoch_driver.hpp"
#include "metrics/balance.hpp"
#include "workload/datasets.hpp"
#include "workload/perturb.hpp"

namespace hgr {
namespace {

RepartitionerConfig cfg_for(Index k, Weight alpha) {
  RepartitionerConfig cfg;
  cfg.alpha = alpha;
  cfg.partition.num_parts = k;
  cfg.partition.epsilon = 0.1;
  cfg.partition.seed = 31;
  return cfg;
}

class PipelineSweep
    : public ::testing::TestWithParam<std::tuple<RepartAlgorithm, int>> {};

TEST_P(PipelineSweep, FourEpochsRunCleanly) {
  const auto [alg, perturb_kind] = GetParam();
  const Graph base = make_dataset("auto-like", 0.03, 5);
  std::unique_ptr<EpochScenario> scenario;
  if (perturb_kind == 0) {
    scenario = std::make_unique<StructuralPerturbScenario>(
        base, StructuralPerturbOptions{}, 77);
  } else {
    scenario = std::make_unique<WeightPerturbScenario>(
        base, WeightPerturbOptions{}, 77);
  }
  const EpochRunSummary s = run_epochs(*scenario, alg, cfg_for(4, 10), 4);
  ASSERT_EQ(s.epochs.size(), 4u);
  for (const EpochRecord& r : s.epochs) {
    EXPECT_GT(r.num_vertices, 0);
    EXPECT_GE(r.cost.comm_volume, 0);
    EXPECT_GE(r.repart_seconds, 0.0);
    EXPECT_LT(r.imbalance, 0.6);
  }
  EXPECT_GT(s.mean_comm_volume(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndPerturbs, PipelineSweep,
    ::testing::Combine(
        ::testing::Values(RepartAlgorithm::kHypergraphRepart,
                          RepartAlgorithm::kGraphRepart,
                          RepartAlgorithm::kHypergraphScratch,
                          RepartAlgorithm::kGraphScratch),
        ::testing::Values(0, 1)));

TEST(Pipeline, EveryDatasetSurvivesOneRepartition) {
  for (const DatasetInfo& info : dataset_catalog()) {
    const Graph base = make_dataset(info.name, 0.02, 3);
    StructuralPerturbScenario scenario(base, StructuralPerturbOptions{}, 9);
    const EpochRunSummary s =
        run_epochs(scenario, RepartAlgorithm::kHypergraphRepart,
                   cfg_for(4, 100), 2);
    EXPECT_EQ(s.epochs.size(), 2u) << info.name;
    EXPECT_GE(s.epochs[1].cost.migration_volume, 0) << info.name;
  }
}

}  // namespace
}  // namespace hgr
