// Whole-pipeline determinism: identical configs must produce bit-identical
// results at every level of the stack — the property that makes the
// figure benches and trial averaging reproducible.
#include <gtest/gtest.h>

#include "core/epoch_driver.hpp"
#include "workload/datasets.hpp"
#include "workload/experiment.hpp"
#include "workload/perturb.hpp"

namespace hgr {
namespace {

TEST(Determinism, DatasetsAreSeedStable) {
  for (const DatasetInfo& info : dataset_catalog()) {
    const Graph a = make_dataset(info.name, 0.05, 77);
    const Graph b = make_dataset(info.name, 0.05, 77);
    ASSERT_EQ(a.num_vertices(), b.num_vertices()) << info.name;
    ASSERT_EQ(a.num_edges(), b.num_edges()) << info.name;
    for (Index v = 0; v < a.num_vertices(); ++v) {
      ASSERT_EQ(a.degree(v), b.degree(v)) << info.name;
      ASSERT_EQ(a.vertex_size(v), b.vertex_size(v)) << info.name;
    }
  }
}

TEST(Determinism, EpochRunsAreReproducible) {
  const auto run_once = [] {
    StructuralPerturbScenario scenario(make_dataset("auto-like", 0.03, 5),
                                       StructuralPerturbOptions{}, 9);
    RepartitionerConfig cfg;
    cfg.alpha = 10;
    cfg.partition.num_parts = 4;
    cfg.partition.seed = 11;
    return run_epochs(scenario, RepartAlgorithm::kHypergraphRepart, cfg, 3);
  };
  const EpochRunSummary a = run_once();
  const EpochRunSummary b = run_once();
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_EQ(a.epochs[e].cost.comm_volume, b.epochs[e].cost.comm_volume);
    EXPECT_EQ(a.epochs[e].cost.migration_volume,
              b.epochs[e].cost.migration_volume);
    EXPECT_EQ(a.epochs[e].num_migrated, b.epochs[e].num_migrated);
  }
}

TEST(Determinism, ExperimentCellsAreReproducible) {
  ExperimentConfig cfg;
  cfg.dataset = "auto-like";
  cfg.scale = 0.02;
  cfg.k_values = {4};
  cfg.alphas = {10};
  cfg.num_epochs = 2;
  cfg.num_trials = 2;
  const auto a = run_experiment(cfg);
  const auto b = run_experiment(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].comm_volume, b[i].comm_volume);
    EXPECT_DOUBLE_EQ(a[i].migration_volume, b[i].migration_volume);
    EXPECT_DOUBLE_EQ(a[i].normalized_total, b[i].normalized_total);
  }
}

TEST(Determinism, DifferentSeedsChangeTheSequence) {
  const auto run_with = [](std::uint64_t seed) {
    StructuralPerturbScenario scenario(make_dataset("auto-like", 0.03, 5),
                                       StructuralPerturbOptions{}, seed);
    RepartitionerConfig cfg;
    cfg.alpha = 10;
    cfg.partition.num_parts = 4;
    cfg.partition.seed = seed;
    return run_epochs(scenario, RepartAlgorithm::kHypergraphRepart, cfg, 3);
  };
  const EpochRunSummary a = run_with(1);
  const EpochRunSummary b = run_with(2);
  // With different perturbation + partitioner seeds, at least one recorded
  // quantity must differ.
  bool any_diff = false;
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    any_diff |= a.epochs[e].cost.comm_volume != b.epochs[e].cost.comm_volume;
    any_diff |= a.epochs[e].cost.migration_volume !=
                b.epochs[e].cost.migration_volume;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace hgr
