#include "metrics/cut.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace hgr {
namespace {

using testing::brute_force_connectivity_cut;
using testing::make_graph;
using testing::make_hypergraph;
using testing::random_hypergraph;
using testing::random_partition;

TEST(Cut, UncutNetContributesNothing) {
  const Hypergraph h = make_hypergraph(4, {{0, 1}, {2, 3}});
  Partition p(2, 4);
  p[VertexId{0}] = p[VertexId{1}] = PartId{0};
  p[VertexId{2}] = p[VertexId{3}] = PartId{1};
  EXPECT_EQ(connectivity_cut(h, p), 0);
  EXPECT_EQ(num_cut_nets(h, p), 0);
}

TEST(Cut, ConnectivityMinusOne) {
  // One net spanning 3 parts: contributes cost * 2.
  HypergraphBuilder b(3);
  b.add_net({0, 1, 2}, 5);
  const Hypergraph h = b.finalize();
  Partition p(3, 3);
  p[VertexId{0}] = PartId{0};
  p[VertexId{1}] = PartId{1};
  p[VertexId{2}] = PartId{2};
  EXPECT_EQ(net_connectivity(h, p, NetId{0}), 3);
  EXPECT_EQ(connectivity_cut(h, p), 10);
  EXPECT_EQ(cut_net_cost(h, p), 5);
  EXPECT_EQ(num_cut_nets(h, p), 1);
}

TEST(Cut, RangeSplitsCut) {
  const Hypergraph h =
      make_hypergraph(4, {{0, 1}, {1, 2}, {2, 3}});
  Partition p(2, 4);
  p[VertexId{0}] = p[VertexId{1}] = PartId{0};
  p[VertexId{2}] = p[VertexId{3}] = PartId{1};  // only net {1,2} is cut
  EXPECT_EQ(connectivity_cut_range(h, p, 0, 1), 0);
  EXPECT_EQ(connectivity_cut_range(h, p, 1, 2), 1);
  EXPECT_EQ(connectivity_cut_range(h, p, 0, 3), 1);
}

TEST(Cut, MatchesBruteForceOnRandomInstances) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Hypergraph h = random_hypergraph(40, 80, 6, 5, seed);
    const Partition p = random_partition(40, 5, seed + 100);
    EXPECT_EQ(connectivity_cut(h, p), brute_force_connectivity_cut(h, p));
  }
}

TEST(Cut, EdgeCutBasics) {
  const Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  Partition p(2, 4);
  p[VertexId{0}] = p[VertexId{1}] = PartId{0};
  p[VertexId{2}] = p[VertexId{3}] = PartId{1};
  EXPECT_EQ(edge_cut(g, p), 2);
}

TEST(Cut, EdgeCutWeighted) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 9);
  const Graph g = b.finalize();
  Partition p(2, 2);
  p[VertexId{0}] = PartId{0};
  p[VertexId{1}] = PartId{1};
  EXPECT_EQ(edge_cut(g, p), 9);
  p[VertexId{1}] = PartId{0};
  EXPECT_EQ(edge_cut(g, p), 0);
}

TEST(Cut, SinglePartPartitionHasZeroCut) {
  const Hypergraph h = random_hypergraph(20, 30, 5, 3, 1);
  const Partition p(1, 20, PartId{0});
  EXPECT_EQ(connectivity_cut(h, p), 0);
}

// Paper Section 2.1 example embedded in Figure 1 (left): three cut nets,
// each with connectivity 2 and unit cost => total volume 3.
TEST(Cut, PaperEpochJm1Example) {
  // Nine vertices in three parts of three. Nets chosen so that exactly
  // three nets are cut with connectivity 2 each.
  const Hypergraph h = make_hypergraph(
      9, {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {2, 3}, {5, 6}, {0, 8}});
  Partition p(3, 9);
  for (Index v = 0; v < 9; ++v) p[VertexId{v}] = PartId{v / 3};
  EXPECT_EQ(connectivity_cut(h, p), 3);
}

}  // namespace
}  // namespace hgr
