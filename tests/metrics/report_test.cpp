#include "metrics/report.hpp"

#include <gtest/gtest.h>

#include "metrics/cut.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::make_hypergraph;
using testing::random_hypergraph;
using testing::random_partition;

TEST(Report, CountsPerPart) {
  const Hypergraph h = make_hypergraph(4, {{0, 1}, {1, 2}, {2, 3}});
  Partition p(2, 4);
  p[VertexId{0}] = p[VertexId{1}] = PartId{0};
  p[VertexId{2}] = p[VertexId{3}] = PartId{1};
  const PartitionReport r = analyze_partition(h, p);
  EXPECT_EQ(r.k, 2);
  EXPECT_EQ(r.total_cut, 1);
  EXPECT_EQ(r.part_vertices[PartId{0}], 2);
  EXPECT_EQ(r.part_vertices[PartId{1}], 2);
  EXPECT_EQ(r.part_weight[PartId{0}], 2);
  // Only net {1,2} is cut: vertices 1 and 2 are boundary.
  EXPECT_EQ(r.boundary_vertices[PartId{0}], 1);
  EXPECT_EQ(r.boundary_vertices[PartId{1}], 1);
  EXPECT_DOUBLE_EQ(r.pair_comm(PartId{0}, PartId{1}), 1.0);
}

TEST(Report, TotalCutMatchesMetric) {
  const Hypergraph h = random_hypergraph(50, 100, 5, 3, 3);
  const Partition p = random_partition(50, 4, 4);
  const PartitionReport r = analyze_partition(h, p);
  EXPECT_EQ(r.total_cut, connectivity_cut(h, p));
}

TEST(Report, PairwiseCommSumsToCut) {
  const Hypergraph h = random_hypergraph(40, 80, 5, 3, 5);
  const Partition p = random_partition(40, 4, 6);
  const PartitionReport r = analyze_partition(h, p);
  double sum = 0;
  for (const PartId i : part_range(4))
    for (PartId j{i.v + 1}; j.v < 4; ++j) sum += r.pair_comm(i, j);
  EXPECT_NEAR(sum, static_cast<double>(r.total_cut), 1e-6);
}

TEST(Report, ToStringRendersParts) {
  const Hypergraph h = make_hypergraph(4, {{0, 1}, {2, 3}, {1, 2}});
  Partition p(2, 4);
  p[VertexId{0}] = p[VertexId{1}] = PartId{0};
  p[VertexId{2}] = p[VertexId{3}] = PartId{1};
  const std::string s = analyze_partition(h, p).to_string();
  EXPECT_NE(s.find("k=2"), std::string::npos);
  EXPECT_NE(s.find("heaviest channels"), std::string::npos);
  EXPECT_NE(s.find("0 <-> 1"), std::string::npos);
}

}  // namespace
}  // namespace hgr
