#include "metrics/partition_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.hpp"

namespace hgr {
namespace {

TEST(PartitionIo, RoundTrip) {
  const Partition p = testing::random_partition(25, 5, 3);
  std::stringstream ss;
  write_partition(p, ss);
  const Partition back = read_partition(ss, 25, 5);
  EXPECT_EQ(back.assignment, p.assignment);
  EXPECT_EQ(back.k, 5);
}

TEST(PartitionIo, InfersKWithoutHint) {
  std::stringstream ss("0\n2\n1\n2\n");
  const Partition p = read_partition(ss, 4);
  EXPECT_EQ(p.k, 3);
  EXPECT_EQ(p[VertexId{1}], PartId{2});
}

TEST(PartitionIo, RejectsShortFile) {
  std::stringstream ss("0\n1\n");
  EXPECT_THROW(read_partition(ss, 3), std::runtime_error);
}

TEST(PartitionIo, RejectsOutOfRangeWithHint) {
  std::stringstream ss("0\n7\n");
  EXPECT_THROW(read_partition(ss, 2, 4), std::runtime_error);
}

TEST(PartitionIo, RejectsNegative) {
  std::stringstream ss("0\n-1\n");
  EXPECT_THROW(read_partition(ss, 2), std::runtime_error);
}

TEST(PartitionIo, FileRoundTrip) {
  const Partition p = testing::random_partition(10, 3, 7);
  const std::string path = ::testing::TempDir() + "/hgr_parts_test.txt";
  write_partition_file(p, path);
  const Partition back = read_partition_file(path, 10, 3);
  EXPECT_EQ(back.assignment, p.assignment);
}

}  // namespace
}  // namespace hgr
