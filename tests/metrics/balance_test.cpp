#include "metrics/balance.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace hgr {
namespace {

TEST(Balance, PartWeights) {
  const std::vector<Weight> w{1, 2, 3, 4};
  Partition p(2, 4);
  p[VertexId{0}] = p[VertexId{3}] = PartId{0};
  p[VertexId{1}] = p[VertexId{2}] = PartId{1};
  const auto pw = part_weights(w, p);
  EXPECT_EQ(pw.raw(), (std::vector<Weight>{5, 5}));
}

TEST(Balance, PerfectBalanceIsZero) {
  const std::vector<Weight> w{2, 2, 2, 2};
  Partition p(2, 4);
  p[VertexId{0}] = p[VertexId{1}] = PartId{0};
  p[VertexId{2}] = p[VertexId{3}] = PartId{1};
  EXPECT_DOUBLE_EQ(imbalance(w, p), 0.0);
  EXPECT_TRUE(is_balanced(w, p, 0.0));
}

TEST(Balance, ImbalanceValue) {
  const std::vector<Weight> w{3, 1};
  Partition p(2, 2);
  p[VertexId{0}] = PartId{0};
  p[VertexId{1}] = PartId{1};
  // Weights 3 vs 1, avg 2 => imbalance 0.5.
  EXPECT_DOUBLE_EQ(imbalance(w, p), 0.5);
  EXPECT_FALSE(is_balanced(w, p, 0.4));
  EXPECT_TRUE(is_balanced(w, p, 0.5));
}

TEST(Balance, EmptyPartCounts) {
  const std::vector<Weight> w{1, 1};
  Partition p(3, 2);
  p[VertexId{0}] = PartId{0};
  p[VertexId{1}] = PartId{0};
  // Parts: {2, 0, 0}; avg 2/3 => imbalance = 2/(2/3) - 1 = 2.
  EXPECT_DOUBLE_EQ(imbalance(w, p), 2.0);
}

TEST(Balance, ZeroTotalWeight) {
  const std::vector<Weight> w{0, 0};
  Partition p(2, 2);
  EXPECT_DOUBLE_EQ(imbalance(w, p), 0.0);
}

TEST(Balance, ImbalanceOfDirect) {
  const auto pw = [](std::vector<Weight> w) {
    return IdVector<PartId, Weight>::adopt_raw(std::move(w));
  };
  EXPECT_DOUBLE_EQ(imbalance_of(pw({4, 4, 4})), 0.0);
  EXPECT_DOUBLE_EQ(imbalance_of(pw({6, 3, 3})), 0.5);
  EXPECT_DOUBLE_EQ(imbalance_of(pw({})), 0.0);
}

TEST(Balance, MaxPartWeightMatchesRelaxedAverage) {
  // avg = 50, eps = 0.1 -> 55; exact, no rounding involved.
  EXPECT_EQ(max_part_weight(100, 2, 0.1), 55);
  // avg = 25, eps = 0.04 -> 26.
  EXPECT_EQ(max_part_weight(100, 4, 0.04), 26);
}

TEST(Balance, MaxPartWeightNeverBelowCeilAverage) {
  // Regression: avg = 3.5 with small eps used to truncate to 3, making a
  // perfectly balanced {4, 3} split inadmissible.
  EXPECT_EQ(max_part_weight(7, 2, 0.0), 4);
  EXPECT_EQ(max_part_weight(7, 2, 0.05), 4);
  // avg = 10/3; floor(avg * 1.05) = 3 < ceil(avg) = 4.
  EXPECT_EQ(max_part_weight(10, 3, 0.05), 4);
  // Large enough eps dominates the ceiling again.
  EXPECT_EQ(max_part_weight(7, 2, 1.0), 7);
}

TEST(Balance, MaxPartWeightMonotonicInEpsilon) {
  for (const Weight total : {1, 7, 10, 97, 1000}) {
    for (const Index k : {1, 2, 3, 8}) {
      Weight prev = 0;
      for (const double eps : {0.0, 0.01, 0.05, 0.2, 1.0}) {
        const Weight cap = max_part_weight(total, k, eps);
        EXPECT_GE(cap, prev);
        // Eq. 1 admissibility: a perfectly balanced split always fits.
        EXPECT_GE(cap, (total + k - 1) / k);
        prev = cap;
      }
    }
  }
}

}  // namespace
}  // namespace hgr
