#include "metrics/remap_optimal.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "metrics/migration.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::random_partition;

TEST(MaxAssignment, TrivialIdentity) {
  const std::vector<std::vector<Weight>> w{{5, 1}, {1, 5}};
  EXPECT_EQ(max_assignment(w), (std::vector<Index>{0, 1}));
}

TEST(MaxAssignment, CrossIsBetter) {
  const std::vector<std::vector<Weight>> w{{1, 9}, {9, 1}};
  EXPECT_EQ(max_assignment(w), (std::vector<Index>{1, 0}));
}

TEST(MaxAssignment, MatchesBruteForceOnRandomMatrices) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const Index n = 2 + static_cast<Index>(rng.below(4));  // up to 5
    std::vector<std::vector<Weight>> w(
        static_cast<std::size_t>(n),
        std::vector<Weight>(static_cast<std::size_t>(n)));
    for (auto& row : w)
      for (auto& x : row) x = static_cast<Weight>(rng.below(100));

    const std::vector<Index> got = max_assignment(w);
    Weight got_value = 0;
    for (Index r = 0; r < n; ++r)
      got_value += w[static_cast<std::size_t>(r)][static_cast<std::size_t>(
          got[static_cast<std::size_t>(r)])];

    std::vector<Index> perm(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
    Weight best = 0;
    do {
      Weight value = 0;
      for (Index r = 0; r < n; ++r)
        value += w[static_cast<std::size_t>(r)][static_cast<std::size_t>(
            perm[static_cast<std::size_t>(r)])];
      best = std::max(best, value);
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_EQ(got_value, best) << "n=" << n << " trial=" << trial;
  }
}

TEST(RemapOptimal, NeverWorseThanGreedy) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    std::vector<Weight> sizes(60);
    Rng rng(seed);
    for (auto& s : sizes) s = 1 + static_cast<Weight>(rng.below(6));
    const Partition old_p = random_partition(60, 6, seed * 3 + 1);
    const Partition new_p = random_partition(60, 6, seed * 3 + 2);
    const Partition greedy =
        remap_parts_for_migration(sizes, old_p, new_p);
    const Partition optimal = remap_parts_optimal(sizes, old_p, new_p);
    EXPECT_LE(migration_volume(sizes, old_p, optimal),
              migration_volume(sizes, old_p, greedy));
    // And never worse than the unmapped labels.
    EXPECT_LE(migration_volume(sizes, old_p, optimal),
              migration_volume(sizes, old_p, new_p));
  }
}

TEST(RemapOptimal, RecoversPermutedLabelsExactly) {
  const std::vector<Weight> sizes(20, 1);
  Partition old_p(4, 20);
  for (const VertexId v : old_p.vertices()) old_p[v] = PartId{v.v % 4};
  Partition new_p(4, 20);
  for (const VertexId v : new_p.vertices())
    new_p[v] = PartId{(old_p[v].v + 3) % 4};
  const Partition remapped = remap_parts_optimal(sizes, old_p, new_p);
  EXPECT_EQ(migration_volume(sizes, old_p, remapped), 0);
}

TEST(RemapOptimal, IsAPermutationOfLabels) {
  const std::vector<Weight> sizes(30, 2);
  const Partition old_p = random_partition(30, 5, 11);
  const Partition new_p = random_partition(30, 5, 12);
  const Partition remapped = remap_parts_optimal(sizes, old_p, new_p);
  for (const VertexId u : new_p.vertices())
    for (const VertexId v : new_p.vertices())
      EXPECT_EQ(new_p[u] == new_p[v], remapped[u] == remapped[v]);
}

}  // namespace
}  // namespace hgr
