#include "metrics/migration.hpp"

#include <gtest/gtest.h>

#include <span>

#include "test_util.hpp"

namespace hgr {
namespace {

using testing::random_partition;

TEST(Migration, NoChangeNoVolume) {
  const std::vector<Weight> sizes{1, 2, 3};
  const Partition p = random_partition(3, 2, 1);
  EXPECT_EQ(migration_volume(sizes, p, p), 0);
  EXPECT_EQ(num_migrated(p, p), 0);
}

TEST(Migration, VolumeCountsMovedSizes) {
  const std::vector<Weight> sizes{5, 7, 11};
  Partition a(2, 3), b(2, 3);
  a[VertexId{0}] = a[VertexId{1}] = PartId{0}; a[VertexId{2}] = PartId{1};
  b[VertexId{0}] = PartId{1}; b[VertexId{1}] = PartId{0};
  b[VertexId{2}] = PartId{1};  // only vertex 0 moved
  EXPECT_EQ(migration_volume(sizes, a, b), 5);
  EXPECT_EQ(num_migrated(a, b), 1);
}

TEST(Migration, OverlapMatrix) {
  const std::vector<Weight> sizes{1, 1, 1, 1};
  Partition a(2, 4), b(2, 4);
  a[VertexId{0}] = a[VertexId{1}] = PartId{0};
  a[VertexId{2}] = a[VertexId{3}] = PartId{1};
  b[VertexId{0}] = PartId{0}; b[VertexId{1}] = PartId{1};
  b[VertexId{2}] = PartId{1}; b[VertexId{3}] = PartId{0};
  const auto overlap =
      part_overlap_sizes(std::span<const Weight>(sizes), a, b);
  EXPECT_EQ(overlap[0][PartId{0}], 1);
  EXPECT_EQ(overlap[0][PartId{1}], 1);
  EXPECT_EQ(overlap[1][PartId{0}], 1);
  EXPECT_EQ(overlap[1][PartId{1}], 1);
}

TEST(Migration, RemapRecoversRelabeledPartition) {
  // new_p is old_p with labels swapped: remap should undo it entirely.
  const std::vector<Weight> sizes(12, 1);
  Partition old_p(3, 12);
  for (Index v = 0; v < 12; ++v) old_p[VertexId{v}] = PartId{v % 3};
  Partition new_p(3, 12);
  for (Index v = 0; v < 12; ++v)
    new_p[VertexId{v}] = PartId{(v + 1) % 3};  // relabel 0->1 etc.
  const Partition remapped = remap_parts_for_migration(sizes, old_p, new_p);
  EXPECT_EQ(migration_volume(sizes, old_p, remapped), 0);
}

TEST(Migration, RemapNeverIncreasesMigration) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    std::vector<Weight> sizes(40);
    Rng rng(seed);
    for (auto& s : sizes) s = 1 + static_cast<Weight>(rng.below(5));
    const Partition old_p = random_partition(40, 5, seed * 2 + 1);
    const Partition new_p = random_partition(40, 5, seed * 2 + 2);
    const Partition remapped =
        remap_parts_for_migration(sizes, old_p, new_p);
    EXPECT_LE(migration_volume(sizes, old_p, remapped),
              migration_volume(sizes, old_p, new_p));
  }
}

TEST(Migration, RemapIsAPermutationOfLabels) {
  const std::vector<Weight> sizes(20, 1);
  const Partition old_p = random_partition(20, 4, 3);
  const Partition new_p = random_partition(20, 4, 4);
  const Partition remapped = remap_parts_for_migration(sizes, old_p, new_p);
  // Two vertices share a part in new_p iff they share one in remapped.
  for (const VertexId u : new_p.vertices())
    for (const VertexId v : new_p.vertices())
      EXPECT_EQ(new_p[u] == new_p[v], remapped[u] == remapped[v]);
}

}  // namespace
}  // namespace hgr
