#include "metrics/cost_model.hpp"

#include <gtest/gtest.h>

#include "metrics/cut.hpp"
#include "metrics/migration.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::make_graph;
using testing::make_hypergraph;

TEST(CostModel, TotalAndNormalized) {
  RepartitionCost c;
  c.comm_volume = 10;
  c.migration_volume = 40;
  c.alpha = 4;
  EXPECT_EQ(c.total(), 80);
  EXPECT_DOUBLE_EQ(c.normalized_total(), 20.0);
}

TEST(CostModel, EvaluateHypergraph) {
  const Hypergraph h = make_hypergraph(4, {{0, 1}, {1, 2}, {2, 3}});
  Partition old_p(2, 4), new_p(2, 4);
  old_p[VertexId{0}] = old_p[VertexId{1}] = PartId{0};
  old_p[VertexId{2}] = old_p[VertexId{3}] = PartId{1};
  new_p[VertexId{0}] = PartId{0};  // vertex 1 moved
  new_p[VertexId{1}] = new_p[VertexId{2}] = new_p[VertexId{3}] = PartId{1};
  const RepartitionCost c = evaluate_repartition(h, old_p, new_p, 7);
  EXPECT_EQ(c.alpha, 7);
  EXPECT_EQ(c.comm_volume, connectivity_cut(h, new_p));
  EXPECT_EQ(c.migration_volume,
            migration_volume(h.vertex_sizes(), old_p, new_p));
  EXPECT_EQ(c.migration_volume, 1);
}

TEST(CostModel, EvaluateGraph) {
  const Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  Partition old_p(2, 4), new_p(2, 4);
  old_p[VertexId{0}] = old_p[VertexId{1}] = PartId{0};
  old_p[VertexId{2}] = old_p[VertexId{3}] = PartId{1};
  new_p = old_p;
  const RepartitionCost c = evaluate_repartition(g, old_p, new_p, 3);
  EXPECT_EQ(c.comm_volume, 1);  // edge {1,2}
  EXPECT_EQ(c.migration_volume, 0);
  EXPECT_EQ(c.total(), 3);
}

TEST(CostModel, AlphaOneWeighsEqually) {
  RepartitionCost c;
  c.comm_volume = 3;
  c.migration_volume = 5;
  c.alpha = 1;
  EXPECT_EQ(c.total(), 8);
  EXPECT_DOUBLE_EQ(c.normalized_total(), 8.0);
}

}  // namespace
}  // namespace hgr
