#include "common/dsu.hpp"

#include <gtest/gtest.h>

namespace hgr {
namespace {

TEST(DisjointSets, SingletonsInitially) {
  DisjointSets dsu(5);
  EXPECT_EQ(dsu.num_sets(), 5);
  for (Index i = 0; i < 5; ++i) EXPECT_EQ(dsu.find(i), i);
  EXPECT_FALSE(dsu.same(0, 1));
}

TEST(DisjointSets, UniteMerges) {
  DisjointSets dsu(4);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_TRUE(dsu.same(0, 1));
  EXPECT_EQ(dsu.num_sets(), 3);
  EXPECT_FALSE(dsu.unite(1, 0));  // already together
}

TEST(DisjointSets, TransitiveUnion) {
  DisjointSets dsu(6);
  dsu.unite(0, 1);
  dsu.unite(2, 3);
  dsu.unite(1, 2);
  EXPECT_TRUE(dsu.same(0, 3));
  EXPECT_FALSE(dsu.same(0, 4));
  EXPECT_EQ(dsu.set_size(3), 4);
  EXPECT_EQ(dsu.set_size(5), 1);
}

TEST(DisjointSets, ChainCollapsesToOneSet) {
  DisjointSets dsu(100);
  for (Index i = 0; i + 1 < 100; ++i) dsu.unite(i, i + 1);
  EXPECT_EQ(dsu.num_sets(), 1);
  EXPECT_EQ(dsu.set_size(0), 100);
  EXPECT_TRUE(dsu.same(0, 99));
}

}  // namespace
}  // namespace hgr
