#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace hgr {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.below(17);
    EXPECT_LT(x, 17u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto x = rng.range(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= x == -3;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, RandomPermutationIsPermutation) {
  Rng rng(19);
  const auto perm = random_permutation(50, rng);
  std::set<std::int32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(Rng, DeriveSeedIsDeterministicAndStreamSeparated) {
  EXPECT_EQ(derive_seed(42, 0), derive_seed(42, 0));
  EXPECT_NE(derive_seed(42, 0), derive_seed(42, 1));
  EXPECT_NE(derive_seed(42, 0), derive_seed(43, 0));
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 1;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace hgr
