#include "common/bucket_pq.hpp"

#include <gtest/gtest.h>

namespace hgr {
namespace {

TEST(BucketPQ, StartsEmpty) {
  BucketPQ pq(10, 5);
  EXPECT_TRUE(pq.empty());
  EXPECT_EQ(pq.size(), 0);
  EXPECT_FALSE(pq.contains(3));
}

TEST(BucketPQ, InsertPopMax) {
  BucketPQ pq(5, 10);
  pq.insert(0, 3);
  pq.insert(1, -2);
  pq.insert(2, 7);
  EXPECT_EQ(pq.top(), 2);
  EXPECT_EQ(pq.top_gain(), 7);
  EXPECT_EQ(pq.pop(), 2);
  EXPECT_EQ(pq.pop(), 0);
  EXPECT_EQ(pq.pop(), 1);
  EXPECT_TRUE(pq.empty());
}

TEST(BucketPQ, LifoWithinBucket) {
  BucketPQ pq(4, 3);
  pq.insert(0, 2);
  pq.insert(1, 2);
  pq.insert(2, 2);
  // Most recently inserted in the same bucket pops first (FM convention).
  EXPECT_EQ(pq.pop(), 2);
  EXPECT_EQ(pq.pop(), 1);
  EXPECT_EQ(pq.pop(), 0);
}

TEST(BucketPQ, AdjustMovesItem) {
  BucketPQ pq(3, 10);
  pq.insert(0, 1);
  pq.insert(1, 2);
  pq.adjust(0, 9);
  EXPECT_EQ(pq.top(), 0);
  EXPECT_EQ(pq.gain(0), 9);
  pq.adjust(0, -9);
  EXPECT_EQ(pq.top(), 1);
}

TEST(BucketPQ, AdjustToSameGainKeepsItem) {
  BucketPQ pq(2, 4);
  pq.insert(0, 2);
  pq.adjust(0, 2);
  EXPECT_TRUE(pq.contains(0));
  EXPECT_EQ(pq.gain(0), 2);
}

TEST(BucketPQ, RemoveMiddleOfBucket) {
  BucketPQ pq(4, 2);
  pq.insert(0, 1);
  pq.insert(1, 1);
  pq.insert(2, 1);
  pq.remove(1);
  EXPECT_FALSE(pq.contains(1));
  EXPECT_EQ(pq.size(), 2);
  EXPECT_EQ(pq.pop(), 2);
  EXPECT_EQ(pq.pop(), 0);
}

TEST(BucketPQ, MaxGainSettlesDownAfterRemoval) {
  BucketPQ pq(3, 5);
  pq.insert(0, 5);
  pq.insert(1, -5);
  pq.remove(0);
  EXPECT_EQ(pq.top(), 1);
  EXPECT_EQ(pq.top_gain(), -5);
}

TEST(BucketPQ, ClearEmptiesEverything) {
  BucketPQ pq(4, 3);
  pq.insert(0, 1);
  pq.insert(3, -3);
  pq.clear();
  EXPECT_TRUE(pq.empty());
  EXPECT_FALSE(pq.contains(0));
  pq.insert(0, 2);  // usable after clear
  EXPECT_EQ(pq.top(), 0);
}

TEST(BucketPQ, BoundaryGains) {
  BucketPQ pq(2, 4);
  pq.insert(0, 4);
  pq.insert(1, -4);
  EXPECT_EQ(pq.top_gain(), 4);
  pq.remove(0);
  EXPECT_EQ(pq.top_gain(), -4);
}

}  // namespace
}  // namespace hgr
