// Workspace arena tests: take/give pooling semantics, the Borrowed
// null-workspace fallback, and — the property the arena must never break —
// that pooled scratch leaves kernel results bit-identical, verified by
// running the multilevel partitioner under paranoid validation with a
// reused arena.
#include "common/workspace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "check/check_level.hpp"
#include "common/thread_pool.hpp"
#include "metrics/cut.hpp"
#include "partition/partitioner.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::random_hypergraph;

TEST(Workspace, TakeAllocatesGiveRecycles) {
  Workspace ws;
  std::vector<int> v = ws.take<int>();
  EXPECT_TRUE(v.empty());
  v.resize(100);
  int* const data = v.data();
  ws.give(std::move(v));
  EXPECT_EQ(ws.pooled(), 1u);

  std::vector<int> again = ws.take<int>();
  EXPECT_TRUE(again.empty());           // cleared...
  EXPECT_GE(again.capacity(), 100u);    // ...but capacity survived
  EXPECT_EQ(again.data(), data);        // same allocation came back
  EXPECT_EQ(ws.pooled(), 0u);

  EXPECT_EQ(ws.stats().takes, 2u);
  EXPECT_EQ(ws.stats().allocations, 1u);
  EXPECT_EQ(ws.stats().reuses, 1u);
}

TEST(Workspace, DistinctTypesPoolSeparately) {
  Workspace ws;
  ws.give(std::vector<int>(10));
  ws.give(std::vector<double>(10));
  EXPECT_EQ(ws.pooled(), 2u);
  ws.take<int>();
  EXPECT_EQ(ws.pooled(), 1u);  // the double vector is still cached
  EXPECT_EQ(ws.stats().reuses, 1u);
}

TEST(Workspace, ClearDropsPooledCapacity) {
  Workspace ws;
  ws.give(std::vector<int>(10));
  ws.clear();
  EXPECT_EQ(ws.pooled(), 0u);
  ws.take<int>();
  EXPECT_EQ(ws.stats().allocations, 1u);  // nothing left to reuse
}

TEST(Workspace, BorrowedReturnsOnDestruction) {
  Workspace ws;
  {
    Borrowed<std::int32_t> b(&ws);
    b->push_back(7);
    EXPECT_EQ(b[0], 7);
    EXPECT_EQ(ws.pooled(), 0u);
  }
  EXPECT_EQ(ws.pooled(), 1u);
}

TEST(Workspace, BorrowedNullWorkspaceFallsBackToLocal) {
  Borrowed<std::int32_t> b(nullptr);
  b->assign(5, 3);
  EXPECT_EQ(b.get().size(), 5u);
  EXPECT_EQ(b[4], 3);
  // Destruction must not touch any pool — just let the local vector die.
}

TEST(Workspace, ReuseAcrossLevelLoopsUnderParanoidValidation) {
  // Two multilevel runs through one arena, with every paranoid validator
  // on: stale scratch contents leaking between levels (or between runs)
  // would either trip a validator or change the result.
  const Hypergraph h = random_hypergraph(300, 600, 6, 3, 11);
  PartitionConfig cfg;
  cfg.num_parts = 4;
  cfg.epsilon = 0.1;
  cfg.check_level = check::CheckLevel::kParanoid;

  const Partition baseline = direct_kway_partition(h, cfg, nullptr);

  Workspace ws;
  const Partition first = direct_kway_partition(h, cfg, &ws);
  const std::uint64_t allocations_first = ws.stats().allocations;
  EXPECT_GT(ws.stats().reuses, 0u);  // levels share scratch within a run

  const Partition second = direct_kway_partition(h, cfg, &ws);
  // The second run draws nearly everything from the pool. (A handful of
  // fresh allocations is legal — e.g. a vector that grew on a path not
  // taken before — but the steady state must dominate.)
  EXPECT_LT(ws.stats().allocations - allocations_first,
            allocations_first / 2 + 1);

  EXPECT_EQ(baseline.assignment, first.assignment);
  EXPECT_EQ(baseline.assignment, second.assignment);
  EXPECT_EQ(connectivity_cut(h, baseline), connectivity_cut(h, first));
}

TEST(Workspace, ForThreadZeroIsTheArenaItself) {
  Workspace ws;
  EXPECT_EQ(&ws.for_thread(0), &ws);
  // No pool attached by default.
  EXPECT_EQ(ws.pool(), nullptr);
}

TEST(Workspace, ReserveThreadsCreatesStableSubArenas) {
  Workspace ws;
  ws.reserve_threads(3);
  Workspace& t1 = ws.for_thread(1);
  Workspace& t2 = ws.for_thread(2);
  EXPECT_NE(&t1, &ws);
  EXPECT_NE(&t2, &ws);
  EXPECT_NE(&t1, &t2);
  // Idempotent and growing-only: re-reserving keeps the same sub-arenas
  // (and the capacity they pooled).
  t1.give(std::vector<int>(64));
  ws.reserve_threads(3);
  ws.reserve_threads(2);
  EXPECT_EQ(&ws.for_thread(1), &t1);
  EXPECT_EQ(t1.pooled(), 1u);
  // Sub-arena pools are independent of the parent's.
  EXPECT_EQ(ws.pooled(), 0u);
  std::vector<int> v = t1.take<int>();
  EXPECT_GE(v.capacity(), 64u);
  EXPECT_EQ(t1.stats().reuses, 1u);
}

TEST(Workspace, SubArenasReuseAcrossParallelSections) {
  // Two parallel sections through the same arena: the second section's
  // takes must be served from capacity pooled by the first, per thread.
  ThreadPool pool(2);
  Workspace ws;
  ws.set_pool(&pool);
  EXPECT_EQ(ws.pool(), &pool);
  ws.reserve_threads(pool.num_threads());
  for (int section = 0; section < 2; ++section) {
    pool.run([&](int t) {
      Workspace& tws = ws.for_thread(t);
      std::vector<std::int32_t> scratch = tws.take<std::int32_t>();
      scratch.resize(1000);
      tws.give(std::move(scratch));
    });
  }
  EXPECT_EQ(ws.stats().takes, 2u);
  EXPECT_EQ(ws.stats().reuses, 1u);
  EXPECT_EQ(ws.for_thread(1).stats().takes, 2u);
  EXPECT_EQ(ws.for_thread(1).stats().reuses, 1u);
}

TEST(Workspace, ThreadedPartitionReuseUnderParanoidValidation) {
  // The thread-parallel twin of ReuseAcrossLevelLoopsUnderParanoidValidation:
  // two multilevel runs through one arena carrying a two-thread pool, every
  // paranoid validator on. Stale per-thread scratch leaking between rounds
  // or runs would trip a validator or change the result — and the result
  // must be bit-identical to the serial, arena-free baseline.
  const Hypergraph h = random_hypergraph(300, 600, 6, 3, 11);
  PartitionConfig cfg;
  cfg.num_parts = 4;
  cfg.epsilon = 0.1;
  cfg.check_level = check::CheckLevel::kParanoid;

  const Partition baseline = direct_kway_partition(h, cfg, nullptr);

  ThreadPool pool(2);
  Workspace ws;
  ws.set_pool(&pool);
  const Partition first = direct_kway_partition(h, cfg, &ws);
  const std::uint64_t allocations_first = ws.stats().allocations;
  const Partition second = direct_kway_partition(h, cfg, &ws);
  EXPECT_LT(ws.stats().allocations - allocations_first,
            allocations_first / 2 + 1);

  EXPECT_EQ(baseline.assignment, first.assignment);
  EXPECT_EQ(baseline.assignment, second.assignment);
}

TEST(Workspace, ReuseAcrossVcyclesUnderParanoidValidation) {
  const Hypergraph h = random_hypergraph(200, 400, 5, 3, 23);
  PartitionConfig cfg;
  cfg.num_parts = 3;
  cfg.epsilon = 0.2;  // loose: this test is about scratch reuse, not quality
  cfg.kway_method = KwayMethod::kDirectKway;
  cfg.num_vcycles = 2;
  cfg.check_level = check::CheckLevel::kParanoid;
  // partition_hypergraph owns an internal arena threaded through
  // bisection, refinement, and both V-cycles; paranoid validators confirm
  // no cross-level contamination, and a second call must be identical.
  const Partition a = partition_hypergraph(h, cfg);
  const Partition b = partition_hypergraph(h, cfg);
  EXPECT_EQ(a.assignment, b.assignment);
}

}  // namespace
}  // namespace hgr
