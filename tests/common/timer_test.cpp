#include "common/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace hgr {
namespace {

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double s = t.seconds();
  EXPECT_GE(s, 0.009);
  EXPECT_LT(s, 5.0);
  EXPECT_NEAR(t.milliseconds(), t.seconds() * 1e3, 1.0);
}

TEST(WallTimer, ResetRestartsClock) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.reset();
  EXPECT_LT(t.seconds(), 0.005);
}

TEST(FormatSeconds, PicksUnits) {
  EXPECT_EQ(format_seconds(0.0000005), "0.5 us");
  EXPECT_EQ(format_seconds(0.0123), "12.30 ms");
  EXPECT_EQ(format_seconds(2.5), "2.500 s");
}

}  // namespace
}  // namespace hgr
