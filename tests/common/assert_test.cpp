#include "common/assert.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hgr {
namespace {

TEST(Assert, PassingAssertionsAreSilent) {
  ScopedAssertHandler guard;
  HGR_ASSERT(1 + 1 == 2);
  HGR_ASSERT_MSG(true, "never shown");
  HGR_ASSERT_FMT(3 > 2, "never shown %d", 42);
}

TEST(Assert, ThrowingHandlerConvertsFailureToException) {
  ScopedAssertHandler guard;
  EXPECT_THROW(HGR_ASSERT(false), AssertionError);
  EXPECT_THROW(HGR_ASSERT_MSG(false, "context"), AssertionError);
}

TEST(Assert, MessageCarriesExpressionAndLocation) {
  ScopedAssertHandler guard;
  try {
    HGR_ASSERT_MSG(2 + 2 == 5, "arithmetic is broken");
    FAIL() << "assertion did not fire";
  } catch (const AssertionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("assert_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("arithmetic is broken"), std::string::npos) << what;
  }
}

TEST(Assert, FmtMessageCarriesOperandValues) {
  ScopedAssertHandler guard;
  const int vertex = 17;
  const long long weight = -3;
  try {
    HGR_ASSERT_FMT(weight >= 0, "vertex %d has weight %lld", vertex, weight);
    FAIL() << "assertion did not fire";
  } catch (const AssertionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("weight >= 0"), std::string::npos) << what;
    EXPECT_NE(what.find("vertex 17"), std::string::npos) << what;
    EXPECT_NE(what.find("-3"), std::string::npos) << what;
  }
}

TEST(Assert, FmtWithNoVarargsCompilesAndFires) {
  ScopedAssertHandler guard;
  try {
    HGR_ASSERT_FMT(false, "plain message, no arguments");
    FAIL() << "assertion did not fire";
  } catch (const AssertionError& e) {
    EXPECT_NE(std::string(e.what()).find("plain message, no arguments"),
              std::string::npos);
  }
}

TEST(Assert, ScopedHandlerRestoresPrevious) {
  // Install a throwing scope inside a throwing scope; after both unwind the
  // default (abort) handler is back. We can't test the abort itself without
  // a death test, but we can verify the inner scope restored the outer one:
  // the assertion must still throw after the inner guard is gone.
  ScopedAssertHandler outer;
  {
    ScopedAssertHandler inner;
    EXPECT_THROW(HGR_ASSERT(false), AssertionError);
  }
  EXPECT_THROW(HGR_ASSERT(false), AssertionError);
}

}  // namespace
}  // namespace hgr
