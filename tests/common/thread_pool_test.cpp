// ThreadPool tests: the static chunk map (the determinism-critical piece),
// the caller-participates-as-thread-0 contract, exception capture across
// the region join, and reuse of one pool over many regions.
#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace hgr {
namespace {

TEST(ThreadPool, ChunkCoversRangeExactlyOnce) {
  for (const Index n : {0, 1, 2, 7, 8, 9, 100}) {
    for (const int T : {1, 2, 3, 4, 8}) {
      std::vector<int> hits(static_cast<std::size_t>(n), 0);
      Index prev_end = 0;
      for (int t = 0; t < T; ++t) {
        const auto [begin, end] = ThreadPool::chunk(n, t, T);
        EXPECT_EQ(begin, prev_end) << "n=" << n << " T=" << T << " t=" << t;
        EXPECT_LE(begin, end);
        prev_end = end;
        for (Index i = begin; i < end; ++i)
          ++hits[static_cast<std::size_t>(i)];
      }
      EXPECT_EQ(prev_end, n);
      for (const int h : hits) EXPECT_EQ(h, 1);
    }
  }
}

TEST(ThreadPool, ChunkFrontLoadsTheRemainder) {
  // 10 over 4 threads: sizes 3,3,2,2 — the first n % T chunks get the
  // extra element, so the map is stable under any scheduling order.
  EXPECT_EQ(ThreadPool::chunk(10, 0, 4), (std::pair<Index, Index>{0, 3}));
  EXPECT_EQ(ThreadPool::chunk(10, 1, 4), (std::pair<Index, Index>{3, 6}));
  EXPECT_EQ(ThreadPool::chunk(10, 2, 4), (std::pair<Index, Index>{6, 8}));
  EXPECT_EQ(ThreadPool::chunk(10, 3, 4), (std::pair<Index, Index>{8, 10}));
}

TEST(ThreadPool, RunVisitsEveryThreadIndexOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::atomic<int>> visits(4);
  std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> caller_ran_zero{false};
  pool.run([&](int t) {
    ++visits[static_cast<std::size_t>(t)];
    if (t == 0 && std::this_thread::get_id() == caller)
      caller_ran_zero = true;
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  EXPECT_TRUE(caller_ran_zero);  // the caller executes thread 0 itself
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  pool.run([&](int t) {
    EXPECT_EQ(t, 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ThreadCountClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
}

TEST(ThreadPool, ParallelChunksSumsARange) {
  ThreadPool pool(3);
  const Index n = 1000;
  std::vector<std::int64_t> partial(3, 0);
  pool.parallel_chunks(n, [&](int t, Index begin, Index end) {
    for (Index i = begin; i < end; ++i)
      partial[static_cast<std::size_t>(t)] += i;
  });
  EXPECT_EQ(std::accumulate(partial.begin(), partial.end(), std::int64_t{0}),
            static_cast<std::int64_t>(n) * (n - 1) / 2);
}

TEST(ThreadPool, ParallelChunksSkipsEmptyChunks) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> calls(8);
  pool.parallel_chunks(3, [&](int t, Index begin, Index end) {
    EXPECT_LT(begin, end);  // empty chunks never reach the callback
    ++calls[static_cast<std::size_t>(t)];
  });
  int total = 0;
  for (const auto& c : calls) total += c.load();
  EXPECT_EQ(total, 3);  // n=3 over 8 threads: exactly 3 non-empty chunks
}

TEST(ThreadPool, ParallelChunksEmptyRangeIsANoop) {
  ThreadPool pool(2);
  pool.parallel_chunks(0, [&](int, Index, Index) { FAIL(); });
}

TEST(ThreadPool, WorkerExceptionRethrownOnCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run([](int t) {
                 if (t == 3) throw std::runtime_error("worker failed");
               }),
               std::runtime_error);
  // The pool must stay usable after an exception unwound a region.
  std::atomic<int> ok{0};
  pool.run([&](int) { ++ok; });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPool, CallerExceptionStillJoinsTheRegion) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(4);
  EXPECT_THROW(pool.run([&](int t) {
                 ++visits[static_cast<std::size_t>(t)];
                 if (t == 0) throw std::runtime_error("caller failed");
               }),
               std::runtime_error);
  // Every worker finished its task before the rethrow.
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyRegions) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  for (int round = 0; round < 50; ++round)
    pool.run([&](int t) { total += t; });
  EXPECT_EQ(total.load(), 50 * (0 + 1 + 2 + 3));
}

TEST(ThreadPool, FreeHelperRunsInlineWithoutAPool) {
  int calls = 0;
  parallel_chunks(nullptr, 10, [&](int t, Index begin, Index end) {
    EXPECT_EQ(t, 0);
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 10);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  parallel_chunks(nullptr, 0, [&](int, Index, Index) { FAIL(); });
  EXPECT_EQ(pool_threads(nullptr), 1);
}

TEST(ThreadPool, FreeHelperDispatchesThroughThePool) {
  ThreadPool pool(4);
  EXPECT_EQ(pool_threads(&pool), 4);
  std::vector<std::atomic<int>> calls(4);
  parallel_chunks(&pool, 100, [&](int t, Index, Index) {
    ++calls[static_cast<std::size_t>(t)];
  });
  for (const auto& c : calls) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, CountersTrackPoolsRegionsAndTasks) {
  obs::Registry reg;
  obs::ScopedRegistry scope(reg);
  {
    ThreadPool pool(3);
    pool.run([](int) {});
    pool.parallel_chunks(10, [](int, Index, Index) {});
  }
  EXPECT_EQ(reg.counter_value("tp.pools"), 1u);
  EXPECT_EQ(reg.counter_value("tp.regions"), 2u);
  EXPECT_EQ(reg.counter_value("tp.tasks"), 6u);  // 2 regions x 3 threads
}

}  // namespace
}  // namespace hgr
