#include "common/csr_utils.hpp"

#include <gtest/gtest.h>

namespace hgr {
namespace {

TEST(CsrUtils, CountsToOffsets) {
  const std::vector<Index> offsets = counts_to_offsets({3, 0, 2, 1});
  EXPECT_EQ(offsets, (std::vector<Index>{0, 3, 3, 5, 6}));
}

TEST(CsrUtils, EmptyCounts) {
  const std::vector<Index> offsets = counts_to_offsets({});
  EXPECT_EQ(offsets, (std::vector<Index>{0}));
}

TEST(CsrUtils, CsrRowView) {
  const std::vector<Index> offsets{0, 2, 2, 5};
  const std::vector<Index> values{10, 11, 20, 21, 22};
  const auto row0 = csr_row(offsets, values, 0);
  ASSERT_EQ(row0.size(), 2u);
  EXPECT_EQ(row0[0], 10);
  const auto row1 = csr_row(offsets, values, 1);
  EXPECT_TRUE(row1.empty());
  const auto row2 = csr_row(offsets, values, 2);
  ASSERT_EQ(row2.size(), 3u);
  EXPECT_EQ(row2[2], 22);
}

}  // namespace
}  // namespace hgr
