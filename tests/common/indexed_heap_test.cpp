#include "common/indexed_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"

namespace hgr {
namespace {

TEST(IndexedMaxHeap, StartsEmpty) {
  IndexedMaxHeap heap(5);
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0);
  EXPECT_FALSE(heap.contains(0));
}

TEST(IndexedMaxHeap, PopsInDescendingKeyOrder) {
  IndexedMaxHeap heap(6);
  heap.insert(0, 5);
  heap.insert(1, -1);
  heap.insert(2, 42);
  heap.insert(3, 0);
  heap.insert(4, 42);  // duplicate key allowed
  std::vector<Weight> keys;
  while (!heap.empty()) {
    keys.push_back(heap.top_key());
    heap.pop();
  }
  EXPECT_TRUE(std::is_sorted(keys.rbegin(), keys.rend()));
  EXPECT_EQ(keys.front(), 42);
  EXPECT_EQ(keys.back(), -1);
}

TEST(IndexedMaxHeap, AdjustUpAndDown) {
  IndexedMaxHeap heap(3);
  heap.insert(0, 1);
  heap.insert(1, 2);
  heap.insert(2, 3);
  heap.adjust(0, 10);
  EXPECT_EQ(heap.top(), 0);
  heap.adjust(0, -10);
  EXPECT_EQ(heap.top(), 2);
  EXPECT_EQ(heap.key(0), -10);
}

TEST(IndexedMaxHeap, RemoveArbitrary) {
  IndexedMaxHeap heap(4);
  heap.insert(0, 4);
  heap.insert(1, 3);
  heap.insert(2, 2);
  heap.insert(3, 1);
  heap.remove(1);
  EXPECT_FALSE(heap.contains(1));
  EXPECT_EQ(heap.pop(), 0);
  EXPECT_EQ(heap.pop(), 2);
  EXPECT_EQ(heap.pop(), 3);
}

TEST(IndexedMaxHeap, InsertOrAdjust) {
  IndexedMaxHeap heap(2);
  heap.insert_or_adjust(0, 1);
  heap.insert_or_adjust(0, 5);
  EXPECT_EQ(heap.size(), 1);
  EXPECT_EQ(heap.key(0), 5);
}

TEST(IndexedMaxHeap, ClearThenReuse) {
  IndexedMaxHeap heap(3);
  heap.insert(0, 1);
  heap.insert(2, 9);
  heap.clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_FALSE(heap.contains(2));
  heap.insert(2, 1);
  EXPECT_EQ(heap.top(), 2);
}

TEST(IndexedMaxHeap, RandomizedPopOrderMatchesSortedKeys) {
  Rng rng(654);
  const Index n = 300;
  IndexedMaxHeap heap(n);
  std::vector<Weight> keys(n);
  for (Index i = 0; i < n; ++i) {
    keys[static_cast<std::size_t>(i)] = rng.range(-50, 50);
    heap.insert(i, keys[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < 1000; ++i) {
    const auto item = static_cast<Index>(rng.below(n));
    keys[static_cast<std::size_t>(item)] = rng.range(-50, 50);
    heap.adjust(item, keys[static_cast<std::size_t>(item)]);
  }
  std::vector<Weight> popped;
  while (!heap.empty()) {
    const Index item = heap.top();
    EXPECT_EQ(heap.top_key(), keys[static_cast<std::size_t>(item)]);
    popped.push_back(heap.top_key());
    heap.pop();
  }
  std::vector<Weight> expected = keys;
  std::sort(expected.rbegin(), expected.rend());
  EXPECT_EQ(popped, expected);
}

}  // namespace
}  // namespace hgr
