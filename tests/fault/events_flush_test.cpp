// Regression: exporting the per-rank event timeline on an exception or
// degradation path must yield a well-formed Chrome trace. A mid-run export
// (the catch-block or SIGUSR1 dump) sees begin events whose scopes are
// still open; chrome_trace_json must synthesize the matching end events
// ("flushedSpans") instead of emitting an unbalanced timeline, and the
// degradation path must leave its instant markers in the capture.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/repartitioner.hpp"
#include "fault/fault_plan.hpp"
#include "hypergraph/convert.hpp"
#include "obs/events.hpp"
#include "workload/generators.hpp"

namespace hgr {
namespace {

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(Chaos, DegradedRunKeepsMidRunTimelineExportBalanced) {
  obs::reset_events();
  obs::set_event_ring_capacity(4096);
  obs::set_events_enabled(true);

  const Hypergraph h = graph_to_hypergraph(make_grid3d(5, 5, 5, false));
  Partition old_p(4, h.num_vertices());
  for (Index v = 0; v < h.num_vertices(); ++v)
    old_p[VertexId{v}] = PartId{v % 4};
  RepartitionerConfig cfg;
  cfg.alpha = 10;
  cfg.partition.num_parts = 4;
  cfg.partition.epsilon = 0.1;
  cfg.partition.seed = 7;
  cfg.num_ranks = 2;
  cfg.deadlock_timeout = 0.25;
  cfg.max_retries = 1;
  cfg.partition.fault_plan = std::make_shared<const fault::FaultPlan>(
      fault::FaultPlan::parse("throw@any:count=0"));

  std::string json;
  {
    // Deliberately export while this span is still open, exactly like a
    // crash-path dump taken before the stack unwinds.
    obs::EventSpan outer("chaos.run", "test");
    const GuardedRepartitionResult guarded = run_repartition_with_policy(
        RepartAlgorithm::kHypergraphRepart, h, Graph{}, old_p, cfg);
    EXPECT_TRUE(guarded.degraded);
    json = obs::chrome_trace_json();
  }
  obs::set_events_enabled(false);
  obs::reset_events();

  // The degradation path left its markers on the timeline.
  EXPECT_NE(json.find("epoch.repart_failure"), std::string::npos);
  EXPECT_NE(json.find("epoch.degraded"), std::string::npos);
  // Every begin has an end — the open span was closed synthetically.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""),
            count_occurrences(json, "\"ph\":\"E\""));
  const std::size_t flushed = json.find("\"flushedSpans\":");
  ASSERT_NE(flushed, std::string::npos);
  EXPECT_NE(json.find("\"flushedSpans\":0", flushed), flushed)
      << "the open chaos.run span must be counted as flushed";
}

}  // namespace
}  // namespace hgr
