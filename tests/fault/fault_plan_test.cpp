// Unit tests for the deterministic fault plan: spec parsing, the
// per-(rule, rank) match-counter windows, and the seeded probability coin.
#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hgr::fault {
namespace {

TEST(FaultPlan, ParseSingleRuleDefaults) {
  const FaultPlan plan = FaultPlan::parse("throw@alltoallv");
  ASSERT_EQ(plan.rules().size(), 1u);
  const FaultRule& r = plan.rules()[0];
  EXPECT_EQ(r.kind, FaultKind::kThrow);
  EXPECT_EQ(r.site, FaultSite::kAlltoallv);
  EXPECT_EQ(r.rank, -1);
  EXPECT_EQ(r.after, 1u);
  EXPECT_EQ(r.count, 1u);
  EXPECT_DOUBLE_EQ(r.probability, 1.0);
}

TEST(FaultPlan, ParseFullSpec) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=42;stall@barrier:rank=1,after=3;"
      "delay@send:ms=2.5,count=0,prob=0.25");
  EXPECT_EQ(plan.seed(), 42u);
  ASSERT_EQ(plan.rules().size(), 2u);
  EXPECT_EQ(plan.rules()[0].kind, FaultKind::kStall);
  EXPECT_EQ(plan.rules()[0].site, FaultSite::kBarrier);
  EXPECT_EQ(plan.rules()[0].rank, 1);
  EXPECT_EQ(plan.rules()[0].after, 3u);
  EXPECT_EQ(plan.rules()[1].kind, FaultKind::kDelay);
  EXPECT_EQ(plan.rules()[1].site, FaultSite::kSend);
  EXPECT_DOUBLE_EQ(plan.rules()[1].delay_ms, 2.5);
  EXPECT_EQ(plan.rules()[1].count, 0u);
  EXPECT_DOUBLE_EQ(plan.rules()[1].probability, 0.25);
}

TEST(FaultPlan, ToStringRoundTrips) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=9;throw@allreduce:rank=2,after=5,count=4;delay@any:ms=1.5");
  const FaultPlan again = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(again.seed(), plan.seed());
  ASSERT_EQ(again.rules().size(), plan.rules().size());
  for (std::size_t i = 0; i < plan.rules().size(); ++i) {
    EXPECT_EQ(again.rules()[i].kind, plan.rules()[i].kind);
    EXPECT_EQ(again.rules()[i].site, plan.rules()[i].site);
    EXPECT_EQ(again.rules()[i].rank, plan.rules()[i].rank);
    EXPECT_EQ(again.rules()[i].after, plan.rules()[i].after);
    EXPECT_EQ(again.rules()[i].count, plan.rules()[i].count);
    EXPECT_DOUBLE_EQ(again.rules()[i].delay_ms, plan.rules()[i].delay_ms);
    EXPECT_DOUBLE_EQ(again.rules()[i].probability,
                     plan.rules()[i].probability);
  }
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  const std::vector<std::string> bad = {
      "",                              // no rules
      "seed=5",                        // seed but no rules
      "explode@barrier",               // unknown kind
      "throw@warpdrive",               // unknown site
      "throwbarrier",                  // lacks kind@site
      "throw@barrier:rank",            // option lacks key=value
      "throw@barrier:color=red",       // unknown option
      "throw@barrier:rank=notanint",   // bad value
      "throw@barrier:after=0",         // after is 1-based
      "throw@barrier:rank=4096",       // rank out of range
      "throw@barrier:prob=1.5",        // prob out of range
      "delay@send:ms=-1",              // negative delay
      "seed=bogus;throw@barrier",      // bad seed
  };
  for (const std::string& spec : bad)
    EXPECT_THROW(FaultPlan::parse(spec), std::invalid_argument) << spec;
}

TEST(FaultPlan, AfterCountWindow) {
  // after=2,count=2: matches 2 and 3 fire, 1 and 4+ do not.
  const FaultPlan plan = FaultPlan::parse("throw@barrier:after=2,count=2");
  EXPECT_FALSE(plan.check(FaultSite::kBarrier, 0).has_value());
  EXPECT_TRUE(plan.check(FaultSite::kBarrier, 0).has_value());
  EXPECT_TRUE(plan.check(FaultSite::kBarrier, 0).has_value());
  EXPECT_FALSE(plan.check(FaultSite::kBarrier, 0).has_value());
  EXPECT_FALSE(plan.check(FaultSite::kBarrier, 0).has_value());
}

TEST(FaultPlan, CountZeroFiresForever) {
  const FaultPlan plan = FaultPlan::parse("throw@barrier:count=0");
  for (int i = 0; i < 10; ++i)
    EXPECT_TRUE(plan.check(FaultSite::kBarrier, 3).has_value());
}

TEST(FaultPlan, RankFilterAndPerRankCounters) {
  const FaultPlan plan = FaultPlan::parse("throw@barrier:rank=1");
  // Rank 0 never matches and never consumes the rule's window.
  EXPECT_FALSE(plan.check(FaultSite::kBarrier, 0).has_value());
  EXPECT_TRUE(plan.check(FaultSite::kBarrier, 1).has_value());
  EXPECT_FALSE(plan.check(FaultSite::kBarrier, 1).has_value());

  // Wildcard rank: each rank has its own counter, so each rank's second
  // call fires regardless of interleaving.
  const FaultPlan any = FaultPlan::parse("throw@barrier:after=2");
  EXPECT_FALSE(any.check(FaultSite::kBarrier, 0).has_value());
  EXPECT_FALSE(any.check(FaultSite::kBarrier, 1).has_value());
  EXPECT_TRUE(any.check(FaultSite::kBarrier, 0).has_value());
  EXPECT_TRUE(any.check(FaultSite::kBarrier, 1).has_value());
}

TEST(FaultPlan, SiteFilterAndAny) {
  const FaultPlan plan = FaultPlan::parse("throw@allgather:count=0");
  EXPECT_FALSE(plan.check(FaultSite::kBarrier, 0).has_value());
  EXPECT_FALSE(plan.check(FaultSite::kRecv, 0).has_value());
  EXPECT_TRUE(plan.check(FaultSite::kAllgather, 0).has_value());

  const FaultPlan any = FaultPlan::parse("delay@any:count=0");
  for (const FaultSite s :
       {FaultSite::kBarrier, FaultSite::kAllgather, FaultSite::kAllreduce,
        FaultSite::kBcast, FaultSite::kAlltoallv, FaultSite::kSend,
        FaultSite::kRecv})
    EXPECT_TRUE(any.check(s, 0).has_value()) << to_string(s);
}

TEST(FaultPlan, ResetRestartsTheSchedule) {
  const FaultPlan plan = FaultPlan::parse("throw@barrier:after=1,count=1");
  EXPECT_TRUE(plan.check(FaultSite::kBarrier, 0).has_value());
  EXPECT_FALSE(plan.check(FaultSite::kBarrier, 0).has_value());
  plan.reset();
  EXPECT_TRUE(plan.check(FaultSite::kBarrier, 0).has_value());
}

TEST(FaultPlan, ProbabilityIsSeedDeterministic) {
  // The coin is a pure function of (seed, rule, rank, match index): two
  // replays of the same plan fire at exactly the same match indices.
  const FaultPlan plan =
      FaultPlan::parse("seed=123;throw@barrier:count=0,prob=0.5");
  std::vector<bool> first, second;
  for (int i = 0; i < 200; ++i)
    first.push_back(plan.check(FaultSite::kBarrier, 0).has_value());
  plan.reset();
  for (int i = 0; i < 200; ++i)
    second.push_back(plan.check(FaultSite::kBarrier, 0).has_value());
  EXPECT_EQ(first, second);
  // And at p=0.5 over 200 trials, some fire and some do not.
  int fired = 0;
  for (const bool b : first) fired += b ? 1 : 0;
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 200);

  // A different seed gives a different (but equally reproducible) pattern.
  const FaultPlan other =
      FaultPlan::parse("seed=124;throw@barrier:count=0,prob=0.5");
  std::vector<bool> third;
  for (int i = 0; i < 200; ++i)
    third.push_back(other.check(FaultSite::kBarrier, 0).has_value());
  EXPECT_NE(first, third);
}

TEST(FaultPlan, DecisionCarriesKindAndDiagnosis) {
  const FaultPlan plan = FaultPlan::parse("delay@send:ms=7.5,count=0");
  const std::optional<FaultDecision> d = plan.check(FaultSite::kSend, 2);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->kind, FaultKind::kDelay);
  EXPECT_DOUBLE_EQ(d->delay_ms, 7.5);
  EXPECT_NE(d->description.find("delay@send"), std::string::npos)
      << d->description;
  EXPECT_NE(d->description.find("rank=2"), std::string::npos)
      << d->description;
}

TEST(FaultPlan, FirstMatchingRuleWins) {
  const FaultPlan plan =
      FaultPlan::parse("delay@any:ms=1,count=0;throw@any:count=0");
  const std::optional<FaultDecision> d = plan.check(FaultSite::kBarrier, 0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->kind, FaultKind::kDelay);
}

}  // namespace
}  // namespace hgr::fault
