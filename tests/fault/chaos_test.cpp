// Chaos suite: deterministic fault injection driving the comm runtime's
// abort/watchdog paths and the epoch driver's graceful-degradation policy.
// Every scenario that used to require a hand-written misbehaving rank is
// expressed as a FaultPlan here; all tests use explicit short watchdog
// timeouts so a regression fails fast instead of hanging CI.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/epoch_driver.hpp"
#include "core/repartitioner.hpp"
#include "fault/fault_plan.hpp"
#include "hypergraph/convert.hpp"
#include "parallel/comm.hpp"
#include "parallel/dist_app.hpp"
#include "workload/generators.hpp"
#include "workload/perturb.hpp"

namespace hgr {
namespace {

std::shared_ptr<const fault::FaultPlan> plan(const std::string& spec) {
  return std::make_shared<const fault::FaultPlan>(fault::FaultPlan::parse(spec));
}

TEST(Chaos, InjectedStallTripsWatchdogWithDiagnosis) {
  Comm comm(3);
  comm.set_deadlock_timeout(0.2);
  comm.set_fault_plan(plan("stall@barrier:rank=1"));
  try {
    comm.run([](RankContext& ctx) { ctx.barrier(); });
    FAIL() << "stalled run returned";
  } catch (const CommDeadlock& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 1: stalled (injected fault)"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("rank 0: barrier"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 2: barrier"), std::string::npos) << what;
  }
}

TEST(Chaos, InjectedThrowMidCollectivePropagatesToCaller) {
  // Rank 1 throws FaultInjected on its second allreduce; the other ranks
  // block in the collective, observe the abort, and Comm::run rethrows the
  // injected fault (the lowest-rank original exception).
  Comm comm(3);
  comm.set_deadlock_timeout(2.0);
  comm.set_fault_plan(plan("throw@allreduce:rank=1,after=2"));
  try {
    comm.run([](RankContext& ctx) {
      (void)ctx.allreduce_sum<int>(1);
      (void)ctx.allreduce_sum<int>(2);
    });
    FAIL() << "faulted run returned";
  } catch (const fault::FaultInjected& e) {
    EXPECT_NE(std::string(e.what()).find("throw@allreduce rank=1 match=2"),
              std::string::npos)
        << e.what();
  }
}

TEST(Chaos, ThrowDuringFlatExchangeFillPassAbortsPeers) {
  // The regression the abort path exists for: user code dies *between* the
  // count alltoallv and the payload alltoallv of a flat exchange. Peers
  // already inside the payload collective must observe CommAborted and the
  // original exception must surface from run().
  Comm comm(3);
  comm.set_deadlock_timeout(2.0);
  std::atomic<int> peers_aborted{0};
  try {
    comm.run([&](RankContext& ctx) {
      try {
        FlatBuffer<std::int32_t> counts = ctx.make_buffer<std::int32_t>();
        for (int d = 0; d < ctx.size(); ++d) counts.count(d) = 1;
        counts.commit_counts();
        for (int d = 0; d < ctx.size(); ++d)
          counts.push(d, static_cast<std::int32_t>(ctx.rank()));
        (void)ctx.alltoallv(counts);
        if (ctx.rank() == 1)
          throw std::runtime_error("payload fill failed on rank 1");
        FlatBuffer<std::int64_t> payload = ctx.make_buffer<std::int64_t>();
        for (int d = 0; d < ctx.size(); ++d) payload.count(d) = 2;
        payload.commit_counts();
        for (int d = 0; d < ctx.size(); ++d) {
          payload.push(d, 10 * ctx.rank());
          payload.push(d, 10 * ctx.rank() + 1);
        }
        (void)ctx.alltoallv(payload);
      } catch (const CommAborted&) {
        peers_aborted.fetch_add(1);
        throw;
      }
    });
    FAIL() << "faulted run returned";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("payload fill failed on rank 1"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(peers_aborted.load(), 2);
}

TEST(Chaos, DelayFaultsPreserveCollectiveResults) {
  // Delays reorder thread interleavings but must not change any result:
  // run a halo exchange with and without a pervasive delay plan and
  // compare the checksums word for word.
  const Hypergraph h = graph_to_hypergraph(make_grid3d(4, 4, 3, false));
  Partition p(2, h.num_vertices());
  for (Index v = 0; v < h.num_vertices(); ++v) p[VertexId{v}] = PartId{v % 2};
  std::vector<std::int64_t> values(static_cast<std::size_t>(h.num_vertices()));
  for (Index v = 0; v < h.num_vertices(); ++v)
    values[static_cast<std::size_t>(v)] = 3 * v + 1;

  auto run_once = [&](std::shared_ptr<const fault::FaultPlan> fp) {
    Comm comm(2);
    comm.set_deadlock_timeout(5.0);
    comm.set_fault_plan(std::move(fp));
    HaloStats out;
    comm.run([&](RankContext& ctx) {
      const HaloStats stats = halo_exchange(ctx, h, p, values);
      if (ctx.rank() == 0) out = stats;
      ctx.barrier();
    });
    return out;
  };

  const HaloStats clean = run_once(nullptr);
  const HaloStats delayed =
      run_once(plan("seed=11;delay@any:ms=0.2,count=0,prob=0.5"));
  EXPECT_EQ(delayed.reduction_checksum, clean.reduction_checksum);
  EXPECT_EQ(delayed.words_sent, clean.words_sent);
}

TEST(Chaos, CommStaysReusableAfterInjectedFaults) {
  Comm comm(2);
  comm.set_deadlock_timeout(0.2);
  comm.set_fault_plan(plan("throw@barrier:rank=0"));
  EXPECT_THROW(comm.run([](RankContext& ctx) { ctx.barrier(); }),
               fault::FaultInjected);
  comm.set_fault_plan(plan("stall@barrier:rank=1"));
  EXPECT_THROW(comm.run([](RankContext& ctx) { ctx.barrier(); }),
               CommDeadlock);
  // Plan cleared: the same communicator completes a healthy run.
  comm.set_fault_plan(nullptr);
  int total = 0;
  comm.run([&](RankContext& ctx) {
    const int x = ctx.allreduce_sum<int>(1);
    if (ctx.rank() == 0) total = x;
  });
  EXPECT_EQ(total, 2);
}

// --- graceful degradation (run_repartition_with_policy / run_epochs) ---

RepartitionerConfig chaos_cfg(Index k, const std::string& fault_spec) {
  RepartitionerConfig cfg;
  cfg.alpha = 10;
  cfg.partition.num_parts = k;
  cfg.partition.epsilon = 0.1;
  cfg.partition.seed = 7;
  cfg.num_ranks = 2;
  cfg.deadlock_timeout = 0.25;
  cfg.max_retries = 1;
  if (!fault_spec.empty()) cfg.partition.fault_plan = plan(fault_spec);
  return cfg;
}

TEST(Chaos, RunEpochsSurvivesInjectedThrow) {
  // Every parallel attempt dies immediately, so each repartition epoch
  // retries then degrades to keeping the old partition — but the run
  // completes every epoch.
  StructuralPerturbScenario scenario(make_grid3d(6, 6, 6, false),
                                     StructuralPerturbOptions{}, 11);
  RepartitionerConfig cfg = chaos_cfg(4, "throw@any:count=0");
  const EpochRunSummary s =
      run_epochs(scenario, RepartAlgorithm::kHypergraphRepart, cfg, 4);
  ASSERT_EQ(s.epochs.size(), 4u);
  EXPECT_TRUE(s.epochs[0].is_static);
  EXPECT_FALSE(s.epochs[0].degraded);  // static bootstrap is serial
  for (std::size_t e = 1; e < s.epochs.size(); ++e) {
    EXPECT_FALSE(s.epochs[e].is_static);
    EXPECT_TRUE(s.epochs[e].degraded) << "epoch " << e + 1;
    EXPECT_EQ(s.epochs[e].retries, 1) << "epoch " << e + 1;
    // Kept-old fallback: zero migration, honest recomputed cut.
    EXPECT_EQ(s.epochs[e].num_migrated, 0);
    EXPECT_EQ(s.epochs[e].cost.migration_volume, 0);
    EXPECT_GT(s.epochs[e].cost.comm_volume, 0);
  }
}

TEST(Chaos, RunEpochsSurvivesInjectedDeadlock) {
  // A stalled rank wedges every attempt until the watchdog aborts it; the
  // epoch driver must absorb the CommDeadlock and degrade, not hang.
  StructuralPerturbScenario scenario(make_grid3d(5, 5, 5, false),
                                     StructuralPerturbOptions{}, 13);
  RepartitionerConfig cfg = chaos_cfg(4, "stall@any:rank=0,count=0");
  const EpochRunSummary s =
      run_epochs(scenario, RepartAlgorithm::kHypergraphRepart, cfg, 3);
  ASSERT_EQ(s.epochs.size(), 3u);
  for (std::size_t e = 1; e < s.epochs.size(); ++e) {
    EXPECT_TRUE(s.epochs[e].degraded) << "epoch " << e + 1;
    EXPECT_EQ(s.epochs[e].retries, 1) << "epoch " << e + 1;
    EXPECT_EQ(s.epochs[e].num_migrated, 0);
  }
}

TEST(Chaos, RetrySucceedsAfterTransientFault) {
  // One single-shot fault: the first parallel attempt of epoch 2 dies, the
  // retry is clean, and later epochs never see the (consumed) rule. The
  // plan's counters persist across per-attempt Comms — that is the point.
  StructuralPerturbScenario scenario(make_grid3d(6, 6, 6, false),
                                     StructuralPerturbOptions{}, 17);
  RepartitionerConfig cfg = chaos_cfg(4, "throw@any:rank=0,after=1,count=1");
  const EpochRunSummary s =
      run_epochs(scenario, RepartAlgorithm::kHypergraphRepart, cfg, 3);
  ASSERT_EQ(s.epochs.size(), 3u);
  EXPECT_FALSE(s.epochs[1].degraded);
  EXPECT_EQ(s.epochs[1].retries, 1);
  EXPECT_FALSE(s.epochs[2].degraded);
  EXPECT_EQ(s.epochs[2].retries, 0);
  // The successful retry did real repartitioning work.
  EXPECT_GT(s.mean_comm_volume(), 0.0);
}

TEST(Chaos, ScratchFallbackProducesFreshPartition) {
  const Hypergraph h = graph_to_hypergraph(make_grid3d(6, 6, 6, false));
  Partition old_p(4, h.num_vertices());
  for (Index v = 0; v < h.num_vertices(); ++v)
    old_p[VertexId{v}] = PartId{v % 4};
  RepartitionerConfig cfg = chaos_cfg(4, "throw@any:count=0");
  cfg.fallback = EpochFallback::kScratch;
  const GuardedRepartitionResult guarded = run_repartition_with_policy(
      RepartAlgorithm::kHypergraphRepart, h, Graph{}, old_p, cfg);
  EXPECT_TRUE(guarded.degraded);
  EXPECT_EQ(guarded.retries, 1);
  EXPECT_FALSE(guarded.error.empty());
  // The serial scratch fallback returned a real partition of the epoch
  // hypergraph (not necessarily the old assignment).
  ASSERT_EQ(guarded.result.partition.num_vertices(), h.num_vertices());
  guarded.result.partition.validate();
  EXPECT_GT(guarded.result.cost.comm_volume, 0);
}

TEST(Chaos, OverBudgetAttemptDegrades) {
  // Serial attempts that complete but overrun the per-epoch budget count
  // as failures: at scale a repartitioner slower than the epoch it serves
  // is as bad as a hang.
  const Hypergraph h = graph_to_hypergraph(make_grid3d(5, 5, 5, false));
  Partition old_p(4, h.num_vertices());
  for (Index v = 0; v < h.num_vertices(); ++v)
    old_p[VertexId{v}] = PartId{v % 4};
  RepartitionerConfig cfg;
  cfg.alpha = 10;
  cfg.partition.num_parts = 4;
  cfg.partition.seed = 7;
  cfg.max_retries = 1;
  cfg.epoch_time_budget = 1e-12;  // unmeetable
  const GuardedRepartitionResult guarded = run_repartition_with_policy(
      RepartAlgorithm::kHypergraphRepart, h, Graph{}, old_p, cfg);
  EXPECT_TRUE(guarded.degraded);
  EXPECT_NE(guarded.error.find("budget"), std::string::npos)
      << guarded.error;
  // Kept-old fallback.
  EXPECT_EQ(guarded.result.cost.migration_volume, 0);
  for (const VertexId v : old_p.vertices())
    EXPECT_EQ(guarded.result.partition[v], old_p[v]);
}

TEST(Chaos, DegradedEpochsAreRecordedInCsv) {
  StructuralPerturbScenario scenario(make_grid3d(5, 5, 5, false),
                                     StructuralPerturbOptions{}, 19);
  RepartitionerConfig cfg = chaos_cfg(4, "throw@any:count=0");
  const EpochRunSummary s =
      run_epochs(scenario, RepartAlgorithm::kHypergraphRepart, cfg, 3);
  EpochSeries series;
  series.append("chaos-grid", "structural", "hg-repart", 4, cfg.alpha, 0, s);
  const std::string csv = series.to_csv();
  EXPECT_NE(csv.find("is_static,degraded,retries,tier,escalated"),
            std::string::npos);
  // Static bootstrap row: is_static=1, degraded=0, retries=0, tier=static,
  // no critical-path span (critical_rank=-1, wait_frac=0).
  EXPECT_NE(csv.find(",1,0,0,static,0,-1,0\n"), std::string::npos) << csv;
  // Degraded repartition rows: is_static=0, degraded=1, retries=1,
  // tier=full (incremental routing is off in this config). The failed
  // attempts never closed a span, so the critical-path columns stay -1/0.
  EXPECT_NE(csv.find(",0,1,1,full,0,-1,0\n"), std::string::npos) << csv;
}

}  // namespace
}  // namespace hgr
