// Positive control for the negative-compile suite (tests/static/).
//
// This file exercises exactly the API shapes the fail_*.cpp files misuse,
// spelled correctly. It must stay compiling: if it breaks, the suite's
// WILL_FAIL tests prove nothing (a fail_*.cpp could be failing for the
// same unrelated reason rather than for the id-safety violation it
// demonstrates).
#include "common/types.hpp"

#include "hypergraph/hypergraph.hpp"
#include "metrics/balance.hpp"

namespace hgr {

Weight typed_access(const Hypergraph& h, const Partition& p) {
  Weight acc = 0;
  for (const VertexId v : h.vertices()) {
    acc += h.vertex_weight(v);
  }
  for (const NetId n : h.nets()) {
    acc += h.net_cost(n) * h.net_size(n);
    for (const VertexId pin : h.pins(n)) {
      acc += p[pin].v;
    }
  }
  return acc;
}

Weight typed_containers(Index k) {
  IdVector<PartId, Weight> part_weights(static_cast<std::size_t>(k), 0);
  for (const PartId part : part_range(k)) {
    part_weights[part] += 1;
  }
  const PartId explicit_ok{2};  // explicit construction is the sanctioned spelling
  return part_weights[explicit_ok];
}

}  // namespace hgr

int main() { return 0; }
