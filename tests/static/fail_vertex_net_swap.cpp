// MUST NOT COMPILE (registered with WILL_FAIL in CMakeLists.txt).
//
// Passing a NetId to a vertex accessor and a VertexId to a net accessor.
// Before StrongId both were `Index`, and this classic transposition bug —
// iterating nets but looking up vertex weights — compiled silently and
// read garbage. ok_baseline.cpp shows the correct spelling.
#include "hypergraph/hypergraph.hpp"

namespace hgr {

Weight swapped(const Hypergraph& h) {
  Weight acc = 0;
  for (const NetId n : h.nets()) {
    acc += h.vertex_weight(n);  // error: NetId is not a VertexId
  }
  for (const VertexId v : h.vertices()) {
    acc += h.net_cost(v);  // error: VertexId is not a NetId
  }
  return acc;
}

}  // namespace hgr

int main() { return 0; }
