// MUST NOT COMPILE (registered with WILL_FAIL in CMakeLists.txt).
//
// Indexing an id-typed container with the wrong id space: the partition
// vector is keyed by VertexId and per-part weights by PartId; subscripting
// either with a different id (or a raw integer) must be rejected by the
// typed operator[]. ok_baseline.cpp shows the correct spelling.
#include "common/types.hpp"

#include "metrics/partition.hpp"

namespace hgr {

Weight wrong_key(const Partition& p, const IdVector<PartId, Weight>& pw) {
  Weight acc = 0;
  acc += p[NetId{0}].v;   // error: partition vector is VertexId-keyed
  acc += pw[VertexId{1}]; // error: part weights are PartId-keyed
  acc += pw[3];           // error: raw integer subscript on IdVector
  return acc;
}

}  // namespace hgr

int main() { return 0; }
