// MUST NOT COMPILE (registered with WILL_FAIL in CMakeLists.txt).
//
// StrongId's integer constructor is explicit, so a plain int cannot quietly
// become a PartId — the classic k-vs-part confusion (`p = k - 1` compiling
// where a part label was meant). Construction must be spelled PartId{...}.
// ok_baseline.cpp shows the correct spelling.
#include "common/types.hpp"

namespace hgr {

PartId pick(Index k) {
  PartId p = 0;        // error: implicit int -> PartId
  p = k - 1;           // error: implicit Index -> PartId
  return p;
}

}  // namespace hgr

int main() { return 0; }
