// Shared helpers for the hgr test suite.
#pragma once

#include <initializer_list>
#include <vector>

#include "common/rng.hpp"
#include "hypergraph/builder.hpp"
#include "hypergraph/graph.hpp"
#include "hypergraph/hypergraph.hpp"
#include "metrics/partition.hpp"

namespace hgr::testing {

/// Unit-weight hypergraph over n vertices with the given nets (cost 1).
inline Hypergraph make_hypergraph(
    Index n, std::initializer_list<std::initializer_list<Index>> nets) {
  HypergraphBuilder b(n);
  for (const auto& net : nets) b.add_net(net, 1);
  return b.finalize();
}

/// Unit-weight graph over n vertices with the given edges (weight 1).
inline Graph make_graph(
    Index n, std::initializer_list<std::pair<Index, Index>> edges) {
  GraphBuilder b(n);
  for (const auto& [u, v] : edges) b.add_edge(u, v, 1);
  return b.finalize();
}

/// Random hypergraph: `nets` nets with 2..max_pins pins over n vertices,
/// random costs in [1, max_cost], random weights/sizes in [1, 4].
inline Hypergraph random_hypergraph(Index n, Index nets, Index max_pins,
                                    Weight max_cost, std::uint64_t seed) {
  Rng rng(seed);
  HypergraphBuilder b(n);
  for (Index i = 0; i < nets; ++i) {
    const auto pins =
        static_cast<Index>(2 + rng.below(static_cast<std::uint64_t>(
                                   std::max<Index>(1, max_pins - 1))));
    std::vector<Index> net;
    for (Index p = 0; p < pins; ++p)
      net.push_back(static_cast<Index>(rng.below(
          static_cast<std::uint64_t>(n))));
    b.add_net(net, 1 + static_cast<Weight>(rng.below(
                       static_cast<std::uint64_t>(max_cost))));
  }
  for (Index v = 0; v < n; ++v) {
    b.set_vertex_weight(v, 1 + static_cast<Weight>(rng.below(4)));
    b.set_vertex_size(v, 1 + static_cast<Weight>(rng.below(4)));
  }
  return b.finalize();
}

/// Random connected graph: spanning chain plus extra random edges.
inline Graph random_graph(Index n, Index extra_edges, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (Index v = 1; v < n; ++v)
    b.add_edge(v - 1, v, 1 + static_cast<Weight>(rng.below(3)));
  for (Index e = 0; e < extra_edges; ++e) {
    const auto u = static_cast<Index>(rng.below(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<Index>(rng.below(static_cast<std::uint64_t>(n)));
    if (u != v) b.add_edge(u, v, 1 + static_cast<Weight>(rng.below(3)));
  }
  for (Index v = 0; v < n; ++v) {
    b.set_vertex_weight(v, 1 + static_cast<Weight>(rng.below(3)));
    b.set_vertex_size(v, 1 + static_cast<Weight>(rng.below(3)));
  }
  return b.finalize();
}

/// Random partition into k parts.
inline Partition random_partition(Index n, Index k, std::uint64_t seed) {
  Rng rng(seed);
  Partition p(k, n);
  for (const VertexId v : p.vertices())
    p[v] = PartId{
        static_cast<Index>(rng.below(static_cast<std::uint64_t>(k)))};
  return p;
}

/// Brute-force connectivity-1 cut for cross-checking the fast path.
inline Weight brute_force_connectivity_cut(const Hypergraph& h,
                                           const Partition& p) {
  Weight total = 0;
  for (const NetId net : h.nets()) {
    std::vector<bool> seen(static_cast<std::size_t>(p.k), false);
    Index lambda = 0;
    for (const VertexId v : h.pins(net)) {
      if (!seen[static_cast<std::size_t>(p[v].v)]) {
        seen[static_cast<std::size_t>(p[v].v)] = true;
        ++lambda;
      }
    }
    if (lambda > 1) total += h.net_cost(net) * (lambda - 1);
  }
  return total;
}

/// The paper's Figure 1 (left): epoch j-1 hypergraph. Nine unit vertices
/// (ids 0..8 standing for 1..9), three parts. Nets (cost 1 each):
/// {1,2,3}, {3,4,6}, {5,6,7}, {7,8,9}, {2,3,a?}... Figure 1 is stylized; we
/// encode the epoch-j instance exactly as the worked example in Section 3
/// needs it; see paper_example_test.cpp.
struct PaperFigure1 {
  // Epoch j: seven surviving vertices 1..7 plus new a, b.
  // Index mapping: 1..7 -> 0..6, a -> 7, b -> 8.
  static constexpr Index v1 = 0, v2 = 1, v3 = 2, v4 = 3, v5 = 4, v6 = 5,
                         v7 = 6, va = 7, vb = 8;
};

}  // namespace hgr::testing
