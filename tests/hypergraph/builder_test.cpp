#include "hypergraph/builder.hpp"

#include <gtest/gtest.h>

namespace hgr {
namespace {

TEST(HypergraphBuilder, DeduplicatesPinsWithinNet) {
  HypergraphBuilder b(3);
  b.add_net({0, 1, 1, 0, 2});
  const Hypergraph h = b.finalize();
  EXPECT_EQ(h.num_nets(), 1);
  EXPECT_EQ(h.net_size(NetId{0}), 3);
}

TEST(HypergraphBuilder, DropsSinglePinNetsByDefault) {
  HypergraphBuilder b(3);
  b.add_net({0});
  b.add_net({1, 1});  // collapses to a single pin
  b.add_net({1, 2});
  const Hypergraph h = b.finalize();
  EXPECT_EQ(h.num_nets(), 1);
  EXPECT_EQ(h.net_size(NetId{0}), 2);
}

TEST(HypergraphBuilder, KeepSinglePinNetsOption) {
  HypergraphBuilder b(2);
  b.keep_single_pin_nets(true);
  b.add_net({0});
  b.add_net({0, 1});
  const Hypergraph h = b.finalize();
  EXPECT_EQ(h.num_nets(), 2);
}

TEST(HypergraphBuilder, NetCostsPreserved) {
  HypergraphBuilder b(3);
  b.add_net({0, 1}, 5);
  b.add_net({1, 2}, 9);
  const Hypergraph h = b.finalize();
  EXPECT_EQ(h.net_cost(NetId{0}), 5);
  EXPECT_EQ(h.net_cost(NetId{1}), 9);
}

TEST(HypergraphBuilder, BulkWeightSetters) {
  HypergraphBuilder b(4);
  b.add_net({0, 1, 2, 3});
  b.set_all_vertex_weights(3);
  b.set_all_vertex_sizes(2);
  const Hypergraph h = b.finalize();
  for (Index v = 0; v < 4; ++v) {
    EXPECT_EQ(h.vertex_weight(VertexId{v}), 3);
    EXPECT_EQ(h.vertex_size(VertexId{v}), 2);
  }
}

TEST(HypergraphBuilder, FixedVerticesOnlyWhenSet) {
  {
    HypergraphBuilder b(2);
    b.add_net({0, 1});
    EXPECT_FALSE(b.finalize().has_fixed());
  }
  {
    HypergraphBuilder b(2);
    b.add_net({0, 1});
    b.set_fixed_part(0, PartId{1});
    const Hypergraph h = b.finalize();
    EXPECT_TRUE(h.has_fixed());
    EXPECT_EQ(h.fixed_part(VertexId{0}), PartId{1});
    EXPECT_EQ(h.fixed_part(VertexId{1}), kNoPart);
  }
}

TEST(GraphBuilder, MergesAndSymmetrizes) {
  GraphBuilder b(4);
  b.add_edge(2, 1, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(0, 3, 4);
  const Graph g = b.finalize();
  EXPECT_EQ(g.num_edges(), 2);
  g.validate();
}

TEST(GraphBuilder, EmptyGraphFinalizes) {
  GraphBuilder b(3);
  const Graph g = b.finalize();
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.num_vertices(), 3);
  g.validate();
}

}  // namespace
}  // namespace hgr
