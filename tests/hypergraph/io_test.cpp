#include "hypergraph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.hpp"

namespace hgr {
namespace {

TEST(Io, HypergraphRoundTrip) {
  HypergraphBuilder b(4);
  b.add_net({0, 1, 2}, 3);
  b.add_net({2, 3}, 7);
  b.set_vertex_weight(0, 5);
  b.set_vertex_size(0, 2);
  const Hypergraph h = b.finalize();

  std::stringstream ss;
  write_hmetis(h, ss);
  const Hypergraph back = read_hmetis(ss);

  EXPECT_EQ(back.num_vertices(), h.num_vertices());
  EXPECT_EQ(back.num_nets(), h.num_nets());
  EXPECT_EQ(back.net_cost(NetId{0}), 3);
  EXPECT_EQ(back.net_cost(NetId{1}), 7);
  EXPECT_EQ(back.vertex_weight(VertexId{0}), 5);
  EXPECT_EQ(back.vertex_size(VertexId{0}), 2);
  back.validate();
}

TEST(Io, ReadsPlainHmetisNoWeights) {
  std::stringstream ss("% comment\n2 3\n1 2\n2 3\n");
  const Hypergraph h = read_hmetis(ss);
  EXPECT_EQ(h.num_nets(), 2);
  EXPECT_EQ(h.num_vertices(), 3);
  EXPECT_EQ(h.net_cost(NetId{0}), 1);
  // Pins are 1-based in the file.
  EXPECT_EQ(h.pins(NetId{0})[0], VertexId{0});
}

TEST(Io, ReadsNetCostsFormat1) {
  std::stringstream ss("1 2 1\n9 1 2\n");
  const Hypergraph h = read_hmetis(ss);
  EXPECT_EQ(h.net_cost(NetId{0}), 9);
}

TEST(Io, RejectsOutOfRangePin) {
  std::stringstream ss("1 2\n1 5\n");
  EXPECT_THROW(read_hmetis(ss), std::runtime_error);
}

TEST(Io, RejectsGarbageHeader) {
  std::stringstream ss("nonsense\n");
  EXPECT_THROW(read_hmetis(ss), std::runtime_error);
}

TEST(Io, RejectsMissingNetLine) {
  std::stringstream ss("2 3\n1 2\n");
  EXPECT_THROW(read_hmetis(ss), std::runtime_error);
}

TEST(Io, RejectsNegativeNetCost) {
  std::stringstream ss("1 2 1\n-4 1 2\n");
  EXPECT_THROW(read_hmetis(ss), std::runtime_error);
}

TEST(Io, RejectsNegativeVertexWeight) {
  std::stringstream ss("1 2 10\n1 2\n3\n-1\n");
  EXPECT_THROW(read_hmetis(ss), std::runtime_error);
}

TEST(Io, RejectsNegativeVertexSize) {
  std::stringstream ss("1 2 110\n1 2\n3 1\n2 -6\n");
  EXPECT_THROW(read_hmetis(ss), std::runtime_error);
}

TEST(Io, RejectsNonNumericPin) {
  std::stringstream ss("1 3\n1 two 3\n");
  EXPECT_THROW(read_hmetis(ss), std::runtime_error);
}

// The checked-in malformed corpus: each file must be rejected with a
// message that names the offending entity, not just "bad file".
TEST(Io, MalformedCorpusRejectedWithClearErrors) {
  const std::string dir = HGR_TEST_DATA_DIR;
  const auto error_of = [](const std::string& path) -> std::string {
    try {
      read_hmetis_file(path);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return "";
  };
  EXPECT_NE(error_of(dir + "/truncated.hgr").find("missing net line"),
            std::string::npos);
  EXPECT_NE(error_of(dir + "/pin_out_of_range.hgr").find("pin 9"),
            std::string::npos);
  EXPECT_NE(error_of(dir + "/negative_weight.hgr").find("vertex 2"),
            std::string::npos);
  EXPECT_NE(error_of(dir + "/negative_cost.hgr").find("net 1"),
            std::string::npos);
}

TEST(Io, GraphRoundTrip) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 4);
  b.add_edge(1, 2, 6);
  b.set_vertex_weight(1, 8);
  const Graph g = b.finalize();

  std::stringstream ss;
  write_metis_graph(g, ss);
  const Graph back = read_metis_graph(ss);
  EXPECT_EQ(back.num_vertices(), 3);
  EXPECT_EQ(back.num_edges(), 2);
  EXPECT_EQ(back.vertex_weight(1), 8);
  back.validate();
}

TEST(Io, GraphFileMissingThrows) {
  EXPECT_THROW(read_metis_graph_file("/nonexistent/path.graph"),
               std::runtime_error);
  EXPECT_THROW(read_hmetis_file("/nonexistent/path.hgr"),
               std::runtime_error);
}

TEST(Io, MatrixMarketGeneralPattern) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% a comment\n"
      "3 3 4\n"
      "1 2\n"
      "2 1\n"
      "2 3\n"
      "3 3\n");
  const Graph g = read_matrix_market(ss);
  EXPECT_EQ(g.num_vertices(), 3);
  // (1,2)+(2,1) merge; (3,3) diagonal dropped; (2,3) kept.
  EXPECT_EQ(g.num_edges(), 2);
  for (Index v = 0; v < 3; ++v)
    for (const Weight w : g.edge_weights(v)) EXPECT_EQ(w, 1);
  g.validate();
}

TEST(Io, MatrixMarketSymmetricReal) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "4 4 3\n"
      "2 1 0.5\n"
      "3 2 -1.0\n"
      "4 4 9.0\n");
  const Graph g = read_matrix_market(ss);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.degree(1), 2);
}

TEST(Io, MatrixMarketRejectsNonSquare) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 4 1\n"
      "1 2\n");
  EXPECT_THROW(read_matrix_market(ss), std::runtime_error);
}

TEST(Io, MatrixMarketRejectsBadBanner) {
  std::stringstream ss("%%NotMatrixMarket whatever\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(ss), std::runtime_error);
}

TEST(Io, MatrixMarketRejectsArrayFormat) {
  std::stringstream ss("%%MatrixMarket matrix array real general\n2 2\n");
  EXPECT_THROW(read_matrix_market(ss), std::runtime_error);
}

TEST(Io, FileRoundTripViaTmp) {
  const Hypergraph h = testing::make_hypergraph(3, {{0, 1}, {1, 2}});
  const std::string path = ::testing::TempDir() + "/hgr_io_test.hgr";
  write_hmetis_file(h, path);
  const Hypergraph back = read_hmetis_file(path);
  EXPECT_EQ(back.num_nets(), 2);
}

}  // namespace
}  // namespace hgr
