#include "hypergraph/hypergraph.hpp"

#include <gtest/gtest.h>

#include "hypergraph/builder.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::make_hypergraph;

TEST(Hypergraph, EmptyHypergraph) {
  Hypergraph h;
  EXPECT_EQ(h.num_vertices(), 0);
  EXPECT_EQ(h.num_nets(), 0);
  EXPECT_EQ(h.num_pins(), 0);
  EXPECT_EQ(h.total_vertex_weight(), 0);
}

TEST(Hypergraph, BasicStructure) {
  const Hypergraph h = make_hypergraph(5, {{0, 1, 2}, {2, 3}, {3, 4, 0}});
  EXPECT_EQ(h.num_vertices(), 5);
  EXPECT_EQ(h.num_nets(), 3);
  EXPECT_EQ(h.num_pins(), 8);
  EXPECT_EQ(h.net_size(NetId{0}), 3);
  EXPECT_EQ(h.net_size(NetId{1}), 2);
  h.validate();
}

TEST(Hypergraph, TransposeConsistency) {
  const Hypergraph h = make_hypergraph(4, {{0, 1}, {1, 2}, {1, 3}, {0, 3}});
  EXPECT_EQ(h.vertex_degree(VertexId{1}), 3);
  EXPECT_EQ(h.vertex_degree(VertexId{2}), 1);
  // Vertex 1 is in nets 0, 1, 2.
  const auto nets = h.incident_nets(VertexId{1});
  EXPECT_EQ(std::vector<NetId>(nets.begin(), nets.end()),
            (std::vector<NetId>{NetId{0}, NetId{1}, NetId{2}}));
}

TEST(Hypergraph, WeightsAndSizes) {
  HypergraphBuilder b(3);
  b.add_net({0, 1, 2});
  b.set_vertex_weight(0, 10);
  b.set_vertex_size(0, 7);
  b.set_vertex_weight(2, 5);
  const Hypergraph h = b.finalize();
  EXPECT_EQ(h.vertex_weight(VertexId{0}), 10);
  EXPECT_EQ(h.vertex_size(VertexId{0}), 7);
  EXPECT_EQ(h.vertex_weight(VertexId{1}), 1);
  EXPECT_EQ(h.total_vertex_weight(), 16);
}

TEST(Hypergraph, SetVertexWeightUpdatesTotal) {
  Hypergraph h = make_hypergraph(3, {{0, 1, 2}});
  EXPECT_EQ(h.total_vertex_weight(), 3);
  h.set_vertex_weight(VertexId{1}, 100);
  EXPECT_EQ(h.total_vertex_weight(), 102);
  h.set_vertex_size(VertexId{1}, 9);
  EXPECT_EQ(h.vertex_size(VertexId{1}), 9);
}

TEST(Hypergraph, ScaleNetCosts) {
  HypergraphBuilder b(3);
  b.add_net({0, 1}, 2);
  b.add_net({1, 2}, 5);
  Hypergraph h = b.finalize();
  h.scale_net_costs(10);
  EXPECT_EQ(h.net_cost(NetId{0}), 20);
  EXPECT_EQ(h.net_cost(NetId{1}), 50);
}

TEST(Hypergraph, FixedPartsDefaultFree) {
  const Hypergraph h = make_hypergraph(3, {{0, 1, 2}});
  EXPECT_FALSE(h.has_fixed());
  EXPECT_EQ(h.fixed_part(VertexId{0}), kNoPart);
}

TEST(Hypergraph, FixedPartsViaBuilder) {
  HypergraphBuilder b(3);
  b.add_net({0, 1, 2});
  b.set_fixed_part(1, PartId{2});
  const Hypergraph h = b.finalize();
  EXPECT_TRUE(h.has_fixed());
  EXPECT_EQ(h.fixed_part(VertexId{0}), kNoPart);
  EXPECT_EQ(h.fixed_part(VertexId{1}), PartId{2});
  h.validate(3);
}

TEST(Hypergraph, SetFixedPartsAndClear) {
  Hypergraph h = make_hypergraph(2, {{0, 1}});
  h.set_fixed_parts({PartId{0}, kNoPart});
  EXPECT_TRUE(h.has_fixed());
  EXPECT_EQ(h.fixed_part(VertexId{0}), PartId{0});
  h.set_fixed_parts({});
  EXPECT_FALSE(h.has_fixed());
}

TEST(Hypergraph, SummaryMentionsCounts) {
  const Hypergraph h = make_hypergraph(4, {{0, 1}, {2, 3}});
  const std::string s = h.summary();
  EXPECT_NE(s.find("|V|=4"), std::string::npos);
  EXPECT_NE(s.find("|N|=2"), std::string::npos);
}

TEST(HypergraphDeathTest, ValidateCatchesBadFixed) {
  Hypergraph h = make_hypergraph(2, {{0, 1}});
  h.set_fixed_parts({PartId{5}, kNoPart});
  EXPECT_DEATH(h.validate(2), "fixed part out of range");
}

}  // namespace
}  // namespace hgr
