#include "hypergraph/stats.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace hgr {
namespace {

using testing::make_graph;
using testing::make_hypergraph;

TEST(Stats, GraphDegreeStats) {
  const Graph g = make_graph(4, {{0, 1}, {1, 2}, {1, 3}});
  const DegreeStats s = graph_degree_stats(g);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 3);
  EXPECT_DOUBLE_EQ(s.avg, 1.5);
}

TEST(Stats, HypergraphDegreeAndNetSize) {
  const Hypergraph h = make_hypergraph(4, {{0, 1, 2, 3}, {0, 1}});
  const DegreeStats vd = hypergraph_vertex_degree_stats(h);
  EXPECT_EQ(vd.min, 1);
  EXPECT_EQ(vd.max, 2);
  const DegreeStats ns = hypergraph_net_size_stats(h);
  EXPECT_EQ(ns.min, 2);
  EXPECT_EQ(ns.max, 4);
  EXPECT_DOUBLE_EQ(ns.avg, 3.0);
}

TEST(Stats, EmptyGraphStats) {
  const Graph g;
  const DegreeStats s = graph_degree_stats(g);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 0);
  EXPECT_DOUBLE_EQ(s.avg, 0.0);
}

TEST(Stats, Table1RowContainsFields) {
  const Graph g = make_graph(3, {{0, 1}, {1, 2}});
  const std::string row = table1_row("demo", g, "Testing");
  EXPECT_NE(row.find("demo"), std::string::npos);
  EXPECT_NE(row.find("Testing"), std::string::npos);
  EXPECT_NE(row.find("3"), std::string::npos);
}

TEST(Stats, Connectivity) {
  EXPECT_TRUE(is_connected(make_graph(3, {{0, 1}, {1, 2}})));
  EXPECT_FALSE(is_connected(make_graph(4, {{0, 1}, {2, 3}})));
  EXPECT_TRUE(is_connected(Graph{}));
  EXPECT_FALSE(is_connected(make_graph(2, {})));
}

}  // namespace
}  // namespace hgr
