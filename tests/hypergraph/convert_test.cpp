#include "hypergraph/convert.hpp"

#include <gtest/gtest.h>

#include "metrics/cut.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::make_graph;
using testing::random_graph;
using testing::random_partition;

TEST(Convert, GraphToHypergraphStructure) {
  const Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  const Hypergraph h = graph_to_hypergraph(g);
  EXPECT_EQ(h.num_vertices(), 4);
  EXPECT_EQ(h.num_nets(), 3);
  for (const NetId net : h.nets()) EXPECT_EQ(h.net_size(net), 2);
}

TEST(Convert, GraphToHypergraphPreservesAttributes) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 7);
  b.set_vertex_weight(2, 9);
  b.set_vertex_size(2, 4);
  const Graph g = b.finalize();
  const Hypergraph h = graph_to_hypergraph(g);
  EXPECT_EQ(h.net_cost(NetId{0}), 7);
  EXPECT_EQ(h.vertex_weight(VertexId{2}), 9);
  EXPECT_EQ(h.vertex_size(VertexId{2}), 4);
}

TEST(Convert, EdgeCutEqualsConnectivityCutOn2PinNets) {
  // On symmetric problems the two objectives coincide — the property that
  // makes the paper's graph/hypergraph comparison apples-to-apples.
  const Graph g = random_graph(60, 120, 7);
  const Hypergraph h = graph_to_hypergraph(g);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Partition p = random_partition(60, 4, seed);
    EXPECT_EQ(edge_cut(g, p), connectivity_cut(h, p));
  }
}

TEST(Convert, ColumnNetModel) {
  const Graph g = make_graph(3, {{0, 1}, {1, 2}});
  const Hypergraph h = graph_to_column_net_hypergraph(g);
  // One net per vertex: {v} + neighbors.
  EXPECT_EQ(h.num_nets(), 3);
  EXPECT_EQ(h.net_size(NetId{1}), 3);  // vertex 1 with neighbors 0 and 2
}

TEST(Convert, CliqueExpansionRoundTrip) {
  const Hypergraph h = testing::make_hypergraph(4, {{0, 1, 2}, {2, 3}});
  const Graph g = hypergraph_to_graph_clique(h);
  // Net {0,1,2} -> triangle; net {2,3} -> edge.
  EXPECT_EQ(g.num_edges(), 4);
  g.validate();
}

TEST(Convert, CliqueExpansionSkipsHugeNets) {
  HypergraphBuilder b(10);
  std::vector<Index> big;
  for (Index v = 0; v < 10; ++v) big.push_back(v);
  b.add_net(big);
  const Hypergraph h = b.finalize();
  const Graph g = hypergraph_to_graph_clique(h, /*max_clique_size=*/5);
  EXPECT_EQ(g.num_edges(), 0);
}

}  // namespace
}  // namespace hgr
