#include "hypergraph/graph.hpp"

#include <gtest/gtest.h>

#include "hypergraph/builder.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::make_graph;

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Graph, TriangleStructure) {
  const Graph g = make_graph(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.degree(0), 2);
  g.validate();
}

TEST(Graph, NeighborsAndWeightsAligned) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 5);
  b.add_edge(0, 2, 7);
  const Graph g = b.finalize();
  const auto nbrs = g.neighbors(0);
  const auto ws = g.edge_weights(0);
  ASSERT_EQ(nbrs.size(), 2u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i] == 1) {
      EXPECT_EQ(ws[i], 5);
    }
    if (nbrs[i] == 2) {
      EXPECT_EQ(ws[i], 7);
    }
  }
}

TEST(Graph, SelfLoopsIgnored) {
  GraphBuilder b(2);
  b.add_edge(0, 0, 3);
  b.add_edge(0, 1, 1);
  const Graph g = b.finalize();
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(Graph, ParallelEdgesMerged) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 0, 3);
  const Graph g = b.finalize();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.edge_weights(0)[0], 5);
  g.validate();
}

TEST(Graph, VertexWeightMutation) {
  Graph g = make_graph(2, {{0, 1}});
  EXPECT_EQ(g.total_vertex_weight(), 2);
  g.set_vertex_weight(0, 42);
  EXPECT_EQ(g.total_vertex_weight(), 43);
  g.set_vertex_size(1, 9);
  EXPECT_EQ(g.vertex_size(1), 9);
}

TEST(Graph, IsolatedVertexAllowed) {
  const Graph g = make_graph(3, {{0, 1}});
  EXPECT_EQ(g.degree(2), 0);
  g.validate();
}

TEST(Graph, SummaryFormat) {
  const Graph g = make_graph(3, {{0, 1}, {1, 2}});
  EXPECT_NE(g.summary().find("|V|=3"), std::string::npos);
  EXPECT_NE(g.summary().find("|E|=2"), std::string::npos);
}

}  // namespace
}  // namespace hgr
