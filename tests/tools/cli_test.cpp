// End-to-end smoke tests of the hgr_cli binary (path injected by CMake).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#ifndef HGR_CLI_PATH
#error "HGR_CLI_PATH must be defined by the build"
#endif

namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void write_chain_hgr(const std::string& path, int n) {
  std::ofstream out(path);
  out << (n - 1) << ' ' << n << "\n";
  for (int v = 1; v < n; ++v) out << v << ' ' << (v + 1) << "\n";
}

int run(const std::string& args) {
  const std::string cmd = std::string(HGR_CLI_PATH) + " " + args +
                          " >/dev/null 2>/dev/null";
  return std::system(cmd.c_str());
}

TEST(CliSmoke, InfoMode) {
  const std::string in = tmp_path("cli_chain.hgr");
  write_chain_hgr(in, 50);
  EXPECT_EQ(run("info " + in), 0);
}

TEST(CliSmoke, PartitionThenRepartition) {
  const std::string in = tmp_path("cli_chain2.hgr");
  const std::string parts = tmp_path("cli_chain2.parts");
  const std::string parts2 = tmp_path("cli_chain2b.parts");
  write_chain_hgr(in, 64);
  ASSERT_EQ(run("partition " + in + " --k=4 --out=" + parts), 0);
  // The partition file must contain 64 valid ids.
  std::ifstream pf(parts);
  int count = 0;
  long long id;
  while (pf >> id) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 4);
    ++count;
  }
  EXPECT_EQ(count, 64);
  ASSERT_EQ(run("repartition " + in + " --old=" + parts +
                " --k=4 --alpha=10 --out=" + parts2),
            0);
}

TEST(CliSmoke, BadUsageFails) {
  EXPECT_NE(run("partition /nonexistent.hgr --k=2"), 0);
  EXPECT_NE(run("bogusmode whatever"), 0);
  const std::string in = tmp_path("cli_chain3.hgr");
  write_chain_hgr(in, 10);
  EXPECT_NE(run("repartition " + in + " --k=2"), 0);  // missing --old
}

}  // namespace
