// End-to-end smoke tests of the hgr_cli binary (path injected by CMake).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#ifndef HGR_CLI_PATH
#error "HGR_CLI_PATH must be defined by the build"
#endif

namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void write_chain_hgr(const std::string& path, int n) {
  std::ofstream out(path);
  out << (n - 1) << ' ' << n << "\n";
  for (int v = 1; v < n; ++v) out << v << ' ' << (v + 1) << "\n";
}

int run(const std::string& args) {
  const std::string cmd = std::string(HGR_CLI_PATH) + " " + args +
                          " >/dev/null 2>/dev/null";
  return std::system(cmd.c_str());
}

TEST(CliSmoke, InfoMode) {
  const std::string in = tmp_path("cli_chain.hgr");
  write_chain_hgr(in, 50);
  EXPECT_EQ(run("info " + in), 0);
}

TEST(CliSmoke, PartitionThenRepartition) {
  const std::string in = tmp_path("cli_chain2.hgr");
  const std::string parts = tmp_path("cli_chain2.parts");
  const std::string parts2 = tmp_path("cli_chain2b.parts");
  write_chain_hgr(in, 64);
  ASSERT_EQ(run("partition " + in + " --k=4 --out=" + parts), 0);
  // The partition file must contain 64 valid ids.
  std::ifstream pf(parts);
  int count = 0;
  long long id;
  while (pf >> id) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 4);
    ++count;
  }
  EXPECT_EQ(count, 64);
  ASSERT_EQ(run("repartition " + in + " --old=" + parts +
                " --k=4 --alpha=10 --out=" + parts2),
            0);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Structural sanity for the emitted trace: braces/brackets balance when
// string literals are skipped. Schema-level checks are substring asserts;
// the JSON grammar itself is covered by obs_test's real parser.
void expect_balanced_json(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\')
        ++i;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(CliTrace, SerialPartitionEmitsNestedPhases) {
  const std::string trace = tmp_path("cli_trace_serial.json");
  ASSERT_EQ(run("partition " + std::string(HGR_EXAMPLE_HGR) +
                " --k=4 --out=" + tmp_path("cli_trace_serial.parts") +
                " --trace-json=" + trace),
            0);
  const std::string json = read_file(trace);
  ASSERT_FALSE(json.empty());
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"schema\":\"hgr-trace-v2\""), std::string::npos);
  // The multilevel phases appear inside the partition phase tree.
  EXPECT_NE(json.find("\"name\":\"partition\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"coarsen\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"initial\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"refine\""), std::string::npos);
  EXPECT_NE(json.find("\"coarsen.levels\""), std::string::npos);
}

TEST(CliTrace, ParallelRepartitionEmitsCommAndEpochCounters) {
  const std::string in = std::string(HGR_EXAMPLE_HGR);
  const std::string parts = tmp_path("cli_trace_par.parts");
  const std::string trace = tmp_path("cli_trace_par.json");
  ASSERT_EQ(run("partition " + in + " --k=4 --out=" + parts), 0);
  ASSERT_EQ(run("repartition " + in + " --old=" + parts +
                " --k=4 --alpha=10 --ranks=2 --out=" +
                tmp_path("cli_trace_par2.parts") + " --trace-json=" + trace),
            0);
  const std::string json = read_file(trace);
  ASSERT_FALSE(json.empty());
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"schema\":\"hgr-trace-v2\""), std::string::npos);
  // Per-collective byte/message counters from the parallel runtime.
  EXPECT_NE(json.find("\"comm.allgather.bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"comm.allgather.count\""), std::string::npos);
  // Per-epoch cost metrics.
  EXPECT_NE(json.find("\"epoch.count\":1,"), std::string::npos);
  EXPECT_NE(json.find("\"epoch.total_cost\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch.comm_volume\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch.migration_volume\""), std::string::npos);
  // v2 metric types: collective latency histograms with quantiles, and the
  // epoch gauge.
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"comm.allgather.call_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch.current\":2"), std::string::npos);
  // Cross-rank critical-path attribution for the repartition span.
  EXPECT_NE(json.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(json.find("\"critical_rank\""), std::string::npos);
  EXPECT_NE(json.find("\"wait_frac\""), std::string::npos);
  // The repartition phase wraps the parallel partitioner's phase tree.
  EXPECT_NE(json.find("\"name\":\"repartition\""), std::string::npos);
}

TEST(CliTrace, ChromeTraceHasRankTracksAndCommEvents) {
  const std::string in = std::string(HGR_EXAMPLE_HGR);
  const std::string parts = tmp_path("cli_chrome.parts");
  const std::string trace = tmp_path("cli_chrome.json");
  ASSERT_EQ(run("partition " + in + " --k=4 --ranks=2 --out=" + parts +
                " --chrome-trace=" + trace),
            0);
  const std::string json = read_file(trace);
  ASSERT_FALSE(json.empty());
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One named track per rank.
  EXPECT_NE(json.find("\"name\":\"rank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank 1\""), std::string::npos);
  // Phase spans and comm events both land on the timeline.
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"comm\""), std::string::npos);
}

// Golden-file shape check for the epoch CSV on the bundled example: the
// header is fixed, and the serial partition run yields exactly one epoch
// row with known tag columns.
TEST(CliTrace, EpochCsvGoldenHeaderAndRow) {
  const std::string in = std::string(HGR_EXAMPLE_HGR);
  const std::string csv_path = tmp_path("cli_epoch.csv");
  ASSERT_EQ(run("partition " + in + " --k=4 --out=" +
                tmp_path("cli_epoch.parts") + " --epoch-csv=" + csv_path),
            0);
  std::ifstream csv(csv_path);
  std::string header, row, extra;
  ASSERT_TRUE(static_cast<bool>(std::getline(csv, header)));
  ASSERT_TRUE(static_cast<bool>(std::getline(csv, row)));
  EXPECT_FALSE(static_cast<bool>(std::getline(csv, extra)));
  EXPECT_EQ(header,
            "dataset,perturb,algorithm,k,alpha,trial,epoch,cut,"
            "migration_volume,total_cost,normalized_cost,imbalance,"
            "num_vertices,num_migrated,repart_seconds,coarsen_seconds,"
            "initial_seconds,refine_seconds,is_static,degraded,retries,"
            "tier,escalated,critical_rank,wait_frac");
  // Tag columns: dataset is the input path, serial algorithm, k=4,
  // epoch 1, and the grid has 192 vertices, none migrated.
  EXPECT_EQ(row.compare(0, in.size() + 1, in + ","), 0);
  EXPECT_NE(row.find(",none,hypergraph,4,"), std::string::npos);
  EXPECT_NE(row.find(",192,0,"), std::string::npos);
}

TEST(CliTrace, EpochCsvParallelRepartitionTagsAlgorithm) {
  const std::string in = std::string(HGR_EXAMPLE_HGR);
  const std::string parts = tmp_path("cli_epoch_par.parts");
  const std::string csv_path = tmp_path("cli_epoch_par.csv");
  ASSERT_EQ(run("partition " + in + " --k=4 --out=" + parts), 0);
  ASSERT_EQ(run("repartition " + in + " --old=" + parts +
                " --k=4 --alpha=10 --ranks=2 --out=" +
                tmp_path("cli_epoch_par2.parts") + " --epoch-csv=" +
                csv_path),
            0);
  const std::string csv = read_file(csv_path);
  EXPECT_NE(csv.find(",none,par-hypergraph,4,10,"), std::string::npos);
  // Repartition runs are tagged as epoch 2 (epoch 1 = static bootstrap).
  EXPECT_NE(csv.find(",par-hypergraph,4,10,0,2,"), std::string::npos);
  // The parallel runtime records a critical-path span, so the trailing
  // critical_rank column names a real rank (0 or 1 with --ranks=2), not
  // the -1 "no span" sentinel.
  std::istringstream lines(csv);
  std::string header, row;
  ASSERT_TRUE(static_cast<bool>(std::getline(lines, header)));
  ASSERT_TRUE(static_cast<bool>(std::getline(lines, row)));
  const auto wait_comma = row.rfind(',');
  ASSERT_NE(wait_comma, std::string::npos);
  const auto rank_comma = row.rfind(',', wait_comma - 1);
  ASSERT_NE(rank_comma, std::string::npos);
  const std::string critical_rank =
      row.substr(rank_comma + 1, wait_comma - rank_comma - 1);
  EXPECT_TRUE(critical_rank == "0" || critical_rank == "1") << row;
}

TEST(CliTrace, StatsStreamEmitsSamples) {
  const std::string in = std::string(HGR_EXAMPLE_HGR);
  const std::string stream = tmp_path("cli_stats.ndjson");
  ASSERT_EQ(run("partition " + in + " --k=4 --out=" +
                tmp_path("cli_stats.parts") + " --stats-stream=" + stream),
            0);
  std::ifstream f(stream);
  std::string line;
  int samples = 0;
  bool saw_partition_phase = false;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    ++samples;
    expect_balanced_json(line);
    EXPECT_NE(line.find("\"schema\":\"hgr-stats-v1\""), std::string::npos)
        << line;
    EXPECT_NE(line.find("\"seq\":"), std::string::npos);
    EXPECT_NE(line.find("\"counters\":{"), std::string::npos);
    if (line.find("\"phase\":\"partition\"") != std::string::npos)
      saw_partition_phase = true;
  }
  // At least the top-level partition phase close must have been sampled.
  EXPECT_GE(samples, 1);
  EXPECT_TRUE(saw_partition_phase);
}

/// Like run(), but keeps stderr so tests can assert on diagnostics.
int run_keep_stderr(const std::string& args, const std::string& err_path) {
  const std::string cmd = std::string(HGR_CLI_PATH) + " " + args +
                          " >/dev/null 2>" + err_path;
  return std::system(cmd.c_str());
}

TEST(CliSmoke, IncrementalRepartitionReportsTier) {
  const std::string in = tmp_path("cli_inc.hgr");
  const std::string parts = tmp_path("cli_inc.parts");
  const std::string err = tmp_path("cli_inc.err");
  write_chain_hgr(in, 64);
  ASSERT_EQ(run("partition " + in + " --k=4 --out=" + parts), 0);
  // Forced-on: the gain-cache fast path repairs the old partition.
  ASSERT_EQ(run_keep_stderr("repartition " + in + " --old=" + parts +
                                " --k=4 --alpha=10 --incremental=on "
                                "--validate=paranoid --out=" +
                                tmp_path("cli_inc2.parts"),
                            err),
            0);
  EXPECT_NE(read_file(err).find("tier=incremental"), std::string::npos);
  // Auto: the one-shot delta is unknown, so routing escalates to full.
  ASSERT_EQ(run_keep_stderr("repartition " + in + " --old=" + parts +
                                " --k=4 --alpha=10 --incremental=auto "
                                "--out=" + tmp_path("cli_inc3.parts"),
                            err),
            0);
  const std::string log = read_file(err);
  EXPECT_NE(log.find("tier=full"), std::string::npos) << log;
  EXPECT_NE(log.find("reason=delta_frac"), std::string::npos) << log;
}

TEST(CliTrace, BadTracePathFails) {
  EXPECT_NE(run("partition " + std::string(HGR_EXAMPLE_HGR) +
                " --k=2 --out=" + tmp_path("cli_trace_bad.parts") +
                " --trace-json=/nonexistent-dir/x/trace.json"),
            0);
}

TEST(CliSmoke, BundledExampleInfoAndPartition) {
  EXPECT_EQ(run("info " + std::string(HGR_EXAMPLE_HGR)), 0);
  EXPECT_EQ(run("partition " + std::string(HGR_EXAMPLE_HGR) +
                " --k=4 --report --out=" + tmp_path("grid.parts")),
            0);
}

TEST(CliSmoke, BadUsageFails) {
  EXPECT_NE(run("partition /nonexistent.hgr --k=2"), 0);
  EXPECT_NE(run("bogusmode whatever"), 0);
  const std::string in = tmp_path("cli_chain3.hgr");
  write_chain_hgr(in, 10);
  EXPECT_NE(run("repartition " + in + " --k=2"), 0);  // missing --old
}

}  // namespace
