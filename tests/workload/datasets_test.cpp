#include "workload/datasets.hpp"

#include <gtest/gtest.h>

#include "hypergraph/stats.hpp"

namespace hgr {
namespace {

TEST(Datasets, CatalogHasFiveEntriesInPaperOrder) {
  const auto catalog = dataset_catalog();
  ASSERT_EQ(catalog.size(), 5u);
  EXPECT_EQ(catalog[0].paper_name, "xyce680s");
  EXPECT_EQ(catalog[1].paper_name, "2DLipid");
  EXPECT_EQ(catalog[2].paper_name, "auto");
  EXPECT_EQ(catalog[3].paper_name, "apoa1-10");
  EXPECT_EQ(catalog[4].paper_name, "cage14");
}

TEST(Datasets, EveryAnalogBuildsConnectedAtSmallScale) {
  for (const DatasetInfo& info : dataset_catalog()) {
    const Graph g = make_dataset(info.name, /*scale=*/0.08, /*seed=*/1);
    EXPECT_GT(g.num_vertices(), 0) << info.name;
    EXPECT_TRUE(is_connected(g)) << info.name;
    g.validate();
  }
}

TEST(Datasets, PaperNamesAccepted) {
  const Graph g = make_dataset("xyce680s", 0.05, 2);
  EXPECT_GT(g.num_vertices(), 100);
}

TEST(Datasets, UnknownNameThrows) {
  EXPECT_THROW(make_dataset("no-such-dataset"), std::runtime_error);
}

TEST(Datasets, DensityOrderingMatchesTable1) {
  // Table 1 avg degrees: xyce 2.4 < auto 14.8 < cage 18.0 < apoa1 370.9
  // (scaled down) ... 2DLipid is the densest relative to its size.
  const double s = 0.1;
  const auto avg = [s](const std::string& name) {
    return graph_degree_stats(make_dataset(name, s, 3)).avg;
  };
  const double xyce = avg("xyce680s-like");
  const double autod = avg("auto-like");
  const double cage = avg("cage14-like");
  const double apoa = avg("apoa1-like");
  const double lipid = avg("2DLipid-like");
  EXPECT_LT(xyce, autod);
  EXPECT_LT(autod, cage + 6.0);  // both mid-teens by design
  EXPECT_GT(apoa, cage);
  EXPECT_GT(lipid, autod);
}

TEST(Datasets, ScaleGrowsVertexCount) {
  const Graph small = make_dataset("cage14-like", 0.05, 1);
  const Graph big = make_dataset("cage14-like", 0.1, 1);
  EXPECT_GT(big.num_vertices(), small.num_vertices());
}

}  // namespace
}  // namespace hgr
