#include "workload/generators.hpp"

#include <gtest/gtest.h>

#include "hypergraph/builder.hpp"
#include "hypergraph/stats.hpp"

namespace hgr {
namespace {

TEST(Generators, Grid3dStructure) {
  const Graph g = make_grid3d(4, 3, 2, false);
  EXPECT_EQ(g.num_vertices(), 24);
  // 6-point stencil edge count: (nx-1)nynz + nx(ny-1)nz + nxny(nz-1).
  EXPECT_EQ(g.num_edges(), 3 * 3 * 2 + 4 * 2 * 2 + 4 * 3 * 1);
  EXPECT_TRUE(is_connected(g));
  g.validate();
}

TEST(Generators, Grid3dWithDiagonalsDenser) {
  const Graph plain = make_grid3d(5, 5, 5, false);
  const Graph diag = make_grid3d(5, 5, 5, true);
  EXPECT_GT(diag.num_edges(), plain.num_edges());
  EXPECT_TRUE(is_connected(diag));
  // Interior degree ~14 (6 axis + 8 diagonal).
  const DegreeStats s = graph_degree_stats(diag);
  EXPECT_GE(s.max, 12);
  diag.validate();
}

TEST(Generators, GeometricHitsTargetDegree) {
  const Graph g = make_random_geometric(2000, 2, 30.0, 1);
  EXPECT_EQ(g.num_vertices(), 2000);
  const DegreeStats s = graph_degree_stats(g);
  // Boundary effects pull the average below the interior target; accept a
  // generous band.
  EXPECT_GT(s.avg, 15.0);
  EXPECT_LT(s.avg, 45.0);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, Geometric3d) {
  const Graph g = make_random_geometric(1000, 3, 20.0, 2);
  const DegreeStats s = graph_degree_stats(g);
  EXPECT_GT(s.avg, 8.0);
  EXPECT_LT(s.avg, 35.0);
  EXPECT_TRUE(is_connected(g));
  g.validate();
}

TEST(Generators, CircuitLikeProfile) {
  const Graph g = make_circuit_like(5000, 2.4, 4, 150, 3);
  EXPECT_TRUE(is_connected(g));
  const DegreeStats s = graph_degree_stats(g);
  EXPECT_LT(s.avg, 6.0);       // sparse on average
  EXPECT_GT(s.max, 100);       // but hubs exist
  g.validate();
}

TEST(Generators, RegularRandomTightBand) {
  const Graph g = make_regular_random(3000, 18, 4);
  EXPECT_TRUE(is_connected(g));
  const DegreeStats s = graph_degree_stats(g);
  EXPECT_NEAR(s.avg, 18.0, 4.0);
  EXPECT_GT(s.min, 4);  // no isolated or near-isolated vertices
  g.validate();
}

TEST(Generators, DeterministicForSeed) {
  const Graph a = make_random_geometric(500, 2, 12.0, 42);
  const Graph b = make_random_geometric(500, 2, 12.0, 42);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  const Graph c = make_random_geometric(500, 2, 12.0, 43);
  EXPECT_NE(a.num_edges(), c.num_edges());
}

TEST(Generators, ConnectComponentsRepairsGaps) {
  std::vector<std::pair<Index, Index>> edges{{0, 1}, {2, 3}, {4, 5}};
  connect_components(6, edges);
  GraphBuilder b(6);
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  EXPECT_TRUE(is_connected(b.finalize()));
}

}  // namespace
}  // namespace hgr
