#include "workload/experiment.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hgr {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.dataset = "auto-like";
  cfg.scale = 0.02;  // a few hundred vertices
  cfg.k_values = {4};
  cfg.alphas = {1, 100};
  cfg.num_epochs = 3;
  cfg.num_trials = 1;
  return cfg;
}

TEST(Experiment, ProducesOneCellPerCombination) {
  const ExperimentConfig cfg = tiny_config();
  const auto cells = run_experiment(cfg);
  // 1 k * 2 alphas * 4 algorithms.
  EXPECT_EQ(cells.size(), 8u);
  for (const CellResult& c : cells) {
    EXPECT_GE(c.comm_volume, 0.0);
    EXPECT_GE(c.migration_volume, 0.0);
    EXPECT_GT(c.normalized_total, 0.0);
    EXPECT_NEAR(c.normalized_total,
                c.comm_volume + c.migration_volume / static_cast<double>(
                                                         c.alpha),
                1e-6);
  }
}

TEST(Experiment, CostFigureOutputContainsCsvAndBars) {
  const ExperimentConfig cfg = tiny_config();
  const auto cells = run_experiment(cfg);
  std::ostringstream out;
  print_cost_figure("Figure T", cfg, cells, out);
  const std::string s = out.str();
  EXPECT_NE(s.find("Figure T"), std::string::npos);
  EXPECT_NE(s.find("csv,dataset"), std::string::npos);
  EXPECT_NE(s.find("hg-repart"), std::string::npos);
  EXPECT_NE(s.find("k=4 alpha=1"), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(Experiment, RuntimeFigureOutput) {
  const ExperimentConfig cfg = tiny_config();
  const auto cells = run_experiment(cfg);
  std::ostringstream out;
  print_runtime_figure("Figure R", cfg, cells, out);
  EXPECT_NE(out.str().find("repartitioning time"), std::string::npos);
  EXPECT_NE(out.str().find("graph-scratch"), std::string::npos);
}

TEST(Experiment, CliParsing) {
  ExperimentConfig cfg;
  const char* argv[] = {"prog", "--scale=0.5",  "--epochs=7", "--trials=2",
                        "--k=8,16", "--alpha=1,1000", "--seed=9",
                        "--dataset=cage14-like"};
  cfg.apply_cli(8, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cfg.scale, 0.5);
  EXPECT_EQ(cfg.num_epochs, 7);
  EXPECT_EQ(cfg.num_trials, 2);
  EXPECT_EQ(cfg.k_values, (std::vector<Index>{8, 16}));
  EXPECT_EQ(cfg.alphas, (std::vector<Weight>{1, 1000}));
  EXPECT_EQ(cfg.seed, 9u);
  EXPECT_EQ(cfg.dataset, "cage14-like");
}

TEST(Experiment, PerturbNames) {
  EXPECT_EQ(to_string(PerturbKind::kStructure), "perturbed-structure");
  EXPECT_EQ(to_string(PerturbKind::kWeights), "perturbed-weights");
}

}  // namespace
}  // namespace hgr
