#include "workload/perturb.hpp"

#include <gtest/gtest.h>

#include "hypergraph/stats.hpp"
#include "test_util.hpp"
#include "workload/generators.hpp"

namespace hgr {
namespace {

Partition blocks_of(const Graph& g, Index k) {
  Partition p(k, g.num_vertices());
  for (Index v = 0; v < g.num_vertices(); ++v)
    p[VertexId{v}] = PartId{static_cast<Index>(
        (static_cast<std::int64_t>(v) * k) / g.num_vertices())};
  return p;
}

TEST(InducedSubgraph, KeepsRequestedVerticesAndEdges) {
  const Graph g = testing::make_graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  std::vector<bool> keep{true, true, false, true, true};
  std::vector<Index> to_base;
  const Graph sub = induced_subgraph(g, keep, to_base);
  EXPECT_EQ(sub.num_vertices(), 4);
  EXPECT_EQ(to_base, (std::vector<Index>{0, 1, 3, 4}));
  // Edges {0,1} and {3,4} survive; {1,2},{2,3} die with vertex 2.
  EXPECT_EQ(sub.num_edges(), 2);
  sub.validate();
}

TEST(InducedSubgraph, PreservesAttributes) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 7);
  b.set_vertex_weight(1, 9);
  b.set_vertex_size(1, 4);
  const Graph g = b.finalize();
  std::vector<bool> keep{false, true, true};
  std::vector<Index> to_base;
  const Graph sub = induced_subgraph(g, keep, to_base);
  EXPECT_EQ(sub.vertex_weight(0), 9);
  EXPECT_EQ(sub.vertex_size(0), 4);
}

TEST(StructuralPerturb, FirstEpochIsFullBase) {
  StructuralPerturbScenario sc(make_grid3d(5, 5, 5, false),
                               StructuralPerturbOptions{}, 1);
  const EpochProblem e1 = sc.next_epoch();
  EXPECT_TRUE(e1.first);
  EXPECT_EQ(e1.graph.num_vertices(), 125);
}

TEST(StructuralPerturb, LaterEpochsDeleteRoughlyTheFraction) {
  StructuralPerturbScenario sc(make_grid3d(6, 6, 6, false),
                               StructuralPerturbOptions{}, 2);
  const EpochProblem e1 = sc.next_epoch();
  sc.record_partition(blocks_of(e1.graph, 4));
  const EpochProblem e2 = sc.next_epoch();
  EXPECT_FALSE(e2.first);
  const Index base_n = 216;
  const Index deleted = base_n - e2.graph.num_vertices();
  // 25% of |V| drawn from half the parts; the pool may clip it slightly.
  EXPECT_GT(deleted, base_n / 8);
  EXPECT_LE(deleted, base_n / 3);
  // Old partition covers every surviving vertex.
  e2.old_partition.validate();
  EXPECT_EQ(e2.old_partition.num_vertices(), e2.graph.num_vertices());
}

TEST(StructuralPerturb, DeletionsComeOnlyFromAffectedParts) {
  StructuralPerturbScenario sc(make_grid3d(6, 6, 6, false),
                               StructuralPerturbOptions{}, 3);
  const EpochProblem e1 = sc.next_epoch();
  const Partition p = blocks_of(e1.graph, 4);
  sc.record_partition(p);
  const EpochProblem e2 = sc.next_epoch();
  // Count survivors per old part: at least two parts must be untouched
  // (parts_fraction = 0.5 of k=4).
  std::vector<Index> survivors(4, 0);
  for (Index v = 0; v < e2.graph.num_vertices(); ++v)
    ++survivors[static_cast<std::size_t>(e2.old_partition[VertexId{v}].v)];
  std::vector<Index> original(4, 0);
  for (Index v = 0; v < e1.graph.num_vertices(); ++v)
    ++original[static_cast<std::size_t>(p[VertexId{v}].v)];
  int untouched = 0;
  for (int q = 0; q < 4; ++q)
    if (survivors[static_cast<std::size_t>(q)] ==
        original[static_cast<std::size_t>(q)])
      ++untouched;
  EXPECT_GE(untouched, 2);
}

TEST(StructuralPerturb, DeletedVerticesReturnInLaterEpochs) {
  StructuralPerturbScenario sc(make_grid3d(6, 6, 6, false),
                               StructuralPerturbOptions{}, 4);
  EpochProblem e = sc.next_epoch();
  sc.record_partition(blocks_of(e.graph, 4));
  const Index n1 = e.graph.num_vertices();
  e = sc.next_epoch();
  sc.record_partition(blocks_of(e.graph, 4));
  const Index n2 = e.graph.num_vertices();
  e = sc.next_epoch();
  const Index n3 = e.graph.num_vertices();
  EXPECT_LT(n2, n1);
  // Epoch 3 deletes a *different* subset, so its size rebounds to ~75%.
  EXPECT_GT(n3, n2 / 2);
  EXPECT_LT(n3, n1);
}

TEST(WeightPerturb, StructureConstantWeightsChange) {
  WeightPerturbScenario sc(make_grid3d(5, 5, 5, false),
                           WeightPerturbOptions{}, 5);
  const EpochProblem e1 = sc.next_epoch();
  EXPECT_TRUE(e1.first);
  sc.record_partition(blocks_of(e1.graph, 10));
  const EpochProblem e2 = sc.next_epoch();
  EXPECT_EQ(e2.graph.num_vertices(), e1.graph.num_vertices());
  EXPECT_EQ(e2.graph.num_edges(), e1.graph.num_edges());
  EXPECT_GT(e2.graph.total_vertex_weight(), e1.graph.total_vertex_weight());
}

TEST(WeightPerturb, ScalingStaysWithinPaperBand) {
  WeightPerturbScenario sc(make_grid3d(5, 5, 5, false),
                           WeightPerturbOptions{}, 6);
  const EpochProblem e1 = sc.next_epoch();
  sc.record_partition(blocks_of(e1.graph, 10));
  const EpochProblem e2 = sc.next_epoch();
  for (Index v = 0; v < e2.graph.num_vertices(); ++v) {
    const Weight w = e2.graph.vertex_weight(v);
    EXPECT_GE(w, 1);
    EXPECT_LE(w, static_cast<Weight>(7.5) + 1);  // original weight 1
  }
}

TEST(WeightPerturb, OldPartitionCarriedThrough) {
  WeightPerturbScenario sc(make_grid3d(4, 4, 4, false),
                           WeightPerturbOptions{}, 7);
  const EpochProblem e1 = sc.next_epoch();
  const Partition p = blocks_of(e1.graph, 4);
  sc.record_partition(p);
  const EpochProblem e2 = sc.next_epoch();
  EXPECT_EQ(e2.old_partition.assignment, p.assignment);
}

}  // namespace
}  // namespace hgr
