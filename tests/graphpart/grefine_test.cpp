#include "graphpart/grefine.hpp"

#include <gtest/gtest.h>

#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "metrics/migration.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::make_graph;
using testing::random_graph;
using testing::random_partition;

TEST(GraphRefine, NeverWorsensEdgeCut) {
  GRefineOptions opt;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = random_graph(60, 120, seed);
    Partition p = random_partition(60, 4, seed + 5);
    Rng rng(seed);
    const GRefineResult r = graph_kway_refine(g, p, opt, rng);
    EXPECT_LE(r.final_cut, r.initial_cut);
    EXPECT_EQ(r.final_cut, edge_cut(g, p));
  }
}

TEST(GraphRefine, RebalancesOverloadedPart) {
  const Graph g = random_graph(60, 120, 9);
  Partition p(3, 60, PartId{0});  // everything on part 0
  GRefineOptions opt;
  opt.epsilon = 0.2;
  opt.max_passes = 6;
  Rng rng(1);
  const GRefineResult r = graph_kway_refine(g, p, opt, rng);
  EXPECT_TRUE(r.balanced);
  EXPECT_LE(imbalance(g.vertex_weights(), p), 0.25);
}

TEST(GraphRefine, CompositeGainRespectsMigration) {
  // A vertex with equal edge pull both ways returns home when the old
  // partition is supplied.
  const Graph g = make_graph(3, {{0, 1}, {1, 2}});
  Partition old_p(2, 3);
  old_p[VertexId{0}] = PartId{0};
  old_p[VertexId{1}] = PartId{1};  // home of vertex 1 is part 1
  old_p[VertexId{2}] = PartId{1};
  Partition p = old_p;
  p[VertexId{1}] = PartId{0};  // vertex 1 displaced
  GRefineOptions opt;
  opt.alpha = 1;
  opt.epsilon = 1.0;  // balance never binds here
  opt.old_partition = &old_p;
  Rng rng(2);
  graph_kway_refine(g, p, opt, rng);
  EXPECT_EQ(p[VertexId{1}], PartId{1});
  EXPECT_EQ(migration_volume(g.vertex_sizes(), old_p, p), 0);
}

TEST(GraphRefine, LargeAlphaPrioritizesEdgeCut) {
  // Vertex 1's home is part 1, but all its edges go to part 0. With a huge
  // alpha the edge-cut term dominates and it stays with its neighbors.
  GraphBuilder b(4);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 2, 5);
  b.add_edge(2, 3, 1);
  const Graph g = b.finalize();
  Partition old_p(2, 4);
  old_p[VertexId{0}] = PartId{0}; old_p[VertexId{1}] = PartId{1}; old_p[VertexId{2}] = PartId{0}; old_p[VertexId{3}] = PartId{1};
  Partition p(2, 4);
  p[VertexId{0}] = PartId{0}; p[VertexId{1}] = PartId{0}; p[VertexId{2}] = PartId{0}; p[VertexId{3}] = PartId{1};  // 1 moved next to its neighbors
  GRefineOptions opt;
  opt.alpha = 1000;
  opt.epsilon = 1.0;
  opt.old_partition = &old_p;
  Rng rng(3);
  graph_kway_refine(g, p, opt, rng);
  EXPECT_EQ(p[VertexId{1}], PartId{0});  // kept with neighbors despite migration pull
}

TEST(GraphRefine, SmallAlphaPrioritizesMigration) {
  // Same situation, alpha = 1 and a heavy vertex size: return home wins.
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 3, 1);
  b.set_vertex_size(1, 100);
  const Graph g = b.finalize();
  Partition old_p(2, 4);
  old_p[VertexId{0}] = PartId{0}; old_p[VertexId{1}] = PartId{1}; old_p[VertexId{2}] = PartId{0}; old_p[VertexId{3}] = PartId{1};
  Partition p(2, 4);
  p[VertexId{0}] = PartId{0}; p[VertexId{1}] = PartId{0}; p[VertexId{2}] = PartId{0}; p[VertexId{3}] = PartId{1};
  GRefineOptions opt;
  opt.alpha = 1;
  opt.epsilon = 1.0;
  opt.old_partition = &old_p;
  Rng rng(4);
  graph_kway_refine(g, p, opt, rng);
  EXPECT_EQ(p[VertexId{1}], PartId{1});  // migration gain 100 beats edge loss
}

TEST(GraphRefine, SinglePartReturnsImmediately) {
  const Graph g = random_graph(20, 30, 13);
  Partition p(1, 20, PartId{0});
  GRefineOptions opt;
  Rng rng(5);
  const GRefineResult r = graph_kway_refine(g, p, opt, rng);
  EXPECT_TRUE(r.balanced);
  EXPECT_EQ(r.moves, 0);
}

}  // namespace
}  // namespace hgr
