#include "graphpart/gcoarsen.hpp"

#include <gtest/gtest.h>

#include "metrics/cut.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::make_graph;
using testing::random_graph;

TEST(HeavyEdgeMatching, IsAnInvolution) {
  const Graph g = random_graph(50, 100, 3);
  Rng rng(1);
  const auto match = heavy_edge_matching(g, 0, rng);
  for (Index v = 0; v < 50; ++v)
    EXPECT_EQ(match[static_cast<std::size_t>(
                  match[static_cast<std::size_t>(v)])],
              v);
}

TEST(HeavyEdgeMatching, PrefersHeaviestEdge) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1);
  b.add_edge(0, 2, 10);
  const Graph g = b.finalize();
  Rng rng(2);
  const auto match = heavy_edge_matching(g, 0, rng);
  EXPECT_EQ(match[0], 2);
  EXPECT_EQ(match[2], 0);
  EXPECT_EQ(match[1], 1);
}

TEST(HeavyEdgeMatching, WeightCapBlocksHeavyMerges) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 1);
  b.set_vertex_weight(0, 8);
  b.set_vertex_weight(1, 8);
  const Graph g = b.finalize();
  Rng rng(3);
  EXPECT_EQ(heavy_edge_matching(g, 10, rng)[0], 0);
  Rng rng2(3);
  EXPECT_EQ(heavy_edge_matching(g, 16, rng2)[0], 1);
}

TEST(HeavyEdgeMatching, RestrictLabelsKeepsMatchesWithin) {
  const Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  const std::vector<PartId> labels{PartId{0}, PartId{1}, PartId{1}, PartId{0}};
  Rng rng(4);
  const auto match =
      heavy_edge_matching(g, 0, rng, std::span<const PartId>(labels));
  for (Index v = 0; v < 4; ++v) {
    const Index u = match[static_cast<std::size_t>(v)];
    if (u != v) {
      EXPECT_EQ(labels[static_cast<std::size_t>(u)],
                labels[static_cast<std::size_t>(v)]);
    }
  }
  // Only the {1,2} edge is label-internal.
  EXPECT_EQ(match[1], 2);
}

TEST(ContractGraph, WeightsAndSizesSummed) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 2, 3);
  b.add_edge(2, 3, 4);
  b.set_vertex_weight(0, 5);
  b.set_vertex_size(1, 7);
  const Graph g = b.finalize();
  std::vector<Index> match{1, 0, 3, 2};
  const GraphCoarseLevel level = contract_graph(g, match);
  EXPECT_EQ(level.coarse.num_vertices(), 2);
  EXPECT_EQ(level.coarse.total_vertex_weight(), g.total_vertex_weight());
  const Index c0 = level.fine_to_coarse[0];
  EXPECT_EQ(level.coarse.vertex_weight(c0), 6);   // 5 + 1
  EXPECT_EQ(level.coarse.vertex_size(c0), 8);     // 1 + 7
  level.coarse.validate();
}

TEST(ContractGraph, ParallelCoarseEdgesMerge) {
  // Square 0-1-2-3: matching {0,1} and {2,3} leaves two coarse parallel
  // edges (1-2 and 3-0) which must merge into one of weight 2.
  const Graph g = make_graph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  std::vector<Index> match{1, 0, 3, 2};
  const GraphCoarseLevel level = contract_graph(g, match);
  EXPECT_EQ(level.coarse.num_edges(), 1);
  EXPECT_EQ(level.coarse.edge_weights(0)[0], 2);
}

TEST(ContractGraph, EdgeCutPreservedUnderProjection) {
  const Graph g = random_graph(60, 120, 7);
  Rng rng(8);
  const auto match = heavy_edge_matching(g, 0, rng);
  const GraphCoarseLevel level = contract_graph(g, match);
  const Partition coarse_p =
      testing::random_partition(level.coarse.num_vertices(), 3, 9);
  Partition fine_p(3, g.num_vertices());
  for (const VertexId v : fine_p.vertices())
    fine_p[v] =
        coarse_p[VertexId{level.fine_to_coarse[static_cast<std::size_t>(v.v)]}];
  EXPECT_EQ(edge_cut(level.coarse, coarse_p), edge_cut(g, fine_p));
}

}  // namespace
}  // namespace hgr
