#include "graphpart/adaptive_repart.hpp"

#include <gtest/gtest.h>

#include "graphpart/gpartitioner.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "metrics/migration.hpp"
#include "test_util.hpp"
#include "workload/generators.hpp"

namespace hgr {
namespace {

using testing::random_graph;

AdaptiveRepartConfig make_cfg(Index k, Weight alpha,
                              std::uint64_t seed = 1) {
  AdaptiveRepartConfig cfg;
  cfg.base.num_parts = k;
  cfg.base.epsilon = 0.1;
  cfg.base.seed = seed;
  cfg.alpha = alpha;
  return cfg;
}

TEST(AdaptiveRepart, BalancedStartStaysNearlyPut) {
  // A good old partition with no imbalance: adaptive repartitioning should
  // migrate very little.
  const Graph g = make_grid3d(8, 8, 8, false);
  PartitionConfig scfg;
  scfg.num_parts = 4;
  const Partition old_p = partition_graph(g, scfg);
  const Partition new_p = adaptive_repartition(g, old_p, make_cfg(4, 100));
  const Weight mig = migration_volume(g.vertex_sizes(), old_p, new_p);
  EXPECT_LT(mig, g.num_vertices() / 10);
}

TEST(AdaptiveRepart, RepairsImbalance) {
  Graph g = random_graph(120, 240, 5);
  PartitionConfig scfg;
  scfg.num_parts = 4;
  const Partition old_p = partition_graph(g, scfg);
  // Inflate the weights of part 0 fourfold: now unbalanced.
  for (Index v = 0; v < g.num_vertices(); ++v)
    if (old_p[VertexId{v}] == PartId{0})
      g.set_vertex_weight(v, g.vertex_weight(v) * 4);
  ASSERT_GT(imbalance(g.vertex_weights(), old_p), 0.2);
  const Partition new_p = adaptive_repartition(g, old_p, make_cfg(4, 10));
  EXPECT_LE(imbalance(g.vertex_weights(), new_p), 0.25);
}

TEST(AdaptiveRepart, SmallAlphaMovesLessThanScratch) {
  // alpha=1 weighs migration as much as a full iteration of comm: the
  // adaptive method must migrate (much) less than repartitioning from
  // scratch without remap.
  const Graph g = random_graph(200, 500, 7);
  PartitionConfig scfg;
  scfg.num_parts = 4;
  const Partition old_p = partition_graph(g, scfg);
  Graph perturbed = g;
  Rng rng(9);
  for (Index v = 0; v < g.num_vertices(); ++v)
    if (rng.chance(0.3))
      perturbed.set_vertex_weight(v, g.vertex_weight(v) * 3);
  const Partition adaptive =
      adaptive_repartition(perturbed, old_p, make_cfg(4, 1));
  PartitionConfig fresh = scfg;
  fresh.seed = 123;
  const Partition scratch = partition_graph(perturbed, fresh);
  EXPECT_LT(migration_volume(perturbed.vertex_sizes(), old_p, adaptive),
            migration_volume(perturbed.vertex_sizes(), old_p, scratch));
}

TEST(AdaptiveRepart, PreservesK) {
  const Graph g = random_graph(60, 120, 11);
  PartitionConfig scfg;
  scfg.num_parts = 3;
  const Partition old_p = partition_graph(g, scfg);
  const Partition new_p = adaptive_repartition(g, old_p, make_cfg(3, 50));
  EXPECT_EQ(new_p.k, 3);
  new_p.validate();
}

TEST(AdaptiveRepart, SinglePartNoop) {
  const Graph g = random_graph(30, 60, 13);
  const Partition old_p(1, 30, PartId{0});
  const Partition new_p = adaptive_repartition(g, old_p, make_cfg(1, 10));
  EXPECT_EQ(new_p.assignment, old_p.assignment);
}

TEST(AdaptiveRepart, DeterministicForSeed) {
  const Graph g = random_graph(80, 160, 17);
  PartitionConfig scfg;
  scfg.num_parts = 4;
  const Partition old_p = partition_graph(g, scfg);
  const Partition a = adaptive_repartition(g, old_p, make_cfg(4, 10, 5));
  const Partition b = adaptive_repartition(g, old_p, make_cfg(4, 10, 5));
  EXPECT_EQ(a.assignment, b.assignment);
}

}  // namespace
}  // namespace hgr
