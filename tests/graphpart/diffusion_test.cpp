#include "graphpart/diffusion.hpp"

#include <gtest/gtest.h>

#include "graphpart/gpartitioner.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "metrics/migration.hpp"
#include "test_util.hpp"
#include "workload/generators.hpp"

namespace hgr {
namespace {

using testing::random_graph;

TEST(Diffusion, BalancedInputBarelyMoves) {
  const Graph g = make_grid3d(8, 8, 8, false);
  PartitionConfig scfg;
  scfg.num_parts = 4;
  const Partition old_p = partition_graph(g, scfg);
  DiffusionConfig cfg;
  const Partition p = diffusive_repartition(g, old_p, cfg);
  EXPECT_LT(num_migrated(old_p, p), g.num_vertices() / 20);
}

TEST(Diffusion, RepairsOverload) {
  Graph g = random_graph(200, 400, 3);
  PartitionConfig scfg;
  scfg.num_parts = 4;
  const Partition old_p = partition_graph(g, scfg);
  for (Index v = 0; v < g.num_vertices(); ++v)
    if (old_p[VertexId{v}] == PartId{0})
      g.set_vertex_weight(v, g.vertex_weight(v) * 5);
  ASSERT_GT(imbalance(g.vertex_weights(), old_p), 0.3);
  DiffusionConfig cfg;
  cfg.epsilon = 0.15;
  const Partition p = diffusive_repartition(g, old_p, cfg);
  EXPECT_LT(imbalance(g.vertex_weights(), p),
            imbalance(g.vertex_weights(), old_p) / 2);
}

TEST(Diffusion, MigratesLessThanScratch) {
  Graph g = make_grid3d(9, 9, 9, false);
  PartitionConfig scfg;
  scfg.num_parts = 8;
  const Partition old_p = partition_graph(g, scfg);
  Rng rng(5);
  for (Index v = 0; v < g.num_vertices(); ++v)
    if (rng.chance(0.2)) g.set_vertex_weight(v, 4);
  DiffusionConfig cfg;
  const Partition diffused = diffusive_repartition(g, old_p, cfg);
  PartitionConfig fresh = scfg;
  fresh.seed = 99;
  const Partition scratch = partition_graph(g, fresh);
  EXPECT_LT(migration_volume(g.vertex_sizes(), old_p, diffused),
            migration_volume(g.vertex_sizes(), old_p, scratch));
}

TEST(Diffusion, SinglePartNoop) {
  const Graph g = random_graph(30, 60, 7);
  const Partition old_p(1, 30, PartId{0});
  DiffusionConfig cfg;
  const Partition p = diffusive_repartition(g, old_p, cfg);
  EXPECT_EQ(p.assignment, old_p.assignment);
}

TEST(Diffusion, DeterministicForSeed) {
  Graph g = random_graph(100, 200, 9);
  PartitionConfig scfg;
  scfg.num_parts = 4;
  const Partition old_p = partition_graph(g, scfg);
  for (Index v = 0; v < 50; ++v) g.set_vertex_weight(v, 6);
  DiffusionConfig cfg;
  cfg.seed = 5;
  const Partition a = diffusive_repartition(g, old_p, cfg);
  const Partition b = diffusive_repartition(g, old_p, cfg);
  EXPECT_EQ(a.assignment, b.assignment);
}

}  // namespace
}  // namespace hgr
