#include "graphpart/gpartitioner.hpp"

#include <gtest/gtest.h>

#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "test_util.hpp"
#include "workload/generators.hpp"

namespace hgr {
namespace {

using testing::random_graph;

class GraphPartitionerSweep
    : public ::testing::TestWithParam<std::tuple<Index, std::uint64_t>> {};

TEST_P(GraphPartitionerSweep, ValidBalancedDeterministic) {
  const auto [k, seed] = GetParam();
  const Graph g = random_graph(200, 500, seed);
  PartitionConfig cfg;
  cfg.num_parts = k;
  cfg.epsilon = 0.1;
  cfg.seed = seed;
  const Partition p = partition_graph(g, cfg);
  p.validate();
  EXPECT_LE(imbalance(g.vertex_weights(), p), 0.35);
  const Partition p2 = partition_graph(g, cfg);
  EXPECT_EQ(p.assignment, p2.assignment);
}

INSTANTIATE_TEST_SUITE_P(
    KsAndSeeds, GraphPartitionerSweep,
    ::testing::Combine(::testing::Values<Index>(2, 4, 8),
                       ::testing::Values<std::uint64_t>(1, 2)));

TEST(GraphPartitioner, CutBeatsRandom) {
  const Graph g = make_grid3d(8, 8, 8, false);
  PartitionConfig cfg;
  cfg.num_parts = 8;
  const Partition p = partition_graph(g, cfg);
  const Partition r = testing::random_partition(g.num_vertices(), 8, 3);
  EXPECT_LT(edge_cut(g, p), edge_cut(g, r) / 2);
}

TEST(GraphPartitioner, MeshBisectionNearSurface) {
  // Bisecting a 10x10x10 grid should find a cut close to a face
  // (100 edges), certainly below 3x that.
  const Graph g = make_grid3d(10, 10, 10, false);
  PartitionConfig cfg;
  cfg.num_parts = 2;
  const Partition p = partition_graph(g, cfg);
  EXPECT_LT(edge_cut(g, p), 300);
}

TEST(GraphPartitioner, SinglePart) {
  const Graph g = random_graph(30, 40, 7);
  PartitionConfig cfg;
  cfg.num_parts = 1;
  const Partition p = partition_graph(g, cfg);
  for (const VertexId v : p.vertices()) EXPECT_EQ(p[v], PartId{0});
}

TEST(GraphPartitioner, EmptyGraph) {
  Graph g;
  PartitionConfig cfg;
  cfg.num_parts = 4;
  const Partition p = partition_graph(g, cfg);
  EXPECT_EQ(p.num_vertices(), 0);
}

}  // namespace
}  // namespace hgr
