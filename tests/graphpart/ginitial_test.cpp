#include "graphpart/ginitial.hpp"

#include <gtest/gtest.h>

#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::random_graph;

TEST(GreedyGraphGrowing, AssignsEveryVertex) {
  const Graph g = random_graph(80, 160, 1);
  PartitionConfig cfg;
  cfg.num_parts = 4;
  Rng rng(2);
  const Partition p = greedy_graph_growing(g, cfg, rng);
  p.validate();
}

TEST(GreedyGraphGrowing, RoughBalance) {
  const Graph g = random_graph(200, 400, 3);
  PartitionConfig cfg;
  cfg.num_parts = 4;
  cfg.epsilon = 0.1;
  Rng rng(4);
  const Partition p = greedy_graph_growing(g, cfg, rng);
  EXPECT_LE(imbalance(g.vertex_weights(), p), 0.6);
  const IdVector<PartId, Weight> pw = part_weights(g.vertex_weights(), p);
  for (const Weight w : pw) EXPECT_GT(w, 0);
}

TEST(GreedyGraphGrowing, DisconnectedGraphCovered) {
  // Two disjoint chains.
  GraphBuilder b(10);
  for (Index v = 1; v < 5; ++v) b.add_edge(v - 1, v);
  for (Index v = 6; v < 10; ++v) b.add_edge(v - 1, v);
  const Graph g = b.finalize();
  PartitionConfig cfg;
  cfg.num_parts = 2;
  Rng rng(5);
  const Partition p = greedy_graph_growing(g, cfg, rng);
  p.validate();
}

TEST(InitialGraphPartition, MultiTrialBeatsOrMatchesSingle) {
  const Graph g = random_graph(100, 250, 7);
  PartitionConfig one;
  one.num_parts = 3;
  one.num_initial_trials = 1;
  PartitionConfig eight = one;
  eight.num_initial_trials = 8;
  Rng r1(9), r8(9);
  const Partition p1 = initial_graph_partition(g, one, r1);
  const Partition p8 = initial_graph_partition(g, eight, r8);
  const bool b1 = imbalance(g.vertex_weights(), p1) <= one.epsilon + 1e-9;
  const bool b8 = imbalance(g.vertex_weights(), p8) <= one.epsilon + 1e-9;
  // More trials can only improve the (feasibility, cut) selection.
  if (b1 == b8 && b1) {
    EXPECT_LE(edge_cut(g, p8), edge_cut(g, p1));
  }
  EXPECT_GE(static_cast<int>(b8), static_cast<int>(b1));
}

TEST(InitialGraphPartition, SinglePart) {
  const Graph g = random_graph(20, 20, 11);
  PartitionConfig cfg;
  cfg.num_parts = 1;
  Rng rng(12);
  const Partition p = initial_graph_partition(g, cfg, rng);
  for (const VertexId v : p.vertices()) EXPECT_EQ(p[v], PartId{0});
}

}  // namespace
}  // namespace hgr
