#include "graphpart/scratch_remap.hpp"

#include <gtest/gtest.h>

#include "graphpart/gpartitioner.hpp"
#include "hypergraph/convert.hpp"
#include "metrics/cut.hpp"
#include "metrics/migration.hpp"
#include "partition/partitioner.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::random_graph;

TEST(ScratchRemap, GraphRemapNeverIncreasesMigration) {
  const Graph g = random_graph(150, 350, 3);
  PartitionConfig cfg;
  cfg.num_parts = 4;
  const Partition old_p = partition_graph(g, cfg);
  PartitionConfig cfg2 = cfg;
  cfg2.seed = 77;
  const Partition raw = partition_graph(g, cfg2);
  const Partition remapped = graph_scratch_remap(g, old_p, cfg2);
  // Same cut (labels permuted), migration not worse.
  EXPECT_EQ(edge_cut(g, raw), edge_cut(g, remapped));
  EXPECT_LE(migration_volume(g.vertex_sizes(), old_p, remapped),
            migration_volume(g.vertex_sizes(), old_p, raw));
}

TEST(ScratchRemap, HypergraphRemapKeepsCut) {
  const Graph g = random_graph(120, 240, 5);
  const Hypergraph h = graph_to_hypergraph(g);
  PartitionConfig cfg;
  cfg.num_parts = 4;
  const Partition old_p = partition_hypergraph(h, cfg);
  PartitionConfig cfg2 = cfg;
  cfg2.seed = 99;
  const Partition raw = partition_hypergraph(h, cfg2);
  const Partition remapped = hypergraph_scratch_remap(h, old_p, cfg2);
  EXPECT_EQ(connectivity_cut(h, raw), connectivity_cut(h, remapped));
  EXPECT_LE(migration_volume(h.vertex_sizes(), old_p, remapped),
            migration_volume(h.vertex_sizes(), old_p, raw));
}

TEST(ScratchRemap, IdenticalProblemYieldsNearZeroMigrationAfterRemap) {
  // Repartitioning an unchanged graph from scratch with the same seed gives
  // the same partition up to labels; remap must recover it exactly.
  const Graph g = random_graph(100, 200, 7);
  PartitionConfig cfg;
  cfg.num_parts = 4;
  const Partition old_p = partition_graph(g, cfg);
  const Partition remapped = graph_scratch_remap(g, old_p, cfg);
  EXPECT_EQ(migration_volume(g.vertex_sizes(), old_p, remapped), 0);
}

}  // namespace
}  // namespace hgr
