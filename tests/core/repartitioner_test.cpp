#include "core/repartitioner.hpp"

#include <gtest/gtest.h>

#include "graphpart/gpartitioner.hpp"
#include "hypergraph/convert.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "partition/partitioner.hpp"
#include "test_util.hpp"
#include "workload/generators.hpp"

namespace hgr {
namespace {

using testing::random_graph;

struct RepartProblem {
  Graph g;
  Hypergraph h;
  Partition old_p;
  RepartitionerConfig cfg;
};

RepartProblem make_setup(Index k, Weight alpha, std::uint64_t seed) {
  RepartProblem s{random_graph(150, 350, seed), {}, {}, {}};
  s.h = graph_to_hypergraph(s.g);
  s.cfg.alpha = alpha;
  s.cfg.partition.num_parts = k;
  s.cfg.partition.epsilon = 0.1;
  s.cfg.partition.seed = seed + 1;
  // The old partition comes from an *independent* static run (different
  // seed), as a fresh epoch's would: otherwise the scratch methods can
  // reproduce it bit-for-bit and migrate nothing.
  PartitionConfig static_cfg = s.cfg.partition;
  static_cfg.seed = seed + 500;
  s.old_p = partition_hypergraph(s.h, static_cfg);
  return s;
}

TEST(Repartitioner, HypergraphRepartProducesConsistentResult) {
  RepartProblem s = make_setup(4, 10, 1);
  const RepartitionResult r = hypergraph_repartition(s.h, s.old_p, s.cfg);
  r.partition.validate();
  EXPECT_EQ(r.cost.comm_volume, connectivity_cut(s.h, r.partition));
  EXPECT_EQ(r.cost.alpha, 10);
  EXPECT_EQ(r.plan.total_volume, r.cost.migration_volume);
  EXPECT_GE(r.seconds, 0.0);
}

TEST(Repartitioner, UnchangedProblemMigratesLittle) {
  // Repartitioning the very problem the old partition solves should keep
  // almost everything in place (the migration nets see to it).
  RepartProblem s = make_setup(4, 1, 2);
  const RepartitionResult r = hypergraph_repartition(s.h, s.old_p, s.cfg);
  EXPECT_LT(r.cost.migration_volume,
            s.h.total_vertex_weight() / 20);
}

TEST(Repartitioner, LargeAlphaApproachesStaticQuality) {
  RepartProblem s = make_setup(4, 1000, 3);
  const RepartitionResult r = hypergraph_repartition(s.h, s.old_p, s.cfg);
  // With alpha=1000 the comm term dominates: quality must be within a
  // factor of the static partitioner's.
  PartitionConfig static_cfg = s.cfg.partition;
  static_cfg.seed = 777;
  const Partition fresh = partition_hypergraph(s.h, static_cfg);
  EXPECT_LE(r.cost.comm_volume, 2 * connectivity_cut(s.h, fresh) + 10);
}

TEST(Repartitioner, AllFourAlgorithmsRun) {
  RepartProblem s = make_setup(3, 10, 4);
  for (const RepartAlgorithm alg :
       {RepartAlgorithm::kHypergraphRepart, RepartAlgorithm::kGraphRepart,
        RepartAlgorithm::kHypergraphScratch,
        RepartAlgorithm::kGraphScratch}) {
    const RepartitionResult r =
        run_repartition_algorithm(alg, s.h, s.g, s.old_p, s.cfg);
    r.partition.validate();
    EXPECT_EQ(r.partition.k, 3) << to_string(alg);
    // Costs are reported on the hypergraph metric for every algorithm.
    EXPECT_EQ(r.cost.comm_volume, connectivity_cut(s.h, r.partition))
        << to_string(alg);
  }
}

TEST(Repartitioner, RepartBeatsScratchOnTotalCostAtAlpha1) {
  // The paper's headline observation, on a single instance: for alpha = 1
  // the repartitioning methods' total cost beats partitioning from scratch.
  RepartProblem s = make_setup(4, 1, 5);
  const RepartitionResult repart =
      hypergraph_repartition(s.h, s.old_p, s.cfg);
  const RepartitionResult scratch = hypergraph_scratch(s.h, s.old_p, s.cfg);
  EXPECT_LT(repart.cost.total(), scratch.cost.total());
}

TEST(Repartitioner, AlgorithmNames) {
  EXPECT_EQ(to_string(RepartAlgorithm::kHypergraphRepart), "hg-repart");
  EXPECT_EQ(to_string(RepartAlgorithm::kGraphRepart), "graph-repart");
  EXPECT_EQ(to_string(RepartAlgorithm::kHypergraphScratch), "hg-scratch");
  EXPECT_EQ(to_string(RepartAlgorithm::kGraphScratch), "graph-scratch");
}

}  // namespace
}  // namespace hgr
