#include "core/migration_plan.hpp"

#include <gtest/gtest.h>

#include "metrics/migration.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::random_partition;

TEST(MigrationPlan, EmptyWhenNothingMoves) {
  const std::vector<Weight> sizes{1, 2, 3};
  const Partition p = random_partition(3, 2, 1);
  const MigrationPlan plan = extract_migration_plan(sizes, p, p);
  EXPECT_TRUE(plan.moves.empty());
  EXPECT_EQ(plan.total_volume, 0);
  EXPECT_EQ(plan.max_part_traffic(), 0);
}

TEST(MigrationPlan, RecordsMoves) {
  const std::vector<Weight> sizes{5, 7};
  Partition a(2, 2), b(2, 2);
  a[0] = 0; a[1] = 1;
  b[0] = 1; b[1] = 1;
  const MigrationPlan plan = extract_migration_plan(sizes, a, b);
  ASSERT_EQ(plan.moves.size(), 1u);
  EXPECT_EQ(plan.moves[0].vertex, 0);
  EXPECT_EQ(plan.moves[0].from, 0);
  EXPECT_EQ(plan.moves[0].to, 1);
  EXPECT_EQ(plan.moves[0].size, 5);
  EXPECT_EQ(plan.total_volume, 5);
  EXPECT_EQ(plan.volume_between(0, 1), 5);
  EXPECT_EQ(plan.volume_between(1, 0), 0);
}

TEST(MigrationPlan, VolumeMatrixConsistentWithMetric) {
  std::vector<Weight> sizes(50);
  Rng rng(3);
  for (auto& s : sizes) s = 1 + static_cast<Weight>(rng.below(4));
  const Partition a = random_partition(50, 4, 4);
  const Partition b = random_partition(50, 4, 5);
  const MigrationPlan plan = extract_migration_plan(sizes, a, b);
  EXPECT_EQ(plan.total_volume, migration_volume(sizes, a, b));
  Weight matrix_total = 0;
  for (PartId i = 0; i < 4; ++i)
    for (PartId j = 0; j < 4; ++j) matrix_total += plan.volume_between(i, j);
  EXPECT_EQ(matrix_total, plan.total_volume);
}

TEST(MigrationPlan, MaxPartTraffic) {
  const std::vector<Weight> sizes{10, 1};
  Partition a(3, 2), b(3, 2);
  a[0] = 0; a[1] = 1;
  b[0] = 2; b[1] = 2;
  const MigrationPlan plan = extract_migration_plan(sizes, a, b);
  // Part 2 receives 11; parts 0/1 send 10/1.
  EXPECT_EQ(plan.max_part_traffic(), 11);
  EXPECT_NE(plan.summary().find("volume=11"), std::string::npos);
}

}  // namespace
}  // namespace hgr
