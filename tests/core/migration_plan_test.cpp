#include "core/migration_plan.hpp"

#include <gtest/gtest.h>

#include <span>

#include "metrics/migration.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::random_partition;

TEST(MigrationPlan, EmptyWhenNothingMoves) {
  const std::vector<Weight> sizes{1, 2, 3};
  const Partition p = random_partition(3, 2, 1);
  const MigrationPlan plan = extract_migration_plan(std::span<const Weight>(sizes), p, p);
  EXPECT_TRUE(plan.moves.empty());
  EXPECT_EQ(plan.total_volume, 0);
  EXPECT_EQ(plan.max_part_traffic(), 0);
}

TEST(MigrationPlan, RecordsMoves) {
  const std::vector<Weight> sizes{5, 7};
  Partition a(2, 2), b(2, 2);
  a[VertexId{0}] = PartId{0}; a[VertexId{1}] = PartId{1};
  b[VertexId{0}] = b[VertexId{1}] = PartId{1};
  const MigrationPlan plan = extract_migration_plan(std::span<const Weight>(sizes), a, b);
  ASSERT_EQ(plan.moves.size(), 1u);
  EXPECT_EQ(plan.moves[0].vertex, VertexId{0});
  EXPECT_EQ(plan.moves[0].from, PartId{0});
  EXPECT_EQ(plan.moves[0].to, PartId{1});
  EXPECT_EQ(plan.moves[0].size, 5);
  EXPECT_EQ(plan.total_volume, 5);
  EXPECT_EQ(plan.volume_between(PartId{0}, PartId{1}), 5);
  EXPECT_EQ(plan.volume_between(PartId{1}, PartId{0}), 0);
}

TEST(MigrationPlan, VolumeMatrixConsistentWithMetric) {
  std::vector<Weight> sizes(50);
  Rng rng(3);
  for (auto& s : sizes) s = 1 + static_cast<Weight>(rng.below(4));
  const Partition a = random_partition(50, 4, 4);
  const Partition b = random_partition(50, 4, 5);
  const MigrationPlan plan = extract_migration_plan(std::span<const Weight>(sizes), a, b);
  EXPECT_EQ(plan.total_volume, migration_volume(sizes, a, b));
  Weight matrix_total = 0;
  for (const PartId i : part_range(4))
    for (const PartId j : part_range(4))
      matrix_total += plan.volume_between(i, j);
  EXPECT_EQ(matrix_total, plan.total_volume);
}

TEST(MigrationPlan, MaxPartTraffic) {
  const std::vector<Weight> sizes{10, 1};
  Partition a(3, 2), b(3, 2);
  a[VertexId{0}] = PartId{0}; a[VertexId{1}] = PartId{1};
  b[VertexId{0}] = b[VertexId{1}] = PartId{2};
  const MigrationPlan plan = extract_migration_plan(std::span<const Weight>(sizes), a, b);
  // Part 2 receives 11; parts 0/1 send 10/1.
  EXPECT_EQ(plan.max_part_traffic(), 11);
  EXPECT_NE(plan.summary().find("volume=11"), std::string::npos);
}

}  // namespace
}  // namespace hgr
