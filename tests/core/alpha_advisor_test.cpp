#include "core/alpha_advisor.hpp"

#include <gtest/gtest.h>

namespace hgr {
namespace {

TEST(AlphaAdvisor, DefaultsToMinimumWithoutHistory) {
  AlphaAdvisor advisor;
  EXPECT_EQ(advisor.recommend(), 1);
  EXPECT_EQ(advisor.num_observations(), 0);
}

TEST(AlphaAdvisor, TracksConstantEpochLength) {
  AlphaAdvisor advisor;
  for (int i = 0; i < 5; ++i) advisor.record({100, 10, 5});
  EXPECT_EQ(advisor.recommend(), 100);
}

TEST(AlphaAdvisor, SmoothsTowardRecentLengths) {
  AlphaAdvisor advisor(0.5);
  advisor.record({10, 1, 1});
  advisor.record({1000, 1, 1});
  const Weight rec = advisor.recommend();
  EXPECT_GT(rec, 10);
  EXPECT_LT(rec, 1000);
  // More recent long epochs pull the estimate up.
  advisor.record({1000, 1, 1});
  EXPECT_GT(advisor.recommend(), rec);
}

TEST(AlphaAdvisor, ClampsToPaperRange) {
  AlphaAdvisor advisor;  // default clamp [1, 1000]
  advisor.record({50000, 1, 1});
  EXPECT_EQ(advisor.recommend(), 1000);
}

TEST(AlphaAdvisor, CustomClampRange) {
  AlphaAdvisor advisor(0.5, 10, 200);
  advisor.record({1, 0, 0});
  EXPECT_EQ(advisor.recommend(), 10);
  advisor.record({100000, 0, 0});
  EXPECT_EQ(advisor.recommend(), 200);
}

TEST(AlphaAdvisor, ReplayTotalsObjective) {
  AlphaAdvisor advisor;
  advisor.record({5, 10, 100});  // alpha*10 + 100
  advisor.record({5, 20, 50});   // alpha*20 + 50
  EXPECT_EQ(advisor.replay_total_cost(1), 10 + 100 + 20 + 50);
  EXPECT_EQ(advisor.replay_total_cost(10), 100 + 100 + 200 + 50);
}

}  // namespace
}  // namespace hgr
