// Degradation-policy matrix (docs/ROBUSTNESS.md): for each way an epoch
// can go wrong — thrown attempts, completed-but-over-budget attempts, a
// failing scratch fallback, a shutdown request mid-policy — assert both
// the decision (retry / degrade / fallback choice) and the counter
// attribution (epoch.retries vs epoch.repart_failures vs
// epoch.over_budget vs epoch.degraded).
//
// Serial attempts are made to fail deterministically by running them with
// old_p.k != cfg.partition.num_parts under ScopedAssertHandler, which
// turns the pipeline's HGR_ASSERT into a catchable AssertionError — the
// policy treats it like any other retryable failure.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>  // hgr-lint: thread-ok (drives request_stop mid-backoff)

#include "common/assert.hpp"
#include "common/stop_token.hpp"
#include "common/timer.hpp"
#include "core/repartitioner.hpp"
#include "fault/fault_plan.hpp"
#include "hypergraph/convert.hpp"
#include "obs/trace.hpp"
#include "workload/generators.hpp"

namespace hgr {
namespace {

Hypergraph test_hypergraph() {
  return graph_to_hypergraph(make_grid3d(5, 5, 5, false));
}

Partition striped(const Hypergraph& h, Index k) {
  Partition p(k, h.num_vertices());
  for (Index v = 0; v < h.num_vertices(); ++v)
    p[VertexId{v}] = PartId{v % k};
  return p;
}

RepartitionerConfig serial_cfg(Index k) {
  RepartitionerConfig cfg;
  cfg.alpha = 10;
  cfg.partition.num_parts = k;
  cfg.partition.epsilon = 0.1;
  cfg.partition.seed = 7;
  return cfg;
}

TEST(DegradationPolicy, OverBudgetDegradesImmediatelyWithoutRetry) {
  // The satellite-1 regression: an attempt that *completed* over
  // epoch_time_budget used to be retried, burning another full-cost run
  // while the epoch was already late. It must degrade on the spot and be
  // counted under epoch.over_budget, not epoch.repart_failures.
  obs::Registry reg;
  obs::ScopedRegistry scope(reg);
  const Hypergraph h = test_hypergraph();
  const Partition old_p = striped(h, 4);
  RepartitionerConfig cfg = serial_cfg(4);
  cfg.max_retries = 3;            // would retry 3 times pre-fix
  cfg.epoch_time_budget = 1e-12;  // unmeetable
  const GuardedRepartitionResult guarded = run_repartition_with_policy(
      RepartAlgorithm::kHypergraphRepart, h, Graph{}, old_p, cfg);
  EXPECT_TRUE(guarded.degraded);
  EXPECT_EQ(guarded.retries, 0);
  EXPECT_NE(guarded.error.find("budget"), std::string::npos) << guarded.error;
  EXPECT_EQ(reg.counter_value("epoch.over_budget"), 1u);
  EXPECT_EQ(reg.counter_value("epoch.retries"), 0u);
  EXPECT_EQ(reg.counter_value("epoch.repart_failures"), 0u);
  EXPECT_EQ(reg.counter_value("epoch.degraded"), 1u);
  // Keep-old fallback: the old assignment, zero migration.
  EXPECT_EQ(guarded.result.cost.migration_volume, 0);
  for (const VertexId v : old_p.vertices())
    EXPECT_EQ(guarded.result.partition[v], old_p[v]);
}

TEST(DegradationPolicy, FaultDelayedParallelAttemptIsNotRetried) {
  // Same bug, driven the way production would hit it: injected comm
  // delays push a *successful* parallel attempt over the budget. One
  // attempt runs, over_budget records it, no retry burns the budget again.
  obs::Registry reg;
  obs::ScopedRegistry scope(reg);
  const Hypergraph h = test_hypergraph();
  const Partition old_p = striped(h, 4);
  RepartitionerConfig cfg = serial_cfg(4);
  cfg.num_ranks = 2;
  cfg.deadlock_timeout = 5.0;
  cfg.max_retries = 2;
  cfg.epoch_time_budget = 0.005;
  cfg.partition.fault_plan = std::make_shared<const fault::FaultPlan>(
      fault::FaultPlan::parse("delay@allreduce:ms=20,count=0"));
  const GuardedRepartitionResult guarded = run_repartition_with_policy(
      RepartAlgorithm::kHypergraphRepart, h, Graph{}, old_p, cfg);
  EXPECT_TRUE(guarded.degraded);
  EXPECT_EQ(guarded.retries, 0);
  EXPECT_NE(guarded.error.find("budget"), std::string::npos) << guarded.error;
  EXPECT_EQ(reg.counter_value("epoch.over_budget"), 1u);
  EXPECT_EQ(reg.counter_value("epoch.retries"), 0u);
  EXPECT_EQ(reg.counter_value("epoch.repart_failures"), 0u);
}

TEST(DegradationPolicy, RetriesExhaustedCounterAttribution) {
  // Genuinely retryable failures keep the old semantics: every attempt
  // throws, every retry is counted, and the epoch degrades once.
  obs::Registry reg;
  obs::ScopedRegistry scope(reg);
  ScopedAssertHandler throwing;  // k mismatch asserts become exceptions
  const Hypergraph h = test_hypergraph();
  const Partition old_p = striped(h, 3);  // != num_parts: attempts fail
  RepartitionerConfig cfg = serial_cfg(4);
  cfg.max_retries = 2;
  const GuardedRepartitionResult guarded = run_repartition_with_policy(
      RepartAlgorithm::kHypergraphRepart, h, Graph{}, old_p, cfg);
  EXPECT_TRUE(guarded.degraded);
  EXPECT_EQ(guarded.retries, 2);
  EXPECT_FALSE(guarded.error.empty());
  EXPECT_EQ(reg.counter_value("epoch.retries"), 2u);
  EXPECT_EQ(reg.counter_value("epoch.repart_failures"), 3u);
  EXPECT_EQ(reg.counter_value("epoch.over_budget"), 0u);
  EXPECT_EQ(reg.counter_value("epoch.degraded"), 1u);
  EXPECT_EQ(guarded.result.cost.migration_volume, 0);
}

TEST(DegradationPolicy, ScratchFallbackFailureFallsBackToKeepOld) {
  // When the serial scratch fallback itself dies, the policy's last
  // resort is keeping the old partition — the run must still complete.
  // The same k mismatch that fails the attempts fails the scratch path.
  ScopedAssertHandler throwing;
  const Hypergraph h = test_hypergraph();
  const Partition old_p = striped(h, 3);
  RepartitionerConfig cfg = serial_cfg(4);
  cfg.max_retries = 1;
  cfg.fallback = EpochFallback::kScratch;
  const GuardedRepartitionResult guarded = run_repartition_with_policy(
      RepartAlgorithm::kHypergraphRepart, h, Graph{}, old_p, cfg);
  EXPECT_TRUE(guarded.degraded);
  EXPECT_FALSE(guarded.error.empty());
  ASSERT_EQ(guarded.result.partition.num_vertices(), h.num_vertices());
  EXPECT_EQ(guarded.result.cost.migration_volume, 0);
  for (const VertexId v : old_p.vertices())
    EXPECT_EQ(guarded.result.partition[v], old_p[v]);
}

TEST(DegradationPolicy, BackoffExponentSaturatesForLargeRetryCounts) {
  // Satellite-2 regression: `1 << (attempt - 1)` in int was UB beyond 31
  // retries. The exponent now saturates (computed in int64_t), so a
  // 35-retry schedule with a tiny base backoff completes quickly instead
  // of overflowing — UBSan in CI guards the shift itself.
  ScopedAssertHandler throwing;
  const Hypergraph h = test_hypergraph();
  const Partition old_p = striped(h, 3);
  RepartitionerConfig cfg = serial_cfg(4);
  cfg.max_retries = 35;
  cfg.retry_backoff_seconds = 1e-12;  // capped worst delay ~1ms
  const GuardedRepartitionResult guarded = run_repartition_with_policy(
      RepartAlgorithm::kHypergraphRepart, h, Graph{}, old_p, cfg);
  EXPECT_TRUE(guarded.degraded);
  EXPECT_EQ(guarded.retries, 35);
}

TEST(DegradationPolicy, StopRequestedSkipsAttemptsAndScratch) {
  // A pre-stopped token degrades straight to keep-old: no attempt runs,
  // and even a kScratch fallback is skipped (shutdown wants cheap).
  obs::Registry reg;
  obs::ScopedRegistry scope(reg);
  const Hypergraph h = test_hypergraph();
  const Partition old_p = striped(h, 4);
  RepartitionerConfig cfg = serial_cfg(4);
  cfg.fallback = EpochFallback::kScratch;
  StopToken stop;
  stop.request_stop();
  cfg.stop = &stop;
  const GuardedRepartitionResult guarded = run_repartition_with_policy(
      RepartAlgorithm::kHypergraphRepart, h, Graph{}, old_p, cfg);
  EXPECT_TRUE(guarded.degraded);
  EXPECT_EQ(guarded.retries, 0);
  EXPECT_NE(guarded.error.find("stopped"), std::string::npos)
      << guarded.error;
  EXPECT_EQ(reg.counter_value("epoch.repart_failures"), 0u);
  for (const VertexId v : old_p.vertices())
    EXPECT_EQ(guarded.result.partition[v], old_p[v]);
}

TEST(DegradationPolicy, StopInterruptsRetryBackoff) {
  // The daemon-shutdown scenario: the policy is parked in a long
  // exponential backoff when stop fires. The wait must cut short and the
  // epoch degrade to keep-old — not sleep out the schedule.
  ScopedAssertHandler throwing;
  const Hypergraph h = test_hypergraph();
  const Partition old_p = striped(h, 3);  // attempts fail -> backoff
  RepartitionerConfig cfg = serial_cfg(4);
  cfg.max_retries = 1;
  cfg.retry_backoff_seconds = 60.0;  // would block a minute uninterrupted
  StopToken stop;
  cfg.stop = &stop;
  GuardedRepartitionResult guarded;
  WallTimer timer;
  // hgr-lint: thread-ok (test needs a second thread to fire the stop)
  std::thread runner([&] {
    ScopedAssertHandler thread_local_throwing;
    guarded = run_repartition_with_policy(RepartAlgorithm::kHypergraphRepart,
                                          h, Graph{}, old_p, cfg);
  });
  stop.request_stop();
  runner.join();
  EXPECT_LT(timer.seconds(), 30.0);  // far below the 60s backoff
  EXPECT_TRUE(guarded.degraded);
  EXPECT_NE(guarded.error.find("stopped"), std::string::npos)
      << guarded.error;
  EXPECT_EQ(guarded.result.cost.migration_volume, 0);
}

}  // namespace
}  // namespace hgr
