#include "core/epoch_driver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>
#include <string>

#include "test_util.hpp"
#include "workload/generators.hpp"
#include "workload/perturb.hpp"

namespace hgr {
namespace {

RepartitionerConfig small_cfg(Index k, Weight alpha) {
  RepartitionerConfig cfg;
  cfg.alpha = alpha;
  cfg.partition.num_parts = k;
  cfg.partition.epsilon = 0.1;
  cfg.partition.seed = 7;
  return cfg;
}

TEST(EpochDriver, RunsStructuralScenario) {
  StructuralPerturbScenario scenario(make_grid3d(6, 6, 6, false),
                                     StructuralPerturbOptions{}, 11);
  const EpochRunSummary s = run_epochs(
      scenario, RepartAlgorithm::kHypergraphRepart, small_cfg(4, 10), 3);
  ASSERT_EQ(s.epochs.size(), 3u);
  EXPECT_EQ(s.epochs[0].epoch, 1);
  EXPECT_EQ(s.epochs[0].cost.migration_volume, 0);  // static bootstrap
  for (const EpochRecord& r : s.epochs) {
    EXPECT_GT(r.num_vertices, 0);
    EXPECT_GE(r.cost.comm_volume, 0);
  }
  // Means cover only repartitioning epochs.
  EXPECT_GT(s.mean_comm_volume(), 0.0);
}

TEST(EpochDriver, RunsWeightScenarioForEveryAlgorithm) {
  for (const RepartAlgorithm alg :
       {RepartAlgorithm::kHypergraphRepart, RepartAlgorithm::kGraphRepart,
        RepartAlgorithm::kHypergraphScratch,
        RepartAlgorithm::kGraphScratch}) {
    WeightPerturbScenario scenario(make_grid3d(5, 5, 5, false),
                                   WeightPerturbOptions{}, 13);
    const EpochRunSummary s =
        run_epochs(scenario, alg, small_cfg(4, 100), 3);
    ASSERT_EQ(s.epochs.size(), 3u) << to_string(alg);
    // Imbalance after each repartition stays sane.
    for (const EpochRecord& r : s.epochs)
      EXPECT_LT(r.imbalance, 0.6) << to_string(alg);
  }
}

TEST(EpochDriver, SummaryMeansMatchRecords) {
  EpochRunSummary s;
  EpochRecord e1;
  e1.epoch = 1;
  e1.is_static = true;  // the means filter on this flag, not the number
  e1.cost = {100, 0, 10};
  EpochRecord e2;
  e2.epoch = 2;
  e2.cost = {10, 20, 10};
  e2.repart_seconds = 2.0;
  EpochRecord e3;
  e3.epoch = 3;
  e3.cost = {30, 40, 10};
  e3.repart_seconds = 4.0;
  s.epochs = {e1, e2, e3};
  EXPECT_DOUBLE_EQ(s.mean_comm_volume(), 20.0);
  EXPECT_DOUBLE_EQ(s.mean_migration_volume(), 30.0);
  EXPECT_DOUBLE_EQ(s.mean_repart_seconds(), 3.0);
  EXPECT_DOUBLE_EQ(s.mean_normalized_total_cost(),
                   ((10 + 2.0) + (30 + 4.0)) / 2.0);
}

TEST(EpochSeries, PathologicalMagnitudesDoNotTruncate) {
  // Regression: to_csv used to format each row into a fixed buffer without
  // checking the snprintf result, silently truncating rows whose fields hit
  // extreme magnitudes. Worst-case int64/int32/double values must survive
  // the round trip to text in full.
  EpochRunSummary s;
  EpochRecord r;
  r.epoch = std::numeric_limits<Index>::min();
  r.cost.alpha = 1;  // keeps total() = comm + mig inside int64
  r.cost.comm_volume = -4611686018427387904LL;
  r.cost.migration_volume = -4611686018427387904LL;
  r.repart_seconds = -1.7976931348623157e308;
  r.imbalance = -1.7976931348623157e308;
  r.coarsen_seconds = -1.7976931348623157e308;
  r.initial_seconds = -1.7976931348623157e308;
  r.refine_seconds = -1.7976931348623157e308;
  r.num_vertices = std::numeric_limits<Index>::min();
  r.num_migrated = std::numeric_limits<Index>::min();
  r.degraded = true;
  r.retries = std::numeric_limits<Index>::min();
  s.epochs.push_back(r);
  EpochSeries series;
  series.append("pathological-dataset", "perturb", "alg",
                std::numeric_limits<Index>::min(),
                std::numeric_limits<Weight>::min(),
                std::numeric_limits<Index>::min(), s);
  const std::string csv = series.to_csv();
  std::string header, row, extra;
  {
    std::istringstream lines(csv);
    ASSERT_TRUE(static_cast<bool>(std::getline(lines, header)));
    ASSERT_TRUE(static_cast<bool>(std::getline(lines, row)));
    EXPECT_FALSE(static_cast<bool>(std::getline(lines, extra)));
  }
  // Every column made it out: the data row has exactly as many fields as
  // the header.
  EXPECT_EQ(std::count(row.begin(), row.end(), ','),
            std::count(header.begin(), header.end(), ','));
  // And the widest fields are present in full, not cut mid-digit.
  EXPECT_NE(row.find("-9223372036854775808"), std::string::npos) << row;
  EXPECT_NE(row.find("-4611686018427387904,-4611686018427387904"),
            std::string::npos)
      << row;
  EXPECT_NE(row.find("-1.79769e+308"), std::string::npos) << row;
  // The retries column survives uncut, followed by the tier/escalated and
  // critical-path tail columns (defaults: no span -> -1, 0).
  const std::string tail =
      std::to_string(std::numeric_limits<Index>::min()) + ",full,0,-1,0";
  ASSERT_GE(row.size(), tail.size());
  EXPECT_EQ(row.substr(row.size() - tail.size()), tail);
}

TEST(EpochDriver, MigrationHappensAfterPerturbation) {
  StructuralPerturbScenario scenario(make_grid3d(6, 6, 6, false),
                                     StructuralPerturbOptions{}, 17);
  const EpochRunSummary s = run_epochs(
      scenario, RepartAlgorithm::kGraphScratch, small_cfg(4, 1), 3);
  // Scratch methods at alpha=1 migrate plenty once the data changes.
  bool migrated = false;
  for (const EpochRecord& r : s.epochs)
    if (r.epoch >= 2 && r.cost.migration_volume > 0) migrated = true;
  EXPECT_TRUE(migrated);
}

TEST(EpochSeries, AppendTagsEveryEpoch) {
  EpochRunSummary s;
  for (Index e = 1; e <= 3; ++e) {
    EpochRecord r;
    r.epoch = e;
    r.cost = {100 * e, 10 * e, 10};
    s.epochs.push_back(r);
  }
  EpochSeries series;
  series.append("grid", "structure", "hypergraph-repart", 4, 10, 0, s);
  series.append("grid", "structure", "graph-scratch", 4, 10, 1, s);
  ASSERT_EQ(series.rows.size(), 6u);
  EXPECT_EQ(series.rows[0].dataset, "grid");
  EXPECT_EQ(series.rows[0].record.epoch, 1);
  EXPECT_EQ(series.rows[2].record.epoch, 3);
  EXPECT_EQ(series.rows[3].algorithm, "graph-scratch");
  EXPECT_EQ(series.rows[3].trial, 1);
}

TEST(EpochSeries, CsvHasHeaderAndOneLinePerRow) {
  EpochRunSummary s;
  EpochRecord r;
  r.epoch = 2;
  r.cost = {50, 7, 10};
  r.repart_seconds = 0.25;
  r.imbalance = 1.02;
  r.num_vertices = 216;
  r.num_migrated = 12;
  r.coarsen_seconds = 0.1;
  s.epochs = {r};
  EpochSeries series;
  series.append("grid", "weights", "hypergraph-repart", 8, 10, 3, s);
  const std::string csv = series.to_csv();
  const std::string header = EpochSeries::csv_header();
  ASSERT_EQ(csv.compare(0, header.size(), header), 0);
  // header + 1 data line, each newline-terminated.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
  EXPECT_NE(csv.find("grid,weights,hypergraph-repart,8,10,3,2,"),
            std::string::npos);
  // cut, migration, imbalance and vertex counts all appear in the row.
  EXPECT_NE(csv.find(",50,"), std::string::npos);
  EXPECT_NE(csv.find(",216,"), std::string::npos);
}

TEST(EpochSeries, RunEpochsFillsPhaseSecondsForHypergraphRepart) {
  StructuralPerturbScenario scenario(make_grid3d(6, 6, 6, false),
                                     StructuralPerturbOptions{}, 11);
  const EpochRunSummary s = run_epochs(
      scenario, RepartAlgorithm::kHypergraphRepart, small_cfg(4, 10), 3);
  EpochSeries series;
  series.append("grid", "structure", "hypergraph-repart", 4, 10, 0, s);
  ASSERT_EQ(series.rows.size(), 3u);
  // The multilevel pipeline opens coarsen/initial/refine scopes, so at
  // least one epoch must show nonzero phase time (they are wall-time
  // deltas, so allow zeros on a fast machine for individual epochs).
  double total_phase = 0.0;
  for (const EpochSeriesRow& row : series.rows)
    total_phase += row.record.coarsen_seconds + row.record.initial_seconds +
                   row.record.refine_seconds;
  EXPECT_GT(total_phase, 0.0);
  // Phase seconds can never exceed the epoch's repartition time by much
  // (they are nested inside it).
  for (const EpochSeriesRow& row : series.rows) {
    EXPECT_GE(row.record.coarsen_seconds, 0.0);
    EXPECT_GE(row.record.initial_seconds, 0.0);
    EXPECT_GE(row.record.refine_seconds, 0.0);
  }
}

TEST(EpochSeries, WriteCsvRoundTrips) {
  EpochRunSummary s;
  EpochRecord r;
  r.epoch = 1;
  s.epochs = {r};
  EpochSeries series;
  series.append("d", "none", "a", 2, 1, 0, s);
  const std::string path = ::testing::TempDir() + "/epoch_series_test.csv";
  ASSERT_TRUE(series.write_csv(path));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, series.to_csv());
  EXPECT_FALSE(series.write_csv("/nonexistent-dir/x/y.csv"));
}

}  // namespace
}  // namespace hgr
