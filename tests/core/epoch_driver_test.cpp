#include "core/epoch_driver.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "workload/generators.hpp"
#include "workload/perturb.hpp"

namespace hgr {
namespace {

RepartitionerConfig small_cfg(PartId k, Weight alpha) {
  RepartitionerConfig cfg;
  cfg.alpha = alpha;
  cfg.partition.num_parts = k;
  cfg.partition.epsilon = 0.1;
  cfg.partition.seed = 7;
  return cfg;
}

TEST(EpochDriver, RunsStructuralScenario) {
  StructuralPerturbScenario scenario(make_grid3d(6, 6, 6, false),
                                     StructuralPerturbOptions{}, 11);
  const EpochRunSummary s = run_epochs(
      scenario, RepartAlgorithm::kHypergraphRepart, small_cfg(4, 10), 3);
  ASSERT_EQ(s.epochs.size(), 3u);
  EXPECT_EQ(s.epochs[0].epoch, 1);
  EXPECT_EQ(s.epochs[0].cost.migration_volume, 0);  // static bootstrap
  for (const EpochRecord& r : s.epochs) {
    EXPECT_GT(r.num_vertices, 0);
    EXPECT_GE(r.cost.comm_volume, 0);
  }
  // Means cover only repartitioning epochs.
  EXPECT_GT(s.mean_comm_volume(), 0.0);
}

TEST(EpochDriver, RunsWeightScenarioForEveryAlgorithm) {
  for (const RepartAlgorithm alg :
       {RepartAlgorithm::kHypergraphRepart, RepartAlgorithm::kGraphRepart,
        RepartAlgorithm::kHypergraphScratch,
        RepartAlgorithm::kGraphScratch}) {
    WeightPerturbScenario scenario(make_grid3d(5, 5, 5, false),
                                   WeightPerturbOptions{}, 13);
    const EpochRunSummary s =
        run_epochs(scenario, alg, small_cfg(4, 100), 3);
    ASSERT_EQ(s.epochs.size(), 3u) << to_string(alg);
    // Imbalance after each repartition stays sane.
    for (const EpochRecord& r : s.epochs)
      EXPECT_LT(r.imbalance, 0.6) << to_string(alg);
  }
}

TEST(EpochDriver, SummaryMeansMatchRecords) {
  EpochRunSummary s;
  EpochRecord e1;
  e1.epoch = 1;
  e1.cost = {100, 0, 10};
  EpochRecord e2;
  e2.epoch = 2;
  e2.cost = {10, 20, 10};
  e2.repart_seconds = 2.0;
  EpochRecord e3;
  e3.epoch = 3;
  e3.cost = {30, 40, 10};
  e3.repart_seconds = 4.0;
  s.epochs = {e1, e2, e3};
  EXPECT_DOUBLE_EQ(s.mean_comm_volume(), 20.0);
  EXPECT_DOUBLE_EQ(s.mean_migration_volume(), 30.0);
  EXPECT_DOUBLE_EQ(s.mean_repart_seconds(), 3.0);
  EXPECT_DOUBLE_EQ(s.mean_normalized_total_cost(),
                   ((10 + 2.0) + (30 + 4.0)) / 2.0);
}

TEST(EpochDriver, MigrationHappensAfterPerturbation) {
  StructuralPerturbScenario scenario(make_grid3d(6, 6, 6, false),
                                     StructuralPerturbOptions{}, 17);
  const EpochRunSummary s = run_epochs(
      scenario, RepartAlgorithm::kGraphScratch, small_cfg(4, 1), 3);
  // Scratch methods at alpha=1 migrate plenty once the data changes.
  bool migrated = false;
  for (const EpochRecord& r : s.epochs)
    if (r.epoch >= 2 && r.cost.migration_volume > 0) migrated = true;
  EXPECT_TRUE(migrated);
}

}  // namespace
}  // namespace hgr
