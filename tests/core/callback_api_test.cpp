#include "core/callback_api.hpp"

#include <gtest/gtest.h>

#include "metrics/cut.hpp"
#include "metrics/migration.hpp"

namespace hgr {
namespace {

ObjectQueries chain_queries(Index n) {
  ObjectQueries q;
  q.num_objects = [n] { return n; };
  q.num_hyperedges = [n] { return n - 1; };
  q.hyperedge_objects = [](Index e) {
    return std::vector<Index>{e, e + 1};
  };
  return q;
}

TEST(CallbackApi, BuildsHypergraphFromMinimalQueries) {
  const Hypergraph h = build_from_queries(chain_queries(10));
  EXPECT_EQ(h.num_vertices(), 10);
  EXPECT_EQ(h.num_nets(), 9);
  EXPECT_EQ(h.net_cost(NetId{0}), 1);
  EXPECT_EQ(h.vertex_weight(VertexId{3}), 1);
  h.validate();
}

TEST(CallbackApi, OptionalQueriesApplied) {
  ObjectQueries q = chain_queries(6);
  q.hyperedge_cost = [](Index e) { return e + 2; };
  q.object_weight = [](Index v) { return v + 1; };
  q.object_size = [](Index) { return Weight{7}; };
  q.fixed_part = [](Index v) { return v == 0 ? PartId{1} : kNoPart; };
  const Hypergraph h = build_from_queries(q);
  EXPECT_EQ(h.net_cost(NetId{3}), 5);
  EXPECT_EQ(h.vertex_weight(VertexId{4}), 5);
  EXPECT_EQ(h.vertex_size(VertexId{2}), 7);
  EXPECT_EQ(h.fixed_part(VertexId{0}), PartId{1});
  EXPECT_EQ(h.fixed_part(VertexId{1}), kNoPart);
}

TEST(CallbackApi, PartitionObjectsEndToEnd) {
  PartitionConfig cfg;
  cfg.num_parts = 2;
  cfg.epsilon = 0.1;
  const Partition p = partition_objects(chain_queries(20), cfg);
  p.validate();
  // A chain bisection cuts exactly one net.
  const Hypergraph h = build_from_queries(chain_queries(20));
  EXPECT_EQ(connectivity_cut(h, p), 1);
}

TEST(CallbackApi, RepartitionObjectsUsesCurrentAssignment) {
  ObjectQueries q = chain_queries(20);
  RepartitionerConfig cfg;
  cfg.partition.num_parts = 2;
  cfg.partition.epsilon = 0.1;
  cfg.alpha = 1;
  // Current assignment: a clean half/half split.
  const auto current = [](Index v) { return v < 10 ? PartId{0} : PartId{1}; };
  const RepartitionResult r = repartition_objects(q, current, cfg);
  // Nothing changed: the model keeps everything home.
  EXPECT_EQ(r.cost.migration_volume, 0);
  EXPECT_EQ(r.cost.comm_volume, 1);
}

TEST(CallbackApiDeathTest, MissingMandatoryQueryAborts) {
  ObjectQueries q;  // nothing set
  EXPECT_DEATH(build_from_queries(q), "mandatory");
}

}  // namespace
}  // namespace hgr
