#include "core/repartition_model.hpp"

#include <gtest/gtest.h>

#include "metrics/cut.hpp"
#include "metrics/migration.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::random_hypergraph;
using testing::random_partition;

TEST(RepartitionModel, AugmentedShape) {
  const Hypergraph h = random_hypergraph(30, 50, 4, 3, 1);
  const Partition old_p = random_partition(30, 4, 2);
  const RepartitionModel model = build_repartition_model(h, old_p, 10);
  EXPECT_EQ(model.augmented.num_vertices(), 34);
  EXPECT_EQ(model.augmented.num_nets(), h.num_nets() + 30);
  EXPECT_EQ(model.num_real_vertices, 30);
  EXPECT_EQ(model.num_comm_nets, h.num_nets());
  EXPECT_EQ(model.k, 4);
  model.augmented.validate(4);
}

TEST(RepartitionModel, MigrationNetsWireToOldParts) {
  const Hypergraph h = random_hypergraph(20, 30, 4, 2, 3);
  const Partition old_p = random_partition(20, 3, 4);
  const RepartitionModel model = build_repartition_model(h, old_p, 2);
  for (const VertexId v : old_p.vertices()) {
    const NetId net{model.num_comm_nets + v.v};
    const auto pins = model.augmented.pins(net);
    ASSERT_EQ(pins.size(), 2u);
    EXPECT_EQ(pins[0], v);
    EXPECT_EQ(pins[1], model.partition_vertex(old_p[v]));
    EXPECT_EQ(model.augmented.net_cost(net), h.vertex_size(v));
  }
}

TEST(RepartitionModel, AlphaScalesOnlyCommNets) {
  HypergraphBuilder b(3);
  b.add_net({0, 1}, 4);
  b.set_all_vertex_sizes(9);
  const Hypergraph h = b.finalize();
  const Partition old_p(2, 3, PartId{0});
  const RepartitionModel model = build_repartition_model(h, old_p, 100);
  EXPECT_EQ(model.augmented.net_cost(NetId{0}), 400);
  EXPECT_EQ(model.augmented.net_cost(NetId{1}), 9);
}

// The central identity (paper Section 3): for ANY valid assignment of the
// augmented hypergraph (partition vertices fixed), its connectivity-1 cut
// equals alpha * comm_volume + migration_volume of the decoded partition.
TEST(RepartitionModel, CutIdentityOnRandomInstances) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Hypergraph h = random_hypergraph(40, 70, 5, 3, seed);
    const Partition old_p = random_partition(40, 4, seed + 10);
    const Weight alpha = 1 + static_cast<Weight>(seed * 7);
    const RepartitionModel model = build_repartition_model(h, old_p, alpha);

    Partition aug(4, model.augmented.num_vertices());
    const Partition next = random_partition(40, 4, seed + 20);
    for (const VertexId v : next.vertices()) aug[v] = next[v];
    for (const PartId i : part_range(4)) aug[model.partition_vertex(i)] = i;

    const Weight aug_cut = connectivity_cut(model.augmented, aug);
    const Weight comm = connectivity_cut(h, next);
    const Weight mig = migration_volume(h.vertex_sizes(), old_p, next);
    EXPECT_EQ(aug_cut, alpha * comm + mig);

    const RepartitionCost split = split_augmented_cut(model, aug, old_p);
    EXPECT_EQ(split.comm_volume, comm);
    EXPECT_EQ(split.migration_volume, mig);
    EXPECT_EQ(split.total(), aug_cut);
  }
}

TEST(RepartitionModel, DecodeStripsPartitionVertices) {
  const Hypergraph h = random_hypergraph(25, 40, 4, 2, 5);
  const Partition old_p = random_partition(25, 3, 6);
  const RepartitionModel model = build_repartition_model(h, old_p, 3);
  Partition aug(3, model.augmented.num_vertices());
  for (const VertexId v : old_p.vertices()) aug[v] = old_p[v];
  for (const PartId i : part_range(3)) aug[model.partition_vertex(i)] = i;
  const Partition real = decode_augmented_partition(model, aug);
  EXPECT_EQ(real.num_vertices(), 25);
  for (const VertexId v : real.vertices()) EXPECT_EQ(real[v], old_p[v]);
}

TEST(RepartitionModel, StayingPutCostsOnlyComm) {
  const Hypergraph h = random_hypergraph(30, 60, 4, 2, 7);
  const Partition old_p = random_partition(30, 4, 8);
  const RepartitionModel model = build_repartition_model(h, old_p, 10);
  Partition aug(4, model.augmented.num_vertices());
  for (const VertexId v : old_p.vertices()) aug[v] = old_p[v];
  for (const PartId i : part_range(4)) aug[model.partition_vertex(i)] = i;
  const RepartitionCost cost = split_augmented_cut(model, aug, old_p);
  EXPECT_EQ(cost.migration_volume, 0);
  EXPECT_EQ(cost.comm_volume, connectivity_cut(h, old_p));
}

TEST(RepartitionModelDeathTest, DecodeRejectsEscapedPartitionVertex) {
  const Hypergraph h = random_hypergraph(10, 15, 3, 2, 9);
  const Partition old_p = random_partition(10, 2, 10);
  const RepartitionModel model = build_repartition_model(h, old_p, 2);
  Partition aug(2, model.augmented.num_vertices(), PartId{0});
  aug[model.partition_vertex(PartId{1})] = PartId{0};  // violates the fixed constraint
  EXPECT_DEATH(decode_augmented_partition(model, aug),
               "partition vertex escaped");
}

}  // namespace
}  // namespace hgr
