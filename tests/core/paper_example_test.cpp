// The worked example of the paper's Section 3 / Figure 1, asserted with
// exact numbers.
//
// Epoch j: the seven surviving vertices 1..7 plus new vertices a, b.
// Old distribution: {1,2,3,a} in V1, {4,5,6} in V2, {7,b} in V3 (new
// vertices belong to the part where they were created). alpha_j = 5, every
// vertex has size 3 (so each migration net costs 3), and every
// communication net has unit base cost (so each costs 5 after alpha
// scaling). In the example's result, vertex 3 moves to V2 and vertex 6
// moves to V3:
//   migration  = 2 moved vertices * 3 * (2-1)            = 6
//   comm       = {2,3,a} and {5,6,7} cut with lambda 2, {4,6,a} with
//                lambda 3 = 2*5*(2-1) + 1*5*(3-1)        = 20
//   total                                                = 26
#include <gtest/gtest.h>

#include "core/repartition_model.hpp"
#include "metrics/cut.hpp"
#include "partition/partitioner.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using F = testing::PaperFigure1;

Hypergraph epoch_j_hypergraph() {
  HypergraphBuilder b(9);
  // Cut nets of the example.
  b.add_net({F::v2, F::v3, F::va}, 1);
  b.add_net({F::v5, F::v6, F::v7}, 1);
  b.add_net({F::v4, F::v6, F::va}, 1);
  // Internal nets (never cut in the example's partition).
  b.add_net({F::v1, F::v2}, 1);
  b.add_net({F::v4, F::v5}, 1);
  b.add_net({F::v7, F::vb}, 1);
  b.set_all_vertex_sizes(3);  // "each vertex has size three"
  return b.finalize();
}

Partition old_distribution() {
  Partition p(3, 9);
  p[VertexId{F::v1}] = p[VertexId{F::v2}] = p[VertexId{F::v3}] = PartId{0};
  p[VertexId{F::va}] = PartId{0};
  p[VertexId{F::v4}] = p[VertexId{F::v5}] = p[VertexId{F::v6}] = PartId{1};
  p[VertexId{F::v7}] = p[VertexId{F::vb}] = PartId{2};
  return p;
}

TEST(PaperExample, ModelStructureMatchesSection3) {
  const Hypergraph h = epoch_j_hypergraph();
  const RepartitionModel model =
      build_repartition_model(h, old_distribution(), 5);
  // |V| + k vertices, |N| + |V| nets.
  EXPECT_EQ(model.augmented.num_vertices(), 9 + 3);
  EXPECT_EQ(model.augmented.num_nets(), 6 + 9);
  // Partition vertices are weightless and fixed to their parts.
  for (const PartId i : part_range(3)) {
    const VertexId u = model.partition_vertex(i);
    EXPECT_EQ(model.augmented.vertex_weight(u), 0);
    EXPECT_EQ(model.augmented.fixed_part(u), i);
  }
  // Communication nets were scaled by alpha ("the cost of each
  // communication net is five").
  for (Index net = 0; net < 6; ++net)
    EXPECT_EQ(model.augmented.net_cost(NetId{net}), 5);
  // Migration nets cost the vertex size ("the cost of each migration net,
  // is three") and join the vertex to its old part's partition vertex.
  for (Index net = 6; net < model.augmented.num_nets(); ++net) {
    EXPECT_EQ(model.augmented.net_cost(NetId{net}), 3);
    EXPECT_EQ(model.augmented.net_size(NetId{net}), 2);
  }
  model.augmented.validate(3);
}

TEST(PaperExample, TotalCostIs26) {
  const Hypergraph h = epoch_j_hypergraph();
  const Partition old_p = old_distribution();
  const RepartitionModel model = build_repartition_model(h, old_p, 5);

  // The example's outcome: vertex 3 -> V2, vertex 6 -> V3.
  Partition aug(3, model.augmented.num_vertices());
  for (const VertexId v : old_p.vertices()) aug[v] = old_p[v];
  aug[VertexId{F::v3}] = PartId{1};
  aug[VertexId{F::v6}] = PartId{2};
  for (const PartId i : part_range(3)) aug[model.partition_vertex(i)] = i;

  // "Total migration cost is then 2 x 3 x (2-1) = 6."
  // "They represent a total communication volume of
  //  2 x 5 x (2-1) + 1 x 5 x (3-1) = 20, resulting in a total cost of 26."
  const RepartitionCost cost = split_augmented_cut(model, aug, old_p);
  EXPECT_EQ(cost.migration_volume, 6);
  EXPECT_EQ(cost.alpha * cost.comm_volume, 20);
  EXPECT_EQ(cost.total(), 26);

  // And the augmented hypergraph's raw connectivity-1 cut equals the same
  // 26 — the model identity.
  EXPECT_EQ(connectivity_cut(model.augmented, aug), 26);
}

TEST(PaperExample, EpochJm1CommunicationVolumeIs3) {
  // Figure 1 (left): nine unit vertices, three parts, three cut nets of
  // unit cost and connectivity two => per-iteration volume 3.
  HypergraphBuilder b(9);
  b.add_net({0, 1, 2});
  b.add_net({3, 4, 5});
  b.add_net({6, 7, 8});
  b.add_net({2, 3});
  b.add_net({5, 6});
  b.add_net({1, 4});
  const Hypergraph h = b.finalize();
  Partition p(3, 9);
  for (Index v = 0; v < 9; ++v) p[VertexId{v}] = PartId{v / 3};
  EXPECT_EQ(connectivity_cut(h, p), 3);
}

TEST(PaperExample, PartitionerFindsCostAtMost26) {
  // The example's solution costs 26; the real partitioner must do at least
  // as well on this toy instance.
  const Hypergraph h = epoch_j_hypergraph();
  const Partition old_p = old_distribution();
  const RepartitionModel model = build_repartition_model(h, old_p, 5);
  PartitionConfig cfg;
  cfg.num_parts = 3;
  cfg.epsilon = 0.5;  // 9 unit vertices over 3 parts: allow 3 +- 1
  const Partition aug = partition_hypergraph(model.augmented, cfg);
  EXPECT_LE(connectivity_cut(model.augmented, aug), 26);
}

}  // namespace
}  // namespace hgr
