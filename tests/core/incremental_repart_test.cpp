// The O(delta) epoch fast path: routing decisions, drift/imbalance
// escalation, paranoid cut identity against from-scratch recomputation,
// and tier bookkeeping through run_tiered_repartition / run_epochs.
#include "core/incremental_repart.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/epoch_driver.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"
#include "workload/generators.hpp"
#include "workload/perturb.hpp"

namespace hgr {
namespace {

using testing::random_hypergraph;

RepartitionerConfig inc_cfg(Index k, IncrementalMode mode) {
  RepartitionerConfig cfg;
  cfg.partition.num_parts = k;
  cfg.partition.epsilon = 0.5;
  cfg.partition.incremental = mode;
  cfg.partition.check_level = check::CheckLevel::kParanoid;
  return cfg;
}

/// Random nets over unit-weight vertices: a round-robin start is exactly
/// balanced, so escalation tests control their rejection reason.
Hypergraph random_unit_hypergraph(Index n, Index nets, std::uint64_t seed) {
  Rng rng(seed);
  HypergraphBuilder b(n);
  for (Index i = 0; i < nets; ++i) {
    const Index pins = static_cast<Index>(2 + rng.below(3));
    std::vector<Index> net;
    for (Index j = 0; j < pins; ++j)
      net.push_back(static_cast<Index>(rng.below(
          static_cast<std::uint64_t>(n))));
    b.add_net(net, 1 + static_cast<Weight>(rng.below(3)));
  }
  return b.finalize();
}

/// Balanced round-robin start (epsilon 0.5 gives it plenty of headroom).
Partition round_robin(const Hypergraph& h, Index k) {
  Partition p(k, h.num_vertices());
  for (Index v = 0; v < h.num_vertices(); ++v) p[VertexId{v}] = PartId{v % k};
  return p;
}

TEST(EpochDeltaTracker, FirstEpochIsUnknownThenDiffsWeightAndPresence) {
  GraphBuilder b1(4);
  b1.add_edge(0, 1, 1);
  b1.add_edge(1, 2, 1);
  b1.add_edge(2, 3, 1);
  const Graph g1 = b1.finalize();
  EpochDeltaTracker tracker;
  const std::vector<Index> identity = {0, 1, 2, 3};

  const EpochDelta first = tracker.observe(g1, identity);
  EXPECT_FALSE(first.known);
  EXPECT_DOUBLE_EQ(first.fraction(4), 1.0);

  // Same structure, vertex 2's weight changed.
  GraphBuilder b2(4);
  b2.add_edge(0, 1, 1);
  b2.add_edge(1, 2, 1);
  b2.add_edge(2, 3, 1);
  b2.set_vertex_weight(2, 5);
  const EpochDelta second = tracker.observe(b2.finalize(), identity);
  EXPECT_TRUE(second.known);
  ASSERT_EQ(second.changed.size(), 1u);
  EXPECT_EQ(second.changed[0], VertexId{2});
  EXPECT_EQ(second.removed, 0);
  EXPECT_EQ(second.prev_vertices, 4);
  EXPECT_DOUBLE_EQ(second.fraction(4), 0.25);

  // Base vertex 3 disappears, a brand-new base vertex 7 arrives.
  GraphBuilder b3(4);
  b3.add_edge(0, 1, 1);
  b3.add_edge(1, 2, 1);
  b3.add_edge(2, 3, 1);
  b3.set_vertex_weight(2, 5);
  const EpochDelta third = tracker.observe(b3.finalize(), {0, 1, 2, 7});
  EXPECT_TRUE(third.known);
  ASSERT_EQ(third.changed.size(), 1u);
  EXPECT_EQ(third.changed[0], VertexId{3});  // compact id of new base vertex 7
  EXPECT_EQ(third.removed, 1);     // base vertex 3 vanished
  EXPECT_DOUBLE_EQ(third.fraction(4), 0.5);
}

TEST(IncrementalRepart, RoutingRejectsOffNoBaselineAndLargeDeltas) {
  const Hypergraph h = random_hypergraph(50, 100, 4, 3, 2);
  const Partition p = round_robin(h, 4);
  EpochDelta small;
  small.known = true;
  small.changed = {VertexId{0}};

  IncrementalRepartitioner inc;
  inc.note_full(connectivity_cut(h, p));
  IncrementalOutcome off =
      inc.try_epoch(h, p, small, inc_cfg(4, IncrementalMode::kOff));
  EXPECT_FALSE(off.attempted);
  EXPECT_EQ(off.reason, "off");

  IncrementalRepartitioner no_baseline;
  IncrementalOutcome cold =
      no_baseline.try_epoch(h, p, small, inc_cfg(4, IncrementalMode::kAuto));
  EXPECT_FALSE(cold.attempted);
  EXPECT_EQ(cold.reason, "no_baseline");

  // Unknown deltas read as fraction 1.0: auto mode escalates...
  IncrementalOutcome unknown =
      inc.try_epoch(h, p, EpochDelta{}, inc_cfg(4, IncrementalMode::kAuto));
  EXPECT_FALSE(unknown.attempted);
  EXPECT_EQ(unknown.reason, "delta_frac");
  // ...while forced-on mode repairs over every vertex.
  IncrementalOutcome forced =
      inc.try_epoch(h, p, EpochDelta{}, inc_cfg(4, IncrementalMode::kOn));
  EXPECT_TRUE(forced.attempted);
  EXPECT_TRUE(forced.accepted);
}

TEST(IncrementalRepart, SmallDeltaAcceptedWithCutIdenticalToScratch) {
  const Hypergraph h = random_hypergraph(200, 400, 5, 3, 11);
  const Partition old_p = round_robin(h, 4);
  const Weight baseline = connectivity_cut(h, old_p);

  EpochDelta delta;
  delta.known = true;
  delta.changed = {VertexId{3}, VertexId{17}};  // 1% of the vertices
  delta.prev_vertices = 200;

  IncrementalRepartitioner inc;
  inc.note_full(baseline);
  const IncrementalOutcome out =
      inc.try_epoch(h, old_p, delta, inc_cfg(4, IncrementalMode::kAuto));
  EXPECT_TRUE(out.attempted);
  EXPECT_TRUE(out.accepted) << out.reason;
  // Starting balanced, greedy repair never worsens the cut: drift <= 0.
  EXPECT_LE(out.cut, baseline);
  EXPECT_LE(out.drift, 0.0);
  // The incrementally maintained cut is identical to scratch recomputation
  // (the paranoid check inside try_epoch enforces this too).
  EXPECT_EQ(out.cut, connectivity_cut(h, out.partition));
  EXPECT_EQ(out.cut, testing::brute_force_connectivity_cut(h, out.partition));
}

TEST(IncrementalRepart, DriftPastThresholdEscalates) {
  const Hypergraph h = random_hypergraph(80, 160, 4, 3, 5);
  const Partition p = round_robin(h, 4);
  RepartitionerConfig cfg = inc_cfg(4, IncrementalMode::kOn);
  // Impossible bar: drift >= -1 by construction, so any result rejects.
  cfg.partition.incremental_max_drift = -2.0;

  IncrementalRepartitioner inc;
  inc.note_full(connectivity_cut(h, p));
  const IncrementalOutcome out = inc.try_epoch(h, p, EpochDelta{}, cfg);
  EXPECT_TRUE(out.attempted);
  EXPECT_FALSE(out.accepted);
  EXPECT_EQ(out.reason, "drift");
}

TEST(IncrementalRepart, UnfixableImbalanceEscalates) {
  // Part 0 is overweight purely from a fixed vertex: the fast path may
  // only shed the light free vertex, which cannot restore Eq. 1.
  HypergraphBuilder b(3);
  b.add_net({0, 1}, 1);
  b.add_net({1, 2}, 1);
  b.set_vertex_weight(0, 10);
  b.set_vertex_weight(1, 1);
  b.set_vertex_weight(2, 1);
  b.set_fixed_part(0, PartId{0});
  const Hypergraph h = b.finalize();
  Partition p(2, 3);
  p[VertexId{0}] = PartId{0}; p[VertexId{1}] = PartId{0}; p[VertexId{2}] = PartId{1};

  RepartitionerConfig cfg = inc_cfg(2, IncrementalMode::kOn);
  cfg.partition.epsilon = 0.05;  // max part weight 6 << the fixed 10
  IncrementalRepartitioner inc;
  inc.note_full(connectivity_cut(h, p));
  const IncrementalOutcome out = inc.try_epoch(h, p, EpochDelta{}, cfg);
  EXPECT_TRUE(out.attempted);
  EXPECT_FALSE(out.accepted);
  EXPECT_EQ(out.reason, "imbalance");
  EXPECT_EQ(out.partition[VertexId{0}], PartId{0});  // fixed vertex untouched
}

TEST(TieredRepartition, AcceptedFastPathIsRecordedAsIncrementalTier) {
  obs::Registry reg;
  obs::ScopedRegistry scope(reg);
  const Hypergraph h = random_hypergraph(120, 240, 4, 3, 23);
  const Partition old_p = round_robin(h, 4);
  RepartitionerConfig cfg = inc_cfg(4, IncrementalMode::kOn);
  cfg.alpha = 10;

  IncrementalRepartitioner inc;
  inc.note_full(connectivity_cut(h, old_p));
  const GuardedRepartitionResult r = run_tiered_repartition(
      RepartAlgorithm::kHypergraphRepart, h, Graph{}, old_p, cfg, inc,
      EpochDelta{});
  EXPECT_EQ(r.tier, RepartTier::kIncremental);
  EXPECT_FALSE(r.escalated);
  EXPECT_EQ(r.tier_reason, "");
  EXPECT_EQ(r.result.cost.comm_volume,
            connectivity_cut(h, r.result.partition));
  EXPECT_EQ(reg.counter_value("epoch.tier_incremental"), 1u);
  EXPECT_EQ(reg.counter_value("epoch.tier_full"), 0u);
  EXPECT_EQ(reg.counter_value("epoch.escalations"), 0u);
  EXPECT_GE(reg.counter_value("incremental.accepted"), 1u);
}

TEST(TieredRepartition, RejectedFastPathEscalatesToFullTier) {
  obs::Registry reg;
  obs::ScopedRegistry scope(reg);
  const Hypergraph h = random_unit_hypergraph(120, 240, 29);
  const Partition old_p = round_robin(h, 4);
  RepartitionerConfig cfg = inc_cfg(4, IncrementalMode::kOn);
  cfg.alpha = 10;
  cfg.partition.incremental_max_drift = -2.0;  // force drift rejection
  // This test is about escalation bookkeeping; the full tier it falls
  // through to does not always meet the validator's balance bound on
  // this instance (a partitioner quality matter, not a tiering one).
  cfg.partition.check_level = check::CheckLevel::kOff;

  IncrementalRepartitioner inc;
  inc.note_full(connectivity_cut(h, old_p));
  const GuardedRepartitionResult r = run_tiered_repartition(
      RepartAlgorithm::kHypergraphRepart, h, Graph{}, old_p, cfg, inc,
      EpochDelta{});
  EXPECT_EQ(r.tier, RepartTier::kFull);
  EXPECT_TRUE(r.escalated);
  EXPECT_EQ(r.tier_reason, "drift");
  EXPECT_EQ(reg.counter_value("epoch.tier_full"), 1u);
  EXPECT_EQ(reg.counter_value("epoch.escalations"), 1u);
  EXPECT_EQ(reg.counter_value("epoch.tier_incremental"), 0u);
}

TEST(TieredRepartition, AutoRoutingRejectionIsNotAnEscalation) {
  obs::Registry reg;
  obs::ScopedRegistry scope(reg);
  const Hypergraph h = random_unit_hypergraph(100, 200, 31);
  const Partition old_p = round_robin(h, 4);
  RepartitionerConfig cfg = inc_cfg(4, IncrementalMode::kAuto);
  cfg.partition.epsilon = 0.1;  // the full tier must meet this bound too
  cfg.alpha = 10;

  IncrementalRepartitioner inc;
  inc.note_full(connectivity_cut(h, old_p));
  // Unknown delta: auto mode routes straight to the full tier, no attempt.
  const GuardedRepartitionResult r = run_tiered_repartition(
      RepartAlgorithm::kHypergraphRepart, h, Graph{}, old_p, cfg, inc,
      EpochDelta{});
  EXPECT_EQ(r.tier, RepartTier::kFull);
  EXPECT_FALSE(r.escalated);
  EXPECT_EQ(r.tier_reason, "delta_frac");
  EXPECT_EQ(reg.counter_value("epoch.escalations"), 0u);
  EXPECT_EQ(reg.counter_value("incremental.attempts"), 0u);
  // The full tier refreshed the drift baseline.
  EXPECT_EQ(inc.baseline_cut(), r.result.cost.comm_volume);
}

TEST(TieredRepartition, EpochLoopRunsIncrementalTiersUnderParanoidChecks) {
  obs::Registry reg;
  obs::ScopedRegistry scope(reg);
  WeightPerturbOptions opts;
  opts.min_factor = 1.1;  // gentle drift: the fast path can absorb it
  opts.max_factor = 1.5;
  WeightPerturbScenario scenario(make_grid3d(6, 6, 6, false), opts, 19);

  RepartitionerConfig cfg;
  cfg.alpha = 100;
  cfg.partition.num_parts = 4;
  cfg.partition.epsilon = 0.5;
  cfg.partition.seed = 7;
  cfg.partition.incremental = IncrementalMode::kAuto;
  cfg.partition.incremental_max_delta_frac = 1.0;
  cfg.partition.incremental_max_drift = 10.0;
  // Paranoid checks make every incremental epoch cross-check its cut
  // against from-scratch recomputation (divergence would abort).
  cfg.partition.check_level = check::CheckLevel::kParanoid;

  const EpochRunSummary s =
      run_epochs(scenario, RepartAlgorithm::kHypergraphRepart, cfg, 4);
  ASSERT_EQ(s.epochs.size(), 4u);
  EXPECT_EQ(s.epochs[0].tier, RepartTier::kStatic);
  std::uint64_t incremental_epochs = 0;
  for (std::size_t i = 1; i < s.epochs.size(); ++i) {
    EXPECT_NE(s.epochs[i].tier, RepartTier::kStatic);
    if (s.epochs[i].tier == RepartTier::kIncremental) ++incremental_epochs;
  }
  EXPECT_GE(incremental_epochs, 1u);
  EXPECT_EQ(reg.counter_value("epoch.tier_static"), 1u);
  EXPECT_EQ(reg.counter_value("epoch.tier_incremental"), incremental_epochs);
  EXPECT_EQ(reg.counter_value("epoch.tier_full"),
            3u - incremental_epochs);
}

}  // namespace
}  // namespace hgr
