#include "partition/partitioner.hpp"

#include <gtest/gtest.h>

#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::make_hypergraph;
using testing::random_hypergraph;

TEST(Partitioner, SinglePartTrivial) {
  const Hypergraph h = random_hypergraph(20, 40, 4, 2, 1);
  PartitionConfig cfg;
  cfg.num_parts = 1;
  const Partition p = partition_hypergraph(h, cfg);
  for (const VertexId v : p.vertices()) EXPECT_EQ(p[v], PartId{0});
}

TEST(Partitioner, EmptyHypergraph) {
  Hypergraph h;
  PartitionConfig cfg;
  cfg.num_parts = 4;
  const Partition p = partition_hypergraph(h, cfg);
  EXPECT_EQ(p.num_vertices(), 0);
}

TEST(Partitioner, BisectionIsBalancedAndValid) {
  const Hypergraph h = random_hypergraph(120, 240, 5, 3, 2);
  PartitionConfig cfg;
  cfg.num_parts = 2;
  cfg.epsilon = 0.1;
  const Partition p = partition_hypergraph(h, cfg);
  p.validate();
  EXPECT_LE(imbalance(h.vertex_weights(), p), 0.15);
}

class PartitionerSweep
    : public ::testing::TestWithParam<std::tuple<Index, std::uint64_t>> {};

TEST_P(PartitionerSweep, BalancedValidDeterministic) {
  const auto [k, seed] = GetParam();
  const Hypergraph h = random_hypergraph(150, 300, 5, 3, seed);
  PartitionConfig cfg;
  cfg.num_parts = k;
  cfg.epsilon = 0.10;
  cfg.seed = seed;
  const Partition p = partition_hypergraph(h, cfg);
  p.validate();
  EXPECT_EQ(p.k, k);
  // Every part non-empty for these sizes.
  const IdVector<PartId, Weight> pw = part_weights(h.vertex_weights(), p);
  for (const Weight w : pw) EXPECT_GT(w, 0);
  // The compounded per-level tolerance can exceed epsilon slightly on tiny
  // instances; assert a sane bound.
  EXPECT_LE(imbalance(h.vertex_weights(), p), 0.30);
  // Determinism: same config => identical partition.
  const Partition p2 = partition_hypergraph(h, cfg);
  EXPECT_EQ(p.assignment, p2.assignment);
}

INSTANTIATE_TEST_SUITE_P(
    KsAndSeeds, PartitionerSweep,
    ::testing::Combine(::testing::Values<Index>(2, 3, 4, 8, 16),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(Partitioner, DifferentSeedsUsuallyDiffer) {
  const Hypergraph h = random_hypergraph(100, 200, 5, 3, 5);
  PartitionConfig a, b;
  a.num_parts = b.num_parts = 4;
  a.seed = 1;
  b.seed = 2;
  const Partition pa = partition_hypergraph(h, a);
  const Partition pb = partition_hypergraph(h, b);
  EXPECT_NE(pa.assignment, pb.assignment);
}

TEST(Partitioner, CutBeatsRandomAssignment) {
  const Hypergraph h = random_hypergraph(200, 500, 4, 3, 6);
  PartitionConfig cfg;
  cfg.num_parts = 4;
  const Partition p = partition_hypergraph(h, cfg);
  const Partition r = testing::random_partition(200, 4, 9);
  EXPECT_LT(connectivity_cut(h, p), connectivity_cut(h, r));
}

TEST(Partitioner, DirectKwayAlsoValid) {
  const Hypergraph h = random_hypergraph(120, 240, 4, 2, 7);
  PartitionConfig cfg;
  cfg.num_parts = 4;
  cfg.kway_method = KwayMethod::kDirectKway;
  const Partition p = partition_hypergraph(h, cfg);
  p.validate();
  EXPECT_LE(imbalance(h.vertex_weights(), p), 0.35);
}

TEST(Partitioner, KwayPostpassNeverHurts) {
  const Hypergraph h = random_hypergraph(120, 240, 4, 2, 8);
  PartitionConfig base;
  base.num_parts = 4;
  PartitionConfig with_post = base;
  with_post.kway_postpass = true;
  const Weight cut_base =
      connectivity_cut(h, partition_hypergraph(h, base));
  const Weight cut_post =
      connectivity_cut(h, partition_hypergraph(h, with_post));
  EXPECT_LE(cut_post, cut_base);
}

TEST(Partitioner, VcycleNeverHurts) {
  const Hypergraph h = random_hypergraph(150, 300, 4, 2, 9);
  PartitionConfig base;
  base.num_parts = 4;
  PartitionConfig with_v = base;
  with_v.num_vcycles = 2;
  const Weight cut_base =
      connectivity_cut(h, partition_hypergraph(h, base));
  const Weight cut_v = connectivity_cut(h, partition_hypergraph(h, with_v));
  EXPECT_LE(cut_v, cut_base);
}

TEST(Partitioner, OddK) {
  const Hypergraph h = random_hypergraph(90, 180, 4, 2, 10);
  PartitionConfig cfg;
  cfg.num_parts = 5;
  const Partition p = partition_hypergraph(h, cfg);
  p.validate();
  const IdVector<PartId, Weight> pw = part_weights(h.vertex_weights(), p);
  for (const Weight w : pw) EXPECT_GT(w, 0);
}

TEST(Partitioner, ConfigToStringMentionsKey) {
  PartitionConfig cfg;
  cfg.num_parts = 8;
  EXPECT_NE(cfg.to_string().find("k=8"), std::string::npos);
}

}  // namespace
}  // namespace hgr
