// Pathological and degenerate inputs: the partitioner must stay correct
// (valid, fixed-respecting) even when the instance gives the heuristics
// nothing to work with.
#include <gtest/gtest.h>

#include <algorithm>

#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "partition/partitioner.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

TEST(Pathological, NoNetsAtAll) {
  HypergraphBuilder b(40);
  const Hypergraph h = b.finalize();
  PartitionConfig cfg;
  cfg.num_parts = 4;
  const Partition p = partition_hypergraph(h, cfg);
  p.validate();
  EXPECT_LE(imbalance(h.vertex_weights(), p), 0.11);
}

TEST(Pathological, SingleGiantNet) {
  HypergraphBuilder b(30);
  std::vector<Index> all;
  for (Index v = 0; v < 30; ++v) all.push_back(v);
  b.add_net(all, 7);
  const Hypergraph h = b.finalize();
  PartitionConfig cfg;
  cfg.num_parts = 3;
  const Partition p = partition_hypergraph(h, cfg);
  p.validate();
  // The net spans all three parts no matter what: cut = 7 * 2.
  EXPECT_EQ(connectivity_cut(h, p), 14);
  EXPECT_LE(imbalance(h.vertex_weights(), p), 0.2);
}

TEST(Pathological, StarHypergraph) {
  // Vertex 0 shares a 2-pin net with everyone else.
  HypergraphBuilder b(41);
  for (Index v = 1; v < 41; ++v) b.add_net({0, v});
  const Hypergraph h = b.finalize();
  PartitionConfig cfg;
  cfg.num_parts = 4;
  const Partition p = partition_hypergraph(h, cfg);
  p.validate();
  // At least the spokes co-located with the hub are uncut; cut < 40.
  EXPECT_LT(connectivity_cut(h, p), 40);
}

TEST(Pathological, AllVerticesZeroWeight) {
  HypergraphBuilder b(20);
  for (Index v = 0; v + 1 < 20; ++v) b.add_net({v, v + 1});
  b.set_all_vertex_weights(0);
  const Hypergraph h = b.finalize();
  PartitionConfig cfg;
  cfg.num_parts = 2;
  const Partition p = partition_hypergraph(h, cfg);
  p.validate();  // must not divide by zero or spin
}

TEST(Pathological, OneHeavyVertexDominates) {
  HypergraphBuilder b(21);
  for (Index v = 0; v + 1 < 21; ++v) b.add_net({v, v + 1});
  b.set_vertex_weight(0, 1000);
  const Hypergraph h = b.finalize();
  PartitionConfig cfg;
  cfg.num_parts = 2;
  cfg.epsilon = 0.05;
  const Partition p = partition_hypergraph(h, cfg);
  p.validate();
  // Perfect balance is impossible; the heavy vertex must sit alone-ish.
  const auto pw = part_weights(h.vertex_weights(), p);
  EXPECT_GE(*std::max_element(pw.begin(), pw.end()), 1000);
}

TEST(Pathological, DisconnectedComponents) {
  HypergraphBuilder b(40);
  for (Index c = 0; c < 4; ++c)
    for (Index v = 0; v + 1 < 10; ++v)
      b.add_net({c * 10 + v, c * 10 + v + 1});
  const Hypergraph h = b.finalize();
  PartitionConfig cfg;
  cfg.num_parts = 4;
  cfg.epsilon = 0.05;
  const Partition p = partition_hypergraph(h, cfg);
  p.validate();
  // Components fit parts exactly: a good partitioner finds cut 0 or near.
  EXPECT_LE(connectivity_cut(h, p), 3);
  EXPECT_LE(imbalance(h.vertex_weights(), p), 0.05 + 1e-9);
}

TEST(Pathological, KEqualsN) {
  const Hypergraph h = testing::random_hypergraph(8, 16, 3, 2, 3);
  PartitionConfig cfg;
  cfg.num_parts = 8;
  cfg.epsilon = 1.0;  // weights vary; one vertex per part needs slack
  const Partition p = partition_hypergraph(h, cfg);
  p.validate();
}

TEST(Pathological, KGreaterThanN) {
  const Hypergraph h = testing::random_hypergraph(5, 8, 3, 2, 5);
  PartitionConfig cfg;
  cfg.num_parts = 9;
  cfg.epsilon = 1.0;
  const Partition p = partition_hypergraph(h, cfg);
  p.validate();  // some parts stay empty; ids must still be in range
}

TEST(Pathological, DuplicateNetsStackCost) {
  HypergraphBuilder b(4);
  for (int i = 0; i < 10; ++i) b.add_net({0, 1}, 1);
  b.add_net({2, 3}, 1);
  b.add_net({1, 2}, 1);
  const Hypergraph h = b.finalize();
  PartitionConfig cfg;
  cfg.num_parts = 2;
  cfg.epsilon = 0.1;
  const Partition p = partition_hypergraph(h, cfg);
  // The 10x duplicated net must not be cut.
  EXPECT_EQ(p[VertexId{0}], p[VertexId{1}]);
}

TEST(Pathological, ZeroSizeVerticesPartition) {
  // Zero-size vertices make migration nets free in the repartition model;
  // the static partitioner must handle zero sizes without issue too.
  Hypergraph h = testing::random_hypergraph(30, 60, 4, 2, 7);
  for (const VertexId v : h.vertices()) h.set_vertex_size(v, 0);
  PartitionConfig cfg;
  cfg.num_parts = 3;
  cfg.epsilon = 0.3;
  const Partition p = partition_hypergraph(h, cfg);
  p.validate();
}

}  // namespace
}  // namespace hgr
