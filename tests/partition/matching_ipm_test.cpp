#include "partition/matching_ipm.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace hgr {
namespace {

using testing::make_hypergraph;
using testing::random_hypergraph;

PartitionConfig default_cfg() {
  PartitionConfig cfg;
  return cfg;
}

TEST(IpmMatching, IsAnInvolution) {
  const Hypergraph h = random_hypergraph(50, 100, 5, 3, 1);
  Rng rng(9);
  const auto match = ipm_matching(h, default_cfg(), 0, rng);
  ASSERT_EQ(match.size(), 50u);
  for (const VertexId v : match.ids()) {
    EXPECT_EQ(match[match[v]], v);
  }
}

TEST(IpmMatching, PrefersHeavilyConnectedPartner) {
  // Vertices 0 and 1 share two nets; 0 and 2 share one.
  const Hypergraph h = make_hypergraph(3, {{0, 1}, {0, 1}, {0, 2}});
  Rng rng(1);
  const auto match = ipm_matching(h, default_cfg(), 0, rng);
  EXPECT_EQ(match[VertexId{0}], VertexId{1});
  EXPECT_EQ(match[VertexId{1}], VertexId{0});
  EXPECT_EQ(match[VertexId{2}], VertexId{2});  // left unmatched
}

TEST(IpmMatching, IsolatedVerticesStayUnmatched) {
  const Hypergraph h = make_hypergraph(4, {{0, 1}});
  Rng rng(2);
  const auto match = ipm_matching(h, default_cfg(), 0, rng);
  EXPECT_EQ(match[VertexId{2}], VertexId{2});
  EXPECT_EQ(match[VertexId{3}], VertexId{3});
}

TEST(IpmMatching, RespectsWeightCap) {
  HypergraphBuilder b(2);
  b.add_net({0, 1});
  b.set_vertex_weight(0, 10);
  b.set_vertex_weight(1, 10);
  const Hypergraph h = b.finalize();
  Rng rng(3);
  // Cap 15 < 20: the pair must not merge.
  const auto match = ipm_matching(h, default_cfg(), 15, rng);
  EXPECT_EQ(match[VertexId{0}], VertexId{0});
  EXPECT_EQ(match[VertexId{1}], VertexId{1});
  // Cap 0 disables the check.
  Rng rng2(3);
  const auto match2 = ipm_matching(h, default_cfg(), 0, rng2);
  EXPECT_EQ(match2[VertexId{0}], VertexId{1});
}

TEST(IpmMatching, NeverMatchesConflictingFixedVertices) {
  HypergraphBuilder b(2);
  b.add_net({0, 1});
  b.set_fixed_part(0, PartId{0});
  b.set_fixed_part(1, PartId{1});
  const Hypergraph h = b.finalize();
  Rng rng(4);
  const auto match = ipm_matching(h, default_cfg(), 0, rng);
  EXPECT_EQ(match[VertexId{0}], VertexId{0});
  EXPECT_EQ(match[VertexId{1}], VertexId{1});
}

TEST(IpmMatching, FixedWithFreeAllowed) {
  HypergraphBuilder b(2);
  b.add_net({0, 1});
  b.set_fixed_part(0, PartId{2});
  const Hypergraph h = b.finalize();
  Rng rng(5);
  const auto match = ipm_matching(h, default_cfg(), 0, rng);
  EXPECT_EQ(match[VertexId{0}], VertexId{1});
}

TEST(IpmMatching, SameFixedAllowed) {
  HypergraphBuilder b(2);
  b.add_net({0, 1});
  b.set_fixed_part(0, PartId{1});
  b.set_fixed_part(1, PartId{1});
  const Hypergraph h = b.finalize();
  Rng rng(6);
  const auto match = ipm_matching(h, default_cfg(), 0, rng);
  EXPECT_EQ(match[VertexId{0}], VertexId{1});
}

TEST(IpmMatching, FixedCompatibilityRules) {
  EXPECT_TRUE(fixed_compatible(kNoPart, kNoPart));
  EXPECT_TRUE(fixed_compatible(kNoPart, PartId{3}));
  EXPECT_TRUE(fixed_compatible(PartId{3}, kNoPart));
  EXPECT_TRUE(fixed_compatible(PartId{2}, PartId{2}));
  EXPECT_FALSE(fixed_compatible(PartId{1}, PartId{2}));
  EXPECT_EQ(merged_fixed(kNoPart, PartId{4}), PartId{4});
  EXPECT_EQ(merged_fixed(PartId{4}, kNoPart), PartId{4});
  EXPECT_EQ(merged_fixed(kNoPart, kNoPart), kNoPart);
}

TEST(IpmMatching, HighDegreeVerticesDoNotInitiate) {
  PartitionConfig cfg;
  cfg.max_matching_degree = 2;
  // Vertex 0 has degree 3 (> cap): it must not initiate, but others can
  // still match it passively.
  const Hypergraph h =
      make_hypergraph(4, {{0, 1}, {0, 2}, {0, 3}});
  Rng rng(7);
  const auto match = ipm_matching(h, cfg, 0, rng);
  for (const VertexId v : match.ids()) EXPECT_EQ(match[match[v]], v);
}

TEST(IpmMatching, DeterministicGivenSeed) {
  const Hypergraph h = random_hypergraph(60, 120, 5, 3, 11);
  Rng a(42), b(42);
  EXPECT_EQ(ipm_matching(h, default_cfg(), 0, a),
            ipm_matching(h, default_cfg(), 0, b));
}

TEST(IpmMatching, MatchesMostVerticesOnDenseHypergraph) {
  const Hypergraph h = random_hypergraph(100, 400, 4, 2, 13);
  Rng rng(8);
  const auto match = ipm_matching(h, default_cfg(), 0, rng);
  Index matched = 0;
  for (const VertexId v : match.ids())
    if (match[v] != v) ++matched;
  EXPECT_GT(matched, 60);  // vast majority pairs up
}

}  // namespace
}  // namespace hgr
