#include "partition/gain_queue.hpp"

#include <gtest/gtest.h>

namespace hgr {
namespace {

TEST(GainQueue, HeapBackendBasics) {
  GainQueue q(4, 100, GainQueueKind::kHeap);
  EXPECT_FALSE(q.uses_buckets());
  q.insert(0, 5);
  q.insert(1, -3);
  EXPECT_EQ(q.top(), 0);
  EXPECT_EQ(q.top_gain(), 5);
  q.adjust(1, 50);
  EXPECT_EQ(q.top(), 1);
  EXPECT_EQ(q.gain(1), 50);
  q.remove(1);
  EXPECT_EQ(q.pop(), 0);
  EXPECT_TRUE(q.empty());
}

TEST(GainQueue, BucketBackendBasics) {
  GainQueue q(4, 100, GainQueueKind::kBucket);
  EXPECT_TRUE(q.uses_buckets());
  q.insert(0, 5);
  q.insert(1, -3);
  EXPECT_EQ(q.top(), 0);
  q.adjust(0, -100);
  EXPECT_EQ(q.top(), 1);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.contains(0));
}

TEST(GainQueue, BucketRequestFallsBackToHeapOnHugeRange) {
  // alpha-scaled costs can push the gain range past any sane bucket array.
  GainQueue q(4, GainQueue::kMaxBucketRange + 1, GainQueueKind::kBucket);
  EXPECT_FALSE(q.uses_buckets());
  q.insert(0, GainQueue::kMaxBucketRange);  // still representable
  EXPECT_EQ(q.top_gain(), GainQueue::kMaxBucketRange);
}

TEST(GainQueue, BackendsAgreeOnSequence) {
  GainQueue heap(8, 50, GainQueueKind::kHeap);
  GainQueue bucket(8, 50, GainQueueKind::kBucket);
  const Weight gains[8] = {3, -7, 50, 0, 12, -50, 12, 1};
  for (Index i = 0; i < 8; ++i) {
    heap.insert(i, gains[i]);
    bucket.insert(i, gains[i]);
  }
  heap.adjust(3, 49);
  bucket.adjust(3, 49);
  // Pop order may differ on ties, but the gain sequence must match.
  while (!heap.empty()) {
    EXPECT_EQ(heap.top_gain(), bucket.top_gain());
    heap.pop();
    bucket.pop();
  }
  EXPECT_TRUE(bucket.empty());
}

}  // namespace
}  // namespace hgr
