#include "partition/initial.hpp"

#include <gtest/gtest.h>

#include "metrics/cut.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::make_hypergraph;
using testing::random_hypergraph;

BisectionTargets even_targets(const Hypergraph& h, double eps = 0.1) {
  BisectionTargets t;
  t.target0 = h.total_vertex_weight() / 2;
  t.target1 = h.total_vertex_weight() - t.target0;
  t.epsilon = eps;
  return t;
}

Weight side_weight(const Hypergraph& h,
                   const IdVector<VertexId, PartId>& side, PartId s) {
  Weight w = 0;
  for (const VertexId v : h.vertices())
    if (side[v] == s) w += h.vertex_weight(v);
  return w;
}

TEST(GreedyGrowing, ProducesTwoSides) {
  const Hypergraph h = random_hypergraph(40, 80, 4, 2, 3);
  Rng rng(1);
  const auto side = greedy_growing_bisection(h, even_targets(h), rng);
  ASSERT_EQ(side.size(), 40u);
  for (const PartId s : side)
    EXPECT_TRUE(s == PartId{0} || s == PartId{1});
  EXPECT_GT(side_weight(h, side, PartId{0}), 0);
  EXPECT_GT(side_weight(h, side, PartId{1}), 0);
}

TEST(GreedyGrowing, ReachesTargetWeightApproximately) {
  const Hypergraph h = random_hypergraph(100, 200, 4, 2, 5);
  Rng rng(2);
  const BisectionTargets t = even_targets(h, 0.1);
  const auto side = greedy_growing_bisection(h, t, rng);
  const Weight w0 = side_weight(h, side, PartId{0});
  EXPECT_GE(w0, static_cast<Weight>(t.target0 * 0.7));
  EXPECT_LE(w0, t.max_weight(0));
}

TEST(GreedyGrowing, HonorsFixedVertices) {
  HypergraphBuilder b(6);
  b.add_net({0, 1, 2});
  b.add_net({3, 4, 5});
  b.add_net({2, 3});
  b.set_fixed_part(0, PartId{0});
  b.set_fixed_part(5, PartId{1});
  const Hypergraph h = b.finalize();
  Rng rng(3);
  const auto side = greedy_growing_bisection(h, even_targets(h), rng);
  EXPECT_EQ(side[VertexId{0}], PartId{0});
  EXPECT_EQ(side[VertexId{5}], PartId{1});
}

TEST(GreedyGrowing, AllFixedIsRespectedVerbatim) {
  HypergraphBuilder b(4);
  b.add_net({0, 1, 2, 3});
  for (Index v = 0; v < 4; ++v)
    b.set_fixed_part(v, PartId{v % 2});
  const Hypergraph h = b.finalize();
  Rng rng(4);
  const auto side = greedy_growing_bisection(h, even_targets(h), rng);
  for (const VertexId v : side.ids()) EXPECT_EQ(side[v], PartId{v.v % 2});
}

TEST(GreedyGrowing, DisconnectedHypergraphStillFillsSideZero) {
  // Two components; growth must reseed across the gap.
  const Hypergraph h = make_hypergraph(8, {{0, 1}, {2, 3}, {4, 5}, {6, 7}});
  Rng rng(5);
  const BisectionTargets t = even_targets(h, 0.05);
  const auto side = greedy_growing_bisection(h, t, rng);
  EXPECT_EQ(side_weight(h, side, PartId{0}), 4);
}

TEST(InitialBisection, MultiTrialNotWorseThanSingle) {
  const Hypergraph h = random_hypergraph(60, 150, 4, 3, 9);
  const BisectionTargets t = even_targets(h);
  Rng rng1(7), rng8(7);
  const auto one = initial_bisection(h, t, 1, rng1);
  const auto eight = initial_bisection(h, t, 8, rng8);

  const auto cut = [&](const IdVector<VertexId, PartId>& side) {
    Partition p(2, h.num_vertices());
    p.assignment = side;
    return connectivity_cut(h, p);
  };
  EXPECT_LE(cut(eight), cut(one));
}

TEST(InitialBisection, UnevenTargets) {
  // 3:1 split.
  const Hypergraph h = random_hypergraph(80, 160, 4, 2, 11);
  BisectionTargets t;
  t.target0 = h.total_vertex_weight() * 3 / 4;
  t.target1 = h.total_vertex_weight() - t.target0;
  t.epsilon = 0.1;
  Rng rng(8);
  const auto side = initial_bisection(h, t, 4, rng);
  const Weight w0 = side_weight(h, side, PartId{0});
  EXPECT_GT(w0, h.total_vertex_weight() / 2);
  EXPECT_LE(w0, t.max_weight(0));
}

}  // namespace
}  // namespace hgr
