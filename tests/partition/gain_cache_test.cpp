// Property tests for the incremental cut/gain structure: every maintained
// quantity (cut, pin counts, connectivity bits, leave gains, part weights)
// must stay identical to a from-scratch recomputation under arbitrary
// move sequences — including repeated moves of the same vertex and
// instances with fixed vertices. Runs in the TSan/chaos CI matrix.
#include "partition/gain_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "metrics/cut.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::brute_force_connectivity_cut;
using testing::random_hypergraph;
using testing::random_partition;

Index scratch_pin_count(const Hypergraph& h, const Partition& p, NetId net,
                        PartId q) {
  Index count = 0;
  for (const VertexId v : h.pins(net))
    if (p[v] == q) ++count;
  return count;
}

Weight scratch_leave_gain(const Hypergraph& h, const Partition& p,
                          VertexId v) {
  Weight g = 0;
  for (const NetId net : h.incident_nets(v))
    if (scratch_pin_count(h, p, net, p[v]) == 1) g += h.net_cost(net);
  return g;
}

void expect_matches_scratch(const Hypergraph& h, const Partition& p,
                            const GainCache& cache) {
  ASSERT_EQ(cache.cut(), brute_force_connectivity_cut(h, p));
  ASSERT_EQ(cache.cut(), connectivity_cut(h, p));
  IdVector<PartId, Weight> part_w(p.k, 0);
  for (const VertexId v : h.vertices()) {
    ASSERT_EQ(cache.part_of(v), p[v]);
    ASSERT_EQ(cache.leave_gain(v), scratch_leave_gain(h, p, v)) << "v=" << v;
    part_w[p[v]] += h.vertex_weight(v);
  }
  for (const PartId q : p.parts())
    ASSERT_EQ(cache.part_weight(q), part_w[q]);
  for (const NetId net : h.nets()) {
    for (const PartId q : p.parts()) {
      const Index count = scratch_pin_count(h, p, net, q);
      ASSERT_EQ(cache.pin_count(net, q), count) << "net=" << net;
      ASSERT_EQ(cache.net_touches(net, q), count > 0) << "net=" << net;
    }
  }
}

TEST(GainCacheProperty, RandomMovesMatchScratchRecomputation) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Index k = 5;
    const Hypergraph h = random_hypergraph(40, 80, 5, 3, seed);
    Partition p = random_partition(40, k, seed + 100);
    GainCache cache(h, p);
    expect_matches_scratch(h, p, cache);
    Rng rng(seed + 9);
    for (int step = 0; step < 150; ++step) {
      const VertexId v{static_cast<Index>(rng.below(40))};
      PartId to{static_cast<Index>(rng.below(static_cast<std::uint64_t>(k)))};
      if (to == p[v]) to = PartId{(to.v + 1) % k};
      cache.apply_move(v, to);
      p[v] = to;
      // Cut identity at every step; the full table every 25 steps.
      ASSERT_EQ(cache.cut(), brute_force_connectivity_cut(h, p))
          << "seed=" << seed << " step=" << step;
      if (step % 25 == 0) expect_matches_scratch(h, p, cache);
    }
    expect_matches_scratch(h, p, cache);
    cache.validate(check::CheckLevel::kParanoid);
  }
}

TEST(GainCacheProperty, RepeatedMovesOfSameVertexWithFixedNeighbors) {
  // A vertex ping-ponging through every part of a mostly-fixed instance:
  // the sole-pin transitions (1 <-> 2 pins in a part) happen on every hop.
  HypergraphBuilder b(5);
  b.add_net({0, 1}, 2);
  b.add_net({0, 2}, 3);
  b.add_net({0, 3, 4}, 1);
  b.add_net({1, 2, 3}, 5);
  b.set_fixed_part(1, PartId{0});
  b.set_fixed_part(2, PartId{1});
  b.set_fixed_part(3, PartId{2});
  const Hypergraph h = b.finalize();
  const Index k = 3;
  Partition p(k, 5);
  p[VertexId{0}] = PartId{0};
  p[VertexId{1}] = PartId{0};
  p[VertexId{2}] = PartId{1};
  p[VertexId{3}] = PartId{2};
  p[VertexId{4}] = PartId{2};
  GainCache cache(h, p);
  expect_matches_scratch(h, p, cache);
  Rng rng(3);
  for (int step = 0; step < 60; ++step) {
    // Only the free vertices 0 and 4 ever move (callers skip fixed ones).
    const VertexId v{rng.below(2) == 0 ? 0 : 4};
    PartId to{static_cast<Index>(rng.below(static_cast<std::uint64_t>(k)))};
    if (to == p[v]) to = PartId{(to.v + 1) % k};
    const Weight predicted = cache.move_gain(v, to);
    const Weight before = cache.cut();
    cache.apply_move(v, to);
    p[v] = to;
    ASSERT_EQ(cache.cut(), before - predicted) << "step=" << step;
    expect_matches_scratch(h, p, cache);
  }
  cache.validate(check::CheckLevel::kParanoid);
}

TEST(GainCacheProperty, MoveGainEqualsCutDelta) {
  for (std::uint64_t seed = 10; seed < 13; ++seed) {
    const Index k = 4;
    const Hypergraph h = random_hypergraph(30, 60, 4, 3, seed);
    Partition p = random_partition(30, k, seed);
    GainCache cache(h, p);
    Rng rng(seed);
    for (int step = 0; step < 80; ++step) {
      const VertexId v{static_cast<Index>(rng.below(30))};
      PartId to{static_cast<Index>(rng.below(static_cast<std::uint64_t>(k)))};
      if (to == p[v]) to = PartId{(to.v + 1) % k};
      const Weight g = cache.move_gain(v, to);
      const Weight before = cache.cut();
      cache.apply_move(v, to);
      p[v] = to;
      ASSERT_EQ(cache.cut(), before - g);
    }
  }
}

TEST(GainCacheProperty, ManyPartsExerciseMultiWordBitsets) {
  // k=70 needs two 64-bit words per connectivity row; the candidate and
  // touch paths must handle the word boundary.
  const Index k = 70;
  const Hypergraph h = random_hypergraph(90, 120, 6, 2, 42);
  Partition p = random_partition(90, k, 7);
  GainCache cache(h, p);
  expect_matches_scratch(h, p, cache);
  Rng rng(11);
  std::vector<PartId> candidates;
  for (int step = 0; step < 120; ++step) {
    const VertexId v{static_cast<Index>(rng.below(90))};
    // Brute-force candidate destinations: distinct parts of co-pins.
    std::set<PartId> expected;
    for (const NetId net : h.incident_nets(v))
      for (const VertexId u : h.pins(net))
        if (p[u] != p[v]) expected.insert(p[u]);
    cache.candidate_parts_into(candidates, v);
    ASSERT_EQ(std::vector<PartId>(expected.begin(), expected.end()),
              candidates)
        << "step=" << step;
    ASSERT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
    PartId to{static_cast<Index>(rng.below(static_cast<std::uint64_t>(k)))};
    if (to == p[v]) to = PartId{(to.v + 1) % k};
    cache.apply_move(v, to);
    p[v] = to;
    ASSERT_EQ(cache.cut(), brute_force_connectivity_cut(h, p));
  }
  cache.validate(check::CheckLevel::kParanoid);
}

/// Listener that records every delta-gain event it sees.
struct RecordingListener {
  struct Event {
    char kind;  // 'G'ained, 'J'oined, 'L'ost, 'R'emains
    NetId net;
    Weight cost;
  };
  std::vector<Event> events;

  void net_gained_part(NetId net, PartId, Weight c) {
    events.push_back({'G', net, c});
  }
  void sole_pin_joined(NetId net, VertexId, PartId, Weight c) {
    events.push_back({'J', net, c});
  }
  void net_lost_part(NetId net, PartId, Weight c) {
    events.push_back({'L', net, c});
  }
  void sole_pin_remains(NetId net, VertexId, PartId, Weight c) {
    events.push_back({'R', net, c});
  }
};

TEST(GainCache, ZeroCostNetsFireNoEventsButStayConsistent) {
  HypergraphBuilder b(3);
  b.add_net({0, 1}, 0);  // free net: maintained, but silent
  b.add_net({0, 2}, 4);
  const Hypergraph h = b.finalize();
  Partition p(2, 3);
  p[VertexId{0}] = PartId{0};
  p[VertexId{1}] = PartId{1};
  p[VertexId{2}] = PartId{1};
  GainCache cache(h, p);
  EXPECT_EQ(cache.cut(), 4);  // the zero-cost net never contributes

  RecordingListener listener;
  cache.apply_move(VertexId{0}, PartId{1}, listener);
  p[VertexId{0}] = PartId{1};
  EXPECT_EQ(cache.cut(), 0);
  expect_matches_scratch(h, p, cache);
  // Both events come from the costed net; the zero-cost net is silent
  // even though vertex 0 left it as the sole part-0 pin.
  ASSERT_EQ(listener.events.size(), 2u);
  for (const auto& e : listener.events) {
    EXPECT_EQ(e.net, NetId{1});
    EXPECT_EQ(e.cost, 4);
  }
  EXPECT_EQ(listener.events[0].kind, 'J');  // joined pins in part 1
  EXPECT_EQ(listener.events[1].kind, 'L');  // part 0 lost its last pin
}

TEST(GainCache, PartitionConstructorMatchesSpanConstructor) {
  const Hypergraph h = random_hypergraph(25, 40, 4, 2, 5);
  const Partition p = random_partition(25, 3, 6);
  GainCache from_partition(h, p);
  GainCache from_span(h, p.k, p.assignment);
  EXPECT_EQ(from_partition.cut(), from_span.cut());
  EXPECT_EQ(from_partition.k(), from_span.k());
  for (const PartId q : p.parts())
    EXPECT_EQ(from_partition.part_weight(q), from_span.part_weight(q));
}

}  // namespace
}  // namespace hgr
