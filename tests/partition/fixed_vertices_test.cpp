// End-to-end fixed-vertex guarantees of the partitioner — the capability
// the paper's repartitioning model rests on (Section 4).
#include <gtest/gtest.h>

#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "partition/partitioner.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::random_hypergraph;

Hypergraph with_random_fixed(Hypergraph h, Index k, double fraction,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<PartId> fixed(static_cast<std::size_t>(h.num_vertices()),
                            kNoPart);
  for (Index v = 0; v < h.num_vertices(); ++v)
    if (rng.chance(fraction))
      fixed[static_cast<std::size_t>(v)] =
          PartId{static_cast<Index>(rng.below(static_cast<std::uint64_t>(k)))};
  h.set_fixed_parts(std::move(fixed));
  return h;
}

class FixedVertexSweep
    : public ::testing::TestWithParam<std::tuple<Index, double>> {};

TEST_P(FixedVertexSweep, EveryFixedVertexLandsInItsPart) {
  const auto [k, fraction] = GetParam();
  const Hypergraph h = with_random_fixed(
      random_hypergraph(120, 240, 5, 3, 17), k, fraction, 23);
  PartitionConfig cfg;
  cfg.num_parts = k;
  const Partition p = partition_hypergraph(h, cfg);
  p.validate();
  for (const VertexId v : p.vertices()) {
    const PartId f = h.fixed_part(v);
    if (f != kNoPart) EXPECT_EQ(p[v], f) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KsAndFractions, FixedVertexSweep,
    ::testing::Combine(::testing::Values<Index>(2, 4, 8),
                       ::testing::Values(0.05, 0.3, 0.9)));

TEST(FixedVertices, AllVerticesFixedReturnsExactAssignment) {
  Hypergraph h = random_hypergraph(40, 80, 4, 2, 31);
  std::vector<PartId> fixed(40);
  Rng rng(5);
  for (auto& f : fixed) f = PartId{static_cast<Index>(rng.below(4))};
  h.set_fixed_parts(fixed);
  PartitionConfig cfg;
  cfg.num_parts = 4;
  const Partition p = partition_hypergraph(h, cfg);
  for (Index v = 0; v < 40; ++v)
    EXPECT_EQ(p[VertexId{v}], fixed[static_cast<std::size_t>(v)]);
}

TEST(FixedVertices, DirectKwayAlsoHonorsFixed) {
  const Hypergraph h = with_random_fixed(
      random_hypergraph(100, 200, 4, 2, 37), 4, 0.3, 41);
  PartitionConfig cfg;
  cfg.num_parts = 4;
  cfg.kway_method = KwayMethod::kDirectKway;
  const Partition p = partition_hypergraph(h, cfg);
  for (const VertexId v : p.vertices()) {
    const PartId f = h.fixed_part(v);
    if (f != kNoPart) EXPECT_EQ(p[v], f);
  }
}

TEST(FixedVertices, VcyclePreservesFixed) {
  const Hypergraph h = with_random_fixed(
      random_hypergraph(100, 200, 4, 2, 43), 4, 0.2, 47);
  PartitionConfig cfg;
  cfg.num_parts = 4;
  cfg.num_vcycles = 2;
  const Partition p = partition_hypergraph(h, cfg);
  for (const VertexId v : p.vertices()) {
    const PartId f = h.fixed_part(v);
    if (f != kNoPart) EXPECT_EQ(p[v], f);
  }
}

TEST(FixedVertices, FreeVerticesStillBalanced) {
  const Hypergraph h = with_random_fixed(
      random_hypergraph(200, 400, 4, 2, 53), 4, 0.1, 59);
  PartitionConfig cfg;
  cfg.num_parts = 4;
  cfg.epsilon = 0.1;
  const Partition p = partition_hypergraph(h, cfg);
  EXPECT_LE(imbalance(h.vertex_weights(), p), 0.35);
}

TEST(FixedVertices, FixedPullNearbyFreeVertices) {
  // A chain of 9 with its two ends fixed to different parts: the cut must
  // land somewhere in the middle, i.e. each fixed end keeps its immediate
  // neighbor in the same part for a cut of 1.
  HypergraphBuilder b(9);
  for (Index v = 0; v + 1 < 9; ++v) b.add_net({v, v + 1});
  b.set_fixed_part(0, PartId{0});
  b.set_fixed_part(8, PartId{1});
  const Hypergraph h = b.finalize();
  PartitionConfig cfg;
  cfg.num_parts = 2;
  cfg.epsilon = 0.2;
  const Partition p = partition_hypergraph(h, cfg);
  EXPECT_EQ(p[VertexId{0}], PartId{0});
  EXPECT_EQ(p[VertexId{8}], PartId{1});
  EXPECT_EQ(connectivity_cut(h, p), 1);
}

}  // namespace
}  // namespace hgr
