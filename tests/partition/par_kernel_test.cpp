// Thread-count invariance of the thread-parallel kernels: matching,
// contraction, and k-way refinement must produce bit-identical results
// whether they run serially, on a pool of one, or on a pool of four —
// the per-kernel half of the determinism contract (docs/PARALLELISM.md);
// integration/thread_determinism_test.cpp checks the whole pipeline.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/workspace.hpp"
#include "metrics/cut.hpp"
#include "partition/contract.hpp"
#include "partition/kway_refine.hpp"
#include "partition/matching_ipm.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::random_hypergraph;
using testing::random_partition;

void expect_same_hypergraph(const Hypergraph& a, const Hypergraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_nets(), b.num_nets());
  for (const VertexId v : a.vertices()) {
    EXPECT_EQ(a.vertex_weight(v), b.vertex_weight(v));
    EXPECT_EQ(a.vertex_size(v), b.vertex_size(v));
  }
  for (const NetId net : a.nets()) {
    ASSERT_EQ(a.net_size(net), b.net_size(net));
    EXPECT_EQ(a.net_cost(net), b.net_cost(net));
    const auto pa = a.pins(net);
    const auto pb = b.pins(net);
    for (Index i = 0; i < a.net_size(net); ++i) EXPECT_EQ(pa[i], pb[i]);
  }
}

IdVector<VertexId, VertexId> match_with_threads(const Hypergraph& h,
                                                const PartitionConfig& cfg,
                                                int threads,
                                                std::uint64_t seed) {
  Rng rng(seed);
  if (threads == 0) return ipm_matching(h, cfg, 0, rng, nullptr);
  ThreadPool pool(threads);
  Workspace ws;
  ws.set_pool(&pool);
  return ipm_matching(h, cfg, 0, rng, &ws);
}

TEST(ParKernel, MatchingIsThreadCountInvariant) {
  for (const std::uint64_t seed : {1u, 7u, 42u}) {
    const Hypergraph h = random_hypergraph(400, 800, 6, 3, seed);
    const auto serial = match_with_threads(h, PartitionConfig{}, 0, seed);
    const auto t1 = match_with_threads(h, PartitionConfig{}, 1, seed);
    const auto t4 = match_with_threads(h, PartitionConfig{}, 4, seed);
    EXPECT_EQ(serial, t1) << "seed " << seed;
    EXPECT_EQ(serial, t4) << "seed " << seed;
  }
}

TEST(ParKernel, MatchingWithFixedVerticesIsThreadCountInvariant) {
  Hypergraph h = random_hypergraph(200, 400, 5, 3, 3);
  std::vector<PartId> fixed(200, kNoPart);
  for (Index v = 0; v < 200; v += 7) fixed[v] = PartId{v % 4};
  h.set_fixed_parts(std::move(fixed));
  PartitionConfig cfg;
  cfg.num_parts = 4;
  const auto serial = match_with_threads(h, cfg, 0, 13);
  const auto t4 = match_with_threads(h, cfg, 4, 13);
  EXPECT_EQ(serial, t4);
}

TEST(ParKernel, ContractIsThreadCountInvariant) {
  const Hypergraph h = random_hypergraph(400, 800, 6, 3, 5);
  PartitionConfig cfg;
  const auto match = match_with_threads(h, cfg, 0, 5);

  const CoarseLevel serial = contract(h, match, nullptr);

  ThreadPool pool(4);
  Workspace ws;
  ws.set_pool(&pool);
  const CoarseLevel threaded = contract(h, match, &ws);
  // Run a second time through the now-warm arena: pooled (possibly dirty)
  // per-thread scratch must not change the result either.
  const CoarseLevel threaded2 = contract(h, match, &ws);

  EXPECT_EQ(serial.fine_to_coarse, threaded.fine_to_coarse);
  expect_same_hypergraph(serial.coarse, threaded.coarse);
  EXPECT_EQ(serial.fine_to_coarse, threaded2.fine_to_coarse);
  expect_same_hypergraph(serial.coarse, threaded2.coarse);
}

TEST(ParKernel, KwayRefineIsThreadCountInvariant) {
  const Hypergraph h = random_hypergraph(300, 600, 6, 3, 17);
  PartitionConfig cfg;
  cfg.num_parts = 4;
  cfg.epsilon = 0.2;

  const auto refine_with = [&](int threads) {
    Partition p = random_partition(300, 4, 99);
    Rng rng(23);
    if (threads == 0) {
      const KwayRefineResult r = kway_refine(h, p, cfg, rng, 6, nullptr);
      return std::pair{p, r};
    }
    ThreadPool pool(threads);
    Workspace ws;
    ws.set_pool(&pool);
    const KwayRefineResult r = kway_refine(h, p, cfg, rng, 6, &ws);
    return std::pair{p, r};
  };

  const auto [p_serial, r_serial] = refine_with(0);
  const auto [p_t1, r_t1] = refine_with(1);
  const auto [p_t4, r_t4] = refine_with(4);

  EXPECT_EQ(p_serial.assignment, p_t1.assignment);
  EXPECT_EQ(p_serial.assignment, p_t4.assignment);
  EXPECT_EQ(r_serial.final_cut, r_t4.final_cut);
  EXPECT_EQ(r_serial.moves, r_t4.moves);
  EXPECT_EQ(r_serial.passes, r_t4.passes);
  // The refinement actually did something, so invariance is non-vacuous.
  EXPECT_GT(r_serial.moves, 0);
  EXPECT_LT(r_serial.final_cut, r_serial.initial_cut);
  EXPECT_EQ(connectivity_cut(h, p_t4), r_t4.final_cut);
}

TEST(ParKernel, KwayRefineRespectsFixedVerticesUnderThreads) {
  Hypergraph h = random_hypergraph(200, 400, 5, 3, 29);
  std::vector<PartId> fixed(200, kNoPart);
  for (Index v = 0; v < 200; v += 9) fixed[v] = PartId{v % 3};
  h.set_fixed_parts(std::move(fixed));
  PartitionConfig cfg;
  cfg.num_parts = 3;
  cfg.epsilon = 0.3;
  Partition p = random_partition(200, 3, 7);
  for (const VertexId v : h.vertices())
    if (h.fixed_part(v) != kNoPart) p[v] = h.fixed_part(v);

  ThreadPool pool(4);
  Workspace ws;
  ws.set_pool(&pool);
  Rng rng(31);
  kway_refine(h, p, cfg, rng, 4, &ws);
  for (const VertexId v : h.vertices()) {
    if (h.fixed_part(v) != kNoPart) {
      EXPECT_EQ(p[v], h.fixed_part(v));
    }
  }
}

}  // namespace
}  // namespace hgr
