#include "partition/refine_fm.hpp"

#include <gtest/gtest.h>

#include "metrics/cut.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::make_hypergraph;
using testing::random_hypergraph;

BisectionTargets even_targets(const Hypergraph& h, double eps = 0.1) {
  BisectionTargets t;
  t.target0 = h.total_vertex_weight() / 2;
  t.target1 = h.total_vertex_weight() - t.target0;
  t.epsilon = eps;
  return t;
}

using Sides = IdVector<VertexId, PartId>;

/// Shorthand for literal side assignments in the tests below.
Sides sides(std::initializer_list<Index> raw) {
  Sides out;
  for (const Index q : raw) out.push_back(PartId{q});
  return out;
}

Weight cut_of(const Hypergraph& h, const Sides& side) {
  Partition p(2, h.num_vertices());
  p.assignment = side;
  return connectivity_cut(h, p);
}

Weight side_weight(const Hypergraph& h, const Sides& side, PartId s) {
  Weight w = 0;
  for (const VertexId v : h.vertices())
    if (side[v] == s) w += h.vertex_weight(v);
  return w;
}

TEST(FmRefine, NeverWorsensCut) {
  PartitionConfig cfg;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Hypergraph h = random_hypergraph(50, 100, 5, 3, seed);
    Sides side(50);
    Rng init(seed + 50);
    for (auto& s : side) s = PartId{static_cast<Index>(init.below(2))};
    const Weight before = cut_of(h, side);
    Rng rng(seed);
    const FmResult r = fm_refine_bisection(h, side, even_targets(h), cfg, rng);
    EXPECT_EQ(r.initial_cut, before);
    EXPECT_LE(r.final_cut, before);
    EXPECT_EQ(r.final_cut, cut_of(h, side));
  }
}

TEST(FmRefine, FindsObviousImprovement) {
  // Two cliques joined by one net; a deliberately terrible start.
  const Hypergraph h = make_hypergraph(
      8, {{0, 1, 2, 3}, {0, 1}, {2, 3}, {4, 5, 6, 7}, {4, 5}, {6, 7},
          {3, 4}});
  Sides side = sides({0, 1, 0, 1, 0, 1, 0, 1});  // everything cut
  PartitionConfig cfg;
  Rng rng(1);
  fm_refine_bisection(h, side, even_targets(h, 0.01), cfg, rng);
  EXPECT_EQ(cut_of(h, side), 1);  // only the bridging net remains cut
  EXPECT_EQ(side_weight(h, side, PartId{0}), 4);
}

TEST(FmRefine, RespectsFixedVertices) {
  HypergraphBuilder b(6);
  b.add_net({0, 1, 2});
  b.add_net({3, 4, 5});
  b.add_net({0, 5});
  b.set_fixed_part(0, PartId{0});
  b.set_fixed_part(5, PartId{1});
  const Hypergraph h = b.finalize();
  Sides side = sides({0, 0, 0, 1, 1, 1});
  PartitionConfig cfg;
  Rng rng(2);
  fm_refine_bisection(h, side, even_targets(h), cfg, rng);
  EXPECT_EQ(side[VertexId{0}], PartId{0});
  EXPECT_EQ(side[VertexId{5}], PartId{1});
}

TEST(FmRefine, RepairsImbalance) {
  // Start with everything on side 0; FM must evacuate to meet targets.
  const Hypergraph h = random_hypergraph(40, 80, 4, 2, 17);
  Sides side(40, PartId{0});
  PartitionConfig cfg;
  cfg.max_refine_passes = 8;
  const BisectionTargets t = even_targets(h, 0.1);
  Rng rng(3);
  fm_refine_bisection(h, side, t, cfg, rng);
  EXPECT_LE(side_weight(h, side, PartId{0}), t.max_weight(0));
  EXPECT_LE(side_weight(h, side, PartId{1}), t.max_weight(1));
}

TEST(FmRefine, KeepsBalanceInvariant) {
  PartitionConfig cfg;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Hypergraph h = random_hypergraph(60, 120, 5, 3, seed + 30);
    const BisectionTargets t = even_targets(h, 0.15);
    // Feasible start: round-robin by weight.
    Sides side(60);
    for (const VertexId v : side.ids()) side[v] = PartId{v.v % 2};
    Rng rng(seed);
    fm_refine_bisection(h, side, t, cfg, rng);
    EXPECT_LE(side_weight(h, side, PartId{0}), t.max_weight(0));
    EXPECT_LE(side_weight(h, side, PartId{1}), t.max_weight(1));
  }
}

TEST(FmRefine, BucketAndHeapQueuesAgreeOnQualityClass) {
  const Hypergraph h = random_hypergraph(50, 120, 4, 2, 77);
  const BisectionTargets t = even_targets(h, 0.1);
  Sides side_heap(50), side_bucket(50);
  Rng init(5);
  for (const VertexId v : side_heap.ids())
    side_heap[v] = side_bucket[v] = PartId{static_cast<Index>(init.below(2))};

  PartitionConfig heap_cfg;
  heap_cfg.gain_queue = GainQueueKind::kHeap;
  PartitionConfig bucket_cfg;
  bucket_cfg.gain_queue = GainQueueKind::kBucket;
  Rng r1(9), r2(9);
  const FmResult rh =
      fm_refine_bisection(h, side_heap, t, heap_cfg, r1);
  const FmResult rb =
      fm_refine_bisection(h, side_bucket, t, bucket_cfg, r2);
  // Both must improve the same start; exact parity is not required (tie
  // orders differ), but neither may regress.
  EXPECT_LE(rh.final_cut, rh.initial_cut);
  EXPECT_LE(rb.final_cut, rb.initial_cut);
}

TEST(FmRefine, AllFixedMeansNoMoves) {
  HypergraphBuilder b(4);
  b.add_net({0, 1, 2, 3});
  for (Index v = 0; v < 4; ++v) b.set_fixed_part(v, PartId{v % 2});
  const Hypergraph h = b.finalize();
  Sides side = sides({0, 1, 0, 1});
  PartitionConfig cfg;
  Rng rng(6);
  const FmResult r = fm_refine_bisection(h, side, even_targets(h), cfg, rng);
  EXPECT_EQ(r.initial_cut, r.final_cut);
  EXPECT_EQ(side, sides({0, 1, 0, 1}));
}

TEST(FmRefine, ZeroCostNetsDoNotCrash) {
  HypergraphBuilder b(4);
  b.add_net({0, 1}, 0);
  b.add_net({1, 2}, 2);
  b.add_net({2, 3}, 0);
  const Hypergraph h = b.finalize();
  Sides side = sides({0, 1, 0, 1});
  PartitionConfig cfg;
  Rng rng(7);
  const FmResult r = fm_refine_bisection(h, side, even_targets(h), cfg, rng);
  EXPECT_LE(r.final_cut, r.initial_cut);
}

}  // namespace
}  // namespace hgr
