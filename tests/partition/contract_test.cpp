#include "partition/contract.hpp"

#include <gtest/gtest.h>

#include "metrics/cut.hpp"
#include "partition/matching_ipm.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::make_hypergraph;
using testing::random_hypergraph;

IdVector<VertexId, VertexId> identity_match(Index n) {
  IdVector<VertexId, VertexId> m(n);
  for (const VertexId v : m.ids()) m[v] = v;
  return m;
}

TEST(Contract, IdentityMatchingKeepsSizes) {
  const Hypergraph h = make_hypergraph(4, {{0, 1}, {1, 2, 3}});
  const CoarseLevel level = contract(h, identity_match(4));
  EXPECT_EQ(level.coarse.num_vertices(), 4);
  EXPECT_EQ(level.coarse.num_nets(), 2);
  level.coarse.validate();
}

TEST(Contract, MergedPairSumsWeightsAndSizes) {
  HypergraphBuilder b(4);
  b.add_net({0, 1});
  b.add_net({2, 3});
  b.set_vertex_weight(0, 3);
  b.set_vertex_weight(1, 4);
  b.set_vertex_size(0, 5);
  b.set_vertex_size(1, 6);
  const Hypergraph h = b.finalize();
  auto match = identity_match(4);
  match[VertexId{0}] = VertexId{1};
  match[VertexId{1}] = VertexId{0};
  const CoarseLevel level = contract(h, match);
  EXPECT_EQ(level.coarse.num_vertices(), 3);
  const VertexId c01 = level.fine_to_coarse[VertexId{0}];
  EXPECT_EQ(level.fine_to_coarse[VertexId{1}], c01);
  EXPECT_EQ(level.coarse.vertex_weight(c01), 7);
  EXPECT_EQ(level.coarse.vertex_size(c01), 11);
}

TEST(Contract, InternalNetDisappears) {
  const Hypergraph h = make_hypergraph(3, {{0, 1}, {1, 2}});
  auto match = identity_match(3);
  match[VertexId{0}] = VertexId{1};
  match[VertexId{1}] = VertexId{0};
  const CoarseLevel level = contract(h, match);
  // Net {0,1} collapsed to one pin and vanished; {1,2} survives.
  EXPECT_EQ(level.coarse.num_nets(), 1);
  EXPECT_EQ(level.coarse.net_size(NetId{0}), 2);
}

TEST(Contract, IdenticalNetsMergeWithSummedCost) {
  HypergraphBuilder b(4);
  b.add_net({0, 2}, 3);
  b.add_net({1, 3}, 4);
  const Hypergraph h = b.finalize();
  auto match = identity_match(4);
  match[VertexId{0}] = VertexId{1};
  match[VertexId{1}] = VertexId{0};
  match[VertexId{2}] = VertexId{3};
  match[VertexId{3}] = VertexId{2};
  // Both nets map to {c01, c23}: they must merge into one of cost 7.
  const CoarseLevel level = contract(h, match);
  EXPECT_EQ(level.coarse.num_nets(), 1);
  EXPECT_EQ(level.coarse.net_cost(NetId{0}), 7);
}

TEST(Contract, FixedPartPropagates) {
  HypergraphBuilder b(4);
  b.add_net({0, 1});
  b.add_net({2, 3});
  b.set_fixed_part(0, PartId{2});
  const Hypergraph h = b.finalize();
  auto match = identity_match(4);
  match[VertexId{0}] = VertexId{1};
  match[VertexId{1}] = VertexId{0};
  const CoarseLevel level = contract(h, match);
  EXPECT_EQ(level.coarse.fixed_part(level.fine_to_coarse[VertexId{0}]),
            PartId{2});
  EXPECT_EQ(level.coarse.fixed_part(level.fine_to_coarse[VertexId{2}]),
            kNoPart);
}

TEST(Contract, TotalWeightInvariant) {
  const Hypergraph h = random_hypergraph(80, 150, 5, 3, 5);
  Rng rng(6);
  PartitionConfig cfg;
  const auto match = ipm_matching(h, cfg, 0, rng);
  const CoarseLevel level = contract(h, match);
  EXPECT_EQ(level.coarse.total_vertex_weight(), h.total_vertex_weight());
  level.coarse.validate();
}

TEST(Contract, CutPreservedUnderProjection) {
  // Partitioning the coarse hypergraph and projecting up must give the
  // same connectivity cut (nets that vanished were internal to a coarse
  // vertex and cannot be cut by a projected partition).
  const Hypergraph h = random_hypergraph(60, 120, 4, 4, 7);
  Rng rng(8);
  PartitionConfig cfg;
  const auto match = ipm_matching(h, cfg, 0, rng);
  const CoarseLevel level = contract(h, match);

  const Partition coarse_p =
      testing::random_partition(level.coarse.num_vertices(), 3, 99);
  Partition fine_p(3, h.num_vertices());
  for (const VertexId v : fine_p.vertices())
    fine_p[v] = coarse_p[level.fine_to_coarse[v]];
  EXPECT_EQ(connectivity_cut(level.coarse, coarse_p),
            connectivity_cut(h, fine_p));
}

TEST(ContractDeathTest, IncompatibleFixedPairAborts) {
  HypergraphBuilder b(2);
  b.add_net({0, 1});
  b.set_fixed_part(0, PartId{0});
  b.set_fixed_part(1, PartId{1});
  const Hypergraph h = b.finalize();
  IdVector<VertexId, VertexId> match(2);
  match[VertexId{0}] = VertexId{1};
  match[VertexId{1}] = VertexId{0};
  EXPECT_DEATH(contract(h, match), "incompatible fixed");
}

}  // namespace
}  // namespace hgr
