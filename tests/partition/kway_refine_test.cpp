#include "partition/kway_refine.hpp"

#include <gtest/gtest.h>

#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::make_hypergraph;
using testing::random_hypergraph;
using testing::random_partition;

TEST(KwayRefine, NeverWorsensCut) {
  PartitionConfig cfg;
  cfg.num_parts = 4;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Hypergraph h = random_hypergraph(60, 120, 5, 3, seed);
    Partition p = random_partition(60, 4, seed + 7);
    const Weight before = connectivity_cut(h, p);
    Rng rng(seed);
    const KwayRefineResult r = kway_refine(h, p, cfg, rng, 3);
    EXPECT_EQ(r.initial_cut, before);
    EXPECT_LE(r.final_cut, before);
    EXPECT_EQ(r.final_cut, connectivity_cut(h, p));
  }
}

TEST(KwayRefine, FixedVerticesNeverMove) {
  HypergraphBuilder b(6);
  b.add_net({0, 1, 2});
  b.add_net({3, 4, 5});
  b.add_net({2, 3});
  b.set_fixed_part(0, PartId{2});
  const Hypergraph h = b.finalize();
  PartitionConfig cfg;
  cfg.num_parts = 3;
  Partition p(3, 6);
  p[VertexId{0}] = PartId{2};
  p[VertexId{1}] = PartId{0}; p[VertexId{2}] = PartId{0}; p[VertexId{3}] = PartId{1}; p[VertexId{4}] = PartId{1}; p[VertexId{5}] = PartId{1};
  Rng rng(1);
  kway_refine(h, p, cfg, rng, 4);
  EXPECT_EQ(p[VertexId{0}], PartId{2});
}

TEST(KwayRefine, DoesNotViolateBalance) {
  PartitionConfig cfg;
  cfg.num_parts = 3;
  cfg.epsilon = 0.2;
  const Hypergraph h = random_hypergraph(60, 150, 4, 2, 21);
  // Balanced round-robin start.
  Partition p(3, 60);
  for (Index v = 0; v < 60; ++v) p[VertexId{v}] = PartId{v % 3};
  const double before = imbalance(h.vertex_weights(), p);
  Rng rng(2);
  kway_refine(h, p, cfg, rng, 4);
  // Moves were only allowed into parts that stayed under the cap.
  EXPECT_LE(imbalance(h.vertex_weights(), p),
            std::max(before, cfg.epsilon) + 1e-9);
}

TEST(KwayRefine, SinglePartNoop) {
  const Hypergraph h = random_hypergraph(20, 30, 4, 2, 3);
  PartitionConfig cfg;
  cfg.num_parts = 1;
  Partition p(1, 20, PartId{0});
  Rng rng(3);
  const KwayRefineResult r = kway_refine(h, p, cfg, rng, 2);
  EXPECT_EQ(r.moves, 0);
}

TEST(KwayRefine, ImprovesAPlantedBadAssignment) {
  // A 2-clique-ish structure split across 2 of 2 parts the wrong way.
  const Hypergraph h = make_hypergraph(
      8, {{0, 1, 2, 3}, {0, 2}, {1, 3}, {4, 5, 6, 7}, {4, 6}, {5, 7},
          {0, 4}});
  PartitionConfig cfg;
  cfg.num_parts = 2;
  // Greedy sweeps cannot swap, so give single moves balance headroom.
  cfg.epsilon = 0.3;
  Partition p(2, 8);
  // Two stray vertices on the wrong side: single moves fix each.
  p[VertexId{0}] = PartId{0}; p[VertexId{1}] = PartId{0}; p[VertexId{2}] = PartId{0}; p[VertexId{3}] = PartId{1};
  p[VertexId{4}] = PartId{0}; p[VertexId{5}] = PartId{1}; p[VertexId{6}] = PartId{1}; p[VertexId{7}] = PartId{1};
  Rng rng(4);
  const KwayRefineResult r = kway_refine(h, p, cfg, rng, 6);
  EXPECT_LT(r.final_cut, r.initial_cut);
}

// Regression: with total weight 7 over k=2 parts the average is 3.5, and
// the old bound static_cast<Weight>(avg * (1 + eps)) truncated to 3 for
// small eps — below ceil(avg) — so no part could ever reach weight 4 and
// the obvious cut-clearing move was rejected forever.
TEST(KwayRefine, AcceptsMoveUpToCeilOfFractionalAverage) {
  HypergraphBuilder b(3);
  b.add_net({0, 2});  // cut in the start partition; internal after the move
  b.set_vertex_weight(0, 3);
  b.set_vertex_weight(1, 3);
  b.set_vertex_weight(2, 1);
  const Hypergraph h = b.finalize();
  PartitionConfig cfg;
  cfg.num_parts = 2;
  cfg.epsilon = 0.05;
  Partition p(2, 3);
  p[VertexId{0}] = PartId{0};
  p[VertexId{1}] = PartId{0};
  p[VertexId{2}] = PartId{1};
  Rng rng(6);
  // Moving v0 (weight 3) to part 1 (weight 1) reaches 4 = ceil(3.5): legal
  // under Eq. 1, rejected by the truncated bound.
  const KwayRefineResult r = kway_refine(h, p, cfg, rng, 4);
  EXPECT_GE(r.moves, 1);
  EXPECT_EQ(r.final_cut, 0);
  EXPECT_EQ(connectivity_cut(h, p), 0);
  EXPECT_EQ(p[VertexId{0}], PartId{1});
  EXPECT_EQ(p[VertexId{2}], PartId{1});
}

// Regression: the refiner used to lock in the first acceptable candidate
// on ties — the `gain_to[q] == 0 &&` guard meant a zero-gain
// balance-improving move could never be displaced by a later, equally
// good move into a lighter part. Two zero-gain candidates of different
// weights must resolve to the lighter destination, regardless of the
// order the vertex's nets present them in.
TEST(KwayRefine, ZeroGainTieBreakPicksLighterDestination) {
  HypergraphBuilder b(4);
  // v0 is the only movable vertex; its nets present candidate parts in
  // the order p1 (weight 5) before p2 (weight 3).
  b.add_net({0, 3}, 1);
  b.add_net({0, 1}, 1);
  b.add_net({0, 2}, 1);
  b.set_vertex_weight(0, 1);
  b.set_vertex_weight(1, 5);
  b.set_vertex_weight(2, 3);
  b.set_vertex_weight(3, 6);
  b.set_fixed_part(1, PartId{1});
  b.set_fixed_part(2, PartId{2});
  b.set_fixed_part(3, PartId{0});
  const Hypergraph h = b.finalize();
  PartitionConfig cfg;
  cfg.num_parts = 3;
  cfg.epsilon = 0.3;  // max part weight 6: both destinations feasible
  Partition p(3, 4);
  p[VertexId{0}] = PartId{0}; p[VertexId{1}] = PartId{1}; p[VertexId{2}] = PartId{2}; p[VertexId{3}] = PartId{0};
  // Moving v0 to p1 or p2 both have gain exactly 0 (one net uncut, one
  // newly cut) and both improve balance off the weight-7 part 0.
  Rng rng(8);
  const KwayRefineResult r = kway_refine(h, p, cfg, rng, 4);
  EXPECT_EQ(r.final_cut, r.initial_cut);
  EXPECT_EQ(p[VertexId{0}], PartId{2});  // the lighter of the two equal-gain destinations
}

// The dense pins-per-part table is guarded at num_nets * k > 2^28; the
// skip must be counted, not silent, and must leave the partition alone.
TEST(KwayRefine, OversizedTableSkipIsCounted) {
  obs::Registry reg;
  obs::ScopedRegistry scope(reg);
  // 262145 nets x k=1024 = 2^28 + 1024 crosses the guard.
  HypergraphBuilder b(2);
  for (Index i = 0; i < 262145; ++i) b.add_net({0, 1}, 1);
  const Hypergraph h = b.finalize();
  PartitionConfig cfg;
  cfg.num_parts = 1024;
  Partition p(1024, 2);
  p[VertexId{0}] = PartId{0};
  p[VertexId{1}] = PartId{1};
  const Weight before = connectivity_cut(h, p);
  Rng rng(9);
  const KwayRefineResult r = kway_refine(h, p, cfg, rng, 2);
  EXPECT_EQ(reg.counter_value("kway.skipped_table_too_large"), 1u);
  EXPECT_EQ(r.moves, 0);
  EXPECT_EQ(r.final_cut, before);
  EXPECT_EQ(p[VertexId{0}], PartId{0});
  EXPECT_EQ(p[VertexId{1}], PartId{1});
}

TEST(KwayRefine, StopsWhenNoMoveApplies) {
  // Already optimal: one pass, zero moves.
  const Hypergraph h = make_hypergraph(4, {{0, 1}, {2, 3}});
  PartitionConfig cfg;
  cfg.num_parts = 2;
  Partition p(2, 4);
  p[VertexId{0}] = p[VertexId{1}] = PartId{0};
  p[VertexId{2}] = p[VertexId{3}] = PartId{1};
  Rng rng(5);
  const KwayRefineResult r = kway_refine(h, p, cfg, rng, 5);
  EXPECT_EQ(r.moves, 0);
  EXPECT_EQ(r.passes, 1);
  EXPECT_EQ(r.final_cut, 0);
}

}  // namespace
}  // namespace hgr
