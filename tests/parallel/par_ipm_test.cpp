#include "parallel/par_ipm.hpp"

#include <gtest/gtest.h>

#include <mutex>

#include "parallel/par_coarsen.hpp"
#include "parallel/par_partitioner.hpp"
#include "partition/matching_ipm.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::random_hypergraph;

TEST(BlockDistribution, RangesPartitionTheIndexSpace) {
  for (const Index n : {1, 7, 100, 101}) {
    for (const int size : {1, 2, 3, 8}) {
      Index covered = 0;
      for (int r = 0; r < size; ++r) {
        const auto [lo, hi] = block_range(n, size, r);
        EXPECT_LE(lo, hi);
        covered += hi - lo;
        for (Index v = lo; v < hi; ++v)
          EXPECT_EQ(block_owner(v, n, size), r)
              << "v=" << v << " n=" << n << " p=" << size;
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(ParallelIpm, AllRanksAgreeAndInvolution) {
  const Hypergraph h = random_hypergraph(80, 160, 5, 3, 3);
  PartitionConfig cfg;
  Comm comm(4);
  std::mutex m;
  std::vector<std::vector<Index>> results;
  comm.run([&](RankContext& ctx) {
    const auto match = parallel_ipm_matching(ctx, h, cfg, 0, 99);
    std::lock_guard lock(m);
    results.push_back(match);
  });
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t r = 1; r < results.size(); ++r)
    EXPECT_EQ(results[r], results[0]);
  for (Index v = 0; v < 80; ++v)
    EXPECT_EQ(results[0][static_cast<std::size_t>(
                  results[0][static_cast<std::size_t>(v)])],
              v);
}

TEST(ParallelIpm, RespectsFixedCompatibility) {
  Hypergraph h = random_hypergraph(60, 120, 4, 2, 5);
  std::vector<PartId> fixed(60, kNoPart);
  Rng frng(1);
  for (auto& f : fixed) f = PartId{static_cast<Index>(frng.below(3))};
  h.set_fixed_parts(fixed);
  PartitionConfig cfg;
  Comm comm(3);
  std::mutex m;
  std::vector<Index> match;
  comm.run([&](RankContext& ctx) {
    auto result = parallel_ipm_matching(ctx, h, cfg, 0, 7);
    if (ctx.rank() == 0) {
      std::lock_guard lock(m);
      match = std::move(result);
    }
  });
  for (Index v = 0; v < 60; ++v) {
    const Index u = match[static_cast<std::size_t>(v)];
    if (u != v) {
      EXPECT_TRUE(
          fixed_compatible(h.fixed_part(VertexId{v}), h.fixed_part(VertexId{u})));
    }
  }
}

TEST(ParallelIpm, MatchesAcrossRankBoundaries) {
  // A chain: most partners live on a different rank than their vertex.
  HypergraphBuilder b(40);
  for (Index v = 0; v + 1 < 40; ++v) b.add_net({v, v + 1});
  const Hypergraph h = b.finalize();
  PartitionConfig cfg;
  Comm comm(4);
  std::mutex m;
  std::vector<Index> match;
  comm.run([&](RankContext& ctx) {
    auto result = parallel_ipm_matching(ctx, h, cfg, 0, 13);
    if (ctx.rank() == 0) {
      std::lock_guard lock(m);
      match = std::move(result);
    }
  });
  Index cross_rank = 0;
  Index matched = 0;
  for (Index v = 0; v < 40; ++v) {
    const Index u = match[static_cast<std::size_t>(v)];
    if (u == v) continue;
    ++matched;
    if (block_owner(v, 40, 4) != block_owner(u, 40, 4)) ++cross_rank;
  }
  EXPECT_GT(matched, 20);
  EXPECT_GT(cross_rank, 0);  // boundary pairs really do match
}

TEST(ParallelContract, ChecksumAgreesAcrossRanks) {
  const Hypergraph h = random_hypergraph(50, 100, 4, 2, 9);
  PartitionConfig cfg;
  Comm comm(3);
  std::mutex m;
  Index coarse_n = -1;
  comm.run([&](RankContext& ctx) {
    const auto match = parallel_ipm_matching(ctx, h, cfg, 0, 3);
    const CoarseLevel level = parallel_contract(ctx, h, match);
    if (ctx.rank() == 0) {
      std::lock_guard lock(m);
      coarse_n = level.coarse.num_vertices();
    }
  });
  EXPECT_GT(coarse_n, 0);
  EXPECT_LT(coarse_n, 50);
}

TEST(LocalIpm, RanksAgreeInvolutionAndBlockLocality) {
  const Hypergraph h = random_hypergraph(80, 160, 5, 3, 13);
  PartitionConfig cfg;
  Comm comm(4);
  std::mutex m;
  std::vector<std::vector<Index>> results;
  comm.run([&](RankContext& ctx) {
    const auto match = local_ipm_matching(ctx, h, cfg, 0, 55);
    std::lock_guard lock(m);
    results.push_back(match);
  });
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t r = 1; r < results.size(); ++r)
    EXPECT_EQ(results[r], results[0]);
  Index matched = 0;
  for (Index v = 0; v < 80; ++v) {
    const Index u = results[0][static_cast<std::size_t>(v)];
    EXPECT_EQ(results[0][static_cast<std::size_t>(u)], v);
    if (u != v) {
      ++matched;
      // Local matching never crosses rank blocks.
      EXPECT_EQ(block_owner(v, 80, 4), block_owner(u, 80, 4));
    }
  }
  EXPECT_GT(matched, 10);
}

TEST(LocalIpm, RespectsFixedCompatibility) {
  Hypergraph h = random_hypergraph(60, 120, 4, 2, 15);
  std::vector<PartId> fixed(60, kNoPart);
  Rng frng(2);
  for (auto& f : fixed) f = PartId{static_cast<Index>(frng.below(3))};
  h.set_fixed_parts(fixed);
  PartitionConfig cfg;
  Comm comm(3);
  std::mutex m;
  std::vector<Index> match;
  comm.run([&](RankContext& ctx) {
    auto result = local_ipm_matching(ctx, h, cfg, 0, 8);
    if (ctx.rank() == 0) {
      std::lock_guard lock(m);
      match = std::move(result);
    }
  });
  for (Index v = 0; v < 60; ++v) {
    const Index u = match[static_cast<std::size_t>(v)];
    if (u != v) {
      EXPECT_TRUE(
          fixed_compatible(h.fixed_part(VertexId{v}), h.fixed_part(VertexId{u})));
    }
  }
}

TEST(LocalIpm, PartitionerWorksWithLocalMatching) {
  const Hypergraph h = random_hypergraph(120, 240, 4, 2, 17);
  ParallelPartitionConfig cfg;
  cfg.num_ranks = 3;
  cfg.base.num_parts = 4;
  cfg.local_matching = true;
  const ParallelPartitionResult r = parallel_partition_hypergraph(h, cfg);
  r.partition.validate();
}

TEST(LocalIpm, LessTrafficThanGlobal) {
  const Hypergraph h = random_hypergraph(150, 300, 5, 3, 19);
  ParallelPartitionConfig cfg;
  cfg.num_ranks = 4;
  cfg.base.num_parts = 4;
  cfg.local_matching = false;
  const auto global = parallel_partition_hypergraph(h, cfg);
  cfg.local_matching = true;
  const auto local = parallel_partition_hypergraph(h, cfg);
  EXPECT_LT(local.traffic.bytes_sent, global.traffic.bytes_sent);
}

TEST(ParallelIpm, SingleRankMatchesLikeSerialRounds) {
  const Hypergraph h = random_hypergraph(40, 80, 4, 2, 11);
  PartitionConfig cfg;
  Comm comm(1);
  comm.run([&](RankContext& ctx) {
    const auto match = parallel_ipm_matching(ctx, h, cfg, 0, 21);
    Index matched = 0;
    for (Index v = 0; v < 40; ++v)
      if (match[static_cast<std::size_t>(v)] != v) ++matched;
    EXPECT_GT(matched, 10);
  });
}

}  // namespace
}  // namespace hgr
