// Stress and ordering tests for the message-passing runtime: the
// correctness of every parallel algorithm rests on these semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/rng.hpp"
#include "parallel/comm.hpp"

namespace hgr {
namespace {

TEST(CommStress, ManySmallMessagesAllArrive) {
  Comm comm(4);
  comm.run([](RankContext& ctx) {
    const int rounds = 200;
    // Everyone sends `rounds` messages to the next rank, receives from the
    // previous, with interleaved sends/recvs.
    const int next = (ctx.rank() + 1) % ctx.size();
    const int prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
    std::int64_t received_sum = 0;
    for (int i = 0; i < rounds; ++i) {
      ctx.send<std::int64_t>(next, 5,
                             std::vector<std::int64_t>{ctx.rank() * 1000 + i});
      const auto m = ctx.recv<std::int64_t>(prev, 5);
      received_sum += m[0];
    }
    std::int64_t expect = 0;
    for (int i = 0; i < rounds; ++i) expect += prev * 1000 + i;
    EXPECT_EQ(received_sum, expect);
  });
}

TEST(CommStress, DistinctTagsDoNotInterfere) {
  Comm comm(2);
  comm.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      // Send on tag 2 first, then tag 1; receiver reads tag 1 first.
      ctx.send<std::int32_t>(1, 2, std::vector<std::int32_t>{22});
      ctx.send<std::int32_t>(1, 1, std::vector<std::int32_t>{11});
    } else {
      EXPECT_EQ(ctx.recv<std::int32_t>(0, 1)[0], 11);
      EXPECT_EQ(ctx.recv<std::int32_t>(0, 2)[0], 22);
    }
  });
}

TEST(CommStress, LargePayloadIntegrity) {
  Comm comm(2);
  comm.run([](RankContext& ctx) {
    const std::size_t n = 1 << 18;  // 2 MiB of int64
    if (ctx.rank() == 0) {
      std::vector<std::int64_t> big(n);
      std::iota(big.begin(), big.end(), std::int64_t{7});
      ctx.send<std::int64_t>(1, 3, big);
    } else {
      const auto got = ctx.recv<std::int64_t>(0, 3);
      ASSERT_EQ(got.size(), n);
      EXPECT_EQ(got.front(), 7);
      EXPECT_EQ(got.back(), static_cast<std::int64_t>(7 + n - 1));
    }
  });
}

TEST(CommStress, RepeatedCollectivesStayInLockstep) {
  Comm comm(8);
  comm.run([](RankContext& ctx) {
    Rng rng(static_cast<std::uint64_t>(ctx.rank()) + 1);
    for (int round = 0; round < 50; ++round) {
      const auto sum =
          ctx.allreduce_sum<std::int64_t>(ctx.rank() + round);
      // sum = (0+1+..+7) + 8*round
      EXPECT_EQ(sum, 28 + 8 * round);
      // Random tiny local delays shift thread interleavings.
      if (rng.chance(0.3)) {
        std::atomic<int> spin{0};
        for (int i = 0; i < 1000; ++i)
          spin.fetch_add(i, std::memory_order_relaxed);
      }
    }
  });
}

TEST(CommStress, AlltoallvAsymmetricSizes) {
  Comm comm(3);
  comm.run([](RankContext& ctx) {
    std::vector<std::vector<std::int32_t>> out(3);
    // Rank r sends r+1 copies of its rank to each destination d != r.
    for (int d = 0; d < 3; ++d) {
      if (d == ctx.rank()) continue;
      out[static_cast<std::size_t>(d)]
          .assign(static_cast<std::size_t>(ctx.rank() + 1), ctx.rank());
    }
    const auto in = ctx.alltoallv(out);
    for (int s = 0; s < 3; ++s) {
      if (s == ctx.rank()) {
        EXPECT_TRUE(in[static_cast<std::size_t>(s)].empty());
      } else {
        ASSERT_EQ(in[static_cast<std::size_t>(s)].size(),
                  static_cast<std::size_t>(s + 1));
        for (const auto x : in[static_cast<std::size_t>(s)]) EXPECT_EQ(x, s);
      }
    }
  });
}

}  // namespace
}  // namespace hgr
