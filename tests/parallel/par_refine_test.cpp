#include "parallel/par_refine.hpp"

#include <gtest/gtest.h>

#include <mutex>

#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::random_hypergraph;
using testing::random_partition;

TEST(ParRefine, NeverWorsensCutAndRanksAgree) {
  const Hypergraph h = random_hypergraph(80, 160, 5, 3, 3);
  const Partition start = random_partition(80, 4, 7);
  PartitionConfig cfg;
  cfg.num_parts = 4;
  cfg.epsilon = 0.5;  // random start is unbalanced; allow generous cap

  Comm comm(3);
  std::mutex m;
  std::vector<Partition> results;
  std::vector<ParRefineResult> stats;
  comm.run([&](RankContext& ctx) {
    Partition p = start;
    const ParRefineResult r = parallel_refine(ctx, h, p, cfg, 99);
    std::lock_guard lock(m);
    results.push_back(std::move(p));
    stats.push_back(r);
  });
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 1; i < results.size(); ++i)
    EXPECT_EQ(results[i].assignment, results[0].assignment);
  EXPECT_LE(stats[0].final_cut, stats[0].initial_cut);
  EXPECT_EQ(stats[0].final_cut, connectivity_cut(h, results[0]));
}

TEST(ParRefine, RespectsFixedVertices) {
  Hypergraph h = random_hypergraph(60, 120, 4, 2, 5);
  std::vector<PartId> fixed(60, kNoPart);
  fixed[0] = PartId{2};
  fixed[5] = PartId{1};
  h.set_fixed_parts(fixed);
  Partition start = random_partition(60, 3, 9);
  start[VertexId{0}] = PartId{2};
  start[VertexId{5}] = PartId{1};
  PartitionConfig cfg;
  cfg.num_parts = 3;
  cfg.epsilon = 0.5;
  Comm comm(2);
  std::mutex m;
  Partition result;
  comm.run([&](RankContext& ctx) {
    Partition p = start;
    parallel_refine(ctx, h, p, cfg, 3);
    if (ctx.rank() == 0) {
      std::lock_guard lock(m);
      result = std::move(p);
    }
  });
  EXPECT_EQ(result[VertexId{0}], PartId{2});
  EXPECT_EQ(result[VertexId{5}], PartId{1});
}

// Regression: the truncated balance bound (floor of avg*(1+eps)) rejected
// moves into parts that Eq. 1 admits whenever the average weight is
// fractional; the ceil-aware bound accepts them.
TEST(ParRefine, AcceptsMoveUpToCeilOfFractionalAverage) {
  HypergraphBuilder b(3);
  b.add_net({0, 2});
  b.set_vertex_weight(0, 3);
  b.set_vertex_weight(1, 3);
  b.set_vertex_weight(2, 1);
  const Hypergraph h = b.finalize();
  Partition start(2, 3);
  start[VertexId{0}] = PartId{0};
  start[VertexId{1}] = PartId{0};
  start[VertexId{2}] = PartId{1};
  PartitionConfig cfg;
  cfg.num_parts = 2;
  cfg.epsilon = 0.05;
  Comm comm(2);
  std::mutex m;
  Partition result;
  ParRefineResult stats;
  comm.run([&](RankContext& ctx) {
    Partition p = start;
    const ParRefineResult r = parallel_refine(ctx, h, p, cfg, 13);
    if (ctx.rank() == 0) {
      std::lock_guard lock(m);
      result = std::move(p);
      stats = r;
    }
  });
  // v0 (weight 3) must join part 1 (reaching 4 = ceil(7/2)) to clear the
  // cut net; the old truncated bound capped part 1 at 3 and kept cut = 1.
  EXPECT_GE(stats.moves, 1);
  EXPECT_EQ(stats.final_cut, 0);
  EXPECT_EQ(connectivity_cut(h, result), 0);
}

// Regression for the candidate-dedup rewrite of State::best_move: the
// incrementally maintained cut must still equal a from-scratch recount on
// dense nets, where the same destination part appears many times per scan.
TEST(ParRefine, FinalCutMatchesRecomputeOnDenseNets) {
  // Few large nets: every vertex sees every part through each net.
  Rng net_rng(31);
  HypergraphBuilder b(40);
  for (int net = 0; net < 12; ++net) {
    std::vector<Index> pins;
    for (Index v = 0; v < 40; ++v)
      if (net_rng.below(4) != 0) pins.push_back(v);  // ~30 pins per net
    b.add_net(pins, 1 + static_cast<Weight>(net_rng.below(3)));
  }
  const Hypergraph h = b.finalize();
  const Partition start = testing::random_partition(40, 4, 17);
  PartitionConfig cfg;
  cfg.num_parts = 4;
  cfg.epsilon = 0.5;
  Comm comm(3);
  std::mutex m;
  std::vector<Partition> results;
  std::vector<ParRefineResult> stats;
  comm.run([&](RankContext& ctx) {
    Partition p = start;
    const ParRefineResult r = parallel_refine(ctx, h, p, cfg, 23);
    std::lock_guard lock(m);
    results.push_back(std::move(p));
    stats.push_back(r);
  });
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].assignment, results[0].assignment);
    EXPECT_EQ(stats[i].final_cut, connectivity_cut(h, results[i]));
    EXPECT_LE(stats[i].final_cut, stats[i].initial_cut);
  }
}

// The dedup means each best_move call evaluates gain() at most k-1 times,
// so the summed counter is bounded by passes * n * (k-1). The old
// once-per-pin behavior evaluates ~degree * net_size times per vertex
// (~90 here vs k-1 = 3) and blows far past this bound.
TEST(ParRefine, GainEvalCountIsPerPartNotPerPin) {
  HypergraphBuilder b(30);
  for (int net = 0; net < 10; ++net) {
    std::vector<Index> pins;
    for (Index v = 0; v < 30; ++v) pins.push_back(v);  // every net is full
    b.add_net(pins, 1);
  }
  const Hypergraph h = b.finalize();
  const Partition start = testing::random_partition(30, 4, 5);
  PartitionConfig cfg;
  cfg.num_parts = 4;
  cfg.epsilon = 0.5;

  obs::Registry reg;
  obs::ScopedRegistry scoped(reg);
  Comm comm(2);
  std::mutex m;
  ParRefineResult stats;
  comm.run([&](RankContext& ctx) {
    Partition p = start;
    const ParRefineResult r = parallel_refine(ctx, h, p, cfg, 29);
    if (ctx.rank() == 0) {
      std::lock_guard lock(m);
      stats = r;
    }
  });
  const std::uint64_t evals = reg.counter_value("refine.gain_evals");
  EXPECT_GT(evals, 0u);
  const std::uint64_t per_part_bound =
      static_cast<std::uint64_t>(stats.passes) * 30u *
      static_cast<std::uint64_t>(cfg.num_parts - 1);
  EXPECT_LE(evals, per_part_bound);
}

TEST(ParRefine, RespectsBalanceCap) {
  const Hypergraph h = random_hypergraph(90, 180, 4, 2, 11);
  // Balanced round-robin start.
  Partition start(3, 90);
  for (Index v = 0; v < 90; ++v) start[VertexId{v}] = PartId{v % 3};
  PartitionConfig cfg;
  cfg.num_parts = 3;
  cfg.epsilon = 0.2;
  Comm comm(4);
  std::mutex m;
  Partition result;
  comm.run([&](RankContext& ctx) {
    Partition p = start;
    parallel_refine(ctx, h, p, cfg, 17);
    if (ctx.rank() == 0) {
      std::lock_guard lock(m);
      result = std::move(p);
    }
  });
  EXPECT_LE(imbalance(h.vertex_weights(), result),
            imbalance(h.vertex_weights(), start) + cfg.epsilon + 0.05);
}

}  // namespace
}  // namespace hgr
