#include "parallel/par_refine.hpp"

#include <gtest/gtest.h>

#include <mutex>

#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "test_util.hpp"

namespace hgr {
namespace {

using testing::random_hypergraph;
using testing::random_partition;

TEST(ParRefine, NeverWorsensCutAndRanksAgree) {
  const Hypergraph h = random_hypergraph(80, 160, 5, 3, 3);
  const Partition start = random_partition(80, 4, 7);
  PartitionConfig cfg;
  cfg.num_parts = 4;
  cfg.epsilon = 0.5;  // random start is unbalanced; allow generous cap

  Comm comm(3);
  std::mutex m;
  std::vector<Partition> results;
  std::vector<ParRefineResult> stats;
  comm.run([&](RankContext& ctx) {
    Partition p = start;
    const ParRefineResult r = parallel_refine(ctx, h, p, cfg, 99);
    std::lock_guard lock(m);
    results.push_back(std::move(p));
    stats.push_back(r);
  });
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 1; i < results.size(); ++i)
    EXPECT_EQ(results[i].assignment, results[0].assignment);
  EXPECT_LE(stats[0].final_cut, stats[0].initial_cut);
  EXPECT_EQ(stats[0].final_cut, connectivity_cut(h, results[0]));
}

TEST(ParRefine, RespectsFixedVertices) {
  Hypergraph h = random_hypergraph(60, 120, 4, 2, 5);
  std::vector<PartId> fixed(60, kNoPart);
  fixed[0] = 2;
  fixed[5] = 1;
  h.set_fixed_parts(fixed);
  Partition start = random_partition(60, 3, 9);
  start[0] = 2;
  start[5] = 1;
  PartitionConfig cfg;
  cfg.num_parts = 3;
  cfg.epsilon = 0.5;
  Comm comm(2);
  std::mutex m;
  Partition result;
  comm.run([&](RankContext& ctx) {
    Partition p = start;
    parallel_refine(ctx, h, p, cfg, 3);
    if (ctx.rank() == 0) {
      std::lock_guard lock(m);
      result = std::move(p);
    }
  });
  EXPECT_EQ(result[0], 2);
  EXPECT_EQ(result[5], 1);
}

TEST(ParRefine, RespectsBalanceCap) {
  const Hypergraph h = random_hypergraph(90, 180, 4, 2, 11);
  // Balanced round-robin start.
  Partition start(3, 90);
  for (Index v = 0; v < 90; ++v) start[v] = static_cast<PartId>(v % 3);
  PartitionConfig cfg;
  cfg.num_parts = 3;
  cfg.epsilon = 0.2;
  Comm comm(4);
  std::mutex m;
  Partition result;
  comm.run([&](RankContext& ctx) {
    Partition p = start;
    parallel_refine(ctx, h, p, cfg, 17);
    if (ctx.rank() == 0) {
      std::lock_guard lock(m);
      result = std::move(p);
    }
  });
  EXPECT_LE(imbalance(h.vertex_weights(), result),
            imbalance(h.vertex_weights(), start) + cfg.epsilon + 0.05);
}

}  // namespace
}  // namespace hgr
