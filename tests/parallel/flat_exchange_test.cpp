// FlatBuffer / BufferPool unit tests and FlatExchange collective
// round-trips: the flat (CSR counts/displs + contiguous payload) wire
// representation introduced for the collectives, including the edge cases
// the ragged shims used to paper over — empty payloads, single-rank runs,
// ragged per-destination counts — and the pool-reuse guarantees.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "parallel/comm.hpp"
#include "parallel/flat_buffer.hpp"

namespace hgr {
namespace {

TEST(FlatBufferPool, AcquireAllocatesAndReuses) {
  BufferPool pool;
  PoolBlock a = pool.acquire(100);
  EXPECT_TRUE(a.valid());
  EXPECT_GE(a.capacity(), 100u);
  pool.release(std::move(a));
  EXPECT_EQ(pool.free_blocks(), 1u);

  const PoolBlock b = pool.acquire(80);  // fits in the cached block
  EXPECT_GE(b.capacity(), 100u);
  EXPECT_EQ(pool.free_blocks(), 0u);
  EXPECT_EQ(pool.stats().acquires, 2u);
  EXPECT_EQ(pool.stats().allocations, 1u);
  EXPECT_EQ(pool.stats().reuses, 1u);
}

TEST(FlatBufferPool, PicksTightestFit) {
  BufferPool pool;
  PoolBlock small = pool.acquire(128);
  PoolBlock large = pool.acquire(4096);
  pool.release(std::move(large));
  pool.release(std::move(small));
  const PoolBlock got = pool.acquire(64);
  EXPECT_EQ(got.capacity(), 128u);  // not the 4096 block
}

TEST(FlatBufferPool, MinimumBlockSize) {
  BufferPool pool;
  const PoolBlock b = pool.acquire(1);
  EXPECT_GE(b.capacity(), BufferPool::kMinBlockBytes);
}

TEST(FlatBufferPool, OverflowDropsSmallestCachedBlock) {
  BufferPool pool;
  std::vector<PoolBlock> blocks;
  for (std::size_t i = 0; i <= BufferPool::kMaxFreeBlocks; ++i)
    blocks.push_back(pool.acquire(100 * (i + 1)));
  for (PoolBlock& b : blocks) pool.release(std::move(b));
  EXPECT_EQ(pool.free_blocks(), BufferPool::kMaxFreeBlocks);
  // The smallest (100-byte) block was the one dropped.
  std::size_t min_cap = SIZE_MAX;
  for (std::size_t i = 0; i < BufferPool::kMaxFreeBlocks; ++i) {
    PoolBlock b = pool.acquire(0);
    min_cap = std::min(min_cap, b.capacity());
  }
  EXPECT_GT(min_cap, 100u);
}

TEST(FlatBufferPool, ClearDropsCachedBlocksOnly) {
  BufferPool pool;
  PoolBlock out = pool.acquire(256);
  pool.release(pool.acquire(512));
  EXPECT_EQ(pool.free_blocks(), 1u);
  pool.clear();
  EXPECT_EQ(pool.free_blocks(), 0u);
  EXPECT_EQ(pool.resident_bytes(), 0u);
  // An outstanding block can still be returned after the reset.
  pool.release(std::move(out));
  EXPECT_EQ(pool.free_blocks(), 1u);
}

TEST(FlatBuffer, CountCommitFillRoundTrip) {
  BufferPool pool;
  FlatBuffer<std::int32_t> buf(3, &pool);
  buf.count(0) += 2;
  buf.count(2) += 1;
  buf.commit_counts();
  EXPECT_FALSE(buf.filled());
  buf.push(0, 10);
  buf.push(2, 30);
  buf.push(0, 11);
  EXPECT_TRUE(buf.filled());
  EXPECT_EQ(buf.total(), 3u);
  ASSERT_EQ(buf.slot(0).size(), 2u);
  EXPECT_EQ(buf.slot(0)[0], 10);
  EXPECT_EQ(buf.slot(0)[1], 11);
  EXPECT_TRUE(buf.slot(1).empty());
  ASSERT_EQ(buf.slot(2).size(), 1u);
  EXPECT_EQ(buf.slot(2)[0], 30);
}

TEST(FlatBuffer, PushNClaimsContiguousRange) {
  FlatBuffer<std::int64_t> buf(2);
  buf.count(1) += 4;
  buf.commit_counts();
  auto span = buf.push_n(1, 4);
  std::iota(span.begin(), span.end(), 5);
  EXPECT_TRUE(buf.filled());
  EXPECT_EQ(buf.slot(1)[3], 8);
}

TEST(FlatBuffer, ResetReusesPooledBlockAfterGrowth) {
  BufferPool pool;
  FlatBuffer<std::int64_t> buf(2, &pool);
  for (int round = 0; round < 5; ++round) {
    buf.reset(2, &pool);
    buf.count(0) += 16;
    buf.commit_counts();
    for (int i = 0; i < 16; ++i) buf.push(0, i);
    EXPECT_TRUE(buf.filled());
  }
  // The first commit allocates; later rounds keep the same block, so the
  // pool never hands out a second payload allocation.
  EXPECT_EQ(pool.stats().allocations, 1u);
}

TEST(FlatBuffer, DestructionReturnsBlockToPool) {
  BufferPool pool;
  {
    FlatBuffer<std::int32_t> buf(1, &pool);
    buf.count(0) += 8;
    buf.commit_counts();
    EXPECT_EQ(pool.free_blocks(), 0u);
  }
  EXPECT_EQ(pool.free_blocks(), 1u);
}

TEST(FlatExchange, AlltoallvEmptyPayloads) {
  Comm comm(4);
  comm.run([](RankContext& ctx) {
    FlatBuffer<std::int64_t> out = ctx.make_buffer<std::int64_t>();
    out.commit_counts();  // every slice empty
    const FlatBuffer<std::int64_t> in = ctx.alltoallv(out);
    EXPECT_EQ(in.total(), 0u);
    for (int s = 0; s < ctx.size(); ++s) EXPECT_TRUE(in.slot(s).empty());
  });
  EXPECT_EQ(comm.total_stats().bytes_sent, 0u);
}

TEST(FlatExchange, AlltoallvSingleRank) {
  Comm comm(1);
  comm.run([](RankContext& ctx) {
    FlatBuffer<std::int32_t> out = ctx.make_buffer<std::int32_t>();
    out.count(0) += 3;
    out.commit_counts();
    for (std::int32_t i = 0; i < 3; ++i) out.push(0, i * 7);
    const FlatBuffer<std::int32_t> in = ctx.alltoallv(out);
    ASSERT_EQ(in.total(), 3u);
    for (std::int32_t i = 0; i < 3; ++i) EXPECT_EQ(in.slot(0)[i], i * 7);
  });
  // Pure self-traffic is never accounted (see comm_telemetry.hpp).
  EXPECT_EQ(comm.total_stats().bytes_sent, 0u);
}

TEST(FlatExchange, AlltoallvRaggedCounts) {
  // Rank r sends r+d+1 words to destination d, except nothing to the rank
  // below it — ragged slice lengths including empties. Word value encodes
  // (src, dst, index) so placement and order are fully checked.
  const int p = 4;
  Comm comm(p);
  comm.run([p](RankContext& ctx) {
    const int me = ctx.rank();
    FlatBuffer<std::int64_t> out = ctx.make_buffer<std::int64_t>();
    for (int phase = 0; phase < 2; ++phase) {
      if (phase == 1) out.commit_counts();
      for (int d = 0; d < p; ++d) {
        if (d == (me + p - 1) % p) continue;  // hole
        const std::size_t n = static_cast<std::size_t>(me + d + 1);
        if (phase == 0) {
          out.count(d) += n;
          continue;
        }
        for (std::size_t i = 0; i < n; ++i)
          out.push(d, 10000 * me + 100 * d + static_cast<std::int64_t>(i));
      }
    }
    const FlatBuffer<std::int64_t> in = ctx.alltoallv(out);
    for (int s = 0; s < p; ++s) {
      if (me == (s + p - 1) % p) {
        EXPECT_TRUE(in.slot(s).empty());
        continue;
      }
      const std::size_t n = static_cast<std::size_t>(s + me + 1);
      ASSERT_EQ(in.slot(s).size(), n);
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(in.slot(s)[i],
                  10000 * s + 100 * me + static_cast<std::int64_t>(i));
    }
  });
}

TEST(FlatExchange, RaggedShimMatchesFlat) {
  Comm comm(3);
  comm.run([](RankContext& ctx) {
    const int me = ctx.rank();
    std::vector<std::vector<std::int32_t>>  // hgr-lint: ragged-ok (shim test)
        ragged(static_cast<std::size_t>(ctx.size()));
    FlatBuffer<std::int32_t> flat = ctx.make_buffer<std::int32_t>();
    for (int d = 0; d < ctx.size(); ++d) {
      for (int i = 0; i <= d; ++i)
        ragged[static_cast<std::size_t>(d)].push_back(100 * me + i);
      flat.count(d) += static_cast<std::size_t>(d + 1);
    }
    flat.commit_counts();
    for (int d = 0; d < ctx.size(); ++d)
      for (int i = 0; i <= d; ++i) flat.push(d, 100 * me + i);

    const auto in_ragged = ctx.alltoallv<std::int32_t>(ragged);
    const FlatBuffer<std::int32_t> in_flat = ctx.alltoallv(flat);
    for (int s = 0; s < ctx.size(); ++s) {
      const auto fs = in_flat.slot(s);
      ASSERT_EQ(in_ragged[static_cast<std::size_t>(s)].size(), fs.size());
      for (std::size_t i = 0; i < fs.size(); ++i)
        EXPECT_EQ(in_ragged[static_cast<std::size_t>(s)][i], fs[i]);
    }
  });
}

TEST(FlatExchange, AllgathervRaggedContributions) {
  Comm comm(4);
  comm.run([](RankContext& ctx) {
    const int me = ctx.rank();
    std::vector<std::int64_t> mine;  // rank r contributes r words (rank 0: 0)
    for (int i = 0; i < me; ++i) mine.push_back(10 * me + i);
    const FlatBuffer<std::int64_t> all =
        ctx.allgatherv<std::int64_t>({mine.data(), mine.size()});
    EXPECT_EQ(all.total(), 0u + 1u + 2u + 3u);
    for (int s = 0; s < ctx.size(); ++s) {
      ASSERT_EQ(all.slot(s).size(), static_cast<std::size_t>(s));
      for (int i = 0; i < s; ++i) EXPECT_EQ(all.slot(s)[i], 10 * s + i);
    }
  });
}

TEST(FlatExchange, BcastNonRootContributesNothing) {
  Comm comm(4);
  comm.run([](RankContext& ctx) {
    // Only the root supplies a payload; everyone receives the root's.
    const std::vector<std::int32_t> mine =
        ctx.rank() == 2 ? std::vector<std::int32_t>{5, 6, 7}
                        : std::vector<std::int32_t>{};
    const std::vector<std::int32_t> got = ctx.bcast(mine, 2);
    EXPECT_EQ(got, (std::vector<std::int32_t>{5, 6, 7}));
  });
}

TEST(FlatExchange, AllreduceStructFold) {
  struct MinMax {
    std::int64_t lo;
    std::int64_t hi;
  };
  Comm comm(5);
  comm.run([](RankContext& ctx) {
    const std::int64_t mine = 3 + 2 * ctx.rank();
    const MinMax got =
        ctx.allreduce<MinMax>({mine, mine}, [](MinMax a, MinMax b) {
          return MinMax{a.lo < b.lo ? a.lo : b.lo, a.hi > b.hi ? a.hi : b.hi};
        });
    EXPECT_EQ(got.lo, 3);
    EXPECT_EQ(got.hi, 3 + 2 * 4);
  });
}

TEST(FlatExchange, PoolReuseAcrossCollectiveRounds) {
  Comm comm(4);
  comm.run([](RankContext& ctx) {
    std::uint64_t allocs_after_warmup = 0;
    for (int round = 0; round < 10; ++round) {
      FlatBuffer<std::int64_t> out = ctx.make_buffer<std::int64_t>();
      for (int d = 0; d < ctx.size(); ++d) out.count(d) += 32;
      out.commit_counts();
      for (int d = 0; d < ctx.size(); ++d)
        for (int i = 0; i < 32; ++i) out.push(d, i);
      const FlatBuffer<std::int64_t> in = ctx.alltoallv(out);
      EXPECT_EQ(in.total(), 32u * 4u);
      if (round == 1) allocs_after_warmup = ctx.pool().stats().allocations;
    }
    // Steady state: rounds 2..9 allocate nothing new from this rank's pool.
    EXPECT_EQ(ctx.pool().stats().allocations, allocs_after_warmup);
  });
}

TEST(FlatExchange, ClearBufferPoolsFreesResidentBlocks) {
  Comm comm(2);
  comm.run([](RankContext& ctx) {
    FlatBuffer<std::int64_t> out = ctx.make_buffer<std::int64_t>();
    for (int d = 0; d < ctx.size(); ++d) out.count(d) += 64;
    out.commit_counts();
    for (int d = 0; d < ctx.size(); ++d)
      for (int i = 0; i < 64; ++i) out.push(d, i);
    ctx.alltoallv(out);
  });
  bool any_resident = false;
  for (int r = 0; r < 2; ++r)
    any_resident |= comm.rank_pool(r).free_blocks() > 0;
  EXPECT_TRUE(any_resident);
  comm.clear_buffer_pools();
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(comm.rank_pool(r).free_blocks(), 0u);
    EXPECT_EQ(comm.rank_pool(r).resident_bytes(), 0u);
  }
}

TEST(FlatExchange, ReceivedBufferCanBeResent) {
  // An incoming FlatBuffer is a fully-built (filled) buffer: echoing it
  // back through a second alltoallv must work. With 2 ranks, echoing the
  // received buffer returns each rank's original payload.
  Comm comm(2);
  comm.run([](RankContext& ctx) {
    const int me = ctx.rank();
    FlatBuffer<std::int32_t> out = ctx.make_buffer<std::int32_t>();
    for (int d = 0; d < 2; ++d) out.count(d) += 2;
    out.commit_counts();
    for (int d = 0; d < 2; ++d) {
      out.push(d, 100 * me + 10 * d);
      out.push(d, 100 * me + 10 * d + 1);
    }
    const FlatBuffer<std::int32_t> once = ctx.alltoallv(out);
    const FlatBuffer<std::int32_t> twice = ctx.alltoallv(once);
    for (int s = 0; s < 2; ++s) {
      ASSERT_EQ(twice.slot(s).size(), 2u);
      EXPECT_EQ(twice.slot(s)[0], 100 * me + 10 * s);
      EXPECT_EQ(twice.slot(s)[1], 100 * me + 10 * s + 1);
    }
  });
}

}  // namespace
}  // namespace hgr
