// The paper's premise, measured: connectivity-1 cut == actual bytes on the
// wire for the modeled communication, and migration plans move exactly the
// data the model priced.
#include "parallel/dist_app.hpp"

#include <gtest/gtest.h>

#include <mutex>

#include "core/repartition_model.hpp"
#include "core/repartitioner.hpp"
#include "hypergraph/convert.hpp"
#include "metrics/cut.hpp"
#include "partition/partitioner.hpp"
#include "test_util.hpp"
#include "workload/generators.hpp"

namespace hgr {
namespace {

using testing::random_hypergraph;

TEST(DistApp, HaloWordsEqualConnectivityCut) {
  const Hypergraph h = random_hypergraph(60, 120, 5, 3, 3);
  PartitionConfig cfg;
  cfg.num_parts = 4;
  const Partition p = partition_hypergraph(h, cfg);
  std::vector<std::int64_t> values(60);
  for (Index v = 0; v < 60; ++v) values[static_cast<std::size_t>(v)] = v + 1;

  // num_ranks == k: every part is a rank, like the paper's runs.
  Comm comm(4);
  std::mutex m;
  Weight total_words = 0;
  std::int64_t checksum = 0;
  comm.run([&](RankContext& ctx) {
    const HaloStats stats = halo_exchange(ctx, h, p, values);
    const Weight all_words = static_cast<Weight>(
        ctx.allreduce_sum<std::int64_t>(stats.words_sent));
    if (ctx.rank() == 0) {
      std::lock_guard lock(m);
      total_words = all_words;
      checksum = stats.reduction_checksum;
    }
  });
  // The headline identity: shipped words == connectivity-1 cut.
  EXPECT_EQ(total_words, connectivity_cut(h, p));
  // And the reduction checksum matches a serial recomputation.
  std::int64_t expect = 0;
  for (const NetId net : h.nets())
    for (const VertexId v : h.pins(net))
      expect += values[static_cast<std::size_t>(v.v)];
  EXPECT_EQ(checksum, expect);
}

TEST(DistApp, HaloCountsRuntimeBytesToo) {
  const Hypergraph h = random_hypergraph(40, 80, 4, 2, 5);
  PartitionConfig cfg;
  cfg.num_parts = 3;
  const Partition p = partition_hypergraph(h, cfg);
  std::vector<std::int64_t> values(40, 1);
  Comm comm(3);
  comm.run([&](RankContext& ctx) { halo_exchange(ctx, h, p, values); });
  if (connectivity_cut(h, p) > 0) {
    EXPECT_GT(comm.total_stats().bytes_sent, 0u);
  }
}

TEST(DistApp, MigrationMovesExactlyThePlannedData) {
  const Hypergraph h = random_hypergraph(50, 100, 4, 2, 7);
  PartitionConfig cfg;
  cfg.num_parts = 4;
  const Partition old_p = partition_hypergraph(h, cfg);
  RepartitionerConfig rcfg;
  rcfg.partition = cfg;
  rcfg.partition.seed = 99;
  rcfg.alpha = 1000;  // push for quality: guarantees some movement
  const RepartitionResult r = hypergraph_repartition(h, old_p, rcfg);

  Comm comm(4);
  std::mutex m;
  Weight moved = 0;
  comm.run([&](RankContext& ctx) {
    PayloadStore store = make_payloads(ctx, h, old_p);
    validate_payloads(ctx, h, old_p, store);
    const MigrateStats stats = migrate(ctx, r.plan, h, store);
    validate_payloads(ctx, h, r.partition, store);
    const Weight all = static_cast<Weight>(
        ctx.allreduce_sum<std::int64_t>(stats.words_moved));
    if (ctx.rank() == 0) {
      std::lock_guard lock(m);
      moved = all;
    }
  });
  // Sizes >= 1 (make_payloads pads zero-size blobs to one word); with the
  // random sizes here all are >= 1 already, so words == plan volume.
  EXPECT_EQ(moved, r.plan.total_volume);
}

TEST(DistApp, FullEpochLoopOverRuntime) {
  // distribute -> iterate -> repartition -> migrate -> iterate again.
  const Graph g = make_grid3d(6, 6, 6, false);
  Hypergraph h = graph_to_hypergraph(g);
  PartitionConfig cfg;
  cfg.num_parts = 4;
  const Partition p0 = partition_hypergraph(h, cfg);

  // The computation adapts: one region's weights grow.
  for (Index v = 0; v < h.num_vertices() / 4; ++v)
    h.set_vertex_weight(VertexId{v}, 5);
  RepartitionerConfig rcfg;
  rcfg.partition = cfg;
  rcfg.alpha = 10;
  const RepartitionResult r = hypergraph_repartition(h, p0, rcfg);

  std::vector<std::int64_t> values(
      static_cast<std::size_t>(h.num_vertices()), 2);
  Comm comm(4);
  comm.run([&](RankContext& ctx) {
    PayloadStore store = make_payloads(ctx, h, p0);
    halo_exchange(ctx, h, p0, values);
    migrate(ctx, r.plan, h, store);
    validate_payloads(ctx, h, r.partition, store);
    const HaloStats after = halo_exchange(ctx, h, r.partition, values);
    const Weight words = static_cast<Weight>(
        ctx.allreduce_sum<std::int64_t>(after.words_sent));
    EXPECT_EQ(words, connectivity_cut(h, r.partition));
  });
}

TEST(DistApp, FewerRanksThanPartsStillCorrect) {
  const Hypergraph h = random_hypergraph(40, 80, 4, 2, 9);
  PartitionConfig cfg;
  cfg.num_parts = 6;
  const Partition p = partition_hypergraph(h, cfg);
  std::vector<std::int64_t> values(40, 3);
  Comm comm(2);  // parts fold onto 2 ranks
  comm.run([&](RankContext& ctx) {
    PayloadStore store = make_payloads(ctx, h, p);
    validate_payloads(ctx, h, p, store);
    halo_exchange(ctx, h, p, values);  // internal routing asserts fire if wrong
  });
}

}  // namespace
}  // namespace hgr
