#include "parallel/comm_telemetry.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/mini_json.hpp"
#include "obs/trace.hpp"
#include "parallel/comm.hpp"

namespace hgr {
namespace {

using testjson::JsonArray;
using testjson::JsonObject;
using testjson::JsonParser;
using testjson::as_array;
using testjson::as_number;
using testjson::as_object;

constexpr std::size_t kI64 = sizeof(std::int64_t);
constexpr std::size_t kWords = 3;  // payload length of the ring exchange

// A ring exchange (each rank sends to (rank+1)%p) has a known traffic
// matrix: exactly one message of a known size in each (r, r+1) cell and
// zero everywhere else.
TEST(CommTelemetry, RingPatternProducesExpectedP2PMatrix) {
  constexpr int kRanks = 4;
  Comm comm(kRanks);
  comm.run([](RankContext& ctx) {
    const int next = (ctx.rank() + 1) % ctx.size();
    const int prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
    ctx.send<std::int64_t>(next, 1,
                           std::vector<std::int64_t>(kWords, ctx.rank()));
    const auto got = ctx.recv<std::int64_t>(prev, 1);
    EXPECT_EQ(got.size(), kWords);
  });
  const CommTelemetry t = comm.telemetry();
  ASSERT_EQ(t.num_ranks, kRanks);
  for (int src = 0; src < kRanks; ++src) {
    for (int dst = 0; dst < kRanks; ++dst) {
      const bool on_ring = dst == (src + 1) % kRanks;
      EXPECT_EQ(t.p2p_messages_at(src, dst), on_ring ? 1u : 0u)
          << "src=" << src << " dst=" << dst;
      EXPECT_EQ(t.p2p_bytes_at(src, dst), on_ring ? kWords * kI64 : 0u)
          << "src=" << src << " dst=" << dst;
    }
  }
  // Per-rank totals follow: every rank sent and received one message.
  std::uint64_t total_sent = 0;
  for (const RankCommTelemetry& r : t.ranks) {
    EXPECT_EQ(r.messages_sent, 1u);
    EXPECT_EQ(r.messages_recv, 1u);
    EXPECT_EQ(r.bytes_sent, kWords * kI64);
    EXPECT_EQ(r.bytes_recv, kWords * kI64);
    total_sent += r.bytes_sent;
  }
  EXPECT_EQ(total_sent, kRanks * kWords * kI64);
  // Uniform traffic: imbalance is exactly 1.
  EXPECT_DOUBLE_EQ(t.send_byte_imbalance(), 1.0);
}

TEST(CommTelemetry, CollectiveCallsCountedPerRank) {
  constexpr int kRanks = 3;
  Comm comm(kRanks);
  comm.run([](RankContext& ctx) {
    ctx.barrier();
    ctx.barrier();
    ctx.allgather(std::vector<std::int32_t>{ctx.rank()});
    ctx.allreduce_sum(std::int64_t{1});
  });
  const CommTelemetry t = comm.telemetry();
  for (const RankCommTelemetry& r : t.ranks) {
    EXPECT_EQ(
        r.collective_calls[static_cast<int>(CollectiveKind::kBarrier)], 2u);
    EXPECT_EQ(
        r.collective_calls[static_cast<int>(CollectiveKind::kAllgather)], 1u);
    EXPECT_EQ(
        r.collective_calls[static_cast<int>(CollectiveKind::kAllreduce)], 1u);
    EXPECT_EQ(r.collective_calls[static_cast<int>(CollectiveKind::kBcast)],
              0u);
  }
}

TEST(CommTelemetry, RecvWaitTimeIsMeasured) {
  Comm comm(2);
  comm.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      // Make rank 1 block in recv for a measurable while.
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
      ctx.send<std::int32_t>(1, 1, std::vector<std::int32_t>{7});
    } else {
      const auto m = ctx.recv<std::int32_t>(0, 1);
      EXPECT_EQ(m[0], 7);
    }
  });
  const CommTelemetry t = comm.telemetry();
  ASSERT_EQ(t.num_ranks, 2);
  // Generous margins: the sleep is 40ms, so >=15ms of measured wait is
  // safely attributable, and rank 0 never blocks in recv.
  EXPECT_GE(t.ranks[1].recv_wait_seconds, 0.015);
  EXPECT_EQ(t.ranks[0].recv_wait_seconds, 0.0);
  EXPECT_GT(t.run_seconds, 0.0);
  EXPECT_GT(t.max_wait_fraction(), 0.0);
  EXPECT_LE(t.max_wait_fraction(), 1.0 + 1e-9);
}

TEST(CommTelemetry, BarrierWaitChargedToEarlyArrivals) {
  Comm comm(2);
  comm.run([](RankContext& ctx) {
    if (ctx.rank() == 1)
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ctx.barrier();
  });
  const CommTelemetry t = comm.telemetry();
  // Rank 0 arrived ~30ms early and waited; rank 1 barely waited.
  EXPECT_GE(t.ranks[0].barrier_wait_seconds, 0.010);
  EXPECT_LT(t.ranks[1].barrier_wait_seconds,
            t.ranks[0].barrier_wait_seconds);
}

TEST(CommTelemetry, AccumulateSumsAndGrows) {
  CommTelemetry a;
  a.resize(2);
  a.ranks[0].bytes_sent = 10;
  a.p2p_bytes_at(0, 1) = 10;
  a.run_seconds = 1.0;
  a.runs = 1;

  CommTelemetry b;
  b.resize(3);
  b.ranks[0].bytes_sent = 5;
  b.ranks[2].bytes_sent = 7;
  b.p2p_bytes_at(0, 1) = 5;
  b.p2p_bytes_at(2, 0) = 7;
  b.run_seconds = 0.5;
  b.runs = 1;

  a.accumulate(b);
  ASSERT_EQ(a.num_ranks, 3);
  EXPECT_EQ(a.ranks[0].bytes_sent, 15u);
  EXPECT_EQ(a.ranks[2].bytes_sent, 7u);
  EXPECT_EQ(a.p2p_bytes_at(0, 1), 15u);
  EXPECT_EQ(a.p2p_bytes_at(2, 0), 7u);
  EXPECT_DOUBLE_EQ(a.run_seconds, 1.5);
  EXPECT_EQ(a.runs, 2u);
}

TEST(CommTelemetry, JsonRoundTripsWithWaitFractions) {
  constexpr int kRanks = 2;
  Comm comm(kRanks);
  comm.run([](RankContext& ctx) {
    if (ctx.rank() == 0)
      ctx.send<std::int64_t>(1, 1, std::vector<std::int64_t>{1, 2});
    else
      ctx.recv<std::int64_t>(0, 1);
    ctx.barrier();
  });
  CommTelemetry t = comm.telemetry();
  t.run_seconds = 2.0;  // deterministic denominator for wait_fraction
  const std::string json = t.to_json();
  JsonParser parser(json);
  const auto doc = parser.parse();
  const JsonObject& root = as_object(*doc);
  EXPECT_EQ(as_number(*root.at("num_ranks")), kRanks);
  const JsonArray& ranks = as_array(*root.at("ranks"));
  ASSERT_EQ(ranks.size(), static_cast<std::size_t>(kRanks));
  const JsonObject& r0 = as_object(*ranks[0]);
  EXPECT_EQ(as_number(*r0.at("bytes_sent")), 2.0 * kI64);
  EXPECT_EQ(as_number(*r0.at("messages_sent")), 1.0);
  ASSERT_TRUE(r0.count("wait_fraction"));
  const double f0 = as_number(*r0.at("wait_fraction"));
  EXPECT_GE(f0, 0.0);
  EXPECT_LE(f0, 1.0);
  // p2p matrices round-trip as arrays of rows.
  const JsonArray& p2p = as_array(*root.at("p2p_bytes"));
  ASSERT_EQ(p2p.size(), static_cast<std::size_t>(kRanks));
  EXPECT_EQ(as_number(*as_array(*p2p[0])[1]), 2.0 * kI64);
  EXPECT_EQ(as_number(*as_array(*p2p[1])[0]), 0.0);
}

TEST(CommTelemetry, RunPublishesCommSectionIntoRegistry) {
  obs::Registry reg;
  obs::ScopedRegistry scope(reg);
  Comm comm(2);
  comm.run([](RankContext& ctx) {
    if (ctx.rank() == 0)
      ctx.send<std::int32_t>(1, 1, std::vector<std::int32_t>{1});
    else
      ctx.recv<std::int32_t>(0, 1);
  });
  const auto sections = reg.sections();
  ASSERT_TRUE(sections.count("comm"));
  JsonParser parser(sections.at("comm"));
  const auto doc = parser.parse();
  const JsonObject& root = as_object(*doc);
  EXPECT_GE(as_number(*root.at("num_ranks")), 2.0);
  EXPECT_GE(as_number(*root.at("runs")), 1.0);
}

TEST(CommTelemetry, ImbalanceAndWaitFractionEdgeCases) {
  CommTelemetry t;
  t.resize(2);
  EXPECT_DOUBLE_EQ(t.send_byte_imbalance(), 0.0);  // nothing sent
  EXPECT_DOUBLE_EQ(t.max_wait_fraction(), 0.0);    // no run time
  t.ranks[0].bytes_sent = 300;
  t.ranks[1].bytes_sent = 100;
  // max/avg = 300/200.
  EXPECT_DOUBLE_EQ(t.send_byte_imbalance(), 1.5);
  t.run_seconds = 2.0;
  t.ranks[1].recv_wait_seconds = 0.5;
  t.ranks[1].barrier_wait_seconds = 0.5;
  EXPECT_DOUBLE_EQ(t.max_wait_fraction(), 0.5);
}

}  // namespace
}  // namespace hgr
