#include "parallel/par_partitioner.hpp"

#include <gtest/gtest.h>

#include "core/repartition_model.hpp"
#include "hypergraph/convert.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "metrics/migration.hpp"
#include "partition/partitioner.hpp"
#include "test_util.hpp"
#include "workload/generators.hpp"

namespace hgr {
namespace {

using testing::random_hypergraph;

class ParPartitionerSweep : public ::testing::TestWithParam<int> {};

TEST_P(ParPartitionerSweep, ValidBalancedAcrossRankCounts) {
  const int ranks = GetParam();
  const Hypergraph h = random_hypergraph(150, 300, 5, 3, 3);
  ParallelPartitionConfig cfg;
  cfg.num_ranks = ranks;
  cfg.base.num_parts = 4;
  cfg.base.epsilon = 0.1;
  const ParallelPartitionResult r = parallel_partition_hypergraph(h, cfg);
  r.partition.validate();
  EXPECT_EQ(r.partition.k, 4);
  EXPECT_LE(imbalance(h.vertex_weights(), r.partition), 0.35);
  EXPECT_GT(r.levels, 0);
  if (ranks > 1) {
    EXPECT_GT(r.traffic.bytes_sent, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ParPartitionerSweep,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(ParPartitioner, HonorsFixedVertices) {
  Hypergraph h = random_hypergraph(100, 200, 4, 2, 7);
  std::vector<PartId> fixed(100, kNoPart);
  Rng rng(5);
  for (auto& f : fixed)
    if (rng.chance(0.25)) f = static_cast<PartId>(rng.below(4));
  h.set_fixed_parts(fixed);
  ParallelPartitionConfig cfg;
  cfg.num_ranks = 3;
  cfg.base.num_parts = 4;
  const ParallelPartitionResult r = parallel_partition_hypergraph(h, cfg);
  for (const VertexId v : r.partition.vertices()) {
    const PartId f = h.fixed_part(v);
    if (f != kNoPart) {
      EXPECT_EQ(r.partition[v], f);
    }
  }
}

TEST(ParPartitioner, QualityWithinFactorOfSerial) {
  const Graph g = make_grid3d(8, 8, 8, false);
  const Hypergraph h = graph_to_hypergraph(g);
  ParallelPartitionConfig pcfg;
  pcfg.num_ranks = 4;
  pcfg.base.num_parts = 4;
  const ParallelPartitionResult pr = parallel_partition_hypergraph(h, pcfg);

  PartitionConfig scfg;
  scfg.num_parts = 4;
  const Partition sp = partition_hypergraph(h, scfg);
  EXPECT_LE(connectivity_cut(h, pr.partition),
            3 * connectivity_cut(h, sp) + 50);
}

TEST(ParPartitioner, ParallelRepartitionDecodesAndMigratesLittle) {
  const Graph g = make_grid3d(6, 6, 6, false);
  const Hypergraph h = graph_to_hypergraph(g);
  PartitionConfig scfg;
  scfg.num_parts = 4;
  const Partition old_p = partition_hypergraph(h, scfg);

  ParallelPartitionConfig cfg;
  cfg.num_ranks = 2;
  cfg.base.num_parts = 4;
  const ParallelPartitionResult r =
      parallel_hypergraph_repartition(h, old_p, /*alpha=*/1, cfg);
  EXPECT_EQ(r.partition.num_vertices(), h.num_vertices());
  r.partition.validate();
  // alpha=1 on an unchanged problem: the augmented model should pin most
  // vertices to their old parts.
  EXPECT_LT(migration_volume(h.vertex_sizes(), old_p, r.partition),
            h.num_vertices() / 4);
}

TEST(ParPartitioner, SinglePartShortCircuit) {
  const Hypergraph h = random_hypergraph(30, 50, 4, 2, 9);
  ParallelPartitionConfig cfg;
  cfg.num_ranks = 2;
  cfg.base.num_parts = 1;
  const ParallelPartitionResult r = parallel_partition_hypergraph(h, cfg);
  for (const VertexId v : r.partition.vertices())
    EXPECT_EQ(r.partition[v], PartId{0});
}

}  // namespace
}  // namespace hgr
