#include "parallel/comm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>

namespace hgr {
namespace {

TEST(Comm, SingleRankRuns) {
  Comm comm(1);
  std::atomic<int> ran{0};
  comm.run([&](RankContext& ctx) {
    EXPECT_EQ(ctx.rank(), 0);
    EXPECT_EQ(ctx.size(), 1);
    ++ran;
  });
  EXPECT_EQ(ran.load(), 1);
}

TEST(Comm, AllRanksLaunch) {
  Comm comm(4);
  std::atomic<int> mask{0};
  comm.run([&](RankContext& ctx) { mask |= 1 << ctx.rank(); });
  EXPECT_EQ(mask.load(), 0b1111);
}

TEST(Comm, PointToPointRoundTrip) {
  Comm comm(2);
  comm.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      const std::vector<std::int64_t> payload{1, 2, 3};
      ctx.send<std::int64_t>(1, 7, payload);
      const auto reply = ctx.recv<std::int64_t>(1, 8);
      EXPECT_EQ(reply, (std::vector<std::int64_t>{6}));
    } else {
      const auto msg = ctx.recv<std::int64_t>(0, 7);
      EXPECT_EQ(msg.size(), 3u);
      const std::vector<std::int64_t> reply{
          std::accumulate(msg.begin(), msg.end(), std::int64_t{0})};
      ctx.send<std::int64_t>(0, 8, reply);
    }
  });
  EXPECT_GT(comm.total_stats().bytes_sent, 0u);
}

TEST(Comm, MessagesWithSameTagArriveInOrder) {
  Comm comm(2);
  comm.run([](RankContext& ctx) {
    if (ctx.rank() == 0) {
      for (std::int32_t i = 0; i < 10; ++i)
        ctx.send<std::int32_t>(1, 1, std::vector<std::int32_t>{i});
    } else {
      for (std::int32_t i = 0; i < 10; ++i) {
        const auto m = ctx.recv<std::int32_t>(0, 1);
        EXPECT_EQ(m[0], i);
      }
    }
  });
}

TEST(Comm, BarrierSynchronizes) {
  Comm comm(3);
  std::atomic<int> phase1{0};
  comm.run([&](RankContext& ctx) {
    ++phase1;
    ctx.barrier();
    EXPECT_EQ(phase1.load(), 3);  // nobody passes before everyone arrives
  });
}

TEST(Comm, AllgatherCollectsInRankOrder) {
  Comm comm(4);
  comm.run([](RankContext& ctx) {
    const std::vector<std::int32_t> mine{ctx.rank(), ctx.rank() * 10};
    const auto all = ctx.allgather(mine);
    ASSERT_EQ(all.size(), 4u);
    for (int r = 0; r < 4; ++r) {
      ASSERT_EQ(all[static_cast<std::size_t>(r)].size(), 2u);
      EXPECT_EQ(all[static_cast<std::size_t>(r)][0], r);
      EXPECT_EQ(all[static_cast<std::size_t>(r)][1], r * 10);
    }
  });
}

TEST(Comm, AllgatherHandlesEmptyContributions) {
  Comm comm(3);
  comm.run([](RankContext& ctx) {
    const std::vector<std::int32_t> mine =
        ctx.rank() == 1 ? std::vector<std::int32_t>{5}
                        : std::vector<std::int32_t>{};
    const auto all = ctx.allgather(mine);
    EXPECT_TRUE(all[0].empty());
    EXPECT_EQ(all[1], (std::vector<std::int32_t>{5}));
    EXPECT_TRUE(all[2].empty());
  });
}

TEST(Comm, Allreduce) {
  Comm comm(4);
  comm.run([](RankContext& ctx) {
    EXPECT_EQ(ctx.allreduce_sum<std::int64_t>(ctx.rank() + 1), 10);
    EXPECT_EQ(ctx.allreduce_max<std::int64_t>(ctx.rank()), 3);
    EXPECT_EQ(ctx.allreduce_min<std::int64_t>(ctx.rank()), 0);
  });
}

TEST(Comm, Bcast) {
  Comm comm(3);
  comm.run([](RankContext& ctx) {
    const std::vector<std::int32_t> mine =
        ctx.rank() == 2 ? std::vector<std::int32_t>{42, 43}
                        : std::vector<std::int32_t>{};
    const auto got = ctx.bcast(mine, 2);
    EXPECT_EQ(got, (std::vector<std::int32_t>{42, 43}));
  });
}

TEST(Comm, Alltoallv) {
  Comm comm(3);
  comm.run([](RankContext& ctx) {
    std::vector<std::vector<std::int32_t>> outgoing(3);
    for (int d = 0; d < 3; ++d)
      outgoing[static_cast<std::size_t>(d)] = {ctx.rank() * 10 + d};
    const auto incoming = ctx.alltoallv(outgoing);
    ASSERT_EQ(incoming.size(), 3u);
    for (int s = 0; s < 3; ++s)
      EXPECT_EQ(incoming[static_cast<std::size_t>(s)],
                (std::vector<std::int32_t>{s * 10 + ctx.rank()}));
  });
}

TEST(Comm, TrafficCountersExcludeSelfSends) {
  Comm comm(2);
  comm.run([](RankContext& ctx) {
    ctx.send<std::int32_t>(ctx.rank(), 1, std::vector<std::int32_t>{1});
    const auto m = ctx.recv<std::int32_t>(ctx.rank(), 1);
    EXPECT_EQ(m[0], 1);
    ctx.barrier();
  });
  EXPECT_EQ(comm.total_stats().bytes_sent, 0u);
  EXPECT_GT(comm.total_stats().collectives, 0u);
}

TEST(Comm, ReusableAcrossRuns) {
  Comm comm(2);
  for (int run = 0; run < 3; ++run) {
    comm.run([run](RankContext& ctx) {
      const auto sum = ctx.allreduce_sum<std::int32_t>(run);
      EXPECT_EQ(sum, 2 * run);
    });
  }
}

// A rank that throws while its peers sit in a barrier must not
// std::terminate or deadlock: the peers are woken, all threads joined, and
// the original exception surfaces from run().
TEST(Comm, ExceptionPropagatesWhilePeersBlockInBarrier) {
  Comm comm(3);
  try {
    comm.run([](RankContext& ctx) {
      if (ctx.rank() == 1) throw std::runtime_error("rank 1 boom");
      ctx.barrier();  // would wait forever without abort wake-up
    });
    FAIL() << "run() should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 1 boom");
  }
}

TEST(Comm, ExceptionPropagatesWhilePeersBlockInRecv) {
  Comm comm(2);
  try {
    comm.run([](RankContext& ctx) {
      if (ctx.rank() == 0) throw std::runtime_error("sender died");
      const auto m = ctx.recv<std::int32_t>(0, 3);  // never sent
      (void)m;
    });
    FAIL() << "run() should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "sender died");
  }
}

TEST(Comm, ExceptionPropagatesWhilePeersBlockInCollective) {
  Comm comm(4);
  EXPECT_THROW(comm.run([](RankContext& ctx) {
                 if (ctx.rank() == 2) throw std::runtime_error("boom");
                 ctx.allreduce_sum<std::int64_t>(1);
               }),
               std::runtime_error);
}

TEST(Comm, LowestRankExceptionWins) {
  Comm comm(4);
  try {
    comm.run([](RankContext& ctx) {
      throw std::runtime_error("rank " + std::to_string(ctx.rank()));
    });
    FAIL() << "run() should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 0");
  }
}

TEST(Comm, ReusableAfterFailedRun) {
  Comm comm(3);
  EXPECT_THROW(comm.run([](RankContext& ctx) {
                 if (ctx.rank() == 0) throw std::runtime_error("x");
                 ctx.barrier();
               }),
               std::runtime_error);
  // The next run starts from a clean slate: barriers, mailboxes, and the
  // abort flag are all reset.
  comm.run([](RankContext& ctx) {
    EXPECT_EQ(ctx.allreduce_sum<std::int32_t>(1), 3);
    ctx.barrier();
    std::vector<std::vector<std::int32_t>> outgoing(3);
    for (int d = 0; d < 3; ++d)
      outgoing[static_cast<std::size_t>(d)] = {ctx.rank()};
    const auto incoming = ctx.alltoallv(outgoing);
    for (int s = 0; s < 3; ++s)
      EXPECT_EQ(incoming[static_cast<std::size_t>(s)],
                (std::vector<std::int32_t>{s}));
  });
}

TEST(CommDeathTest, UserSendMustNotUseReservedAlltoallTag) {
  EXPECT_DEATH(
      {
        Comm comm(1);
        comm.run([](RankContext& ctx) {
          ctx.send<std::int32_t>(0, kAlltoallTag,
                                 std::vector<std::int32_t>{1});
        });
      },
      "reserved alltoall tag");
}

TEST(CommDeathTest, UserRecvMustNotUseReservedAlltoallTag) {
  EXPECT_DEATH(
      {
        Comm comm(1);
        comm.run([](RankContext& ctx) {
          const auto m = ctx.recv<std::int32_t>(0, kAlltoallTag);
          (void)m;
        });
      },
      "reserved alltoall tag");
}

}  // namespace
}  // namespace hgr
