// Deterministic fault injection for the in-process comm runtime.
//
// A FaultPlan is a seed-driven, reproducible chaos schedule: a list of
// rules, each matching a (rank, blocking-point) pair and firing on a
// deterministic subset of the matching calls. The comm runtime consults
// the plan at every collective boundary, send, and recv; a firing rule
// injects one of three failure modes the real cluster exhibits:
//
//   stall   the rank blocks until the run is aborted — the driver for the
//           deadlock watchdog (docs/CHECKING.md). Requires a nonzero
//           watchdog timeout, or the run genuinely hangs.
//   delay   the rank sleeps delay_ms before proceeding (a slow link or an
//           overloaded node); the collective still completes correctly.
//   throw   the rank throws FaultInjected mid-collective, exercising the
//           abort path: peers observe CommAborted and Comm::run rethrows
//           FaultInjected to the caller.
//
// Determinism: rules fire by per-(rule, rank) match counters plus an
// optional probability coin derived from (seed, rule, rank, match index),
// never from wall time — the same plan against the same program faults at
// the same points on every run. Counters persist across Comm::run calls
// (and across Comm instances sharing the plan), so a rule can target "the
// Nth alltoallv of the whole epoch sequence". See docs/ROBUSTNESS.md for
// the plan syntax and the epoch driver's degradation policy on top.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace hgr::fault {

enum class FaultKind { kStall, kDelay, kThrow };

/// Instrumented blocking points: one per comm-runtime collective, the
/// point-to-point paths, and the serve request boundary (hgr_serve checks
/// kServe before dispatching each batch, so chaos tests can stall, delay,
/// or fail requests without touching the partitioning pipeline). kAny in a
/// rule matches all of them.
enum class FaultSite {
  kBarrier,
  kAllgather,
  kAllreduce,
  kBcast,
  kAlltoallv,
  kSend,
  kRecv,
  kServe,
  kAny,
};

std::string to_string(FaultKind kind);
std::string to_string(FaultSite site);

/// Thrown by a rank when a kThrow rule fires. Derives from runtime_error
/// so it flows through the comm abort machinery like any application
/// failure; the epoch driver's degradation policy treats it as retryable.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& what) : std::runtime_error(what) {}
};

struct FaultRule {
  FaultKind kind = FaultKind::kThrow;
  FaultSite site = FaultSite::kAny;
  /// Rank the rule applies to; -1 matches every rank.
  int rank = -1;
  /// Fire starting at the `after`-th matching call (1-based).
  std::uint64_t after = 1;
  /// Number of consecutive matching calls that fire; 0 = every one from
  /// `after` on.
  std::uint64_t count = 1;
  /// Sleep length for kDelay rules.
  double delay_ms = 1.0;
  /// Fire each selected call only with this probability (seed-driven
  /// deterministic coin); 1.0 = always.
  double probability = 1.0;
};

/// What the runtime should do at an instrumented point.
struct FaultDecision {
  FaultKind kind = FaultKind::kThrow;
  double delay_ms = 0.0;
  std::string description;  // "throw@alltoallv rank=1 match=3" — what()
                            // text and log line
};

class FaultPlan {
 public:
  /// Highest rank id a plan can track counters for (in-process runs are
  /// well below this).
  static constexpr int kMaxRanks = 256;

  FaultPlan(std::uint64_t seed, std::vector<FaultRule> rules);

  /// Parse the CLI/spec syntax (docs/ROBUSTNESS.md):
  ///
  ///   [seed=S;]<kind>@<site>[:key=val[,key=val]...][;<rule>...]
  ///
  /// kind: stall | delay | throw; site: barrier | allgather | allreduce |
  /// bcast | alltoallv | send | recv | serve | any. Keys: rank, after,
  /// count, ms, prob. Example: "seed=7;throw@alltoallv:rank=1,after=3;
  /// delay@send:ms=2,count=0,prob=0.25". Throws std::invalid_argument on
  /// malformed specs.
  static FaultPlan parse(const std::string& spec);

  /// Consulted by the comm runtime at an instrumented point. Thread-safe:
  /// every (rule, rank) match counter is an atomic bumped only by rank's
  /// own thread. Returns the first firing rule's decision, or nullopt.
  std::optional<FaultDecision> check(FaultSite site, int rank) const;

  /// Zero every match counter (tests replaying a plan from the start).
  void reset() const;

  const std::vector<FaultRule>& rules() const { return rules_; }
  std::uint64_t seed() const { return seed_; }
  std::string to_string() const;

 private:
  std::uint64_t seed_;
  std::vector<FaultRule> rules_;
  /// Match counters, rules_.size() x kMaxRanks, mutable so a
  /// shared_ptr<const FaultPlan> can be consulted from rank threads: the
  /// counters are bookkeeping, not plan identity.
  mutable std::unique_ptr<std::atomic<std::uint64_t>[]> hits_;
};

}  // namespace hgr::fault
