#include "fault/fault_plan.hpp"

#include <cstdio>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace hgr::fault {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kThrow:
      return "throw";
  }
  return "unknown";
}

std::string to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kBarrier:
      return "barrier";
    case FaultSite::kAllgather:
      return "allgather";
    case FaultSite::kAllreduce:
      return "allreduce";
    case FaultSite::kBcast:
      return "bcast";
    case FaultSite::kAlltoallv:
      return "alltoallv";
    case FaultSite::kSend:
      return "send";
    case FaultSite::kRecv:
      return "recv";
    case FaultSite::kServe:
      return "serve";
    case FaultSite::kAny:
      return "any";
  }
  return "unknown";
}

FaultPlan::FaultPlan(std::uint64_t seed, std::vector<FaultRule> rules)
    : seed_(seed), rules_(std::move(rules)) {
  for (const FaultRule& r : rules_) {
    HGR_ASSERT_MSG(r.after >= 1, "fault rule: after is 1-based");
    HGR_ASSERT_MSG(r.rank >= -1 && r.rank < kMaxRanks,
                   "fault rule: rank out of range");
    HGR_ASSERT_MSG(r.probability >= 0.0 && r.probability <= 1.0,
                   "fault rule: probability must be in [0, 1]");
    HGR_ASSERT_MSG(r.delay_ms >= 0.0, "fault rule: negative delay");
  }
  hits_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      rules_.size() * static_cast<std::size_t>(kMaxRanks));
  reset();
}

void FaultPlan::reset() const {
  const std::size_t n = rules_.size() * static_cast<std::size_t>(kMaxRanks);
  for (std::size_t i = 0; i < n; ++i)
    hits_[i].store(0, std::memory_order_relaxed);
}

std::optional<FaultDecision> FaultPlan::check(FaultSite site,
                                              int rank) const {
  HGR_ASSERT(rank >= 0 && rank < kMaxRanks);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& r = rules_[i];
    if (r.rank >= 0 && r.rank != rank) continue;
    if (r.site != FaultSite::kAny && r.site != site) continue;
    std::atomic<std::uint64_t>& cell =
        hits_[i * static_cast<std::size_t>(kMaxRanks) +
              static_cast<std::size_t>(rank)];
    const std::uint64_t match =
        cell.fetch_add(1, std::memory_order_relaxed) + 1;
    if (match < r.after) continue;
    if (r.count != 0 && match >= r.after + r.count) continue;
    if (r.probability < 1.0) {
      // Deterministic coin: a pure function of (seed, rule, rank, match).
      std::uint64_t stream = derive_seed(
          seed_, (i << 32) ^ static_cast<std::uint64_t>(rank));
      Rng coin(derive_seed(stream, match));
      if (!coin.chance(r.probability)) continue;
    }
    char text[96];
    std::snprintf(text, sizeof(text), "%s@%s rank=%d match=%llu",
                  fault::to_string(r.kind).c_str(),
                  fault::to_string(site).c_str(), rank,
                  static_cast<unsigned long long>(match));
    FaultDecision d;
    d.kind = r.kind;
    d.delay_ms = r.delay_ms;
    d.description = std::string("injected fault: ") + text;
    return d;
  }
  return std::nullopt;
}

namespace {

[[noreturn]] void parse_error(const std::string& spec,
                              const std::string& why) {
  throw std::invalid_argument("bad fault plan \"" + spec + "\": " + why);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

bool parse_kind(const std::string& name, FaultKind& out) {
  for (const FaultKind k :
       {FaultKind::kStall, FaultKind::kDelay, FaultKind::kThrow})
    if (name == to_string(k)) {
      out = k;
      return true;
    }
  return false;
}

bool parse_site(const std::string& name, FaultSite& out) {
  for (const FaultSite s :
       {FaultSite::kBarrier, FaultSite::kAllgather, FaultSite::kAllreduce,
        FaultSite::kBcast, FaultSite::kAlltoallv, FaultSite::kSend,
        FaultSite::kRecv, FaultSite::kServe, FaultSite::kAny})
    if (name == to_string(s)) {
      out = s;
      return true;
    }
  return false;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  std::uint64_t seed = 1;
  std::vector<FaultRule> rules;
  for (const std::string& element : split(spec, ';')) {
    if (element.empty()) continue;
    if (element.compare(0, 5, "seed=") == 0) {
      try {
        seed = std::stoull(element.substr(5));
      } catch (const std::exception&) {
        parse_error(spec, "bad seed \"" + element + "\"");
      }
      continue;
    }
    const std::size_t at = element.find('@');
    if (at == std::string::npos)
      parse_error(spec, "rule \"" + element + "\" lacks kind@site");
    FaultRule rule;
    if (!parse_kind(element.substr(0, at), rule.kind))
      parse_error(spec, "unknown kind \"" + element.substr(0, at) +
                            "\" (stall|delay|throw)");
    const std::size_t colon = element.find(':', at);
    const std::string site_name =
        element.substr(at + 1, (colon == std::string::npos
                                    ? element.size()
                                    : colon) - (at + 1));
    if (!parse_site(site_name, rule.site))
      parse_error(spec, "unknown site \"" + site_name + "\"");
    if (colon != std::string::npos) {
      for (const std::string& kv : split(element.substr(colon + 1), ',')) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos)
          parse_error(spec, "option \"" + kv + "\" lacks key=value");
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        if (key != "rank" && key != "after" && key != "count" &&
            key != "ms" && key != "prob")
          parse_error(spec,
                      "unknown option \"" + key + "\" (rank|after|count|ms|prob)");
        try {
          if (key == "rank")
            rule.rank = std::stoi(value);
          else if (key == "after")
            rule.after = std::stoull(value);
          else if (key == "count")
            rule.count = std::stoull(value);
          else if (key == "ms")
            rule.delay_ms = std::stod(value);
          else
            rule.probability = std::stod(value);
        } catch (const std::exception&) {
          parse_error(spec, "bad value in \"" + kv + "\"");
        }
      }
    }
    if (rule.after < 1)
      parse_error(spec, "after is 1-based (got 0)");
    if (rule.rank < -1 || rule.rank >= kMaxRanks)
      parse_error(spec, "rank out of range in \"" + element + "\"");
    if (rule.probability < 0.0 || rule.probability > 1.0)
      parse_error(spec, "prob must be in [0, 1]");
    if (rule.delay_ms < 0.0) parse_error(spec, "ms must be >= 0");
    rules.push_back(rule);
  }
  if (rules.empty()) parse_error(spec, "no rules");
  return FaultPlan(seed, std::move(rules));
}

std::string FaultPlan::to_string() const {
  std::string out = "seed=" + std::to_string(seed_);
  for (const FaultRule& r : rules_) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  ";%s@%s:rank=%d,after=%llu,count=%llu,ms=%g,prob=%g",
                  fault::to_string(r.kind).c_str(),
                  fault::to_string(r.site).c_str(), r.rank,
                  static_cast<unsigned long long>(r.after),
                  static_cast<unsigned long long>(r.count), r.delay_ms,
                  r.probability);
    out += buf;
  }
  return out;
}

}  // namespace hgr::fault
