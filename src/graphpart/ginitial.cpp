#include "graphpart/ginitial.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"
#include "common/indexed_heap.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"

namespace hgr {

Partition greedy_graph_growing(const Graph& g, const PartitionConfig& cfg,
                               Rng& rng) {
  const Index n = g.num_vertices();
  const Index k = cfg.num_parts;
  Partition p(k, n, kNoPart);
  IdVector<PartId, Weight> part_w(k, 0);
  const double avg =
      static_cast<double>(g.total_vertex_weight()) / static_cast<double>(k);
  const auto max_w = static_cast<Weight>(avg * (1.0 + cfg.epsilon));

  // One frontier heap per part, keyed by connection strength to the part.
  std::vector<IndexedMaxHeap> frontier;
  frontier.reserve(static_cast<std::size_t>(k));
  for (Index q = 0; q < k; ++q) frontier.emplace_back(n);

  std::vector<Index> seeds = random_permutation(n, rng);
  std::size_t seed_cursor = 0;

  auto claim = [&](Index v, PartId q) {
    p[VertexId{v}] = q;
    part_w[q] += g.vertex_weight(v);
    const auto nbrs = g.neighbors(v);
    const auto ws = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Index u = nbrs[i];
      if (p[VertexId{u}] != kNoPart) continue;
      auto& f = frontier[static_cast<std::size_t>(q.v)];
      if (f.contains(u)) {
        f.adjust(u, f.key(u) + ws[i]);
      } else {
        f.insert(u, ws[i]);
      }
    }
  };

  // Seed each part with a random unassigned vertex.
  for (const PartId q : part_range(k)) {
    while (seed_cursor < seeds.size() &&
           p[VertexId{seeds[seed_cursor]}] != kNoPart)
      ++seed_cursor;
    if (seed_cursor < seeds.size()) claim(seeds[seed_cursor++], q);
  }

  // Round-robin growth, lightest part first.
  Index unassigned = 0;
  for (Index v = 0; v < n; ++v)
    if (p[VertexId{v}] == kNoPart) ++unassigned;
  while (unassigned > 0) {
    // Pick the lightest part that still has a frontier; if every frontier
    // is empty (disconnected), reseed the lightest part.
    PartId pick = kNoPart;
    for (const PartId q : part_range(k)) {
      if (frontier[static_cast<std::size_t>(q.v)].empty()) continue;
      if (pick == kNoPart || part_w[q] < part_w[pick]) pick = q;
    }
    if (pick == kNoPart) {
      PartId lightest{0};
      for (const PartId q : part_range(k))
        if (part_w[q] < part_w[lightest]) lightest = q;
      while (seed_cursor < seeds.size() &&
             p[VertexId{seeds[seed_cursor]}] != kNoPart)
        ++seed_cursor;
      if (seed_cursor >= seeds.size()) break;  // should not happen
      claim(seeds[seed_cursor++], lightest);
      --unassigned;
      continue;
    }
    auto& f = frontier[static_cast<std::size_t>(pick.v)];
    const Index v = f.pop();
    if (p[VertexId{v}] != kNoPart) continue;  // claimed meanwhile
    if (part_w[pick] + g.vertex_weight(v) > max_w && part_w[pick] > 0) {
      // Part is full; drop this frontier entry (vertex stays available to
      // other parts).
      continue;
    }
    claim(v, pick);
    --unassigned;
  }

  // Safety: anything still unassigned goes to the lightest part.
  for (Index v = 0; v < n; ++v) {
    if (p[VertexId{v}] == kNoPart) {
      PartId lightest{0};
      for (const PartId q : part_range(k))
        if (part_w[q] < part_w[lightest]) lightest = q;
      claim(v, lightest);
    }
  }
  return p;
}

Partition initial_graph_partition(const Graph& g, const PartitionConfig& cfg,
                                  Rng& rng) {
  Partition best;
  double best_imb = std::numeric_limits<double>::max();
  Weight best_cut = std::numeric_limits<Weight>::max();
  for (Index t = 0; t < std::max<Index>(1, cfg.num_initial_trials); ++t) {
    Partition p = greedy_graph_growing(g, cfg, rng);
    const double imb = imbalance(g.vertex_weights(), p);
    const Weight cut = edge_cut(g, p);
    const bool feasible = imb <= cfg.epsilon + 1e-9;
    const bool best_feasible = best_imb <= cfg.epsilon + 1e-9;
    const bool better =
        best.assignment.empty() ||
        (feasible && !best_feasible) ||
        (feasible == best_feasible &&
         (feasible ? cut < best_cut : imb < best_imb));
    if (better) {
      best = std::move(p);
      best_imb = imb;
      best_cut = cut;
    }
  }
  return best;
}

}  // namespace hgr
