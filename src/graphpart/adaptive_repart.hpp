// Adaptive graph repartitioning: the ParMETIS AdaptiveRepart analog.
//
// Implements the multilevel unified repartitioning algorithm of Schloegel,
// Karypis & Kumar (Supercomputing 2000), the scheme behind ParMETIS 3.x's
// AdaptiveRepart option that the paper benchmarks against:
//   - coarsening with matching restricted to same-old-part pairs, so the
//     old partition projects exactly through the hierarchy;
//   - the old partition (rebalanced) as the coarse initial solution;
//   - refinement of the composite objective alpha * edgecut + migration,
//     where alpha is the paper's iterations-per-epoch parameter ("Our
//     alpha corresponds to the ITR parameter in ParMETIS").
#pragma once

#include "hypergraph/graph.hpp"
#include "metrics/partition.hpp"
#include "partition/config.hpp"

namespace hgr {

struct AdaptiveRepartConfig {
  PartitionConfig base;
  /// Iterations per epoch: relative weight of communication vs migration.
  Weight alpha = 100;
};

/// Repartition g given the old assignment. old_p.k must equal
/// base.num_parts. Returns the new partition (same k).
Partition adaptive_repartition(const Graph& g, const Partition& old_p,
                               const AdaptiveRepartConfig& cfg);

}  // namespace hgr
