// Partition-from-scratch followed by part-label remapping.
//
// The paper's two scratch baselines ignore the old distribution while
// partitioning, then relabel parts to salvage locality: "For the scratch
// methods, we used a maximal matching heuristic in Zoltan to map partition
// numbers to reduce migration cost." Wrappers for both the graph
// (ParMETIS-scratch) and hypergraph (Zoltan-scratch) paths.
#pragma once

#include "hypergraph/graph.hpp"
#include "hypergraph/hypergraph.hpp"
#include "metrics/partition.hpp"
#include "partition/config.hpp"

namespace hgr {

/// partition_graph from scratch, then remap labels against old_p.
Partition graph_scratch_remap(const Graph& g, const Partition& old_p,
                              const PartitionConfig& cfg);

/// partition_hypergraph from scratch, then remap labels against old_p.
Partition hypergraph_scratch_remap(const Hypergraph& h, const Partition& old_p,
                                   const PartitionConfig& cfg);

}  // namespace hgr
