#include "graphpart/gpartitioner.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "graphpart/gcoarsen.hpp"
#include "graphpart/ginitial.hpp"
#include "graphpart/grefine.hpp"

namespace hgr {

Partition partition_graph(const Graph& g, const PartitionConfig& cfg) {
  HGR_ASSERT(cfg.num_parts >= 1);
  if (cfg.num_parts == 1 || g.num_vertices() == 0)
    return Partition(std::max<Index>(1, cfg.num_parts), g.num_vertices());

  Rng rng(cfg.seed);
  const Index stop_size = std::max<Index>(cfg.coarsen_to, 4 * cfg.num_parts);
  const Weight max_vertex_weight = std::max<Weight>(
      1, static_cast<Weight>(cfg.max_coarse_weight_factor *
                             static_cast<double>(g.total_vertex_weight()) /
                             std::max<Index>(1, stop_size)));

  std::vector<GraphCoarseLevel> levels;
  const Graph* current = &g;
  for (Index level = 0; level < cfg.max_levels; ++level) {
    if (current->num_vertices() <= stop_size) break;
    const std::vector<Index> match =
        heavy_edge_matching(*current, max_vertex_weight, rng);
    GraphCoarseLevel next = contract_graph(*current, match);
    const double reduction =
        1.0 - static_cast<double>(next.coarse.num_vertices()) /
                  static_cast<double>(current->num_vertices());
    if (reduction < cfg.min_coarsen_reduction) break;
    levels.push_back(std::move(next));
    current = &levels.back().coarse;
  }

  Partition p = initial_graph_partition(*current, cfg, rng);

  GRefineOptions opt;
  opt.epsilon = cfg.epsilon;
  opt.max_passes = cfg.max_refine_passes;
  graph_kway_refine(*current, p, opt, rng);

  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    const Graph& finer =
        (std::next(it) == levels.rend()) ? g : std::next(it)->coarse;
    Partition fine_p(cfg.num_parts, finer.num_vertices());
    for (Index v = 0; v < finer.num_vertices(); ++v)
      fine_p[VertexId{v}] =
          p[VertexId{it->fine_to_coarse[static_cast<std::size_t>(v)]}];
    p = std::move(fine_p);
    graph_kway_refine(finer, p, opt, rng);
  }
  p.validate();
  return p;
}

}  // namespace hgr
