// k-way greedy refinement for the graph baseline.
//
// Optimizes either plain edge cut (the Partkway analog) or, when an old
// partition is supplied, the composite objective of Schloegel-Karypis-Kumar
// unified repartitioning:  alpha * edge_cut + migration_volume  — the
// algorithm behind ParMETIS AdaptiveRepart (alpha plays the role of the
// ITR parameter; the paper notes "Our alpha corresponds to the ITR
// parameter in ParMETIS").
//
// Includes an explicit rebalance phase: adaptive runs start from the old
// partition, which after dynamic changes (especially the AMR
// weight-scaling workload) violates the balance constraint and must first
// be repaired by forced moves off overweight parts.
#pragma once

#include "common/rng.hpp"
#include "hypergraph/graph.hpp"
#include "metrics/partition.hpp"

namespace hgr {

struct GRefineOptions {
  double epsilon = 0.05;
  Index max_passes = 4;
  /// Multiplies the edge-cut component of the gain.
  Weight alpha = 1;
  /// When set, the migration component (vertex size, relative to this old
  /// partition) is added to the gain.
  const Partition* old_partition = nullptr;
};

struct GRefineResult {
  Weight initial_cut = 0;
  Weight final_cut = 0;
  Index moves = 0;
  Index passes = 0;
  bool balanced = false;
};

GRefineResult graph_kway_refine(const Graph& g, Partition& p,
                                const GRefineOptions& opt, Rng& rng);

}  // namespace hgr
