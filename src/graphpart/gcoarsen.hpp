// Graph coarsening for the METIS-like baseline partitioner: heavy-edge
// matching (HEM) and graph contraction.
//
// The adaptive-repartitioning path restricts matching to vertices with the
// same *old* partition ("local matching", as in ParMETIS AdaptiveRepart),
// so the old partition projects exactly through the hierarchy.
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "hypergraph/graph.hpp"

namespace hgr {

/// Heavy-edge matching: visit vertices in random order; match each
/// unmatched vertex with its unmatched neighbor of maximum edge weight.
/// match[v] == v for unmatched. max_vertex_weight 0 disables the cap.
/// restrict_labels: when non-empty, u and v may match only if their labels
/// are equal (used to keep matches within one old part).
std::vector<Index> heavy_edge_matching(const Graph& g,
                                       Weight max_vertex_weight, Rng& rng,
                                       std::span<const PartId> restrict_labels
                                       = {});

struct GraphCoarseLevel {
  Graph coarse;
  std::vector<Index> fine_to_coarse;
};

GraphCoarseLevel contract_graph(const Graph& g, std::span<const Index> match);

}  // namespace hgr
