#include "graphpart/scratch_remap.hpp"

#include "common/assert.hpp"
#include "graphpart/gpartitioner.hpp"
#include "metrics/migration.hpp"
#include "partition/partitioner.hpp"

namespace hgr {

Partition graph_scratch_remap(const Graph& g, const Partition& old_p,
                              const PartitionConfig& cfg) {
  HGR_ASSERT(old_p.k == cfg.num_parts);
  const Partition fresh = partition_graph(g, cfg);
  return remap_parts_for_migration(g.vertex_sizes(), old_p, fresh);
}

Partition hypergraph_scratch_remap(const Hypergraph& h, const Partition& old_p,
                                   const PartitionConfig& cfg) {
  HGR_ASSERT(old_p.k == cfg.num_parts);
  const Partition fresh = partition_hypergraph(h, cfg);
  return remap_parts_for_migration(h.vertex_sizes(), old_p, fresh);
}

}  // namespace hgr
