// Diffusive dynamic load balancing — the classic alternative family the
// paper positions itself against (Section 1: "Much of the early work in
// load balancing focused on diffusive methods [7,17,26,33], where
// overloaded processors give work to neighboring processors that have
// lower than average loads. ... Diffusive schemes are fast and have low
// migration cost, but may incur high communication volume.")
//
// Implemented as a Cybenko-style first-order scheme on the part graph:
// each round, overweight parts push boundary vertices toward adjacent
// underweight parts, choosing the vertices whose move damages the edge cut
// least; an optional final refinement sweep polishes the cut without
// undoing balance. Provided as an extension baseline (the paper's
// evaluation does not include it) and exercised by the strategy-ablation
// bench.
#pragma once

#include "hypergraph/graph.hpp"
#include "metrics/partition.hpp"
#include "partition/config.hpp"

namespace hgr {

struct DiffusionConfig {
  double epsilon = 0.05;
  Index max_rounds = 32;
  /// Polish the cut with greedy refinement sweeps after balancing.
  bool refine_after = true;
  Index refine_passes = 2;
  std::uint64_t seed = 1;
};

/// Rebalance old_p on g by local diffusion. Returns the new partition;
/// never changes k. Migration is inherently low (only overload flows),
/// communication quality is whatever the local moves leave behind.
Partition diffusive_repartition(const Graph& g, const Partition& old_p,
                                const DiffusionConfig& cfg);

}  // namespace hgr
