// Initial k-way assignment for the graph partitioner: greedy graph growing
// from random seeds at the coarsest level.
#pragma once

#include "common/rng.hpp"
#include "hypergraph/graph.hpp"
#include "metrics/partition.hpp"
#include "partition/config.hpp"

namespace hgr {

/// One greedy-growing k-way attempt: k random seeds, regions grown in
/// round-robin by absorbing the frontier vertex with the strongest
/// connection to the region, subject to the balance cap.
Partition greedy_graph_growing(const Graph& g, const PartitionConfig& cfg,
                               Rng& rng);

/// Multi-trial wrapper returning the attempt with the best (balance, cut).
Partition initial_graph_partition(const Graph& g, const PartitionConfig& cfg,
                                  Rng& rng);

}  // namespace hgr
