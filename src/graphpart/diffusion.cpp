#include "graphpart/diffusion.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "graphpart/grefine.hpp"
#include "metrics/balance.hpp"

namespace hgr {

Partition diffusive_repartition(const Graph& g, const Partition& old_p,
                                const DiffusionConfig& cfg) {
  HGR_ASSERT(old_p.num_vertices() == g.num_vertices());
  Partition p = old_p;
  const Index k = p.k;
  if (k <= 1 || g.num_vertices() == 0) return p;

  IdVector<PartId, Weight> part_w = part_weights(g.vertex_weights(), p);
  const double avg =
      static_cast<double>(g.total_vertex_weight()) / static_cast<double>(k);
  const auto max_w = static_cast<Weight>(avg * (1.0 + cfg.epsilon));

  Rng rng(cfg.seed);
  for (Index round = 0; round < cfg.max_rounds; ++round) {
    bool any_overweight = false;
    for (const Weight w : part_w) any_overweight |= w > max_w;
    if (!any_overweight) break;

    // One diffusion step: every boundary vertex of an overweight part may
    // flow to its least-loaded adjacent part, provided that part sits
    // below average (loads only flow downhill, as in first-order
    // diffusion).
    Index moves = 0;
    const std::vector<Index> order = random_permutation(g.num_vertices(), rng);
    for (const Index v : order) {
      const PartId from = p[VertexId{v}];
      if (part_w[from] <= max_w) continue;
      PartId best = kNoPart;
      Weight best_conn = -1;
      for (std::size_t i = 0; i < g.neighbors(v).size(); ++i) {
        const PartId q = p[VertexId{g.neighbors(v)[i]}];
        if (q == from) continue;
        if (static_cast<double>(part_w[q]) >= avg)
          continue;  // downhill only
        const Weight conn = g.edge_weights(v)[i];
        if (best == kNoPart || conn > best_conn ||
            (conn == best_conn && part_w[q] < part_w[best]))
          best = q, best_conn = conn;
      }
      if (best == kNoPart) continue;
      part_w[from] -= g.vertex_weight(v);
      part_w[best] += g.vertex_weight(v);
      p[VertexId{v}] = best;
      ++moves;
    }
    if (moves == 0) break;  // no downhill boundary left: diffusion stalled
  }

  if (cfg.refine_after) {
    GRefineOptions opt;
    opt.epsilon = cfg.epsilon;
    opt.max_passes = cfg.refine_passes;
    // Keep migration low: refine against the *old* partition with a strong
    // migration term so polishing does not turn into a re-layout.
    opt.alpha = 1;
    opt.old_partition = &old_p;
    graph_kway_refine(g, p, opt, rng);
  }
  return p;
}

}  // namespace hgr
