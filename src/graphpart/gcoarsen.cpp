#include "graphpart/gcoarsen.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/csr_utils.hpp"

namespace hgr {

std::vector<Index> heavy_edge_matching(
    const Graph& g, Weight max_vertex_weight, Rng& rng,
    std::span<const PartId> restrict_labels) {
  const Index n = g.num_vertices();
  HGR_ASSERT(restrict_labels.empty() ||
             static_cast<Index>(restrict_labels.size()) == n);
  std::vector<Index> match(static_cast<std::size_t>(n));
  for (Index v = 0; v < n; ++v) match[static_cast<std::size_t>(v)] = v;

  const std::vector<Index> order = random_permutation(n, rng);
  for (const Index v : order) {
    if (match[static_cast<std::size_t>(v)] != v) continue;
    const auto nbrs = g.neighbors(v);
    const auto ws = g.edge_weights(v);
    Index best = kInvalidIndex;
    Weight best_w = -1;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Index u = nbrs[i];
      if (match[static_cast<std::size_t>(u)] != u || u == v) continue;
      if (!restrict_labels.empty() &&
          restrict_labels[static_cast<std::size_t>(u)] !=
              restrict_labels[static_cast<std::size_t>(v)])
        continue;
      if (max_vertex_weight > 0 &&
          g.vertex_weight(v) + g.vertex_weight(u) > max_vertex_weight)
        continue;
      if (ws[i] > best_w || (ws[i] == best_w && u < best)) {
        best = u;
        best_w = ws[i];
      }
    }
    if (best != kInvalidIndex) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    }
  }
  return match;
}

GraphCoarseLevel contract_graph(const Graph& g, std::span<const Index> match) {
  const Index n = g.num_vertices();
  HGR_ASSERT(static_cast<Index>(match.size()) == n);

  GraphCoarseLevel out;
  out.fine_to_coarse.assign(static_cast<std::size_t>(n), kInvalidIndex);
  Index num_coarse = 0;
  for (Index v = 0; v < n; ++v) {
    const Index u = match[static_cast<std::size_t>(v)];
    HGR_ASSERT(match[static_cast<std::size_t>(u)] == v);
    if (u >= v) out.fine_to_coarse[static_cast<std::size_t>(v)] = num_coarse++;
  }
  for (Index v = 0; v < n; ++v) {
    const Index u = match[static_cast<std::size_t>(v)];
    if (u < v)
      out.fine_to_coarse[static_cast<std::size_t>(v)] =
          out.fine_to_coarse[static_cast<std::size_t>(u)];
  }

  std::vector<Weight> weights(static_cast<std::size_t>(num_coarse), 0);
  std::vector<Weight> sizes(static_cast<std::size_t>(num_coarse), 0);
  for (Index v = 0; v < n; ++v) {
    const auto c = static_cast<std::size_t>(
        out.fine_to_coarse[static_cast<std::size_t>(v)]);
    weights[c] += g.vertex_weight(v);
    sizes[c] += g.vertex_size(v);
  }

  // Merge adjacency with the stamp trick: slot[u] = position of coarse
  // neighbor u in the current coarse vertex's accumulation list.
  std::vector<Index> slot(static_cast<std::size_t>(num_coarse), kInvalidIndex);
  std::vector<Index> coarse_counts(static_cast<std::size_t>(num_coarse), 0);
  std::vector<std::vector<Index>> coarse_nbrs(
      static_cast<std::size_t>(num_coarse));
  std::vector<std::vector<Weight>> coarse_ws(
      static_cast<std::size_t>(num_coarse));

  for (Index v = 0; v < n; ++v) {
    const Index cv = out.fine_to_coarse[static_cast<std::size_t>(v)];
    // Process each coarse vertex once, from its representative fine vertex.
    if (match[static_cast<std::size_t>(v)] < v) continue;
    auto& nbrs_out = coarse_nbrs[static_cast<std::size_t>(cv)];
    auto& ws_out = coarse_ws[static_cast<std::size_t>(cv)];
    const Index members[2] = {v, match[static_cast<std::size_t>(v)]};
    const int num_members = members[0] == members[1] ? 1 : 2;
    for (int m = 0; m < num_members; ++m) {
      const Index fv = members[m];
      const auto nbrs = g.neighbors(fv);
      const auto ws = g.edge_weights(fv);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const Index cu = out.fine_to_coarse[static_cast<std::size_t>(nbrs[i])];
        if (cu == cv) continue;  // internal edge disappears
        auto& s = slot[static_cast<std::size_t>(cu)];
        if (s == kInvalidIndex) {
          s = static_cast<Index>(nbrs_out.size());
          nbrs_out.push_back(cu);
          ws_out.push_back(ws[i]);
        } else {
          ws_out[static_cast<std::size_t>(s)] += ws[i];
        }
      }
    }
    for (const Index cu : nbrs_out) slot[static_cast<std::size_t>(cu)] =
        kInvalidIndex;
    coarse_counts[static_cast<std::size_t>(cv)] =
        static_cast<Index>(nbrs_out.size());
  }

  std::vector<Index> offsets = counts_to_offsets(std::move(coarse_counts));
  std::vector<Index> adjacency(static_cast<std::size_t>(offsets.back()));
  std::vector<Weight> eweights(adjacency.size());
  for (Index c = 0; c < num_coarse; ++c) {
    const auto begin = static_cast<std::size_t>(
        offsets[static_cast<std::size_t>(c)]);
    std::copy(coarse_nbrs[static_cast<std::size_t>(c)].begin(),
              coarse_nbrs[static_cast<std::size_t>(c)].end(),
              adjacency.begin() + static_cast<std::ptrdiff_t>(begin));
    std::copy(coarse_ws[static_cast<std::size_t>(c)].begin(),
              coarse_ws[static_cast<std::size_t>(c)].end(),
              eweights.begin() + static_cast<std::ptrdiff_t>(begin));
  }
  out.coarse = Graph(std::move(offsets), std::move(adjacency),
                     std::move(eweights), std::move(weights),
                     std::move(sizes));
  return out;
}

}  // namespace hgr
