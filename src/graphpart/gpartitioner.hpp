// Multilevel graph partitioner facade: the Partkway (partition-from-
// scratch) analog of the paper's ParMETIS baseline.
#pragma once

#include "hypergraph/graph.hpp"
#include "metrics/partition.hpp"
#include "partition/config.hpp"

namespace hgr {

/// Direct k-way multilevel graph partitioning: heavy-edge matching
/// coarsening, greedy graph growing at the coarsest level, greedy k-way
/// edge-cut refinement on every level. Deterministic in (g, cfg).
Partition partition_graph(const Graph& g, const PartitionConfig& cfg);

}  // namespace hgr
