#include "graphpart/adaptive_repart.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "graphpart/gcoarsen.hpp"
#include "graphpart/grefine.hpp"

namespace hgr {

Partition adaptive_repartition(const Graph& g, const Partition& old_p,
                               const AdaptiveRepartConfig& cfg) {
  HGR_ASSERT(old_p.k == cfg.base.num_parts);
  HGR_ASSERT(old_p.num_vertices() == g.num_vertices());
  HGR_ASSERT(cfg.alpha >= 1);
  if (cfg.base.num_parts == 1 || g.num_vertices() == 0) return old_p;

  Rng rng(cfg.base.seed);
  const Index stop_size =
      std::max<Index>(cfg.base.coarsen_to, 4 * cfg.base.num_parts);
  const Weight max_vertex_weight = std::max<Weight>(
      1, static_cast<Weight>(cfg.base.max_coarse_weight_factor *
                             static_cast<double>(g.total_vertex_weight()) /
                             std::max<Index>(1, stop_size)));

  // Coarsen with same-old-part ("local") matching; the old assignment of a
  // coarse vertex is the shared old assignment of its constituents.
  struct Level {
    GraphCoarseLevel cl;
    Partition old_parts;  // old assignment at the *coarse* granularity
  };
  std::vector<Level> levels;
  const Graph* current = &g;
  const Partition* current_old = &old_p;
  for (Index level = 0; level < cfg.base.max_levels; ++level) {
    if (current->num_vertices() <= stop_size) break;
    const std::vector<Index> match = heavy_edge_matching(
        *current, max_vertex_weight, rng,
        // hgr-lint: raw-ok (graph layer keeps raw spans of part labels)
        std::span<const PartId>(current_old->assignment.raw()));
    Level next;
    next.cl = contract_graph(*current, match);
    const double reduction =
        1.0 - static_cast<double>(next.cl.coarse.num_vertices()) /
                  static_cast<double>(current->num_vertices());
    if (reduction < cfg.base.min_coarsen_reduction) break;
    next.old_parts =
        Partition(old_p.k, next.cl.coarse.num_vertices(), kNoPart);
    for (Index v = 0; v < current->num_vertices(); ++v) {
      const Index cv = next.cl.fine_to_coarse[static_cast<std::size_t>(v)];
      const PartId ov = (*current_old)[VertexId{v}];
      const VertexId cvv{cv};
      HGR_ASSERT_MSG(next.old_parts[cvv] == kNoPart ||
                         next.old_parts[cvv] == ov,
                     "local matching crossed old-part boundary");
      next.old_parts[cvv] = ov;
    }
    levels.push_back(std::move(next));
    current = &levels.back().cl.coarse;
    current_old = &levels.back().old_parts;
  }

  // Coarse initial solution: stay where you are; rebalance + refine with
  // the composite gain.
  Partition p = *current_old;
  GRefineOptions opt;
  opt.epsilon = cfg.base.epsilon;
  opt.max_passes = cfg.base.max_refine_passes;
  opt.alpha = cfg.alpha;

  {
    const Partition& old_here = *current_old;
    GRefineOptions o = opt;
    o.old_partition = &old_here;
    graph_kway_refine(*current, p, o, rng);
  }

  for (std::size_t i = levels.size(); i-- > 0;) {
    const Graph& finer = (i == 0) ? g : levels[i - 1].cl.coarse;
    const Partition& finer_old = (i == 0) ? old_p : levels[i - 1].old_parts;
    Partition fine_p(old_p.k, finer.num_vertices());
    for (Index v = 0; v < finer.num_vertices(); ++v)
      fine_p[VertexId{v}] = p[VertexId{
          levels[i].cl.fine_to_coarse[static_cast<std::size_t>(v)]}];
    p = std::move(fine_p);
    GRefineOptions o = opt;
    o.old_partition = &finer_old;
    graph_kway_refine(finer, p, o, rng);
  }
  p.validate();
  return p;
}

}  // namespace hgr
