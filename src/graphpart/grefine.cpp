#include "graphpart/grefine.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"

namespace hgr {

namespace {

class GRefiner {
 public:
  GRefiner(const Graph& g, Partition& p, const GRefineOptions& opt)
      : g_(g), p_(p), opt_(opt), conn_(p.k, 0) {
    part_w_ = part_weights(g.vertex_weights(), p);
    const double avg = static_cast<double>(g.total_vertex_weight()) /
                       static_cast<double>(p.k);
    max_w_ = static_cast<Weight>(avg * (1.0 + opt.epsilon));
  }

  bool balanced() const {
    for (const Weight w : part_w_)
      if (w > max_w_) return false;
    return true;
  }

  /// Migration component of moving v from its current part to q.
  Weight migration_gain(Index v, PartId q) const {
    if (opt_.old_partition == nullptr) return 0;
    const PartId home = (*opt_.old_partition)[VertexId{v}];
    const PartId from = p_[VertexId{v}];
    if (from == home && q != home) return -g_.vertex_size(v);
    if (from != home && q == home) return +g_.vertex_size(v);
    return 0;
  }

  /// Forced moves off overweight parts until Eq. 1 holds (or no progress).
  Index rebalance(Rng& rng) {
    Index total_moves = 0;
    for (Index round = 0; round < 4 * p_.k && !balanced(); ++round) {
      Index moves = 0;
      const std::vector<Index> order =
          random_permutation(g_.num_vertices(), rng);
      for (const Index v : order) {
        const PartId from = p_[VertexId{v}];
        if (part_w_[from] <= max_w_) continue;
        const auto [best, gain] = best_destination(v, /*forced=*/true);
        (void)gain;
        if (best == kNoPart) continue;
        move(v, best);
        ++moves;
        if (balanced()) break;
      }
      total_moves += moves;
      if (moves == 0) break;
    }
    return total_moves;
  }

  /// One greedy sweep; returns number of moves applied.
  Index sweep(Rng& rng) {
    Index moves = 0;
    const std::vector<Index> order =
        random_permutation(g_.num_vertices(), rng);
    for (const Index v : order) {
      const auto [best, gain] = best_destination(v, /*forced=*/false);
      if (best == kNoPart) continue;
      const bool improves_balance =
          part_w_[p_[VertexId{v}]] > part_w_[best] + g_.vertex_weight(v);
      if (gain > 0 || (gain == 0 && improves_balance)) {
        move(v, best);
        ++moves;
      }
    }
    return moves;
  }

 private:
  /// Best destination part for v and its composite gain. In forced mode the
  /// balance of the source is ignored (we are evacuating it) and the best
  /// non-positive gain is acceptable.
  std::pair<PartId, Weight> best_destination(Index v, bool forced) {
    const PartId from = p_[VertexId{v}];
    const auto nbrs = g_.neighbors(v);
    const auto ws = g_.edge_weights(v);

    // Connection weight to each adjacent part (stamped accumulation).
    touched_.clear();
    // The home part is always a candidate when repartitioning: returning a
    // vertex home earns its migration gain even across a non-boundary.
    if (opt_.old_partition != nullptr) {
      const PartId home = (*opt_.old_partition)[VertexId{v}];
      if (home != from) touched_.push_back(home);
    }
    Weight internal = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const PartId q = p_[VertexId{nbrs[i]}];
      if (q == from) {
        internal += ws[i];
        continue;
      }
      if (conn_[q] == 0) touched_.push_back(q);
      conn_[q] += ws[i];
    }

    PartId best = kNoPart;
    Weight best_gain = 0;
    bool have = false;
    const Weight wv = g_.vertex_weight(v);
    for (const PartId q : touched_) {
      const Weight ext = conn_[q];
      conn_[q] = 0;
      if (part_w_[q] + wv > max_w_) continue;
      const Weight gain =
          opt_.alpha * (ext - internal) + migration_gain(v, q);
      if (!have || gain > best_gain ||
          (gain == best_gain && part_w_[q] < part_w_[best])) {
        best = q;
        best_gain = gain;
        have = true;
      }
    }
    if (forced && best == kNoPart) {
      // Every adjacent part is full: fall back to the globally lightest
      // part so evacuation always makes progress.
      PartId lightest = kNoPart;
      for (const PartId q : p_.parts()) {
        if (q == from) continue;
        if (lightest == kNoPart || part_w_[q] < part_w_[lightest])
          lightest = q;
      }
      // Gain is not meaningful here; report 0.
      return {lightest, 0};
    }
    return {best, have ? best_gain : 0};
  }

  void move(Index v, PartId to) {
    const PartId from = p_[VertexId{v}];
    HGR_DASSERT(from != to);
    part_w_[from] -= g_.vertex_weight(v);
    part_w_[to] += g_.vertex_weight(v);
    p_[VertexId{v}] = to;
  }

  const Graph& g_;
  Partition& p_;
  const GRefineOptions& opt_;
  IdVector<PartId, Weight> part_w_;
  IdVector<PartId, Weight> conn_;
  std::vector<PartId> touched_;
  Weight max_w_ = 0;
};

}  // namespace

GRefineResult graph_kway_refine(const Graph& g, Partition& p,
                                const GRefineOptions& opt, Rng& rng) {
  GRefineResult result;
  result.initial_cut = edge_cut(g, p);
  if (p.k <= 1 || g.num_vertices() == 0) {
    result.final_cut = result.initial_cut;
    result.balanced = true;
    return result;
  }
  GRefiner refiner(g, p, opt);
  result.moves += refiner.rebalance(rng);
  for (Index pass = 0; pass < opt.max_passes; ++pass) {
    ++result.passes;
    const Index moves = refiner.sweep(rng);
    result.moves += moves;
    if (moves == 0) break;
  }
  result.balanced = refiner.balanced();
  result.final_cut = edge_cut(g, p);
  return result;
}

}  // namespace hgr
