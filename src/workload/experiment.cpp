#include "workload/experiment.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <ostream>
#include <sstream>
#include <string_view>

#include "common/assert.hpp"
#include "workload/datasets.hpp"
#include "workload/perturb.hpp"

namespace hgr {

std::string to_string(PerturbKind kind) {
  return kind == PerturbKind::kStructure ? "perturbed-structure"
                                         : "perturbed-weights";
}

namespace {

std::vector<long long> parse_int_list(const std::string& s) {
  std::vector<long long> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoll(item));
  return out;
}

/// FNV-1a: mixes the dataset name into the seed chain so sweeps over
/// datasets do not reuse identical RNG streams.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::unique_ptr<EpochScenario> make_scenario(const ExperimentConfig& cfg,
                                             std::uint64_t seed) {
  Graph base = make_dataset(cfg.dataset, cfg.scale, derive_seed(seed, 1));
  if (cfg.perturb == PerturbKind::kStructure) {
    return std::make_unique<StructuralPerturbScenario>(
        std::move(base), StructuralPerturbOptions{}, derive_seed(seed, 2));
  }
  return std::make_unique<WeightPerturbScenario>(
      std::move(base), WeightPerturbOptions{}, derive_seed(seed, 2));
}

}  // namespace

void ExperimentConfig::apply_cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--scale") {
      scale = std::stod(value);
    } else if (key == "--epochs") {
      num_epochs = static_cast<Index>(std::stol(value));
    } else if (key == "--trials") {
      num_trials = static_cast<Index>(std::stol(value));
    } else if (key == "--seed") {
      seed = std::stoull(value);
    } else if (key == "--k") {
      k_values.clear();
      for (const long long k : parse_int_list(value))
        k_values.push_back(static_cast<Index>(k));
    } else if (key == "--alpha") {
      alphas.clear();
      for (const long long a : parse_int_list(value))
        alphas.push_back(static_cast<Weight>(a));
    } else if (key == "--dataset") {
      dataset = value;
    } else if (key == "--trace-json") {
      trace_json = value;
    } else if (key == "--epoch-csv") {
      epoch_csv = value;
    } else if (key == "--chrome-trace") {
      chrome_trace = value;
    } else if (key == "--json") {
      bench_json = value;
    } else {
      std::fprintf(stderr,
                   "unknown flag: %s\n"
                   "known: --scale= --epochs= --trials= --seed= --k= "
                   "--alpha= --dataset= --trace-json= --epoch-csv= "
                   "--chrome-trace= --json=\n",
                   arg.c_str());
      std::exit(2);
    }
  }
}

std::vector<CellResult> run_experiment(const ExperimentConfig& cfg,
                                       std::ostream* log,
                                       EpochSeries* series) {
  std::vector<CellResult> cells;
  // Per-configuration seed base: mixing dataset/perturb/k/alpha in (not
  // just the trial index) keeps RNG streams distinct across sweep cells.
  // The algorithm is deliberately excluded so the four algorithms see the
  // same scenario instances (paired comparison, as in the paper).
  std::uint64_t sweep_seed = derive_seed(cfg.seed, fnv1a(cfg.dataset));
  sweep_seed = derive_seed(
      sweep_seed, cfg.perturb == PerturbKind::kStructure ? 1u : 2u);
  for (const Index k : cfg.k_values) {
    for (const Weight alpha : cfg.alphas) {
      const std::uint64_t cell_seed = derive_seed(
          derive_seed(sweep_seed, static_cast<std::uint64_t>(k)),
          static_cast<std::uint64_t>(alpha));
      for (const RepartAlgorithm algorithm : cfg.algorithms) {
        CellResult cell;
        cell.algorithm = algorithm;
        cell.k = k;
        cell.alpha = alpha;
        for (Index trial = 0; trial < cfg.num_trials; ++trial) {
          const std::uint64_t trial_seed =
              derive_seed(cell_seed, static_cast<std::uint64_t>(trial));
          auto scenario = make_scenario(cfg, trial_seed);
          RepartitionerConfig rcfg;
          rcfg.alpha = alpha;
          rcfg.partition.num_parts = k;
          rcfg.partition.epsilon = cfg.epsilon;
          rcfg.partition.seed = derive_seed(trial_seed, 3);
          const EpochRunSummary summary =
              run_epochs(*scenario, algorithm, rcfg, cfg.num_epochs);
          if (series != nullptr)
            series->append(cfg.dataset, to_string(cfg.perturb),
                           to_string(algorithm), k, alpha, trial, summary);
          cell.comm_volume += summary.mean_comm_volume();
          cell.migration_volume += summary.mean_migration_volume();
          cell.normalized_total += summary.mean_normalized_total_cost();
          cell.repart_seconds += summary.mean_repart_seconds();
        }
        const double inv = 1.0 / std::max<Index>(1, cfg.num_trials);
        cell.comm_volume *= inv;
        cell.migration_volume *= inv;
        cell.normalized_total *= inv;
        cell.repart_seconds *= inv;
        cells.push_back(cell);
        if (log != nullptr) {
          *log << "  done " << to_string(cell.algorithm) << " k=" << k
               << " alpha=" << alpha
               << " total=" << cell.normalized_total
               << " time=" << cell.repart_seconds << "s\n";
          log->flush();
        }
      }
    }
  }
  return cells;
}

namespace {

std::string bar(double value, double max_value, int width) {
  const int filled =
      max_value <= 0.0
          ? 0
          : static_cast<int>(value / max_value * width + 0.5);
  std::string s(static_cast<std::size_t>(std::clamp(filled, 0, width)), '#');
  s.resize(static_cast<std::size_t>(width), ' ');
  return s;
}

}  // namespace

void print_cost_figure(const std::string& title, const ExperimentConfig& cfg,
                       const std::vector<CellResult>& cells,
                       std::ostream& out) {
  out << "=== " << title << " — " << cfg.dataset << " ("
      << to_string(cfg.perturb) << ") ===\n";
  out << "normalized total cost = comm volume + (migration volume)/alpha\n\n";
  out << "csv,dataset,perturb,k,alpha,algorithm,comm,mig,norm_total\n";
  for (const CellResult& c : cells) {
    out << "csv," << cfg.dataset << ',' << to_string(cfg.perturb) << ','
        << c.k << ',' << c.alpha << ',' << to_string(c.algorithm) << ','
        << c.comm_volume << ',' << c.migration_volume << ','
        << c.normalized_total << '\n';
  }
  out << '\n';
  for (const Index k : cfg.k_values) {
    for (const Weight alpha : cfg.alphas) {
      double group_max = 0.0;
      for (const CellResult& c : cells)
        if (c.k == k && c.alpha == alpha)
          group_max = std::max(group_max, c.normalized_total);
      out << "k=" << k << " alpha=" << alpha << '\n';
      for (const CellResult& c : cells) {
        if (c.k != k || c.alpha != alpha) continue;
        char line[256];
        std::snprintf(line, sizeof(line),
                      "  %-14s |%s| total=%.0f (comm=%.0f mig=%.0f)\n",
                      to_string(c.algorithm).c_str(),
                      bar(c.normalized_total, group_max, 40).c_str(),
                      c.normalized_total, c.comm_volume, c.migration_volume);
        out << line;
      }
      out << '\n';
    }
  }
  out.flush();
}

void print_runtime_figure(const std::string& title,
                          const ExperimentConfig& cfg,
                          const std::vector<CellResult>& cells,
                          std::ostream& out) {
  out << "=== " << title << " — " << cfg.dataset << " ("
      << to_string(cfg.perturb) << ") — repartitioning time ===\n";
  out << "csv,dataset,perturb,k,alpha,algorithm,seconds\n";
  for (const CellResult& c : cells) {
    out << "csv," << cfg.dataset << ',' << to_string(cfg.perturb) << ','
        << c.k << ',' << c.alpha << ',' << to_string(c.algorithm) << ','
        << c.repart_seconds << '\n';
  }
  out << '\n';
  for (const Index k : cfg.k_values) {
    for (const Weight alpha : cfg.alphas) {
      double group_max = 0.0;
      for (const CellResult& c : cells)
        if (c.k == k && c.alpha == alpha)
          group_max = std::max(group_max, c.repart_seconds);
      out << "k=" << k << " alpha=" << alpha << '\n';
      for (const CellResult& c : cells) {
        if (c.k != k || c.alpha != alpha) continue;
        char line[256];
        std::snprintf(line, sizeof(line), "  %-14s |%s| %.3f s\n",
                      to_string(c.algorithm).c_str(),
                      bar(c.repart_seconds, group_max, 40).c_str(),
                      c.repart_seconds);
        out << line;
      }
      out << '\n';
    }
  }
  out.flush();
}

}  // namespace hgr
