// The paper's two synthetic dynamic-data generators (Section 5):
//
// 1. *Biased random structural perturbation*: each epoch, a fraction of the
//    vertices — drawn from a randomly chosen half of the partitions — is
//    deleted along with incident edges; a different subset is deleted each
//    epoch, so previously deleted vertices return. "Half of the partitions
//    lose or gain 25% of the total number of vertices at each iteration."
//
// 2. *Simulated adaptive mesh refinement*: structure stays fixed; each
//    epoch, 10% of the partitions are selected and every vertex in them has
//    its weight and size set to a random 1.5-7.5x of the original value.
//
// Both scenarios are partition-aware (they read the parts the driver
// recorded), exactly as the paper's generators reference partitions, so
// each algorithm experiences perturbations relative to its own current
// distribution.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "core/epoch_driver.hpp"
#include "hypergraph/graph.hpp"

namespace hgr {

struct StructuralPerturbOptions {
  /// Fraction of |V| deleted each epoch (paper: 0.25).
  double vertex_fraction = 0.25;
  /// Fraction of the partitions the deletions are drawn from (paper: 0.5).
  double parts_fraction = 0.5;
};

class StructuralPerturbScenario final : public EpochScenario {
 public:
  StructuralPerturbScenario(Graph base, StructuralPerturbOptions options,
                            std::uint64_t seed);

  EpochProblem next_epoch() override;
  void record_partition(const Partition& p) override;

  const Graph& base() const { return base_; }

 private:
  Graph base_;
  StructuralPerturbOptions options_;
  Rng rng_;
  Index epoch_ = 0;
  std::vector<bool> active_;          // base ids present in current epoch
  std::vector<Index> current_to_base_;  // epoch id -> base id
  std::vector<PartId> last_part_;     // base ids; part before any deletion
  Index k_ = 0;
};

struct WeightPerturbOptions {
  /// Fraction of the partitions refined each epoch (paper: 0.10).
  double parts_fraction = 0.10;
  /// Weight/size multiplier range relative to the original (paper:
  /// 1.5 - 7.5).
  double min_factor = 1.5;
  double max_factor = 7.5;
};

class WeightPerturbScenario final : public EpochScenario {
 public:
  WeightPerturbScenario(Graph base, WeightPerturbOptions options,
                        std::uint64_t seed);

  EpochProblem next_epoch() override;
  void record_partition(const Partition& p) override;

  const Graph& base() const { return base_; }

 private:
  Graph base_;       // carries the *current* weights
  std::vector<Weight> original_weights_;
  std::vector<Weight> original_sizes_;
  WeightPerturbOptions options_;
  Rng rng_;
  Index epoch_ = 0;
  std::vector<PartId> last_part_;
  Index k_ = 0;
};

/// Induced subgraph on the vertices with keep[v] == true; fills to_base
/// with the surviving vertices' original ids.
Graph induced_subgraph(const Graph& g, const std::vector<bool>& keep,
                       std::vector<Index>& to_base);

}  // namespace hgr
