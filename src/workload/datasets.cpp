#include "workload/datasets.hpp"

#include <cmath>
#include <stdexcept>

#include "common/assert.hpp"
#include "workload/generators.hpp"

namespace hgr {

std::vector<DatasetInfo> dataset_catalog() {
  return {
      {"xyce680s-like", "xyce680s", "VLSI design"},
      {"2DLipid-like", "2DLipid", "Polymer DFT"},
      {"auto-like", "auto", "Structural analysis"},
      {"apoa1-like", "apoa1-10", "Molecular dynamics"},
      {"cage14-like", "cage14", "DNA electrophoresis"},
  };
}

namespace {

/// A vertex's migratable data is its matrix row / neighbor list, so its
/// size scales with its degree. Without this, dense datasets could never
/// show the migration components the paper's bars report: with unit sizes,
/// total migration is bounded by |V| while communication scales with |E|.
Graph with_degree_sizes(Graph g) {
  for (Index v = 0; v < g.num_vertices(); ++v)
    g.set_vertex_size(v, std::max<Weight>(1, g.degree(v) / 2));
  return g;
}

}  // namespace

Graph make_dataset(const std::string& name, double scale,
                   std::uint64_t seed) {
  HGR_ASSERT(scale > 0.0);
  const auto scaled = [scale](Index base) {
    return std::max<Index>(16, static_cast<Index>(base * scale));
  };
  if (name == "xyce680s-like" || name == "xyce680s") {
    return with_degree_sizes(
        make_circuit_like(scaled(13654), 2.4, 6, 200, seed));
  }
  if (name == "2DLipid-like" || name == "2DLipid") {
    return with_degree_sizes(
        make_random_geometric(scaled(2184), 2, 160.0, seed));
  }
  if (name == "auto-like" || name == "auto") {
    const auto side = static_cast<Index>(
        std::max(4.0, std::round(21.0 * std::cbrt(scale))));
    return with_degree_sizes(
        make_grid3d(side, side, side, /*body_diagonals=*/true));
  }
  if (name == "apoa1-like" || name == "apoa1-10") {
    return with_degree_sizes(
        make_random_geometric(scaled(2306), 3, 92.0, seed));
  }
  if (name == "cage14-like" || name == "cage14") {
    return with_degree_sizes(make_regular_random(scaled(30116), 18, seed));
  }
  throw std::runtime_error("unknown dataset: " + name);
}

}  // namespace hgr
