// Experiment harness for the paper's Section 5 figures.
//
// One *cell* = (dataset, perturbation, k, alpha, algorithm): a sequence of
// epochs run end-to-end with that algorithm, averaged over trials with
// distinct seeds. Figures 2-6 plot the normalized total cost
// (comm + mig/alpha) per cell as stacked bars; Figures 7-8 plot the
// repartitioning wall time. The harness prints both an ASCII rendering of
// the bar chart and machine-readable CSV rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/epoch_driver.hpp"
#include "core/repartitioner.hpp"

namespace hgr {

enum class PerturbKind { kStructure, kWeights };

std::string to_string(PerturbKind kind);

struct ExperimentConfig {
  std::string dataset = "auto-like";
  double scale = 1.0;
  PerturbKind perturb = PerturbKind::kStructure;
  std::vector<Index> k_values = {16, 64};
  std::vector<Weight> alphas = {1, 10, 100, 1000};
  std::vector<RepartAlgorithm> algorithms = {
      RepartAlgorithm::kHypergraphRepart,
      RepartAlgorithm::kGraphRepart,
      RepartAlgorithm::kHypergraphScratch,
      RepartAlgorithm::kGraphScratch,
  };
  Index num_epochs = 4;   // epoch 1 is the static bootstrap
  Index num_trials = 3;   // distinct scenario/partitioner seeds
  double epsilon = 0.05;
  std::uint64_t seed = 42;

  /// When non-empty, the bench driver dumps the run's phase timings and
  /// counters (obs::trace_to_json) to this path after the sweep.
  std::string trace_json;

  /// When non-empty, the per-epoch time series (EpochSeries) is written to
  /// this path as CSV after the sweep.
  std::string epoch_csv;

  /// When non-empty, event capture is enabled for the sweep and the
  /// timeline is written to this path in Chrome trace-event format.
  std::string chrome_trace;

  /// When non-empty, the bench driver writes an hgr-bench-v1 JSON document
  /// (cells + trace + comm telemetry) to this path after the sweep.
  std::string bench_json;

  /// Parse harness flags: --scale=F --epochs=N --trials=N --k=16,64
  /// --alpha=1,10,100,1000 --seed=S --trace-json=FILE --epoch-csv=FILE
  /// --chrome-trace=FILE --json=FILE. Unknown flags abort with a message.
  void apply_cli(int argc, char** argv);
};

struct CellResult {
  RepartAlgorithm algorithm{};
  Index k = 0;
  Weight alpha = 1;
  double comm_volume = 0.0;        // mean over repartitioning epochs+trials
  double migration_volume = 0.0;
  double normalized_total = 0.0;   // comm + mig/alpha
  double repart_seconds = 0.0;
};

/// Run the full sweep. Progress lines go to `log` when non-null. When
/// `series` is non-null, every epoch of every (cell, trial) run is appended
/// to it (the per-epoch trajectory behind the aggregated CellResults).
std::vector<CellResult> run_experiment(const ExperimentConfig& cfg,
                                       std::ostream* log = nullptr,
                                       EpochSeries* series = nullptr);

/// Figures 2-6 style output: per (k, alpha) group, one stacked bar per
/// algorithm, plus CSV.
void print_cost_figure(const std::string& title,
                       const ExperimentConfig& cfg,
                       const std::vector<CellResult>& cells,
                       std::ostream& out);

/// Figures 7-8 style output: run-time bars.
void print_runtime_figure(const std::string& title,
                          const ExperimentConfig& cfg,
                          const std::vector<CellResult>& cells,
                          std::ostream& out);

}  // namespace hgr
