#include "workload/perturb.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "hypergraph/builder.hpp"

namespace hgr {

Graph induced_subgraph(const Graph& g, const std::vector<bool>& keep,
                       std::vector<Index>& to_base) {
  HGR_ASSERT(static_cast<Index>(keep.size()) == g.num_vertices());
  std::vector<Index> base_to_new(keep.size(), kInvalidIndex);
  to_base.clear();
  for (Index v = 0; v < g.num_vertices(); ++v) {
    if (keep[static_cast<std::size_t>(v)]) {
      base_to_new[static_cast<std::size_t>(v)] =
          static_cast<Index>(to_base.size());
      to_base.push_back(v);
    }
  }
  GraphBuilder b(static_cast<Index>(to_base.size()));
  for (std::size_t nv = 0; nv < to_base.size(); ++nv) {
    const Index v = to_base[nv];
    b.set_vertex_weight(static_cast<Index>(nv), g.vertex_weight(v));
    b.set_vertex_size(static_cast<Index>(nv), g.vertex_size(v));
    const auto nbrs = g.neighbors(v);
    const auto ws = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Index nu = base_to_new[static_cast<std::size_t>(nbrs[i])];
      if (nu != kInvalidIndex && nbrs[i] > v)
        b.add_edge(static_cast<Index>(nv), nu, ws[i]);
    }
  }
  return b.finalize();
}

namespace {

/// Pick ceil(fraction * k) distinct random parts.
std::vector<PartId> pick_parts(Index k, double fraction, Rng& rng) {
  const Index count = std::max<Index>(
      1, static_cast<Index>(std::ceil(fraction * k)));
  std::vector<PartId> all;
  all.reserve(static_cast<std::size_t>(k));
  for (const PartId q : part_range(k)) all.push_back(q);
  rng.shuffle(all);
  all.resize(static_cast<std::size_t>(std::min(count, k)));
  return all;
}

}  // namespace

StructuralPerturbScenario::StructuralPerturbScenario(
    Graph base, StructuralPerturbOptions options, std::uint64_t seed)
    : base_(std::move(base)),
      options_(options),
      rng_(seed),
      active_(static_cast<std::size_t>(base_.num_vertices()), true),
      last_part_(static_cast<std::size_t>(base_.num_vertices()), kNoPart) {
  HGR_ASSERT(options_.vertex_fraction > 0.0 &&
             options_.vertex_fraction < 1.0);
  HGR_ASSERT(options_.parts_fraction > 0.0 && options_.parts_fraction <= 1.0);
}

EpochProblem StructuralPerturbScenario::next_epoch() {
  ++epoch_;
  EpochProblem problem;
  if (epoch_ == 1) {
    // Epoch 1: the full base dataset, statically partitioned by the driver.
    problem.first = true;
    std::fill(active_.begin(), active_.end(), true);
    problem.graph = base_;
    problem.to_base.resize(static_cast<std::size_t>(base_.num_vertices()));
    for (Index v = 0; v < base_.num_vertices(); ++v)
      problem.to_base[static_cast<std::size_t>(v)] = v;
    current_to_base_ = problem.to_base;
    return problem;
  }
  HGR_ASSERT_MSG(k_ > 0, "record_partition must be called between epochs");

  // Choose the affected half of the partitions, then delete
  // vertex_fraction * |V| vertices drawn from those parts. Everything not
  // newly deleted is present (previously deleted vertices return).
  const std::vector<PartId> affected =
      pick_parts(k_, options_.parts_fraction, rng_);
  std::vector<bool> is_affected(static_cast<std::size_t>(k_), false);
  for (const PartId q : affected)
    is_affected[static_cast<std::size_t>(q.v)] = true;

  std::vector<Index> pool;
  for (Index v = 0; v < base_.num_vertices(); ++v) {
    const PartId q = last_part_[static_cast<std::size_t>(v)];
    if (q != kNoPart && is_affected[static_cast<std::size_t>(q.v)])
      pool.push_back(v);
  }
  rng_.shuffle(pool);
  const auto target = static_cast<std::size_t>(
      options_.vertex_fraction * base_.num_vertices());
  const std::size_t deletions = std::min(pool.size(), target);

  std::fill(active_.begin(), active_.end(), true);
  for (std::size_t i = 0; i < deletions; ++i)
    active_[static_cast<std::size_t>(pool[i])] = false;

  problem.graph = induced_subgraph(base_, active_, problem.to_base);
  current_to_base_ = problem.to_base;
  problem.old_partition =
      Partition(k_, problem.graph.num_vertices());
  for (Index nv = 0; nv < problem.graph.num_vertices(); ++nv) {
    const PartId q = last_part_[static_cast<std::size_t>(
        problem.to_base[static_cast<std::size_t>(nv)])];
    HGR_ASSERT(q != kNoPart);
    problem.old_partition[VertexId{nv}] = q;
  }
  return problem;
}

void StructuralPerturbScenario::record_partition(const Partition& p) {
  HGR_ASSERT(p.num_vertices() ==
             static_cast<Index>(current_to_base_.size()));
  k_ = p.k;
  for (Index nv = 0; nv < p.num_vertices(); ++nv)
    last_part_[static_cast<std::size_t>(
        current_to_base_[static_cast<std::size_t>(nv)])] = p[VertexId{nv}];
}

WeightPerturbScenario::WeightPerturbScenario(Graph base,
                                             WeightPerturbOptions options,
                                             std::uint64_t seed)
    : base_(std::move(base)),
      options_(options),
      rng_(seed),
      last_part_(static_cast<std::size_t>(base_.num_vertices()), kNoPart) {
  HGR_ASSERT(options_.min_factor >= 1.0 &&
             options_.max_factor >= options_.min_factor);
  original_weights_.assign(base_.vertex_weights().begin(),
                           base_.vertex_weights().end());
  original_sizes_.assign(base_.vertex_sizes().begin(),
                         base_.vertex_sizes().end());
}

EpochProblem WeightPerturbScenario::next_epoch() {
  ++epoch_;
  EpochProblem problem;
  problem.to_base.resize(static_cast<std::size_t>(base_.num_vertices()));
  for (Index v = 0; v < base_.num_vertices(); ++v)
    problem.to_base[static_cast<std::size_t>(v)] = v;

  if (epoch_ == 1) {
    problem.first = true;
    problem.graph = base_;
    return problem;
  }
  HGR_ASSERT_MSG(k_ > 0, "record_partition must be called between epochs");

  // "Mesh refinement": the selected parts' vertices grow to a random
  // 1.5-7.5x of their *original* weight and size; everything else reverts
  // to the original (refinement elsewhere coarsened back).
  const std::vector<PartId> refined =
      pick_parts(k_, options_.parts_fraction, rng_);
  std::vector<bool> is_refined(static_cast<std::size_t>(k_), false);
  for (const PartId q : refined)
    is_refined[static_cast<std::size_t>(q.v)] = true;

  for (Index v = 0; v < base_.num_vertices(); ++v) {
    const PartId q = last_part_[static_cast<std::size_t>(v)];
    Weight w = original_weights_[static_cast<std::size_t>(v)];
    Weight s = original_sizes_[static_cast<std::size_t>(v)];
    if (q != kNoPart && is_refined[static_cast<std::size_t>(q.v)]) {
      const double factor =
          options_.min_factor +
          rng_.uniform() * (options_.max_factor - options_.min_factor);
      w = std::max<Weight>(1, static_cast<Weight>(w * factor));
      s = std::max<Weight>(1, static_cast<Weight>(s * factor));
    }
    base_.set_vertex_weight(v, w);
    base_.set_vertex_size(v, s);
  }

  problem.graph = base_;
  problem.old_partition = Partition(k_, base_.num_vertices());
  for (Index v = 0; v < base_.num_vertices(); ++v)
    problem.old_partition[VertexId{v}] = last_part_[static_cast<std::size_t>(v)];
  return problem;
}

void WeightPerturbScenario::record_partition(const Partition& p) {
  HGR_ASSERT(p.num_vertices() == base_.num_vertices());
  k_ = p.k;
  for (Index v = 0; v < p.num_vertices(); ++v)
    last_part_[static_cast<std::size_t>(v)] = p[VertexId{v}];
}

}  // namespace hgr
