// Deterministic synthetic graph generators.
//
// The paper evaluates on five real matrices/graphs (Table 1) spanning very
// different density regimes. Real inputs are not redistributable here, so
// datasets.cpp composes these generators into *structural analogs* matched
// to each dataset's published degree statistics. All generators are
// deterministic in their seed and always return a connected graph
// (connectivity is repaired by linking components).
#pragma once

#include "common/rng.hpp"
#include "hypergraph/graph.hpp"

namespace hgr {

/// 3D structured mesh nx*ny*nz with the 6-point stencil; when
/// body_diagonals is true the 8 corner neighbors are added too (average
/// degree ~14, resembling tetrahedral FEM meshes such as `auto`).
Graph make_grid3d(Index nx, Index ny, Index nz, bool body_diagonals);

/// Random geometric graph: n points uniform in the unit square/cube,
/// vertices within the radius that yields ~target_avg_degree are connected.
/// Models particle/molecular neighbor lists (apoa1) and dense short-range
/// interaction systems (2DLipid, with a large target degree).
Graph make_random_geometric(Index n, int dim, double target_avg_degree,
                            std::uint64_t seed);

/// Circuit-like sparse graph: a random spanning tree backbone plus sparse
/// extra edges up to ~avg_degree, plus num_hubs high-degree vertices
/// (power/ground rails) of degree ~hub_degree. Matches xyce680s's profile:
/// tiny average degree with a heavy tail.
Graph make_circuit_like(Index n, double avg_degree, Index num_hubs,
                        Index hub_degree, std::uint64_t seed);

/// Near-regular random graph: every vertex has approximately `degree`
/// distinct random neighbors (cage14's shape: tight degree band).
Graph make_regular_random(Index n, Index degree, std::uint64_t seed);

/// Connect the components of an edge list by chaining component
/// representatives (used internally; exposed for tests).
void connect_components(Index n, std::vector<std::pair<Index, Index>>& edges);

}  // namespace hgr
