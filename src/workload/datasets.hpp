// Synthetic analogs of the paper's Table 1 datasets.
//
// | paper name | |V|       | avg deg | analog here (scale=1)              |
// |------------|-----------|---------|-------------------------------------|
// | xyce680s   |   682,712 |     2.4 | circuit_like  n=13,654, deg 2.4,    |
// |            |           |         | 6 hubs of degree ~200               |
// | 2DLipid    |     4,368 | 1,279.3 | geometric 2D  n=2,184, deg ~160     |
// | auto       |   448,695 |    14.8 | grid3d 21^3 with diagonals, deg ~14 |
// | apoa1-10   |    92,224 |   370.9 | geometric 3D  n=2,306, deg ~92      |
// | cage14     | 1,505,785 |    18.0 | regular_random n=30,116, deg ~18    |
//
// Vertex counts are scaled ~20-50x down (and the two dense datasets'
// degrees ~4-8x down) so the full figure sweeps run on a single-core
// container; the density *ordering* and degree-distribution shape — what
// the paper's observations depend on — are preserved. `scale` multiplies
// the vertex count for users with more budget.
#pragma once

#include <string>
#include <vector>

#include "hypergraph/graph.hpp"

namespace hgr {

struct DatasetInfo {
  std::string name;              // analog name, e.g. "xyce680s-like"
  std::string paper_name;        // the Table 1 row it models
  std::string application_area;  // Table 1's "Application Area"
};

/// The five Table 1 analogs, in the paper's order.
std::vector<DatasetInfo> dataset_catalog();

/// Build a dataset analog by (analog or paper) name. scale multiplies the
/// vertex count; seed feeds the generator.
Graph make_dataset(const std::string& name, double scale = 1.0,
                   std::uint64_t seed = 1);

}  // namespace hgr
