#include "workload/generators.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/dsu.hpp"
#include "hypergraph/builder.hpp"

namespace hgr {

namespace {

Graph from_edges(Index n, const std::vector<std::pair<Index, Index>>& edges) {
  GraphBuilder b(n);
  for (const auto& [u, v] : edges) b.add_edge(u, v, 1);
  return b.finalize();
}

}  // namespace

void connect_components(Index n,
                        std::vector<std::pair<Index, Index>>& edges) {
  DisjointSets dsu(n);
  for (const auto& [u, v] : edges) dsu.unite(u, v);
  Index prev_root = kInvalidIndex;
  for (Index v = 0; v < n; ++v) {
    if (dsu.find(v) != v) continue;
    if (prev_root != kInvalidIndex) {
      edges.emplace_back(prev_root, v);
      dsu.unite(prev_root, v);
    }
    prev_root = v;
  }
}

Graph make_grid3d(Index nx, Index ny, Index nz, bool body_diagonals) {
  HGR_ASSERT(nx >= 1 && ny >= 1 && nz >= 1);
  const auto id = [=](Index x, Index y, Index z) {
    return (z * ny + y) * nx + x;
  };
  std::vector<std::pair<Index, Index>> edges;
  for (Index z = 0; z < nz; ++z) {
    for (Index y = 0; y < ny; ++y) {
      for (Index x = 0; x < nx; ++x) {
        const Index v = id(x, y, z);
        if (x + 1 < nx) edges.emplace_back(v, id(x + 1, y, z));
        if (y + 1 < ny) edges.emplace_back(v, id(x, y + 1, z));
        if (z + 1 < nz) edges.emplace_back(v, id(x, y, z + 1));
        if (body_diagonals && x + 1 < nx && y + 1 < ny && z + 1 < nz) {
          edges.emplace_back(v, id(x + 1, y + 1, z + 1));
          edges.emplace_back(id(x + 1, y, z), id(x, y + 1, z + 1));
          edges.emplace_back(id(x, y + 1, z), id(x + 1, y, z + 1));
          edges.emplace_back(id(x, y, z + 1), id(x + 1, y + 1, z));
        }
      }
    }
  }
  return from_edges(nx * ny * nz, edges);
}

Graph make_random_geometric(Index n, int dim, double target_avg_degree,
                            std::uint64_t seed) {
  HGR_ASSERT(n >= 2 && (dim == 2 || dim == 3));
  HGR_ASSERT(target_avg_degree >= 1.0);
  Rng rng(seed);
  std::vector<double> coords(static_cast<std::size_t>(n) * dim);
  for (auto& c : coords) c = rng.uniform();

  // Radius so the expected neighborhood holds target_avg_degree points:
  // 2D: pi r^2 n = d  =>  r = sqrt(d / (pi n));
  // 3D: (4/3) pi r^3 n = d.
  const double d = target_avg_degree;
  const double r =
      dim == 2 ? std::sqrt(d / (M_PI * n))
               : std::cbrt(3.0 * d / (4.0 * M_PI * n));

  // Uniform grid buckets of cell size r: neighbors live in adjacent cells.
  const Index cells = std::max<Index>(1, static_cast<Index>(1.0 / r));
  const double cell_size = 1.0 / cells;
  const auto cell_of = [&](double x) {
    return std::min<Index>(cells - 1, static_cast<Index>(x / cell_size));
  };
  const auto cell_id = [&](Index cx, Index cy, Index cz) {
    return (cz * cells + cy) * cells + cx;
  };
  const Index num_cells = dim == 2 ? cells * cells : cells * cells * cells;
  std::vector<std::vector<Index>> bucket(static_cast<std::size_t>(num_cells));
  for (Index v = 0; v < n; ++v) {
    const double* p = &coords[static_cast<std::size_t>(v) * dim];
    const Index cx = cell_of(p[0]);
    const Index cy = cell_of(p[1]);
    const Index cz = dim == 3 ? cell_of(p[2]) : 0;
    bucket[static_cast<std::size_t>(cell_id(cx, cy, cz))].push_back(v);
  }

  std::vector<std::pair<Index, Index>> edges;
  const double r2 = r * r;
  for (Index v = 0; v < n; ++v) {
    const double* p = &coords[static_cast<std::size_t>(v) * dim];
    const Index cx = cell_of(p[0]);
    const Index cy = cell_of(p[1]);
    const Index cz = dim == 3 ? cell_of(p[2]) : 0;
    const Index zlo = dim == 3 ? std::max<Index>(0, cz - 1) : 0;
    const Index zhi = dim == 3 ? std::min<Index>(cells - 1, cz + 1) : 0;
    for (Index z = zlo; z <= zhi; ++z) {
      for (Index y = std::max<Index>(0, cy - 1);
           y <= std::min<Index>(cells - 1, cy + 1); ++y) {
        for (Index x = std::max<Index>(0, cx - 1);
             x <= std::min<Index>(cells - 1, cx + 1); ++x) {
          for (const Index u : bucket[static_cast<std::size_t>(
                   cell_id(x, y, z))]) {
            if (u <= v) continue;
            const double* q = &coords[static_cast<std::size_t>(u) * dim];
            double dist2 = 0.0;
            for (int c = 0; c < dim; ++c) {
              const double diff = p[c] - q[c];
              dist2 += diff * diff;
            }
            if (dist2 <= r2) edges.emplace_back(v, u);
          }
        }
      }
    }
  }
  connect_components(n, edges);
  return from_edges(n, edges);
}

Graph make_circuit_like(Index n, double avg_degree, Index num_hubs,
                        Index hub_degree, std::uint64_t seed) {
  HGR_ASSERT(n >= 2 && avg_degree >= 1.0);
  Rng rng(seed);
  std::vector<std::pair<Index, Index>> edges;

  // Random spanning tree with small locality bias (circuits are mostly
  // local chains): vertex v attaches to a recent predecessor.
  for (Index v = 1; v < n; ++v) {
    const Index window = std::min<Index>(v, 16);
    const Index u =
        v - 1 - static_cast<Index>(rng.below(static_cast<std::uint64_t>(
                    window)));
    edges.emplace_back(u, v);
  }

  // Extra sparse edges to reach the average degree. Circuits are mostly
  // local (placement locality), with a thin tail of long wires: 90% of the
  // extras land in a small index window, 10% anywhere.
  const auto extra = static_cast<Index>(
      std::max(0.0, (avg_degree - 2.0) * n / 2.0));
  const Index window = std::max<Index>(4, n / 256);
  for (Index e = 0; e < extra; ++e) {
    const auto u = static_cast<Index>(rng.below(static_cast<std::uint64_t>(n)));
    Index v;
    if (rng.chance(0.9)) {
      const Index offset = 1 + static_cast<Index>(rng.below(
                                   static_cast<std::uint64_t>(window)));
      v = rng.chance(0.5) ? u + offset : u - offset;
      if (v < 0 || v >= n) v = (u + offset) % n;
    } else {
      v = static_cast<Index>(rng.below(static_cast<std::uint64_t>(n)));
    }
    if (u != v) edges.emplace_back(u, v);
  }

  // Hubs: power/ground-rail style high-degree vertices.
  for (Index hub = 0; hub < std::min(num_hubs, n); ++hub) {
    for (Index e = 0; e < hub_degree; ++e) {
      const auto v =
          static_cast<Index>(rng.below(static_cast<std::uint64_t>(n)));
      if (v != hub) edges.emplace_back(hub, v);
    }
  }
  connect_components(n, edges);
  return from_edges(n, edges);
}

Graph make_regular_random(Index n, Index degree, std::uint64_t seed) {
  HGR_ASSERT(n >= 2 && degree >= 1 && degree < n);
  Rng rng(seed);
  std::vector<std::pair<Index, Index>> edges;
  // Each vertex proposes degree/2 edges; merged duplicates leave the
  // realized degree in a tight band around `degree`. Neighbors are drawn
  // from a banded index window (cage-style matrices are strongly banded —
  // good cuts must exist), with a 5% tail of uniform fill-in.
  const Index proposals = std::max<Index>(1, degree / 2);
  const Index band = std::max<Index>(degree * 4, n / 32);
  for (Index v = 0; v < n; ++v) {
    for (Index e = 0; e < proposals; ++e) {
      Index u;
      if (rng.chance(0.95)) {
        const Index offset = 1 + static_cast<Index>(rng.below(
                                     static_cast<std::uint64_t>(band)));
        u = rng.chance(0.5) ? v + offset : v - offset;
        if (u < 0 || u >= n) u = (v + offset) % n;
      } else {
        u = static_cast<Index>(rng.below(static_cast<std::uint64_t>(n)));
      }
      if (u == v) u = (u + 1) % n;
      edges.emplace_back(v, u);
    }
  }
  connect_components(n, edges);
  return from_edges(n, edges);
}

}  // namespace hgr
