// Partition-file I/O: one part id per line in vertex order (the METIS /
// hMETIS convention). Used by the CLI and by applications checkpointing
// their distribution between epochs.
#pragma once

#include <iosfwd>
#include <string>

#include "metrics/partition.hpp"

namespace hgr {

void write_partition(const Partition& p, std::ostream& out);
void write_partition_file(const Partition& p, const std::string& path);

/// Reads num_vertices lines; k is inferred as max+1 unless k_hint > 0 (the
/// hint also validates ids against [0, k_hint)). Throws std::runtime_error
/// on malformed input.
Partition read_partition(std::istream& in, Index num_vertices,
                         Index k_hint = 0);
Partition read_partition_file(const std::string& path, Index num_vertices,
                              Index k_hint = 0);

}  // namespace hgr
