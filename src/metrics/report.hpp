// Partition quality report: the per-part breakdown an operator wants when
// inspecting a distribution — weights, boundary sizes, and the
// part-to-part communication matrix implied by the connectivity-1 model.
#pragma once

#include <string>
#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "metrics/partition.hpp"

namespace hgr {

struct PartitionReport {
  Index k = 0;
  Weight total_cut = 0;          // connectivity-1
  double imbalance = 0.0;
  IdVector<PartId, Weight> part_weight;
  IdVector<PartId, Index> part_vertices;
  IdVector<PartId, Index> boundary_vertices;  // vertices touching a cut net
  /// comm[i*k + j], i < j: volume on nets spanning parts i and j (a net
  /// with connectivity lambda contributes cost*(lambda-1) split evenly
  /// across its spanned pairs' buckets; exact for 2-part nets).
  std::vector<double> pairwise_comm;

  double pair_comm(PartId i, PartId j) const {
    return pairwise_comm[static_cast<std::size_t>(i.v) *
                             static_cast<std::size_t>(k) +
                         static_cast<std::size_t>(j.v)];
  }

  /// Multi-line human-readable rendering.
  std::string to_string() const;
};

PartitionReport analyze_partition(const Hypergraph& h, const Partition& p);

}  // namespace hgr
