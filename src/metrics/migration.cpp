#include "metrics/migration.hpp"

#include <algorithm>
#include <tuple>

#include "common/assert.hpp"

namespace hgr {

Weight migration_volume(IdSpan<VertexId, const Weight> vertex_sizes,
                        const Partition& old_p, const Partition& new_p) {
  HGR_ASSERT(old_p.num_vertices() == new_p.num_vertices());
  HGR_ASSERT(vertex_sizes.ssize() == new_p.num_vertices());
  Weight total = 0;
  for (const VertexId v : new_p.vertices())
    if (old_p[v] != new_p[v]) total += vertex_sizes[v];
  return total;
}

Index num_migrated(const Partition& old_p, const Partition& new_p) {
  HGR_ASSERT(old_p.num_vertices() == new_p.num_vertices());
  Index count = 0;
  for (const VertexId v : new_p.vertices())
    if (old_p[v] != new_p[v]) ++count;
  return count;
}

std::vector<IdVector<PartId, Weight>> part_overlap_sizes(
    IdSpan<VertexId, const Weight> vertex_sizes, const Partition& old_p,
    const Partition& new_p) {
  HGR_ASSERT(old_p.num_vertices() == new_p.num_vertices());
  std::vector<IdVector<PartId, Weight>> overlap(
      static_cast<std::size_t>(old_p.k),
      IdVector<PartId, Weight>(new_p.k, 0));
  for (const VertexId v : new_p.vertices()) {
    overlap[static_cast<std::size_t>(old_p[v].v)][new_p[v]] +=
        vertex_sizes[v];
  }
  return overlap;
}

Partition remap_parts_for_migration(IdSpan<VertexId, const Weight> vertex_sizes,
                                    const Partition& old_p,
                                    const Partition& new_p) {
  HGR_ASSERT(old_p.k == new_p.k);
  const Index k = new_p.k;
  const auto overlap = part_overlap_sizes(vertex_sizes, old_p, new_p);

  // All (old, new) pairs sorted by descending overlap; greedy maximal
  // matching. Ties broken by indices for determinism.
  std::vector<std::tuple<Weight, PartId, PartId>> pairs;
  pairs.reserve(static_cast<std::size_t>(k) * static_cast<std::size_t>(k));
  for (const PartId i : part_range(k))
    for (const PartId j : part_range(k))
      pairs.emplace_back(overlap[static_cast<std::size_t>(i.v)][j], i, j);
  std::sort(pairs.begin(), pairs.end(), [](const auto& a, const auto& b) {
    if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) > std::get<0>(b);
    if (std::get<1>(a) != std::get<1>(b)) return std::get<1>(a) < std::get<1>(b);
    return std::get<2>(a) < std::get<2>(b);
  });

  IdVector<PartId, PartId> new_to_old(k, kNoPart);
  IdVector<PartId, bool> old_taken(k, false);
  for (const auto& [w, i, j] : pairs) {
    (void)w;
    if (old_taken[i]) continue;
    if (new_to_old[j] != kNoPart) continue;
    new_to_old[j] = i;
    old_taken[i] = true;
  }
  // Any unmatched new label gets an arbitrary free old label.
  for (const PartId j : part_range(k)) {
    if (new_to_old[j] == kNoPart) {
      for (const PartId i : part_range(k)) {
        if (!old_taken[i]) {
          new_to_old[j] = i;
          old_taken[i] = true;
          break;
        }
      }
    }
  }

  Partition out(k, new_p.num_vertices());
  for (const VertexId v : new_p.vertices()) out[v] = new_to_old[new_p[v]];
  return out;
}

}  // namespace hgr
