#include "metrics/migration.hpp"

#include <algorithm>
#include <tuple>

#include "common/assert.hpp"

namespace hgr {

Weight migration_volume(std::span<const Weight> vertex_sizes,
                        const Partition& old_p, const Partition& new_p) {
  HGR_ASSERT(old_p.num_vertices() == new_p.num_vertices());
  HGR_ASSERT(static_cast<Index>(vertex_sizes.size()) == new_p.num_vertices());
  Weight total = 0;
  for (Index v = 0; v < new_p.num_vertices(); ++v)
    if (old_p[v] != new_p[v]) total += vertex_sizes[static_cast<std::size_t>(v)];
  return total;
}

Index num_migrated(const Partition& old_p, const Partition& new_p) {
  HGR_ASSERT(old_p.num_vertices() == new_p.num_vertices());
  Index count = 0;
  for (Index v = 0; v < new_p.num_vertices(); ++v)
    if (old_p[v] != new_p[v]) ++count;
  return count;
}

std::vector<std::vector<Weight>> part_overlap_sizes(
    std::span<const Weight> vertex_sizes, const Partition& old_p,
    const Partition& new_p) {
  HGR_ASSERT(old_p.num_vertices() == new_p.num_vertices());
  std::vector<std::vector<Weight>> overlap(
      static_cast<std::size_t>(old_p.k),
      std::vector<Weight>(static_cast<std::size_t>(new_p.k), 0));
  for (Index v = 0; v < new_p.num_vertices(); ++v) {
    overlap[static_cast<std::size_t>(old_p[v])]
           [static_cast<std::size_t>(new_p[v])] +=
        vertex_sizes[static_cast<std::size_t>(v)];
  }
  return overlap;
}

Partition remap_parts_for_migration(std::span<const Weight> vertex_sizes,
                                    const Partition& old_p,
                                    const Partition& new_p) {
  HGR_ASSERT(old_p.k == new_p.k);
  const PartId k = new_p.k;
  const auto overlap = part_overlap_sizes(vertex_sizes, old_p, new_p);

  // All (old, new) pairs sorted by descending overlap; greedy maximal
  // matching. Ties broken by indices for determinism.
  std::vector<std::tuple<Weight, PartId, PartId>> pairs;
  pairs.reserve(static_cast<std::size_t>(k) * static_cast<std::size_t>(k));
  for (PartId i = 0; i < k; ++i)
    for (PartId j = 0; j < k; ++j)
      pairs.emplace_back(overlap[static_cast<std::size_t>(i)]
                                [static_cast<std::size_t>(j)],
                         i, j);
  std::sort(pairs.begin(), pairs.end(), [](const auto& a, const auto& b) {
    if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) > std::get<0>(b);
    if (std::get<1>(a) != std::get<1>(b)) return std::get<1>(a) < std::get<1>(b);
    return std::get<2>(a) < std::get<2>(b);
  });

  std::vector<PartId> new_to_old(static_cast<std::size_t>(k), kNoPart);
  std::vector<bool> old_taken(static_cast<std::size_t>(k), false);
  for (const auto& [w, i, j] : pairs) {
    (void)w;
    if (old_taken[static_cast<std::size_t>(i)]) continue;
    if (new_to_old[static_cast<std::size_t>(j)] != kNoPart) continue;
    new_to_old[static_cast<std::size_t>(j)] = i;
    old_taken[static_cast<std::size_t>(i)] = true;
  }
  // Any unmatched new label gets an arbitrary free old label.
  for (PartId j = 0; j < k; ++j) {
    if (new_to_old[static_cast<std::size_t>(j)] == kNoPart) {
      for (PartId i = 0; i < k; ++i) {
        if (!old_taken[static_cast<std::size_t>(i)]) {
          new_to_old[static_cast<std::size_t>(j)] = i;
          old_taken[static_cast<std::size_t>(i)] = true;
          break;
        }
      }
    }
  }

  Partition out(k, new_p.num_vertices());
  for (Index v = 0; v < new_p.num_vertices(); ++v)
    out[v] = new_to_old[static_cast<std::size_t>(new_p[v])];
  return out;
}

}  // namespace hgr
