#include "metrics/cut.hpp"

#include <vector>

namespace hgr {

namespace {

/// Scratch marker for counting distinct parts per net without clearing a
/// k-sized array per net: mark[part] == stamp means "seen for current net".
struct PartMarker {
  explicit PartMarker(Index k) : mark(k, -1) {}

  /// Returns true the first time a part is seen for the current stamp.
  bool mark_new(PartId part, Index stamp) {
    auto& m = mark[part];
    if (m == stamp) return false;
    m = stamp;
    return true;
  }

  IdVector<PartId, Index> mark;
};

}  // namespace

Index net_connectivity(const Hypergraph& h, const Partition& p, NetId net) {
  HGR_ASSERT(net.v >= 0 && net.v < h.num_nets());
  PartMarker marker(p.k);
  Index lambda = 0;
  for (const VertexId v : h.pins(net))
    if (marker.mark_new(p[v], 0)) ++lambda;
  return lambda;
}

Weight connectivity_cut_range(const Hypergraph& h, const Partition& p,
                              Index net_begin, Index net_end) {
  HGR_ASSERT(net_begin >= 0 && net_begin <= net_end &&
             net_end <= h.num_nets());
  HGR_ASSERT(p.num_vertices() == h.num_vertices());
  PartMarker marker(p.k);
  Weight total = 0;
  for (const NetId net : IdRange<NetId>(NetId{net_begin}, NetId{net_end})) {
    Index lambda = 0;
    for (const VertexId v : h.pins(net))
      if (marker.mark_new(p[v], net.v)) ++lambda;
    if (lambda > 1) total += h.net_cost(net) * (lambda - 1);
  }
  return total;
}

Weight connectivity_cut(const Hypergraph& h, const Partition& p) {
  return connectivity_cut_range(h, p, 0, h.num_nets());
}

Weight cut_net_cost(const Hypergraph& h, const Partition& p) {
  HGR_ASSERT(p.num_vertices() == h.num_vertices());
  Weight total = 0;
  for (const NetId net : h.nets()) {
    const auto ps = h.pins(net);
    if (ps.empty()) continue;
    const PartId first = p[ps.front()];
    for (const VertexId v : ps) {
      if (p[v] != first) {
        total += h.net_cost(net);
        break;
      }
    }
  }
  return total;
}

Index num_cut_nets(const Hypergraph& h, const Partition& p) {
  Index count = 0;
  for (const NetId net : h.nets()) {
    const auto ps = h.pins(net);
    if (ps.empty()) continue;
    const PartId first = p[ps.front()];
    for (const VertexId v : ps) {
      if (p[v] != first) {
        ++count;
        break;
      }
    }
  }
  return count;
}

Weight edge_cut(const Graph& g, const Partition& p) {
  HGR_ASSERT(p.num_vertices() == g.num_vertices());
  Weight total = 0;
  for (Index v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto ws = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] > v && p[VertexId{v}] != p[VertexId{nbrs[i]}]) total += ws[i];
    }
  }
  return total;
}

}  // namespace hgr
