#include "metrics/partition_io.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace hgr {

void write_partition(const Partition& p, std::ostream& out) {
  for (const VertexId v : p.vertices()) out << p[v] << '\n';
}

void write_partition_file(const Partition& p, const std::string& path) {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("cannot open " + path + " for writing");
  write_partition(p, out);
}

Partition read_partition(std::istream& in, Index num_vertices, Index k_hint) {
  // File-IO boundary: part ids arrive as raw integers and are validated
  // before entering the typed world through from_raw.
  Partition p(std::max<Index>(1, k_hint), num_vertices);
  long long max_seen = -1;
  for (const VertexId v : p.vertices()) {
    long long part;
    if (!(in >> part))
      throw std::runtime_error("partition file too short");
    if (part < 0 || (k_hint > 0 && part >= k_hint))
      throw std::runtime_error("part id out of range in partition file");
    p[v] = from_raw<PartId>(part);
    max_seen = std::max(max_seen, part);
  }
  if (k_hint <= 0) p.k = static_cast<Index>(max_seen + 1);
  return p;
}

Partition read_partition_file(const std::string& path, Index num_vertices,
                              Index k_hint) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_partition(in, num_vertices, k_hint);
}

}  // namespace hgr
