#include "metrics/partition_io.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace hgr {

void write_partition(const Partition& p, std::ostream& out) {
  for (Index v = 0; v < p.num_vertices(); ++v) out << p[v] << '\n';
}

void write_partition_file(const Partition& p, const std::string& path) {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("cannot open " + path + " for writing");
  write_partition(p, out);
}

Partition read_partition(std::istream& in, Index num_vertices,
                         PartId k_hint) {
  Partition p(std::max<PartId>(1, k_hint), num_vertices);
  PartId max_seen = -1;
  for (Index v = 0; v < num_vertices; ++v) {
    long long part;
    if (!(in >> part))
      throw std::runtime_error("partition file too short");
    if (part < 0 || (k_hint > 0 && part >= k_hint))
      throw std::runtime_error("part id out of range in partition file");
    p[v] = static_cast<PartId>(part);
    max_seen = std::max(max_seen, p[v]);
  }
  if (k_hint <= 0) p.k = max_seen + 1;
  return p;
}

Partition read_partition_file(const std::string& path, Index num_vertices,
                              PartId k_hint) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_partition(in, num_vertices, k_hint);
}

}  // namespace hgr
