#include "metrics/report.hpp"

#include <algorithm>
#include <tuple>
#include <cstdio>
#include <sstream>

#include "common/assert.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"

namespace hgr {

PartitionReport analyze_partition(const Hypergraph& h, const Partition& p) {
  HGR_ASSERT(p.num_vertices() == h.num_vertices());
  PartitionReport report;
  report.k = p.k;
  report.part_weight = part_weights(h.vertex_weights(), p);
  report.imbalance = imbalance_of(report.part_weight);
  report.part_vertices.assign(p.k, 0);
  for (const VertexId v : h.vertices()) ++report.part_vertices[p[v]];
  report.boundary_vertices.assign(p.k, 0);
  report.pairwise_comm.assign(
      static_cast<std::size_t>(p.k) * static_cast<std::size_t>(p.k), 0.0);

  IdVector<VertexId, bool> is_boundary(h.num_vertices(), false);
  std::vector<PartId> parts;
  for (const NetId net : h.nets()) {
    parts.clear();
    for (const VertexId v : h.pins(net)) {
      const PartId q = p[v];
      if (std::find(parts.begin(), parts.end(), q) == parts.end())
        parts.push_back(q);
    }
    const auto lambda = static_cast<Index>(parts.size());
    if (lambda <= 1) continue;
    report.total_cut += h.net_cost(net) * (lambda - 1);
    for (const VertexId v : h.pins(net)) is_boundary[v] = true;
    // Spread the net's volume over its spanned pairs.
    const double pairs =
        static_cast<double>(lambda) * (lambda - 1) / 2.0;
    const double share =
        static_cast<double>(h.net_cost(net)) * (lambda - 1) / pairs;
    for (std::size_t a = 0; a < parts.size(); ++a) {
      for (std::size_t b = a + 1; b < parts.size(); ++b) {
        const PartId i = std::min(parts[a], parts[b]);
        const PartId j = std::max(parts[a], parts[b]);
        report.pairwise_comm[static_cast<std::size_t>(i.v) *
                                 static_cast<std::size_t>(p.k) +
                             static_cast<std::size_t>(j.v)] += share;
      }
    }
  }
  for (const VertexId v : h.vertices())
    if (is_boundary[v]) ++report.boundary_vertices[p[v]];
  return report;
}

std::string PartitionReport::to_string() const {
  std::ostringstream out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "k=%d cut=%lld imbalance=%.4f\n%-6s %12s %10s %10s\n", k,
                static_cast<long long>(total_cut), imbalance, "part",
                "weight", "vertices", "boundary");
  out << line;
  for (const PartId q : part_range(k)) {
    std::snprintf(line, sizeof(line), "%-6d %12lld %10d %10d\n", q.v,
                  static_cast<long long>(part_weight[q]), part_vertices[q],
                  boundary_vertices[q]);
    out << line;
  }
  // Top pairwise channels.
  std::vector<std::tuple<double, PartId, PartId>> channels;
  for (const PartId i : part_range(k))
    for (const PartId j : IdRange<PartId>(PartId{i.v + 1}, PartId{k}))
      if (pair_comm(i, j) > 0) channels.emplace_back(pair_comm(i, j), i, j);
  std::sort(channels.rbegin(), channels.rend());
  const std::size_t show = std::min<std::size_t>(channels.size(), 8);
  if (show > 0) out << "heaviest channels:\n";
  for (std::size_t c = 0; c < show; ++c) {
    const auto& [vol, i, j] = channels[c];
    std::snprintf(line, sizeof(line), "  %d <-> %d : %.1f\n", i.v, j.v, vol);
    out << line;
  }
  return out.str();
}

}  // namespace hgr
