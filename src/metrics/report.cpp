#include "metrics/report.hpp"

#include <algorithm>
#include <tuple>
#include <cstdio>
#include <sstream>

#include "common/assert.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"

namespace hgr {

PartitionReport analyze_partition(const Hypergraph& h, const Partition& p) {
  HGR_ASSERT(p.num_vertices() == h.num_vertices());
  PartitionReport report;
  report.k = p.k;
  report.part_weight = part_weights(h.vertex_weights(), p);
  report.imbalance = imbalance_of(report.part_weight);
  report.part_vertices.assign(static_cast<std::size_t>(p.k), 0);
  for (Index v = 0; v < h.num_vertices(); ++v)
    ++report.part_vertices[static_cast<std::size_t>(p[v])];
  report.boundary_vertices.assign(static_cast<std::size_t>(p.k), 0);
  report.pairwise_comm.assign(
      static_cast<std::size_t>(p.k) * static_cast<std::size_t>(p.k), 0.0);

  std::vector<bool> is_boundary(static_cast<std::size_t>(h.num_vertices()),
                                false);
  std::vector<PartId> parts;
  for (Index net = 0; net < h.num_nets(); ++net) {
    parts.clear();
    for (const Index v : h.pins(net)) {
      const PartId q = p[v];
      if (std::find(parts.begin(), parts.end(), q) == parts.end())
        parts.push_back(q);
    }
    const auto lambda = static_cast<PartId>(parts.size());
    if (lambda <= 1) continue;
    report.total_cut += h.net_cost(net) * (lambda - 1);
    for (const Index v : h.pins(net))
      is_boundary[static_cast<std::size_t>(v)] = true;
    // Spread the net's volume over its spanned pairs.
    const double pairs =
        static_cast<double>(lambda) * (lambda - 1) / 2.0;
    const double share =
        static_cast<double>(h.net_cost(net)) * (lambda - 1) / pairs;
    for (std::size_t a = 0; a < parts.size(); ++a) {
      for (std::size_t b = a + 1; b < parts.size(); ++b) {
        const PartId i = std::min(parts[a], parts[b]);
        const PartId j = std::max(parts[a], parts[b]);
        report.pairwise_comm[static_cast<std::size_t>(i) *
                                 static_cast<std::size_t>(p.k) +
                             static_cast<std::size_t>(j)] += share;
      }
    }
  }
  for (Index v = 0; v < h.num_vertices(); ++v)
    if (is_boundary[static_cast<std::size_t>(v)])
      ++report.boundary_vertices[static_cast<std::size_t>(p[v])];
  return report;
}

std::string PartitionReport::to_string() const {
  std::ostringstream out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "k=%d cut=%lld imbalance=%.4f\n%-6s %12s %10s %10s\n", k,
                static_cast<long long>(total_cut), imbalance, "part",
                "weight", "vertices", "boundary");
  out << line;
  for (PartId q = 0; q < k; ++q) {
    std::snprintf(line, sizeof(line), "%-6d %12lld %10d %10d\n", q,
                  static_cast<long long>(
                      part_weight[static_cast<std::size_t>(q)]),
                  part_vertices[static_cast<std::size_t>(q)],
                  boundary_vertices[static_cast<std::size_t>(q)]);
    out << line;
  }
  // Top pairwise channels.
  std::vector<std::tuple<double, PartId, PartId>> channels;
  for (PartId i = 0; i < k; ++i)
    for (PartId j = i + 1; j < k; ++j)
      if (pair_comm(i, j) > 0) channels.emplace_back(pair_comm(i, j), i, j);
  std::sort(channels.rbegin(), channels.rend());
  const std::size_t show = std::min<std::size_t>(channels.size(), 8);
  if (show > 0) out << "heaviest channels:\n";
  for (std::size_t c = 0; c < show; ++c) {
    const auto& [vol, i, j] = channels[c];
    std::snprintf(line, sizeof(line), "  %d <-> %d : %.1f\n", i, j, vol);
    out << line;
  }
  return out.str();
}

}  // namespace hgr
