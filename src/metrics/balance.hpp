// Load-balance metrics (paper Eq. 1): a partition is balanced when every
// part weight W_p <= W_avg * (1 + eps).
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "metrics/partition.hpp"

namespace hgr {

/// Per-part total vertex weight, keyed by PartId.
IdVector<PartId, Weight> part_weights(
    IdSpan<VertexId, const Weight> vertex_weights, const Partition& p);

/// As part_weights, but fills an existing vector so per-level callers can
/// reuse its capacity (Workspace arena).
void part_weights_into(IdVector<PartId, Weight>& out,
                       IdSpan<VertexId, const Weight> vertex_weights,
                       const Partition& p);

/// max_p W_p / W_avg - 1 (0 == perfectly balanced). Returns 0 for empty.
double imbalance(IdSpan<VertexId, const Weight> vertex_weights,
                 const Partition& p);
double imbalance_of(const IdVector<PartId, Weight>& part_weights);

/// Eq. 1 check with tolerance eps.
bool is_balanced(IdSpan<VertexId, const Weight> vertex_weights,
                 const Partition& p, double eps);

/// Adapters for the untyped graph layer, whose vertex weights are plain
/// spans (graph vertices share the hypergraph's VertexId order).
inline IdVector<PartId, Weight> part_weights(std::span<const Weight> vw,
                                             const Partition& p) {
  return part_weights(IdSpan<VertexId, const Weight>(vw), p);
}
inline double imbalance(std::span<const Weight> vw, const Partition& p) {
  return imbalance(IdSpan<VertexId, const Weight>(vw), p);
}
inline bool is_balanced(std::span<const Weight> vw, const Partition& p,
                        double eps) {
  return is_balanced(IdSpan<VertexId, const Weight>(vw), p, eps);
}

/// Eq. 1 balance bound with ceil semantics: the largest weight a part may
/// hold, max(floor(W_avg * (1 + eps)), ceil(W_avg)). Plain truncation of
/// W_avg * (1 + eps) floors below ceil(W_avg) whenever the average is
/// fractional and eps is small, which rejects moves into parts that a
/// perfectly balanced partition must fill; some part always weighs at
/// least ceil(W_avg), so that is the tightest enforceable bound.
Weight max_part_weight(Weight total_weight, Index k, double epsilon);

}  // namespace hgr
