// Load-balance metrics (paper Eq. 1): a partition is balanced when every
// part weight W_p <= W_avg * (1 + eps).
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "metrics/partition.hpp"

namespace hgr {

/// Per-part total vertex weight.
std::vector<Weight> part_weights(std::span<const Weight> vertex_weights,
                                 const Partition& p);

/// max_p W_p / W_avg - 1 (0 == perfectly balanced). Returns 0 for empty.
double imbalance(std::span<const Weight> vertex_weights, const Partition& p);
double imbalance_of(const std::vector<Weight>& part_weights);

/// Eq. 1 check with tolerance eps.
bool is_balanced(std::span<const Weight> vertex_weights, const Partition& p,
                 double eps);

}  // namespace hgr
