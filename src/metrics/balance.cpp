#include "metrics/balance.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"

namespace hgr {

void part_weights_into(std::vector<Weight>& out,
                       std::span<const Weight> vertex_weights,
                       const Partition& p) {
  HGR_ASSERT(static_cast<Index>(vertex_weights.size()) == p.num_vertices());
  out.assign(static_cast<std::size_t>(p.k), 0);
  for (Index v = 0; v < p.num_vertices(); ++v) {
    const PartId part = p[v];
    HGR_ASSERT(part >= 0 && part < p.k);
    out[static_cast<std::size_t>(part)] +=
        vertex_weights[static_cast<std::size_t>(v)];
  }
}

std::vector<Weight> part_weights(std::span<const Weight> vertex_weights,
                                 const Partition& p) {
  std::vector<Weight> w;
  part_weights_into(w, vertex_weights, p);
  return w;
}

double imbalance_of(const std::vector<Weight>& pw) {
  if (pw.empty()) return 0.0;
  const Weight total = std::accumulate(pw.begin(), pw.end(), Weight{0});
  if (total == 0) return 0.0;
  const Weight maxw = *std::max_element(pw.begin(), pw.end());
  const double avg =
      static_cast<double>(total) / static_cast<double>(pw.size());
  return static_cast<double>(maxw) / avg - 1.0;
}

double imbalance(std::span<const Weight> vertex_weights, const Partition& p) {
  return imbalance_of(part_weights(vertex_weights, p));
}

bool is_balanced(std::span<const Weight> vertex_weights, const Partition& p,
                 double eps) {
  return imbalance(vertex_weights, p) <= eps + 1e-12;
}

Weight max_part_weight(Weight total_weight, PartId k, double epsilon) {
  HGR_ASSERT(k >= 1);
  HGR_ASSERT(epsilon >= 0.0);
  const double avg =
      static_cast<double>(total_weight) / static_cast<double>(k);
  const auto relaxed = static_cast<Weight>(avg * (1.0 + epsilon));
  const Weight ceil_avg =
      (total_weight + static_cast<Weight>(k) - 1) / static_cast<Weight>(k);
  return std::max(relaxed, ceil_avg);
}

}  // namespace hgr
