#include "metrics/balance.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"

namespace hgr {

void part_weights_into(IdVector<PartId, Weight>& out,
                       IdSpan<VertexId, const Weight> vertex_weights,
                       const Partition& p) {
  HGR_ASSERT(vertex_weights.ssize() == p.num_vertices());
  out.assign(p.k, 0);
  for (const VertexId v : p.vertices()) {
    const PartId part = p[v];
    HGR_ASSERT(part.v >= 0 && part.v < p.k);
    out[part] += vertex_weights[v];
  }
}

IdVector<PartId, Weight> part_weights(
    IdSpan<VertexId, const Weight> vertex_weights, const Partition& p) {
  IdVector<PartId, Weight> w;
  part_weights_into(w, vertex_weights, p);
  return w;
}

double imbalance_of(const IdVector<PartId, Weight>& pw) {
  if (pw.empty()) return 0.0;
  const Weight total = std::accumulate(pw.begin(), pw.end(), Weight{0});
  if (total == 0) return 0.0;
  const Weight maxw = *std::max_element(pw.begin(), pw.end());
  const double avg =
      static_cast<double>(total) / static_cast<double>(pw.size());
  return static_cast<double>(maxw) / avg - 1.0;
}

double imbalance(IdSpan<VertexId, const Weight> vertex_weights,
                 const Partition& p) {
  return imbalance_of(part_weights(vertex_weights, p));
}

bool is_balanced(IdSpan<VertexId, const Weight> vertex_weights,
                 const Partition& p, double eps) {
  return imbalance(vertex_weights, p) <= eps + 1e-12;
}

Weight max_part_weight(Weight total_weight, Index k, double epsilon) {
  HGR_ASSERT(k >= 1);
  HGR_ASSERT(epsilon >= 0.0);
  const double avg =
      static_cast<double>(total_weight) / static_cast<double>(k);
  const auto relaxed = static_cast<Weight>(avg * (1.0 + epsilon));
  const Weight ceil_avg =
      (total_weight + static_cast<Weight>(k) - 1) / static_cast<Weight>(k);
  return std::max(relaxed, ceil_avg);
}

}  // namespace hgr
