// Cut-size metrics (paper Section 2.1).
//
// The paper's objective is the connectivity-1 ("k-1") cut, Eq. 2:
//   cuts(H, P) = sum over nets of  c_j * (lambda_j - 1),
// which equals the true communication volume of the modeled computation.
#pragma once

#include "hypergraph/graph.hpp"
#include "hypergraph/hypergraph.hpp"
#include "metrics/partition.hpp"

namespace hgr {

/// Number of distinct parts the net's pins touch (lambda_j in the paper).
/// A count of parts, not a part id.
Index net_connectivity(const Hypergraph& h, const Partition& p, NetId net);

/// Eq. 2: sum of cost * (connectivity - 1) over all nets.
Weight connectivity_cut(const Hypergraph& h, const Partition& p);

/// Same sum restricted to nets [net_begin, net_end): used to split the
/// augmented repartitioning hypergraph's cut into its communication part
/// (original nets) and migration part (appended migration nets).
Weight connectivity_cut_range(const Hypergraph& h, const Partition& p,
                              Index net_begin, Index net_end);

/// Cut-net metric: sum of costs of nets with connectivity > 1 (not the
/// paper's objective; provided for comparison and ablation).
Weight cut_net_cost(const Hypergraph& h, const Partition& p);

/// Number of nets with connectivity > 1.
Index num_cut_nets(const Hypergraph& h, const Partition& p);

/// Standard graph edge cut: sum of weights of edges crossing parts.
Weight edge_cut(const Graph& g, const Partition& p);

}  // namespace hgr
