// Optimal part relabeling via the Hungarian algorithm.
//
// The paper relabels from-scratch partitions with "a maximal matching
// heuristic" (implemented in metrics/migration.*). Relabeling is exactly a
// linear assignment problem — maximize retained (non-migrated) data over
// all label permutations — so the Hungarian algorithm gives the true
// optimum in O(k^3), trivially affordable for k <= 1024. Exposed to
// quantify the heuristic's gap (bench/ablation_design_choices) and for
// users who want the last few percent.
#pragma once

#include <span>

#include "common/types.hpp"
#include "metrics/partition.hpp"

namespace hgr {

/// Like remap_parts_for_migration, but optimal: the returned relabeling of
/// new_p minimizes migration volume from old_p over all k! label
/// permutations.
Partition remap_parts_optimal(std::span<const Weight> vertex_sizes,
                              const Partition& old_p, const Partition& new_p);

/// Solve max-weight perfect assignment on a k x k matrix (row r ->
/// column assignment[r]). Exposed for tests.
std::vector<Index> max_assignment(const std::vector<std::vector<Weight>>& w);

}  // namespace hgr
