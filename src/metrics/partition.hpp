// A k-way partition: part assignment per vertex.
#pragma once

#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace hgr {

struct Partition {
  PartId k = 0;
  std::vector<PartId> assignment;  // one entry per vertex, in [0, k)

  Partition() = default;
  Partition(PartId num_parts, Index num_vertices, PartId initial = 0)
      : k(num_parts),
        assignment(static_cast<std::size_t>(num_vertices), initial) {}

  Index num_vertices() const { return static_cast<Index>(assignment.size()); }

  PartId operator[](Index v) const {
    HGR_DASSERT(v >= 0 && v < num_vertices());
    return assignment[static_cast<std::size_t>(v)];
  }
  PartId& operator[](Index v) {
    HGR_DASSERT(v >= 0 && v < num_vertices());
    return assignment[static_cast<std::size_t>(v)];
  }

  /// Abort if any vertex is unassigned or out of range.
  void validate() const {
    for (const PartId p : assignment)
      HGR_ASSERT_MSG(p >= 0 && p < k, "vertex not assigned to a valid part");
  }
};

}  // namespace hgr
