// A k-way partition: part assignment per vertex.
//
// The assignment is an IdVector keyed by VertexId holding PartId values —
// the flagship strongly-typed array: indexing it with a net id, or writing
// a raw integer into it, is a compile error (common/types.hpp).
#pragma once

#include "common/assert.hpp"
#include "common/types.hpp"

namespace hgr {

struct Partition {
  Index k = 0;  // number of parts (a count, not an id)
  IdVector<VertexId, PartId> assignment;  // one entry per vertex, in [0, k)

  Partition() = default;
  Partition(Index num_parts, Index num_vertices, PartId initial = PartId{0})
      : k(num_parts), assignment(num_vertices, initial) {}

  Index num_vertices() const { return assignment.ssize(); }

  /// The vertex ids [0, num_vertices()) / part ids [0, k).
  IdRange<VertexId> vertices() const { return assignment.ids(); }
  IdRange<PartId> parts() const { return part_range(k); }

  PartId operator[](VertexId v) const { return assignment[v]; }
  PartId& operator[](VertexId v) { return assignment[v]; }

  /// Abort if any vertex is unassigned or out of range.
  void validate() const {
    for (const PartId p : assignment)
      HGR_ASSERT_MSG(p.v >= 0 && p.v < k, "vertex not assigned to a valid part");
  }
};

}  // namespace hgr
