// The paper's total-cost model (Section 1-3):
//
//   t_tot = alpha * (t_comp + t_comm) + t_mig + t_repart
//
// with t_comp balanced away and t_repart ignored, the minimized objective is
//   alpha * t_comm + t_mig.
//
// The figures report the *normalized* total cost
//   comm_volume + migration_volume / alpha
// (i.e. total cost divided by alpha), stacked into its two components.
#pragma once

#include "hypergraph/graph.hpp"
#include "hypergraph/hypergraph.hpp"
#include "metrics/partition.hpp"

namespace hgr {

struct RepartitionCost {
  Weight comm_volume = 0;       // connectivity-1 cut of the epoch hypergraph
  Weight migration_volume = 0;  // size of data moved old -> new
  Weight alpha = 1;             // iterations per epoch

  /// alpha * comm + mig: the objective the repartitioner minimizes.
  Weight total() const { return alpha * comm_volume + migration_volume; }

  /// comm + mig/alpha: what the paper's bar charts plot.
  double normalized_total() const {
    return static_cast<double>(comm_volume) +
           static_cast<double>(migration_volume) / static_cast<double>(alpha);
  }
};

/// Evaluate a repartitioning decision on an epoch hypergraph.
RepartitionCost evaluate_repartition(const Hypergraph& h,
                                     const Partition& old_p,
                                     const Partition& new_p, Weight alpha);

/// Graph-model equivalent (comm volume = edge cut), for the baselines.
RepartitionCost evaluate_repartition(const Graph& g, const Partition& old_p,
                                     const Partition& new_p, Weight alpha);

}  // namespace hgr
