#include "metrics/remap_optimal.hpp"

#include <limits>
#include <vector>

#include "common/assert.hpp"
#include "metrics/migration.hpp"

namespace hgr {

// Hungarian algorithm (Jonker-style O(n^3) shortest augmenting paths),
// formulated for minimization; maximization negates the weights.
std::vector<Index> max_assignment(const std::vector<std::vector<Weight>>& w) {
  const auto n = static_cast<Index>(w.size());
  HGR_ASSERT(n > 0);
  for (const auto& row : w)
    HGR_ASSERT(static_cast<Index>(row.size()) == n);

  constexpr Weight kInf = std::numeric_limits<Weight>::max() / 4;
  // 1-based potentials/arrays per the classic formulation.
  std::vector<Weight> u(static_cast<std::size_t>(n) + 1, 0);
  std::vector<Weight> v(static_cast<std::size_t>(n) + 1, 0);
  std::vector<Index> way(static_cast<std::size_t>(n) + 1, 0);
  std::vector<Index> col_of(static_cast<std::size_t>(n) + 1, 0);  // col->row

  const auto cost = [&](Index row, Index col) {
    // Minimize the negated retained volume.
    return -w[static_cast<std::size_t>(row - 1)][static_cast<std::size_t>(
        col - 1)];
  };

  for (Index row = 1; row <= n; ++row) {
    col_of[0] = row;
    Index j0 = 0;
    std::vector<Weight> minv(static_cast<std::size_t>(n) + 1, kInf);
    std::vector<bool> used(static_cast<std::size_t>(n) + 1, false);
    do {
      used[static_cast<std::size_t>(j0)] = true;
      const Index i0 = col_of[static_cast<std::size_t>(j0)];
      Weight delta = kInf;
      Index j1 = 0;
      for (Index j = 1; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) continue;
        const Weight cur = cost(i0, j) - u[static_cast<std::size_t>(i0)] -
                           v[static_cast<std::size_t>(j)];
        if (cur < minv[static_cast<std::size_t>(j)]) {
          minv[static_cast<std::size_t>(j)] = cur;
          way[static_cast<std::size_t>(j)] = j0;
        }
        if (minv[static_cast<std::size_t>(j)] < delta) {
          delta = minv[static_cast<std::size_t>(j)];
          j1 = j;
        }
      }
      for (Index j = 0; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) {
          u[static_cast<std::size_t>(
              col_of[static_cast<std::size_t>(j)])] += delta;
          v[static_cast<std::size_t>(j)] -= delta;
        } else {
          minv[static_cast<std::size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (col_of[static_cast<std::size_t>(j0)] != 0);
    // Augment along the path.
    do {
      const Index j1 = way[static_cast<std::size_t>(j0)];
      col_of[static_cast<std::size_t>(j0)] =
          col_of[static_cast<std::size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<Index> assignment(static_cast<std::size_t>(n), kInvalidIndex);
  for (Index j = 1; j <= n; ++j) {
    const Index row = col_of[static_cast<std::size_t>(j)];
    if (row >= 1)
      assignment[static_cast<std::size_t>(row - 1)] = j - 1;
  }
  for (const Index a : assignment) HGR_ASSERT(a != kInvalidIndex);
  return assignment;
}

Partition remap_parts_optimal(std::span<const Weight> vertex_sizes,
                              const Partition& old_p,
                              const Partition& new_p) {
  HGR_ASSERT(old_p.k == new_p.k);
  const Index k = new_p.k;
  const auto overlap = part_overlap_sizes(
      IdSpan<VertexId, const Weight>(vertex_sizes), old_p, new_p);
  // Row = old label, column = new label; maximize retained volume, then
  // read off new->old. The Hungarian solver is a generic matrix routine,
  // so the typed overlap rows are lowered to a plain matrix here.
  std::vector<std::vector<Weight>> w;
  w.reserve(overlap.size());
  // hgr-lint: raw-ok (assignment solver works on a plain cost matrix)
  for (const auto& row : overlap) w.push_back(row.raw());
  const std::vector<Index> old_to_new = max_assignment(w);
  IdVector<PartId, PartId> new_to_old(k, kNoPart);
  for (const PartId i : part_range(k))
    new_to_old[PartId{old_to_new[static_cast<std::size_t>(i.v)]}] = i;

  Partition out(k, new_p.num_vertices());
  for (const VertexId v : new_p.vertices()) out[v] = new_to_old[new_p[v]];
  return out;
}

}  // namespace hgr
