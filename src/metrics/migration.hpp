// Migration-cost metrics: the data volume that must move when the partition
// changes (objective 3 in the paper's introduction), and the scratch-remap
// part-relabeling heuristic the paper applies to the from-scratch methods
// ("we used a maximal matching heuristic in Zoltan to map partition numbers
// to reduce migration cost").
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "metrics/partition.hpp"

namespace hgr {

/// Sum of vertex sizes over vertices whose part changed.
Weight migration_volume(IdSpan<VertexId, const Weight> vertex_sizes,
                        const Partition& old_p, const Partition& new_p);

/// Number of vertices whose part changed.
Index num_migrated(const Partition& old_p, const Partition& new_p);

/// overlap[i][j] = total size of vertices in old part i and new part j.
std::vector<IdVector<PartId, Weight>> part_overlap_sizes(
    IdSpan<VertexId, const Weight> vertex_sizes, const Partition& old_p,
    const Partition& new_p);

/// Relabel new_p's parts to maximize the retained (non-migrated) data size,
/// via greedy maximal matching on the overlap matrix: repeatedly pick the
/// heaviest unmatched (old part, new part) pair and map that new label to
/// that old label. Returns the permuted partition; never increases
/// migration volume relative to new_p.
Partition remap_parts_for_migration(IdSpan<VertexId, const Weight> vertex_sizes,
                                    const Partition& old_p,
                                    const Partition& new_p);

/// Untyped adapters for the graph layer.
inline Weight migration_volume(std::span<const Weight> vertex_sizes,
                               const Partition& old_p,
                               const Partition& new_p) {
  return migration_volume(IdSpan<VertexId, const Weight>(vertex_sizes), old_p,
                          new_p);
}
inline Partition remap_parts_for_migration(std::span<const Weight> vertex_sizes,
                                           const Partition& old_p,
                                           const Partition& new_p) {
  return remap_parts_for_migration(
      IdSpan<VertexId, const Weight>(vertex_sizes), old_p, new_p);
}

}  // namespace hgr
