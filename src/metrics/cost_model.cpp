#include "metrics/cost_model.hpp"

#include "metrics/cut.hpp"
#include "metrics/migration.hpp"

namespace hgr {

RepartitionCost evaluate_repartition(const Hypergraph& h,
                                     const Partition& old_p,
                                     const Partition& new_p, Weight alpha) {
  RepartitionCost cost;
  cost.alpha = alpha;
  cost.comm_volume = connectivity_cut(h, new_p);
  cost.migration_volume = migration_volume(h.vertex_sizes(), old_p, new_p);
  return cost;
}

RepartitionCost evaluate_repartition(const Graph& g, const Partition& old_p,
                                     const Partition& new_p, Weight alpha) {
  RepartitionCost cost;
  cost.alpha = alpha;
  cost.comm_volume = edge_cut(g, new_p);
  cost.migration_volume = migration_volume(g.vertex_sizes(), old_p, new_p);
  return cost;
}

}  // namespace hgr
