#include "parallel/comm_telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <utility>

#include "common/assert.hpp"

namespace hgr {

const char* collective_kind_name(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kBarrier:
      return "barrier";
    case CollectiveKind::kAllgather:
      return "allgather";
    case CollectiveKind::kAllreduce:
      return "allreduce";
    case CollectiveKind::kBcast:
      return "bcast";
    case CollectiveKind::kAlltoallv:
      return "alltoallv";
  }
  return "unknown";
}

void CommTelemetry::resize(int n) {
  HGR_ASSERT(n >= 0);
  num_ranks = n;
  ranks.assign(static_cast<std::size_t>(n), RankCommTelemetry{});
  p2p_bytes.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                   0);
  p2p_messages.assign(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);
}

void CommTelemetry::accumulate(const CommTelemetry& other) {
  if (other.num_ranks > num_ranks) {
    // Expand in place: rebuild the row-major matrices at the new width.
    CommTelemetry grown;
    grown.resize(other.num_ranks);
    for (int r = 0; r < num_ranks; ++r) {
      grown.ranks[static_cast<std::size_t>(r)] =
          ranks[static_cast<std::size_t>(r)];
      for (int d = 0; d < num_ranks; ++d) {
        grown.p2p_bytes_at(r, d) = p2p_bytes_at(r, d);
        grown.p2p_messages[static_cast<std::size_t>(r) *
                               static_cast<std::size_t>(grown.num_ranks) +
                           static_cast<std::size_t>(d)] =
            p2p_messages_at(r, d);
      }
    }
    grown.run_seconds = run_seconds;
    grown.runs = runs;
    *this = std::move(grown);
  }
  for (int r = 0; r < other.num_ranks; ++r) {
    RankCommTelemetry& mine = ranks[static_cast<std::size_t>(r)];
    const RankCommTelemetry& theirs =
        other.ranks[static_cast<std::size_t>(r)];
    mine.bytes_sent += theirs.bytes_sent;
    mine.bytes_recv += theirs.bytes_recv;
    mine.messages_sent += theirs.messages_sent;
    mine.messages_recv += theirs.messages_recv;
    mine.recv_wait_seconds += theirs.recv_wait_seconds;
    mine.barrier_wait_seconds += theirs.barrier_wait_seconds;
    for (std::size_t k = 0; k < kNumCollectiveKinds; ++k)
      mine.collective_calls[k] += theirs.collective_calls[k];
    for (int d = 0; d < other.num_ranks; ++d) {
      p2p_bytes_at(r, d) += other.p2p_bytes_at(r, d);
      p2p_messages[static_cast<std::size_t>(r) *
                       static_cast<std::size_t>(num_ranks) +
                   static_cast<std::size_t>(d)] +=
          other.p2p_messages_at(r, d);
    }
  }
  run_seconds += other.run_seconds;
  runs += other.runs;
}

double CommTelemetry::send_byte_imbalance() const {
  if (ranks.empty()) return 0.0;
  std::uint64_t total = 0;
  std::uint64_t max = 0;
  for (const RankCommTelemetry& r : ranks) {
    total += r.bytes_sent;
    max = std::max(max, r.bytes_sent);
  }
  if (total == 0) return 0.0;
  const double avg =
      static_cast<double>(total) / static_cast<double>(ranks.size());
  return static_cast<double>(max) / avg;
}

double CommTelemetry::max_wait_fraction() const {
  if (run_seconds <= 0.0) return 0.0;
  double max = 0.0;
  for (const RankCommTelemetry& r : ranks)
    max = std::max(max, (r.recv_wait_seconds + r.barrier_wait_seconds) /
                            run_seconds);
  return max;
}

namespace {

void append_u64_array(std::string& out, const std::vector<std::uint64_t>& v,
                      int width) {
  // Emit a row-major matrix as an array of rows so the JSON is readable.
  out += '[';
  for (int r = 0; r * width < static_cast<int>(v.size()); ++r) {
    if (r != 0) out += ',';
    out += '[';
    for (int c = 0; c < width; ++c) {
      if (c != 0) out += ',';
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(
                        v[static_cast<std::size_t>(r) *
                              static_cast<std::size_t>(width) +
                          static_cast<std::size_t>(c)]));
      out += buf;
    }
    out += ']';
  }
  out += ']';
}

}  // namespace

std::string CommTelemetry::to_json() const {
  std::string out;
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "{\"num_ranks\":%d,\"runs\":%llu,\"run_seconds\":%.9g,",
                num_ranks, static_cast<unsigned long long>(runs),
                run_seconds);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "\"send_byte_imbalance\":%.6g,\"max_wait_fraction\":%.6g,",
                send_byte_imbalance(), max_wait_fraction());
  out += buf;
  out += "\"ranks\":[";
  for (int r = 0; r < num_ranks; ++r) {
    const RankCommTelemetry& t = ranks[static_cast<std::size_t>(r)];
    if (r != 0) out += ',';
    std::snprintf(buf, sizeof(buf), "{\"rank\":%d,\"bytes_sent\":%llu,", r,
                  static_cast<unsigned long long>(t.bytes_sent));
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"bytes_recv\":%llu,\"messages_sent\":%llu,",
                  static_cast<unsigned long long>(t.bytes_recv),
                  static_cast<unsigned long long>(t.messages_sent));
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"messages_recv\":%llu,\"recv_wait_seconds\":%.9g,",
                  static_cast<unsigned long long>(t.messages_recv),
                  t.recv_wait_seconds);
    out += buf;
    std::snprintf(buf, sizeof(buf), "\"barrier_wait_seconds\":%.9g,",
                  t.barrier_wait_seconds);
    out += buf;
    const double wait_fraction =
        run_seconds > 0.0
            ? (t.recv_wait_seconds + t.barrier_wait_seconds) / run_seconds
            : 0.0;
    std::snprintf(buf, sizeof(buf), "\"wait_fraction\":%.6g,", wait_fraction);
    out += buf;
    out += "\"collectives\":{";
    for (std::size_t k = 0; k < kNumCollectiveKinds; ++k) {
      if (k != 0) out += ',';
      std::snprintf(buf, sizeof(buf), "\"%s\":%llu",
                    collective_kind_name(static_cast<CollectiveKind>(k)),
                    static_cast<unsigned long long>(t.collective_calls[k]));
      out += buf;
    }
    out += "}}";
  }
  out += "],\"p2p_bytes\":";
  append_u64_array(out, p2p_bytes, num_ranks);
  out += ",\"p2p_messages\":";
  append_u64_array(out, p2p_messages, num_ranks);
  out += '}';
  return out;
}

namespace {

std::mutex g_telemetry_mutex;
CommTelemetry g_telemetry;  // guarded by g_telemetry_mutex

}  // namespace

void accumulate_comm_telemetry(const CommTelemetry& run) {
  std::lock_guard lock(g_telemetry_mutex);
  g_telemetry.accumulate(run);
}

CommTelemetry comm_telemetry_snapshot() {
  std::lock_guard lock(g_telemetry_mutex);
  return g_telemetry;
}

void reset_comm_telemetry() {
  std::lock_guard lock(g_telemetry_mutex);
  g_telemetry = CommTelemetry{};
}

}  // namespace hgr
