#include "parallel/par_partitioner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "check/validate.hpp"
#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "common/workspace.hpp"
#include "core/repartition_model.hpp"
#include "obs/critical_path.hpp"
#include "obs/trace.hpp"
#include "parallel/par_coarsen.hpp"
#include "parallel/par_initial.hpp"
#include "parallel/par_ipm.hpp"
#include "parallel/par_refine.hpp"
#include "partition/partitioner.hpp"  // record_coarsen_level

namespace hgr {

ParallelPartitionResult parallel_partition_hypergraph(
    const Hypergraph& h, const ParallelPartitionConfig& cfg) {
  HGR_ASSERT(cfg.num_ranks >= 1);
  HGR_ASSERT(cfg.base.num_parts >= 1);
  h.validate(cfg.base.num_parts);

  ParallelPartitionResult result;
  result.partition =
      Partition(cfg.base.num_parts, h.num_vertices(), PartId{0});
  if (cfg.base.num_parts == 1 || h.num_vertices() == 0) return result;

  WallTimer timer;
  Comm comm(cfg.num_ranks);
  comm.set_deadlock_timeout(cfg.deadlock_timeout);
  comm.set_fault_plan(cfg.base.fault_plan);
  std::mutex out_mutex;
  // Epoch span for critical-path attribution: allocated by the lead rank,
  // propagated to the others through the comm exchange window (a plain
  // broadcast), closed after the join once every rank's records are in.
  std::atomic<std::uint64_t> epoch_span{0};

  comm.run([&](RankContext& ctx) {
    // Every rank opens the phase scopes: same-named scopes merge into one
    // node with calls == p, seconds == sum over ranks (cpu-seconds), and
    // max_seconds as the representative per-rank wall time — max-min is
    // the skew the per-rank timeline (events.hpp) drills into.
    const bool lead = ctx.rank() == 0;
    obs::TraceScope run_scope("par_partition");

    const std::vector<std::uint64_t> span_buf = ctx.bcast(
        std::vector<std::uint64_t>{lead ? obs::begin_epoch_span() : 0}, 0);
    const std::uint64_t span = span_buf.empty() ? 0 : span_buf[0];
    if (lead) epoch_span.store(span, std::memory_order_relaxed);
    // Blocked time already accrued by this rank; per-phase deltas below
    // separate "computing" from "waiting on a peer" per span phase.
    const auto blocked_seconds = [&ctx] {
      const CommStats& s = ctx.stats();
      return s.recv_wait_seconds + s.barrier_wait_seconds;
    };

    // Rank-local scratch arena: each rank's kernels (contraction, the
    // serial partitioner behind the coarse step) reuse capacity across
    // levels. Never shared across ranks; thread-parallel kernels inside
    // this rank use per-thread sub-arenas of it. When cfg asks for
    // shared-memory threads, the arena carries this rank's own pool —
    // ranks x threads compose (docs/PARALLELISM.md).
    Workspace ws;
    std::optional<ThreadPool> thread_pool;
    if (cfg.base.num_threads > 1) {
      thread_pool.emplace(static_cast<int>(cfg.base.num_threads));
      ws.set_pool(&*thread_pool);
    }

    const Index stop_size =
        std::max<Index>(cfg.base.coarsen_to, 2 * cfg.base.num_parts);
    const Weight max_vertex_weight = std::max<Weight>(
        1,
        static_cast<Weight>(cfg.base.max_coarse_weight_factor *
                            static_cast<double>(h.total_vertex_weight()) /
                            std::max<Index>(1, stop_size)));

    // Coarsening: every rank holds the (replicated) current level; the
    // matching itself is computed cooperatively and is identical on all
    // ranks, so contraction is too (parallel_contract asserts it).
    std::vector<CoarseLevel> levels;
    const Hypergraph* current = &h;
    {
      obs::TraceScope coarsen_scope("coarsen");
      WallTimer phase_timer;
      const double wait_before = blocked_seconds();
      for (Index level = 0; level < cfg.base.max_levels; ++level) {
        if (current->num_vertices() <= stop_size) break;
        const std::uint64_t level_seed =
            derive_seed(cfg.base.seed, static_cast<std::uint64_t>(level));
        const std::vector<Index> match =
            cfg.local_matching
                ? local_ipm_matching(ctx, *current, cfg.base,
                                     max_vertex_weight, level_seed)
                : parallel_ipm_matching(ctx, *current, cfg.base,
                                        max_vertex_weight, level_seed);
        CoarseLevel next = parallel_contract(ctx, *current, match, &ws);
        const double reduction =
            1.0 - static_cast<double>(next.coarse.num_vertices()) /
                      static_cast<double>(current->num_vertices());
        if (reduction < cfg.base.min_coarsen_reduction) break;
        // Only the lead rank validates: the level is replicated and
        // parallel_contract already checksums cross-rank agreement.
        if (lead) {
          record_coarsen_level(
              current->num_vertices(), next.coarse.num_vertices(),
              IdSpan<VertexId, const VertexId>(from_raw_span<VertexId>(match)));
          check::validate_coarsening(*current, next, cfg.base.check_level);
        }
        levels.push_back(std::move(next));
        current = &levels.back().coarse;
      }
      obs::record_rank_phase(span, ctx.rank(), "coarsen",
                             phase_timer.seconds(),
                             blocked_seconds() - wait_before);
    }

    // Coarse partitioning: every rank tries its own seed; best wins.
    Partition p(cfg.base.num_parts, current->num_vertices());
    {
      obs::TraceScope initial_scope("initial");
      WallTimer phase_timer;
      const double wait_before = blocked_seconds();
      p = parallel_coarse_partition(ctx, *current, cfg.base,
                                    derive_seed(cfg.base.seed, 5000), &ws);
      obs::record_rank_phase(span, ctx.rank(), "initial",
                             phase_timer.seconds(),
                             blocked_seconds() - wait_before);
    }

    // Uncoarsening with synchronized localized refinement.
    {
      obs::TraceScope refine_scope("refine");
      WallTimer phase_timer;
      const double wait_before = blocked_seconds();
      parallel_refine(ctx, *current, p, cfg.base,
                      derive_seed(cfg.base.seed, 6000));
      for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
        const Hypergraph& finer =
            (std::next(it) == levels.rend()) ? h : std::next(it)->coarse;
        if (lead)
          check::validate_coarsening(finer, *it, cfg.base.check_level, &p);
        Partition fine_p(cfg.base.num_parts, finer.num_vertices());
        for (const VertexId v : finer.vertices())
          fine_p[v] = p[it->fine_to_coarse[v]];
        p = std::move(fine_p);
        parallel_refine(
            ctx, finer, p, cfg.base,
            derive_seed(cfg.base.seed,
                        6001 + static_cast<std::uint64_t>(
                                   std::distance(levels.rbegin(), it))));
      }
      obs::record_rank_phase(span, ctx.rank(), "refine",
                             phase_timer.seconds(),
                             blocked_seconds() - wait_before);
    }

    if (lead) {
      obs::counter("par_partition.levels") +=
          static_cast<std::uint64_t>(levels.size());
      std::lock_guard lock(out_mutex);
      result.partition = std::move(p);
      result.levels = static_cast<Index>(levels.size());
    }
  });

  // All ranks have joined: close the span and publish the attribution.
  if (const std::uint64_t span = epoch_span.load(std::memory_order_relaxed);
      span != 0)
    obs::end_epoch_span(span);

  result.seconds = timer.seconds();
  result.traffic = comm.total_stats();

  result.partition.validate();
  if (h.has_fixed()) {
    for (const VertexId v : h.vertices()) {
      const PartId f = h.fixed_part(v);
      HGR_ASSERT_MSG(f == kNoPart || result.partition[v] == f,
                     "parallel partitioner violated a fixed constraint");
    }
  }
  {
    check::PartitionExpectations expect;
    expect.epsilon = cfg.base.epsilon;
    expect.context = "par_partition";
    check::validate_partition(h, result.partition, cfg.base.check_level,
                              expect);
  }
  return result;
}

ParallelPartitionResult parallel_hypergraph_repartition(
    const Hypergraph& h, const Partition& old_p, Weight alpha,
    const ParallelPartitionConfig& cfg) {
  HGR_ASSERT(old_p.k == cfg.base.num_parts);
  WallTimer timer;
  const RepartitionModel model = build_repartition_model(h, old_p, alpha);
  ParallelPartitionResult augmented =
      parallel_partition_hypergraph(model.augmented, cfg);
  ParallelPartitionResult result;
  result.partition = decode_augmented_partition(model, augmented.partition);
  result.traffic = augmented.traffic;
  result.levels = augmented.levels;
  result.seconds = timer.seconds();
  return result;
}

}  // namespace hgr
