// Parallel coarsening step: contraction of a replicated hypergraph by a
// replicated matching, plus a cross-rank consistency check.
#pragma once

#include <span>

#include "hypergraph/hypergraph.hpp"
#include "parallel/comm.hpp"
#include "partition/contract.hpp"

namespace hgr {

/// Contract `h` by `match` (identical on every rank — the postcondition of
/// parallel_ipm_matching) and verify with an all-reduce that every rank
/// produced the same coarse hypergraph. Aborts on divergence, which would
/// indicate a nondeterministic code path. `ws` (optional, rank-local) pools
/// the contraction scratch across levels.
CoarseLevel parallel_contract(RankContext& ctx, const Hypergraph& h,
                              std::span<const Index> match,
                              Workspace* ws = nullptr);

/// Structural checksum used by the consistency check (exposed for tests).
std::uint64_t hypergraph_checksum(const Hypergraph& h);

}  // namespace hgr
