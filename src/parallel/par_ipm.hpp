// Parallel inner-product matching with fixed vertices (paper §4.1).
//
// "The parallel implementation of IPM works in rounds where in each round,
// each processor selects a subset of vertices as candidate vertices that
// will be matched in that round. The candidate vertices are sent to all
// processors. Then all processors concurrently contribute the computation
// of their best match for those candidates. Matching is finalized by
// selecting a global best match for each candidate."
//
// Data layout substitution (documented in DESIGN.md): Zoltan distributes
// the hypergraph 2D; here the structure is replicated and the *vertices*
// are 1D block-distributed — each rank owns a contiguous vertex range,
// proposes candidates from it, and scores candidates only against its own
// unmatched vertices. The round structure, candidate broadcast,
// global-best reduction, and fixed-vertex matching constraint are the
// paper's; the byte traffic of the candidate and proposal exchanges is
// counted by the communicator.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "hypergraph/hypergraph.hpp"
#include "parallel/comm.hpp"
#include "partition/config.hpp"

namespace hgr {

/// Block distribution: owner of vertex v among `size` ranks; rank r holds
/// [r*n/size, (r+1)*n/size). Computed as the largest r whose range starts
/// at or before v.
inline int block_owner(Index v, Index n, int size) {
  if (n <= 0) return 0;
  int r = static_cast<int>((static_cast<std::int64_t>(v) * size) / n);
  // Integer rounding can land one rank off; nudge into the true range.
  while (r > 0 && static_cast<std::int64_t>(n) * r / size > v) --r;
  while (r + 1 < size && static_cast<std::int64_t>(n) * (r + 1) / size <= v)
    ++r;
  return r;
}

/// Vertex range owned by rank r.
inline std::pair<Index, Index> block_range(Index n, int size, int r) {
  const auto lo = static_cast<Index>(static_cast<std::int64_t>(n) * r / size);
  const auto hi =
      static_cast<Index>(static_cast<std::int64_t>(n) * (r + 1) / size);
  return {lo, hi};
}

/// Round-based parallel IPM. Must be called congruently by all ranks of
/// ctx; every rank returns the identical full matching vector.
std::vector<Index> parallel_ipm_matching(RankContext& ctx,
                                         const Hypergraph& h,
                                         const PartitionConfig& cfg,
                                         Weight max_vertex_weight,
                                         std::uint64_t seed);

/// Local IPM — the paper's future-work speedup ("We plan to improve this
/// performance by using local heuristics ... e.g., using local IPM instead
/// of global IPM"). Each rank matches its own vertices only against its
/// own vertices; the single exchange is the final pair list, so the
/// traffic is a small fraction of the candidate-broadcast scheme's. The
/// price is losing cross-rank matches (quality measured by
/// bench/parallel_scaling). Same congruence and postconditions as the
/// global version.
std::vector<Index> local_ipm_matching(RankContext& ctx, const Hypergraph& h,
                                      const PartitionConfig& cfg,
                                      Weight max_vertex_weight,
                                      std::uint64_t seed);

}  // namespace hgr
