// Flat (CSR-style) message buffers and the allocation pool behind them.
//
// Every collective exchange in the parallel partitioner moves
// variable-length per-rank slices. The ragged representation
// (vector<vector<T>>) costs one heap allocation per destination plus a
// serialize/deserialize copy pair through byte vectors on every call —
// a tax the IPM coarsening rounds and refinement pass-pairs pay dozens of
// times per level. A FlatBuffer stores the same data as `counts` /
// `displs` (exclusive prefix sums) plus one contiguous typed payload, so
// a collective ships one pointer and the receiver copies each slice
// exactly once, directly into typed memory.
//
// Payload storage comes from a BufferPool: a small free list of raw
// blocks recycled across calls, so steady-state collective traffic
// performs no heap allocation at all. Pool lifetime rules (see
// docs/COMM.md): a FlatBuffer returns its block to the pool on
// destruction, therefore it must not outlive the pool it was created
// from — in practice, buffers are locals inside a Comm::run body and the
// per-rank pools live on the Comm.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"

namespace hgr {

/// A recyclable raw allocation. Obtained from (and returned to) a
/// BufferPool; the capacity is what was actually allocated, which may
/// exceed what the borrower asked for.
class PoolBlock {
 public:
  PoolBlock() = default;
  PoolBlock(PoolBlock&&) = default;
  PoolBlock& operator=(PoolBlock&&) = default;
  PoolBlock(const PoolBlock&) = delete;
  PoolBlock& operator=(const PoolBlock&) = delete;

  std::byte* data() const { return data_.get(); }
  std::size_t capacity() const { return capacity_; }
  bool valid() const { return data_ != nullptr; }

 private:
  friend class BufferPool;
  std::unique_ptr<std::byte[]> data_;
  std::size_t capacity_ = 0;
};

/// Free list of raw blocks. One thread at a time: each comm rank owns one
/// pool, and the shared per-mailbox pools are serialized by the mailbox
/// mutex. That used to be an unchecked convention; acquire/release/clear
/// now carry an always-on busy-flag guard (same scheme as Workspace) that
/// aborts on concurrent mutation instead of corrupting the free list —
/// relevant now that thread pools run inside each rank
/// (docs/PARALLELISM.md). Keeps at most kMaxFreeBlocks cached; on
/// overflow the smallest cached block is dropped so the pool converges on
/// the large payloads worth recycling.
class BufferPool {
 public:
  static constexpr std::size_t kMaxFreeBlocks = 16;
  static constexpr std::size_t kMinBlockBytes = 64;

  BufferPool() = default;
  // Movable for container storage; the busy flag is per-object state and
  // starts clear in the moved-to pool (moving a pool mid-use is a bug the
  // guard in the next acquire would catch anyway).
  BufferPool(BufferPool&& other) noexcept
      : free_(std::move(other.free_)), stats_(other.stats_) {}
  BufferPool& operator=(BufferPool&& other) noexcept {
    free_ = std::move(other.free_);
    stats_ = other.stats_;
    return *this;
  }

  struct Stats {
    std::uint64_t acquires = 0;     // total acquire() calls
    std::uint64_t reuses = 0;       // served from the free list
    std::uint64_t allocations = 0;  // served by a fresh heap allocation
  };

  /// A block with capacity >= min_bytes: the tightest-fitting cached block
  /// if one exists, else a fresh allocation.
  PoolBlock acquire(std::size_t min_bytes) {
    const BusyGuard guard(busy_);
    ++stats_.acquires;
    std::size_t best = free_.size();
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].capacity_ < min_bytes) continue;
      if (best == free_.size() || free_[i].capacity_ < free_[best].capacity_)
        best = i;
    }
    if (best != free_.size()) {
      ++stats_.reuses;
      PoolBlock block = std::move(free_[best]);
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(best));
      return block;
    }
    ++stats_.allocations;
    PoolBlock block;
    block.capacity_ = std::max(min_bytes, kMinBlockBytes);
    block.data_ = std::make_unique<std::byte[]>(block.capacity_);
    return block;
  }

  void release(PoolBlock&& block) {
    if (!block.valid()) return;
    const BusyGuard guard(busy_);
    free_.push_back(std::move(block));
    if (free_.size() <= kMaxFreeBlocks) return;
    std::size_t smallest = 0;
    for (std::size_t i = 1; i < free_.size(); ++i)
      if (free_[i].capacity_ < free_[smallest].capacity_) smallest = i;
    free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(smallest));
  }

  /// Drop every cached block (ScopedRegistry-style reset between
  /// measurement windows). Outstanding blocks are unaffected and may still
  /// be released back afterwards.
  void clear() {
    const BusyGuard guard(busy_);
    free_.clear();
  }

  std::size_t free_blocks() const { return free_.size(); }
  std::size_t resident_bytes() const {
    std::size_t total = 0;
    for (const PoolBlock& b : free_) total += b.capacity_;
    return total;
  }
  const Stats& stats() const { return stats_; }

 private:
  class BusyGuard {
   public:
    explicit BusyGuard(std::atomic<bool>& busy) : busy_(busy) {
      HGR_ASSERT_MSG(!busy_.exchange(true, std::memory_order_acquire),
                     "BufferPool mutated from two threads at once; pools "
                     "are per-rank or externally serialized");
    }
    ~BusyGuard() { busy_.store(false, std::memory_order_release); }
    BusyGuard(const BusyGuard&) = delete;
    BusyGuard& operator=(const BusyGuard&) = delete;

   private:
    std::atomic<bool>& busy_;
  };

  std::vector<PoolBlock> free_;
  Stats stats_;
  std::atomic<bool> busy_{false};
};

/// CSR-style per-slot message buffer: `count(s)` elements destined for (or
/// received from) slot s, stored contiguously in slot order. Build with a
/// count pass (bump count(s)), one commit_counts(), and a fill pass
/// (push(s, v)); read with slot(s) / all() spans.
template <typename T>
class FlatBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "flat buffers carry trivially copyable wire types");

 public:
  FlatBuffer() = default;
  explicit FlatBuffer(int num_slots, BufferPool* pool = nullptr) {
    reset(num_slots, pool);
  }
  ~FlatBuffer() { release_block(); }

  FlatBuffer(FlatBuffer&& other) noexcept { steal(other); }
  FlatBuffer& operator=(FlatBuffer&& other) noexcept {
    if (this != &other) {
      release_block();
      steal(other);
    }
    return *this;
  }
  FlatBuffer(const FlatBuffer&) = delete;
  FlatBuffer& operator=(const FlatBuffer&) = delete;

  /// Start a new count pass with `num_slots` empty slots. Keeps the
  /// current payload block (and pool association) for reuse unless a
  /// different pool is given.
  void reset(int num_slots, BufferPool* pool = nullptr) {
    if (pool != nullptr && pool != pool_) {
      release_block();
      pool_ = pool;
    }
    counts_.assign(static_cast<std::size_t>(num_slots), 0);
    displs_.clear();
    fill_.clear();
    total_ = 0;
    data_ = nullptr;
  }

  int slots() const { return static_cast<int>(counts_.size()); }
  bool committed() const { return !displs_.empty(); }

  /// Count-pass accumulator for slot s. Only valid before commit_counts().
  std::size_t& count(int s) {
    HGR_DASSERT(!committed());
    return counts_[static_cast<std::size_t>(s)];
  }
  std::size_t size(int s) const { return counts_[static_cast<std::size_t>(s)]; }
  std::size_t total() const { return total_; }

  /// Seal the counts: compute displacements and allocate the payload (from
  /// the pool when one is attached). Begins the fill pass.
  void commit_counts() {
    HGR_ASSERT_MSG(!committed(), "commit_counts called twice");
    displs_.resize(counts_.size() + 1);
    displs_[0] = 0;
    for (std::size_t s = 0; s < counts_.size(); ++s)
      displs_[s + 1] = displs_[s] + counts_[s];
    total_ = displs_.back();
    fill_.assign(displs_.begin(), displs_.end() - 1);
    const std::size_t bytes = total_ * sizeof(T);
    if (bytes > block_.capacity()) {
      if (pool_ != nullptr) {
        pool_->release(std::move(block_));
        block_ = pool_->acquire(bytes);
      } else {
        block_ = BufferPool{}.acquire(bytes);  // unpooled fallback
      }
    }
    data_ = reinterpret_cast<T*>(block_.data());
  }

  /// Fill-pass append into slot s (after commit_counts()).
  void push(int s, const T& value) {
    std::size_t& cursor = fill_[static_cast<std::size_t>(s)];
    HGR_DASSERT(cursor < displs_[static_cast<std::size_t>(s) + 1]);
    data_[cursor++] = value;
  }

  /// Bulk fill: claim the next n elements of slot s and return them as a
  /// writable span (for memcpy-style producers).
  std::span<T> push_n(int s, std::size_t n) {
    std::size_t& cursor = fill_[static_cast<std::size_t>(s)];
    HGR_DASSERT(cursor + n <= displs_[static_cast<std::size_t>(s) + 1]);
    T* begin = data_ + cursor;
    cursor += n;
    return {begin, n};
  }

  /// True when every slot's fill cursor reached its count (a completed
  /// count-and-fill build; asserted by the collectives in debug builds).
  bool filled() const {
    for (std::size_t s = 0; s < counts_.size(); ++s)
      if (fill_[s] != displs_[s + 1]) return false;
    return true;
  }

  std::span<T> slot(int s) {
    return {data_ + displs_[static_cast<std::size_t>(s)],
            counts_[static_cast<std::size_t>(s)]};
  }
  std::span<const T> slot(int s) const {
    return {data_ + displs_[static_cast<std::size_t>(s)],
            counts_[static_cast<std::size_t>(s)]};
  }
  std::span<T> all() { return {data_, total_}; }
  std::span<const T> all() const { return {data_, total_}; }

  const std::size_t* counts_data() const { return counts_.data(); }
  const std::size_t* displs_data() const { return displs_.data(); }

 private:
  void release_block() {
    if (pool_ != nullptr && block_.valid()) pool_->release(std::move(block_));
    block_ = PoolBlock{};
  }
  void steal(FlatBuffer& other) {
    counts_ = std::move(other.counts_);
    displs_ = std::move(other.displs_);
    fill_ = std::move(other.fill_);
    block_ = std::move(other.block_);
    pool_ = other.pool_;
    total_ = other.total_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.total_ = 0;
    other.data_ = nullptr;
  }

  std::vector<std::size_t> counts_;
  std::vector<std::size_t> displs_;  // size slots()+1 once committed
  std::vector<std::size_t> fill_;    // per-slot fill cursors
  PoolBlock block_;
  BufferPool* pool_ = nullptr;  // where the block goes on destruction
  std::size_t total_ = 0;
  T* data_ = nullptr;
};

}  // namespace hgr
