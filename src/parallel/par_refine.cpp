#include "parallel/par_refine.hpp"

#include <algorithm>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "obs/trace.hpp"
#include "parallel/par_ipm.hpp"  // block_range

namespace hgr {

namespace {

/// Wire format for the proposal exchange: raw vertex id on purpose — this
/// struct crosses the allgatherv comm boundary (see types.hpp "boundary"
/// note); PartId/Weight are trivially copyable and travel as-is.
struct MoveProposal {
  Index vertex;  // raw VertexId.v
  PartId to;
  Weight gain;
};

/// Replicated refinement state: pins-per-part table and part weights.
class State {
 public:
  State(const Hypergraph& h, Partition& p, double epsilon)
      : h_(h), p_(p), k_(p.k) {
    counts_.assign(static_cast<std::size_t>(h.num_nets()) *
                       static_cast<std::size_t>(k_),
                   0);
    for (const NetId net : h.nets())
      for (const VertexId v : h.pins(net)) ++at(net, p[v]);
    part_w_ = part_weights(h.vertex_weights(), p);
    max_w_ = hgr::max_part_weight(h.total_vertex_weight(), k_, epsilon);
    cand_seen_.assign(static_cast<std::size_t>(k_), 0);
  }

  Weight max_part_weight() const { return max_w_; }
  Weight part_weight(PartId q) const { return part_w_[q]; }
  std::uint64_t gain_evals() const { return gain_evals_; }

  /// Connectivity-1 gain of moving v to q (negative if it hurts).
  Weight gain(VertexId v, PartId q) const {
    const PartId from = p_[v];
    if (q == from) return 0;
    Weight g = 0;
    for (const NetId net : h_.incident_nets(v)) {
      const Weight c = h_.net_cost(net);
      if (count(net, from) == 1) g += c;
      if (count(net, q) == 0) g -= c;
    }
    return g;
  }

  /// Best positive-gain feasible destination for v, or kNoPart.
  std::pair<PartId, Weight> best_move(VertexId v) const {
    const PartId from = p_[v];
    const Weight wv = h_.vertex_weight(v);
    // Candidate parts: those adjacent through v's nets, deduplicated with
    // a stamp array so gain() runs once per distinct part rather than once
    // per pin (dense nets repeat the same part thousands of times).
    ++stamp_;
    candidates_.clear();
    for (const NetId net : h_.incident_nets(v)) {
      for (const VertexId u : h_.pins(net)) {
        const PartId q = p_[u];
        if (q == from) continue;
        std::uint64_t& seen = cand_seen_[static_cast<std::size_t>(q.v)];
        if (seen == stamp_) continue;
        seen = stamp_;
        candidates_.push_back(q);
      }
    }
    PartId best = kNoPart;
    Weight best_gain = 0;
    for (const PartId q : candidates_) {
      if (part_weight(q) + wv > max_w_) continue;
      ++gain_evals_;
      const Weight g = gain(v, q);
      if (g > best_gain ||
          (g == best_gain && best != kNoPart && q < best)) {
        best = q;
        best_gain = g;
      }
    }
    return {best, best_gain};
  }

  void apply(VertexId v, PartId to) {
    const PartId from = p_[v];
    HGR_DASSERT(from != to);
    for (const NetId net : h_.incident_nets(v)) {
      --at(net, from);
      ++at(net, to);
    }
    part_w_[from] -= h_.vertex_weight(v);
    part_w_[to] += h_.vertex_weight(v);
    p_[v] = to;
  }

 private:
  Index& at(NetId net, PartId q) {
    return counts_[static_cast<std::size_t>(net.v) *
                       static_cast<std::size_t>(k_) +
                   static_cast<std::size_t>(q.v)];
  }
  Index count(NetId net, PartId q) const {
    return counts_[static_cast<std::size_t>(net.v) *
                       static_cast<std::size_t>(k_) +
                   static_cast<std::size_t>(q.v)];
  }

  const Hypergraph& h_;
  Partition& p_;
  Index k_;
  std::vector<Index> counts_;
  IdVector<PartId, Weight> part_w_;
  Weight max_w_ = 0;
  // best_move scratch (logically const: caches, not state).
  mutable std::vector<std::uint64_t> cand_seen_;
  mutable std::uint64_t stamp_ = 0;
  mutable std::vector<PartId> candidates_;
  mutable std::uint64_t gain_evals_ = 0;
};

}  // namespace

ParRefineResult parallel_refine(RankContext& ctx, const Hypergraph& h,
                                Partition& p, const PartitionConfig& cfg,
                                std::uint64_t seed) {
  ParRefineResult result;
  result.initial_cut = connectivity_cut(h, p);
  result.final_cut = result.initial_cut;
  if (p.k <= 1) return result;

  State state(h, p, cfg.epsilon);
  const auto [lo, hi] = block_range(h.num_vertices(), ctx.size(), ctx.rank());
  Rng rng(derive_seed(seed, 77 + static_cast<std::uint64_t>(ctx.rank())));

  // Global quantities (identical on every rank) are counted by rank 0
  // only; per-rank work (proposals scanned, gain evaluations) is summed
  // over ranks.
  const bool lead = ctx.rank() == 0;

  Weight cut = result.initial_cut;
  for (Index pass = 0; pass < cfg.max_refine_passes; ++pass) {
    ++result.passes;

    // Propose: scan owned vertices in random order against the current
    // (pass-start) state.
    std::vector<Index> owned;
    for (Index v = lo; v < hi; ++v) owned.push_back(v);
    rng.shuffle(owned);
    std::vector<MoveProposal> proposals;
    for (const Index vi : owned) {
      const VertexId v{vi};
      if (h.fixed_part(v) != kNoPart) continue;
      const auto [to, gain] = state.best_move(v);
      if (to != kNoPart && gain > 0)
        proposals.push_back({to_raw(v), to, gain});
    }
    static obs::CachedCounter proposals_counter("refine.proposals");
    proposals_counter += proposals.size();

    // Exchange and apply in deterministic global order (descending gain,
    // then vertex id), revalidating each move against the evolving state.
    // The gathered payload is contiguous, so it is sorted in place.
    FlatBuffer<MoveProposal> all =
        ctx.allgatherv<MoveProposal>({proposals.data(), proposals.size()});
    const std::span<MoveProposal> flat = all.all();
    std::sort(flat.begin(), flat.end(),
              [](const MoveProposal& a, const MoveProposal& b) {
                if (a.gain != b.gain) return a.gain > b.gain;
                return a.vertex < b.vertex;
              });
    Index applied = 0;
    Index rejected_gain = 0;
    Index rejected_balance = 0;
    for (const MoveProposal& m : flat) {
      const VertexId v = from_raw<VertexId>(m.vertex);
      if (p[v] == m.to) continue;
      const Weight g = state.gain(v, m.to);
      if (g <= 0) {
        ++rejected_gain;
        continue;
      }
      if (state.part_weight(m.to) + h.vertex_weight(v) >
          state.max_part_weight()) {
        ++rejected_balance;
        continue;
      }
      state.apply(v, m.to);
      cut -= g;
      ++applied;
    }
    result.moves += applied;
    if (lead) {
      static obs::CachedCounter passes_counter("refine.passes");
      static obs::CachedCounter applied_counter("refine.applied_moves");
      static obs::CachedCounter rejected_gain_counter("refine.rejected_gain");
      static obs::CachedCounter rejected_balance_counter(
          "refine.rejected_balance");
      passes_counter += 1;
      applied_counter += static_cast<std::uint64_t>(applied);
      rejected_gain_counter += static_cast<std::uint64_t>(rejected_gain);
      rejected_balance_counter +=
          static_cast<std::uint64_t>(rejected_balance);
    }
    const Index applied_anywhere = static_cast<Index>(
        ctx.allreduce_sum<std::int64_t>(applied));
    // Every rank applied the identical global move list, so `applied` is
    // already global; the reduction doubles as a lockstep check.
    HGR_ASSERT(applied_anywhere == applied * ctx.size());
    if (applied == 0) break;
  }
  static obs::CachedCounter gain_evals_counter("refine.gain_evals");
  gain_evals_counter += state.gain_evals();
  result.final_cut = cut;
  HGR_DASSERT(result.final_cut == connectivity_cut(h, p));
  return result;
}

}  // namespace hgr
