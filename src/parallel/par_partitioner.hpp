// The parallel multilevel hypergraph partitioner with fixed vertices
// (paper Section 4): coarsening by round-based candidate-broadcast IPM,
// replicated randomized coarse partitioning with a global best pick, and
// synchronized localized refinement pass-pairs — executed by p ranks over
// the in-process message-passing runtime.
//
// Also provides the parallel form of the paper's headline operation:
// repartitioning via the augmented model, solved in parallel.
#pragma once

#include "core/repartitioner.hpp"
#include "hypergraph/hypergraph.hpp"
#include "metrics/partition.hpp"
#include "parallel/comm.hpp"
#include "partition/config.hpp"

namespace hgr {

struct ParallelPartitionConfig {
  int num_ranks = 4;
  PartitionConfig base;
  /// Use local IPM (same-rank matches only, one pair-list exchange)
  /// instead of the candidate-broadcast global IPM — the speed/quality
  /// trade the paper proposes as future work (Section 5/6).
  bool local_matching = false;
  /// Watchdog timeout installed on the run's communicator (seconds; 0
  /// disables detection). base.fault_plan, when set, is installed too —
  /// injected stalls need a live watchdog to surface as CommDeadlock.
  double deadlock_timeout = 30.0;
};

struct ParallelPartitionResult {
  Partition partition;
  CommStats traffic;    // total bytes/messages across ranks
  double seconds = 0.0;
  Index levels = 0;     // coarsening depth reached
};

/// Partition h into base.num_parts parts using num_ranks ranks. Honors
/// h.fixed_part(). Every rank computes the identical result; the returned
/// partition is rank 0's.
ParallelPartitionResult parallel_partition_hypergraph(
    const Hypergraph& h, const ParallelPartitionConfig& cfg);

/// Parallel Zoltan-repart: build the augmented repartitioning hypergraph
/// and solve it with the parallel fixed-vertex partitioner.
ParallelPartitionResult parallel_hypergraph_repartition(
    const Hypergraph& h, const Partition& old_p, Weight alpha,
    const ParallelPartitionConfig& cfg);

}  // namespace hgr
