#include "parallel/par_ipm.hpp"

#include <algorithm>
#include <span>

#include "common/assert.hpp"
#include "partition/matching_ipm.hpp"

namespace hgr {

namespace {

/// Wire format of a match proposal: (candidate, partner, score, rank).
struct Proposal {
  Index candidate;
  Index partner;
  Weight score;
  std::int32_t rank;
};

}  // namespace

std::vector<Index> parallel_ipm_matching(RankContext& ctx,
                                         const Hypergraph& h,
                                         const PartitionConfig& cfg,
                                         Weight max_vertex_weight,
                                         std::uint64_t seed) {
  const Index n = h.num_vertices();
  std::vector<Index> match(static_cast<std::size_t>(n));
  for (Index v = 0; v < n; ++v) match[static_cast<std::size_t>(v)] = v;

  const auto [lo, hi] = block_range(n, ctx.size(), ctx.rank());
  Rng rng(derive_seed(seed, static_cast<std::uint64_t>(ctx.rank())));

  // Local unmatched vertices in random visit order.
  std::vector<Index> local;
  for (Index v = lo; v < hi; ++v) local.push_back(v);
  rng.shuffle(local);
  std::size_t cursor = 0;

  const int rounds = 4;
  std::vector<Weight> score(static_cast<std::size_t>(n), 0);
  std::vector<Index> touched;

  for (int round = 0; round < rounds; ++round) {
    // Select this round's candidates from the still-unmatched local
    // vertices (an even share per round, the leftovers in the last round).
    std::vector<Index> candidates;
    const std::size_t budget =
        round + 1 == rounds
            ? local.size()
            : (local.size() + rounds - 1) / static_cast<std::size_t>(rounds);
    while (cursor < local.size() && candidates.size() < budget) {
      const Index v = local[cursor++];
      if (match[static_cast<std::size_t>(v)] == v &&
          h.vertex_degree(VertexId{v}) <= cfg.max_matching_degree)
        candidates.push_back(v);
    }

    // Broadcast candidates to every rank (rank boundaries are irrelevant
    // here, so the contiguous payload is consumed directly).
    const FlatBuffer<Index> all_candidates =
        ctx.allgatherv<Index>({candidates.data(), candidates.size()});

    // Score every foreign and local candidate against *our* unmatched
    // vertices; emit our best proposal per candidate.
    std::vector<Proposal> proposals;
    for (const Index c : all_candidates.all()) {
      if (match[static_cast<std::size_t>(c)] != c) continue;
      const PartId fc = h.fixed_part(VertexId{c});
      const Weight wc = h.vertex_weight(VertexId{c});
      touched.clear();
      for (const NetId net : h.incident_nets(VertexId{c})) {
        const Index net_size = h.net_size(net);
        if (net_size < 2 || net_size > cfg.max_scored_net_size) continue;
        const Weight cost = h.net_cost(net);
        if (cost == 0) continue;
        for (const VertexId pin : h.pins(net)) {
          const Index u = to_raw(pin);
          if (u == c || u < lo || u >= hi) continue;  // not ours
          if (match[static_cast<std::size_t>(u)] != u) continue;
          if (score[static_cast<std::size_t>(u)] == 0) touched.push_back(u);
          score[static_cast<std::size_t>(u)] += cost;
        }
      }
      Index best = kInvalidIndex;
      Weight best_score = 0;
      Weight best_weight = 0;
      for (const Index u : touched) {
        const Weight s = score[static_cast<std::size_t>(u)];
        score[static_cast<std::size_t>(u)] = 0;
        if (!fixed_compatible(fc, h.fixed_part(VertexId{u}))) continue;
        if (max_vertex_weight > 0 &&
            wc + h.vertex_weight(VertexId{u}) > max_vertex_weight)
          continue;
        const Weight wu = h.vertex_weight(VertexId{u});
        if (best == kInvalidIndex || s > best_score ||
            (s == best_score &&
             (wu < best_weight || (wu == best_weight && u < best)))) {
          best = u;
          best_score = s;
          best_weight = wu;
        }
      }
      if (best != kInvalidIndex)
        proposals.push_back({c, best, best_score,
                             static_cast<std::int32_t>(ctx.rank())});
    }

    // Gather all proposals; every rank finalizes identically: candidates
    // in ascending id order, each taking its globally best still-valid
    // partner. The gathered payload is already one contiguous array, so it
    // is sorted in place — no flatten pass.
    FlatBuffer<Proposal> all_proposals =
        ctx.allgatherv<Proposal>({proposals.data(), proposals.size()});
    const std::span<Proposal> flat = all_proposals.all();
    std::sort(flat.begin(), flat.end(), [](const Proposal& a,
                                           const Proposal& b) {
      if (a.candidate != b.candidate) return a.candidate < b.candidate;
      if (a.score != b.score) return a.score > b.score;
      if (a.rank != b.rank) return a.rank < b.rank;
      return a.partner < b.partner;
    });
    for (std::size_t i = 0; i < flat.size();) {
      const Index c = flat[i].candidate;
      if (match[static_cast<std::size_t>(c)] == c) {
        for (std::size_t j = i; j < flat.size() && flat[j].candidate == c;
             ++j) {
          const Index u = flat[j].partner;
          if (u != c && match[static_cast<std::size_t>(u)] == u) {
            match[static_cast<std::size_t>(c)] = u;
            match[static_cast<std::size_t>(u)] = c;
            break;
          }
        }
      }
      while (i < flat.size() && flat[i].candidate == c) ++i;
    }
  }

#ifndef NDEBUG
  for (Index v = 0; v < n; ++v)
    HGR_ASSERT(match[static_cast<std::size_t>(
                   match[static_cast<std::size_t>(v)])] == v);
#endif
  return match;
}

std::vector<Index> local_ipm_matching(RankContext& ctx, const Hypergraph& h,
                                      const PartitionConfig& cfg,
                                      Weight max_vertex_weight,
                                      std::uint64_t seed) {
  const Index n = h.num_vertices();
  std::vector<Index> match(static_cast<std::size_t>(n));
  for (Index v = 0; v < n; ++v) match[static_cast<std::size_t>(v)] = v;

  const auto [lo, hi] = block_range(n, ctx.size(), ctx.rank());
  Rng rng(derive_seed(seed, 31 + static_cast<std::uint64_t>(ctx.rank())));

  // Serial first-choice IPM restricted to the local vertex block: both the
  // initiating vertex and its partner must be owned here.
  std::vector<Weight> score(static_cast<std::size_t>(n), 0);
  std::vector<Index> touched;
  std::vector<Index> order;
  for (Index v = lo; v < hi; ++v) order.push_back(v);
  rng.shuffle(order);

  std::vector<Index> pairs;  // flat (v, u) list of local matches
  for (const Index v : order) {
    if (match[static_cast<std::size_t>(v)] != v) continue;
    if (h.vertex_degree(VertexId{v}) > cfg.max_matching_degree) continue;
    const PartId fv = h.fixed_part(VertexId{v});
    const Weight wv = h.vertex_weight(VertexId{v});
    touched.clear();
    for (const NetId net : h.incident_nets(VertexId{v})) {
      const Index size = h.net_size(net);
      if (size < 2 || size > cfg.max_scored_net_size) continue;
      const Weight c = h.net_cost(net);
      if (c == 0) continue;
      for (const VertexId pin : h.pins(net)) {
        const Index u = to_raw(pin);
        if (u == v || u < lo || u >= hi) continue;  // local partners only
        if (match[static_cast<std::size_t>(u)] != u) continue;
        if (score[static_cast<std::size_t>(u)] == 0) touched.push_back(u);
        score[static_cast<std::size_t>(u)] += c;
      }
    }
    Index best = kInvalidIndex;
    Weight best_score = 0;
    Weight best_weight = 0;
    for (const Index u : touched) {
      const Weight s = score[static_cast<std::size_t>(u)];
      score[static_cast<std::size_t>(u)] = 0;
      if (!fixed_compatible(fv, h.fixed_part(VertexId{u}))) continue;
      if (max_vertex_weight > 0 &&
          wv + h.vertex_weight(VertexId{u}) > max_vertex_weight)
        continue;
      const Weight wu = h.vertex_weight(VertexId{u});
      if (best == kInvalidIndex || s > best_score ||
          (s == best_score &&
           (wu < best_weight || (wu == best_weight && u < best)))) {
        best = u;
        best_score = s;
        best_weight = wu;
      }
    }
    if (best != kInvalidIndex) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
      pairs.push_back(v);
      pairs.push_back(best);
    }
  }

  // One exchange replicates every rank's decisions; blocks are disjoint so
  // no conflicts are possible.
  const FlatBuffer<Index> all_pairs =
      ctx.allgatherv<Index>({pairs.data(), pairs.size()});
  for (int s = 0; s < ctx.size(); ++s) {
    const std::span<const Index> per_rank = all_pairs.slot(s);
    HGR_ASSERT(per_rank.size() % 2 == 0);
    for (std::size_t i = 0; i < per_rank.size(); i += 2) {
      const Index v = per_rank[i];
      const Index u = per_rank[i + 1];
      match[static_cast<std::size_t>(v)] = u;
      match[static_cast<std::size_t>(u)] = v;
    }
  }

#ifndef NDEBUG
  for (Index v = 0; v < n; ++v)
    HGR_ASSERT(match[static_cast<std::size_t>(
                   match[static_cast<std::size_t>(v)])] == v);
#endif
  return match;
}

}  // namespace hgr
