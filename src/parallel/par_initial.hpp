// Parallel coarse partitioning (paper §4.2): "we replicate it on every
// processor and each processor runs a randomized greedy hypergraph growing
// algorithm to compute a different partitioning into k partitions" — the
// globally best result wins. Fixed coarse vertices stay in their parts.
#pragma once

#include "common/workspace.hpp"
#include "hypergraph/hypergraph.hpp"
#include "metrics/partition.hpp"
#include "parallel/comm.hpp"
#include "partition/config.hpp"

namespace hgr {

/// Every rank computes an independent randomized k-way partition of the
/// (replicated) coarsest hypergraph, refines it, and the partition with the
/// lowest (infeasibility, cut) is adopted by all ranks. `ws` (optional,
/// rank-local) pools the serial partitioner's scratch.
Partition parallel_coarse_partition(RankContext& ctx, const Hypergraph& h,
                                    const PartitionConfig& cfg,
                                    std::uint64_t seed,
                                    Workspace* ws = nullptr);

}  // namespace hgr
