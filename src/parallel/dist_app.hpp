// Distributed-application engine: the consumer side of load balancing.
//
// Zoltan is a *data management service*: applications ask it where data
// should live, then it migrates the data and the application communicates
// along the new distribution. This module reproduces that loop over the
// in-process runtime:
//
//   - payloads: each vertex owns a data blob of exactly vertex_size(v)
//     words, held by the rank that owns the vertex's part;
//   - halo_exchange(): one iteration's communication under the hypergraph
//     model — for every net, each non-root part ships the net's partial
//     reduction (c_n words) to the net's root part. The bytes the runtime
//     counts equal  sizeof(word) * sum_j c_j (lambda_j - 1): the
//     connectivity-1 cut *is* the measured traffic, which is the premise
//     the whole paper builds on (Section 2) and what dist_app tests
//     verify;
//   - migrate(): executes a MigrationPlan, moving payload blobs between
//     ranks; counted bytes match the plan's total volume.
//
// Parts map to ranks via owner(part) = part % num_ranks; with
// num_ranks == k every part is a rank, as in the paper's experiments.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/migration_plan.hpp"
#include "hypergraph/hypergraph.hpp"
#include "metrics/partition.hpp"
#include "parallel/comm.hpp"

namespace hgr {

/// Per-rank payload store: vertex -> data words. A vertex's blob has
/// exactly vertex_size(v) words; word 0 conventionally tags the vertex id
/// (tests use this to detect corruption in flight).
using PayloadStore = std::unordered_map<Index, std::vector<std::int64_t>>;

/// Owner rank of a part: owner(part) = part mod num_ranks. Returns the
/// strong RankId; use .v only at the comm boundary (FlatBuffer slots).
inline RankId part_owner(PartId part, int num_ranks) {
  return RankId{part.v % num_ranks};
}

/// Build this rank's initial payload store: one blob per owned vertex,
/// word 0 = vertex id, the rest deterministic filler.
PayloadStore make_payloads(const RankContext& ctx, const Hypergraph& h,
                           const Partition& p);

struct HaloStats {
  /// Words shipped (= sum of c_j over (net, non-root part) pairs).
  Weight words_sent = 0;
  /// Global checksum of net reductions (identical on all ranks).
  std::int64_t reduction_checksum = 0;
};

/// One iteration's communication phase. `values` is the replicated
/// per-vertex scalar the nets reduce over (any application quantity).
/// Must be called congruently by all ranks.
HaloStats halo_exchange(RankContext& ctx, const Hypergraph& h,
                        const Partition& p,
                        const std::vector<std::int64_t>& values);

struct MigrateStats {
  Weight words_moved = 0;   // == plan.total_volume when executed fully
  Index blobs_sent = 0;
  Index blobs_received = 0;
};

/// Execute the plan: every moved vertex's blob leaves the old part's owner
/// and lands at the new part's owner. Store is updated in place.
MigrateStats migrate(RankContext& ctx, const MigrationPlan& plan,
                     const Hypergraph& h, PayloadStore& store);

/// Abort unless `store` holds exactly the blobs of the vertices whose part
/// p maps to this rank, each intact (word 0 == vertex id, correct length).
void validate_payloads(const RankContext& ctx, const Hypergraph& h,
                       const Partition& p, const PayloadStore& store);

}  // namespace hgr
