// Communication telemetry for the in-process MPI substitute.
//
// The paper's evaluation (Figures 2-8) accounts communication volume and
// per-rank balance; comm.cpp already counts bytes per sender, but that is
// not enough to see *who talks to whom* or *who waits on whom*. This module
// defines the aggregate view the comm runtime exports after every
// Comm::run:
//   - per-rank send/recv message counts and byte volumes,
//   - a p2p traffic matrix (row = sender, column = receiver),
//   - per-collective call counts (barrier / allgather / allreduce / bcast /
//     alltoallv),
//   - per-rank wait time split into recv-wait and barrier-wait, measured by
//     the same ScopedWait brackets the deadlock watchdog uses,
// plus two derived statistics: send-byte imbalance (max/avg over ranks) and
// the largest per-rank wait fraction of the run's wall time.
//
// Self-send accounting decision: rank-local traffic never counts. The
// flat alltoallv copies the self-destined slice directly (it bypasses the
// mailboxes entirely), and — like the mailbox path before it, which
// delivered self-sends but skipped the counters — charges no bytes_sent /
// messages_sent, no bytes_recv / messages_recv, and no p2p matrix cell for
// it. Only the off-rank slices appear in CommStats, the p2p matrices, and
// the comm.alltoallv.bytes counter, so byte totals model what would cross
// a real network and are unchanged from the pre-flat runtime.
//
// The comm runtime accumulates each run into a process-global accumulator
// and attaches the JSON snapshot as the "comm" section of the hgr-trace-v2
// export (obs::Registry::set_section), so `hgr_cli --trace-json=` and the
// bench binaries pick it up with no extra plumbing. See
// docs/OBSERVABILITY.md for the field reference.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hgr {

/// The collectives the runtime implements; indexes collective_calls.
enum class CollectiveKind : std::uint8_t {
  kBarrier = 0,
  kAllgather = 1,
  kAllreduce = 2,
  kBcast = 3,
  kAlltoallv = 4,
};

inline constexpr std::size_t kNumCollectiveKinds = 5;

/// Stable lowercase name ("barrier", "allgather", ...).
const char* collective_kind_name(CollectiveKind kind);

/// One rank's communication totals.
struct RankCommTelemetry {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_recv = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_recv = 0;
  double recv_wait_seconds = 0.0;
  double barrier_wait_seconds = 0.0;
  std::array<std::uint64_t, kNumCollectiveKinds> collective_calls{};
};

/// Aggregate telemetry over one or more Comm::run calls.
struct CommTelemetry {
  int num_ranks = 0;
  std::vector<RankCommTelemetry> ranks;
  /// Row-major num_ranks x num_ranks matrices; row = sender, column =
  /// receiver. Self-sends are excluded (they bypass the network, matching
  /// bytes_sent accounting). Diagonal is always zero.
  std::vector<std::uint64_t> p2p_bytes;
  std::vector<std::uint64_t> p2p_messages;
  /// Wall seconds spent inside Comm::run, summed over runs.
  double run_seconds = 0.0;
  std::uint64_t runs = 0;

  std::uint64_t& p2p_bytes_at(int src, int dst) {
    return p2p_bytes[static_cast<std::size_t>(src) *
                         static_cast<std::size_t>(num_ranks) +
                     static_cast<std::size_t>(dst)];
  }
  std::uint64_t p2p_bytes_at(int src, int dst) const {
    return p2p_bytes[static_cast<std::size_t>(src) *
                         static_cast<std::size_t>(num_ranks) +
                     static_cast<std::size_t>(dst)];
  }
  std::uint64_t p2p_messages_at(int src, int dst) const {
    return p2p_messages[static_cast<std::size_t>(src) *
                            static_cast<std::size_t>(num_ranks) +
                        static_cast<std::size_t>(dst)];
  }

  /// Size for `n` ranks (zeroed); keeps matrices consistent with ranks.
  void resize(int n);

  /// Fold `other` into this, expanding to the larger rank count if the two
  /// runs used different communicator sizes.
  void accumulate(const CommTelemetry& other);

  /// max over ranks of bytes_sent divided by the average (1.0 = perfectly
  /// balanced; 0.0 when nothing was sent).
  double send_byte_imbalance() const;

  /// max over ranks of (recv_wait + barrier_wait) / run_seconds. 0.0 when
  /// run_seconds is 0.
  double max_wait_fraction() const;

  /// JSON object (schema documented in docs/OBSERVABILITY.md); this is the
  /// "comm" section of the hgr-trace-v2 export.
  std::string to_json() const;
};

/// Process-global accumulator (mutex-protected). The comm runtime folds
/// every finished run in; reset between measurement windows.
void accumulate_comm_telemetry(const CommTelemetry& run);
CommTelemetry comm_telemetry_snapshot();
void reset_comm_telemetry();

}  // namespace hgr
