#include "parallel/par_initial.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "partition/kway_refine.hpp"
#include "partition/partitioner.hpp"

namespace hgr {

namespace {

/// Serialized quality header preceding the assignment on the wire.
struct Quality {
  Weight overweight;
  Weight cut;
  std::int32_t rank;

  bool better_than(const Quality& other) const {
    if (overweight != other.overweight) return overweight < other.overweight;
    if (cut != other.cut) return cut < other.cut;
    return rank < other.rank;  // deterministic tie-break
  }
};

Weight total_overweight(const Hypergraph& h, const Partition& p,
                        double epsilon) {
  const IdVector<PartId, Weight> pw = part_weights(h.vertex_weights(), p);
  const double avg = static_cast<double>(h.total_vertex_weight()) /
                     static_cast<double>(p.k);
  const auto max_w = static_cast<Weight>(avg * (1.0 + epsilon));
  Weight over = 0;
  for (const Weight w : pw) over += std::max<Weight>(0, w - max_w);
  return over;
}

}  // namespace

Partition parallel_coarse_partition(RankContext& ctx, const Hypergraph& h,
                                    const PartitionConfig& cfg,
                                    std::uint64_t seed, Workspace* ws) {
  // Rank-specific seed: every processor computes a *different* partition.
  PartitionConfig local_cfg = cfg;
  local_cfg.seed = derive_seed(seed, static_cast<std::uint64_t>(ctx.rank()));
  Partition mine = direct_kway_partition(h, local_cfg, ws);

  const Quality q{total_overweight(h, mine, cfg.epsilon),
                  connectivity_cut(h, mine),
                  static_cast<std::int32_t>(ctx.rank())};
  const FlatBuffer<Quality> all_quality = ctx.allgatherv<Quality>({&q, 1});
  Quality best = all_quality.all()[0];
  for (const Quality& other : all_quality.all())
    if (other.better_than(best)) best = other;

  // Winner broadcasts its assignment (raw vector on the wire).
  // hgr-lint: raw-ok
  const std::vector<PartId> winning =
      ctx.bcast(mine.assignment.raw(), static_cast<int>(best.rank));
  Partition result(cfg.num_parts, h.num_vertices());
  result.assignment.raw() = winning;  // hgr-lint: raw-ok
  result.validate();
  return result;
}

}  // namespace hgr
