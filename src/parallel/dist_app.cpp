#include "parallel/dist_app.hpp"

#include <algorithm>
#include <span>

#include "common/assert.hpp"

namespace hgr {

PayloadStore make_payloads(const RankContext& ctx, const Hypergraph& h,
                           const Partition& p) {
  PayloadStore store;
  for (const VertexId v : h.vertices()) {
    if (part_owner(p[v], ctx.size()) != ctx.rank_id()) continue;
    std::vector<std::int64_t> blob(
        static_cast<std::size_t>(std::max<Weight>(1, h.vertex_size(v))));
    blob[0] = v.v;
    for (std::size_t i = 1; i < blob.size(); ++i)
      blob[i] =
          static_cast<std::int64_t>(v.v) * 31 + static_cast<std::int64_t>(i);
    store.emplace(to_raw(v), std::move(blob));
  }
  return store;
}

HaloStats halo_exchange(RankContext& ctx, const Hypergraph& h,
                        const Partition& p,
                        const std::vector<std::int64_t>& values) {
  HGR_ASSERT(static_cast<Index>(values.size()) == h.num_vertices());
  const int ranks = ctx.size();

  // Outgoing word streams, one flat-buffer slot per destination rank.
  // Message framing per net contribution:
  // [net, part, c_n, partial, filler...(c_n-1 words)] — the partial
  // reduction plus the data item's remaining payload, modeling "the size
  // of the data item that will be communicated" (paper §3). Built in two
  // identical scans: a count pass sizing each destination slice, then a
  // fill pass writing into the committed payload (checksum and stats are
  // only accumulated in the fill pass).
  FlatBuffer<std::int64_t> outgoing = ctx.make_buffer<std::int64_t>();
  HaloStats stats;

  std::vector<PartId> parts_touched;
  std::vector<std::int64_t> partial_of_part(static_cast<std::size_t>(p.k), 0);
  std::int64_t checksum = 0;

  for (int phase = 0; phase < 2; ++phase) {
    const bool fill = phase == 1;
    if (fill) outgoing.commit_counts();
    for (const NetId net : h.nets()) {
      const Weight c = h.net_cost(net);
      parts_touched.clear();
      for (const VertexId v : h.pins(net)) {
        const PartId q = p[v];
        if (partial_of_part[static_cast<std::size_t>(q.v)] == 0 &&
            std::find(parts_touched.begin(), parts_touched.end(), q) ==
                parts_touched.end())
          parts_touched.push_back(q);
        partial_of_part[static_cast<std::size_t>(q.v)] +=
            values[static_cast<std::size_t>(v.v)];
      }
      const PartId root = p[h.pins(net).front()];
      for (const PartId q : parts_touched) {
        const std::int64_t partial =
            partial_of_part[static_cast<std::size_t>(q.v)];
        partial_of_part[static_cast<std::size_t>(q.v)] = 0;
        if (fill) checksum += partial;
        if (q == root) continue;  // root's own contribution, no transfer
        // Only the owner of part q actually sends.
        if (part_owner(q, ranks) != ctx.rank_id()) continue;
        if (c == 0) continue;
        // Raw ids on the wire from here down (comm boundary).
        const int dest = to_raw(part_owner(root, ranks));
        if (!fill) {
          outgoing.count(dest) += 3 + static_cast<std::size_t>(c);
          continue;
        }
        outgoing.push(dest, to_raw(net));
        outgoing.push(dest, to_raw(q));
        outgoing.push(dest, c);
        outgoing.push(dest, partial);
        for (Weight w = 1; w < c; ++w) outgoing.push(dest, 0);  // payload
        stats.words_sent += c;
      }
    }
  }

  const FlatBuffer<std::int64_t> incoming = ctx.alltoallv(outgoing);

  // Root-side verification: every received partial must match the
  // replicated recomputation (the runtime delivered the right bytes to the
  // right rank).
  for (int s = 0; s < ranks; ++s) {
    const std::span<const std::int64_t> stream = incoming.slot(s);
    std::size_t i = 0;
    while (i < stream.size()) {
      const auto net = from_raw<NetId>(stream[i]);
      const auto q = from_raw<PartId>(stream[i + 1]);
      const auto c = static_cast<Weight>(stream[i + 2]);
      const std::int64_t partial = stream[i + 3];
      i += 3 + static_cast<std::size_t>(c);
      HGR_ASSERT(net.v >= 0 && net.v < h.num_nets());
      const PartId root = p[h.pins(net).front()];
      HGR_ASSERT_MSG(part_owner(root, ranks) == ctx.rank_id(),
                     "halo message routed to the wrong rank");
      std::int64_t expect = 0;
      for (const VertexId v : h.pins(net))
        if (p[v] == q) expect += values[static_cast<std::size_t>(v.v)];
      HGR_ASSERT_MSG(expect == partial, "halo partial corrupted in flight");
    }
  }

  // The checksum is computed from replicated data, hence rank-identical;
  // reduce once as a lockstep check.
  stats.reduction_checksum = ctx.allreduce_sum<std::int64_t>(checksum) /
                             ctx.size();
  return stats;
}

MigrateStats migrate(RankContext& ctx, const MigrationPlan& plan,
                     const Hypergraph& h, PayloadStore& store) {
  const int ranks = ctx.size();
  MigrateStats stats;
  // Count pass sizes each destination slice; the fill pass (which alone
  // mutates the store) writes [vertex, len, blob...] frames in place.
  FlatBuffer<std::int64_t> outgoing = ctx.make_buffer<std::int64_t>();
  for (int phase = 0; phase < 2; ++phase) {
    const bool fill = phase == 1;
    if (fill) outgoing.commit_counts();
    for (const MigrationPlan::Move& m : plan.moves) {
      const RankId src = part_owner(m.from, ranks);
      const RankId dst_rank = part_owner(m.to, ranks);
      if (src != ctx.rank_id()) continue;
      const auto it = store.find(to_raw(m.vertex));
      HGR_ASSERT_MSG(it != store.end(), "migrating a vertex we do not own");
      if (dst_rank == ctx.rank_id()) continue;  // part moved, rank unchanged
      const int dst = to_raw(dst_rank);  // comm boundary: raw slot index
      if (!fill) {
        outgoing.count(dst) += 2 + it->second.size();
        continue;
      }
      outgoing.push(dst, to_raw(m.vertex));
      outgoing.push(dst, static_cast<std::int64_t>(it->second.size()));
      std::span<std::int64_t> blob = outgoing.push_n(dst, it->second.size());
      std::copy(it->second.begin(), it->second.end(), blob.begin());
      stats.words_moved += static_cast<Weight>(it->second.size());
      ++stats.blobs_sent;
      store.erase(it);
    }
  }

  const FlatBuffer<std::int64_t> incoming = ctx.alltoallv(outgoing);
  for (int s = 0; s < ranks; ++s) {
    const std::span<const std::int64_t> stream = incoming.slot(s);
    std::size_t i = 0;
    while (i < stream.size()) {
      const auto v = static_cast<Index>(stream[i]);
      const auto len = static_cast<std::size_t>(stream[i + 1]);
      HGR_ASSERT(v >= 0 && v < h.num_vertices());
      HGR_ASSERT(i + 2 + len <= stream.size());
      std::vector<std::int64_t> blob(stream.begin() + static_cast<long>(i) + 2,
                                     stream.begin() + static_cast<long>(i) +
                                         2 + static_cast<long>(len));
      HGR_ASSERT_MSG(store.emplace(v, std::move(blob)).second,
                     "received a vertex we already own");
      ++stats.blobs_received;
      i += 2 + len;
    }
  }
  return stats;
}

void validate_payloads(const RankContext& ctx, const Hypergraph& h,
                       const Partition& p, const PayloadStore& store) {
  std::size_t expected = 0;
  for (const VertexId v : h.vertices()) {
    if (part_owner(p[v], ctx.size()) != ctx.rank_id()) continue;
    ++expected;
    const auto it = store.find(to_raw(v));
    HGR_ASSERT_MSG(it != store.end(), "missing payload for an owned vertex");
    HGR_ASSERT_MSG(it->second.size() ==
                       static_cast<std::size_t>(
                           std::max<Weight>(1, h.vertex_size(v))),
                   "payload length corrupted");
    HGR_ASSERT_MSG(it->second[0] == v.v, "payload tag corrupted");
  }
  HGR_ASSERT_MSG(store.size() == expected,
                 "rank holds payloads it should not own");
}

}  // namespace hgr
