// Parallel refinement (paper §4.3): a localized FM variant.
//
// Each pass, every rank scans the vertices it owns against the replicated
// pass-start state and proposes its best positive-gain moves; proposals are
// exchanged (the counted communication), then applied in a deterministic
// global order with revalidation — each move re-checks its gain and the
// balance constraint against the evolving state, so all ranks end the pass
// with identical partitions. Fixed vertices never move.
#pragma once

#include "hypergraph/hypergraph.hpp"
#include "metrics/partition.hpp"
#include "parallel/comm.hpp"
#include "partition/config.hpp"

namespace hgr {

struct ParRefineResult {
  Weight initial_cut = 0;
  Weight final_cut = 0;
  Index moves = 0;
  Index passes = 0;
};

ParRefineResult parallel_refine(RankContext& ctx, const Hypergraph& h,
                                Partition& p, const PartitionConfig& cfg,
                                std::uint64_t seed);

}  // namespace hgr
