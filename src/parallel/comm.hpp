// In-process message-passing runtime: the MPI substitute.
//
// The paper's partitioner is an MPI program on a 64-node cluster. This
// container has no MPI and one core, so the parallel algorithms here run
// against an in-process communicator: p ranks on p threads, typed
// point-to-point mailboxes, and the collectives the algorithms need
// (barrier, broadcast, all-reduce, all-gather, all-to-all). Every transfer
// is counted in bytes per rank, so communication *volume* — the metric the
// paper's claims rest on — is measured exactly even though wall-clock
// scalability is not reproducible on one core.
//
// Failure model: an exception escaping one rank's function aborts the
// communicator — every rank blocked in a recv or collective is woken with
// CommAborted, all threads are joined, and Comm::run rethrows the
// lowest-rank original exception to the caller. The communicator stays
// reusable afterwards.
//
// Deadlock watchdog: every blocking point (recv, barrier, and the
// collectives built on them) publishes per-rank "waiting on what" state. A
// watchdog thread detects the all-ranks-blocked-no-progress configuration
// (mismatched barriers, a recv nobody sends, tag mix-ups), composes a
// who-waits-on-whom diagnosis, and aborts the communicator through the
// CommAborted path; Comm::run then throws CommDeadlock instead of hanging
// forever. See docs/CHECKING.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "common/timer.hpp"
#include "obs/events.hpp"
#include "parallel/comm_telemetry.hpp"

namespace hgr {

/// Per-rank traffic counters (bytes that would cross the network) and wait
/// time, split by blocking point. Each rank's entry is written only by its
/// own thread while a run is live.
struct CommStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_recv = 0;
  std::uint64_t messages_recv = 0;
  std::uint64_t collectives = 0;
  double recv_wait_seconds = 0.0;
  double barrier_wait_seconds = 0.0;
};

class Comm;

/// Reserved tag used internally by alltoallv. User sends/recvs must not
/// use it (asserted), or they would interleave with collective traffic.
inline constexpr int kAlltoallTag = -424242;

/// Thrown inside ranks blocked on communication when a peer rank failed;
/// Comm::run translates it back into the peer's original exception.
class CommAborted : public std::runtime_error {
 public:
  CommAborted()
      : std::runtime_error("communication aborted: a peer rank threw") {}
};

/// Thrown by Comm::run when the watchdog detected that every rank was
/// blocked in communication with no progress for longer than the deadlock
/// timeout. what() carries the per-rank who-waits-on-whom diagnosis.
class CommDeadlock : public std::runtime_error {
 public:
  explicit CommDeadlock(const std::string& diagnosis)
      : std::runtime_error(diagnosis) {}
};

/// Handle a rank uses inside Comm::run. All operations are blocking and
/// must be called congruently across ranks (like MPI collectives).
class RankContext {
 public:
  RankContext(Comm& comm, int rank) : comm_(comm), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const;

  void send_bytes(int dest, int tag, std::span<const std::uint8_t> data);
  std::vector<std::uint8_t> recv_bytes(int src, int tag);

  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    HGR_ASSERT_MSG(tag != kAlltoallTag,
                   "user tag collides with the reserved alltoall tag");
    send_typed<T>(dest, tag, data);
  }

  template <typename T>
  std::vector<T> recv(int src, int tag) {
    HGR_ASSERT_MSG(tag != kAlltoallTag,
                   "user tag collides with the reserved alltoall tag");
    return recv_typed<T>(src, tag);
  }

  void barrier();

  /// Gather each rank's vector; every rank receives the concatenation in
  /// rank order (returned per-rank to preserve boundaries).
  template <typename T>
  std::vector<std::vector<T>> allgather(const std::vector<T>& mine) {
    obs::EventSpan span("allgather", "comm");
    record_collective(CollectiveKind::kAllgather,
                      mine.size() * sizeof(T) *
                          static_cast<std::size_t>(size() - 1));
    return allgather_impl<T>(mine);
  }

  template <typename T>
  T allreduce(T value, const std::function<T(T, T)>& op) {
    obs::EventSpan span("allreduce", "comm");
    record_collective(CollectiveKind::kAllreduce,
                      sizeof(T) * static_cast<std::size_t>(size() - 1));
    const std::vector<std::vector<T>> all = allgather_impl<T>({value});
    T acc = all[0][0];
    for (std::size_t r = 1; r < all.size(); ++r) acc = op(acc, all[r][0]);
    return acc;
  }

  template <typename T>
  T allreduce_sum(T value) {
    return allreduce<T>(value, [](T a, T b) { return a + b; });
  }
  template <typename T>
  T allreduce_max(T value) {
    return allreduce<T>(value, [](T a, T b) { return a > b ? a : b; });
  }
  template <typename T>
  T allreduce_min(T value) {
    return allreduce<T>(value, [](T a, T b) { return a < b ? a : b; });
  }

  /// Personalized all-to-all: outgoing[d] goes to rank d; returns one
  /// vector per source rank.
  template <typename T>
  std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& outgoing) {
    HGR_ASSERT(static_cast<int>(outgoing.size()) == size());
    obs::EventSpan span("alltoallv", "comm");
    std::size_t off_rank_bytes = 0;
    for (int d = 0; d < size(); ++d)
      if (d != rank_)
        off_rank_bytes +=
            outgoing[static_cast<std::size_t>(d)].size() * sizeof(T);
    record_collective(CollectiveKind::kAlltoallv, off_rank_bytes);
    for (int d = 0; d < size(); ++d)
      send_typed<T>(d, /*tag=*/kAlltoallTag,
                    outgoing[static_cast<std::size_t>(d)]);
    std::vector<std::vector<T>> incoming(static_cast<std::size_t>(size()));
    for (int s = 0; s < size(); ++s)
      incoming[static_cast<std::size_t>(s)] = recv_typed<T>(s, kAlltoallTag);
    barrier();
    return incoming;
  }

  /// Broadcast root's vector to everyone.
  template <typename T>
  std::vector<T> bcast(const std::vector<T>& mine, int root) {
    obs::EventSpan span("bcast", "comm");
    record_collective(CollectiveKind::kBcast,
                      rank_ == root
                          ? mine.size() * sizeof(T) *
                                static_cast<std::size_t>(size() - 1)
                          : 0);
    // Built on the slot area: only the root's slot is read.
    const std::vector<std::vector<T>> all =
        allgather_impl<T>(rank() == root ? mine : std::vector<T>{});
    return all[static_cast<std::size_t>(root)];
  }

  const CommStats& stats() const;

 private:
  void account(std::size_t bytes, std::size_t messages);
  /// Bump obs counters comm.<kind>.count / comm.<kind>.bytes and the
  /// per-rank collective call tally.
  void record_collective(CollectiveKind kind, std::size_t bytes);
  void send_bytes_impl(int dest, int tag, std::span<const std::uint8_t> data);
  std::vector<std::uint8_t> recv_bytes_impl(int src, int tag);
  void exchange_slot(const std::vector<std::uint8_t>& mine,
                     std::vector<std::vector<std::uint8_t>>& all_out);

  template <typename T>
  void send_typed(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes_impl(dest, tag,
                    {reinterpret_cast<const std::uint8_t*>(data.data()),
                     data.size() * sizeof(T)});
  }

  template <typename T>
  std::vector<T> recv_typed(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<std::uint8_t> raw = recv_bytes_impl(src, tag);
    HGR_ASSERT(raw.size() % sizeof(T) == 0);
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  template <typename T>
  std::vector<std::vector<T>> allgather_impl(const std::vector<T>& mine) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::uint8_t> raw(mine.size() * sizeof(T));
    std::memcpy(raw.data(), mine.data(), raw.size());
    std::vector<std::vector<std::uint8_t>> all;
    exchange_slot(raw, all);
    std::vector<std::vector<T>> out(all.size());
    for (std::size_t r = 0; r < all.size(); ++r) {
      HGR_ASSERT(all[r].size() % sizeof(T) == 0);
      out[r].resize(all[r].size() / sizeof(T));
      std::memcpy(out[r].data(), all[r].data(), all[r].size());
    }
    return out;
  }

  Comm& comm_;
  int rank_;
};

/// The communicator: owns the shared mailboxes and collective areas and
/// launches one thread per rank.
class Comm {
 public:
  explicit Comm(int num_ranks);

  int num_ranks() const { return num_ranks_; }

  /// Run f as rank r on each of num_ranks threads; returns when all ranks
  /// finish. If any rank throws, every other rank blocked in communication
  /// is aborted (it observes CommAborted), all threads are joined, and the
  /// lowest-rank original exception is rethrown here. If the watchdog
  /// detected a deadlock instead, CommDeadlock is thrown.
  void run(const std::function<void(RankContext&)>& f);

  /// Seconds of all-ranks-blocked-with-no-progress before the watchdog
  /// declares a deadlock. 0 disables the watchdog. Default 30s: far above
  /// any legitimate full-quiescence window (a satisfiable recv or barrier
  /// is woken at notify time), yet bounded enough that CI fails with a
  /// diagnosis instead of timing out.
  void set_deadlock_timeout(double seconds) { deadlock_timeout_ = seconds; }
  double deadlock_timeout() const { return deadlock_timeout_; }

  /// Aggregate traffic over all ranks from the last run().
  CommStats total_stats() const;
  const CommStats& rank_stats(int rank) const {
    return stats_[static_cast<std::size_t>(rank)];
  }

  /// Full telemetry (per-rank stats, p2p matrix, collective counts, wait
  /// times) from the last run(). Also folded into the process-global
  /// accumulator (comm_telemetry_snapshot()) at the end of every run.
  CommTelemetry telemetry() const;

 private:
  friend class RankContext;

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable ready;
    std::map<std::pair<int, int>, std::deque<std::vector<std::uint8_t>>>
        queues;  // (src, tag) -> messages in order
  };

  // Sense-reversing generation barrier. `rank` identifies the caller for
  // the watchdog's wait-state bookkeeping.
  void barrier_wait(int rank);

  // Wake every rank blocked in a recv or barrier; they throw CommAborted.
  void abort_all();

  // --- deadlock watchdog ---

  /// What a rank is currently blocked on, published for the watchdog.
  /// kind is written last (release) so src/tag are valid whenever the
  /// watchdog observes kind != kNotWaiting.
  struct WaitState {
    static constexpr int kNotWaiting = 0;
    static constexpr int kRecv = 1;
    static constexpr int kBarrier = 2;
    std::atomic<int> kind{kNotWaiting};
    std::atomic<int> src{-1};
    std::atomic<int> tag{0};
  };

  /// RAII: publish "rank r is blocked on ..." around a cv wait. Doubles as
  /// the wait-time probe: the same bracket that feeds the watchdog times
  /// the wait and accumulates it into the rank's CommStats (and emits a
  /// "wait.recv"/"wait.barrier" timeline span when event capture is on).
  class ScopedWait {
   public:
    ScopedWait(Comm& comm, int rank, int kind, int src, int tag);
    ~ScopedWait();
    ScopedWait(const ScopedWait&) = delete;
    ScopedWait& operator=(const ScopedWait&) = delete;

   private:
    WaitState& state_;
    std::atomic<std::uint64_t>& progress_;
    CommStats& stats_;
    int kind_;
    const char* event_name_ = nullptr;
    WallTimer timer_;
  };

  void watchdog_loop();
  std::string compose_deadlock_diagnosis(double stuck_seconds);

  int num_ranks_;
  std::vector<Mailbox> mailboxes_;
  std::vector<CommStats> stats_;
  // Row-major p x p traffic matrices (row = sender). Each row is written
  // only by its own rank's thread during a run; read after join.
  std::vector<std::uint64_t> p2p_bytes_;
  std::vector<std::uint64_t> p2p_messages_;
  // Per-rank collective call counts, indexed by CollectiveKind.
  std::vector<std::array<std::uint64_t, kNumCollectiveKinds>>
      collective_calls_;
  // Wall time of the last completed run() (denominator of wait fractions).
  double last_run_seconds_ = 0.0;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;
  std::atomic<bool> aborted_{false};

  // Watchdog state. progress_ is bumped on every send, every wait
  // entry/exit, and every barrier release; a frozen counter with every
  // rank's WaitState published means no rank can ever make progress again.
  std::unique_ptr<WaitState[]> wait_states_;
  std::atomic<std::uint64_t> progress_{0};
  double deadlock_timeout_ = 30.0;
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::string deadlock_diagnosis_;  // guarded by watchdog_mutex_

  // Collective exchange area: one slot per rank, fenced by barriers.
  std::vector<std::vector<std::uint8_t>> slots_;
};

}  // namespace hgr
