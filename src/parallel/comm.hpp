// In-process message-passing runtime: the MPI substitute.
//
// The paper's partitioner is an MPI program on a 64-node cluster. This
// container has no MPI and one core, so the parallel algorithms here run
// against an in-process communicator: p ranks on p threads, typed
// point-to-point mailboxes, and the collectives the algorithms need
// (barrier, broadcast, all-reduce, all-gather, all-to-all). Every transfer
// is counted in bytes per rank, so communication *volume* — the metric the
// paper's claims rest on — is measured exactly even though wall-clock
// scalability is not reproducible on one core.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace hgr {

/// Per-rank traffic counters (bytes that would cross the network).
struct CommStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t collectives = 0;
};

class Comm;

/// Reserved tag used internally by alltoallv.
inline constexpr int kAlltoallTag = -424242;

/// Handle a rank uses inside Comm::run. All operations are blocking and
/// must be called congruently across ranks (like MPI collectives).
class RankContext {
 public:
  RankContext(Comm& comm, int rank) : comm_(comm), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const;

  void send_bytes(int dest, int tag, std::span<const std::uint8_t> data);
  std::vector<std::uint8_t> recv_bytes(int src, int tag);

  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag,
               {reinterpret_cast<const std::uint8_t*>(data.data()),
                data.size() * sizeof(T)});
  }

  template <typename T>
  std::vector<T> recv(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<std::uint8_t> raw = recv_bytes(src, tag);
    HGR_ASSERT(raw.size() % sizeof(T) == 0);
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  void barrier();

  /// Gather each rank's vector; every rank receives the concatenation in
  /// rank order (returned per-rank to preserve boundaries).
  template <typename T>
  std::vector<std::vector<T>> allgather(const std::vector<T>& mine);

  template <typename T>
  T allreduce(T value, const std::function<T(T, T)>& op);

  template <typename T>
  T allreduce_sum(T value) {
    return allreduce<T>(value, [](T a, T b) { return a + b; });
  }
  template <typename T>
  T allreduce_max(T value) {
    return allreduce<T>(value, [](T a, T b) { return a > b ? a : b; });
  }
  template <typename T>
  T allreduce_min(T value) {
    return allreduce<T>(value, [](T a, T b) { return a < b ? a : b; });
  }

  /// Personalized all-to-all: outgoing[d] goes to rank d; returns one
  /// vector per source rank.
  template <typename T>
  std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& outgoing);

  /// Broadcast root's vector to everyone.
  template <typename T>
  std::vector<T> bcast(const std::vector<T>& mine, int root);

  const CommStats& stats() const;

 private:
  void account(std::size_t bytes, std::size_t messages);
  void exchange_slot(const std::vector<std::uint8_t>& mine,
                     std::vector<std::vector<std::uint8_t>>& all_out);

  Comm& comm_;
  int rank_;
};

/// The communicator: owns the shared mailboxes and collective areas and
/// launches one thread per rank.
class Comm {
 public:
  explicit Comm(int num_ranks);

  int num_ranks() const { return num_ranks_; }

  /// Run f as rank r on each of num_ranks threads; returns when all ranks
  /// finish. Exceptions in a rank abort the process (no recovery story, as
  /// with MPI).
  void run(const std::function<void(RankContext&)>& f);

  /// Aggregate traffic over all ranks from the last run().
  CommStats total_stats() const;
  const CommStats& rank_stats(int rank) const {
    return stats_[static_cast<std::size_t>(rank)];
  }

 private:
  friend class RankContext;

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable ready;
    std::map<std::pair<int, int>, std::deque<std::vector<std::uint8_t>>>
        queues;  // (src, tag) -> messages in order
  };

  // Sense-reversing generation barrier.
  void barrier_wait();

  int num_ranks_;
  std::vector<Mailbox> mailboxes_;
  std::vector<CommStats> stats_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // Collective exchange area: one slot per rank, fenced by barriers.
  std::vector<std::vector<std::uint8_t>> slots_;
};

template <typename T>
std::vector<std::vector<T>> RankContext::allgather(
    const std::vector<T>& mine) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::uint8_t> raw(mine.size() * sizeof(T));
  std::memcpy(raw.data(), mine.data(), raw.size());
  std::vector<std::vector<std::uint8_t>> all;
  exchange_slot(raw, all);
  std::vector<std::vector<T>> out(all.size());
  for (std::size_t r = 0; r < all.size(); ++r) {
    HGR_ASSERT(all[r].size() % sizeof(T) == 0);
    out[r].resize(all[r].size() / sizeof(T));
    std::memcpy(out[r].data(), all[r].data(), all[r].size());
  }
  return out;
}

template <typename T>
T RankContext::allreduce(T value, const std::function<T(T, T)>& op) {
  const std::vector<std::vector<T>> all = allgather<T>({value});
  T acc = all[0][0];
  for (std::size_t r = 1; r < all.size(); ++r) acc = op(acc, all[r][0]);
  return acc;
}

template <typename T>
std::vector<std::vector<T>> RankContext::alltoallv(
    const std::vector<std::vector<T>>& outgoing) {
  HGR_ASSERT(static_cast<int>(outgoing.size()) == size());
  for (int d = 0; d < size(); ++d)
    send<T>(d, /*tag=*/kAlltoallTag, outgoing[static_cast<std::size_t>(d)]);
  std::vector<std::vector<T>> incoming(static_cast<std::size_t>(size()));
  for (int s = 0; s < size(); ++s)
    incoming[static_cast<std::size_t>(s)] = recv<T>(s, kAlltoallTag);
  barrier();
  return incoming;
}

template <typename T>
std::vector<T> RankContext::bcast(const std::vector<T>& mine, int root) {
  // Built on the slot area: only the root's slot is read.
  const std::vector<std::vector<T>> all = allgather<T>(
      rank() == root ? mine : std::vector<T>{});
  return all[static_cast<std::size_t>(root)];
}

}  // namespace hgr
