// In-process message-passing runtime: the MPI substitute.
//
// The paper's partitioner is an MPI program on a 64-node cluster. This
// container has no MPI and one core, so the parallel algorithms here run
// against an in-process communicator: p ranks on p threads, typed
// point-to-point mailboxes, and the collectives the algorithms need
// (barrier, broadcast, all-reduce, all-gather, all-to-all). Every transfer
// is counted in bytes per rank, so communication *volume* — the metric the
// paper's claims rest on — is measured exactly even though wall-clock
// scalability is not reproducible on one core.
//
// Data model (see docs/COMM.md): collectives move FlatBuffer<T> payloads —
// CSR-style counts/displs plus one contiguous typed block drawn from a
// per-rank BufferPool — through a double-buffered per-rank exchange
// window. There is no byte-vector serialization on the typed paths: the
// sender memcpys its contiguous payload into its window half once, a
// single barrier publishes it, and each receiver copies every slice
// exactly once, straight into its own typed payload. The window is
// double-buffered by collective-epoch parity, so one barrier per
// collective is enough: the next collective's barrier is the previous
// one's drain fence (a rank can only be one collective ahead of the
// slowest reader). Rank-local slices never touch the mailboxes (self-send
// fast path), and allreduce folds fixed-size per-rank slots instead of
// allgathering vectors. The vector<vector<T>> overloads are compatibility
// shims over the flat forms.
//
// Failure model: an exception escaping one rank's function aborts the
// communicator — every rank blocked in a recv or collective is woken with
// CommAborted, all threads are joined, and Comm::run rethrows the
// lowest-rank original exception to the caller. The communicator stays
// reusable afterwards.
//
// Deadlock watchdog: every blocking point (recv, barrier, and the
// collectives built on them) publishes per-rank "waiting on what" state. A
// watchdog thread detects the all-ranks-blocked-no-progress configuration
// (mismatched barriers, a recv nobody sends, tag mix-ups), composes a
// who-waits-on-whom diagnosis, and aborts the communicator through the
// CommAborted path; Comm::run then throws CommDeadlock instead of hanging
// forever. See docs/CHECKING.md.
//
// Fault injection: set_fault_plan installs a deterministic chaos schedule
// (fault/fault_plan.hpp); every collective entry, send, and recv consults
// it and may stall the rank (wakes only on abort — the watchdog's test
// vector), sleep (delayed delivery), or throw FaultInjected mid-collective
// (the abort path's test vector). See docs/ROBUSTNESS.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "fault/fault_plan.hpp"
#include "obs/events.hpp"
#include "parallel/comm_telemetry.hpp"
#include "parallel/flat_buffer.hpp"

namespace hgr {

/// Per-rank traffic counters (bytes that would cross the network) and wait
/// time, split by blocking point. Each rank's entry is written only by its
/// own thread while a run is live.
struct CommStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_recv = 0;
  std::uint64_t messages_recv = 0;
  std::uint64_t collectives = 0;
  double recv_wait_seconds = 0.0;
  double barrier_wait_seconds = 0.0;
};

class Comm;

/// Historical reserved tag of the mailbox-based alltoallv. The flat
/// exchange no longer routes collective traffic through the mailboxes, but
/// the tag stays reserved (and asserted) so user code written against the
/// old contract keeps its meaning.
inline constexpr int kAlltoallTag = -424242;

/// Thrown inside ranks blocked on communication when a peer rank failed;
/// Comm::run translates it back into the peer's original exception.
class CommAborted : public std::runtime_error {
 public:
  CommAborted()
      : std::runtime_error("communication aborted: a peer rank threw") {}
};

/// Thrown by Comm::run when the watchdog detected that every rank was
/// blocked in communication with no progress for longer than the deadlock
/// timeout. what() carries the per-rank who-waits-on-whom diagnosis.
class CommDeadlock : public std::runtime_error {
 public:
  explicit CommDeadlock(const std::string& diagnosis)
      : std::runtime_error(diagnosis) {}
};

/// Handle a rank uses inside Comm::run. All operations are blocking and
/// must be called congruently across ranks (like MPI collectives).
class RankContext {
 public:
  RankContext(Comm& comm, int rank) : comm_(comm), rank_(rank) {}

  int rank() const { return rank_; }
  /// Typed view of this rank's id for ownership logic; the comm internals
  /// below this line stay on raw ints (wire/slot indices).
  RankId rank_id() const { return RankId{rank_}; }
  int size() const;

  /// This rank's payload pool. FlatBuffers built from it recycle their
  /// blocks across collective calls; they must not outlive the Comm.
  BufferPool& pool();

  /// A p-slot FlatBuffer wired to this rank's pool — the canonical start
  /// of a count pass for an alltoallv.
  template <typename T>
  FlatBuffer<T> make_buffer() {
    return FlatBuffer<T>(size(), &pool());
  }

  void send_bytes(int dest, int tag, std::span<const std::uint8_t> data);
  std::vector<std::uint8_t> recv_bytes(int src, int tag);

  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    HGR_ASSERT_MSG(tag != kAlltoallTag,
                   "user tag collides with the reserved alltoall tag");
    send_typed<T>(dest, tag, data);
  }

  template <typename T>
  std::vector<T> recv(int src, int tag) {
    HGR_ASSERT_MSG(tag != kAlltoallTag,
                   "user tag collides with the reserved alltoall tag");
    return recv_typed<T>(src, tag);
  }

  void barrier();

  /// Gather every rank's contribution; slot s of the result holds rank s's
  /// elements, contiguous in rank order.
  template <typename T>
  FlatBuffer<T> allgatherv(std::span<const T> mine) {
    static_assert(std::is_trivially_copyable_v<T>);
    faultpoint(fault::FaultSite::kAllgather);
    obs::EventSpan span("allgather", "comm");
    CollectiveTimer lat(*this, CollectiveKind::kAllgather);
    const std::size_t mine_bytes = mine.size() * sizeof(T);
    record_collective(CollectiveKind::kAllgather,
                      mine_bytes * static_cast<std::size_t>(size() - 1));
    // Traffic model: each rank ships its contribution to the other p-1
    // ranks (same accounting as the pre-flat slot exchange).
    account(mine_bytes * static_cast<std::size_t>(size() - 1), 0);
    bump_collectives();
    const int parity = begin_collective();
    publish_window(parity, mine.data(), mine_bytes, nullptr, nullptr);
    collective_fence();
    FlatBuffer<T> incoming(size(), &pool());
    for (int s = 0; s < size(); ++s)
      incoming.count(s) = window_bytes(parity, s) / sizeof(T);
    incoming.commit_counts();
    for (int s = 0; s < size(); ++s) {
      std::span<T> dst = incoming.push_n(s, incoming.size(s));
      if (!dst.empty())
        std::memcpy(dst.data(), window_data(parity, s), dst.size_bytes());
    }
    return incoming;
  }

  /// Compatibility shim over allgatherv: gather each rank's vector; every
  /// rank receives one vector per source rank, in rank order.
  template <typename T>
  std::vector<std::vector<T>>  // hgr-lint: ragged-ok (compat shim)
  allgather(const std::vector<T>& mine) {
    const FlatBuffer<T> flat = allgatherv<T>({mine.data(), mine.size()});
    std::vector<std::vector<T>> out(  // hgr-lint: ragged-ok (compat shim)
        static_cast<std::size_t>(size()));
    for (int s = 0; s < size(); ++s) {
      const std::span<const T> slice = flat.slot(s);
      out[static_cast<std::size_t>(s)].assign(slice.begin(), slice.end());
    }
    return out;
  }

  /// Reduce one value per rank with `op`, folded in rank order on a fixed
  /// per-rank slot (no vector allgather, no allocation).
  template <typename T, typename Op>
  T allreduce(T value, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    faultpoint(fault::FaultSite::kAllreduce);
    obs::EventSpan span("allreduce", "comm");
    CollectiveTimer lat(*this, CollectiveKind::kAllreduce);
    record_collective(CollectiveKind::kAllreduce,
                      sizeof(T) * static_cast<std::size_t>(size() - 1));
    account(sizeof(T) * static_cast<std::size_t>(size() - 1), 0);
    bump_collectives();
    const int parity = begin_collective();
    std::memcpy(reduce_slot(parity, rank_, sizeof(T)), &value, sizeof(T));
    collective_fence();
    T acc;
    std::memcpy(&acc, reduce_slot(parity, 0, sizeof(T)), sizeof(T));
    for (int r = 1; r < size(); ++r) {
      T next;
      std::memcpy(&next, reduce_slot(parity, r, sizeof(T)), sizeof(T));
      acc = op(acc, next);
    }
    return acc;
  }

  template <typename T>
  T allreduce_sum(T value) {
    return allreduce<T>(value, [](T a, T b) { return a + b; });
  }
  template <typename T>
  T allreduce_max(T value) {
    return allreduce<T>(value, [](T a, T b) { return a > b ? a : b; });
  }
  template <typename T>
  T allreduce_min(T value) {
    return allreduce<T>(value, [](T a, T b) { return a < b ? a : b; });
  }

  /// Personalized all-to-all over flat buffers: outgoing slot d goes to
  /// rank d; incoming slot s holds rank s's slice for this rank. The
  /// rank-local slice is copied directly (never touches the mailboxes and
  /// is excluded from traffic counters — see comm_telemetry.hpp).
  template <typename T>
  FlatBuffer<T> alltoallv(const FlatBuffer<T>& outgoing) {
    static_assert(std::is_trivially_copyable_v<T>);
    HGR_ASSERT(outgoing.slots() == size());
    HGR_DASSERT(outgoing.filled());
    faultpoint(fault::FaultSite::kAlltoallv);
    obs::EventSpan span("alltoallv", "comm");
    CollectiveTimer lat(*this, CollectiveKind::kAlltoallv);
    std::size_t off_rank_bytes = 0;
    for (int d = 0; d < size(); ++d)
      if (d != rank_) off_rank_bytes += outgoing.size(d) * sizeof(T);
    record_collective(CollectiveKind::kAlltoallv, off_rank_bytes);
    // One accounting entry per destination, exactly as the mailbox path
    // charged one message per dest (empty slices included).
    for (int d = 0; d < size(); ++d)
      if (d != rank_) account_p2p_send(d, outgoing.size(d) * sizeof(T));
    const int parity = begin_collective();
    publish_window(parity, outgoing.all().data(),
                   outgoing.total() * sizeof(T), outgoing.counts_data(),
                   outgoing.displs_data());
    barrier();  // the one (counted) fence, as the mailbox-era alltoallv's
    FlatBuffer<T> incoming(size(), &pool());
    for (int s = 0; s < size(); ++s)
      incoming.count(s) = window_count(parity, s, rank_);
    incoming.commit_counts();
    for (int s = 0; s < size(); ++s) {
      std::span<T> dst = incoming.push_n(s, incoming.size(s));
      if (!dst.empty())
        std::memcpy(dst.data(),
                    static_cast<const T*>(window_data(parity, s)) +
                        window_displ(parity, s, rank_),
                    dst.size_bytes());
      if (s != rank_) account_recv(dst.size_bytes(), 1);
    }
    return incoming;
  }

  /// Compatibility shim over the flat alltoallv.
  template <typename T>
  std::vector<std::vector<T>> alltoallv(  // hgr-lint: ragged-ok (compat shim)
      const std::vector<std::vector<T>>& outgoing) {  // hgr-lint: ragged-ok
    HGR_ASSERT(static_cast<int>(outgoing.size()) == size());
    FlatBuffer<T> out(size(), &pool());
    for (int d = 0; d < size(); ++d)
      out.count(d) = outgoing[static_cast<std::size_t>(d)].size();
    out.commit_counts();
    for (int d = 0; d < size(); ++d) {
      const std::vector<T>& src = outgoing[static_cast<std::size_t>(d)];
      std::span<T> dst = out.push_n(d, src.size());
      if (!dst.empty()) std::memcpy(dst.data(), src.data(), dst.size_bytes());
    }
    const FlatBuffer<T> flat = alltoallv(out);
    std::vector<std::vector<T>> incoming(  // hgr-lint: ragged-ok (compat shim)
        static_cast<std::size_t>(size()));
    for (int s = 0; s < size(); ++s) {
      const std::span<const T> slice = flat.slot(s);
      incoming[static_cast<std::size_t>(s)].assign(slice.begin(), slice.end());
    }
    return incoming;
  }

  /// Broadcast root's vector to everyone. Only the root publishes its slot
  /// and only that slot is read; non-root ranks contribute nothing.
  template <typename T>
  std::vector<T> bcast(const std::vector<T>& mine, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    faultpoint(fault::FaultSite::kBcast);
    obs::EventSpan span("bcast", "comm");
    CollectiveTimer lat(*this, CollectiveKind::kBcast);
    const std::size_t root_bytes =
        rank_ == root ? mine.size() * sizeof(T) *
                            static_cast<std::size_t>(size() - 1)
                      : 0;
    record_collective(CollectiveKind::kBcast, root_bytes);
    account(root_bytes, 0);
    bump_collectives();
    const int parity = begin_collective();
    if (rank_ == root)
      publish_window(parity, mine.data(), mine.size() * sizeof(T), nullptr,
                     nullptr);
    collective_fence();
    const std::size_t bytes = window_bytes(parity, root);
    HGR_ASSERT(bytes % sizeof(T) == 0);
    std::vector<T> out(bytes / sizeof(T));
    if (bytes != 0) std::memcpy(out.data(), window_data(parity, root), bytes);
    return out;
  }

  const CommStats& stats() const;

 private:
  friend class Comm;  // Mailbox queues hold RawMessage

  /// Consult the communicator's fault plan (if any) at an instrumented
  /// blocking point; may sleep, throw FaultInjected, or stall until abort.
  void faultpoint(fault::FaultSite site);

  void account(std::size_t bytes, std::size_t messages);
  void account_recv(std::size_t bytes, std::size_t messages);
  /// Per-destination charge of the collective send path: CommStats
  /// bytes/messages, the p2p matrices, and the "send" timeline instant —
  /// identical to what the mailbox send path records for off-rank traffic.
  void account_p2p_send(int dest, std::size_t bytes);
  /// Bump obs counters comm.<kind>.count / comm.<kind>.bytes, record the
  /// payload into the comm.<kind>.msg_bytes histogram, and tally the
  /// per-rank collective call.
  void record_collective(CollectiveKind kind, std::size_t bytes);
  /// Record one call's wall time into the comm.<kind>.call_ns latency
  /// histogram (the distribution counters cannot express).
  void record_collective_seconds(CollectiveKind kind, double seconds);

  /// RAII per-call latency probe: times the whole collective body
  /// (publish, fence, reads — injected faults included, since they are
  /// latency as far as the caller can tell) into comm.<kind>.call_ns.
  class CollectiveTimer {
   public:
    CollectiveTimer(RankContext& ctx, CollectiveKind kind)
        : ctx_(ctx), kind_(kind) {}
    ~CollectiveTimer() {
      ctx_.record_collective_seconds(kind_, timer_.seconds());
    }
    CollectiveTimer(const CollectiveTimer&) = delete;
    CollectiveTimer& operator=(const CollectiveTimer&) = delete;

   private:
    RankContext& ctx_;
    CollectiveKind kind_;
    WallTimer timer_;
  };
  /// CommStats.collectives += 1 (each collective counts once; barriers
  /// count through barrier()).
  void bump_collectives();
  void send_bytes_impl(int dest, int tag, std::span<const std::uint8_t> data);

  /// A message as it sits in a mailbox: a pooled block plus its live size.
  struct RawMessage {
    PoolBlock block;
    std::size_t bytes = 0;
  };
  RawMessage recv_raw(int src, int tag);
  /// Return a received message's block to this rank's mailbox pool.
  void recycle(RawMessage&& msg);

  // Double-buffered exchange window (owned by Comm, fenced by barriers).
  // begin_collective() returns this collective's window parity and bumps
  // the rank's epoch; exactly one barrier_wait must follow each publish
  // (the parity invariant that lets one barrier double as the previous
  // collective's drain fence).
  int begin_collective();
  void publish_window(int parity, const void* data, std::size_t bytes,
                      const std::size_t* counts, const std::size_t* displs);
  const void* window_data(int parity, int r) const;
  std::size_t window_bytes(int parity, int r) const;
  std::size_t window_count(int parity, int r, int slot) const;
  std::size_t window_displ(int parity, int r, int slot) const;
  std::byte* reduce_slot(int parity, int r, std::size_t bytes);
  /// Uncounted barrier separating a collective's publishes from its reads.
  void collective_fence();

  template <typename T>
  void send_typed(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes_impl(dest, tag,
                    {reinterpret_cast<const std::uint8_t*>(data.data()),
                     data.size() * sizeof(T)});
  }

  template <typename T>
  std::vector<T> recv_typed(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    RawMessage raw = recv_raw(src, tag);
    HGR_ASSERT(raw.bytes % sizeof(T) == 0);
    std::vector<T> out(raw.bytes / sizeof(T));
    if (raw.bytes != 0) std::memcpy(out.data(), raw.block.data(), raw.bytes);
    recycle(std::move(raw));
    return out;
  }

  Comm& comm_;
  int rank_;
};

/// The communicator: owns the shared mailboxes and collective areas and
/// launches one thread per rank.
class Comm {
 public:
  explicit Comm(int num_ranks);

  int num_ranks() const { return num_ranks_; }

  /// Run f as rank r on each of num_ranks threads; returns when all ranks
  /// finish. If any rank throws, every other rank blocked in communication
  /// is aborted (it observes CommAborted), all threads are joined, and the
  /// lowest-rank original exception is rethrown here. If the watchdog
  /// detected a deadlock instead, CommDeadlock is thrown.
  void run(const std::function<void(RankContext&)>& f);

  /// Seconds of all-ranks-blocked-with-no-progress before the watchdog
  /// declares a deadlock. 0 disables the watchdog. Default 30s: far above
  /// any legitimate full-quiescence window (a satisfiable recv or barrier
  /// is woken at notify time), yet bounded enough that CI fails with a
  /// diagnosis instead of timing out. Atomic: may be called from any
  /// thread, even mid-run — the watchdog re-reads it every poll, so
  /// shortening or extending a live run's timeout takes effect
  /// immediately. (Setting 0 mid-run pauses detection but cannot retire
  /// an already-started watchdog thread; enabling takes effect at the
  /// next run().)
  void set_deadlock_timeout(double seconds) {
    deadlock_timeout_.store(seconds, std::memory_order_release);
  }
  double deadlock_timeout() const {
    return deadlock_timeout_.load(std::memory_order_acquire);
  }

  /// Install (or clear, with nullptr) the deterministic fault plan every
  /// subsequent run() consults at collective/send/recv boundaries. Only
  /// valid between runs. The plan's match counters live in the plan, so
  /// sharing one plan across Comms (or runs) continues its schedule.
  void set_fault_plan(std::shared_ptr<const fault::FaultPlan> plan) {
    fault_plan_ = std::move(plan);
  }
  const fault::FaultPlan* fault_plan() const { return fault_plan_.get(); }

  /// Aggregate traffic over all ranks from the last run().
  CommStats total_stats() const;
  const CommStats& rank_stats(int rank) const {
    return stats_[static_cast<std::size_t>(rank)];
  }

  /// Rank r's payload pool (persistent across runs — that is the point).
  /// Must not be touched while a run is live except by rank r itself.
  const BufferPool& rank_pool(int rank) const {
    return rank_pools_[static_cast<std::size_t>(rank)];
  }

  /// Drop every cached payload block (all rank pools). Only valid between
  /// runs; outstanding FlatBuffers still release back safely afterwards.
  void clear_buffer_pools() {
    for (BufferPool& pool : rank_pools_) pool.clear();
  }

  /// Full telemetry (per-rank stats, p2p matrix, collective counts, wait
  /// times) from the last run(). Also folded into the process-global
  /// accumulator (comm_telemetry_snapshot()) at the end of every run.
  CommTelemetry telemetry() const;

 private:
  friend class RankContext;

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable ready;
    std::map<std::pair<int, int>, std::deque<RankContext::RawMessage>>
        queues;  // (src, tag) -> messages in order
    BufferPool pool;  // recycles message blocks; guarded by mutex
  };

  /// One rank's half of the exchange window for one epoch parity: a
  /// persistent payload block (grown from the rank's BufferPool, never
  /// shrunk) plus the alltoallv slice layout (counts/displs in elements;
  /// empty for allgather/bcast publishes). Written only by the owning rank
  /// before its barrier, read by every rank after it.
  struct CollectiveSlot {
    PoolBlock payload;
    std::size_t bytes = 0;
    std::vector<std::size_t> counts;
    std::vector<std::size_t> displs;
  };

  /// Fixed-size per-rank allreduce slot; 64 bytes covers every wire type
  /// the partitioner reduces (asserted per call site).
  static constexpr std::size_t kReduceSlotBytes = 64;
  struct alignas(64) ReduceSlot {
    std::byte bytes[kReduceSlotBytes];
  };

  // Sense-reversing generation barrier. `rank` identifies the caller for
  // the watchdog's wait-state bookkeeping.
  void barrier_wait(int rank);

  // Wake every rank blocked in a recv or barrier; they throw CommAborted.
  void abort_all();

  // --- fault injection (docs/ROBUSTNESS.md) ---

  /// Act on a firing fault rule for `rank` at `site`: sleep, throw
  /// FaultInjected, or block until abort_all (throwing CommAborted then).
  void maybe_inject(int rank, fault::FaultSite site);
  /// The kStall implementation: publish a kStalled wait state and block on
  /// the rank's mailbox condvar until the run is aborted. Never returns
  /// normally; without a live watchdog (deadlock_timeout 0) and with no
  /// other rank failing, this hangs the run — exactly the failure the
  /// watchdog exists to catch.
  [[noreturn]] void stall_until_abort(int rank);

  // --- deadlock watchdog ---

  /// What a rank is currently blocked on, published for the watchdog.
  /// kind is written last (release) so src/tag are valid whenever the
  /// watchdog observes kind != kNotWaiting.
  struct WaitState {
    static constexpr int kNotWaiting = 0;
    static constexpr int kRecv = 1;
    static constexpr int kBarrier = 2;
    static constexpr int kStalled = 3;  // injected fault, wakes on abort only
    std::atomic<int> kind{kNotWaiting};
    std::atomic<int> src{-1};
    std::atomic<int> tag{0};
  };

  /// RAII: publish "rank r is blocked on ..." around a cv wait. Doubles as
  /// the wait-time probe: the same bracket that feeds the watchdog times
  /// the wait and accumulates it into the rank's CommStats (and emits a
  /// "wait.recv"/"wait.barrier" timeline span when event capture is on).
  class ScopedWait {
   public:
    ScopedWait(Comm& comm, int rank, int kind, int src, int tag);
    ~ScopedWait();
    ScopedWait(const ScopedWait&) = delete;
    ScopedWait& operator=(const ScopedWait&) = delete;

   private:
    WaitState& state_;
    std::atomic<std::uint64_t>& progress_;
    CommStats& stats_;
    int kind_;
    const char* event_name_ = nullptr;
    WallTimer timer_;
  };

  void watchdog_loop();
  std::string compose_deadlock_diagnosis(double stuck_seconds);

  int num_ranks_;
  std::vector<Mailbox> mailboxes_;
  std::vector<CommStats> stats_;
  // Row-major p x p traffic matrices (row = sender). Each row is written
  // only by its own rank's thread during a run; read after join.
  std::vector<std::uint64_t> p2p_bytes_;
  std::vector<std::uint64_t> p2p_messages_;
  // Per-rank collective call counts, indexed by CollectiveKind.
  std::vector<std::array<std::uint64_t, kNumCollectiveKinds>>
      collective_calls_;
  // Wall time of the last completed run() (denominator of wait fractions).
  double last_run_seconds_ = 0.0;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;
  std::atomic<bool> aborted_{false};

  // Watchdog state. progress_ is bumped on every send, every wait
  // entry/exit, and every barrier release; a frozen counter with every
  // rank's WaitState published means no rank can ever make progress again.
  std::unique_ptr<WaitState[]> wait_states_;
  std::atomic<std::uint64_t> progress_{0};
  // Atomic: set_deadlock_timeout may race the watchdog's per-poll reads.
  std::atomic<double> deadlock_timeout_{30.0};
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::string deadlock_diagnosis_;  // guarded by watchdog_mutex_

  // Collective exchange window: one slot per rank per epoch parity,
  // fenced by barriers (the barrier mutex provides the happens-before
  // between a publish and the peers' reads). Double-buffering makes one
  // barrier per collective sufficient: before a rank can overwrite parity
  // P at epoch e+2 it must pass epoch e+1's barrier, which every reader
  // only reaches after finishing its epoch-e reads of parity P.
  std::array<std::vector<CollectiveSlot>, 2> slots_;
  std::array<std::vector<ReduceSlot>, 2> reduce_slots_;
  // Per-rank collective epoch (parity selector). Each entry is written
  // only by its own rank's thread; congruent collectives keep them equal.
  struct alignas(64) RankEpoch {
    std::uint64_t value = 0;
  };
  std::vector<RankEpoch> collective_epochs_;
  // Per-rank payload pools, persistent across runs.
  std::vector<BufferPool> rank_pools_;

  // Chaos schedule consulted by faultpoint(); null = no injection.
  std::shared_ptr<const fault::FaultPlan> fault_plan_;
};

inline BufferPool& RankContext::pool() {
  return comm_.rank_pools_[static_cast<std::size_t>(rank_)];
}

}  // namespace hgr
