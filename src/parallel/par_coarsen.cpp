#include "parallel/par_coarsen.hpp"

#include "common/assert.hpp"

namespace hgr {

std::uint64_t hypergraph_checksum(const Hypergraph& h) {
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  const auto mix = [&x](std::uint64_t v) {
    x ^= v + 0x9e3779b97f4a7c15ULL + (x << 6) + (x >> 2);
  };
  mix(static_cast<std::uint64_t>(h.num_vertices()));
  mix(static_cast<std::uint64_t>(h.num_nets()));
  for (const VertexId v : h.vertices()) {
    mix(static_cast<std::uint64_t>(h.vertex_weight(v)));
    mix(static_cast<std::uint64_t>(h.vertex_size(v)));
    mix(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(h.fixed_part(v).v)));
  }
  for (const NetId net : h.nets()) {
    mix(static_cast<std::uint64_t>(h.net_cost(net)));
    for (const VertexId v : h.pins(net)) mix(static_cast<std::uint64_t>(v.v));
  }
  return x;
}

CoarseLevel parallel_contract(RankContext& ctx, const Hypergraph& h,
                              std::span<const Index> match, Workspace* ws) {
  // The parallel matching travels as raw ids; retype at this boundary.
  CoarseLevel level = contract(
      h, IdSpan<VertexId, const VertexId>(from_raw_span<VertexId>(match)), ws);
  const std::uint64_t mine = hypergraph_checksum(level.coarse);
  // One fused min/max reduction (one barrier) instead of two.
  struct MinMax {
    std::uint64_t lo;
    std::uint64_t hi;
  };
  const MinMax extremes =
      ctx.allreduce<MinMax>({mine, mine}, [](MinMax a, MinMax b) {
        return MinMax{a.lo < b.lo ? a.lo : b.lo, a.hi > b.hi ? a.hi : b.hi};
      });
  HGR_ASSERT_MSG(extremes.lo == extremes.hi,
                 "ranks contracted divergent coarse hypergraphs");
  return level;
}

}  // namespace hgr
