#include "parallel/comm.hpp"

#include <exception>
#include <string>
#include <thread>

#include "obs/trace.hpp"

namespace hgr {

Comm::Comm(int num_ranks)
    : num_ranks_(num_ranks),
      mailboxes_(static_cast<std::size_t>(num_ranks)),
      stats_(static_cast<std::size_t>(num_ranks)),
      slots_(static_cast<std::size_t>(num_ranks)) {
  HGR_ASSERT(num_ranks >= 1);
}

void Comm::run(const std::function<void(RankContext&)>& f) {
  for (auto& s : stats_) s = CommStats{};
  for (auto& box : mailboxes_) {
    std::lock_guard lock(box.mutex);
    box.queues.clear();
  }
  barrier_arrived_ = 0;
  barrier_generation_ = 0;
  aborted_.store(false, std::memory_order_relaxed);

  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(num_ranks_));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks_));
  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([this, r, &f, &errors] {
      try {
        RankContext ctx(*this, r);
        f(ctx);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        abort_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  aborted_.store(false, std::memory_order_relaxed);

  // Rethrow the lowest-rank *original* failure; secondary CommAborted
  // unwinds (ranks woken because a peer died) only surface if, somehow, no
  // primary exception was captured.
  std::exception_ptr fallback;
  for (const std::exception_ptr& e : errors) {
    if (!e) continue;
    if (!fallback) fallback = e;
    try {
      std::rethrow_exception(e);
    } catch (const CommAborted&) {
      continue;
    } catch (...) {
      throw;
    }
  }
  if (fallback) std::rethrow_exception(fallback);
}

CommStats Comm::total_stats() const {
  CommStats total;
  for (const CommStats& s : stats_) {
    total.bytes_sent += s.bytes_sent;
    total.messages_sent += s.messages_sent;
    total.collectives += s.collectives;
  }
  return total;
}

void Comm::abort_all() {
  aborted_.store(true, std::memory_order_release);
  // Lock each waiter's mutex before notifying so the flag cannot slip in
  // between a predicate check and the wait.
  for (auto& box : mailboxes_) {
    std::lock_guard lock(box.mutex);
    box.ready.notify_all();
  }
  std::lock_guard lock(barrier_mutex_);
  barrier_cv_.notify_all();
}

void Comm::barrier_wait() {
  std::unique_lock lock(barrier_mutex_);
  if (aborted_.load(std::memory_order_acquire)) throw CommAborted{};
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_arrived_ == num_ranks_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock, [this, my_generation] {
      return barrier_generation_ != my_generation ||
             aborted_.load(std::memory_order_acquire);
    });
    if (barrier_generation_ == my_generation) throw CommAborted{};
  }
}

int RankContext::size() const { return comm_.num_ranks(); }

const CommStats& RankContext::stats() const {
  return comm_.stats_[static_cast<std::size_t>(rank_)];
}

void RankContext::account(std::size_t bytes, std::size_t messages) {
  CommStats& s = comm_.stats_[static_cast<std::size_t>(rank_)];
  s.bytes_sent += bytes;
  s.messages_sent += messages;
}

void RankContext::record_collective(const char* type, std::size_t bytes) {
  const std::string base = std::string("comm.") + type;
  obs::counter(base + ".count") += 1;
  if (bytes != 0) obs::counter(base + ".bytes") += bytes;
}

void RankContext::send_bytes(int dest, int tag,
                             std::span<const std::uint8_t> data) {
  HGR_ASSERT_MSG(tag != kAlltoallTag,
                 "user tag collides with the reserved alltoall tag");
  if (dest != rank_) {
    obs::counter("comm.p2p.count") += 1;
    obs::counter("comm.p2p.bytes") += data.size();
  }
  send_bytes_impl(dest, tag, data);
}

std::vector<std::uint8_t> RankContext::recv_bytes(int src, int tag) {
  HGR_ASSERT_MSG(tag != kAlltoallTag,
                 "user tag collides with the reserved alltoall tag");
  return recv_bytes_impl(src, tag);
}

void RankContext::send_bytes_impl(int dest, int tag,
                                  std::span<const std::uint8_t> data) {
  HGR_ASSERT(dest >= 0 && dest < size());
  // Self-sends stay local (MPI implementations also bypass the network).
  if (dest != rank_) account(data.size(), 1);
  Comm::Mailbox& box = comm_.mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard lock(box.mutex);
    box.queues[{rank_, tag}].emplace_back(data.begin(), data.end());
  }
  box.ready.notify_all();
}

std::vector<std::uint8_t> RankContext::recv_bytes_impl(int src, int tag) {
  HGR_ASSERT(src >= 0 && src < size());
  Comm::Mailbox& box = comm_.mailboxes_[static_cast<std::size_t>(rank_)];
  std::unique_lock lock(box.mutex);
  const auto key = std::make_pair(src, tag);
  box.ready.wait(lock, [this, &box, &key] {
    if (comm_.aborted_.load(std::memory_order_acquire)) return true;
    const auto it = box.queues.find(key);
    return it != box.queues.end() && !it->second.empty();
  });
  if (comm_.aborted_.load(std::memory_order_acquire)) throw CommAborted{};
  auto& queue = box.queues[key];
  std::vector<std::uint8_t> msg = std::move(queue.front());
  queue.pop_front();
  return msg;
}

void RankContext::barrier() {
  record_collective("barrier", 0);
  comm_.stats_[static_cast<std::size_t>(rank_)].collectives += 1;
  comm_.barrier_wait();
}

void RankContext::exchange_slot(
    const std::vector<std::uint8_t>& mine,
    std::vector<std::vector<std::uint8_t>>& all_out) {
  // Write-barrier-read-barrier around the shared slot area. Traffic model:
  // each rank ships its contribution to the other p-1 ranks.
  comm_.slots_[static_cast<std::size_t>(rank_)] = mine;
  account(mine.size() * static_cast<std::size_t>(size() - 1), 0);
  comm_.stats_[static_cast<std::size_t>(rank_)].collectives += 1;
  comm_.barrier_wait();
  all_out = comm_.slots_;
  comm_.barrier_wait();
}

}  // namespace hgr
