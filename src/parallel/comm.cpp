#include "parallel/comm.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <string>
#include <thread>

#include "obs/trace.hpp"

namespace hgr {

Comm::Comm(int num_ranks)
    : num_ranks_(num_ranks),
      mailboxes_(static_cast<std::size_t>(num_ranks)),
      stats_(static_cast<std::size_t>(num_ranks)),
      p2p_bytes_(static_cast<std::size_t>(num_ranks) *
                 static_cast<std::size_t>(num_ranks)),
      p2p_messages_(static_cast<std::size_t>(num_ranks) *
                    static_cast<std::size_t>(num_ranks)),
      collective_calls_(static_cast<std::size_t>(num_ranks)),
      wait_states_(
          std::make_unique<WaitState[]>(static_cast<std::size_t>(num_ranks))),
      collective_epochs_(static_cast<std::size_t>(num_ranks)),
      rank_pools_(static_cast<std::size_t>(num_ranks)) {
  HGR_ASSERT(num_ranks >= 1);
  for (auto& parity : slots_) parity.resize(static_cast<std::size_t>(num_ranks));
  for (auto& parity : reduce_slots_)
    parity.resize(static_cast<std::size_t>(num_ranks));
}

Comm::ScopedWait::ScopedWait(Comm& comm, int rank, int kind, int src, int tag)
    : state_(comm.wait_states_[static_cast<std::size_t>(rank)]),
      progress_(comm.progress_),
      stats_(comm.stats_[static_cast<std::size_t>(rank)]),
      kind_(kind) {
  state_.src.store(src, std::memory_order_relaxed);
  state_.tag.store(tag, std::memory_order_relaxed);
  state_.kind.store(kind, std::memory_order_release);
  progress_.fetch_add(1, std::memory_order_acq_rel);
  if (obs::events_enabled()) {
    event_name_ = kind_ == WaitState::kRecv ? "wait.recv" : "wait.barrier";
    obs::emit_begin(event_name_, "comm");
  }
}

Comm::ScopedWait::~ScopedWait() {
  const double waited = timer_.seconds();
  if (kind_ == WaitState::kRecv)
    stats_.recv_wait_seconds += waited;
  else
    stats_.barrier_wait_seconds += waited;
  if (event_name_ != nullptr) obs::emit_end(event_name_, "comm");
  state_.kind.store(WaitState::kNotWaiting, std::memory_order_release);
  progress_.fetch_add(1, std::memory_order_acq_rel);
}

std::string Comm::compose_deadlock_diagnosis(double stuck_seconds) {
  char head[128];
  std::snprintf(head, sizeof(head),
                "comm deadlock: all %d ranks blocked with no progress for "
                "%.2fs",
                num_ranks_, stuck_seconds);
  std::string out = head;
  int arrived = 0;
  {
    std::lock_guard lock(barrier_mutex_);
    arrived = barrier_arrived_;
  }
  for (int r = 0; r < num_ranks_; ++r) {
    const WaitState& w = wait_states_[static_cast<std::size_t>(r)];
    char line[96];
    switch (w.kind.load(std::memory_order_acquire)) {
      case WaitState::kRecv:
        std::snprintf(line, sizeof(line), "\n  rank %d: recv(src=%d, tag=%d)",
                      r, w.src.load(std::memory_order_relaxed),
                      w.tag.load(std::memory_order_relaxed));
        break;
      case WaitState::kBarrier:
        std::snprintf(line, sizeof(line),
                      "\n  rank %d: barrier (%d of %d arrived)", r, arrived,
                      num_ranks_);
        break;
      case WaitState::kStalled:
        std::snprintf(line, sizeof(line),
                      "\n  rank %d: stalled (injected fault)", r);
        break;
      default:
        std::snprintf(line, sizeof(line), "\n  rank %d: not blocked", r);
        break;
    }
    out += line;
  }
  return out;
}

void Comm::watchdog_loop() {
  std::uint64_t last_progress = progress_.load(std::memory_order_acquire);
  WallTimer stuck_timer;
  bool stuck = false;

  std::unique_lock lock(watchdog_mutex_);
  for (;;) {
    // Re-read the timeout every poll: set_deadlock_timeout may be called
    // from any thread mid-run, and the update must take effect without
    // waiting for the next run().
    const double timeout = deadlock_timeout_.load(std::memory_order_acquire);
    const auto poll = std::chrono::milliseconds(
        timeout > 0.0 ? std::clamp(
                            static_cast<long>(timeout * 1000.0 / 20.0), 1L,
                            100L)
                      : 100L);
    if (watchdog_cv_.wait_for(lock, poll, [this] { return watchdog_stop_; }))
      return;
    if (timeout <= 0.0 || aborted_.load(std::memory_order_acquire)) {
      stuck = false;
      continue;
    }
    bool all_blocked = true;
    for (int r = 0; r < num_ranks_ && all_blocked; ++r)
      all_blocked = wait_states_[static_cast<std::size_t>(r)].kind.load(
                        std::memory_order_acquire) != WaitState::kNotWaiting;
    const std::uint64_t now_progress =
        progress_.load(std::memory_order_acquire);
    if (!all_blocked || now_progress != last_progress) {
      stuck = false;
      last_progress = now_progress;
      continue;
    }
    if (!stuck) {
      stuck = true;
      stuck_timer.reset();
      continue;
    }
    const double stuck_seconds = stuck_timer.seconds();
    if (stuck_seconds < timeout) continue;
    deadlock_diagnosis_ = compose_deadlock_diagnosis(stuck_seconds);
    lock.unlock();
    abort_all();
    return;
  }
}

void Comm::run(const std::function<void(RankContext&)>& f) {
  WallTimer run_timer;
  for (auto& s : stats_) s = CommStats{};
  for (auto& v : p2p_bytes_) v = 0;
  for (auto& v : p2p_messages_) v = 0;
  for (auto& calls : collective_calls_) calls.fill(0);
  for (auto& box : mailboxes_) {
    std::lock_guard lock(box.mutex);
    // Return any undelivered message blocks to the mailbox pool so an
    // aborted run does not leak capacity the next run would re-allocate.
    for (auto& [key, queue] : box.queues)
      for (RankContext::RawMessage& msg : queue)
        box.pool.release(std::move(msg.block));
    box.queues.clear();
  }
  // Window payload blocks are kept (they are the recycled capacity); only
  // the live sizes and epochs reset.
  for (auto& parity : slots_)
    for (CollectiveSlot& slot : parity) {
      slot.bytes = 0;
      slot.counts.clear();
      slot.displs.clear();
    }
  for (RankEpoch& epoch : collective_epochs_) epoch.value = 0;
  barrier_arrived_ = 0;
  barrier_generation_ = 0;
  aborted_.store(false, std::memory_order_relaxed);
  progress_.store(0, std::memory_order_relaxed);
  for (int r = 0; r < num_ranks_; ++r)
    wait_states_[static_cast<std::size_t>(r)].kind.store(
        WaitState::kNotWaiting, std::memory_order_relaxed);
  {
    std::lock_guard lock(watchdog_mutex_);
    watchdog_stop_ = false;
    deadlock_diagnosis_.clear();
  }

  std::thread watchdog;
  if (deadlock_timeout() > 0.0)
    watchdog = std::thread([this] { watchdog_loop(); });

  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(num_ranks_));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks_));
  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([this, r, &f, &errors] {
      obs::set_thread_rank(r);  // timeline events land on rank r's track
      try {
        RankContext ctx(*this, r);
        f(ctx);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        abort_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  std::string deadlock_diagnosis;
  if (watchdog.joinable()) {
    {
      std::lock_guard lock(watchdog_mutex_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog.join();
    std::lock_guard lock(watchdog_mutex_);
    deadlock_diagnosis = deadlock_diagnosis_;
  }
  aborted_.store(false, std::memory_order_relaxed);
  last_run_seconds_ = run_timer.seconds();

  // Fold this run into the process-global telemetry (even failed runs:
  // partial traffic is still real traffic) and refresh the "comm" section
  // of the trace export so any later JSON dump carries it.
  {
    accumulate_comm_telemetry(telemetry());
    obs::global_registry().set_section(
        "comm", comm_telemetry_snapshot().to_json());
  }

  // Rethrow the lowest-rank *original* failure; secondary CommAborted
  // unwinds (ranks woken because a peer died) only surface if no primary
  // exception was captured — and if the watchdog aborted the run, the
  // deadlock diagnosis outranks those secondary unwinds.
  std::exception_ptr fallback;
  for (const std::exception_ptr& e : errors) {
    if (!e) continue;
    if (!fallback) fallback = e;
    try {
      std::rethrow_exception(e);
    } catch (const CommAborted&) {
      continue;
    } catch (...) {
      throw;
    }
  }
  if (!deadlock_diagnosis.empty()) throw CommDeadlock(deadlock_diagnosis);
  if (fallback) std::rethrow_exception(fallback);
}

CommStats Comm::total_stats() const {
  CommStats total;
  for (const CommStats& s : stats_) {
    total.bytes_sent += s.bytes_sent;
    total.messages_sent += s.messages_sent;
    total.bytes_recv += s.bytes_recv;
    total.messages_recv += s.messages_recv;
    total.collectives += s.collectives;
    total.recv_wait_seconds += s.recv_wait_seconds;
    total.barrier_wait_seconds += s.barrier_wait_seconds;
  }
  return total;
}

CommTelemetry Comm::telemetry() const {
  CommTelemetry t;
  t.resize(num_ranks_);
  for (int r = 0; r < num_ranks_; ++r) {
    const CommStats& s = stats_[static_cast<std::size_t>(r)];
    RankCommTelemetry& rt = t.ranks[static_cast<std::size_t>(r)];
    rt.bytes_sent = s.bytes_sent;
    rt.bytes_recv = s.bytes_recv;
    rt.messages_sent = s.messages_sent;
    rt.messages_recv = s.messages_recv;
    rt.recv_wait_seconds = s.recv_wait_seconds;
    rt.barrier_wait_seconds = s.barrier_wait_seconds;
    rt.collective_calls = collective_calls_[static_cast<std::size_t>(r)];
  }
  t.p2p_bytes = p2p_bytes_;
  t.p2p_messages = p2p_messages_;
  t.run_seconds = last_run_seconds_;
  t.runs = last_run_seconds_ > 0.0 ? 1 : 0;
  return t;
}

void Comm::maybe_inject(int rank, fault::FaultSite site) {
  const fault::FaultPlan* plan = fault_plan_.get();
  if (plan == nullptr) return;
  const std::optional<fault::FaultDecision> d = plan->check(site, rank);
  if (!d.has_value()) return;
  switch (d->kind) {
    case fault::FaultKind::kDelay:
      obs::counter("fault.delay") += 1;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(d->delay_ms));
      return;
    case fault::FaultKind::kThrow:
      obs::counter("fault.throw") += 1;
      throw fault::FaultInjected(d->description);
    case fault::FaultKind::kStall:
      obs::counter("fault.stall") += 1;
      stall_until_abort(rank);
  }
}

void Comm::stall_until_abort(int rank) {
  // Block on this rank's own mailbox condvar (abort_all notifies every
  // mailbox), publishing a kStalled wait state so the watchdog counts the
  // rank as blocked and the deadlock diagnosis names the injection.
  Mailbox& box = mailboxes_[static_cast<std::size_t>(rank)];
  std::unique_lock lock(box.mutex);
  {
    ScopedWait waiting(*this, rank, WaitState::kStalled, -1, 0);
    box.ready.wait(
        lock, [this] { return aborted_.load(std::memory_order_acquire); });
  }
  throw CommAborted{};
}

void Comm::abort_all() {
  aborted_.store(true, std::memory_order_release);
  // Lock each waiter's mutex before notifying so the flag cannot slip in
  // between a predicate check and the wait.
  for (auto& box : mailboxes_) {
    std::lock_guard lock(box.mutex);
    box.ready.notify_all();
  }
  std::lock_guard lock(barrier_mutex_);
  barrier_cv_.notify_all();
}

void Comm::barrier_wait(int rank) {
  std::unique_lock lock(barrier_mutex_);
  if (aborted_.load(std::memory_order_acquire)) throw CommAborted{};
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_arrived_ == num_ranks_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    progress_.fetch_add(1, std::memory_order_acq_rel);
    barrier_cv_.notify_all();
  } else {
    ScopedWait waiting(*this, rank, WaitState::kBarrier, -1, 0);
    barrier_cv_.wait(lock, [this, my_generation] {
      return barrier_generation_ != my_generation ||
             aborted_.load(std::memory_order_acquire);
    });
    if (barrier_generation_ == my_generation) throw CommAborted{};
  }
}

int RankContext::size() const { return comm_.num_ranks(); }

void RankContext::faultpoint(fault::FaultSite site) {
  comm_.maybe_inject(rank_, site);
}

const CommStats& RankContext::stats() const {
  return comm_.stats_[static_cast<std::size_t>(rank_)];
}

void RankContext::account(std::size_t bytes, std::size_t messages) {
  CommStats& s = comm_.stats_[static_cast<std::size_t>(rank_)];
  s.bytes_sent += bytes;
  s.messages_sent += messages;
}

void RankContext::account_recv(std::size_t bytes, std::size_t messages) {
  CommStats& s = comm_.stats_[static_cast<std::size_t>(rank_)];
  s.bytes_recv += bytes;
  s.messages_recv += messages;
}

void RankContext::account_p2p_send(int dest, std::size_t bytes) {
  HGR_DASSERT(dest != rank_);
  account(bytes, 1);
  const std::size_t cell = static_cast<std::size_t>(rank_) *
                               static_cast<std::size_t>(comm_.num_ranks_) +
                           static_cast<std::size_t>(dest);
  comm_.p2p_bytes_[cell] += bytes;
  comm_.p2p_messages_[cell] += 1;
  if (obs::events_enabled()) obs::emit_instant("send", "comm", bytes);
}

void RankContext::bump_collectives() {
  comm_.stats_[static_cast<std::size_t>(rank_)].collectives += 1;
}

namespace {

struct CollectiveCounters {
  obs::CachedCounter count;
  obs::CachedCounter bytes;
};

// Per-kind distribution handles (Observability v3): call latency and
// per-call payload size. Counters above give the totals; these give the
// shape (p50/p95/p99), which is what exposes straggler collectives.
struct CollectiveHists {
  obs::CachedHistogram call_ns;
  obs::CachedHistogram msg_bytes;
};

CollectiveHists& collective_hists(CollectiveKind kind) {
  static CollectiveHists hists[kNumCollectiveKinds] = {
      {obs::CachedHistogram("comm.barrier.call_ns"),
       obs::CachedHistogram("comm.barrier.msg_bytes")},
      {obs::CachedHistogram("comm.allgather.call_ns"),
       obs::CachedHistogram("comm.allgather.msg_bytes")},
      {obs::CachedHistogram("comm.allreduce.call_ns"),
       obs::CachedHistogram("comm.allreduce.msg_bytes")},
      {obs::CachedHistogram("comm.bcast.call_ns"),
       obs::CachedHistogram("comm.bcast.msg_bytes")},
      {obs::CachedHistogram("comm.alltoallv.call_ns"),
       obs::CachedHistogram("comm.alltoallv.msg_bytes")},
  };
  return hists[static_cast<std::size_t>(kind)];
}

// Cached per-kind handles: record_collective runs once per collective per
// rank, so the old name-building (std::string concat + two registry mutex
// lookups) was measurable on collective-heavy refinement loops.
CollectiveCounters& collective_counters(CollectiveKind kind) {
  static CollectiveCounters counters[kNumCollectiveKinds] = {
      {obs::CachedCounter("comm.barrier.count"),
       obs::CachedCounter("comm.barrier.bytes")},
      {obs::CachedCounter("comm.allgather.count"),
       obs::CachedCounter("comm.allgather.bytes")},
      {obs::CachedCounter("comm.allreduce.count"),
       obs::CachedCounter("comm.allreduce.bytes")},
      {obs::CachedCounter("comm.bcast.count"),
       obs::CachedCounter("comm.bcast.bytes")},
      {obs::CachedCounter("comm.alltoallv.count"),
       obs::CachedCounter("comm.alltoallv.bytes")},
  };
  return counters[static_cast<std::size_t>(kind)];
}

}  // namespace

void RankContext::record_collective(CollectiveKind kind, std::size_t bytes) {
  CollectiveCounters& c = collective_counters(kind);
  c.count += 1;
  if (bytes != 0) c.bytes += bytes;
  collective_hists(kind).msg_bytes.record(static_cast<std::int64_t>(bytes));
  comm_.collective_calls_[static_cast<std::size_t>(rank_)]
                         [static_cast<std::size_t>(kind)] += 1;
}

void RankContext::record_collective_seconds(CollectiveKind kind,
                                            double seconds) {
  collective_hists(kind).call_ns.record(
      static_cast<std::int64_t>(seconds * 1e9));
}

void RankContext::send_bytes(int dest, int tag,
                             std::span<const std::uint8_t> data) {
  HGR_ASSERT_MSG(tag != kAlltoallTag,
                 "user tag collides with the reserved alltoall tag");
  if (dest != rank_) {
    static obs::CachedCounter p2p_count("comm.p2p.count");
    static obs::CachedCounter p2p_bytes("comm.p2p.bytes");
    p2p_count += 1;
    p2p_bytes += data.size();
  }
  send_bytes_impl(dest, tag, data);
}

std::vector<std::uint8_t> RankContext::recv_bytes(int src, int tag) {
  HGR_ASSERT_MSG(tag != kAlltoallTag,
                 "user tag collides with the reserved alltoall tag");
  RawMessage raw = recv_raw(src, tag);
  std::vector<std::uint8_t> out(raw.bytes);
  if (raw.bytes != 0) std::memcpy(out.data(), raw.block.data(), raw.bytes);
  recycle(std::move(raw));
  return out;
}

void RankContext::send_bytes_impl(int dest, int tag,
                                  std::span<const std::uint8_t> data) {
  HGR_ASSERT(dest >= 0 && dest < size());
  faultpoint(fault::FaultSite::kSend);
  // Self-sends stay local (MPI implementations also bypass the network).
  if (dest != rank_) account_p2p_send(dest, data.size());
  Comm::Mailbox& box = comm_.mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard lock(box.mutex);
    RawMessage msg{box.pool.acquire(data.size()), data.size()};
    if (!data.empty())
      std::memcpy(msg.block.data(), data.data(), data.size());
    box.queues[{rank_, tag}].push_back(std::move(msg));
  }
  comm_.progress_.fetch_add(1, std::memory_order_acq_rel);
  box.ready.notify_all();
}

RankContext::RawMessage RankContext::recv_raw(int src, int tag) {
  HGR_ASSERT(src >= 0 && src < size());
  faultpoint(fault::FaultSite::kRecv);
  Comm::Mailbox& box = comm_.mailboxes_[static_cast<std::size_t>(rank_)];
  std::unique_lock lock(box.mutex);
  const auto key = std::make_pair(src, tag);
  {
    Comm::ScopedWait waiting(comm_, rank_, Comm::WaitState::kRecv, src, tag);
    box.ready.wait(lock, [this, &box, &key] {
      if (comm_.aborted_.load(std::memory_order_acquire)) return true;
      const auto it = box.queues.find(key);
      return it != box.queues.end() && !it->second.empty();
    });
  }
  if (comm_.aborted_.load(std::memory_order_acquire)) throw CommAborted{};
  auto& queue = box.queues[key];
  RawMessage msg = std::move(queue.front());
  queue.pop_front();
  if (src != rank_) account_recv(msg.bytes, 1);
  return msg;
}

void RankContext::recycle(RawMessage&& msg) {
  Comm::Mailbox& box = comm_.mailboxes_[static_cast<std::size_t>(rank_)];
  std::lock_guard lock(box.mutex);
  box.pool.release(std::move(msg.block));
}

void RankContext::barrier() {
  faultpoint(fault::FaultSite::kBarrier);
  obs::EventSpan span("barrier", "comm");
  CollectiveTimer lat(*this, CollectiveKind::kBarrier);
  record_collective(CollectiveKind::kBarrier, 0);
  bump_collectives();
  comm_.barrier_wait(rank_);
}

int RankContext::begin_collective() {
  std::uint64_t& epoch =
      comm_.collective_epochs_[static_cast<std::size_t>(rank_)].value;
  const int parity = static_cast<int>(epoch & 1U);
  ++epoch;
  return parity;
}

void RankContext::publish_window(int parity, const void* data,
                                 std::size_t bytes, const std::size_t* counts,
                                 const std::size_t* displs) {
  Comm::CollectiveSlot& slot =
      comm_.slots_[static_cast<std::size_t>(parity)]
                  [static_cast<std::size_t>(rank_)];
  if (bytes > slot.payload.capacity()) {
    BufferPool& p = pool();
    p.release(std::move(slot.payload));
    slot.payload = p.acquire(bytes);
  }
  if (bytes != 0) std::memcpy(slot.payload.data(), data, bytes);
  slot.bytes = bytes;
  if (counts != nullptr) {
    const std::size_t p = static_cast<std::size_t>(size());
    slot.counts.assign(counts, counts + p);
    slot.displs.assign(displs, displs + p + 1);
  } else {
    slot.counts.clear();
    slot.displs.clear();
  }
}

const void* RankContext::window_data(int parity, int r) const {
  return comm_.slots_[static_cast<std::size_t>(parity)]
                     [static_cast<std::size_t>(r)]
                         .payload.data();
}

std::size_t RankContext::window_bytes(int parity, int r) const {
  return comm_.slots_[static_cast<std::size_t>(parity)]
                     [static_cast<std::size_t>(r)]
      .bytes;
}

std::size_t RankContext::window_count(int parity, int r, int slot) const {
  const Comm::CollectiveSlot& s =
      comm_.slots_[static_cast<std::size_t>(parity)]
                  [static_cast<std::size_t>(r)];
  HGR_DASSERT(!s.counts.empty());
  return s.counts[static_cast<std::size_t>(slot)];
}

std::size_t RankContext::window_displ(int parity, int r, int slot) const {
  const Comm::CollectiveSlot& s =
      comm_.slots_[static_cast<std::size_t>(parity)]
                  [static_cast<std::size_t>(r)];
  HGR_DASSERT(!s.displs.empty());
  return s.displs[static_cast<std::size_t>(slot)];
}

std::byte* RankContext::reduce_slot(int parity, int r, std::size_t bytes) {
  HGR_ASSERT_MSG(bytes <= Comm::kReduceSlotBytes,
                 "allreduce value exceeds the fixed reduce slot");
  return comm_.reduce_slots_[static_cast<std::size_t>(parity)]
                            [static_cast<std::size_t>(r)]
      .bytes;
}

void RankContext::collective_fence() { comm_.barrier_wait(rank_); }

}  // namespace hgr
