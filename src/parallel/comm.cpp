#include "parallel/comm.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <string>
#include <thread>

#include "obs/trace.hpp"

namespace hgr {

Comm::Comm(int num_ranks)
    : num_ranks_(num_ranks),
      mailboxes_(static_cast<std::size_t>(num_ranks)),
      stats_(static_cast<std::size_t>(num_ranks)),
      p2p_bytes_(static_cast<std::size_t>(num_ranks) *
                 static_cast<std::size_t>(num_ranks)),
      p2p_messages_(static_cast<std::size_t>(num_ranks) *
                    static_cast<std::size_t>(num_ranks)),
      collective_calls_(static_cast<std::size_t>(num_ranks)),
      wait_states_(
          std::make_unique<WaitState[]>(static_cast<std::size_t>(num_ranks))),
      slots_(static_cast<std::size_t>(num_ranks)) {
  HGR_ASSERT(num_ranks >= 1);
}

Comm::ScopedWait::ScopedWait(Comm& comm, int rank, int kind, int src, int tag)
    : state_(comm.wait_states_[static_cast<std::size_t>(rank)]),
      progress_(comm.progress_),
      stats_(comm.stats_[static_cast<std::size_t>(rank)]),
      kind_(kind) {
  state_.src.store(src, std::memory_order_relaxed);
  state_.tag.store(tag, std::memory_order_relaxed);
  state_.kind.store(kind, std::memory_order_release);
  progress_.fetch_add(1, std::memory_order_acq_rel);
  if (obs::events_enabled()) {
    event_name_ = kind_ == WaitState::kRecv ? "wait.recv" : "wait.barrier";
    obs::emit_begin(event_name_, "comm");
  }
}

Comm::ScopedWait::~ScopedWait() {
  const double waited = timer_.seconds();
  if (kind_ == WaitState::kRecv)
    stats_.recv_wait_seconds += waited;
  else
    stats_.barrier_wait_seconds += waited;
  if (event_name_ != nullptr) obs::emit_end(event_name_, "comm");
  state_.kind.store(WaitState::kNotWaiting, std::memory_order_release);
  progress_.fetch_add(1, std::memory_order_acq_rel);
}

std::string Comm::compose_deadlock_diagnosis(double stuck_seconds) {
  char head[128];
  std::snprintf(head, sizeof(head),
                "comm deadlock: all %d ranks blocked with no progress for "
                "%.2fs",
                num_ranks_, stuck_seconds);
  std::string out = head;
  int arrived = 0;
  {
    std::lock_guard lock(barrier_mutex_);
    arrived = barrier_arrived_;
  }
  for (int r = 0; r < num_ranks_; ++r) {
    const WaitState& w = wait_states_[static_cast<std::size_t>(r)];
    char line[96];
    switch (w.kind.load(std::memory_order_acquire)) {
      case WaitState::kRecv:
        std::snprintf(line, sizeof(line), "\n  rank %d: recv(src=%d, tag=%d)",
                      r, w.src.load(std::memory_order_relaxed),
                      w.tag.load(std::memory_order_relaxed));
        break;
      case WaitState::kBarrier:
        std::snprintf(line, sizeof(line),
                      "\n  rank %d: barrier (%d of %d arrived)", r, arrived,
                      num_ranks_);
        break;
      default:
        std::snprintf(line, sizeof(line), "\n  rank %d: not blocked", r);
        break;
    }
    out += line;
  }
  return out;
}

void Comm::watchdog_loop() {
  const double timeout = deadlock_timeout_;
  const auto poll = std::chrono::milliseconds(std::clamp(
      static_cast<long>(timeout * 1000.0 / 20.0), 1L, 100L));
  std::uint64_t last_progress = progress_.load(std::memory_order_acquire);
  WallTimer stuck_timer;
  bool stuck = false;

  std::unique_lock lock(watchdog_mutex_);
  for (;;) {
    if (watchdog_cv_.wait_for(lock, poll, [this] { return watchdog_stop_; }))
      return;
    if (aborted_.load(std::memory_order_acquire)) {
      stuck = false;
      continue;
    }
    bool all_blocked = true;
    for (int r = 0; r < num_ranks_ && all_blocked; ++r)
      all_blocked = wait_states_[static_cast<std::size_t>(r)].kind.load(
                        std::memory_order_acquire) != WaitState::kNotWaiting;
    const std::uint64_t now_progress =
        progress_.load(std::memory_order_acquire);
    if (!all_blocked || now_progress != last_progress) {
      stuck = false;
      last_progress = now_progress;
      continue;
    }
    if (!stuck) {
      stuck = true;
      stuck_timer.reset();
      continue;
    }
    const double stuck_seconds = stuck_timer.seconds();
    if (stuck_seconds < timeout) continue;
    deadlock_diagnosis_ = compose_deadlock_diagnosis(stuck_seconds);
    lock.unlock();
    abort_all();
    return;
  }
}

void Comm::run(const std::function<void(RankContext&)>& f) {
  WallTimer run_timer;
  for (auto& s : stats_) s = CommStats{};
  for (auto& v : p2p_bytes_) v = 0;
  for (auto& v : p2p_messages_) v = 0;
  for (auto& calls : collective_calls_) calls.fill(0);
  for (auto& box : mailboxes_) {
    std::lock_guard lock(box.mutex);
    box.queues.clear();
  }
  barrier_arrived_ = 0;
  barrier_generation_ = 0;
  aborted_.store(false, std::memory_order_relaxed);
  progress_.store(0, std::memory_order_relaxed);
  for (int r = 0; r < num_ranks_; ++r)
    wait_states_[static_cast<std::size_t>(r)].kind.store(
        WaitState::kNotWaiting, std::memory_order_relaxed);
  {
    std::lock_guard lock(watchdog_mutex_);
    watchdog_stop_ = false;
    deadlock_diagnosis_.clear();
  }

  std::thread watchdog;
  if (deadlock_timeout_ > 0.0) watchdog = std::thread([this] { watchdog_loop(); });

  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(num_ranks_));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks_));
  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([this, r, &f, &errors] {
      obs::set_thread_rank(r);  // timeline events land on rank r's track
      try {
        RankContext ctx(*this, r);
        f(ctx);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        abort_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  std::string deadlock_diagnosis;
  if (watchdog.joinable()) {
    {
      std::lock_guard lock(watchdog_mutex_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog.join();
    std::lock_guard lock(watchdog_mutex_);
    deadlock_diagnosis = deadlock_diagnosis_;
  }
  aborted_.store(false, std::memory_order_relaxed);
  last_run_seconds_ = run_timer.seconds();

  // Fold this run into the process-global telemetry (even failed runs:
  // partial traffic is still real traffic) and refresh the "comm" section
  // of the trace export so any later JSON dump carries it.
  {
    accumulate_comm_telemetry(telemetry());
    obs::global_registry().set_section(
        "comm", comm_telemetry_snapshot().to_json());
  }

  // Rethrow the lowest-rank *original* failure; secondary CommAborted
  // unwinds (ranks woken because a peer died) only surface if no primary
  // exception was captured — and if the watchdog aborted the run, the
  // deadlock diagnosis outranks those secondary unwinds.
  std::exception_ptr fallback;
  for (const std::exception_ptr& e : errors) {
    if (!e) continue;
    if (!fallback) fallback = e;
    try {
      std::rethrow_exception(e);
    } catch (const CommAborted&) {
      continue;
    } catch (...) {
      throw;
    }
  }
  if (!deadlock_diagnosis.empty()) throw CommDeadlock(deadlock_diagnosis);
  if (fallback) std::rethrow_exception(fallback);
}

CommStats Comm::total_stats() const {
  CommStats total;
  for (const CommStats& s : stats_) {
    total.bytes_sent += s.bytes_sent;
    total.messages_sent += s.messages_sent;
    total.bytes_recv += s.bytes_recv;
    total.messages_recv += s.messages_recv;
    total.collectives += s.collectives;
    total.recv_wait_seconds += s.recv_wait_seconds;
    total.barrier_wait_seconds += s.barrier_wait_seconds;
  }
  return total;
}

CommTelemetry Comm::telemetry() const {
  CommTelemetry t;
  t.resize(num_ranks_);
  for (int r = 0; r < num_ranks_; ++r) {
    const CommStats& s = stats_[static_cast<std::size_t>(r)];
    RankCommTelemetry& rt = t.ranks[static_cast<std::size_t>(r)];
    rt.bytes_sent = s.bytes_sent;
    rt.bytes_recv = s.bytes_recv;
    rt.messages_sent = s.messages_sent;
    rt.messages_recv = s.messages_recv;
    rt.recv_wait_seconds = s.recv_wait_seconds;
    rt.barrier_wait_seconds = s.barrier_wait_seconds;
    rt.collective_calls = collective_calls_[static_cast<std::size_t>(r)];
  }
  t.p2p_bytes = p2p_bytes_;
  t.p2p_messages = p2p_messages_;
  t.run_seconds = last_run_seconds_;
  t.runs = last_run_seconds_ > 0.0 ? 1 : 0;
  return t;
}

void Comm::abort_all() {
  aborted_.store(true, std::memory_order_release);
  // Lock each waiter's mutex before notifying so the flag cannot slip in
  // between a predicate check and the wait.
  for (auto& box : mailboxes_) {
    std::lock_guard lock(box.mutex);
    box.ready.notify_all();
  }
  std::lock_guard lock(barrier_mutex_);
  barrier_cv_.notify_all();
}

void Comm::barrier_wait(int rank) {
  std::unique_lock lock(barrier_mutex_);
  if (aborted_.load(std::memory_order_acquire)) throw CommAborted{};
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_arrived_ == num_ranks_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    progress_.fetch_add(1, std::memory_order_acq_rel);
    barrier_cv_.notify_all();
  } else {
    ScopedWait waiting(*this, rank, WaitState::kBarrier, -1, 0);
    barrier_cv_.wait(lock, [this, my_generation] {
      return barrier_generation_ != my_generation ||
             aborted_.load(std::memory_order_acquire);
    });
    if (barrier_generation_ == my_generation) throw CommAborted{};
  }
}

int RankContext::size() const { return comm_.num_ranks(); }

const CommStats& RankContext::stats() const {
  return comm_.stats_[static_cast<std::size_t>(rank_)];
}

void RankContext::account(std::size_t bytes, std::size_t messages) {
  CommStats& s = comm_.stats_[static_cast<std::size_t>(rank_)];
  s.bytes_sent += bytes;
  s.messages_sent += messages;
}

namespace {

struct CollectiveCounters {
  obs::CachedCounter count;
  obs::CachedCounter bytes;
};

// Cached per-kind handles: record_collective runs once per collective per
// rank, so the old name-building (std::string concat + two registry mutex
// lookups) was measurable on collective-heavy refinement loops.
CollectiveCounters& collective_counters(CollectiveKind kind) {
  static CollectiveCounters counters[kNumCollectiveKinds] = {
      {obs::CachedCounter("comm.barrier.count"),
       obs::CachedCounter("comm.barrier.bytes")},
      {obs::CachedCounter("comm.allgather.count"),
       obs::CachedCounter("comm.allgather.bytes")},
      {obs::CachedCounter("comm.allreduce.count"),
       obs::CachedCounter("comm.allreduce.bytes")},
      {obs::CachedCounter("comm.bcast.count"),
       obs::CachedCounter("comm.bcast.bytes")},
      {obs::CachedCounter("comm.alltoallv.count"),
       obs::CachedCounter("comm.alltoallv.bytes")},
  };
  return counters[static_cast<std::size_t>(kind)];
}

}  // namespace

void RankContext::record_collective(CollectiveKind kind, std::size_t bytes) {
  CollectiveCounters& c = collective_counters(kind);
  c.count += 1;
  if (bytes != 0) c.bytes += bytes;
  comm_.collective_calls_[static_cast<std::size_t>(rank_)]
                         [static_cast<std::size_t>(kind)] += 1;
}

void RankContext::send_bytes(int dest, int tag,
                             std::span<const std::uint8_t> data) {
  HGR_ASSERT_MSG(tag != kAlltoallTag,
                 "user tag collides with the reserved alltoall tag");
  if (dest != rank_) {
    static obs::CachedCounter p2p_count("comm.p2p.count");
    static obs::CachedCounter p2p_bytes("comm.p2p.bytes");
    p2p_count += 1;
    p2p_bytes += data.size();
  }
  send_bytes_impl(dest, tag, data);
}

std::vector<std::uint8_t> RankContext::recv_bytes(int src, int tag) {
  HGR_ASSERT_MSG(tag != kAlltoallTag,
                 "user tag collides with the reserved alltoall tag");
  return recv_bytes_impl(src, tag);
}

void RankContext::send_bytes_impl(int dest, int tag,
                                  std::span<const std::uint8_t> data) {
  HGR_ASSERT(dest >= 0 && dest < size());
  // Self-sends stay local (MPI implementations also bypass the network).
  if (dest != rank_) {
    account(data.size(), 1);
    const std::size_t cell =
        static_cast<std::size_t>(rank_) *
            static_cast<std::size_t>(comm_.num_ranks_) +
        static_cast<std::size_t>(dest);
    comm_.p2p_bytes_[cell] += data.size();
    comm_.p2p_messages_[cell] += 1;
    if (obs::events_enabled()) obs::emit_instant("send", "comm", data.size());
  }
  Comm::Mailbox& box = comm_.mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard lock(box.mutex);
    box.queues[{rank_, tag}].emplace_back(data.begin(), data.end());
  }
  comm_.progress_.fetch_add(1, std::memory_order_acq_rel);
  box.ready.notify_all();
}

std::vector<std::uint8_t> RankContext::recv_bytes_impl(int src, int tag) {
  HGR_ASSERT(src >= 0 && src < size());
  Comm::Mailbox& box = comm_.mailboxes_[static_cast<std::size_t>(rank_)];
  std::unique_lock lock(box.mutex);
  const auto key = std::make_pair(src, tag);
  {
    Comm::ScopedWait waiting(comm_, rank_, Comm::WaitState::kRecv, src, tag);
    box.ready.wait(lock, [this, &box, &key] {
      if (comm_.aborted_.load(std::memory_order_acquire)) return true;
      const auto it = box.queues.find(key);
      return it != box.queues.end() && !it->second.empty();
    });
  }
  if (comm_.aborted_.load(std::memory_order_acquire)) throw CommAborted{};
  auto& queue = box.queues[key];
  std::vector<std::uint8_t> msg = std::move(queue.front());
  queue.pop_front();
  if (src != rank_) {
    CommStats& s = comm_.stats_[static_cast<std::size_t>(rank_)];
    s.bytes_recv += msg.size();
    s.messages_recv += 1;
  }
  return msg;
}

void RankContext::barrier() {
  obs::EventSpan span("barrier", "comm");
  record_collective(CollectiveKind::kBarrier, 0);
  comm_.stats_[static_cast<std::size_t>(rank_)].collectives += 1;
  comm_.barrier_wait(rank_);
}

void RankContext::exchange_slot(
    const std::vector<std::uint8_t>& mine,
    std::vector<std::vector<std::uint8_t>>& all_out) {
  // Write-barrier-read-barrier around the shared slot area. Traffic model:
  // each rank ships its contribution to the other p-1 ranks.
  comm_.slots_[static_cast<std::size_t>(rank_)] = mine;
  account(mine.size() * static_cast<std::size_t>(size() - 1), 0);
  comm_.stats_[static_cast<std::size_t>(rank_)].collectives += 1;
  comm_.barrier_wait(rank_);
  all_out = comm_.slots_;
  comm_.barrier_wait(rank_);
}

}  // namespace hgr
