// Multilevel recursive bisection with fixed vertices (paper §4.4).
//
// k-way partitioning by repeated 2-way splits. Before each bisection the
// fixed-vertex labels are mapped onto the two sides exactly as the paper
// prescribes: "vertices that are originally fixed to partitions
// 1 <= p <= k/2 are fixed to partition 1, and vertices originally fixed to
// partitions k/2 < p <= k are fixed to partition 2", recursively.
// Odd k is handled by splitting into ceil(k/2) / floor(k/2) parts with
// proportional target weights.
#pragma once

#include "common/rng.hpp"
#include "common/workspace.hpp"
#include "hypergraph/hypergraph.hpp"
#include "metrics/partition.hpp"
#include "partition/config.hpp"
#include "partition/initial.hpp"

namespace hgr {

/// One multilevel bisection of `h` (whose fixed parts, if any, must already
/// be 2-way: 0, 1, or free): coarsen by IPM until small, greedy-growing
/// initial bisection, FM refinement on every uncoarsening level. `ws`
/// (optional) pools kernel scratch across levels and bisections.
/// Returns the side (0/1) of every vertex.
IdVector<VertexId, PartId> multilevel_bisect(const Hypergraph& h,
                                             const BisectionTargets& targets,
                                             const PartitionConfig& cfg,
                                             Rng& rng,
                                             Workspace* ws = nullptr);

/// Full k-way partition of `h` via recursive bisection. Honors
/// h.fixed_part() as k-way fixed constraints.
Partition recursive_bisection_partition(const Hypergraph& h,
                                        const PartitionConfig& cfg,
                                        Workspace* ws = nullptr);

}  // namespace hgr
