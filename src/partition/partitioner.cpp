#include "partition/partitioner.hpp"

#include <algorithm>
#include <vector>

#include "check/validate.hpp"
#include "common/assert.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "obs/trace.hpp"
#include "partition/contract.hpp"
#include "partition/kway_refine.hpp"
#include "partition/matching_ipm.hpp"
#include "partition/recursive_bisect.hpp"

namespace hgr {

namespace {

/// Greedy k-way assignment at the coarsest level of the direct k-way path:
/// fixed vertices first, then heaviest-first placement into the feasible
/// part with the best connectivity gain (ties: lightest part).
Partition greedy_kway_initial(const Hypergraph& h, const PartitionConfig& cfg,
                              Rng& rng) {
  const PartId k = cfg.num_parts;
  Partition p(k, h.num_vertices(), kNoPart);
  std::vector<Weight> part_w(static_cast<std::size_t>(k), 0);
  const double avg =
      static_cast<double>(h.total_vertex_weight()) / static_cast<double>(k);
  const auto max_w = static_cast<Weight>(avg * (1.0 + cfg.epsilon));

  for (Index v = 0; v < h.num_vertices(); ++v) {
    const PartId f = h.fixed_part(v);
    if (f != kNoPart) {
      p[v] = f;
      part_w[static_cast<std::size_t>(f)] += h.vertex_weight(v);
    }
  }

  std::vector<Index> order = random_permutation(h.num_vertices(), rng);
  std::stable_sort(order.begin(), order.end(), [&](Index a, Index b) {
    return h.vertex_weight(a) > h.vertex_weight(b);
  });

  std::vector<Weight> affinity(static_cast<std::size_t>(k), 0);
  for (const Index v : order) {
    if (p[v] != kNoPart) continue;
    std::fill(affinity.begin(), affinity.end(), Weight{0});
    for (const Index net : h.incident_nets(v)) {
      const Weight c = h.net_cost(net);
      for (const Index u : h.pins(net))
        if (u != v && p[u] != kNoPart)
          affinity[static_cast<std::size_t>(p[u])] += c;
    }
    PartId best = kNoPart;
    for (PartId q = 0; q < k; ++q) {
      const bool fits =
          part_w[static_cast<std::size_t>(q)] + h.vertex_weight(v) <= max_w;
      if (!fits) continue;
      if (best == kNoPart ||
          affinity[static_cast<std::size_t>(q)] >
              affinity[static_cast<std::size_t>(best)] ||
          (affinity[static_cast<std::size_t>(q)] ==
               affinity[static_cast<std::size_t>(best)] &&
           part_w[static_cast<std::size_t>(q)] <
               part_w[static_cast<std::size_t>(best)]))
        best = q;
    }
    if (best == kNoPart) {
      // Nothing fits: overflow into the lightest part (best effort).
      best = static_cast<PartId>(
          std::min_element(part_w.begin(), part_w.end()) - part_w.begin());
    }
    p[v] = best;
    part_w[static_cast<std::size_t>(best)] += h.vertex_weight(v);
  }
  return p;
}

}  // namespace

void record_coarsen_level(Index fine_vertices, Index coarse_vertices,
                          const std::vector<Index>& match) {
  std::uint64_t matched = 0;
  for (std::size_t v = 0; v < match.size(); ++v)
    if (match[v] != static_cast<Index>(v)) ++matched;
  static obs::CachedCounter levels_counter("coarsen.levels");
  static obs::CachedCounter fine_counter("coarsen.fine_vertices");
  static obs::CachedCounter coarse_counter("coarsen.coarse_vertices");
  static obs::CachedCounter matched_counter("coarsen.matched_vertices");
  levels_counter += 1;
  fine_counter += static_cast<std::uint64_t>(fine_vertices);
  coarse_counter += static_cast<std::uint64_t>(coarse_vertices);
  matched_counter += matched;
}

Partition direct_kway_partition(const Hypergraph& h,
                                const PartitionConfig& cfg, Workspace* ws) {
  Rng rng(cfg.seed);
  const Index stop_size =
      std::max<Index>(cfg.coarsen_to, 2 * cfg.num_parts);

  std::vector<CoarseLevel> levels;
  const Hypergraph* current = &h;
  const Weight max_vertex_weight = std::max<Weight>(
      1, static_cast<Weight>(cfg.max_coarse_weight_factor *
                             static_cast<double>(h.total_vertex_weight()) /
                             std::max<Index>(1, stop_size)));
  {
    obs::TraceScope coarsen_scope("coarsen");
    for (Index level = 0; level < cfg.max_levels; ++level) {
      if (current->num_vertices() <= stop_size) break;
      const std::vector<Index> match =
          ipm_matching(*current, cfg, max_vertex_weight, rng, ws);
      CoarseLevel next = contract(*current, match, ws);
      const double reduction =
          1.0 - static_cast<double>(next.coarse.num_vertices()) /
                    static_cast<double>(current->num_vertices());
      if (reduction < cfg.min_coarsen_reduction) break;
      record_coarsen_level(current->num_vertices(),
                           next.coarse.num_vertices(), match);
      check::validate_coarsening(*current, next, cfg.check_level);
      levels.push_back(std::move(next));
      current = &levels.back().coarse;
    }
  }

  Partition p(cfg.num_parts, current->num_vertices());
  {
    obs::TraceScope initial_scope("initial");
    p = greedy_kway_initial(*current, cfg, rng);
    kway_refine(*current, p, cfg, rng, cfg.max_refine_passes, ws);
  }

  {
    obs::TraceScope refine_scope("refine");
    for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
      const Hypergraph& finer =
          (std::next(it) == levels.rend()) ? h : std::next(it)->coarse;
      check::validate_coarsening(finer, *it, cfg.check_level, &p);
      Partition fine_p(cfg.num_parts, finer.num_vertices());
      for (Index v = 0; v < finer.num_vertices(); ++v)
        fine_p[v] = p[it->fine_to_coarse[static_cast<std::size_t>(v)]];
      p = std::move(fine_p);
      kway_refine(finer, p, cfg, rng, cfg.max_refine_passes, ws);
    }
  }
  p.validate();
  return p;
}

void refinement_vcycle(const Hypergraph& h, Partition& p,
                       const PartitionConfig& cfg, Rng& rng, Workspace* ws) {
  obs::TraceScope trace("vcycle");
  // Restrict matching to same-part pairs by temporarily fixing every vertex
  // to its current part; the original fixed labels are re-derived on the
  // coarse side from the contraction so true constraints survive.
  Hypergraph work = h;
  std::vector<PartId> part_as_fixed(p.assignment.begin(), p.assignment.end());
  work.set_fixed_parts(std::move(part_as_fixed));

  const Index stop_size = std::max<Index>(cfg.coarsen_to, 2 * cfg.num_parts);
  const Weight max_vertex_weight = std::max<Weight>(
      1, static_cast<Weight>(cfg.max_coarse_weight_factor *
                             static_cast<double>(h.total_vertex_weight()) /
                             std::max<Index>(1, stop_size)));

  struct VLevel {
    CoarseLevel cl;
    std::vector<PartId> orig_fixed;  // true constraints at this level
  };
  std::vector<VLevel> levels;

  // True fixed labels at the current (finest) level.
  std::vector<PartId> fixed_now;
  if (h.has_fixed())
    fixed_now.assign(h.fixed_parts().begin(), h.fixed_parts().end());

  const Hypergraph* current = &work;
  for (Index level = 0; level < cfg.max_levels; ++level) {
    if (current->num_vertices() <= stop_size) break;
    const std::vector<Index> match =
        ipm_matching(*current, cfg, max_vertex_weight, rng, ws);
    VLevel next;
    next.cl = contract(*current, match, ws);
    const double reduction =
        1.0 - static_cast<double>(next.cl.coarse.num_vertices()) /
                  static_cast<double>(current->num_vertices());
    if (reduction < cfg.min_coarsen_reduction) break;
    check::validate_coarsening(*current, next.cl, cfg.check_level);
    // Propagate the *true* fixed constraints to the coarse level.
    if (!fixed_now.empty()) {
      std::vector<PartId> coarse_fixed(
          static_cast<std::size_t>(next.cl.coarse.num_vertices()), kNoPart);
      const Index fine_n = static_cast<Index>(next.cl.fine_to_coarse.size());
      for (Index v = 0; v < fine_n; ++v) {
        const PartId f = fixed_now[static_cast<std::size_t>(v)];
        if (f == kNoPart) continue;
        auto& cf = coarse_fixed[static_cast<std::size_t>(
            next.cl.fine_to_coarse[static_cast<std::size_t>(v)])];
        HGR_ASSERT(cf == kNoPart || cf == f);
        cf = f;
      }
      next.orig_fixed = coarse_fixed;
      fixed_now = std::move(coarse_fixed);
    }
    levels.push_back(std::move(next));
    current = &levels.back().cl.coarse;
  }

  if (levels.empty()) {
    // Nothing coarsened; a plain refinement sweep still helps.
    kway_refine(h, p, cfg, rng, cfg.max_refine_passes, ws);
    return;
  }

  // The coarse partition is encoded in the contraction-propagated
  // "fixed" labels (every vertex was fixed to its part).
  Partition cp(cfg.num_parts, levels.back().cl.coarse.num_vertices());
  for (Index v = 0; v < levels.back().cl.coarse.num_vertices(); ++v) {
    const PartId f = levels.back().cl.coarse.fixed_part(v);
    HGR_ASSERT(f != kNoPart);
    cp[v] = f;
  }

  // Refine down the hierarchy with only the true constraints fixed.
  for (std::size_t i = levels.size(); i-- > 0;) {
    Hypergraph& level_h = levels[i].cl.coarse;
    level_h.set_fixed_parts(levels[i].orig_fixed);
    kway_refine(level_h, cp, cfg, rng, cfg.max_refine_passes, ws);
    // Project to the next finer level.
    const Hypergraph& finer = (i == 0) ? h : levels[i - 1].cl.coarse;
    Partition fine_p(cfg.num_parts, finer.num_vertices());
    for (Index v = 0; v < finer.num_vertices(); ++v)
      fine_p[v] = cp[levels[i].cl.fine_to_coarse[static_cast<std::size_t>(v)]];
    cp = std::move(fine_p);
  }
  kway_refine(h, cp, cfg, rng, cfg.max_refine_passes, ws);

  // V-cycles must never regress.
  if (connectivity_cut(h, cp) <= connectivity_cut(h, p)) p = std::move(cp);
}

Partition partition_hypergraph(const Hypergraph& h,
                               const PartitionConfig& cfg) {
  obs::TraceScope trace("partition");
  HGR_ASSERT(cfg.num_parts >= 1);
  HGR_ASSERT(cfg.epsilon >= 0.0);
  h.validate(cfg.num_parts);
  check::validate_hypergraph(h, cfg.check_level, cfg.num_parts);

  if (cfg.num_parts == 1 || h.num_vertices() == 0) {
    Partition p(std::max<PartId>(1, cfg.num_parts), h.num_vertices(), 0);
    if (h.has_fixed()) {
      for (Index v = 0; v < h.num_vertices(); ++v)
        if (h.fixed_part(v) != kNoPart) p[v] = h.fixed_part(v);
    }
    return p;
  }

  // One scratch arena for the whole call: every level of coarsening,
  // initial partitioning, and refinement below draws its temporaries from
  // here instead of reallocating per level.
  Workspace ws;
  Partition p = (cfg.kway_method == KwayMethod::kRecursiveBisection)
                    ? recursive_bisection_partition(h, cfg, &ws)
                    : direct_kway_partition(h, cfg, &ws);

  Rng post_rng(derive_seed(cfg.seed, 0xFACE));
  if (cfg.kway_postpass)
    kway_refine(h, p, cfg, post_rng, cfg.max_refine_passes, &ws);
  for (Index i = 0; i < cfg.num_vcycles; ++i)
    refinement_vcycle(h, p, cfg, post_rng, &ws);

  // Fixed constraints are hard: verify.
  if (h.has_fixed()) {
    for (Index v = 0; v < h.num_vertices(); ++v) {
      const PartId f = h.fixed_part(v);
      HGR_ASSERT_MSG(f == kNoPart || p[v] == f,
                     "partitioner violated a fixed-vertex constraint");
    }
  }
  {
    check::PartitionExpectations expect;
    expect.epsilon = cfg.epsilon;
    expect.context = "partition_hypergraph";
    check::validate_partition(h, p, cfg.check_level, expect);
  }
  return p;
}

}  // namespace hgr
