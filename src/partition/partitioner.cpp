#include "partition/partitioner.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "check/validate.hpp"
#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "obs/trace.hpp"
#include "partition/contract.hpp"
#include "partition/kway_refine.hpp"
#include "partition/matching_ipm.hpp"
#include "partition/recursive_bisect.hpp"

namespace hgr {

namespace {

/// Greedy k-way assignment at the coarsest level of the direct k-way path:
/// fixed vertices first, then heaviest-first placement into the feasible
/// part with the best connectivity gain (ties: lightest part).
Partition greedy_kway_initial(const Hypergraph& h, const PartitionConfig& cfg,
                              Rng& rng) {
  const Index k = cfg.num_parts;
  Partition p(k, h.num_vertices(), kNoPart);
  IdVector<PartId, Weight> part_w(k, 0);
  const double avg =
      static_cast<double>(h.total_vertex_weight()) / static_cast<double>(k);
  const auto max_w = static_cast<Weight>(avg * (1.0 + cfg.epsilon));

  for (const VertexId v : h.vertices()) {
    const PartId f = h.fixed_part(v);
    if (f != kNoPart) {
      p[v] = f;
      part_w[f] += h.vertex_weight(v);
    }
  }

  std::vector<Index> order = random_permutation(h.num_vertices(), rng);
  std::stable_sort(order.begin(), order.end(), [&](Index a, Index b) {
    return h.vertex_weight(VertexId{a}) > h.vertex_weight(VertexId{b});
  });

  IdVector<PartId, Weight> affinity(k, 0);
  for (const Index vi : order) {
    const VertexId v{vi};
    if (p[v] != kNoPart) continue;
    std::fill(affinity.begin(), affinity.end(), Weight{0});
    for (const NetId net : h.incident_nets(v)) {
      const Weight c = h.net_cost(net);
      for (const VertexId u : h.pins(net))
        if (u != v && p[u] != kNoPart) affinity[p[u]] += c;
    }
    PartId best = kNoPart;
    for (const PartId q : p.parts()) {
      const bool fits = part_w[q] + h.vertex_weight(v) <= max_w;
      if (!fits) continue;
      if (best == kNoPart || affinity[q] > affinity[best] ||
          (affinity[q] == affinity[best] && part_w[q] < part_w[best]))
        best = q;
    }
    if (best == kNoPart) {
      // Nothing fits: overflow into the lightest part (best effort).
      best = PartId{static_cast<Index>(
          std::min_element(part_w.begin(), part_w.end()) - part_w.begin())};
    }
    p[v] = best;
    part_w[best] += h.vertex_weight(v);
  }
  return p;
}

}  // namespace

void record_coarsen_level(Index fine_vertices, Index coarse_vertices,
                          IdSpan<VertexId, const VertexId> match) {
  std::uint64_t matched = 0;
  for (const VertexId v : match.ids())
    if (match[v] != v) ++matched;
  static obs::CachedCounter levels_counter("coarsen.levels");
  static obs::CachedCounter fine_counter("coarsen.fine_vertices");
  static obs::CachedCounter coarse_counter("coarsen.coarse_vertices");
  static obs::CachedCounter matched_counter("coarsen.matched_vertices");
  levels_counter += 1;
  fine_counter += static_cast<std::uint64_t>(fine_vertices);
  coarse_counter += static_cast<std::uint64_t>(coarse_vertices);
  matched_counter += matched;
}

Partition direct_kway_partition(const Hypergraph& h,
                                const PartitionConfig& cfg, Workspace* ws) {
  Rng rng(cfg.seed);
  const Index stop_size =
      std::max<Index>(cfg.coarsen_to, 2 * cfg.num_parts);

  std::vector<CoarseLevel> levels;
  const Hypergraph* current = &h;
  const Weight max_vertex_weight = std::max<Weight>(
      1, static_cast<Weight>(cfg.max_coarse_weight_factor *
                             static_cast<double>(h.total_vertex_weight()) /
                             std::max<Index>(1, stop_size)));
  {
    obs::TraceScope coarsen_scope("coarsen");
    for (Index level = 0; level < cfg.max_levels; ++level) {
      if (current->num_vertices() <= stop_size) break;
      const IdVector<VertexId, VertexId> match =
          ipm_matching(*current, cfg, max_vertex_weight, rng, ws);
      CoarseLevel next = contract(*current, match, ws);
      const double reduction =
          1.0 - static_cast<double>(next.coarse.num_vertices()) /
                    static_cast<double>(current->num_vertices());
      if (reduction < cfg.min_coarsen_reduction) break;
      record_coarsen_level(current->num_vertices(),
                           next.coarse.num_vertices(), match);
      check::validate_coarsening(*current, next, cfg.check_level);
      levels.push_back(std::move(next));
      current = &levels.back().coarse;
    }
  }

  Partition p(cfg.num_parts, current->num_vertices());
  {
    obs::TraceScope initial_scope("initial");
    p = greedy_kway_initial(*current, cfg, rng);
    kway_refine(*current, p, cfg, rng, cfg.max_refine_passes, ws);
  }

  {
    obs::TraceScope refine_scope("refine");
    for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
      const Hypergraph& finer =
          (std::next(it) == levels.rend()) ? h : std::next(it)->coarse;
      check::validate_coarsening(finer, *it, cfg.check_level, &p);
      Partition fine_p(cfg.num_parts, finer.num_vertices());
      for (const VertexId v : finer.vertices())
        fine_p[v] = p[it->fine_to_coarse[v]];
      p = std::move(fine_p);
      kway_refine(finer, p, cfg, rng, cfg.max_refine_passes, ws);
    }
  }
  p.validate();
  return p;
}

void refinement_vcycle(const Hypergraph& h, Partition& p,
                       const PartitionConfig& cfg, Rng& rng, Workspace* ws) {
  obs::TraceScope trace("vcycle");
  // Restrict matching to same-part pairs by temporarily fixing every vertex
  // to its current part; the original fixed labels are re-derived on the
  // coarse side from the contraction so true constraints survive.
  Hypergraph work = h;
  std::vector<PartId> part_as_fixed(p.assignment.begin(), p.assignment.end());
  work.set_fixed_parts(std::move(part_as_fixed));

  const Index stop_size = std::max<Index>(cfg.coarsen_to, 2 * cfg.num_parts);
  const Weight max_vertex_weight = std::max<Weight>(
      1, static_cast<Weight>(cfg.max_coarse_weight_factor *
                             static_cast<double>(h.total_vertex_weight()) /
                             std::max<Index>(1, stop_size)));

  struct VLevel {
    CoarseLevel cl;
    IdVector<VertexId, PartId> orig_fixed;  // true constraints at this level
  };
  std::vector<VLevel> levels;

  // True fixed labels at the current (finest) level, keyed by that level's
  // vertex ids.
  IdVector<VertexId, PartId> fixed_now;
  if (h.has_fixed())
    // hgr-lint: raw-ok (bulk copy of the fixed-label array, same id space)
    fixed_now.raw().assign(h.fixed_parts().begin(), h.fixed_parts().end());

  const Hypergraph* current = &work;
  for (Index level = 0; level < cfg.max_levels; ++level) {
    if (current->num_vertices() <= stop_size) break;
    const IdVector<VertexId, VertexId> match =
        ipm_matching(*current, cfg, max_vertex_weight, rng, ws);
    VLevel next;
    next.cl = contract(*current, match, ws);
    const double reduction =
        1.0 - static_cast<double>(next.cl.coarse.num_vertices()) /
                  static_cast<double>(current->num_vertices());
    if (reduction < cfg.min_coarsen_reduction) break;
    check::validate_coarsening(*current, next.cl, cfg.check_level);
    // Propagate the *true* fixed constraints to the coarse level.
    if (!fixed_now.empty()) {
      IdVector<VertexId, PartId> coarse_fixed(
          next.cl.coarse.num_vertices(), kNoPart);
      for (const VertexId v : next.cl.fine_to_coarse.ids()) {
        const PartId f = fixed_now[v];
        if (f == kNoPart) continue;
        PartId& cf = coarse_fixed[next.cl.fine_to_coarse[v]];
        HGR_ASSERT(cf == kNoPart || cf == f);
        cf = f;
      }
      next.orig_fixed = coarse_fixed;
      fixed_now = std::move(coarse_fixed);
    }
    levels.push_back(std::move(next));
    current = &levels.back().cl.coarse;
  }

  if (levels.empty()) {
    // Nothing coarsened; a plain refinement sweep still helps.
    kway_refine(h, p, cfg, rng, cfg.max_refine_passes, ws);
    return;
  }

  // The coarse partition is encoded in the contraction-propagated
  // "fixed" labels (every vertex was fixed to its part).
  Partition cp(cfg.num_parts, levels.back().cl.coarse.num_vertices());
  for (const VertexId v : levels.back().cl.coarse.vertices()) {
    const PartId f = levels.back().cl.coarse.fixed_part(v);
    HGR_ASSERT(f != kNoPart);
    cp[v] = f;
  }

  // Refine down the hierarchy with only the true constraints fixed.
  for (std::size_t i = levels.size(); i-- > 0;) {
    Hypergraph& level_h = levels[i].cl.coarse;
    level_h.set_fixed_parts(
        std::vector<PartId>(levels[i].orig_fixed.begin(),
                            levels[i].orig_fixed.end()));
    kway_refine(level_h, cp, cfg, rng, cfg.max_refine_passes, ws);
    // Project to the next finer level.
    const Hypergraph& finer = (i == 0) ? h : levels[i - 1].cl.coarse;
    Partition fine_p(cfg.num_parts, finer.num_vertices());
    for (const VertexId v : finer.vertices())
      fine_p[v] = cp[levels[i].cl.fine_to_coarse[v]];
    cp = std::move(fine_p);
  }
  kway_refine(h, cp, cfg, rng, cfg.max_refine_passes, ws);

  // V-cycles must never regress.
  if (connectivity_cut(h, cp) <= connectivity_cut(h, p)) p = std::move(cp);
}

Partition partition_hypergraph(const Hypergraph& h,
                               const PartitionConfig& cfg) {
  obs::TraceScope trace("partition");
  HGR_ASSERT(cfg.num_parts >= 1);
  HGR_ASSERT(cfg.epsilon >= 0.0);
  h.validate(cfg.num_parts);
  check::validate_hypergraph(h, cfg.check_level, cfg.num_parts);

  if (cfg.num_parts == 1 || h.num_vertices() == 0) {
    Partition p(std::max<Index>(1, cfg.num_parts), h.num_vertices(),
                PartId{0});
    if (h.has_fixed()) {
      for (const VertexId v : h.vertices())
        if (h.fixed_part(v) != kNoPart) p[v] = h.fixed_part(v);
    }
    return p;
  }

  // One scratch arena for the whole call: every level of coarsening,
  // initial partitioning, and refinement below draws its temporaries from
  // here instead of reallocating per level. When cfg asks for shared-memory
  // threads, the arena also carries the pool the kernels run on
  // (docs/PARALLELISM.md) — same partition at every thread count.
  Workspace ws;
  std::optional<ThreadPool> pool;
  if (cfg.num_threads > 1) {
    pool.emplace(static_cast<int>(cfg.num_threads));
    ws.set_pool(&*pool);
  }
  Partition p = (cfg.kway_method == KwayMethod::kRecursiveBisection)
                    ? recursive_bisection_partition(h, cfg, &ws)
                    : direct_kway_partition(h, cfg, &ws);

  Rng post_rng(derive_seed(cfg.seed, 0xFACE));
  if (cfg.kway_postpass)
    kway_refine(h, p, cfg, post_rng, cfg.max_refine_passes, &ws);
  for (Index i = 0; i < cfg.num_vcycles; ++i)
    refinement_vcycle(h, p, cfg, post_rng, &ws);

  // Fixed constraints are hard: verify.
  if (h.has_fixed()) {
    for (const VertexId v : h.vertices()) {
      const PartId f = h.fixed_part(v);
      HGR_ASSERT_MSG(f == kNoPart || p[v] == f,
                     "partitioner violated a fixed-vertex constraint");
    }
  }
  {
    check::PartitionExpectations expect;
    expect.epsilon = cfg.epsilon;
    expect.context = "partition_hypergraph";
    check::validate_partition(h, p, cfg.check_level, expect);
  }
  return p;
}

}  // namespace hgr
