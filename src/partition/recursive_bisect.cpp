#include "partition/recursive_bisect.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "check/validate.hpp"
#include "common/assert.hpp"
#include "common/csr_utils.hpp"
#include "obs/trace.hpp"
#include "partition/contract.hpp"
#include "partition/partitioner.hpp"  // record_coarsen_level
#include "partition/initial.hpp"
#include "partition/matching_ipm.hpp"
#include "partition/refine_fm.hpp"

namespace hgr {

namespace {

/// A sub-problem of recursive bisection: an extracted hypergraph, the map
/// back to the root vertex ids, and the *original* (k-way) fixed labels,
/// kept separately because the hypergraph's own fixed field is rewritten
/// with 2-way side labels before each bisection.
struct SubProblem {
  Hypergraph h;
  std::vector<Index> to_root;
  std::vector<PartId> fixed_orig;  // empty if nothing fixed
};

/// Extract the side-s induced sub-hypergraph: nets restricted to side-s
/// pins, degenerate (<2 pin) remainders dropped, costs preserved.
SubProblem extract_side(const Hypergraph& h,
                        const std::vector<PartId>& side,
                        const std::vector<Index>& to_root,
                        const std::vector<PartId>& fixed_orig, PartId s) {
  const Index n = h.num_vertices();
  std::vector<Index> old_to_new(static_cast<std::size_t>(n), kInvalidIndex);
  SubProblem sub;
  Index count = 0;
  for (Index v = 0; v < n; ++v) {
    if (side[static_cast<std::size_t>(v)] == s) {
      old_to_new[static_cast<std::size_t>(v)] = count++;
      sub.to_root.push_back(to_root[static_cast<std::size_t>(v)]);
    }
  }

  std::vector<Weight> weights(static_cast<std::size_t>(count));
  std::vector<Weight> sizes(static_cast<std::size_t>(count));
  for (Index v = 0; v < n; ++v) {
    const Index nv = old_to_new[static_cast<std::size_t>(v)];
    if (nv == kInvalidIndex) continue;
    weights[static_cast<std::size_t>(nv)] = h.vertex_weight(v);
    sizes[static_cast<std::size_t>(nv)] = h.vertex_size(v);
  }
  if (!fixed_orig.empty()) {
    sub.fixed_orig.assign(static_cast<std::size_t>(count), kNoPart);
    for (Index v = 0; v < n; ++v) {
      const Index nv = old_to_new[static_cast<std::size_t>(v)];
      if (nv != kInvalidIndex)
        sub.fixed_orig[static_cast<std::size_t>(nv)] =
            fixed_orig[static_cast<std::size_t>(v)];
    }
  }

  std::vector<Index> counts;
  std::vector<Weight> costs;
  for (Index net = 0; net < h.num_nets(); ++net) {
    Index kept = 0;
    for (const Index v : h.pins(net))
      if (old_to_new[static_cast<std::size_t>(v)] != kInvalidIndex) ++kept;
    if (kept >= 2) {
      counts.push_back(kept);
      costs.push_back(h.net_cost(net));
    }
  }
  std::vector<Index> offsets = counts_to_offsets(std::move(counts));
  std::vector<Index> pins(static_cast<std::size_t>(offsets.back()));
  Index cursor = 0;
  for (Index net = 0; net < h.num_nets(); ++net) {
    Index kept = 0;
    for (const Index v : h.pins(net))
      if (old_to_new[static_cast<std::size_t>(v)] != kInvalidIndex) ++kept;
    if (kept < 2) continue;
    for (const Index v : h.pins(net)) {
      const Index nv = old_to_new[static_cast<std::size_t>(v)];
      if (nv != kInvalidIndex)
        pins[static_cast<std::size_t>(cursor++)] = nv;
    }
  }
  HGR_ASSERT(cursor == offsets.back());
  sub.h = Hypergraph(std::move(offsets), std::move(pins), std::move(weights),
                     std::move(sizes), std::move(costs));
  return sub;
}

void rb_recurse(SubProblem sp, PartId part_begin, PartId part_count,
                double global_eps, const PartitionConfig& cfg, Rng& rng,
                Workspace* ws, Partition& out) {
  if (sp.h.num_vertices() == 0) return;
  if (part_count == 1) {
    for (const Index root_v : sp.to_root) out[root_v] = part_begin;
    return;
  }

  const PartId k0 = (part_count + 1) / 2;
  const PartId k1 = part_count - k0;
  const PartId mid = part_begin + k0;

  // Per-bisection tolerance so that the compounded imbalance over the
  // remaining ceil(log2 k) levels stays within the global epsilon.
  const int levels_left = static_cast<int>(
      std::ceil(std::log2(static_cast<double>(part_count))));
  const double eps_b =
      std::pow(1.0 + global_eps, 1.0 / std::max(1, levels_left)) - 1.0;

  BisectionTargets targets;
  const Weight total = sp.h.total_vertex_weight();
  targets.target0 = static_cast<Weight>(
      (static_cast<double>(total) * k0) / part_count + 0.5);
  targets.target1 = total - targets.target0;
  targets.epsilon = eps_b;

  // Map k-way fixed labels to 2-way side labels for this bisection.
  if (!sp.fixed_orig.empty()) {
    std::vector<PartId> fixed2(sp.fixed_orig.size(), kNoPart);
    for (std::size_t v = 0; v < sp.fixed_orig.size(); ++v) {
      const PartId f = sp.fixed_orig[v];
      if (f == kNoPart) continue;
      HGR_ASSERT(f >= part_begin && f < part_begin + part_count);
      fixed2[v] = f < mid ? 0 : 1;
    }
    sp.h.set_fixed_parts(std::move(fixed2));
  }

  const std::vector<PartId> side =
      multilevel_bisect(sp.h, targets, cfg, rng, ws);

  SubProblem left = extract_side(sp.h, side, sp.to_root, sp.fixed_orig, 0);
  SubProblem right = extract_side(sp.h, side, sp.to_root, sp.fixed_orig, 1);
  // Free the parent before recursing to bound peak memory.
  sp = SubProblem{};
  rb_recurse(std::move(left), part_begin, k0, global_eps, cfg, rng, ws, out);
  rb_recurse(std::move(right), mid, k1, global_eps, cfg, rng, ws, out);
}

}  // namespace

std::vector<PartId> multilevel_bisect(const Hypergraph& h,
                                      const BisectionTargets& targets,
                                      const PartitionConfig& cfg, Rng& rng,
                                      Workspace* ws) {
  const Index stop_size = std::max<Index>(cfg.coarsen_to, 20);

  // Coarsening: IPM matching + contraction until small or stalled.
  std::vector<CoarseLevel> levels;
  const Hypergraph* current = &h;
  const Weight max_vertex_weight = std::max<Weight>(
      1, static_cast<Weight>(cfg.max_coarse_weight_factor *
                             static_cast<double>(h.total_vertex_weight()) /
                             std::max<Index>(1, stop_size)));
  {
    obs::TraceScope coarsen_scope("coarsen");
    for (Index level = 0; level < cfg.max_levels; ++level) {
      if (current->num_vertices() <= stop_size) break;
      const std::vector<Index> match =
          ipm_matching(*current, cfg, max_vertex_weight, rng, ws);
      CoarseLevel next = contract(*current, match, ws);
      const double reduction =
          1.0 - static_cast<double>(next.coarse.num_vertices()) /
                    static_cast<double>(current->num_vertices());
      if (reduction < cfg.min_coarsen_reduction) break;  // stalled
      record_coarsen_level(current->num_vertices(),
                           next.coarse.num_vertices(), match);
      check::validate_coarsening(*current, next, cfg.check_level);
      levels.push_back(std::move(next));
      current = &levels.back().coarse;
    }
  }

  // Coarsest partitioning: randomized greedy growing, several trials, then
  // FM polish.
  std::vector<PartId> side;
  {
    obs::TraceScope initial_scope("initial");
    side = initial_bisection(*current, targets, cfg.num_initial_trials, rng);
    fm_refine_bisection(*current, side, targets, cfg, rng, ws);
  }

  // Uncoarsening: project and refine at each level.
  {
    obs::TraceScope refine_scope("refine");
    for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
      const Hypergraph& finer =
          (std::next(it) == levels.rend()) ? h : std::next(it)->coarse;
      if (check::paranoid(cfg.check_level)) {
        Partition coarse_p(2, it->coarse.num_vertices());
        coarse_p.assignment = side;
        check::validate_coarsening(finer, *it, cfg.check_level, &coarse_p);
      }
      std::vector<PartId> fine_side(
          static_cast<std::size_t>(finer.num_vertices()));
      for (Index v = 0; v < finer.num_vertices(); ++v)
        fine_side[static_cast<std::size_t>(v)] =
            side[static_cast<std::size_t>(
                it->fine_to_coarse[static_cast<std::size_t>(v)])];
      side = std::move(fine_side);
      fm_refine_bisection(finer, side, targets, cfg, rng, ws);
    }
  }
  return side;
}

Partition recursive_bisection_partition(const Hypergraph& h,
                                        const PartitionConfig& cfg,
                                        Workspace* ws) {
  HGR_ASSERT(cfg.num_parts >= 1);
  Partition out(cfg.num_parts, h.num_vertices());
  if (h.num_vertices() == 0) return out;

  Rng rng(cfg.seed);

  SubProblem root;
  root.h = h;  // working copy: rb_recurse rewrites fixed labels per level
  root.to_root.resize(static_cast<std::size_t>(h.num_vertices()));
  for (Index v = 0; v < h.num_vertices(); ++v)
    root.to_root[static_cast<std::size_t>(v)] = v;
  if (h.has_fixed())
    root.fixed_orig.assign(h.fixed_parts().begin(), h.fixed_parts().end());

  rb_recurse(std::move(root), 0, cfg.num_parts, cfg.epsilon, cfg, rng, ws,
             out);
  out.validate();
  {
    // Balance is asserted by partition_hypergraph against the global
    // epsilon; here only structure and fixed constraints are checked (each
    // bisection level used its own compounded tolerance).
    check::PartitionExpectations expect;
    expect.context = "recursive_bisect";
    check::validate_partition(h, out, cfg.check_level, expect);
  }
  return out;
}

}  // namespace hgr
