#include "partition/recursive_bisect.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "check/validate.hpp"
#include "common/assert.hpp"
#include "common/csr_utils.hpp"
#include "metrics/balance.hpp"
#include "obs/trace.hpp"
#include "partition/contract.hpp"
#include "partition/partitioner.hpp"  // record_coarsen_level
#include "partition/initial.hpp"
#include "partition/matching_ipm.hpp"
#include "partition/refine_fm.hpp"

namespace hgr {

namespace {

/// A sub-problem of recursive bisection: an extracted hypergraph, the map
/// back to the root vertex ids, and the *original* (k-way) fixed labels,
/// kept separately because the hypergraph's own fixed field is rewritten
/// with 2-way side labels before each bisection.
struct SubProblem {
  Hypergraph h;
  IdVector<VertexId, VertexId> to_root;  // sub id -> root id
  IdVector<VertexId, PartId> fixed_orig;  // empty if nothing fixed
};

/// Extract the side-s induced sub-hypergraph: nets restricted to side-s
/// pins, degenerate (<2 pin) remainders dropped, costs preserved.
SubProblem extract_side(const Hypergraph& h,
                        const IdVector<VertexId, PartId>& side,
                        const IdVector<VertexId, VertexId>& to_root,
                        const IdVector<VertexId, PartId>& fixed_orig,
                        PartId s) {
  const Index n = h.num_vertices();
  IdVector<VertexId, VertexId> old_to_new(n, kInvalidVertex);
  SubProblem sub;
  VertexId count{0};
  for (const VertexId v : h.vertices()) {
    if (side[v] == s) {
      old_to_new[v] = count++;
      sub.to_root.push_back(to_root[v]);
    }
  }

  IdVector<VertexId, Weight> weights(count.v);
  IdVector<VertexId, Weight> sizes(count.v);
  for (const VertexId v : h.vertices()) {
    const VertexId nv = old_to_new[v];
    if (nv == kInvalidVertex) continue;
    weights[nv] = h.vertex_weight(v);
    sizes[nv] = h.vertex_size(v);
  }
  if (!fixed_orig.empty()) {
    sub.fixed_orig.assign(count.v, kNoPart);
    for (const VertexId v : h.vertices()) {
      const VertexId nv = old_to_new[v];
      if (nv != kInvalidVertex) sub.fixed_orig[nv] = fixed_orig[v];
    }
  }

  std::vector<Index> counts;
  std::vector<Weight> costs;
  for (const NetId net : h.nets()) {
    Index kept = 0;
    for (const VertexId v : h.pins(net))
      if (old_to_new[v] != kInvalidVertex) ++kept;
    if (kept >= 2) {
      counts.push_back(kept);
      costs.push_back(h.net_cost(net));
    }
  }
  std::vector<Index> offsets = counts_to_offsets(std::move(counts));
  std::vector<VertexId> pins(static_cast<std::size_t>(offsets.back()));
  Index cursor = 0;
  for (const NetId net : h.nets()) {
    Index kept = 0;
    for (const VertexId v : h.pins(net))
      if (old_to_new[v] != kInvalidVertex) ++kept;
    if (kept < 2) continue;
    for (const VertexId v : h.pins(net)) {
      const VertexId nv = old_to_new[v];
      if (nv != kInvalidVertex) pins[static_cast<std::size_t>(cursor++)] = nv;
    }
  }
  HGR_ASSERT(cursor == offsets.back());
  // hgr-lint: raw-ok (handing storage to the Hypergraph raw constructor)
  sub.h = Hypergraph(std::move(offsets), std::move(pins),
                     std::move(weights.raw()), std::move(sizes.raw()),
                     std::move(costs));
  return sub;
}

void rb_recurse(SubProblem sp, PartId part_begin, Index part_count,
                double global_eps, Weight part_limit,
                const PartitionConfig& cfg, Rng& rng, Workspace* ws,
                Partition& out) {
  if (sp.h.num_vertices() == 0) return;
  if (part_count == 1) {
    for (const VertexId root_v : sp.to_root) out[root_v] = part_begin;
    return;
  }

  const Index k0 = (part_count + 1) / 2;
  const Index k1 = part_count - k0;
  const PartId mid{part_begin.v + k0};

  // Per-bisection tolerance so that the compounded imbalance over the
  // remaining ceil(log2 k) levels stays within the global epsilon.
  const int levels_left = static_cast<int>(
      std::ceil(std::log2(static_cast<double>(part_count))));
  const double eps_b =
      std::pow(1.0 + global_eps, 1.0 / std::max(1, levels_left)) - 1.0;

  BisectionTargets targets;
  const Weight total = sp.h.total_vertex_weight();
  targets.target0 = static_cast<Weight>(
      (static_cast<double>(total) * k0) / part_count + 0.5);
  targets.target1 = total - targets.target0;
  targets.epsilon = eps_b;
  // A side may never exceed what its final parts are allowed to weigh in
  // total, no matter how much per-level epsilon slack remains.
  targets.cap0 = part_limit * k0;
  targets.cap1 = part_limit * k1;

  // Map k-way fixed labels to 2-way side labels for this bisection.
  if (!sp.fixed_orig.empty()) {
    std::vector<PartId> fixed2(sp.fixed_orig.size(), kNoPart);
    for (const VertexId v : sp.fixed_orig.ids()) {
      const PartId f = sp.fixed_orig[v];
      if (f == kNoPart) continue;
      HGR_ASSERT(f >= part_begin && f.v < part_begin.v + part_count);
      fixed2[static_cast<std::size_t>(v.v)] = f < mid ? PartId{0} : PartId{1};
    }
    sp.h.set_fixed_parts(std::move(fixed2));
  }

  const IdVector<VertexId, PartId> side =
      multilevel_bisect(sp.h, targets, cfg, rng, ws);

  SubProblem left =
      extract_side(sp.h, side, sp.to_root, sp.fixed_orig, PartId{0});
  SubProblem right =
      extract_side(sp.h, side, sp.to_root, sp.fixed_orig, PartId{1});
  // Free the parent before recursing to bound peak memory.
  sp = SubProblem{};
  rb_recurse(std::move(left), part_begin, k0, global_eps, part_limit, cfg,
             rng, ws, out);
  rb_recurse(std::move(right), mid, k1, global_eps, part_limit, cfg, rng, ws,
             out);
}

}  // namespace

IdVector<VertexId, PartId> multilevel_bisect(const Hypergraph& h,
                                             const BisectionTargets& targets,
                                             const PartitionConfig& cfg,
                                             Rng& rng, Workspace* ws) {
  const Index stop_size = std::max<Index>(cfg.coarsen_to, 20);

  // Coarsening: IPM matching + contraction until small or stalled.
  std::vector<CoarseLevel> levels;
  const Hypergraph* current = &h;
  const Weight max_vertex_weight = std::max<Weight>(
      1, static_cast<Weight>(cfg.max_coarse_weight_factor *
                             static_cast<double>(h.total_vertex_weight()) /
                             std::max<Index>(1, stop_size)));
  {
    obs::TraceScope coarsen_scope("coarsen");
    for (Index level = 0; level < cfg.max_levels; ++level) {
      if (current->num_vertices() <= stop_size) break;
      const IdVector<VertexId, VertexId> match =
          ipm_matching(*current, cfg, max_vertex_weight, rng, ws);
      CoarseLevel next = contract(*current, match, ws);
      const double reduction =
          1.0 - static_cast<double>(next.coarse.num_vertices()) /
                    static_cast<double>(current->num_vertices());
      if (reduction < cfg.min_coarsen_reduction) break;  // stalled
      record_coarsen_level(current->num_vertices(),
                           next.coarse.num_vertices(), match);
      check::validate_coarsening(*current, next, cfg.check_level);
      levels.push_back(std::move(next));
      current = &levels.back().coarse;
    }
  }

  // Coarsest partitioning: randomized greedy growing, several trials, then
  // FM polish.
  IdVector<VertexId, PartId> side;
  {
    obs::TraceScope initial_scope("initial");
    side = initial_bisection(*current, targets, cfg.num_initial_trials, rng);
    fm_refine_bisection(*current, side, targets, cfg, rng, ws);
  }

  // Uncoarsening: project and refine at each level.
  {
    obs::TraceScope refine_scope("refine");
    for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
      const Hypergraph& finer =
          (std::next(it) == levels.rend()) ? h : std::next(it)->coarse;
      if (check::paranoid(cfg.check_level)) {
        Partition coarse_p(2, it->coarse.num_vertices());
        coarse_p.assignment = side;
        check::validate_coarsening(finer, *it, cfg.check_level, &coarse_p);
      }
      IdVector<VertexId, PartId> fine_side(finer.num_vertices());
      for (const VertexId v : finer.vertices())
        fine_side[v] = side[it->fine_to_coarse[v]];
      side = std::move(fine_side);
      fm_refine_bisection(finer, side, targets, cfg, rng, ws);
    }
  }
  return side;
}

Partition recursive_bisection_partition(const Hypergraph& h,
                                        const PartitionConfig& cfg,
                                        Workspace* ws) {
  HGR_ASSERT(cfg.num_parts >= 1);
  Partition out(cfg.num_parts, h.num_vertices());
  if (h.num_vertices() == 0) return out;

  Rng rng(cfg.seed);

  SubProblem root;
  root.h = h;  // working copy: rb_recurse rewrites fixed labels per level
  root.to_root.resize(h.num_vertices());
  for (const VertexId v : h.vertices()) root.to_root[v] = v;
  if (h.has_fixed())
    // hgr-lint: raw-ok (bulk copy of the fixed-label array, same id space)
    root.fixed_orig.raw().assign(h.fixed_parts().begin(),
                                 h.fixed_parts().end());

  rb_recurse(std::move(root), PartId{0}, cfg.num_parts, cfg.epsilon,
             max_part_weight(h.total_vertex_weight(), cfg.num_parts,
                             cfg.epsilon),
             cfg, rng, ws, out);
  out.validate();
  {
    // Balance is asserted by partition_hypergraph against the global
    // epsilon; here only structure and fixed constraints are checked (each
    // bisection level used its own compounded tolerance).
    check::PartitionExpectations expect;
    expect.context = "recursive_bisect";
    check::validate_partition(h, out, cfg.check_level, expect);
  }
  return out;
}

}  // namespace hgr
