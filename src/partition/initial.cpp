#include "partition/initial.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"
#include "common/indexed_heap.hpp"

namespace hgr {

namespace {

/// Cut cost of a bisection (2-way connectivity-1 == cut-net cost).
Weight bisection_cut(const Hypergraph& h, const std::vector<PartId>& side) {
  Weight cut = 0;
  for (Index net = 0; net < h.num_nets(); ++net) {
    const auto ps = h.pins(net);
    const PartId first = side[static_cast<std::size_t>(ps.front())];
    for (const Index v : ps) {
      if (side[static_cast<std::size_t>(v)] != first) {
        cut += h.net_cost(net);
        break;
      }
    }
  }
  return cut;
}

Weight side_weight(const Hypergraph& h, const std::vector<PartId>& side,
                   PartId s) {
  Weight w = 0;
  for (Index v = 0; v < h.num_vertices(); ++v)
    if (side[static_cast<std::size_t>(v)] == s) w += h.vertex_weight(v);
  return w;
}

}  // namespace

std::vector<PartId> greedy_growing_bisection(const Hypergraph& h,
                                             const BisectionTargets& t,
                                             Rng& rng) {
  const Index n = h.num_vertices();
  std::vector<PartId> side(static_cast<std::size_t>(n), 1);
  std::vector<bool> movable(static_cast<std::size_t>(n), true);
  Weight w0 = 0;

  for (Index v = 0; v < n; ++v) {
    const PartId f = h.fixed_part(v);
    if (f == kNoPart) continue;
    HGR_ASSERT_MSG(f == 0 || f == 1, "bisection fixed part must be 0 or 1");
    side[static_cast<std::size_t>(v)] = f;
    movable[static_cast<std::size_t>(v)] = false;
    if (f == 0) w0 += h.vertex_weight(v);
  }

  // pins0[net] = pins currently on side 0.
  std::vector<Index> pins0(static_cast<std::size_t>(h.num_nets()), 0);
  for (Index net = 0; net < h.num_nets(); ++net)
    for (const Index v : h.pins(net))
      if (side[static_cast<std::size_t>(v)] == 0)
        ++pins0[static_cast<std::size_t>(net)];

  // FM-style gain of moving v from side 1 to side 0.
  auto gain_of = [&](Index v) {
    Weight g = 0;
    for (const Index net : h.incident_nets(v)) {
      const Weight c = h.net_cost(net);
      const Index p0 = pins0[static_cast<std::size_t>(net)];
      if (p0 == h.net_size(net) - 1) g += c;  // net becomes internal to 0
      if (p0 == 0) g -= c;                    // net becomes cut
    }
    return g;
  };

  IndexedMaxHeap frontier(n);
  std::vector<bool> queued(static_cast<std::size_t>(n), false);

  auto enqueue = [&](Index v) {
    if (side[static_cast<std::size_t>(v)] != 1 ||
        !movable[static_cast<std::size_t>(v)] ||
        queued[static_cast<std::size_t>(v)])
      return;
    frontier.insert(v, gain_of(v));
    queued[static_cast<std::size_t>(v)] = true;
  };

  // Seed the frontier with neighbors of pre-placed (fixed side-0) vertices.
  for (Index v = 0; v < n; ++v) {
    if (side[static_cast<std::size_t>(v)] != 0) continue;
    for (const Index net : h.incident_nets(v))
      for (const Index u : h.pins(net)) enqueue(u);
  }

  std::vector<Index> free_order = random_permutation(n, rng);
  std::size_t free_cursor = 0;

  while (w0 < t.target0) {
    if (frontier.empty()) {
      // Disconnected growth (or empty seed): restart from a random vertex.
      while (free_cursor < free_order.size()) {
        const Index v = free_order[free_cursor++];
        if (side[static_cast<std::size_t>(v)] == 1 &&
            movable[static_cast<std::size_t>(v)]) {
          enqueue(v);
          break;
        }
      }
      if (frontier.empty()) break;  // nothing left to move
    }
    const Index v = frontier.pop();
    queued[static_cast<std::size_t>(v)] = false;
    if (w0 + h.vertex_weight(v) > t.max_weight(0)) continue;  // too heavy

    side[static_cast<std::size_t>(v)] = 0;
    w0 += h.vertex_weight(v);
    for (const Index net : h.incident_nets(v)) {
      ++pins0[static_cast<std::size_t>(net)];
      for (const Index u : h.pins(net)) {
        if (u == v) continue;
        if (queued[static_cast<std::size_t>(u)]) {
          frontier.adjust(u, gain_of(u));
        } else {
          enqueue(u);
        }
      }
    }
  }
  return side;
}

std::vector<PartId> initial_bisection(const Hypergraph& h,
                                      const BisectionTargets& t, Index trials,
                                      Rng& rng) {
  HGR_ASSERT(trials >= 1);
  std::vector<PartId> best;
  // Lexicographic score: (infeasible?, overweight, cut).
  Weight best_over = std::numeric_limits<Weight>::max();
  Weight best_cut = std::numeric_limits<Weight>::max();
  for (Index trial = 0; trial < trials; ++trial) {
    std::vector<PartId> side = greedy_growing_bisection(h, t, rng);
    const Weight w0 = side_weight(h, side, 0);
    const Weight w1 = h.total_vertex_weight() - w0;
    const Weight over = std::max<Weight>(0, w0 - t.max_weight(0)) +
                        std::max<Weight>(0, w1 - t.max_weight(1));
    const Weight cut = bisection_cut(h, side);
    if (over < best_over || (over == best_over && cut < best_cut)) {
      best_over = over;
      best_cut = cut;
      best = std::move(side);
    }
  }
  return best;
}

}  // namespace hgr
