#include "partition/initial.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"
#include "common/indexed_heap.hpp"

namespace hgr {

namespace {

constexpr PartId kSide0{0};
constexpr PartId kSide1{1};

/// Cut cost of a bisection (2-way connectivity-1 == cut-net cost).
Weight bisection_cut(const Hypergraph& h,
                     const IdVector<VertexId, PartId>& side) {
  Weight cut = 0;
  for (const NetId net : h.nets()) {
    const auto ps = h.pins(net);
    const PartId first = side[ps.front()];
    for (const VertexId v : ps) {
      if (side[v] != first) {
        cut += h.net_cost(net);
        break;
      }
    }
  }
  return cut;
}

Weight side_weight(const Hypergraph& h, const IdVector<VertexId, PartId>& side,
                   PartId s) {
  Weight w = 0;
  for (const VertexId v : h.vertices())
    if (side[v] == s) w += h.vertex_weight(v);
  return w;
}

}  // namespace

IdVector<VertexId, PartId> greedy_growing_bisection(const Hypergraph& h,
                                                    const BisectionTargets& t,
                                                    Rng& rng) {
  const Index n = h.num_vertices();
  IdVector<VertexId, PartId> side(n, kSide1);
  IdVector<VertexId, bool> movable(n, true);
  Weight w0 = 0;

  for (const VertexId v : h.vertices()) {
    const PartId f = h.fixed_part(v);
    if (f == kNoPart) continue;
    HGR_ASSERT_MSG(f == kSide0 || f == kSide1,
                   "bisection fixed part must be 0 or 1");
    side[v] = f;
    movable[v] = false;
    if (f == kSide0) w0 += h.vertex_weight(v);
  }

  // pins0[net] = pins currently on side 0.
  IdVector<NetId, Index> pins0(h.num_nets(), 0);
  for (const NetId net : h.nets())
    for (const VertexId v : h.pins(net))
      if (side[v] == kSide0) ++pins0[net];

  // FM-style gain of moving v from side 1 to side 0.
  auto gain_of = [&](VertexId v) {
    Weight g = 0;
    for (const NetId net : h.incident_nets(v)) {
      const Weight c = h.net_cost(net);
      const Index p0 = pins0[net];
      if (p0 == h.net_size(net) - 1) g += c;  // net becomes internal to 0
      if (p0 == 0) g -= c;                    // net becomes cut
    }
    return g;
  };

  // The heap keys items by raw id; VertexId crosses its boundary via .v.
  IndexedMaxHeap frontier(n);
  IdVector<VertexId, bool> queued(n, false);

  auto enqueue = [&](VertexId v) {
    if (side[v] != kSide1 || !movable[v] || queued[v]) return;
    frontier.insert(v.v, gain_of(v));
    queued[v] = true;
  };

  // Seed the frontier with neighbors of pre-placed (fixed side-0) vertices.
  for (const VertexId v : h.vertices()) {
    if (side[v] != kSide0) continue;
    for (const NetId net : h.incident_nets(v))
      for (const VertexId u : h.pins(net)) enqueue(u);
  }

  std::vector<Index> free_order = random_permutation(n, rng);
  std::size_t free_cursor = 0;

  while (w0 < t.target0) {
    if (frontier.empty()) {
      // Disconnected growth (or empty seed): restart from a random vertex.
      while (free_cursor < free_order.size()) {
        const VertexId v{free_order[free_cursor++]};
        if (side[v] == kSide1 && movable[v]) {
          enqueue(v);
          break;
        }
      }
      if (frontier.empty()) break;  // nothing left to move
    }
    const VertexId v{frontier.pop()};
    queued[v] = false;
    if (w0 + h.vertex_weight(v) > t.max_weight(0)) continue;  // too heavy

    side[v] = kSide0;
    w0 += h.vertex_weight(v);
    for (const NetId net : h.incident_nets(v)) {
      ++pins0[net];
      for (const VertexId u : h.pins(net)) {
        if (u == v) continue;
        if (queued[u]) {
          frontier.adjust(u.v, gain_of(u));
        } else {
          enqueue(u);
        }
      }
    }
  }
  return side;
}

IdVector<VertexId, PartId> initial_bisection(const Hypergraph& h,
                                             const BisectionTargets& t,
                                             Index trials, Rng& rng) {
  HGR_ASSERT(trials >= 1);
  IdVector<VertexId, PartId> best;
  // Lexicographic score: (infeasible?, overweight, cut).
  Weight best_over = std::numeric_limits<Weight>::max();
  Weight best_cut = std::numeric_limits<Weight>::max();
  for (Index trial = 0; trial < trials; ++trial) {
    IdVector<VertexId, PartId> side = greedy_growing_bisection(h, t, rng);
    const Weight w0 = side_weight(h, side, kSide0);
    const Weight w1 = h.total_vertex_weight() - w0;
    const Weight over = std::max<Weight>(0, w0 - t.max_weight(0)) +
                        std::max<Weight>(0, w1 - t.max_weight(1));
    const Weight cut = bisection_cut(h, side);
    if (over < best_over || (over == best_over && cut < best_cut)) {
      best_over = over;
      best_cut = cut;
      best = std::move(side);
    }
  }
  return best;
}

}  // namespace hgr
