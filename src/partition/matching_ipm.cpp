#include "partition/matching_ipm.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace hgr {

IdVector<VertexId, VertexId> ipm_matching(const Hypergraph& h,
                                          const PartitionConfig& cfg,
                                          Weight max_vertex_weight, Rng& rng,
                                          Workspace* ws) {
  const Index n = h.num_vertices();
  IdVector<VertexId, VertexId> match(n);
  for (const VertexId v : h.vertices()) match[v] = v;

  // Sparse score accumulator: score[u] valid iff u is in `touched`.
  // Scratch vectors come out of the untyped workspace pool and are used
  // through typed views keyed by VertexId.
  Borrowed<Weight> score_b(ws);
  score_b.get().assign(static_cast<std::size_t>(n), 0);
  IdSpan<VertexId, Weight> score(std::span<Weight>(score_b.get()));
  Borrowed<VertexId> touched_b(ws);
  std::vector<VertexId>& touched = touched_b.get();

  Borrowed<Index> order_b(ws);
  std::vector<Index>& order = order_b.get();
  random_permutation_into(order, n, rng);
  for (const Index vi : order) {
    const VertexId v{vi};
    if (match[v] != v) continue;  // already matched
    if (h.vertex_degree(v) > cfg.max_matching_degree) continue;
    const PartId fv = h.fixed_part(v);
    const Weight wv = h.vertex_weight(v);

    touched.clear();
    for (const NetId net : h.incident_nets(v)) {
      const Index size = h.net_size(net);
      if (size < 2 || size > cfg.max_scored_net_size) continue;
      const Weight c = h.net_cost(net);
      if (c == 0) continue;
      for (const VertexId u : h.pins(net)) {
        if (u == v) continue;
        if (match[u] != u) continue;
        if (score[u] == 0) touched.push_back(u);
        score[u] += c;
      }
    }

    // First-choice selection: highest inner product among feasible partners;
    // ties prefer the lighter partner (balances coarse weights), then the
    // smaller id (determinism).
    VertexId best = kInvalidVertex;
    Weight best_score = 0;
    Weight best_weight = 0;
    for (const VertexId u : touched) {
      const Weight s = score[u];
      score[u] = 0;  // reset for next candidate
      if (!fixed_compatible(fv, h.fixed_part(u))) continue;
      if (max_vertex_weight > 0 && wv + h.vertex_weight(u) > max_vertex_weight)
        continue;
      const Weight wu = h.vertex_weight(u);
      const bool better =
          s > best_score ||
          (s == best_score &&
           (best == kInvalidVertex || wu < best_weight ||
            (wu == best_weight && u < best)));
      if (better) {
        best = u;
        best_score = s;
        best_weight = wu;
      }
    }
    if (best != kInvalidVertex) {
      match[v] = best;
      match[best] = v;
    }
  }

  // Postcondition: match is an involution and respects fixed compatibility.
#ifndef NDEBUG
  for (const VertexId v : h.vertices()) {
    const VertexId u = match[v];
    HGR_ASSERT(match[u] == v);
    if (u != v)
      HGR_ASSERT(fixed_compatible(h.fixed_part(v), h.fixed_part(u)));
  }
#endif
  return match;
}

}  // namespace hgr
