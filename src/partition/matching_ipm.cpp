#include "partition/matching_ipm.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace hgr {

std::vector<Index> ipm_matching(const Hypergraph& h,
                                const PartitionConfig& cfg,
                                Weight max_vertex_weight, Rng& rng,
                                Workspace* ws) {
  const Index n = h.num_vertices();
  std::vector<Index> match(static_cast<std::size_t>(n));
  for (Index v = 0; v < n; ++v) match[static_cast<std::size_t>(v)] = v;

  // Sparse score accumulator: score[u] valid iff u is in `touched`.
  Borrowed<Weight> score_b(ws);
  std::vector<Weight>& score = score_b.get();
  score.assign(static_cast<std::size_t>(n), 0);
  Borrowed<Index> touched_b(ws);
  std::vector<Index>& touched = touched_b.get();

  Borrowed<Index> order_b(ws);
  std::vector<Index>& order = order_b.get();
  random_permutation_into(order, n, rng);
  for (const Index v : order) {
    if (match[static_cast<std::size_t>(v)] != v) continue;  // already matched
    if (h.vertex_degree(v) > cfg.max_matching_degree) continue;
    const PartId fv = h.fixed_part(v);
    const Weight wv = h.vertex_weight(v);

    touched.clear();
    for (const Index net : h.incident_nets(v)) {
      const Index size = h.net_size(net);
      if (size < 2 || size > cfg.max_scored_net_size) continue;
      const Weight c = h.net_cost(net);
      if (c == 0) continue;
      for (const Index u : h.pins(net)) {
        if (u == v) continue;
        if (match[static_cast<std::size_t>(u)] != u) continue;
        if (score[static_cast<std::size_t>(u)] == 0) touched.push_back(u);
        score[static_cast<std::size_t>(u)] += c;
      }
    }

    // First-choice selection: highest inner product among feasible partners;
    // ties prefer the lighter partner (balances coarse weights), then the
    // smaller id (determinism).
    Index best = kInvalidIndex;
    Weight best_score = 0;
    Weight best_weight = 0;
    for (const Index u : touched) {
      const Weight s = score[static_cast<std::size_t>(u)];
      score[static_cast<std::size_t>(u)] = 0;  // reset for next candidate
      if (!fixed_compatible(fv, h.fixed_part(u))) continue;
      if (max_vertex_weight > 0 && wv + h.vertex_weight(u) > max_vertex_weight)
        continue;
      const Weight wu = h.vertex_weight(u);
      const bool better =
          s > best_score ||
          (s == best_score &&
           (best == kInvalidIndex || wu < best_weight ||
            (wu == best_weight && u < best)));
      if (better) {
        best = u;
        best_score = s;
        best_weight = wu;
      }
    }
    if (best != kInvalidIndex) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    }
  }

  // Postcondition: match is an involution and respects fixed compatibility.
#ifndef NDEBUG
  for (Index v = 0; v < n; ++v) {
    const Index u = match[static_cast<std::size_t>(v)];
    HGR_ASSERT(match[static_cast<std::size_t>(u)] == v);
    if (u != v)
      HGR_ASSERT(fixed_compatible(h.fixed_part(v), h.fixed_part(u)));
  }
#endif
  return match;
}

}  // namespace hgr
