#include "partition/matching_ipm.hpp"

#include <cstdint>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "obs/trace.hpp"

namespace hgr {
namespace {

/// Rounds are capped defensively; real inputs converge in far fewer
/// (expected O(log n) thanks to the per-round hash tie-break).
constexpr Index kMaxRounds = 64;
/// A round can make zero matches yet not be terminal: the next salt
/// reshuffles tie-broken preferences. Give up after this many in a row.
constexpr int kStaleRounds = 4;

}  // namespace

// Mutual-proposal matching, the thread-parallel replacement for the old
// sequential greedy pass. Each round: (1) every unmatched vertex scores
// its unmatched neighbors (cost-weighted shared nets) and proposes to the
// best feasible one; (2) pairs that proposed to each other become
// matched. Both phases are chunked over vertices; phase 1 reads only
// round-start `match` and writes prop[v] for v in its own chunk, phase 2
// reads only `prop` and writes the two match cells of a mutual pair from
// the chunk owning its smaller endpoint — each cell has exactly one
// writer, so the rounds are race-free AND their output is a pure function
// of the round-start state. That makes the result bit-identical for every
// thread count (the ThreadDeterminism suite holds this to 1/2/4 threads).
//
// Ties (equal score, equal weight) are broken by a per-round salted hash
// of the candidate id before the id itself: with plain lowest-id
// preference, symmetric neighborhoods (paths, grids) funnel every
// proposal onto the same few vertices and the rounds crawl; the hash
// decorrelates preferences so a constant fraction of proposals pair up
// per round. The salt is drawn serially from `rng` once per round, so the
// random stream is consumed identically at every thread count.
IdVector<VertexId, VertexId> ipm_matching(const Hypergraph& h,
                                          const PartitionConfig& cfg,
                                          Weight max_vertex_weight, Rng& rng,
                                          Workspace* ws) {
  const Index n = h.num_vertices();
  IdVector<VertexId, VertexId> match(n);
  for (const VertexId v : h.vertices()) match[v] = v;

  ThreadPool* pool = ws != nullptr ? ws->pool() : nullptr;
  const int num_threads = pool_threads(pool);
  if (ws != nullptr) ws->reserve_threads(num_threads);

  // Sparse score accumulators, one slice of `n` per thread: score[u] is
  // valid iff u is in that thread's `touched` list, and every slice is
  // restored to all-zero before its vertex iteration ends. The flat
  // T x n buffer comes from the caller's arena; the touched lists come
  // from each thread's own sub-arena inside the parallel sections.
  Borrowed<Weight> score_b(ws);
  score_b.get().assign(
      static_cast<std::size_t>(num_threads) * static_cast<std::size_t>(n), 0);

  // prop[v]: the partner v proposes to this round (invalid = sits out).
  Borrowed<VertexId> prop_b(ws);
  prop_b.get().assign(static_cast<std::size_t>(n), kInvalidVertex);
  IdSpan<VertexId, VertexId> prop(std::span<VertexId>(prop_b.get()));

  std::vector<std::uint64_t> proposals_of(
      static_cast<std::size_t>(num_threads), 0);
  std::vector<std::uint64_t> matched_of(static_cast<std::size_t>(num_threads),
                                        0);

  Index rounds = 0;
  int stale = 0;
  std::uint64_t total_proposals = 0;
  while (rounds < kMaxRounds && stale < kStaleRounds) {
    ++rounds;
    const std::uint64_t salt = rng();
    for (int t = 0; t < num_threads; ++t) {
      proposals_of[static_cast<std::size_t>(t)] = 0;
      matched_of[static_cast<std::size_t>(t)] = 0;
    }

    // Phase 1: proposals. Reads match (round-start state), writes prop
    // cells owned by the chunk.
    parallel_chunks(pool, n, [&](int t, Index begin, Index end) {
      IdSpan<VertexId, Weight> score(
          score_b.get().data() +
              static_cast<std::size_t>(t) * static_cast<std::size_t>(n),
          static_cast<std::size_t>(n));
      Workspace* tws = ws != nullptr ? &ws->for_thread(t) : nullptr;
      Borrowed<VertexId> touched_b(tws);
      std::vector<VertexId>& touched = touched_b.get();
      std::uint64_t proposed = 0;

      for (Index vi = begin; vi < end; ++vi) {
        const VertexId v{vi};
        prop[v] = kInvalidVertex;
        if (match[v] != v) continue;  // already matched
        if (h.vertex_degree(v) > cfg.max_matching_degree) continue;
        const PartId fv = h.fixed_part(v);
        const Weight wv = h.vertex_weight(v);

        touched.clear();
        for (const NetId net : h.incident_nets(v)) {
          const Index size = h.net_size(net);
          if (size < 2 || size > cfg.max_scored_net_size) continue;
          const Weight c = h.net_cost(net);
          if (c == 0) continue;
          for (const VertexId u : h.pins(net)) {
            if (u == v) continue;
            if (match[u] != u) continue;
            if (score[u] == 0) touched.push_back(u);
            score[u] += c;
          }
        }

        // Selection: highest inner product among feasible partners; ties
        // prefer the lighter partner (balances coarse weights), then the
        // smaller salted hash, then the smaller id (total order).
        VertexId best = kInvalidVertex;
        Weight best_score = 0;
        Weight best_weight = 0;
        std::uint64_t best_hash = 0;
        for (const VertexId u : touched) {
          const Weight s = score[u];
          score[u] = 0;  // reset for the next vertex
          // A partner above the degree cap could never reciprocate (it
          // sits out phase 1), so proposing to it is wasted.
          if (h.vertex_degree(u) > cfg.max_matching_degree) continue;
          if (!fixed_compatible(fv, h.fixed_part(u))) continue;
          if (max_vertex_weight > 0 &&
              wv + h.vertex_weight(u) > max_vertex_weight)
            continue;
          const Weight wu = h.vertex_weight(u);
          const std::uint64_t hu =
              derive_seed(salt, static_cast<std::uint64_t>(u.v));
          const bool better =
              s > best_score ||
              (s == best_score &&
               (best == kInvalidVertex || wu < best_weight ||
                (wu == best_weight &&
                 (hu < best_hash || (hu == best_hash && u < best)))));
          if (better) {
            best = u;
            best_score = s;
            best_weight = wu;
            best_hash = hu;
          }
        }
        prop[v] = best;
        if (best != kInvalidVertex) ++proposed;
      }
      proposals_of[static_cast<std::size_t>(t)] = proposed;
    });

    // Phase 2: acceptance. A mutual pair (prop[v] == u, prop[u] == v) is
    // committed by the chunk owning the smaller endpoint — the unique
    // writer of both match cells.
    parallel_chunks(pool, n, [&](int t, Index begin, Index end) {
      std::uint64_t made = 0;
      for (Index vi = begin; vi < end; ++vi) {
        const VertexId v{vi};
        const VertexId u = prop[v];
        if (u == kInvalidVertex || v > u) continue;
        if (prop[u] != v) continue;
        match[v] = u;
        match[u] = v;
        ++made;
      }
      matched_of[static_cast<std::size_t>(t)] = made;
    });

    std::uint64_t round_proposals = 0;
    std::uint64_t round_matched = 0;
    for (int t = 0; t < num_threads; ++t) {
      round_proposals += proposals_of[static_cast<std::size_t>(t)];
      round_matched += matched_of[static_cast<std::size_t>(t)];
    }
    total_proposals += round_proposals;
    // No proposals at all is terminal: feasibility does not depend on the
    // salt, so no future round can differ. No *matches* is not — the next
    // salt reshuffles the tie-broken preferences.
    if (round_proposals == 0) break;
    stale = round_matched == 0 ? stale + 1 : 0;
  }

  static obs::CachedCounter rounds_counter("coarsen.ipm_rounds");
  static obs::CachedCounter proposals_counter("coarsen.ipm_proposals");
  rounds_counter += static_cast<std::uint64_t>(rounds);
  proposals_counter += total_proposals;

  // Postcondition: match is an involution and respects fixed compatibility.
#ifndef NDEBUG
  for (const VertexId v : h.vertices()) {
    const VertexId u = match[v];
    HGR_ASSERT(match[u] == v);
    if (u != v)
      HGR_ASSERT(fixed_compatible(h.fixed_part(v), h.fixed_part(u)));
  }
#endif
  return match;
}

}  // namespace hgr
