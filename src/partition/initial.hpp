// Coarse (initial) bisection by randomized greedy hypergraph growing.
//
// Paper §4.2: at the coarsest level each processor runs "a randomized
// greedy hypergraph growing algorithm" from a different seed and the best
// result wins; fixed coarse vertices are pre-assigned to their parts. The
// serial partitioner reproduces this with num_initial_trials restarts.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "hypergraph/hypergraph.hpp"
#include "partition/config.hpp"

namespace hgr {

/// Targets for one bisection step of recursive bisection. Side s is
/// feasible while its weight stays <= max_weight(s).
struct BisectionTargets {
  Weight target0 = 0;  // ideal weight of side 0
  Weight target1 = 0;  // ideal weight of side 1
  double epsilon = 0.05;
  // Hard per-side ceilings (0 = none). Recursive bisection sets these to
  // (parts on the side) x (global per-part cap): the epsilon-derived bound
  // alone compounds against *recomputed* side totals, so a lopsided-but-
  // legal early split could push a final part past the global cap.
  Weight cap0 = 0;
  Weight cap1 = 0;

  Weight target(int side) const { return side == 0 ? target0 : target1; }
  Weight max_weight(int side) const {
    const Weight derived = static_cast<Weight>(
        static_cast<double>(target(side)) * (1.0 + epsilon));
    const Weight cap = side == 0 ? cap0 : cap1;
    return cap > 0 && cap < derived ? cap : derived;
  }
};

/// One greedy-growing bisection attempt. Returns side (0/1) per vertex;
/// fixed vertices (h.fixed_part() in {0,1}) are honored. Vertices start on
/// side 1 and side 0 is grown to its target weight by repeatedly absorbing
/// the highest-gain frontier vertex.
IdVector<VertexId, PartId> greedy_growing_bisection(const Hypergraph& h,
                                                    const BisectionTargets& t,
                                                    Rng& rng);

/// Multi-trial wrapper: runs `trials` attempts (each FM-polished by the
/// caller if desired) and returns the bisection with the best
/// (feasible, cut) score.
IdVector<VertexId, PartId> initial_bisection(const Hypergraph& h,
                                             const BisectionTargets& t,
                                             Index trials, Rng& rng);

}  // namespace hgr
