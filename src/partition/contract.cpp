#include "partition/contract.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "common/assert.hpp"
#include "common/csr_utils.hpp"
#include "common/thread_pool.hpp"
#include "partition/matching_ipm.hpp"

namespace hgr {

namespace {

std::uint64_t hash_pins(std::span<const VertexId> pins) {
  // FNV-1a over the sorted pin list.
  std::uint64_t h = 1469598103934665603ULL;
  for (const VertexId v : pins) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v.v));
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

// Contraction in three phases around the serial dedup core:
//
//   A (parallel over nets)  map + sort + dedup each pin list into the
//                           chunk's thread-local buffer; record per-net
//                           (count, offset, hash).
//   B (serial, net order)   merge identical nets / drop tiny nets with
//                           the same first-occurrence-wins dedup the old
//                           serial kernel used, reading pins out of the
//                           thread buffers. Net order is the original net
//                           order, so the output is bit-identical to the
//                           serial version at every thread count.
//   C (parallel over kept)  prefix-sum the kept counts and copy each kept
//                           pin list into its final CSR slot (disjoint
//                           ranges, frozen sources).
//
// Phase A dominates the serial kernel's runtime (the sort per net), which
// is what makes this split worth its bookkeeping.
CoarseLevel contract(const Hypergraph& h,
                     IdSpan<VertexId, const VertexId> match, Workspace* ws) {
  const Index n = h.num_vertices();
  const Index m = h.num_nets();
  HGR_ASSERT(match.ssize() == n);

  CoarseLevel out;
  out.fine_to_coarse.assign(n, kInvalidVertex);

  // Coarse ids: the smaller endpoint of each pair is the representative.
  VertexId num_coarse{0};
  for (const VertexId v : h.vertices()) {
    const VertexId u = match[v];
    HGR_ASSERT(u.v >= 0 && u.v < n && match[u] == v);
    if (u >= v) out.fine_to_coarse[v] = num_coarse++;
  }
  for (const VertexId v : h.vertices()) {
    const VertexId u = match[v];
    if (u < v) out.fine_to_coarse[v] = out.fine_to_coarse[u];
  }

  // Coarse vertex attributes (keyed by coarse vertex id).
  IdVector<VertexId, Weight> weights(num_coarse.v, 0);
  IdVector<VertexId, Weight> sizes(num_coarse.v, 0);
  IdVector<VertexId, PartId> fixed(num_coarse.v, kNoPart);
  bool any_fixed = false;
  for (const VertexId v : h.vertices()) {
    const VertexId c = out.fine_to_coarse[v];
    weights[c] += h.vertex_weight(v);
    sizes[c] += h.vertex_size(v);
    const PartId fv = h.fixed_part(v);
    if (fv != kNoPart) {
      HGR_ASSERT_MSG(fixed[c] == kNoPart || fixed[c] == fv,
                     "matching merged incompatible fixed vertices");
      fixed[c] = fv;
      any_fixed = true;
    }
  }

  ThreadPool* pool = ws != nullptr ? ws->pool() : nullptr;
  const int num_threads = pool_threads(pool);
  if (ws != nullptr) ws->reserve_threads(num_threads);

  // Phase A: per-thread pin buffers plus per-net (count, offset, hash).
  // The buffers are borrowed from each thread's sub-arena up front, on the
  // caller, so the parallel section itself never touches an arena.
  // One growable pin buffer per thread, not a message:
  std::vector<std::vector<VertexId>> bufs(  // hgr-lint: ragged-ok
      static_cast<std::size_t>(num_threads));
  if (ws != nullptr)
    for (int t = 0; t < num_threads; ++t)
      bufs[static_cast<std::size_t>(t)] = ws->for_thread(t).take<VertexId>();

  Borrowed<Index> net_count_b(ws);   // mapped pins per net (0 = dropped)
  Borrowed<Index> net_off_b(ws);     // offset in the owning thread's buffer
  Borrowed<std::uint64_t> net_hash_b(ws);
  net_count_b.get().assign(static_cast<std::size_t>(m), 0);
  net_off_b.get().assign(static_cast<std::size_t>(m), 0);
  net_hash_b.get().assign(static_cast<std::size_t>(m), 0);
  std::vector<Index>& net_count = net_count_b.get();
  std::vector<Index>& net_off = net_off_b.get();
  std::vector<std::uint64_t>& net_hash = net_hash_b.get();

  parallel_chunks(pool, m, [&](int t, Index begin, Index end) {
    std::vector<VertexId>& buf = bufs[static_cast<std::size_t>(t)];
    buf.clear();
    for (Index ni = begin; ni < end; ++ni) {
      const NetId net{ni};
      const Index start = static_cast<Index>(buf.size());
      for (const VertexId v : h.pins(net))
        buf.push_back(out.fine_to_coarse[v]);
      std::sort(buf.begin() + start, buf.end());
      buf.erase(std::unique(buf.begin() + start, buf.end()), buf.end());
      const Index count = static_cast<Index>(buf.size()) - start;
      if (count < 2) {
        buf.resize(static_cast<std::size_t>(start));
        continue;  // net_count stays 0: dropped
      }
      net_count[static_cast<std::size_t>(ni)] = count;
      net_off[static_cast<std::size_t>(ni)] = start;
      net_hash[static_cast<std::size_t>(ni)] = hash_pins(
          {buf.data() + start, static_cast<std::size_t>(count)});
    }
  });

  // Phase B: serial first-occurrence dedup in net order. Kept nets record
  // where their pins live (owning thread + offset) for the copy phase.
  Borrowed<Index> kept_off_b(ws);
  Borrowed<Index> kept_thread_b(ws);
  std::vector<Index>& kept_off = kept_off_b.get();
  std::vector<Index>& kept_thread = kept_thread_b.get();
  std::vector<Index> coarse_net_counts;
  std::vector<Weight> coarse_net_costs;
  std::unordered_map<std::uint64_t, std::vector<Index>> dedup;
  dedup.reserve(static_cast<std::size_t>(m));

  int cur_thread = 0;
  Index cur_end = ThreadPool::chunk(m, 0, num_threads).second;
  for (Index ni = 0; ni < m; ++ni) {
    while (ni >= cur_end && cur_thread + 1 < num_threads)
      cur_end = ThreadPool::chunk(m, ++cur_thread, num_threads).second;
    const Index count = net_count[static_cast<std::size_t>(ni)];
    if (count == 0) continue;
    const std::vector<VertexId>& src =
        bufs[static_cast<std::size_t>(cur_thread)];
    const VertexId* pins =
        src.data() + net_off[static_cast<std::size_t>(ni)];
    const Weight cost = h.net_cost(NetId{ni});

    auto& bucket = dedup[net_hash[static_cast<std::size_t>(ni)]];
    bool merged = false;
    for (const Index existing : bucket) {
      if (coarse_net_counts[static_cast<std::size_t>(existing)] != count)
        continue;
      const std::vector<VertexId>& esrc =
          bufs[static_cast<std::size_t>(kept_thread[
              static_cast<std::size_t>(existing)])];
      const VertexId* epins =
          esrc.data() + kept_off[static_cast<std::size_t>(existing)];
      if (std::equal(pins, pins + count, epins)) {
        coarse_net_costs[static_cast<std::size_t>(existing)] += cost;
        merged = true;
        break;
      }
    }
    if (merged) continue;

    bucket.push_back(static_cast<Index>(coarse_net_counts.size()));
    kept_off.push_back(net_off[static_cast<std::size_t>(ni)]);
    kept_thread.push_back(cur_thread);
    coarse_net_counts.push_back(count);
    coarse_net_costs.push_back(cost);
  }

  // Phase C: prefix-sum the kept counts and copy pin lists into place.
  const Index num_kept = static_cast<Index>(coarse_net_counts.size());
  std::vector<Index> offsets = counts_to_offsets(std::move(coarse_net_counts));
  std::vector<VertexId> coarse_pins(
      static_cast<std::size_t>(offsets.back()));
  parallel_chunks(pool, num_kept, [&](int /*t*/, Index begin, Index end) {
    for (Index j = begin; j < end; ++j) {
      const std::vector<VertexId>& src =
          bufs[static_cast<std::size_t>(kept_thread[
              static_cast<std::size_t>(j)])];
      const VertexId* pins = src.data() + kept_off[static_cast<std::size_t>(j)];
      const Index count = offsets[static_cast<std::size_t>(j) + 1] -
                          offsets[static_cast<std::size_t>(j)];
      std::copy(pins, pins + count,
                coarse_pins.begin() + offsets[static_cast<std::size_t>(j)]);
    }
  });

  if (ws != nullptr)
    for (int t = 0; t < num_threads; ++t)
      ws->for_thread(t).give(std::move(bufs[static_cast<std::size_t>(t)]));

  // hgr-lint: raw-ok (handing storage to the Hypergraph raw constructor)
  out.coarse = Hypergraph(std::move(offsets), std::move(coarse_pins),
                          std::move(weights.raw()), std::move(sizes.raw()),
                          std::move(coarse_net_costs),
                          any_fixed ? std::move(fixed.raw())
                                    : std::vector<PartId>{});
  return out;
}

}  // namespace hgr
