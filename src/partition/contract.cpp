#include "partition/contract.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/assert.hpp"
#include "common/csr_utils.hpp"
#include "partition/matching_ipm.hpp"

namespace hgr {

namespace {

std::uint64_t hash_pins(std::span<const Index> pins) {
  // FNV-1a over the sorted pin list.
  std::uint64_t h = 1469598103934665603ULL;
  for (const Index v : pins) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

CoarseLevel contract(const Hypergraph& h, std::span<const Index> match,
                     Workspace* ws) {
  const Index n = h.num_vertices();
  HGR_ASSERT(static_cast<Index>(match.size()) == n);

  CoarseLevel out;
  out.fine_to_coarse.assign(static_cast<std::size_t>(n), kInvalidIndex);

  // Coarse ids: the smaller endpoint of each pair is the representative.
  Index num_coarse = 0;
  for (Index v = 0; v < n; ++v) {
    const Index u = match[static_cast<std::size_t>(v)];
    HGR_ASSERT(u >= 0 && u < n && match[static_cast<std::size_t>(u)] == v);
    if (u >= v) out.fine_to_coarse[static_cast<std::size_t>(v)] = num_coarse++;
  }
  for (Index v = 0; v < n; ++v) {
    const Index u = match[static_cast<std::size_t>(v)];
    if (u < v)
      out.fine_to_coarse[static_cast<std::size_t>(v)] =
          out.fine_to_coarse[static_cast<std::size_t>(u)];
  }

  // Coarse vertex attributes.
  std::vector<Weight> weights(static_cast<std::size_t>(num_coarse), 0);
  std::vector<Weight> sizes(static_cast<std::size_t>(num_coarse), 0);
  std::vector<PartId> fixed(static_cast<std::size_t>(num_coarse), kNoPart);
  bool any_fixed = false;
  for (Index v = 0; v < n; ++v) {
    const auto c = static_cast<std::size_t>(
        out.fine_to_coarse[static_cast<std::size_t>(v)]);
    weights[c] += h.vertex_weight(v);
    sizes[c] += h.vertex_size(v);
    const PartId fv = h.fixed_part(v);
    if (fv != kNoPart) {
      HGR_ASSERT_MSG(fixed[c] == kNoPart || fixed[c] == fv,
                     "matching merged incompatible fixed vertices");
      fixed[c] = fv;
      any_fixed = true;
    }
  }

  // Coarse nets: map, dedup within net, drop < 2 pins, merge identical nets.
  // The pin/count/cost arrays are moved into the coarse Hypergraph, so
  // only the true scratch (per-net mapping and the dedup begin index) is
  // pooled through the workspace.
  std::vector<Index> coarse_pins;           // concatenated kept pin lists
  std::vector<Index> coarse_net_counts;     // pins per kept net
  std::vector<Weight> coarse_net_costs;
  Borrowed<Index> net_begin_b(ws);          // kept net -> begin in coarse_pins
  std::vector<Index>& net_begin_of = net_begin_b.get();
  std::unordered_map<std::uint64_t, std::vector<Index>> dedup;
  dedup.reserve(static_cast<std::size_t>(h.num_nets()));

  Borrowed<Index> mapped_b(ws);
  std::vector<Index>& mapped = mapped_b.get();
  for (Index net = 0; net < h.num_nets(); ++net) {
    mapped.clear();
    for (const Index v : h.pins(net))
      mapped.push_back(out.fine_to_coarse[static_cast<std::size_t>(v)]);
    std::sort(mapped.begin(), mapped.end());
    mapped.erase(std::unique(mapped.begin(), mapped.end()), mapped.end());
    if (static_cast<Index>(mapped.size()) < 2) continue;

    const std::uint64_t key = hash_pins(mapped);
    auto& bucket = dedup[key];
    bool merged = false;
    for (const Index existing : bucket) {
      const auto begin = net_begin_of[static_cast<std::size_t>(existing)];
      const auto count = coarse_net_counts[static_cast<std::size_t>(existing)];
      if (count == static_cast<Index>(mapped.size()) &&
          std::equal(mapped.begin(), mapped.end(),
                     coarse_pins.begin() + begin)) {
        coarse_net_costs[static_cast<std::size_t>(existing)] +=
            h.net_cost(net);
        merged = true;
        break;
      }
    }
    if (merged) continue;

    const Index id = static_cast<Index>(coarse_net_counts.size());
    bucket.push_back(id);
    net_begin_of.push_back(static_cast<Index>(coarse_pins.size()));
    coarse_net_counts.push_back(static_cast<Index>(mapped.size()));
    coarse_net_costs.push_back(h.net_cost(net));
    coarse_pins.insert(coarse_pins.end(), mapped.begin(), mapped.end());
  }

  std::vector<Index> offsets = counts_to_offsets(std::move(coarse_net_counts));
  out.coarse = Hypergraph(std::move(offsets), std::move(coarse_pins),
                          std::move(weights), std::move(sizes),
                          std::move(coarse_net_costs),
                          any_fixed ? std::move(fixed)
                                    : std::vector<PartId>{});
  return out;
}

}  // namespace hgr
