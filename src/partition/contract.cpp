#include "partition/contract.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/assert.hpp"
#include "common/csr_utils.hpp"
#include "partition/matching_ipm.hpp"

namespace hgr {

namespace {

std::uint64_t hash_pins(std::span<const VertexId> pins) {
  // FNV-1a over the sorted pin list.
  std::uint64_t h = 1469598103934665603ULL;
  for (const VertexId v : pins) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v.v));
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

CoarseLevel contract(const Hypergraph& h,
                     IdSpan<VertexId, const VertexId> match, Workspace* ws) {
  const Index n = h.num_vertices();
  HGR_ASSERT(match.ssize() == n);

  CoarseLevel out;
  out.fine_to_coarse.assign(n, kInvalidVertex);

  // Coarse ids: the smaller endpoint of each pair is the representative.
  VertexId num_coarse{0};
  for (const VertexId v : h.vertices()) {
    const VertexId u = match[v];
    HGR_ASSERT(u.v >= 0 && u.v < n && match[u] == v);
    if (u >= v) out.fine_to_coarse[v] = num_coarse++;
  }
  for (const VertexId v : h.vertices()) {
    const VertexId u = match[v];
    if (u < v) out.fine_to_coarse[v] = out.fine_to_coarse[u];
  }

  // Coarse vertex attributes (keyed by coarse vertex id).
  IdVector<VertexId, Weight> weights(num_coarse.v, 0);
  IdVector<VertexId, Weight> sizes(num_coarse.v, 0);
  IdVector<VertexId, PartId> fixed(num_coarse.v, kNoPart);
  bool any_fixed = false;
  for (const VertexId v : h.vertices()) {
    const VertexId c = out.fine_to_coarse[v];
    weights[c] += h.vertex_weight(v);
    sizes[c] += h.vertex_size(v);
    const PartId fv = h.fixed_part(v);
    if (fv != kNoPart) {
      HGR_ASSERT_MSG(fixed[c] == kNoPart || fixed[c] == fv,
                     "matching merged incompatible fixed vertices");
      fixed[c] = fv;
      any_fixed = true;
    }
  }

  // Coarse nets: map, dedup within net, drop < 2 pins, merge identical nets.
  // The pin/count/cost arrays are moved into the coarse Hypergraph, so
  // only the true scratch (per-net mapping and the dedup begin index) is
  // pooled through the workspace.
  std::vector<VertexId> coarse_pins;        // concatenated kept pin lists
  std::vector<Index> coarse_net_counts;     // pins per kept net
  std::vector<Weight> coarse_net_costs;
  Borrowed<Index> net_begin_b(ws);          // kept net -> begin in coarse_pins
  std::vector<Index>& net_begin_of = net_begin_b.get();
  std::unordered_map<std::uint64_t, std::vector<Index>> dedup;
  dedup.reserve(static_cast<std::size_t>(h.num_nets()));

  Borrowed<VertexId> mapped_b(ws);
  std::vector<VertexId>& mapped = mapped_b.get();
  for (const NetId net : h.nets()) {
    mapped.clear();
    for (const VertexId v : h.pins(net)) mapped.push_back(out.fine_to_coarse[v]);
    std::sort(mapped.begin(), mapped.end());
    mapped.erase(std::unique(mapped.begin(), mapped.end()), mapped.end());
    if (static_cast<Index>(mapped.size()) < 2) continue;

    const std::uint64_t key = hash_pins(mapped);
    auto& bucket = dedup[key];
    bool merged = false;
    for (const Index existing : bucket) {
      const auto begin = net_begin_of[static_cast<std::size_t>(existing)];
      const auto count = coarse_net_counts[static_cast<std::size_t>(existing)];
      if (count == static_cast<Index>(mapped.size()) &&
          std::equal(mapped.begin(), mapped.end(),
                     coarse_pins.begin() + begin)) {
        coarse_net_costs[static_cast<std::size_t>(existing)] +=
            h.net_cost(net);
        merged = true;
        break;
      }
    }
    if (merged) continue;

    const Index id = static_cast<Index>(coarse_net_counts.size());
    bucket.push_back(id);
    net_begin_of.push_back(static_cast<Index>(coarse_pins.size()));
    coarse_net_counts.push_back(static_cast<Index>(mapped.size()));
    coarse_net_costs.push_back(h.net_cost(net));
    coarse_pins.insert(coarse_pins.end(), mapped.begin(), mapped.end());
  }

  std::vector<Index> offsets = counts_to_offsets(std::move(coarse_net_counts));
  // hgr-lint: raw-ok (handing storage to the Hypergraph raw constructor)
  out.coarse = Hypergraph(std::move(offsets), std::move(coarse_pins),
                          std::move(weights.raw()), std::move(sizes.raw()),
                          std::move(coarse_net_costs),
                          any_fixed ? std::move(fixed.raw())
                                    : std::vector<PartId>{});
  return out;
}

}  // namespace hgr
