// Public entry point of the serial multilevel hypergraph partitioner.
//
// Supports partitioning with fixed vertices (the capability the paper's
// repartitioning model depends on), recursive bisection (Zoltan's path) or
// direct k-way, optional k-way refinement post-pass, and optional V-cycles.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/workspace.hpp"
#include "hypergraph/hypergraph.hpp"
#include "metrics/partition.hpp"
#include "partition/config.hpp"

namespace hgr {

/// Bump the obs coarsening counters for one accepted level: level count,
/// fine/coarse vertex totals (contraction ratio) and matched vertices
/// (match fraction). Shared by the serial, bisection, and parallel
/// coarsening loops.
void record_coarsen_level(Index fine_vertices, Index coarse_vertices,
                          IdSpan<VertexId, const VertexId> match);

/// Compute a k-way partition of h honoring h.fixed_part() constraints and
/// the Eq. 1 balance tolerance cfg.epsilon (best effort when fixed vertices
/// make strict balance unattainable). Deterministic for fixed
/// (h, cfg) including cfg.seed.
Partition partition_hypergraph(const Hypergraph& h,
                               const PartitionConfig& cfg);

/// Direct k-way multilevel partitioning (extension / ablation path):
/// IPM coarsening, greedy k-way coarse assignment, k-way refinement on
/// every level. `ws` (optional) pools kernel scratch across levels.
Partition direct_kway_partition(const Hypergraph& h,
                                const PartitionConfig& cfg,
                                Workspace* ws = nullptr);

/// One refinement V-cycle: re-coarsen with matches restricted to vertices
/// in the same part (so the partition projects exactly), refine the coarse
/// partition, project back and refine each level. Improves p in place;
/// never worsens the cut.
void refinement_vcycle(const Hypergraph& h, Partition& p,
                       const PartitionConfig& cfg, Rng& rng,
                       Workspace* ws = nullptr);

}  // namespace hgr
