#include "partition/gain_cache.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "metrics/cut.hpp"
#include "obs/trace.hpp"

namespace hgr {

GainCache::GainCache(const Hypergraph& h, Index k,
                     IdSpan<VertexId, const PartId> parts, Workspace* ws)
    : h_(h),
      k_(k),
      words_per_row_((static_cast<std::size_t>(k) + 63) / 64),
      counts_(ws),
      conn_(ws),
      part_(ws),
      part_w_(ws),
      leave_gain_(ws),
      scratch_(ws) {
  HGR_ASSERT(k >= 1);
  HGR_ASSERT(parts.ssize() == h.num_vertices());
  const auto n = static_cast<std::size_t>(h.num_vertices());
  const auto nn = static_cast<std::size_t>(h.num_nets());
  counts_->assign(nn * static_cast<std::size_t>(k), 0);
  conn_->assign(nn * words_per_row_, 0);
  part_->assign(parts.begin(), parts.end());
  part_w_->assign(static_cast<std::size_t>(k), 0);
  leave_gain_->assign(n, 0);
  scratch_->assign(words_per_row_, 0);

  for (const VertexId v : h.vertices()) {
    const PartId q = part_of(v);
    HGR_ASSERT_MSG(q.v >= 0 && q.v < k, "gain cache built on unassigned vertex");
    part_w_[static_cast<std::size_t>(q.v)] += h.vertex_weight(v);
  }
  cut_ = 0;
  for (const NetId net : h.nets()) {
    const Weight c = h.net_cost(net);
    Index lambda = 0;
    for (const VertexId u : h.pins(net)) {
      const PartId q = part_of(u);
      ++counts_[row(net) + static_cast<std::size_t>(q.v)];
      std::uint64_t& w = conn_[conn_row(net) + word(q)];
      if ((w & bit(q)) == 0) {
        w |= bit(q);
        ++lambda;
      }
    }
    if (lambda > 1) cut_ += c * (lambda - 1);
    if (c != 0)
      for (const VertexId u : h.pins(net))
        if (counts_[row(net) + static_cast<std::size_t>(part_of(u).v)] == 1)
          leave_gain_[static_cast<std::size_t>(u.v)] += c;
  }
  static obs::CachedCounter builds("gain_cache.builds");
  builds += 1;
}

void GainCache::candidate_parts_into(std::vector<PartId>& out, VertexId v) {
  candidate_parts_into(out, v, scratch_.get());
}

void GainCache::candidate_parts_into(std::vector<PartId>& out, VertexId v,
                                     std::vector<std::uint64_t>& acc) const {
  out.clear();
  const PartId from = part_of(v);
  acc.assign(words_per_row_, 0);
  for (const NetId net : h_.incident_nets(v))
    for (std::size_t w = 0; w < words_per_row_; ++w)
      acc[w] |= conn_[conn_row(net) + w];
  // Clear the home part, then emit set bits in ascending order.
  acc[word(from)] &= ~bit(from);
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    std::uint64_t bits = acc[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      out.push_back(PartId{static_cast<Index>(w * 64) + b});
    }
  }
}

void GainCache::note_move() {
  static obs::CachedCounter moves("gain_cache.moves");
  moves += 1;
}

void GainCache::validate(check::CheckLevel level) const {
  if (!check::paranoid(level)) return;
  static obs::CachedCounter validations("gain_cache.validations");
  validations += 1;

  Partition p(k_, h_.num_vertices());
  // hgr-lint: raw-ok (bulk copy of the internal label array)
  p.assignment.raw().assign(part_->begin(), part_->end());
  HGR_ASSERT_MSG(cut_ == connectivity_cut(h_, p),
                 "gain cache cut diverged from from-scratch recomputation");

  IdVector<PartId, Weight> want_w(k_, 0);
  for (const VertexId v : p.vertices())
    want_w[p[v]] += h_.vertex_weight(v);
  for (const PartId q : p.parts())
    HGR_ASSERT_MSG(part_weight(q) == want_w[q],
                   "gain cache part weight diverged");

  IdVector<PartId, Index> want_counts(k_);
  IdVector<VertexId, Weight> want_leave(h_.num_vertices(), 0);
  for (const NetId net : h_.nets()) {
    std::fill(want_counts.begin(), want_counts.end(), 0);
    for (const VertexId u : h_.pins(net)) ++want_counts[p[u]];
    const Weight c = h_.net_cost(net);
    for (const PartId q : p.parts()) {
      HGR_ASSERT_MSG(pin_count(net, q) == want_counts[q],
                     "gain cache pin count diverged");
      HGR_ASSERT_MSG(net_touches(net, q) == (want_counts[q] > 0),
                     "gain cache connectivity bit diverged");
    }
    if (c != 0)
      for (const VertexId u : h_.pins(net))
        if (want_counts[p[u]] == 1) want_leave[u] += c;
  }
  for (const VertexId v : h_.vertices())
    HGR_ASSERT_MSG(leave_gain(v) == want_leave[v],
                   "gain cache leave gain diverged");
}

}  // namespace hgr
