#include "partition/gain_cache.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "metrics/cut.hpp"
#include "obs/trace.hpp"

namespace hgr {

GainCache::GainCache(const Hypergraph& h, PartId k,
                     std::span<const PartId> parts, Workspace* ws)
    : h_(h),
      k_(k),
      words_per_row_((static_cast<std::size_t>(k) + 63) / 64),
      counts_(ws),
      conn_(ws),
      part_(ws),
      part_w_(ws),
      leave_gain_(ws),
      scratch_(ws) {
  HGR_ASSERT(k >= 1);
  HGR_ASSERT(static_cast<Index>(parts.size()) == h.num_vertices());
  const auto n = static_cast<std::size_t>(h.num_vertices());
  const auto nn = static_cast<std::size_t>(h.num_nets());
  counts_->assign(nn * static_cast<std::size_t>(k), 0);
  conn_->assign(nn * words_per_row_, 0);
  part_->assign(parts.begin(), parts.end());
  part_w_->assign(static_cast<std::size_t>(k), 0);
  leave_gain_->assign(n, 0);
  scratch_->assign(words_per_row_, 0);

  for (Index v = 0; v < h.num_vertices(); ++v) {
    const PartId q = part_of(v);
    HGR_ASSERT_MSG(q >= 0 && q < k, "gain cache built on unassigned vertex");
    part_w_[static_cast<std::size_t>(q)] += h.vertex_weight(v);
  }
  cut_ = 0;
  for (Index net = 0; net < h.num_nets(); ++net) {
    const Weight c = h.net_cost(net);
    PartId lambda = 0;
    for (const Index u : h.pins(net)) {
      const PartId q = part_of(u);
      ++counts_[row(net) + static_cast<std::size_t>(q)];
      std::uint64_t& w = conn_[conn_row(net) + word(q)];
      if ((w & bit(q)) == 0) {
        w |= bit(q);
        ++lambda;
      }
    }
    if (lambda > 1) cut_ += c * (lambda - 1);
    if (c != 0)
      for (const Index u : h.pins(net))
        if (counts_[row(net) + static_cast<std::size_t>(part_of(u))] == 1)
          leave_gain_[static_cast<std::size_t>(u)] += c;
  }
  static obs::CachedCounter builds("gain_cache.builds");
  builds += 1;
}

void GainCache::candidate_parts_into(std::vector<PartId>& out, Index v) {
  out.clear();
  const PartId from = part_of(v);
  std::vector<std::uint64_t>& acc = scratch_.get();
  acc.assign(words_per_row_, 0);
  for (const Index net : h_.incident_nets(v))
    for (std::size_t w = 0; w < words_per_row_; ++w)
      acc[w] |= conn_[conn_row(net) + w];
  // Clear the home part, then emit set bits in ascending order.
  acc[word(from)] &= ~bit(from);
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    std::uint64_t bits = acc[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      out.push_back(static_cast<PartId>(w * 64 + static_cast<std::size_t>(b)));
    }
  }
}

void GainCache::note_move() {
  static obs::CachedCounter moves("gain_cache.moves");
  moves += 1;
}

void GainCache::validate(check::CheckLevel level) const {
  if (!check::paranoid(level)) return;
  static obs::CachedCounter validations("gain_cache.validations");
  validations += 1;

  Partition p(k_, h_.num_vertices());
  p.assignment.assign(part_->begin(), part_->end());
  HGR_ASSERT_MSG(cut_ == connectivity_cut(h_, p),
                 "gain cache cut diverged from from-scratch recomputation");

  std::vector<Weight> want_w(static_cast<std::size_t>(k_), 0);
  for (Index v = 0; v < h_.num_vertices(); ++v)
    want_w[static_cast<std::size_t>(p[v])] += h_.vertex_weight(v);
  for (PartId q = 0; q < k_; ++q)
    HGR_ASSERT_MSG(part_w_[static_cast<std::size_t>(q)] ==
                       want_w[static_cast<std::size_t>(q)],
                   "gain cache part weight diverged");

  std::vector<Index> want_counts(static_cast<std::size_t>(k_));
  std::vector<Weight> want_leave(
      static_cast<std::size_t>(h_.num_vertices()), 0);
  for (Index net = 0; net < h_.num_nets(); ++net) {
    std::fill(want_counts.begin(), want_counts.end(), 0);
    for (const Index u : h_.pins(net))
      ++want_counts[static_cast<std::size_t>(p[u])];
    const Weight c = h_.net_cost(net);
    for (PartId q = 0; q < k_; ++q) {
      HGR_ASSERT_MSG(pin_count(net, q) ==
                         want_counts[static_cast<std::size_t>(q)],
                     "gain cache pin count diverged");
      HGR_ASSERT_MSG(net_touches(net, q) ==
                         (want_counts[static_cast<std::size_t>(q)] > 0),
                     "gain cache connectivity bit diverged");
    }
    if (c != 0)
      for (const Index u : h_.pins(net))
        if (want_counts[static_cast<std::size_t>(p[u])] == 1)
          want_leave[static_cast<std::size_t>(u)] += c;
  }
  for (Index v = 0; v < h_.num_vertices(); ++v)
    HGR_ASSERT_MSG(leave_gain(v) == want_leave[static_cast<std::size_t>(v)],
                   "gain cache leave gain diverged");
}

}  // namespace hgr
