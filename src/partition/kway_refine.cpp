#include "partition/kway_refine.hpp"

#include <cstdio>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "obs/trace.hpp"
#include "partition/gain_cache.hpp"

namespace hgr {

// Each pass runs in two phases (propose, then apply) at every thread
// count, so threads=1 and threads=8 walk byte-identical state:
//
//   Propose (parallel over vertices): against the frozen pass-start cache
//   — the const candidate_parts_into overload plus per-thread scratch —
//   mark every vertex that has an acceptable move. Read-only on shared
//   state, one flag write per vertex into the chunk the thread owns.
//
//   Apply (serial, permutation order): re-evaluate each marked vertex
//   against the *live* cache with the exact same evaluation routine, and
//   apply the move if it is still acceptable. The permutation is drawn
//   serially from `rng` per pass, so the stream is consumed identically
//   at every thread count.
//
// The proposal phase is a filter, not a commitment: moves that sour once
// earlier moves land are re-checked and dropped, and vertices that only
// become attractive mid-pass are picked up by the next pass (the pass
// loop already iterates until a sweep applies nothing).
KwayRefineResult kway_refine(const Hypergraph& h, Partition& p,
                             const PartitionConfig& cfg, Rng& rng,
                             Index max_passes, Workspace* ws) {
  KwayRefineResult result;
  result.initial_cut = connectivity_cut(h, p);
  result.final_cut = result.initial_cut;
  const Index k = p.k;
  const Index n = h.num_vertices();
  if (k <= 1 || n == 0) return result;
  // Memory guard: the dense table must stay sane (~1 GiB of Index). The
  // skip is counted and noted — never silent (docs/OBSERVABILITY.md).
  if (static_cast<std::size_t>(h.num_nets()) * static_cast<std::size_t>(k) >
      (std::size_t{1} << 28)) {
    static obs::CachedCounter skipped("kway.skipped_table_too_large");
    skipped += 1;
    std::fprintf(stderr,
                 "kway_refine: pins-per-part table too large "
                 "(num_nets=%lld x k=%d), returning unrefined partition\n",
                 static_cast<long long>(h.num_nets()), k);
    return result;
  }

  GainCache cache(h, p, ws);
  const Weight max_part_weight =
      hgr::max_part_weight(h.total_vertex_weight(), k, cfg.epsilon);

  ThreadPool* pool = ws != nullptr ? ws->pool() : nullptr;
  const int num_threads = pool_threads(pool);
  if (ws != nullptr) ws->reserve_threads(num_threads);

  // Best move for v under the cache's *current* state: highest gain among
  // acceptable moves (positive gain, or zero gain strictly improving
  // balance), then lightest destination, then lowest part id. Shared by
  // both phases so the proposal filter and the serial apply agree on what
  // "acceptable" means. gain_to must be k zeros on entry; it is restored
  // on exit.
  const auto best_move = [&](VertexId v, std::vector<PartId>& candidates,
                             std::vector<Weight>& gain_to,
                             std::vector<std::uint64_t>& conn_scratch)
      -> std::pair<PartId, Weight> {
    // Candidate parts come straight off the connectivity bitsets: the
    // distinct parts (other than the home part) the vertex's nets touch,
    // in ascending part order — no pin-list traversal.
    cache.candidate_parts_into(candidates, v, conn_scratch);
    if (candidates.empty()) return {kNoPart, 0};
    const Weight leave_gain = cache.leave_gain(v);
    for (const NetId net : h.incident_nets(v)) {
      const Weight c = h.net_cost(net);
      if (c == 0) continue;
      for (const PartId q : candidates)
        if (!cache.net_touches(net, q))
          gain_to[static_cast<std::size_t>(q.v)] -= c;
    }
    // gain(from -> q) = leave_gain + gain_to[q] (gain_to holds the
    // entering penalty, <= 0).
    const PartId from = cache.part_of(v);
    PartId best = kNoPart;
    Weight best_gain = 0;
    Weight best_dest_w = 0;
    const Weight wv = h.vertex_weight(v);
    for (const PartId q : candidates) {
      const Weight g = leave_gain + gain_to[static_cast<std::size_t>(q.v)];
      gain_to[static_cast<std::size_t>(q.v)] = 0;  // reset accumulator
      const Weight dest_w = cache.part_weight(q);
      if (dest_w + wv > max_part_weight) continue;
      const bool improves_balance = cache.part_weight(from) > dest_w + wv;
      if (g < 0 || (g == 0 && !improves_balance)) continue;
      if (best == kNoPart || g > best_gain ||
          (g == best_gain && dest_w < best_dest_w)) {
        best = q;
        best_gain = g;
        best_dest_w = dest_w;
      }
    }
    return {best, best_gain};
  };

  Borrowed<std::uint8_t> proposed_b(ws);
  std::vector<std::uint8_t>& proposed = proposed_b.get();
  std::vector<std::uint64_t> proposals_of(
      static_cast<std::size_t>(num_threads), 0);
  std::uint64_t total_proposals = 0;

  // Caller-side scratch for the serial apply phase.
  Borrowed<Weight> gain_to_b(ws);
  std::vector<Weight>& gain_to = gain_to_b.get();
  gain_to.assign(static_cast<std::size_t>(k), 0);
  Borrowed<PartId> candidates_b(ws);
  std::vector<PartId>& candidates = candidates_b.get();
  Borrowed<std::uint64_t> conn_scratch_b(ws);
  std::vector<std::uint64_t>& conn_scratch = conn_scratch_b.get();

  Borrowed<Index> order_b(ws);
  std::vector<Index>& order = order_b.get();
  // Accepted-move gain distribution (k-way moves are never negative gain,
  // so this histogram's p50 vs max shows how front-loaded the pass is).
  // Batched locally, folded into the registry once per pass.
  static obs::CachedHistogram gain_hist("kway.move_gain");
  obs::HistogramSnapshot gain_batch;

  for (Index pass = 0; pass < max_passes; ++pass) {
    ++result.passes;
    random_permutation_into(order, n, rng);
    proposed.assign(static_cast<std::size_t>(n), 0);
    for (int t = 0; t < num_threads; ++t)
      proposals_of[static_cast<std::size_t>(t)] = 0;

    // Propose: read-only against the pass-start cache.
    parallel_chunks(pool, n, [&](int t, Index begin, Index end) {
      Workspace* tws = ws != nullptr ? &ws->for_thread(t) : nullptr;
      Borrowed<PartId> t_candidates_b(tws);
      Borrowed<Weight> t_gain_to_b(tws);
      Borrowed<std::uint64_t> t_conn_b(tws);
      t_gain_to_b.get().assign(static_cast<std::size_t>(k), 0);
      std::uint64_t found = 0;
      for (Index vi = begin; vi < end; ++vi) {
        const VertexId v{vi};
        if (h.fixed_part(v) != kNoPart) continue;
        if (best_move(v, t_candidates_b.get(), t_gain_to_b.get(),
                      t_conn_b.get())
                .first == kNoPart)
          continue;
        proposed[static_cast<std::size_t>(vi)] = 1;
        ++found;
      }
      proposals_of[static_cast<std::size_t>(t)] = found;
    });
    for (int t = 0; t < num_threads; ++t)
      total_proposals += proposals_of[static_cast<std::size_t>(t)];

    // Apply: serial, permutation order, against the live cache.
    Index moves_this_pass = 0;
    for (const Index vi : order) {
      if (proposed[static_cast<std::size_t>(vi)] == 0) continue;
      const VertexId v{vi};
      const auto [best, best_gain] =
          best_move(v, candidates, gain_to, conn_scratch);
      if (best == kNoPart) continue;  // soured since the proposal snapshot
      gain_batch.record(best_gain);
      cache.apply_move(v, best);
      p[v] = best;
      ++moves_this_pass;
    }
    if (gain_batch.count > 0) {
      gain_hist.get().merge(gain_batch);
      gain_batch = obs::HistogramSnapshot{};
    }
    result.moves += moves_this_pass;
    if (moves_this_pass == 0) break;
  }
  static obs::CachedCounter passes_counter("kway.passes");
  static obs::CachedCounter moves_counter("kway.moves");
  static obs::CachedCounter proposals_counter("kway.proposals");
  passes_counter += static_cast<std::uint64_t>(result.passes);
  moves_counter += static_cast<std::uint64_t>(result.moves);
  proposals_counter += total_proposals;
  result.final_cut = cache.cut();
  cache.validate(cfg.check_level);
  HGR_DASSERT(result.final_cut == connectivity_cut(h, p));
  return result;
}

}  // namespace hgr
