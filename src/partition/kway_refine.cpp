#include "partition/kway_refine.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "obs/trace.hpp"

namespace hgr {

namespace {

/// Dense pins-per-part table: row per net, k columns. The workloads this
/// library targets keep num_nets * k comfortably in memory; the caller
/// guards against pathological sizes.
class PinTable {
 public:
  PinTable(const Hypergraph& h, const Partition& p, Workspace* ws)
      : k_(p.k), counts_(ws) {
    counts_->assign(static_cast<std::size_t>(h.num_nets()) *
                        static_cast<std::size_t>(p.k),
                    0);
    for (Index net = 0; net < h.num_nets(); ++net)
      for (const Index v : h.pins(net)) ++at(net, p[v]);
  }

  Index& at(Index net, PartId part) {
    return counts_[static_cast<std::size_t>(net) *
                       static_cast<std::size_t>(k_) +
                   static_cast<std::size_t>(part)];
  }
  Index count(Index net, PartId part) const {
    return counts_[static_cast<std::size_t>(net) *
                       static_cast<std::size_t>(k_) +
                   static_cast<std::size_t>(part)];
  }

 private:
  PartId k_;
  Borrowed<Index> counts_;
};

}  // namespace

KwayRefineResult kway_refine(const Hypergraph& h, Partition& p,
                             const PartitionConfig& cfg, Rng& rng,
                             Index max_passes, Workspace* ws) {
  KwayRefineResult result;
  result.initial_cut = connectivity_cut(h, p);
  result.final_cut = result.initial_cut;
  const PartId k = p.k;
  if (k <= 1 || h.num_vertices() == 0) return result;
  // Memory guard: the dense table must stay sane (~1 GiB of Index).
  if (static_cast<std::size_t>(h.num_nets()) * static_cast<std::size_t>(k) >
      (std::size_t{1} << 28))
    return result;

  PinTable pins(h, p, ws);
  Borrowed<Weight> part_w_b(ws);
  std::vector<Weight>& part_w = part_w_b.get();
  part_weights_into(part_w, h.vertex_weights(), p);
  const Weight max_part_weight =
      hgr::max_part_weight(h.total_vertex_weight(), k, cfg.epsilon);

  Borrowed<Weight> gain_to_b(ws);
  std::vector<Weight>& gain_to = gain_to_b.get();
  gain_to.assign(static_cast<std::size_t>(k), 0);
  Borrowed<PartId> candidates_b(ws);
  std::vector<PartId>& candidates = candidates_b.get();

  Borrowed<Index> order_b(ws);
  std::vector<Index>& order = order_b.get();
  Weight cut = result.initial_cut;
  for (Index pass = 0; pass < max_passes; ++pass) {
    ++result.passes;
    Index moves_this_pass = 0;
    random_permutation_into(order, h.num_vertices(), rng);
    for (const Index v : order) {
      if (h.fixed_part(v) != kNoPart) continue;
      const PartId from = p[v];

      // Collect candidate parts among this vertex's nets and the gain of
      // leaving `from` / entering each candidate.
      candidates.clear();
      Weight leave_gain = 0;
      for (const Index net : h.incident_nets(v)) {
        const Weight c = h.net_cost(net);
        if (pins.count(net, from) == 1) leave_gain += c;
        for (const Index u : h.pins(net)) {
          const PartId q = p[u];
          if (q == from) continue;
          if (gain_to[static_cast<std::size_t>(q)] == 0 &&
              std::find(candidates.begin(), candidates.end(), q) ==
                  candidates.end())
            candidates.push_back(q);
        }
      }
      if (candidates.empty()) continue;
      for (const Index net : h.incident_nets(v)) {
        const Weight c = h.net_cost(net);
        for (const PartId q : candidates)
          if (pins.count(net, q) == 0)
            gain_to[static_cast<std::size_t>(q)] -= c;
      }
      // gain(from -> q) = leave_gain + gain_to[q] (gain_to holds the
      // entering penalty, <= 0).
      PartId best = kNoPart;
      Weight best_gain = 0;
      const Weight wv = h.vertex_weight(v);
      for (const PartId q : candidates) {
        const Weight g = leave_gain + gain_to[static_cast<std::size_t>(q)];
        gain_to[static_cast<std::size_t>(q)] = 0;  // reset accumulator
        if (part_w[static_cast<std::size_t>(q)] + wv > max_part_weight)
          continue;
        const bool improves_balance =
            part_w[static_cast<std::size_t>(from)] >
            part_w[static_cast<std::size_t>(q)] + wv;
        if (g > best_gain || (g == best_gain && g >= 0 && improves_balance &&
                              best == kNoPart)) {
          // Accept strictly better gain, or zero-gain balance improvement.
          if (g > 0 || improves_balance) {
            best = q;
            best_gain = g;
          }
        }
      }
      if (best == kNoPart) continue;

      for (const Index net : h.incident_nets(v)) {
        --pins.at(net, from);
        ++pins.at(net, best);
      }
      part_w[static_cast<std::size_t>(from)] -= wv;
      part_w[static_cast<std::size_t>(best)] += wv;
      p[v] = best;
      cut -= best_gain;
      ++moves_this_pass;
    }
    result.moves += moves_this_pass;
    if (moves_this_pass == 0) break;
  }
  static obs::CachedCounter passes_counter("kway.passes");
  static obs::CachedCounter moves_counter("kway.moves");
  passes_counter += static_cast<std::uint64_t>(result.passes);
  moves_counter += static_cast<std::uint64_t>(result.moves);
  result.final_cut = cut;
  HGR_DASSERT(result.final_cut == connectivity_cut(h, p));
  return result;
}

}  // namespace hgr
