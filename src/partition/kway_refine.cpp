#include "partition/kway_refine.hpp"

#include <cstdio>
#include <vector>

#include "common/assert.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "obs/trace.hpp"
#include "partition/gain_cache.hpp"

namespace hgr {

KwayRefineResult kway_refine(const Hypergraph& h, Partition& p,
                             const PartitionConfig& cfg, Rng& rng,
                             Index max_passes, Workspace* ws) {
  KwayRefineResult result;
  result.initial_cut = connectivity_cut(h, p);
  result.final_cut = result.initial_cut;
  const Index k = p.k;
  if (k <= 1 || h.num_vertices() == 0) return result;
  // Memory guard: the dense table must stay sane (~1 GiB of Index). The
  // skip is counted and noted — never silent (docs/OBSERVABILITY.md).
  if (static_cast<std::size_t>(h.num_nets()) * static_cast<std::size_t>(k) >
      (std::size_t{1} << 28)) {
    static obs::CachedCounter skipped("kway.skipped_table_too_large");
    skipped += 1;
    std::fprintf(stderr,
                 "kway_refine: pins-per-part table too large "
                 "(num_nets=%lld x k=%d), returning unrefined partition\n",
                 static_cast<long long>(h.num_nets()), k);
    return result;
  }

  GainCache cache(h, p, ws);
  const Weight max_part_weight =
      hgr::max_part_weight(h.total_vertex_weight(), k, cfg.epsilon);

  Borrowed<Weight> gain_to_b(ws);
  std::vector<Weight>& gain_to = gain_to_b.get();
  gain_to.assign(static_cast<std::size_t>(k), 0);
  Borrowed<PartId> candidates_b(ws);
  std::vector<PartId>& candidates = candidates_b.get();

  Borrowed<Index> order_b(ws);
  std::vector<Index>& order = order_b.get();
  for (Index pass = 0; pass < max_passes; ++pass) {
    ++result.passes;
    Index moves_this_pass = 0;
    random_permutation_into(order, h.num_vertices(), rng);
    for (const Index vi : order) {
      const VertexId v{vi};
      if (h.fixed_part(v) != kNoPart) continue;
      const PartId from = p[v];

      // Candidate parts come straight off the connectivity bitsets: the
      // distinct parts (other than `from`) the vertex's nets touch, in
      // ascending part order — no pin-list traversal.
      cache.candidate_parts_into(candidates, v);
      if (candidates.empty()) continue;
      const Weight leave_gain = cache.leave_gain(v);
      for (const NetId net : h.incident_nets(v)) {
        const Weight c = h.net_cost(net);
        if (c == 0) continue;
        for (const PartId q : candidates)
          if (!cache.net_touches(net, q))
            gain_to[static_cast<std::size_t>(q.v)] -= c;
      }
      // gain(from -> q) = leave_gain + gain_to[q] (gain_to holds the
      // entering penalty, <= 0). A move is acceptable on positive gain, or
      // on zero gain when it strictly improves balance. Among acceptable
      // moves: highest gain, then lightest destination, then lowest part
      // id — deterministic and independent of candidate order.
      PartId best = kNoPart;
      Weight best_gain = 0;
      Weight best_dest_w = 0;
      const Weight wv = h.vertex_weight(v);
      for (const PartId q : candidates) {
        const Weight g = leave_gain + gain_to[static_cast<std::size_t>(q.v)];
        gain_to[static_cast<std::size_t>(q.v)] = 0;  // reset accumulator
        const Weight dest_w = cache.part_weight(q);
        if (dest_w + wv > max_part_weight) continue;
        const bool improves_balance =
            cache.part_weight(from) > dest_w + wv;
        if (g < 0 || (g == 0 && !improves_balance)) continue;
        if (best == kNoPart || g > best_gain ||
            (g == best_gain && dest_w < best_dest_w)) {
          best = q;
          best_gain = g;
          best_dest_w = dest_w;
        }
      }
      if (best == kNoPart) continue;

      // Accepted-move gain distribution (k-way moves are never negative
      // gain, so this histogram's p50 vs max shows how front-loaded the
      // pass is).
      static obs::CachedHistogram gain_hist("kway.move_gain");
      gain_hist.record(best_gain);
      cache.apply_move(v, best);
      p[v] = best;
      ++moves_this_pass;
    }
    result.moves += moves_this_pass;
    if (moves_this_pass == 0) break;
  }
  static obs::CachedCounter passes_counter("kway.passes");
  static obs::CachedCounter moves_counter("kway.moves");
  passes_counter += static_cast<std::uint64_t>(result.passes);
  moves_counter += static_cast<std::uint64_t>(result.moves);
  result.final_cut = cache.cut();
  cache.validate(cfg.check_level);
  HGR_DASSERT(result.final_cut == connectivity_cut(h, p));
  return result;
}

}  // namespace hgr
