// Direct k-way greedy refinement of the connectivity-1 objective.
//
// Greedy boundary sweeps in the style of k-way FM without rollback: each
// pass proposes moves in parallel against the frozen pass-start gain
// cache, then applies the survivors serially in random order (best
// positive-gain or balance-improving zero-gain move among the parts the
// vertex's nets touch). Respects fixed vertices and Eq. 1 balance; the
// result is bit-identical at every thread count (docs/PARALLELISM.md).
// Used as an optional post-pass after recursive bisection, inside
// V-cycles, and as the refinement stage of the direct k-way method.
#pragma once

#include "common/rng.hpp"
#include "common/workspace.hpp"
#include "hypergraph/hypergraph.hpp"
#include "metrics/partition.hpp"
#include "partition/config.hpp"

namespace hgr {

struct KwayRefineResult {
  Weight initial_cut = 0;
  Weight final_cut = 0;
  Index moves = 0;
  Index passes = 0;
};

/// Refine p in place. max_passes caps the number of sweeps; a sweep that
/// applies no move ends refinement early. `ws` (optional) pools the dense
/// pin table and per-pass scratch across levels and supplies the
/// ThreadPool the proposal phase runs on (serial when absent).
KwayRefineResult kway_refine(const Hypergraph& h, Partition& p,
                             const PartitionConfig& cfg, Rng& rng,
                             Index max_passes, Workspace* ws = nullptr);

}  // namespace hgr
