// GainCache: the incremental cut/gain structure behind every move-based
// stage (k-way refinement, FM bisection, and the O(delta) epoch fast path).
//
// It maintains, under a stream of apply_move(v, to) calls:
//   - pins(net, part): the dense pins-per-part table,
//   - a per-net connectivity bitset (which parts each net touches),
//   - the connectivity-1 cut (paper Eq. 2), updated in O(deg(v)) per move,
//   - per-part total vertex weights,
//   - leave_gain(v): sum of c_j over nets where v is the sole pin of its
//     part — the "gain of leaving" half of the k-way FM gain. The entering
//     penalty is a bitset probe per candidate part, so
//     move_gain(v, q) = leave_gain(v) - sum_{nets j of v: pins(j,q)==0} c_j
//     costs O(deg(v)) instead of O(sum |net|).
//
// Refiners that keep their own per-vertex gain tables (FM's priority
// queues) subscribe to the four classic delta-gain events via the listener
// passed to apply_move; the cache fires them only for nets with nonzero
// cost, exactly mirroring the hand-rolled FM update rules it replaced.
//
// validate() cross-checks every maintained quantity against a from-scratch
// recomputation (connectivity_cut + rebuilt tables) at CheckLevel::kParanoid.
#pragma once

#include <cstdint>
#include <span>

#include "check/check_level.hpp"
#include "common/assert.hpp"
#include "common/types.hpp"
#include "common/workspace.hpp"
#include "hypergraph/hypergraph.hpp"
#include "metrics/partition.hpp"

namespace hgr {

/// No-op listener for callers that do not track per-vertex gain deltas.
struct NullMoveListener {
  void net_gained_part(Index, PartId, Weight) {}
  void sole_pin_joined(Index, Index, PartId, Weight) {}
  void net_lost_part(Index, PartId, Weight) {}
  void sole_pin_remains(Index, Index, PartId, Weight) {}
};

class GainCache {
 public:
  /// Builds the table for `parts` (one entry in [0, k) per vertex).
  /// O(pins + num_nets * k / 64). The cache keeps its own copy of the
  /// assignment; callers mirror moves into their Partition as needed.
  GainCache(const Hypergraph& h, PartId k, std::span<const PartId> parts,
            Workspace* ws = nullptr);
  GainCache(const Hypergraph& h, const Partition& p, Workspace* ws = nullptr)
      : GainCache(h, p.k, p.assignment, ws) {}

  PartId k() const { return k_; }
  Weight cut() const { return cut_; }
  PartId part_of(Index v) const {
    return part_[static_cast<std::size_t>(v)];
  }
  Weight part_weight(PartId q) const {
    return part_w_[static_cast<std::size_t>(q)];
  }
  std::span<const PartId> parts() const { return part_.get(); }

  Index pin_count(Index net, PartId q) const {
    return counts_[row(net) + static_cast<std::size_t>(q)];
  }
  /// True iff `net` has at least one pin in part q (bitset probe).
  bool net_touches(Index net, PartId q) const {
    return (conn_[conn_row(net) + word(q)] & bit(q)) != 0;
  }

  /// Gain of moving v out of its part, counting only nets where v is the
  /// sole pin of that part (maintained incrementally).
  Weight leave_gain(Index v) const {
    return leave_gain_[static_cast<std::size_t>(v)];
  }

  /// Full connectivity-1 gain of moving v to part q (>0 lowers the cut).
  Weight move_gain(Index v, PartId q) const {
    HGR_DASSERT(q != part_of(v));
    Weight g = leave_gain(v);
    for (const Index net : h_.incident_nets(v))
      if (!net_touches(net, q)) g -= h_.net_cost(net);
    return g;
  }

  /// Distinct parts (other than part_of(v)) touched by v's nets, i.e. the
  /// candidate destinations of a boundary move. Ascending part order.
  /// O(deg(v) * k/64 + |result|) — no pin-list traversal.
  void candidate_parts_into(std::vector<PartId>& out, Index v);

  /// Moves v to part `to`, updating every maintained quantity in
  /// O(deg(v)) (+ a sole-pin scan for nets crossing the 1<->2 pin
  /// boundary), firing the four delta-gain events on `listener` for nets
  /// with nonzero cost. Event order per net matches classic FM: the two
  /// "pre-move" events fire before the counts change, the two "post-move"
  /// events after.
  template <typename Listener>
  void apply_move(Index v, PartId to, Listener& listener) {
    const PartId from = part_of(v);
    HGR_DASSERT(v >= 0 && v < h_.num_vertices());
    HGR_DASSERT(to >= 0 && to < k_ && to != from);
    for (const Index net : h_.incident_nets(v)) {
      const Weight c = h_.net_cost(net);
      Index& pt = counts_[row(net) + static_cast<std::size_t>(to)];
      Index& pf = counts_[row(net) + static_cast<std::size_t>(from)];
      if (pt == 0) {
        conn_[conn_row(net) + word(to)] |= bit(to);
        cut_ += c;
        leave_gain_[static_cast<std::size_t>(v)] += c;  // v sole in `to`
        if (c != 0) listener.net_gained_part(net, to, c);
      } else if (pt == 1 && c != 0) {
        const Index u = sole_pin(net, to, v);
        leave_gain_[static_cast<std::size_t>(u)] -= c;
        listener.sole_pin_joined(net, u, to, c);
      }
      --pf;
      ++pt;
      if (pf == 0) {
        conn_[conn_row(net) + word(from)] &= ~bit(from);
        cut_ -= c;
        leave_gain_[static_cast<std::size_t>(v)] -= c;  // was sole in `from`
        if (c != 0) listener.net_lost_part(net, from, c);
      } else if (pf == 1 && c != 0) {
        const Index u = sole_pin(net, from, v);
        leave_gain_[static_cast<std::size_t>(u)] += c;
        listener.sole_pin_remains(net, u, from, c);
      }
    }
    const Weight wv = h_.vertex_weight(v);
    part_w_[static_cast<std::size_t>(from)] -= wv;
    part_w_[static_cast<std::size_t>(to)] += wv;
    part_[static_cast<std::size_t>(v)] = to;
    note_move();
  }

  void apply_move(Index v, PartId to) {
    NullMoveListener null;
    apply_move(v, to, null);
  }

  /// Cross-checks cut, pin counts, connectivity bits, leave gains and part
  /// weights against a from-scratch recomputation. No-op below paranoid.
  void validate(check::CheckLevel level) const;

 private:
  std::size_t row(Index net) const {
    return static_cast<std::size_t>(net) * static_cast<std::size_t>(k_);
  }
  std::size_t conn_row(Index net) const {
    return static_cast<std::size_t>(net) * words_per_row_;
  }
  static std::size_t word(PartId q) {
    return static_cast<std::size_t>(q) >> 6;
  }
  static std::uint64_t bit(PartId q) {
    return std::uint64_t{1} << (static_cast<std::size_t>(q) & 63);
  }

  /// The one pin of `net` (other than `skip`) in part q, per the counts.
  Index sole_pin(Index net, PartId q, Index skip) const {
    for (const Index u : h_.pins(net))
      if (u != skip && part_of(u) == q) return u;
    HGR_ASSERT_MSG(false, "pin count says sole pin exists but scan found none");
    return kInvalidIndex;
  }

  void note_move();  // bumps the gain_cache.moves counter (out of line)

  const Hypergraph& h_;
  PartId k_;
  std::size_t words_per_row_;
  Borrowed<Index> counts_;          // num_nets x k pins-per-part
  Borrowed<std::uint64_t> conn_;    // num_nets x ceil(k/64) part bitsets
  Borrowed<PartId> part_;           // maintained assignment copy
  Borrowed<Weight> part_w_;         // per-part total vertex weight
  Borrowed<Weight> leave_gain_;     // per-vertex sole-pin gain
  Borrowed<std::uint64_t> scratch_; // candidate_parts_into OR-accumulator
  Weight cut_ = 0;
};

}  // namespace hgr
