// GainCache: the incremental cut/gain structure behind every move-based
// stage (k-way refinement, FM bisection, and the O(delta) epoch fast path).
//
// It maintains, under a stream of apply_move(v, to) calls:
//   - pins(net, part): the dense pins-per-part table,
//   - a per-net connectivity bitset (which parts each net touches),
//   - the connectivity-1 cut (paper Eq. 2), updated in O(deg(v)) per move,
//   - per-part total vertex weights,
//   - leave_gain(v): sum of c_j over nets where v is the sole pin of its
//     part — the "gain of leaving" half of the k-way FM gain. The entering
//     penalty is a bitset probe per candidate part, so
//     move_gain(v, q) = leave_gain(v) - sum_{nets j of v: pins(j,q)==0} c_j
//     costs O(deg(v)) instead of O(sum |net|).
//
// Refiners that keep their own per-vertex gain tables (FM's priority
// queues) subscribe to the four classic delta-gain events via the listener
// passed to apply_move; the cache fires them only for nets with nonzero
// cost, exactly mirroring the hand-rolled FM update rules it replaced.
//
// validate() cross-checks every maintained quantity against a from-scratch
// recomputation (connectivity_cut + rebuilt tables) at CheckLevel::kParanoid.
#pragma once

#include <cstdint>
#include <span>

#include "check/check_level.hpp"
#include "common/assert.hpp"
#include "common/types.hpp"
#include "common/workspace.hpp"
#include "hypergraph/hypergraph.hpp"
#include "metrics/partition.hpp"

namespace hgr {

/// No-op listener for callers that do not track per-vertex gain deltas.
struct NullMoveListener {
  void net_gained_part(NetId, PartId, Weight) {}
  void sole_pin_joined(NetId, VertexId, PartId, Weight) {}
  void net_lost_part(NetId, PartId, Weight) {}
  void sole_pin_remains(NetId, VertexId, PartId, Weight) {}
};

class GainCache {
 public:
  /// Builds the table for `parts` (one entry in [0, k) per vertex).
  /// O(pins + num_nets * k / 64). The cache keeps its own copy of the
  /// assignment; callers mirror moves into their Partition as needed.
  GainCache(const Hypergraph& h, Index k,
            IdSpan<VertexId, const PartId> parts, Workspace* ws = nullptr);
  GainCache(const Hypergraph& h, const Partition& p, Workspace* ws = nullptr)
      : GainCache(h, p.k, p.assignment, ws) {}

  Index k() const { return k_; }
  Weight cut() const { return cut_; }
  PartId part_of(VertexId v) const {
    return part_[static_cast<std::size_t>(v.v)];
  }
  Weight part_weight(PartId q) const {
    return part_w_[static_cast<std::size_t>(q.v)];
  }
  IdSpan<VertexId, const PartId> parts() const {
    return std::span<const PartId>(part_.get());
  }

  Index pin_count(NetId net, PartId q) const {
    return counts_[row(net) + static_cast<std::size_t>(q.v)];
  }
  /// True iff `net` has at least one pin in part q (bitset probe).
  bool net_touches(NetId net, PartId q) const {
    return (conn_[conn_row(net) + word(q)] & bit(q)) != 0;
  }

  /// Gain of moving v out of its part, counting only nets where v is the
  /// sole pin of that part (maintained incrementally).
  Weight leave_gain(VertexId v) const {
    return leave_gain_[static_cast<std::size_t>(v.v)];
  }

  /// Full connectivity-1 gain of moving v to part q (>0 lowers the cut).
  Weight move_gain(VertexId v, PartId q) const {
    HGR_DASSERT(q != part_of(v));
    Weight g = leave_gain(v);
    for (const NetId net : h_.incident_nets(v))
      if (!net_touches(net, q)) g -= h_.net_cost(net);
    return g;
  }

  /// Distinct parts (other than part_of(v)) touched by v's nets, i.e. the
  /// candidate destinations of a boundary move. Ascending part order.
  /// O(deg(v) * k/64 + |result|) — no pin-list traversal.
  void candidate_parts_into(std::vector<PartId>& out, VertexId v);

  /// Same, with caller-supplied word scratch instead of the cache's own —
  /// const, so thread-parallel readers (the k-way proposal phase) can share
  /// one frozen cache as long as each thread brings its own scratch.
  void candidate_parts_into(std::vector<PartId>& out, VertexId v,
                            std::vector<std::uint64_t>& scratch) const;

  /// Moves v to part `to`, updating every maintained quantity in
  /// O(deg(v)) (+ a sole-pin scan for nets crossing the 1<->2 pin
  /// boundary), firing the four delta-gain events on `listener` for nets
  /// with nonzero cost. Event order per net matches classic FM: the two
  /// "pre-move" events fire before the counts change, the two "post-move"
  /// events after.
  template <typename Listener>
  void apply_move(VertexId v, PartId to, Listener& listener) {
    const PartId from = part_of(v);
    HGR_DASSERT(v.v >= 0 && v.v < h_.num_vertices());
    HGR_DASSERT(to.v >= 0 && to.v < k_ && to != from);
    for (const NetId net : h_.incident_nets(v)) {
      const Weight c = h_.net_cost(net);
      Index& pt = counts_[row(net) + static_cast<std::size_t>(to.v)];
      Index& pf = counts_[row(net) + static_cast<std::size_t>(from.v)];
      if (pt == 0) {
        conn_[conn_row(net) + word(to)] |= bit(to);
        cut_ += c;
        leave_gain_[static_cast<std::size_t>(v.v)] += c;  // v sole in `to`
        if (c != 0) listener.net_gained_part(net, to, c);
      } else if (pt == 1 && c != 0) {
        const VertexId u = sole_pin(net, to, v);
        leave_gain_[static_cast<std::size_t>(u.v)] -= c;
        listener.sole_pin_joined(net, u, to, c);
      }
      --pf;
      ++pt;
      if (pf == 0) {
        conn_[conn_row(net) + word(from)] &= ~bit(from);
        cut_ -= c;
        leave_gain_[static_cast<std::size_t>(v.v)] -= c;  // was sole in `from`
        if (c != 0) listener.net_lost_part(net, from, c);
      } else if (pf == 1 && c != 0) {
        const VertexId u = sole_pin(net, from, v);
        leave_gain_[static_cast<std::size_t>(u.v)] += c;
        listener.sole_pin_remains(net, u, from, c);
      }
    }
    const Weight wv = h_.vertex_weight(v);
    part_w_[static_cast<std::size_t>(from.v)] -= wv;
    part_w_[static_cast<std::size_t>(to.v)] += wv;
    part_[static_cast<std::size_t>(v.v)] = to;
    note_move();
  }

  void apply_move(VertexId v, PartId to) {
    NullMoveListener null;
    apply_move(v, to, null);
  }

  /// Cross-checks cut, pin counts, connectivity bits, leave gains and part
  /// weights against a from-scratch recomputation. No-op below paranoid.
  void validate(check::CheckLevel level) const;

 private:
  std::size_t row(NetId net) const {
    return static_cast<std::size_t>(net.v) * static_cast<std::size_t>(k_);
  }
  std::size_t conn_row(NetId net) const {
    return static_cast<std::size_t>(net.v) * words_per_row_;
  }
  static std::size_t word(PartId q) {
    return static_cast<std::size_t>(q.v) >> 6;
  }
  static std::uint64_t bit(PartId q) {
    return std::uint64_t{1} << (static_cast<std::size_t>(q.v) & 63);
  }

  /// The one pin of `net` (other than `skip`) in part q, per the counts.
  VertexId sole_pin(NetId net, PartId q, VertexId skip) const {
    for (const VertexId u : h_.pins(net))
      if (u != skip && part_of(u) == q) return u;
    HGR_ASSERT_MSG(false, "pin count says sole pin exists but scan found none");
    return kInvalidVertex;
  }

  void note_move();  // bumps the gain_cache.moves counter (out of line)

  const Hypergraph& h_;
  Index k_;
  std::size_t words_per_row_;
  Borrowed<Index> counts_;          // num_nets x k pins-per-part
  Borrowed<std::uint64_t> conn_;    // num_nets x ceil(k/64) part bitsets
  Borrowed<PartId> part_;           // maintained assignment copy
  Borrowed<Weight> part_w_;         // per-part total vertex weight
  Borrowed<Weight> leave_gain_;     // per-vertex sole-pin gain
  Borrowed<std::uint64_t> scratch_; // candidate_parts_into OR-accumulator
  Weight cut_ = 0;
};

}  // namespace hgr
