// Runtime-selectable gain queue for FM refinement.
//
// Two interchangeable backends (an ablation subject, see bench/ablation_*):
//   - kBucket: classic FM gain buckets, O(1) ops, memory linear in the gain
//     range — only safe when the range is modest;
//   - kHeap: indexed binary max-heap, O(log n) ops, range-independent.
// The wrapper silently falls back to the heap when the requested bucket
// range would be excessive (alpha-scaled net costs can push gains into the
// millions).
#pragma once

#include <optional>

#include "common/bucket_pq.hpp"
#include "common/indexed_heap.hpp"
#include "partition/config.hpp"

namespace hgr {

class GainQueue {
 public:
  /// Buckets beyond this gain range would cost more memory than the
  /// hypergraph itself; fall back to the heap.
  static constexpr Weight kMaxBucketRange = Weight{1} << 21;

  GainQueue(Index num_items, Weight max_abs_gain, GainQueueKind kind) {
    if (kind == GainQueueKind::kBucket && max_abs_gain <= kMaxBucketRange) {
      bucket_.emplace(num_items, max_abs_gain);
    } else {
      heap_.emplace(num_items);
    }
  }

  bool empty() const { return bucket_ ? bucket_->empty() : heap_->empty(); }
  bool contains(Index item) const {
    return bucket_ ? bucket_->contains(item) : heap_->contains(item);
  }
  void insert(Index item, Weight gain) {
    bucket_ ? bucket_->insert(item, gain) : heap_->insert(item, gain);
  }
  void remove(Index item) {
    bucket_ ? bucket_->remove(item) : heap_->remove(item);
  }
  void adjust(Index item, Weight gain) {
    bucket_ ? bucket_->adjust(item, gain) : heap_->adjust(item, gain);
  }
  Weight gain(Index item) const {
    return bucket_ ? bucket_->gain(item) : heap_->key(item);
  }
  Index top() const { return bucket_ ? bucket_->top() : heap_->top(); }
  Weight top_gain() const {
    return bucket_ ? bucket_->top_gain() : heap_->top_key();
  }
  Index pop() { return bucket_ ? bucket_->pop() : heap_->pop(); }
  void clear() { bucket_ ? bucket_->clear() : heap_->clear(); }

  bool uses_buckets() const { return bucket_.has_value(); }

 private:
  std::optional<BucketPQ> bucket_;
  std::optional<IndexedMaxHeap> heap_;
};

}  // namespace hgr
