// Fiduccia-Mattheyses bisection refinement with fixed vertices.
//
// Paper §4.3: "a localized version of the successful Fiduccia-Mattheyses
// method ... performs multiple pass-pairs and in each pass, each vertex is
// considered to move to another part to reduce cut cost. ... We do not
// allow fixed vertices to be moved out of their fixed partition."
//
// This is the serial kernel; the pass structure is classic FM with
// rollback to the best prefix, a move-limit early cutoff, and a balance
// model that (a) prefers feasible states and (b) can repair an infeasible
// projected partition by forced moves off the overweight side.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/workspace.hpp"
#include "hypergraph/hypergraph.hpp"
#include "partition/config.hpp"
#include "partition/initial.hpp"

namespace hgr {

struct FmResult {
  Weight initial_cut = 0;
  Weight final_cut = 0;
  Index passes = 0;
  Index moves_applied = 0;
};

/// Refine `side` (0/1 per vertex) in place. Fixed vertices (h.fixed_part in
/// {0,1}) never move. Returns pass statistics. `ws` (optional) pools the
/// lock/gain/pin-count scratch across bisection levels.
FmResult fm_refine_bisection(const Hypergraph& h,
                             IdVector<VertexId, PartId>& side,
                             const BisectionTargets& targets,
                             const PartitionConfig& cfg, Rng& rng,
                             Workspace* ws = nullptr);

}  // namespace hgr
