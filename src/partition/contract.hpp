// Contraction: build the coarse hypergraph induced by a matching.
//
// Matched pairs merge into one coarse vertex (weights and sizes summed,
// fixed parts merged per §4.1). Net pin lists are mapped and deduplicated;
// nets reduced to fewer than 2 pins vanish (they can no longer be cut) and
// nets with identical pin sets are merged with summed costs — both standard
// multilevel-partitioning reductions that keep coarse levels small.
//
// Fine and coarse vertex ids are distinct *values* of the same VertexId
// type; the fine_to_coarse map is the only sanctioned bridge between the
// two levels (keyed by fine id, storing coarse ids).
#pragma once

#include <span>
#include <vector>

#include "common/workspace.hpp"
#include "hypergraph/hypergraph.hpp"

namespace hgr {

struct CoarseLevel {
  Hypergraph coarse;
  IdVector<VertexId, VertexId> fine_to_coarse;  // one entry per fine vertex
};

/// `ws` (optional) pools the per-net mapping scratch across levels and
/// supplies the ThreadPool the pin-list construction runs on (serial when
/// absent). The coarse hypergraph is bit-identical at every thread count.
CoarseLevel contract(const Hypergraph& h,
                     IdSpan<VertexId, const VertexId> match,
                     Workspace* ws = nullptr);

}  // namespace hgr
