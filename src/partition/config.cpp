#include "partition/config.hpp"

#include <cstdio>

namespace hgr {

std::string PartitionConfig::to_string() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "k=%d eps=%.3f seed=%llu coarsen_to=%d trials=%d passes=%d method=%s "
      "queue=%s postpass=%d vcycles=%d check=%s faults=%s",
      num_parts, epsilon, static_cast<unsigned long long>(seed), coarsen_to,
      num_initial_trials, max_refine_passes,
      kway_method == KwayMethod::kRecursiveBisection ? "rb" : "kway",
      gain_queue == GainQueueKind::kHeap ? "heap" : "bucket", kway_postpass,
      num_vcycles, check::to_string(check_level),
      fault_plan ? "on" : "off");
  return buf;
}

}  // namespace hgr
