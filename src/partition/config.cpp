#include "partition/config.hpp"

#include <cstdio>

namespace hgr {

const char* to_string(IncrementalMode mode) {
  switch (mode) {
    case IncrementalMode::kOff:
      return "off";
    case IncrementalMode::kAuto:
      return "auto";
    case IncrementalMode::kOn:
      return "on";
  }
  return "unknown";
}

std::string PartitionConfig::to_string() const {
  char buf[384];
  std::snprintf(
      buf, sizeof(buf),
      "k=%d eps=%.3f seed=%llu coarsen_to=%d trials=%d passes=%d method=%s "
      "queue=%s postpass=%d vcycles=%d incr=%s drift=%.3f delta=%.3f "
      "check=%s faults=%s threads=%d",
      num_parts, epsilon, static_cast<unsigned long long>(seed), coarsen_to,
      num_initial_trials, max_refine_passes,
      kway_method == KwayMethod::kRecursiveBisection ? "rb" : "kway",
      gain_queue == GainQueueKind::kHeap ? "heap" : "bucket", kway_postpass,
      num_vcycles, hgr::to_string(incremental), incremental_max_drift,
      incremental_max_delta_frac, check::to_string(check_level),
      fault_plan ? "on" : "off", num_threads);
  return buf;
}

}  // namespace hgr
