// Inner-product matching (IPM) with fixed-vertex constraints.
//
// IPM — "heavy-connectivity matching" in PaToH, adopted by hMETIS and
// Mondriaan — pairs a vertex with the neighbor sharing the largest
// cost-weighted set of nets. This is the coarsening kernel of the paper's
// Section 4.1. Fixed-vertex rule (cases 1-3): two vertices may match iff
// they are fixed to the same part or at least one is free; the coarse
// vertex inherits the fixed part of whichever constituent was fixed.
//
// The kernel runs deterministic mutual-proposal rounds (propose in
// parallel, commit mutual pairs) rather than one sequential greedy sweep,
// so it thread-parallelizes over the pool carried by `ws` while producing
// bit-identical matchings at every thread count (docs/PARALLELISM.md).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/workspace.hpp"
#include "hypergraph/hypergraph.hpp"
#include "partition/config.hpp"

namespace hgr {

/// Mutual-proposal IPM. Returns match[v] = partner (match[v] == v for
/// unmatched). max_vertex_weight: pairs whose combined weight exceeds it
/// are rejected (0 disables the cap). Fixed parts are read from h. `ws`
/// (optional) pools the score/proposal scratch across levels and supplies
/// the ThreadPool the proposal rounds run on (serial when absent).
IdVector<VertexId, VertexId> ipm_matching(const Hypergraph& h,
                                          const PartitionConfig& cfg,
                                          Weight max_vertex_weight, Rng& rng,
                                          Workspace* ws = nullptr);

/// True iff the fixed parts allow u and v to merge (cases 1-3 of §4.1).
inline bool fixed_compatible(PartId fu, PartId fv) {
  return fu == kNoPart || fv == kNoPart || fu == fv;
}

/// Fixed part of the merged coarse vertex.
inline PartId merged_fixed(PartId fu, PartId fv) {
  return fu != kNoPart ? fu : fv;
}

}  // namespace hgr
