#include "partition/refine_fm.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "common/assert.hpp"
#include "partition/gain_queue.hpp"

namespace hgr {

namespace {

/// Lexicographic quality of a bisection state: feasible beats infeasible,
/// then less overweight, then lower cut. Smaller is better.
struct StateScore {
  Weight overweight = 0;
  Weight cut = 0;

  bool better_than(const StateScore& other) const {
    if (overweight != other.overweight) return overweight < other.overweight;
    return cut < other.cut;
  }
};

class FmPass {
 public:
  FmPass(const Hypergraph& h, std::vector<PartId>& side,
         const BisectionTargets& targets, const PartitionConfig& cfg,
         Workspace* ws)
      : h_(h),
        side_(side),
        targets_(targets),
        cfg_(cfg),
        ws_(ws),
        locked_(ws),
        gain_(ws),
        pins_(ws),
        stash_(ws) {
    locked_->assign(static_cast<std::size_t>(h.num_vertices()), false);
    gain_->assign(static_cast<std::size_t>(h.num_vertices()), 0);
    pins_->resize(static_cast<std::size_t>(h.num_nets()));
    weight_[0] = weight_[1] = 0;
    for (Index v = 0; v < h_.num_vertices(); ++v) {
      weight_[side_at(v)] += h_.vertex_weight(v);
      if (movable(v)) slack_ = std::max(slack_, h_.vertex_weight(v));
    }
    cut_ = 0;
    for (Index net = 0; net < h_.num_nets(); ++net) {
      auto& p = pins_[static_cast<std::size_t>(net)];
      p = {0, 0};
      for (const Index v : h_.pins(net)) ++p[side_at(v)];
      if (p[0] > 0 && p[1] > 0) cut_ += h_.net_cost(net);
    }
  }

  Weight cut() const { return cut_; }

  StateScore score() const {
    return {overweight(), cut_};
  }

  /// One FM pass. Returns true if the state strictly improved.
  bool run(Rng& rng) {
    const StateScore start = score();
    build_queues(rng);

    Borrowed<Index> moves(ws_);
    StateScore best = start;
    Index best_prefix = 0;  // number of moves kept
    Index since_best = 0;

    while (since_best <= cfg_.fm_move_limit) {
      const Index v = select_move();
      if (v == kInvalidIndex) break;
      apply_move(v);
      moves->push_back(v);
      const StateScore now = score();
      if (now.better_than(best)) {
        best = now;
        best_prefix = static_cast<Index>(moves->size());
        since_best = 0;
      } else {
        ++since_best;
      }
    }

    // Roll back everything after the best prefix.
    for (Index i = static_cast<Index>(moves->size()); i > best_prefix; --i)
      undo_move(moves[static_cast<std::size_t>(i - 1)]);

    queues_[0]->clear();
    queues_[1]->clear();
    return best.better_than(start);
  }

 private:
  int side_at(Index v) const {
    return static_cast<int>(side_[static_cast<std::size_t>(v)]);
  }

  Weight overweight() const {
    return std::max<Weight>(0, weight_[0] - targets_.max_weight(0)) +
           std::max<Weight>(0, weight_[1] - targets_.max_weight(1));
  }

  bool movable(Index v) const { return h_.fixed_part(v) == kNoPart; }

  /// FM gain of moving v to the other side under the cut-net metric
  /// (== connectivity-1 for a bisection).
  Weight compute_gain(Index v) const {
    const int from = side_at(v);
    const int to = 1 - from;
    Weight g = 0;
    for (const Index net : h_.incident_nets(v)) {
      const auto& p = pins_[static_cast<std::size_t>(net)];
      const Weight c = h_.net_cost(net);
      if (p[from] == 1) g += c;  // v is the last pin on `from`: net uncut
      if (p[to] == 0) g -= c;    // net becomes newly cut
    }
    return g;
  }

  void build_queues(Rng& rng) {
    // Max |gain| bound: the heaviest incident-cost sum over all vertices.
    Weight max_abs = 1;
    for (Index v = 0; v < h_.num_vertices(); ++v) {
      Weight s = 0;
      for (const Index net : h_.incident_nets(v)) s += h_.net_cost(net);
      max_abs = std::max(max_abs, s);
    }
    for (int s = 0; s < 2; ++s)
      queues_[s].emplace(h_.num_vertices(), max_abs, cfg_.gain_queue);

    // Random insertion order randomizes tie-breaking between passes.
    Borrowed<Index> order(ws_);
    random_permutation_into(order.get(), h_.num_vertices(), rng);
    for (const Index v : order.get()) {
      if (!movable(v)) continue;
      locked_[static_cast<std::size_t>(v)] = false;
      gain_[static_cast<std::size_t>(v)] = compute_gain(v);
      queues_[side_at(v)]->insert(v, gain_[static_cast<std::size_t>(v)]);
    }
    for (Index v = 0; v < h_.num_vertices(); ++v)
      if (!movable(v)) locked_[static_cast<std::size_t>(v)] = true;
  }

  /// Pick the next vertex to move, honoring the balance constraint.
  /// Returns kInvalidIndex when no legal move remains.
  Index select_move() {
    // Rebalance mode: if a side is overweight, only that side may emit.
    int forced = -1;
    if (weight_[0] > targets_.max_weight(0)) forced = 0;
    if (weight_[1] > targets_.max_weight(1)) forced = 1;

    // Examine each queue's top; skip (stash) tops whose move would overload
    // the destination, then reinsert the stash.
    std::array<Index, 2> cand = {kInvalidIndex, kInvalidIndex};
    std::array<Weight, 2> cand_gain = {0, 0};
    std::vector<std::pair<Index, Weight>>& stash = stash_.get();
    stash.clear();
    for (int s = 0; s < 2; ++s) {
      if (forced != -1 && s != forced) continue;
      const int dest = 1 - s;
      int tries = 0;
      while (!queues_[s]->empty() && tries < 16) {
        const Index v = queues_[s]->top();
        const Weight g = queues_[s]->top_gain();
        // One-heaviest-vertex slack lets tight-balance swaps be explored
        // mid-pass; the rollback to the best *feasible* prefix restores
        // Eq. 1 at pass end (classic FM practice).
        const bool dest_ok =
            forced == s ||  // moving off an overweight side is always legal
            weight_[dest] + h_.vertex_weight(v) <=
                targets_.max_weight(dest) + slack_;
        if (dest_ok) {
          cand[s] = v;
          cand_gain[s] = g;
          break;
        }
        queues_[s]->pop();
        stash.emplace_back(v, g);
        ++tries;
      }
    }
    for (const auto& [v, g] : stash) queues_[side_at(v)]->insert(v, g);

    if (cand[0] == kInvalidIndex && cand[1] == kInvalidIndex)
      return kInvalidIndex;
    if (cand[0] == kInvalidIndex) return cand[1];
    if (cand[1] == kInvalidIndex) return cand[0];
    if (cand_gain[0] != cand_gain[1])
      return cand_gain[0] > cand_gain[1] ? cand[0] : cand[1];
    // Equal gains: prefer moving off the heavier side.
    return weight_[0] >= weight_[1] ? cand[0] : cand[1];
  }

  void update_neighbor_gain(Index u, Weight delta) {
    if (locked_[static_cast<std::size_t>(u)]) return;
    auto& g = gain_[static_cast<std::size_t>(u)];
    g += delta;
    queues_[side_at(u)]->adjust(u, g);
  }

  /// The unique unlocked pin of `net` on side `s` other than v, if the
  /// count says exactly one pin lives there.
  Index sole_pin_on_side(Index net, int s, Index skip) const {
    for (const Index u : h_.pins(net)) {
      if (u != skip && side_at(u) == s) return u;
    }
    return kInvalidIndex;
  }

  void apply_move(Index v) {
    const int from = side_at(v);
    const int to = 1 - from;
    queues_[from]->remove(v);
    locked_[static_cast<std::size_t>(v)] = true;

    // Classic FM delta-gain rules, phase 1 before / phase 2 after the move.
    for (const Index net : h_.incident_nets(v)) {
      auto& p = pins_[static_cast<std::size_t>(net)];
      const Weight c = h_.net_cost(net);
      if (c != 0) {
        if (p[to] == 0) {
          cut_ += c;  // net becomes cut
          for (const Index u : h_.pins(net))
            if (u != v) update_neighbor_gain(u, +c);
        } else if (p[to] == 1) {
          const Index u = sole_pin_on_side(net, to, v);
          if (u != kInvalidIndex) update_neighbor_gain(u, -c);
        }
      }
      --p[from];
      ++p[to];
      if (c != 0) {
        if (p[from] == 0) {
          cut_ -= c;  // net no longer cut
          for (const Index u : h_.pins(net))
            if (u != v) update_neighbor_gain(u, -c);
        } else if (p[from] == 1) {
          const Index u = sole_pin_on_side(net, from, v);
          if (u != kInvalidIndex) update_neighbor_gain(u, +c);
        }
      }
    }

    side_[static_cast<std::size_t>(v)] = static_cast<PartId>(to);
    weight_[from] -= h_.vertex_weight(v);
    weight_[to] += h_.vertex_weight(v);
  }

  /// Reverse a move during rollback (queues/gains are dead by then).
  void undo_move(Index v) {
    const int from = side_at(v);  // side it was moved TO
    const int to = 1 - from;      // original side
    for (const Index net : h_.incident_nets(v)) {
      auto& p = pins_[static_cast<std::size_t>(net)];
      const Weight c = h_.net_cost(net);
      if (p[to] == 0) cut_ += c;
      --p[from];
      ++p[to];
      if (p[from] == 0) cut_ -= c;
    }
    side_[static_cast<std::size_t>(v)] = static_cast<PartId>(to);
    weight_[from] -= h_.vertex_weight(v);
    weight_[to] += h_.vertex_weight(v);
  }

  const Hypergraph& h_;
  std::vector<PartId>& side_;
  const BisectionTargets& targets_;
  const PartitionConfig& cfg_;
  Workspace* ws_;

  Borrowed<bool> locked_;
  Borrowed<Weight> gain_;
  Borrowed<std::array<Index, 2>> pins_;
  Borrowed<std::pair<Index, Weight>> stash_;  // select_move scratch
  std::array<std::optional<GainQueue>, 2> queues_;
  Weight weight_[2];
  Weight cut_ = 0;
  Weight slack_ = 0;  // heaviest movable vertex: intra-pass balance slack
};

}  // namespace

FmResult fm_refine_bisection(const Hypergraph& h, std::vector<PartId>& side,
                             const BisectionTargets& targets,
                             const PartitionConfig& cfg, Rng& rng,
                             Workspace* ws) {
  HGR_ASSERT(static_cast<Index>(side.size()) == h.num_vertices());
#ifndef NDEBUG
  for (Index v = 0; v < h.num_vertices(); ++v) {
    HGR_ASSERT(side[static_cast<std::size_t>(v)] == 0 ||
               side[static_cast<std::size_t>(v)] == 1);
    const PartId f = h.fixed_part(v);
    HGR_ASSERT_MSG(f == kNoPart || f == side[static_cast<std::size_t>(v)],
                   "fixed vertex on wrong side entering refinement");
  }
#endif
  FmPass pass(h, side, targets, cfg, ws);
  FmResult result;
  result.initial_cut = pass.cut();
  for (Index i = 0; i < cfg.max_refine_passes; ++i) {
    ++result.passes;
    if (!pass.run(rng)) break;
  }
  result.final_cut = pass.cut();
  return result;
}

}  // namespace hgr
