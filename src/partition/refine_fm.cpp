#include "partition/refine_fm.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "common/assert.hpp"
#include "obs/trace.hpp"
#include "partition/gain_cache.hpp"
#include "partition/gain_queue.hpp"

namespace hgr {

namespace {

/// Lexicographic quality of a bisection state: feasible beats infeasible,
/// then less overweight, then lower cut. Smaller is better.
struct StateScore {
  Weight overweight = 0;
  Weight cut = 0;

  bool better_than(const StateScore& other) const {
    if (overweight != other.overweight) return overweight < other.overweight;
    return cut < other.cut;
  }
};

class FmPass {
 public:
  FmPass(const Hypergraph& h, IdVector<VertexId, PartId>& side,
         const BisectionTargets& targets, const PartitionConfig& cfg,
         Workspace* ws)
      : h_(h),
        side_(side),
        targets_(targets),
        cfg_(cfg),
        ws_(ws),
        locked_(ws),
        gain_(ws),
        stash_(ws),
        cache_(h, 2, side, ws) {
    locked_->assign(static_cast<std::size_t>(h.num_vertices()), false);
    gain_->assign(static_cast<std::size_t>(h.num_vertices()), 0);
    for (const VertexId v : h_.vertices())
      if (movable(v)) slack_ = std::max(slack_, h_.vertex_weight(v));
  }

  ~FmPass() {
    // Publish the whole pass's gain distribution in one atomic fold.
    static obs::CachedHistogram gain_hist("fm.move_gain");
    gain_hist.get().merge(gain_batch_);
  }

  // For a bisection, the cache's connectivity-1 cut is the cut-net cost.
  Weight cut() const { return cache_.cut(); }

  StateScore score() const {
    return {overweight(), cache_.cut()};
  }

  /// One FM pass. Returns true if the state strictly improved.
  bool run(Rng& rng) {
    const StateScore start = score();
    build_queues(rng);

    Borrowed<VertexId> moves(ws_);
    StateScore best = start;
    Index best_prefix = 0;  // number of moves kept
    Index since_best = 0;

    while (since_best <= cfg_.fm_move_limit) {
      const VertexId v = select_move();
      if (v == kInvalidVertex) break;
      apply_move(v);
      moves->push_back(v);
      const StateScore now = score();
      if (now.better_than(best)) {
        best = now;
        best_prefix = static_cast<Index>(moves->size());
        since_best = 0;
      } else {
        ++since_best;
      }
    }

    // Roll back everything after the best prefix.
    for (Index i = static_cast<Index>(moves->size()); i > best_prefix; --i)
      undo_move(moves[static_cast<std::size_t>(i - 1)]);

    queues_[0]->clear();
    queues_[1]->clear();
    return best.better_than(start);
  }

 private:
  int side_at(VertexId v) const { return side_[v].v; }

  Weight side_weight(int s) const { return cache_.part_weight(PartId{s}); }

  Weight overweight() const {
    return std::max<Weight>(0, side_weight(0) - targets_.max_weight(0)) +
           std::max<Weight>(0, side_weight(1) - targets_.max_weight(1));
  }

  bool movable(VertexId v) const { return h_.fixed_part(v) == kNoPart; }

  /// FM gain of moving v to the other side under the cut-net metric
  /// (== connectivity-1 for a bisection): the cache's leave gain minus the
  /// newly-cut penalty from its connectivity bits.
  Weight compute_gain(VertexId v) const {
    return cache_.move_gain(v, PartId{1 - side_at(v)});
  }

  void build_queues(Rng& rng) {
    // Max |gain| bound: the heaviest incident-cost sum over all vertices.
    Weight max_abs = 1;
    for (const VertexId v : h_.vertices()) {
      Weight s = 0;
      for (const NetId net : h_.incident_nets(v)) s += h_.net_cost(net);
      max_abs = std::max(max_abs, s);
    }
    for (int s = 0; s < 2; ++s)
      queues_[s].emplace(h_.num_vertices(), max_abs, cfg_.gain_queue);

    // Random insertion order randomizes tie-breaking between passes.
    // Queues and scratch tables are keyed by raw vertex id.
    Borrowed<Index> order(ws_);
    random_permutation_into(order.get(), h_.num_vertices(), rng);
    for (const Index vi : order.get()) {
      const VertexId v{vi};
      if (!movable(v)) continue;
      locked_[static_cast<std::size_t>(v.v)] = false;
      gain_[static_cast<std::size_t>(v.v)] = compute_gain(v);
      queues_[side_at(v)]->insert(v.v, gain_[static_cast<std::size_t>(v.v)]);
    }
    for (const VertexId v : h_.vertices())
      if (!movable(v)) locked_[static_cast<std::size_t>(v.v)] = true;
  }

  /// Pick the next vertex to move, honoring the balance constraint.
  /// Returns kInvalidVertex when no legal move remains.
  VertexId select_move() {
    // Rebalance mode: if a side is overweight, only that side may emit.
    int forced = -1;
    if (side_weight(0) > targets_.max_weight(0)) forced = 0;
    if (side_weight(1) > targets_.max_weight(1)) forced = 1;

    // Examine each queue's top; skip (stash) tops whose move would overload
    // the destination, then reinsert the stash.
    std::array<VertexId, 2> cand = {kInvalidVertex, kInvalidVertex};
    std::array<Weight, 2> cand_gain = {0, 0};
    std::vector<std::pair<VertexId, Weight>>& stash = stash_.get();
    stash.clear();
    for (int s = 0; s < 2; ++s) {
      if (forced != -1 && s != forced) continue;
      const int dest = 1 - s;
      int tries = 0;
      while (!queues_[s]->empty() && tries < 16) {
        const VertexId v{queues_[s]->top()};
        const Weight g = queues_[s]->top_gain();
        // One-heaviest-vertex slack lets tight-balance swaps be explored
        // mid-pass; the rollback to the best *feasible* prefix restores
        // Eq. 1 at pass end (classic FM practice).
        const bool dest_ok =
            forced == s ||  // moving off an overweight side is always legal
            side_weight(dest) + h_.vertex_weight(v) <=
                targets_.max_weight(dest) + slack_;
        if (dest_ok) {
          cand[s] = v;
          cand_gain[s] = g;
          break;
        }
        queues_[s]->pop();
        stash.emplace_back(v, g);
        ++tries;
      }
    }
    for (const auto& [v, g] : stash) queues_[side_at(v)]->insert(v.v, g);

    if (cand[0] == kInvalidVertex && cand[1] == kInvalidVertex)
      return kInvalidVertex;
    if (cand[0] == kInvalidVertex) return cand[1];
    if (cand[1] == kInvalidVertex) return cand[0];
    if (cand_gain[0] != cand_gain[1])
      return cand_gain[0] > cand_gain[1] ? cand[0] : cand[1];
    // Equal gains: prefer moving off the heavier side.
    return side_weight(0) >= side_weight(1) ? cand[0] : cand[1];
  }

  void update_neighbor_gain(VertexId u, Weight delta) {
    if (locked_[static_cast<std::size_t>(u.v)]) return;
    auto& g = gain_[static_cast<std::size_t>(u.v)];
    g += delta;
    queues_[side_at(u)]->adjust(u.v, g);
  }

  /// Routes the gain cache's four delta-gain events into the FM queues:
  /// the classic update rules, fired by apply_move for nonzero-cost nets.
  struct QueueUpdater {
    FmPass& pass;
    VertexId moved;

    void net_gained_part(NetId net, PartId, Weight c) {
      for (const VertexId u : pass.h_.pins(net))
        if (u != moved) pass.update_neighbor_gain(u, +c);
    }
    void sole_pin_joined(NetId, VertexId u, PartId, Weight c) {
      pass.update_neighbor_gain(u, -c);
    }
    void net_lost_part(NetId net, PartId, Weight c) {
      for (const VertexId u : pass.h_.pins(net))
        if (u != moved) pass.update_neighbor_gain(u, -c);
    }
    void sole_pin_remains(NetId, VertexId u, PartId, Weight c) {
      pass.update_neighbor_gain(u, +c);
    }
  };

  void apply_move(VertexId v) {
    const int from = side_at(v);
    const int to = 1 - from;
    queues_[from]->remove(v.v);
    locked_[static_cast<std::size_t>(v.v)] = true;
    // Distribution of accepted-move gains (signed: FM deliberately takes
    // negative-gain moves to escape local minima; the histogram shows how
    // deep those excursions go). Batched: a plain local record here, one
    // atomic merge into the registry per FmPass — apply_move is far too
    // hot for a per-move atomic record.
    gain_batch_.record(gain_[static_cast<std::size_t>(v.v)]);
    QueueUpdater updater{*this, v};
    cache_.apply_move(v, PartId{to}, updater);
    side_[v] = PartId{to};
  }

  /// Reverse a move during rollback (queues/gains are dead by then).
  void undo_move(VertexId v) {
    const int to = 1 - side_at(v);  // original side
    cache_.apply_move(v, PartId{to});
    side_[v] = PartId{to};
  }

  const Hypergraph& h_;
  IdVector<VertexId, PartId>& side_;
  const BisectionTargets& targets_;
  const PartitionConfig& cfg_;
  Workspace* ws_;

  Borrowed<bool> locked_;
  Borrowed<Weight> gain_;
  Borrowed<std::pair<VertexId, Weight>> stash_;  // select_move scratch
  GainCache cache_;
  std::array<std::optional<GainQueue>, 2> queues_;
  obs::HistogramSnapshot gain_batch_;  // per-pass accumulator, see ~FmPass
  Weight slack_ = 0;  // heaviest movable vertex: intra-pass balance slack
};

}  // namespace

FmResult fm_refine_bisection(const Hypergraph& h,
                             IdVector<VertexId, PartId>& side,
                             const BisectionTargets& targets,
                             const PartitionConfig& cfg, Rng& rng,
                             Workspace* ws) {
  HGR_ASSERT(side.ssize() == h.num_vertices());
#ifndef NDEBUG
  for (const VertexId v : h.vertices()) {
    HGR_ASSERT(side[v] == PartId{0} || side[v] == PartId{1});
    const PartId f = h.fixed_part(v);
    HGR_ASSERT_MSG(f == kNoPart || f == side[v],
                   "fixed vertex on wrong side entering refinement");
  }
#endif
  FmPass pass(h, side, targets, cfg, ws);
  FmResult result;
  result.initial_cut = pass.cut();
  for (Index i = 0; i < cfg.max_refine_passes; ++i) {
    ++result.passes;
    if (!pass.run(rng)) break;
  }
  result.final_cut = pass.cut();
  return result;
}

}  // namespace hgr
