// Configuration for the multilevel hypergraph partitioner.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "check/check_level.hpp"
#include "common/types.hpp"

namespace hgr {

namespace fault {
class FaultPlan;
}

enum class KwayMethod {
  kRecursiveBisection,  // Zoltan's production path (paper Section 4.4)
  kDirectKway,          // extension: direct k-way coarse + k-way FM
};

enum class GainQueueKind {
  kHeap,    // indexed binary heap: range-independent (default)
  kBucket,  // classic FM gain buckets: O(1) but gain-range-bounded
};

/// Two-tier epoch routing (docs/INCREMENTAL.md): whether an epoch may be
/// served by the O(delta) incremental fast path instead of a full V-cycle.
enum class IncrementalMode {
  kOff,   // every epoch runs the full repartitioner (default)
  kAuto,  // fast path when the epoch delta is small; escalates on drift
  kOn,    // fast path whenever a baseline exists, regardless of delta size
};

const char* to_string(IncrementalMode mode);

struct PartitionConfig {
  Index num_parts = 2;

  /// Eq. 1 imbalance tolerance epsilon.
  double epsilon = 0.05;

  /// Seed for every randomized stage; same seed => identical partition.
  std::uint64_t seed = 1;

  /// Coarsening stops when the hypergraph has at most
  /// max(coarsen_to, 2 * num_parts) vertices (paper: "less than 2k")...
  Index coarsen_to = 100;

  /// ...or when a level shrinks by less than this fraction (paper: 10%).
  double min_coarsen_reduction = 0.10;

  Index max_levels = 60;

  /// Vertices heavier than max_coarse_weight_factor * (total / coarsen_to)
  /// are not merged further, preventing unbalanced coarse vertices.
  double max_coarse_weight_factor = 1.5;

  /// Vertices with degree above this sit out IPM matching entirely (the
  /// mutual-proposal rounds need both endpoints to score each other, so a
  /// vertex too expensive to score cannot be a partner either); guards
  /// against quadratic blowup on hubs such as the repartitioning model's
  /// partition vertices.
  Index max_matching_degree = 4096;

  /// Shared-memory threads per rank for the thread-parallel kernels
  /// (matching, contraction, k-way refinement). Composes with the rank
  /// count of a parallel run: p ranks x num_threads threads. Results are
  /// bit-identical for any value (docs/PARALLELISM.md).
  Index num_threads = 1;

  /// Nets larger than this are ignored while scoring inner products (their
  /// contribution to the match quality is negligible and they are costly).
  Index max_scored_net_size = 1024;

  /// Randomized greedy-hypergraph-growing restarts at the coarsest level.
  Index num_initial_trials = 8;

  /// FM pass-pairs per uncoarsening level.
  Index max_refine_passes = 4;

  /// Moves allowed past the last improvement within an FM pass before the
  /// pass aborts (classic FM early termination).
  Index fm_move_limit = 350;

  KwayMethod kway_method = KwayMethod::kRecursiveBisection;
  GainQueueKind gain_queue = GainQueueKind::kHeap;

  /// Extra direct k-way refinement sweep over the final partition.
  bool kway_postpass = false;

  /// Additional V-cycles: restricted re-coarsening + refinement of the
  /// final k-way partition (quality extension, costs time).
  Index num_vcycles = 0;

  /// Two-tier epoch routing: see IncrementalMode. The fast path applies
  /// bounded greedy moves through the gain cache; it escalates to the full
  /// V-cycle when the epoch delta or the accumulated drift crosses the
  /// thresholds below (docs/INCREMENTAL.md).
  IncrementalMode incremental = IncrementalMode::kOff;

  /// Escalate when (incremental cut - last full-tier cut) / max(1, last
  /// full-tier cut) exceeds this fraction.
  double incremental_max_drift = 0.10;

  /// kAuto only: epochs whose changed+removed vertex fraction exceeds this
  /// go straight to the full tier (the fast path is O(delta); a large
  /// delta is a full repartition in disguise).
  double incremental_max_delta_frac = 0.02;

  /// Runtime invariant verification (src/check/): validators run at every
  /// coarsening level, after every (re)partitioning stage, and per epoch.
  /// kOff (default) costs nothing; see docs/CHECKING.md.
  check::CheckLevel check_level = check::CheckLevel::kOff;

  /// Deterministic fault-injection schedule (fault/fault_plan.hpp) that
  /// parallel runs install on their communicator; null (default) injects
  /// nothing. See docs/ROBUSTNESS.md.
  std::shared_ptr<const fault::FaultPlan> fault_plan;

  std::string to_string() const;
};

}  // namespace hgr
