// The hgr_serve core: a long-running repartitioning service fielding a
// stream of epoch-update requests across many named hypergraphs
// (docs/SERVING.md).
//
// Architecture: callers (socket readers, the stdin pump, tests, the bench
// driver) submit protocol lines from any thread. Admission is a bounded
// queue — a full queue sheds the request with a BUSY reply instead of
// letting latency grow without bound. Admitted requests are queued per
// graph and drained by ONE worker thread that owns every GraphState plus
// the warm machinery: the Workspace arenas, the ThreadPool, and each
// graph's IncrementalRepartitioner (gain-cache fast path + drift
// baseline). Single-ownership keeps the partitioning pipeline free of new
// locks — the Workspace BusyGuard would abort on any second toucher — and
// makes batching natural: consecutive DELTA requests against the same
// graph are coalesced into one epoch dispatch (serve.coalesced).
//
// The PR 5 degradation policy is the per-request SLO layer: every dispatch
// runs under cfg.epoch_time_budget / max_retries / fallback, and the
// server's StopToken is threaded into RepartitionerConfig::stop so
// shutdown interrupts retry backoffs and degrades in-flight epochs to
// keep-old instead of waiting them out.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <optional>
#include <string>
#include <thread>  // hgr-lint: thread-ok (worker handle; joined in stop())
#include <vector>

#include "common/stop_token.hpp"
#include "common/timer.hpp"
#include "core/repartitioner.hpp"
#include "fault/fault_plan.hpp"
#include "serve/request.hpp"

namespace hgr::serve {

struct ServeConfig {
  /// Defaults for LOAD requests that do not override them.
  Index default_k = 4;
  Weight default_alpha = 100;
  double default_epsilon = 0.05;
  std::uint64_t seed = 1;

  /// Shared-memory threads for the partitioning kernels (the worker's warm
  /// ThreadPool); 1 = serial.
  Index num_threads = 1;
  /// >0: full-tier dispatches run on the in-process parallel runtime.
  int num_ranks = 0;

  /// Admission bound: total requests queued across all graphs. A submit
  /// beyond this is shed with a BUSY reply (serve.shed).
  std::size_t queue_capacity = 64;

  /// Per-request SLO layer (the PR 5 degradation policy).
  int max_retries = 1;
  double retry_backoff_seconds = 0.0;
  double epoch_time_budget = 0.0;
  EpochFallback fallback = EpochFallback::kKeepOld;
  double deadlock_timeout = 10.0;

  /// Epoch tier routing for DELTA traffic; kAuto serves small deltas from
  /// the warm gain cache.
  IncrementalMode incremental = IncrementalMode::kAuto;
  check::CheckLevel check_level = check::CheckLevel::kOff;

  /// Injected faults at the request boundary (FaultSite::kServe) and
  /// inside parallel dispatches; null injects nothing.
  std::shared_ptr<const fault::FaultPlan> fault_plan;
};

/// One reply line per request (OK / ERR / BUSY, docs/SERVING.md). Invoked
/// from the submitting thread (shed, parse errors) and from the worker
/// thread (completions); calls are serialized by the server.
using ReplyFn = std::function<void(const std::string&)>;

class Server {
 public:
  Server(ServeConfig cfg, ReplyFn reply);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Parse and admit one protocol line. Every non-blank line gets exactly
  /// one reply (possibly immediately: ERR on parse failure, BUSY on
  /// shed). Returns the assigned request id, or 0 for blank/comment lines.
  /// Thread-safe.
  std::uint64_t submit(const std::string& line);

  /// Block until every admitted request has been replied to.
  void drain();

  /// Stop accepting, cancel in-flight backoff via the stop token, reply
  /// BUSY to any still-queued requests, and join the worker. Idempotent.
  void stop();

  /// drain() then stop(): the clean shutdown path.
  void shutdown();

  /// Requests queued but not yet dispatched (point-in-time).
  std::size_t queue_depth() const;
  /// Total replies sent (OK + ERR + BUSY).
  std::uint64_t replied() const;

  /// The worker's stop token — RepartitionerConfig::stop for dispatches.
  StopToken& stop_token() { return stop_; }

 private:
  struct PendingRequest {
    Request req;
    WallTimer timer;  // submit -> reply latency (serve.request_ns)
  };
  struct GraphQueue {
    std::deque<PendingRequest> pending;
    bool in_rotation = false;
  };
  struct GraphState;  // worker-owned warm state; defined in server.cpp
  struct Runtime;     // worker-owned Workspace + ThreadPool; in server.cpp

  void worker_loop();
  void execute_batch(const std::string& graph,
                     std::vector<PendingRequest> batch);
  void reply_to(const PendingRequest& pr, const std::string& text);
  GraphState* find_graph(const std::string& name);
  RepartitionerConfig make_repart_config(const GraphState& gs);
  static EpochDelta apply_delta_batch(
      GraphState& gs, const std::vector<PendingRequest>& batch);
  static EpochDelta apply_add(GraphState& gs, const Request& req);
  static EpochDelta apply_remove(GraphState& gs, const Request& req);

  ServeConfig cfg_;
  ReplyFn reply_;
  std::mutex reply_mutex_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // worker wake: new work or stop
  std::condition_variable drain_cv_;  // drain(): queue empty + idle
  std::map<std::string, GraphQueue> queues_;
  std::deque<std::string> rotation_;  // graphs with pending work, FIFO
  std::size_t queued_ = 0;
  bool in_flight_ = false;  // worker is executing a batch
  bool accepting_ = true;
  bool stopping_ = false;
  std::uint64_t next_id_ = 1;
  std::uint64_t replied_ = 0;

  StopToken stop_;
  // Worker-owned (no lock): the warm runtime and graph states live here,
  // touched only from worker_loop / execute_batch. Declared runtime_
  // before graphs_: GraphStates hold pointers into the runtime's
  // Workspace, so they must be destroyed first.
  std::unique_ptr<Runtime> runtime_;
  std::map<std::string, std::unique_ptr<GraphState>> graphs_;
  std::thread worker_;  // hgr-lint: thread-ok (single service worker)
};

}  // namespace hgr::serve
